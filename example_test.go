package bitmapfilter_test

import (
	"bytes"
	"fmt"
	"time"

	"bitmapfilter"
)

// Example demonstrates the basic mark-on-outgoing / check-on-incoming
// cycle of the bitmap filter.
func Example() {
	f, err := bitmapfilter.New(bitmapfilter.WithOrder(16))
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	client := bitmapfilter.AddrFrom4(10, 0, 0, 42)
	server := bitmapfilter.AddrFrom4(198, 51, 100, 7)
	request := bitmapfilter.Tuple{
		Src: client, Dst: server,
		SrcPort: 40000, DstPort: 443,
		Proto: bitmapfilter.TCP,
	}

	// The client's outgoing packet marks the bitmap.
	f.Process(bitmapfilter.Packet{Tuple: request, Dir: bitmapfilter.Outgoing})

	// The server's reply matches; a stranger's probe does not.
	reply := bitmapfilter.Packet{
		Time: time.Second, Tuple: request.Reverse(), Dir: bitmapfilter.Incoming,
	}
	probe := reply
	probe.Tuple.Src = bitmapfilter.AddrFrom4(203, 0, 113, 66)

	fmt.Println("reply:", f.Process(reply))
	fmt.Println("probe:", f.Process(probe))
	// Output:
	// reply: pass
	// probe: drop
}

// ExampleFilter_ProcessBatch shows the batched data plane: one call per
// packet burst, with ProcessBatchInto reusing the caller's verdict buffer
// so a steady-state stream allocates nothing.
func ExampleFilter_ProcessBatch() {
	f, err := bitmapfilter.New(bitmapfilter.WithOrder(16))
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	client := bitmapfilter.AddrFrom4(10, 0, 0, 42)
	server := bitmapfilter.AddrFrom4(198, 51, 100, 7)
	request := bitmapfilter.Tuple{
		Src: client, Dst: server,
		SrcPort: 40000, DstPort: 443,
		Proto: bitmapfilter.TCP,
	}
	probe := bitmapfilter.Tuple{
		Src: bitmapfilter.AddrFrom4(203, 0, 113, 66), Dst: client,
		SrcPort: 4444, DstPort: 22,
		Proto: bitmapfilter.TCP,
	}

	// One burst, as a packet source would deliver it: the client's
	// request, the server's reply, and a stranger's probe.
	burst := []bitmapfilter.Packet{
		{Tuple: request, Dir: bitmapfilter.Outgoing},
		{Time: time.Second, Tuple: request.Reverse(), Dir: bitmapfilter.Incoming},
		{Time: time.Second, Tuple: probe, Dir: bitmapfilter.Incoming},
	}

	// Reuse one verdict buffer across batches (zero allocations at
	// steady state).
	verdicts := make([]bitmapfilter.Verdict, 0, 64)
	verdicts = f.ProcessBatchInto(burst, verdicts)
	for i, v := range verdicts {
		fmt.Printf("packet %d: %v\n", i, v)
	}
	// Output:
	// packet 0: pass
	// packet 1: pass
	// packet 2: drop
}

// ExampleFilter_PunchHole shows the §5.1 hole-punching technique that
// makes active-mode-FTP-style inbound connections work.
func ExampleFilter_PunchHole() {
	f, err := bitmapfilter.New(bitmapfilter.WithOrder(16))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	client := bitmapfilter.AddrFrom4(10, 0, 0, 42)
	server := bitmapfilter.AddrFrom4(198, 51, 100, 7)

	// The server's active data connection toward client:20000 would be
	// dropped — until the client punches the hole.
	f.PunchHole(client, 20000, server, bitmapfilter.TCP)

	data := bitmapfilter.Packet{
		Tuple: bitmapfilter.Tuple{
			Src: server, Dst: client,
			SrcPort: 20, DstPort: 20000,
			Proto: bitmapfilter.TCP,
		},
		Dir:   bitmapfilter.Incoming,
		Flags: bitmapfilter.SYN,
	}
	fmt.Println("active data connection:", f.Process(data))
	// Output:
	// active data connection: pass
}

// ExampleReadSnapshot shows persisting filter state across a restart.
func ExampleReadSnapshot() {
	f, err := bitmapfilter.New(bitmapfilter.WithOrder(16))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tup := bitmapfilter.Tuple{
		Src: bitmapfilter.AddrFrom4(10, 0, 0, 1), Dst: bitmapfilter.AddrFrom4(198, 51, 100, 7),
		SrcPort: 4000, DstPort: 80, Proto: bitmapfilter.TCP,
	}
	f.Process(bitmapfilter.Packet{Tuple: tup, Dir: bitmapfilter.Outgoing})

	var state bytes.Buffer
	if err := f.WriteSnapshot(&state); err != nil {
		fmt.Println("error:", err)
		return
	}

	restored, err := bitmapfilter.ReadSnapshot(&state)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	reply := bitmapfilter.Packet{
		Time: time.Second, Tuple: tup.Reverse(), Dir: bitmapfilter.Incoming,
	}
	fmt.Println("after restore:", restored.Process(reply))
	// Output:
	// after restore: pass
}

// ExampleNewLive runs the filter against a wall-clock packet source.
func ExampleNewLive() {
	inner, err := bitmapfilter.New(bitmapfilter.WithOrder(16))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	lf, err := bitmapfilter.NewLive(inner)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tup := bitmapfilter.Tuple{
		Src: bitmapfilter.AddrFrom4(10, 0, 0, 1), Dst: bitmapfilter.AddrFrom4(198, 51, 100, 7),
		SrcPort: 4000, DstPort: 80, Proto: bitmapfilter.TCP,
	}
	lf.Observe(tup, bitmapfilter.Outgoing, bitmapfilter.SYN, 60)
	fmt.Println("reply:", lf.Observe(tup.Reverse(), bitmapfilter.Incoming, bitmapfilter.ACK, 60))
	// Output:
	// reply: pass
}
