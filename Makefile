# Convenience targets; everything is plain go tooling underneath.

GO ?= go

.PHONY: all build test race vet fmt bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure on stdout (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/bfanalysis
	$(GO) run ./cmd/bfanalysis -insider
	$(GO) run ./cmd/bftrace
	$(GO) run ./cmd/bfsim
	$(GO) run ./cmd/bfattack -order 16
	$(GO) run ./cmd/bfattack -apd
	$(GO) run ./cmd/bfattack -bandwidth
	$(GO) run ./cmd/bfattack -collude
	$(GO) run ./cmd/bfablate
	$(GO) run ./cmd/bfbench -conns 500000
	$(GO) run ./examples/worm_containment

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/edge_router
	$(GO) run ./examples/worm_containment
	$(GO) run ./examples/ftp_holepunch
	$(GO) run ./examples/failover

clean:
	$(GO) clean ./...
