# Convenience targets; everything is plain go tooling underneath.

GO ?= go

.PHONY: all build build-tags test race vet lint lint-fast fmt bench bench-go experiments examples clean

all: build build-tags lint test race

build:
	$(GO) build ./...

# The live-capture backend (internal/capture AF_PACKET, cmd/bfwall -iface)
# only compiles behind `linux && afpacket`; this keeps the gated files from
# bit-rotting on any development platform.
build-tags:
	GOOS=linux $(GO) build -tags afpacket ./...
	GOOS=linux $(GO) vet -tags afpacket ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis: vet, staticcheck (when installed), and bflint — the
# repo's own invariant suite (see internal/lint and DESIGN.md §8). The
# full run includes escapecheck (a real compiler invocation per hotpath
# package; the build cache keeps warm runs fast) and the stale-allow
# audit, over both the default and afpacket file sets.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (CI runs the pinned version)" ; \
	fi
	$(GO) run ./cmd/bflint -stale-allows ./...
	GOOS=linux $(GO) run ./cmd/bflint -tags afpacket ./...

# The fast inner loop: the whole suite minus escapecheck's compiler
# pass. Stale allows are not audited here — escapecheck allows would
# false-flag when the analyzer that uses them is skipped.
lint-fast:
	$(GO) run ./cmd/bflint -skip escapecheck ./...

fmt:
	gofmt -l -w .

# The pinned, reproducible benchmark: the bfbench -json kernel+flavor
# matrix (single/safe/sharded/live × scalar/coalesced ProcessBatchInto)
# with a fixed batch size, run count and per-run duration, written to a
# machine-readable BENCH_<pr>.json. Checked-in BENCH files are the repo's
# perf trajectory; diff two of them with
# `go run ./cmd/bfbench -compare OLD.json NEW.json`.
BENCH_PR ?= dev
BENCH_COUNT ?= 7
BENCH_TIME ?= 300ms
BENCH_BATCH ?= 512

bench:
	$(GO) run ./cmd/bfbench -json -label $(BENCH_PR) -count $(BENCH_COUNT) \
		-benchtime $(BENCH_TIME) -batch $(BENCH_BATCH) -o BENCH_$(BENCH_PR).json

# The raw go-test benchmarks (unpinned; exploratory use).
bench-go:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure on stdout (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/bfanalysis
	$(GO) run ./cmd/bfanalysis -insider
	$(GO) run ./cmd/bftrace
	$(GO) run ./cmd/bfsim
	$(GO) run ./cmd/bfattack -order 16
	$(GO) run ./cmd/bfattack -apd
	$(GO) run ./cmd/bfattack -bandwidth
	$(GO) run ./cmd/bfattack -collude
	$(GO) run ./cmd/bfablate
	$(GO) run ./cmd/bfbench -conns 500000
	$(GO) run ./examples/worm_containment

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/edge_router
	$(GO) run ./examples/worm_containment
	$(GO) run ./examples/ftp_holepunch
	$(GO) run ./examples/failover

clean:
	$(GO) clean ./...
