# Convenience targets; everything is plain go tooling underneath.

GO ?= go

.PHONY: all build test race vet lint fmt bench experiments examples clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis: vet, staticcheck (when installed), and bflint — the
# repo's own invariant suite (see internal/lint and DESIGN.md §8).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (CI runs the pinned version)" ; \
	fi
	$(GO) run ./cmd/bflint ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure on stdout (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/bfanalysis
	$(GO) run ./cmd/bfanalysis -insider
	$(GO) run ./cmd/bftrace
	$(GO) run ./cmd/bfsim
	$(GO) run ./cmd/bfattack -order 16
	$(GO) run ./cmd/bfattack -apd
	$(GO) run ./cmd/bfattack -bandwidth
	$(GO) run ./cmd/bfattack -collude
	$(GO) run ./cmd/bfablate
	$(GO) run ./cmd/bfbench -conns 500000
	$(GO) run ./examples/worm_containment

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/edge_router
	$(GO) run ./examples/worm_containment
	$(GO) run ./examples/ftp_holepunch
	$(GO) run ./examples/failover

clean:
	$(GO) clean ./...
