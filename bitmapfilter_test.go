package bitmapfilter_test

import (
	"testing"
	"time"

	"bitmapfilter"
)

// TestPublicAPIRoundTrip exercises the package through its public surface
// only, the way a downstream user would.
func TestPublicAPIRoundTrip(t *testing.T) {
	f, err := bitmapfilter.New(
		bitmapfilter.WithOrder(14),
		bitmapfilter.WithVectors(4),
		bitmapfilter.WithHashes(3),
		bitmapfilter.WithRotateEvery(5*time.Second),
		bitmapfilter.WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}

	client := bitmapfilter.AddrFrom4(10, 0, 0, 1)
	server := bitmapfilter.AddrFrom4(198, 51, 100, 7)
	out := bitmapfilter.Packet{
		Tuple: bitmapfilter.Tuple{
			Src: client, Dst: server,
			SrcPort: 40000, DstPort: 443,
			Proto: bitmapfilter.TCP,
		},
		Dir:   bitmapfilter.Outgoing,
		Flags: bitmapfilter.SYN,
	}
	if v := f.Process(out); v != bitmapfilter.Pass {
		t.Fatal("outgoing dropped")
	}
	reply := bitmapfilter.Packet{
		Time:  time.Second,
		Tuple: out.Tuple.Reverse(),
		Dir:   bitmapfilter.Incoming,
		Flags: bitmapfilter.SYN | bitmapfilter.ACK,
	}
	if v := f.Process(reply); v != bitmapfilter.Pass {
		t.Error("reply dropped")
	}
	stranger := reply
	stranger.Tuple.Src = bitmapfilter.AddrFrom4(203, 0, 113, 80)
	if v := f.Process(stranger); v != bitmapfilter.Drop {
		t.Error("stranger admitted")
	}
	if f.MemoryBytes() != 4*(1<<14)/8 {
		t.Errorf("MemoryBytes = %d", f.MemoryBytes())
	}
	if f.ExpiryTimer() != 20*time.Second {
		t.Errorf("ExpiryTimer = %v", f.ExpiryTimer())
	}
}

func TestPublicAPIDefaultsMatchPaper(t *testing.T) {
	f, err := bitmapfilter.New()
	if err != nil {
		t.Fatal(err)
	}
	if f.MemoryBytes() != 512*1024 {
		t.Errorf("default memory = %d, want 512 KiB", f.MemoryBytes())
	}
}

func TestPublicAPISafeWrapper(t *testing.T) {
	f, err := bitmapfilter.New(bitmapfilter.WithOrder(12))
	if err != nil {
		t.Fatal(err)
	}
	s := bitmapfilter.NewSafe(f)
	var pf bitmapfilter.PacketFilter = s
	if pf.Name() == "" {
		t.Error("empty name")
	}
}

func TestPublicAPIAPDPolicies(t *testing.T) {
	bw, err := bitmapfilter.NewBandwidthPolicy(1e6, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := bitmapfilter.NewRatioPolicy(1, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []bitmapfilter.DropPolicy{bw, ratio} {
		if _, err := bitmapfilter.New(bitmapfilter.WithAPD(policy), bitmapfilter.WithOrder(12)); err != nil {
			t.Errorf("WithAPD(%s): %v", policy.Name(), err)
		}
	}
}

func TestPublicAPIPrefix(t *testing.T) {
	p := bitmapfilter.PrefixFrom(bitmapfilter.AddrFrom4(10, 10, 0, 99), 24)
	if !p.Contains(bitmapfilter.AddrFrom4(10, 10, 0, 1)) {
		t.Error("prefix broken")
	}
}
