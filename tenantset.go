package bitmapfilter

import (
	"io"

	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/tenant"
)

// TenantSet is the multi-tenant data plane: one BatchFilter routing each
// packet to the per-subnet bitmap filter owning its client-side address
// via longest-prefix match, dispatching batches as one grouped
// sub-batch per touched tenant (zero steady-state allocations), and
// optionally rebalancing a shared memory budget across tenants from
// their observed flow counts. It implements Snapshottable, so a whole
// fleet checkpoints and restores atomically, and it satisfies LiveInner,
// so NewLive (or Build's WithLiveClock on each tenant being rejected —
// wrap the Set itself) turns it into a wall-clock deployment.
type TenantSet = tenant.Set

// TenantConfig describes one tenant: identifier, owned client prefix,
// and the same option bundle Build accepts (WithShards and
// WithConcurrencySafe select per-tenant flavors; WithLiveClock is
// rejected — tenants share the set's clock).
type TenantConfig = tenant.Config

// TenantSetConfig configures NewTenantSet.
type TenantSetConfig = tenant.SetConfig

// TenantBudget is the shared-memory planner: a global byte pool carved
// into per-tenant bitmap geometries in proportion to observed flow
// counts, applied at rotation boundaries by TenantSet.Rebalance.
type TenantBudget = tenant.Budget

// TenantStat is one tenant's introspection snapshot (identity + Stats).
type TenantStat = tenant.Stat

// ErrTenantConfig is returned for invalid tenant-set configurations.
var ErrTenantConfig = tenant.ErrConfig

// ErrNoTenantBudget is returned by Rebalance on a Set without a budget.
var ErrNoTenantBudget = tenant.ErrNoBudget

// NewTenantSet builds the fleet; see TenantSetConfig.
func NewTenantSet(cfg TenantSetConfig) (*TenantSet, error) { return tenant.NewSet(cfg) }

// ParseTenantConfig parses the JSON fleet description used by
// `bfserve -tenants` into a TenantSetConfig; see internal/tenant for the
// schema and README for an example.
func ParseTenantConfig(data []byte) (TenantSetConfig, error) { return tenant.ParseConfig(data) }

// ReadTenantSnapshot restores a fleet written by TenantSet.WriteSnapshot.
// extra supplies per-tenant options that never serialize (APD and
// mark/tuple policies), keyed by tenant id; nil means none.
func ReadTenantSnapshot(r io.Reader, extra func(id string) []Option) (*TenantSet, error) {
	return tenant.ReadSnapshot(r, extra)
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) { return packet.ParseAddr(s) }

// ParsePrefix parses CIDR notation ("10.1.0.0/16"), rejecting
// non-canonical bases with host bits set.
func ParsePrefix(s string) (Prefix, error) { return packet.ParsePrefix(s) }
