// Benchmark harness: one benchmark per table and figure of the paper
// (DESIGN.md experiment index E1–E14) plus the ablation benches for the
// design choices DESIGN.md calls out. Figure-level benchmarks run the full
// experiment pipeline per iteration and attach the reproduced quantities
// as custom metrics, so `go test -bench` regenerates every reported row.
package bitmapfilter_test

import (
	"bytes"
	"testing"
	"time"

	"bitmapfilter"
	"bitmapfilter/internal/attack"
	"bitmapfilter/internal/experiments"
	"bitmapfilter/internal/flowtable"
	"bitmapfilter/internal/model"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/trafficgen"
	"bitmapfilter/internal/xrand"
)

// benchScale keeps per-iteration cost around a second.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Duration: 2 * time.Minute,
		ConnRate: 25,
		Seed:     1,
	}
}

// E1–E3: Figure 2 (lifetime histogram, out-in delay histogram and CDF).
func BenchmarkFig2TraceCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LifetimeQ90, "life_q90_s")
		b.ReportMetric(res.LifetimeQ95, "life_q95_s")
		b.ReportMetric(res.DelayQ95, "delay_q95_s")
		b.ReportMetric(res.DelayQ99, "delay_q99_s")
		b.ReportMetric(res.TCPFraction*100, "tcp_%")
	}
}

// E4: §4.1 capacity table (Equation 5).
func BenchmarkCapacityTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCapacity()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].MaxConnections, "conns_p10")
		b.ReportMetric(res.Rows[1].MaxConnections, "conns_p5")
		b.ReportMetric(res.Rows[2].MaxConnections, "conns_p1")
		b.ReportMetric(float64(res.OptimalM), "m_star")
	}
}

// table1Workload builds paired outgoing/incoming packets over distinct
// tuples.
func table1Workload(n int, seed uint64) (outs, ins []packet.Packet) {
	r := xrand.New(seed)
	outs = make([]packet.Packet, n)
	ins = make([]packet.Packet, n)
	for i := range outs {
		tup := packet.Tuple{
			Src:     packet.AddrFrom4(10, 10, byte(i>>16), byte(i>>8)),
			Dst:     packet.Addr(r.Uint32() | 1),
			SrcPort: uint16(1024 + i%60000),
			DstPort: 80,
			Proto:   packet.TCP,
		}
		outs[i] = packet.Packet{Tuple: tup, Dir: packet.Outgoing, Flags: packet.ACK, Length: 60}
		ins[i] = packet.Packet{Tuple: tup.Reverse(), Dir: packet.Incoming, Flags: packet.ACK, Length: 60}
	}
	return outs, ins
}

// E5: Table 1 per-operation costs. One sub-benchmark per implementation
// and operation; memory is reported as a metric.
func BenchmarkTable1(b *testing.B) {
	const load = 1 << 18 // resident flows during lookups

	impls := []struct {
		name string
		mk   func() bitmapfilter.PacketFilter
	}{
		{name: "hashlist", mk: func() bitmapfilter.PacketFilter {
			return flowtable.NewHashList(flowtable.WithBuckets(load / 4))
		}},
		{name: "avl", mk: func() bitmapfilter.PacketFilter {
			return flowtable.NewAVLTable()
		}},
		{name: "bitmap", mk: func() bitmapfilter.PacketFilter {
			f, err := bitmapfilter.New(bitmapfilter.WithOrder(24))
			if err != nil {
				b.Fatal(err)
			}
			return f
		}},
	}

	outs, ins := table1Workload(load, 1)
	for _, impl := range impls {
		b.Run("insert/"+impl.name, func(b *testing.B) {
			f := impl.mk()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Process(outs[i&(load-1)])
			}
			b.ReportMetric(float64(f.MemoryBytes()), "state_bytes")
		})
		b.Run("lookup/"+impl.name, func(b *testing.B) {
			f := impl.mk()
			for i := range outs {
				f.Process(outs[i])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Process(ins[i&(load-1)])
			}
		})
	}

	// Garbage collection: the bitmap's "GC" is one vector reset; the SPI
	// tables traverse all state.
	b.Run("gc/bitmap-rotate", func(b *testing.B) {
		f, err := bitmapfilter.New(bitmapfilter.WithOrder(24))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Rotate()
		}
	})
	b.Run("gc/hashlist-sweep", func(b *testing.B) {
		f := flowtable.NewHashList(
			flowtable.WithBuckets(load/4),
			flowtable.WithGCInterval(time.Nanosecond),
		)
		for i := range outs {
			f.Process(outs[i])
		}
		b.ResetTimer()
		// Every AdvanceTo triggers a full sweep (interval 1ns).
		now := outs[load-1].Time
		for i := 0; i < b.N; i++ {
			now += 2 * time.Nanosecond
			f.AdvanceTo(now)
		}
	})
}

// E6: Figure 4 drop-rate comparison.
func BenchmarkFig4DropRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig4Config()
		cfg.Scale = benchScale()
		res, err := experiments.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SPIDropRate*100, "spi_drop_%")
		b.ReportMetric(res.BitmapDropRate*100, "bitmap_drop_%")
		b.ReportMetric(res.Slope, "slope")
	}
}

// E7–E8: Figure 5 attack mix and filtering rate.
func BenchmarkFig5Filtering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig5Config()
		cfg.Scale = benchScale()
		res, err := experiments.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FilterRate*100, "filter_rate_%")
		b.ReportMetric(float64(res.AttackPackets), "attack_pkts")
		b.ReportMetric(res.NormalInDropped*100, "benign_drop_%")
	}
}

// E9: §5.2 insider-attack utilization versus the analytic model.
func BenchmarkInsiderUtilization(b *testing.B) {
	cfg := experiments.DefaultInsiderConfig()
	cfg.Order = 16
	cfg.Rates = []float64{1000, 5000}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunInsider(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].MeasuredU, "U_at_1kpps")
		b.ReportMetric(res.Rows[0].ExactU, "U_model")
	}
}

// E10: §5.3 APD marking-policy comparison.
func BenchmarkAPDPolicy(b *testing.B) {
	cfg := experiments.DefaultAPDConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAPD(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.PlainFollowupAdmitted), "plain_admitted")
		b.ReportMetric(float64(res.APDFollowupAdmitted), "apd_admitted")
	}
}

// E10b: bottleneck-link bandwidth-attack comparison.
func BenchmarkBandwidthMitigation(b *testing.B) {
	cfg := experiments.DefaultBandwidthConfig()
	cfg.Phase = 15 * time.Second
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunBandwidth(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Unfiltered.BenignDelivered), "benign_open")
		b.ReportMetric(float64(res.APD.BenignDelivered), "benign_apd")
		b.ReportMetric(float64(res.APD.UnmatchedDelivered), "pushes_apd")
	}
}

// E14: §5.4 colluding-attacker sweep.
func BenchmarkCollusion(b *testing.B) {
	cfg := experiments.DefaultCollusionConfig()
	cfg.Scale = experiments.Scale{Duration: time.Minute, ConnRate: 20, Seed: 1}
	cfg.Lags = []time.Duration{time.Second, 30 * time.Second}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCollusion(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].SuccessRate*100, "fresh_success_%")
		b.ReportMetric(res.Rows[1].SuccessRate*100, "stale_success_%")
	}
}

// E13: worm containment.
func BenchmarkWormContainment(b *testing.B) {
	cfg := experiments.DefaultWormConfig()
	cfg.Duration = 4 * time.Minute
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWorm(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Unprotected.InsideInfected), "infected_open")
		b.ReportMetric(float64(res.Protected.InsideInfected), "infected_protected")
	}
}

// Ablation: hash count m around the paper's optimum m*=3 (DESIGN.md §5).
// Reports per-packet cost; penetration probability at fixed load comes
// from the model for context.
func BenchmarkAblationHashCount(b *testing.B) {
	const activeConns = 15000 // the paper's per-T_e load
	for _, m := range []int{1, 2, 3, 4, 6} {
		b.Run(benchName("m", m), func(b *testing.B) {
			f, err := bitmapfilter.New(bitmapfilter.WithHashes(m))
			if err != nil {
				b.Fatal(err)
			}
			outs, _ := table1Workload(1<<12, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Process(outs[i&(1<<12-1)])
			}
			b.ReportMetric(model.Penetration(activeConns, m, 20)*100, "penetration_%")
		})
	}
}

// Ablation: splitting the same T_e = 20 s into different k×Δt products.
// More vectors cost more marking work per outgoing packet but tighten the
// expiry granularity.
func BenchmarkAblationRotation(b *testing.B) {
	splits := []struct {
		k  int
		dt time.Duration
	}{
		{k: 2, dt: 10 * time.Second},
		{k: 4, dt: 5 * time.Second},
		{k: 10, dt: 2 * time.Second},
	}
	for _, s := range splits {
		b.Run(benchName("k", s.k), func(b *testing.B) {
			f, err := bitmapfilter.New(
				bitmapfilter.WithVectors(s.k),
				bitmapfilter.WithRotateEvery(s.dt),
			)
			if err != nil {
				b.Fatal(err)
			}
			outs, _ := table1Workload(1<<12, 3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Process(outs[i&(1<<12-1)])
			}
			b.ReportMetric(float64(f.MemoryBytes()), "state_bytes")
		})
	}
}

// Ablation: partial-tuple (paper) versus full-tuple hashing. Same cost,
// different compatibility; the benchmark reports the fraction of replies
// from a different remote port that each admits.
func BenchmarkAblationTupleFields(b *testing.B) {
	policies := []struct {
		name   string
		policy bitmapfilter.TuplePolicy
	}{
		{name: "partial", policy: bitmapfilter.PartialTuple},
		{name: "full", policy: bitmapfilter.FullTuple},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			f, err := bitmapfilter.New(
				bitmapfilter.WithOrder(16),
				bitmapfilter.WithTuplePolicy(p.policy),
			)
			if err != nil {
				b.Fatal(err)
			}
			outs, ins := table1Workload(1<<12, 4)
			// Replies come back from a different remote port.
			for i := range ins {
				ins[i].Tuple.SrcPort = 8080
			}
			admitted := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx := i & (1<<12 - 1)
				f.Process(outs[idx])
				if f.Process(ins[idx]) == bitmapfilter.Pass {
					admitted++
				}
			}
			b.ReportMetric(float64(admitted)/float64(b.N)*100, "alt_port_admit_%")
		})
	}
}

// Ablation: marking all vectors (the paper's design) versus only the
// current vector. The simplification halves marking work but breaks
// continuity across rotations — the metric shows survivors after one
// rotation.
func BenchmarkAblationMarkPolicy(b *testing.B) {
	policies := []struct {
		name   string
		policy bitmapfilter.MarkPolicy
	}{
		{name: "mark-all", policy: bitmapfilter.MarkAllVectors},
		{name: "mark-current", policy: bitmapfilter.MarkCurrentOnly},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			f, err := bitmapfilter.New(
				bitmapfilter.WithOrder(16),
				bitmapfilter.WithMarkPolicy(p.policy),
			)
			if err != nil {
				b.Fatal(err)
			}
			outs, ins := table1Workload(1<<12, 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Process(outs[i&(1<<12-1)])
			}
			b.StopTimer()
			// Survivors after one rotation.
			f.Rotate()
			survivors := 0
			for i := range ins {
				if f.WouldAdmit(ins[i].Tuple) {
					survivors++
				}
			}
			b.ReportMetric(float64(survivors)/float64(len(ins))*100, "rotation_survive_%")
		})
	}
}

// End-to-end throughput: the full calibrated trace through the paper's
// default filter (the packets/second a software deployment sustains).
func BenchmarkEndToEndTraceThroughput(b *testing.B) {
	cfg := trafficgen.DefaultConfig()
	cfg.Duration = 2 * time.Minute
	cfg.ConnRate = 25
	gen, err := trafficgen.NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var pkts []packet.Packet
	gen.Drain(func(p packet.Packet) { pkts = append(pkts, p) })

	f, err := bitmapfilter.New()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(pkts[i%len(pkts)])
	}
}

// Attack-path throughput: pure random-scan traffic (every packet is a
// bitmap miss, the DoS-resilience hot path).
func BenchmarkAttackPathThroughput(b *testing.B) {
	scan, err := attack.NewRandomScan(attack.RandomScanConfig{
		Seed:     1,
		Rate:     1e6,
		Duration: time.Hour,
		Subnets:  trafficgen.CampusSubnets(),
	})
	if err != nil {
		b.Fatal(err)
	}
	pkts := make([]packet.Packet, 1<<14)
	for i := range pkts {
		p, ok := scan.Next()
		if !ok {
			b.Fatal("scan ended early")
		}
		pkts[i] = p
	}
	f, err := bitmapfilter.New()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(pkts[i&(1<<14-1)])
	}
}

// Concurrent throughput through the Safe wrapper (a multi-queue edge
// router sharing one bitmap).
func BenchmarkSafeFilterParallel(b *testing.B) {
	inner, err := bitmapfilter.New()
	if err != nil {
		b.Fatal(err)
	}
	f := bitmapfilter.NewSafe(inner)
	outs, ins := table1Workload(1<<12, 6)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			idx := i & (1<<12 - 1)
			if i&1 == 0 {
				f.Process(outs[idx])
			} else {
				f.Process(ins[idx])
			}
			i++
		}
	})
}

// Snapshot persistence cost for the paper's default 512 KiB filter.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	f, err := bitmapfilter.New()
	if err != nil {
		b.Fatal(err)
	}
	outs, _ := table1Workload(1<<14, 7)
	for i := range outs {
		f.Process(outs[i])
	}
	var buf bytes.Buffer
	var snapBytes int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := f.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		snapBytes = buf.Len()
		if _, err := bitmapfilter.ReadSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(snapBytes), "snapshot_bytes")
}

// batchWorkload interleaves outgoing packets and their replies into one
// mixed trace (all timestamps zero, so no rotations fire mid-benchmark).
func batchWorkload(n int, seed uint64) []packet.Packet {
	outs, ins := table1Workload(n/2, seed)
	pkts := make([]packet.Packet, 0, n)
	for i := range outs {
		pkts = append(pkts, outs[i], ins[i])
	}
	return pkts
}

// Batched versus per-packet hot path. Each iteration pushes the same
// 512-packet mixed batch through the filter, so ns/op is directly
// comparable between the "packet" and "batch" variants; the Safe and
// Sharded pairs isolate the lock-amortization win (one acquisition per
// batch / per touched shard instead of one per packet).
func BenchmarkProcessBatch(b *testing.B) {
	const batch = 512
	pkts := batchWorkload(batch, 8)

	impls := []struct {
		name string
		mk   func(b *testing.B) interface {
			Process(packet.Packet) bitmapfilter.Verdict
			ProcessBatch([]packet.Packet) []bitmapfilter.Verdict
		}
	}{
		{name: "single", mk: func(b *testing.B) interface {
			Process(packet.Packet) bitmapfilter.Verdict
			ProcessBatch([]packet.Packet) []bitmapfilter.Verdict
		} {
			f, err := bitmapfilter.New()
			if err != nil {
				b.Fatal(err)
			}
			return f
		}},
		{name: "safe", mk: func(b *testing.B) interface {
			Process(packet.Packet) bitmapfilter.Verdict
			ProcessBatch([]packet.Packet) []bitmapfilter.Verdict
		} {
			f, err := bitmapfilter.New()
			if err != nil {
				b.Fatal(err)
			}
			return bitmapfilter.NewSafe(f)
		}},
		{name: "sharded", mk: func(b *testing.B) interface {
			Process(packet.Packet) bitmapfilter.Verdict
			ProcessBatch([]packet.Packet) []bitmapfilter.Verdict
		} {
			f, err := bitmapfilter.NewSharded(8, bitmapfilter.WithOrder(17))
			if err != nil {
				b.Fatal(err)
			}
			return f
		}},
	}
	for _, impl := range impls {
		b.Run(impl.name+"/packet", func(b *testing.B) {
			f := impl.mk(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range pkts {
					f.Process(pkts[j])
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/pkt")
		})
		b.Run(impl.name+"/batch", func(b *testing.B) {
			f := impl.mk(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.ProcessBatch(pkts)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/pkt")
		})
	}
}

// Steady-state zero-allocation batch path: ProcessBatchInto with a reused
// verdict buffer must report 0 allocs/op on every flavor. The warm-up call
// before the timer grows the buffer once and primes the sharded grouping
// scratch pool; after that the data plane allocates nothing.
func BenchmarkProcessBatchInto(b *testing.B) {
	const batch = 512
	pkts := batchWorkload(batch, 8)

	impls := []struct {
		name string
		mk   func(b *testing.B) interface {
			ProcessBatchInto([]packet.Packet, []bitmapfilter.Verdict) []bitmapfilter.Verdict
		}
	}{
		{name: "single", mk: func(b *testing.B) interface {
			ProcessBatchInto([]packet.Packet, []bitmapfilter.Verdict) []bitmapfilter.Verdict
		} {
			f, err := bitmapfilter.New()
			if err != nil {
				b.Fatal(err)
			}
			return f
		}},
		{name: "safe", mk: func(b *testing.B) interface {
			ProcessBatchInto([]packet.Packet, []bitmapfilter.Verdict) []bitmapfilter.Verdict
		} {
			f, err := bitmapfilter.New()
			if err != nil {
				b.Fatal(err)
			}
			return bitmapfilter.NewSafe(f)
		}},
		{name: "sharded", mk: func(b *testing.B) interface {
			ProcessBatchInto([]packet.Packet, []bitmapfilter.Verdict) []bitmapfilter.Verdict
		} {
			f, err := bitmapfilter.NewSharded(8, bitmapfilter.WithOrder(17))
			if err != nil {
				b.Fatal(err)
			}
			return f
		}},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			f := impl.mk(b)
			var out []bitmapfilter.Verdict
			out = f.ProcessBatchInto(pkts, out) // warm up buffer + pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = f.ProcessBatchInto(pkts, out)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/pkt")
		})
	}
}

// Contended batched versus per-packet throughput: every goroutine hammers
// the same shared filter, the regime where per-packet locking collapses.
func BenchmarkBatchParallel(b *testing.B) {
	const batch = 512
	mks := []struct {
		name string
		mk   func(b *testing.B) interface {
			Process(packet.Packet) bitmapfilter.Verdict
			ProcessBatch([]packet.Packet) []bitmapfilter.Verdict
		}
	}{
		{name: "safe", mk: func(b *testing.B) interface {
			Process(packet.Packet) bitmapfilter.Verdict
			ProcessBatch([]packet.Packet) []bitmapfilter.Verdict
		} {
			f, err := bitmapfilter.New()
			if err != nil {
				b.Fatal(err)
			}
			return bitmapfilter.NewSafe(f)
		}},
		{name: "sharded", mk: func(b *testing.B) interface {
			Process(packet.Packet) bitmapfilter.Verdict
			ProcessBatch([]packet.Packet) []bitmapfilter.Verdict
		} {
			f, err := bitmapfilter.NewSharded(8, bitmapfilter.WithOrder(17))
			if err != nil {
				b.Fatal(err)
			}
			return f
		}},
	}
	for _, impl := range mks {
		b.Run(impl.name+"/packet", func(b *testing.B) {
			f := impl.mk(b)
			pkts := batchWorkload(batch, 8)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					f.Process(pkts[i&(batch-1)])
					i++
				}
			})
		})
		b.Run(impl.name+"/batch", func(b *testing.B) {
			f := impl.mk(b)
			pkts := batchWorkload(batch, 8)
			b.ReportAllocs()
			// Each pb.Next() corresponds to ONE packet so ns/op stays
			// per-packet comparable; batches are submitted every
			// `batch` steps.
			b.RunParallel(func(pb *testing.PB) {
				n := 0
				for pb.Next() {
					n++
					if n == batch {
						f.ProcessBatch(pkts)
						n = 0
					}
				}
				if n > 0 {
					f.ProcessBatch(pkts[:n])
				}
			})
		})
	}
}

// O(1) introspection: Utilization and Stats must not scan the bitmap. At
// order 24 a pre-fix scan walked 2^24/64 = 262144 words per call.
func BenchmarkUtilizationStats(b *testing.B) {
	f, err := bitmapfilter.New(bitmapfilter.WithOrder(24))
	if err != nil {
		b.Fatal(err)
	}
	pkts := batchWorkload(1<<14, 9)
	f.ProcessBatch(pkts)
	b.Run("utilization", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = f.Utilization()
		}
	})
	b.Run("penetration", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = f.PenetrationProbability()
		}
	})
	b.Run("stats", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = f.Stats()
		}
	})
}

// Sharded vs single-lock concurrent throughput.
func BenchmarkShardedFilterParallel(b *testing.B) {
	f, err := bitmapfilter.NewSharded(8, bitmapfilter.WithOrder(17))
	if err != nil {
		b.Fatal(err)
	}
	outs, ins := table1Workload(1<<12, 6)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			idx := i & (1<<12 - 1)
			if i&1 == 0 {
				f.Process(outs[idx])
			} else {
				f.Process(ins[idx])
			}
			i++
		}
	})
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v < 10 {
		return prefix + "=" + digits[v:v+1]
	}
	return prefix + "=" + digits[v/10:v/10+1] + digits[v%10:v%10+1]
}
