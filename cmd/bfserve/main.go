// Command bfserve runs a live bitmap filter as a long-running daemon with
// an HTTP monitoring and control plane:
//
//	GET  /healthz     liveness
//	GET  /stats       filter introspection (JSON)
//	GET  /metrics     Prometheus text exposition
//	POST /punch       §5.1 hole punching
//	POST /checkpoint  persist a snapshot now (with -checkpoint)
//
// With -checkpoint <path> the daemon becomes crash-safe: it restores
// filter state from the newest good checkpoint on startup (falling back
// to the .bak rotation and finally to a cold start), persists a snapshot
// every -checkpoint-every (jittered) and once more on SIGTERM, so a
// restarting edge router keeps admitting established flows instead of
// blacking them out for up to T_e.
//
// With -tenants <file> the daemon serves a multi-tenant fleet instead of
// a single filter: the JSON file maps client prefixes to per-tenant
// filter plans (see internal/tenant.ParseConfig for the schema), packets
// route to their tenant by longest-prefix match, /stats and /metrics
// grow per-tenant series, and — when the file configures a shared memory
// budget — a background ticker re-plans per-tenant geometry from
// observed flow counts every -rebalance interval. Checkpointing persists
// and restores the whole fleet atomically.
//
// In -demo mode (default) a calibrated synthetic workload is replayed
// against the filter in wall-clock time at the configured speedup, so the
// endpoints show live numbers; a real deployment would instead feed
// packets from its capture path through the same live.Filter.
//
// Usage:
//
//	bfserve [-listen :8080] [-demo] [-speedup 10] [-order 20]
//	        [-tenants fleet.json] [-rebalance 10s]
//	        [-checkpoint /var/lib/bfserve/state.bmf] [-checkpoint-every 30s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bitmapfilter/internal/checkpoint"
	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/httpapi"
	"bitmapfilter/internal/live"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/resilience"
	"bitmapfilter/internal/tenant"
	"bitmapfilter/internal/trafficgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bfserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen  = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		demo    = flag.Bool("demo", true, "replay a synthetic workload against the filter")
		speedup = flag.Float64("speedup", 10, "demo replay speed relative to real time")
		rate    = flag.Float64("rate", 25, "demo session arrival rate per second (trace time)")
		order   = flag.Uint("order", 20, "bitmap order n")
		vectors = flag.Int("vectors", 4, "bitmap vector count k")
		hashes  = flag.Int("hashes", 3, "hash count m")
		rotate  = flag.Duration("rotate", 5*time.Second, "rotation period Δt")
		shards  = flag.Int("shards", 1, "shard count (>1 runs the sharded data plane)")
		apd     = flag.String("apd", "", `adaptive packet dropping: "ratio" or "bandwidth" (§5.3)`)
		apdCap  = flag.Float64("apd-capacity", 100e6, "link capacity in bits/s for -apd bandwidth")
		tenants = flag.String("tenants", "", "multi-tenant fleet config (JSON); replaces the single-filter geometry flags")
		rebal   = flag.Duration("rebalance", 0, "budget rebalance interval for a -tenants fleet (0 = every fleet rotation period)")
		ckpt    = flag.String("checkpoint", "", "checkpoint file; restores state on startup and persists it periodically and on SIGTERM")
		ckptDt  = flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval (with -checkpoint; jittered ±10%)")
	)
	flag.Parse()

	mkAPD, err := apdFactory(*apd, *apdCap)
	if err != nil {
		return err
	}

	var (
		filter     *live.Filter
		restoreRes checkpoint.RestoreResult
		fleetCfg   *tenant.SetConfig
	)
	if *tenants != "" {
		data, err := os.ReadFile(*tenants)
		if err != nil {
			return err
		}
		cfg, err := tenant.ParseConfig(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *tenants, err)
		}
		fleetCfg = &cfg
		filter, restoreRes, err = buildTenantFleet(*ckpt, cfg, mkAPD)
		if err != nil {
			return err
		}
	} else {
		opts := []core.Option{
			core.WithOrder(*order),
			core.WithVectors(*vectors),
			core.WithHashes(*hashes),
			core.WithRotateEvery(*rotate),
		}
		if mkAPD != nil {
			opts = append(opts, core.WithAPD(mkAPD()))
		}
		filter, restoreRes, err = buildLiveFilter(*ckpt, opts, *shards)
		if err != nil {
			return err
		}
	}
	logRestore(*ckpt, restoreRes)
	if err := filter.StartRotations(0); err != nil {
		return err
	}
	defer filter.StopRotations()

	// The resilience plane: a watchdog over every background loop, with
	// /healthz turning 503 on a stall and /readyz tracking the lifecycle.
	// Rotation liveness is value-driven — the rotation counter must keep
	// advancing within a few periods — so a wedged rotation goroutine is
	// indistinguishable from a wedged filter, which is exactly the alarm
	// an operator wants.
	wd := resilience.NewWatchdog(nil)
	health := resilience.NewHealth(wd)
	rotStall := max(4*filter.RotateEvery(), resilience.DefaultStallAfter)
	wd.Progress("rotation", rotStall, func() uint64 { return filter.Stats().Rotations })

	// With -checkpoint the daemon persists snapshots periodically (and on
	// SIGTERM below); the API gains POST /checkpoint and the
	// bitmapfilter_checkpoint_* series, and the checkpointer reports into
	// its own watchdog probe.
	var (
		cp      *checkpoint.Checkpointer
		apiOpts []httpapi.Option
	)
	apiOpts = append(apiOpts, httpapi.WithHealth(health))
	if *ckpt != "" {
		ckptProbe := wd.Heartbeat("checkpoint", max(3**ckptDt, resilience.DefaultStallAfter))
		cp, err = checkpoint.New(checkpoint.Config{
			Path:      *ckpt,
			Write:     filter.WriteSnapshot,
			Interval:  *ckptDt,
			Heartbeat: ckptProbe.Beat,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "bfserve: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		if err := cp.Start(); err != nil {
			return err
		}
		defer cp.Stop()
		apiOpts = append(apiOpts, httpapi.WithCheckpointer(cp, restoreRes))
	}

	api, err := httpapi.New(filter, apiOpts...)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              *listen,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// A budgeted fleet re-plans per-tenant geometry in the background.
	// Resizes only land at rotation boundaries (tenant.Set.Rebalance), so
	// the default cadence is the fleet's fastest rotation period.
	rebalDone := make(chan struct{})
	if fleetCfg != nil && fleetCfg.Budget != nil {
		interval := *rebal
		if interval <= 0 {
			interval = filter.RotateEvery()
		}
		go func() {
			defer close(rebalDone)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n, err := filter.Rebalance(); err != nil {
						fmt.Fprintln(os.Stderr, "bfserve: rebalance:", err)
					} else if n > 0 {
						fmt.Printf("bfserve: rebalanced %d tenant filters (fleet %d KiB)\n",
							n, filter.MemoryBytes()/1024)
					}
				}
			}
		}()
	} else {
		close(rebalDone)
	}
	defer func() { <-rebalDone }()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("bfserve: listening on http://%s (filter %s, %d KiB)\n",
			*listen, filter.Name(), filter.Stats().MemoryBytes/1024)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	demoDone := make(chan struct{})
	if *demo {
		demoProbe := wd.Heartbeat("demo", resilience.DefaultStallAfter)
		go func() {
			defer close(demoDone)
			if err := runDemo(ctx, filter, *rate, *speedup, demoProbe); err != nil {
				fmt.Fprintln(os.Stderr, "bfserve: demo feed:", err)
			}
		}()
	} else {
		close(demoDone)
	}
	health.SetReady()

	select {
	case <-ctx.Done():
		fmt.Println("\nbfserve: shutting down")
		// Drain order: readiness flips first (load balancers stop routing
		// here), then the final state persists, then the listener closes.
		health.SetDraining()
		// Persist the final state before the server goes away, so the
		// next boot warm-starts from the very last marks.
		if cp != nil {
			if err := cp.CheckpointNow(); err != nil {
				fmt.Fprintln(os.Stderr, "bfserve: final checkpoint:", err)
			} else {
				fmt.Printf("bfserve: final checkpoint saved to %s\n", *ckpt)
			}
		}
	case err := <-errCh:
		stop()
		<-demoDone
		return err
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	<-demoDone
	return <-errCh
}

// apdFactory validates the -apd flags once and returns a constructor
// minting an independent policy instance per call — each tenant (and
// each snapshot restore) must get its own policy state, never a shared
// one. A nil factory means APD is off.
func apdFactory(name string, capacity float64) (func() core.DropPolicy, error) {
	switch name {
	case "":
		return nil, nil
	case "ratio":
		if _, err := core.NewRatioPolicy(1, 3, 5*time.Second); err != nil {
			return nil, err
		}
		return func() core.DropPolicy {
			p, _ := core.NewRatioPolicy(1, 3, 5*time.Second)
			return p
		}, nil
	case "bandwidth":
		if _, err := core.NewBandwidthPolicy(capacity, 5*time.Second); err != nil {
			return nil, err
		}
		return func() core.DropPolicy {
			p, _ := core.NewBandwidthPolicy(capacity, 5*time.Second)
			return p
		}, nil
	default:
		return nil, fmt.Errorf("unknown -apd policy %q (want ratio or bandwidth)", name)
	}
}

// buildTenantFleet returns the wall-clock multi-tenant data plane. The
// restore ladder mirrors buildLiveFilter: the snapshot is authoritative
// for fleet membership and per-tenant geometry, while the config file's
// budget and the -apd policy — neither of which serializes — are
// re-attached on top. live.Adopt back-dates the adapter start so every
// tenant's marks keep their residual lifetime across the restart.
func buildTenantFleet(ckptPath string, cfg tenant.SetConfig, mkAPD func() core.DropPolicy) (*live.Filter, checkpoint.RestoreResult, error) {
	extra := func(string) []core.Option {
		if mkAPD == nil {
			return nil
		}
		return []core.Option{core.WithAPD(mkAPD())}
	}
	cold := func() (*live.Filter, error) {
		if mkAPD != nil {
			for i := range cfg.Tenants {
				cfg.Tenants[i].Options = append(cfg.Tenants[i].Options, core.WithAPD(mkAPD()))
			}
		}
		set, err := tenant.NewSet(cfg)
		if err != nil {
			return nil, err
		}
		return live.New(set)
	}
	if ckptPath == "" {
		f, err := cold()
		return f, checkpoint.RestoreResult{Outcome: checkpoint.OutcomeColdStartEmpty}, err
	}
	var restored *live.Filter
	res := checkpoint.Restore(ckptPath, func(r io.Reader) error {
		set, err := tenant.ReadSnapshot(r, extra)
		if err != nil {
			return err
		}
		if cfg.Budget != nil {
			if err := set.AttachBudget(cfg.Budget); err != nil {
				return err
			}
		}
		f, err := live.Adopt(set)
		if err != nil {
			return err
		}
		restored = f
		return nil
	})
	if res.Outcome.Restored() {
		return restored, res, nil
	}
	f, err := cold()
	return f, res, err
}

// buildLiveFilter returns the wall-clock filter the daemon serves. With a
// checkpoint path it walks the restore ladder first — primary file, .bak
// rotation, cold start — and only builds a fresh filter from the flags
// when no good snapshot exists; the snapshot is authoritative for the
// filter geometry (order/vectors/shards), while APD policies, which are
// deliberately not serialized, are re-attached from the flags via opts.
func buildLiveFilter(ckptPath string, opts []core.Option, shards int) (*live.Filter, checkpoint.RestoreResult, error) {
	if ckptPath != "" {
		var restored *live.Filter
		res := checkpoint.Restore(ckptPath, func(r io.Reader) error {
			f, err := live.ReadSnapshot(r, opts)
			if err != nil {
				return err
			}
			restored = f
			return nil
		})
		if res.Outcome.Restored() {
			return restored, res, nil
		}
		f, err := coldFilter(opts, shards)
		return f, res, err
	}
	f, err := coldFilter(opts, shards)
	return f, checkpoint.RestoreResult{Outcome: checkpoint.OutcomeColdStartEmpty}, err
}

// coldFilter builds an empty filter from the flags. Any core flavor rides
// behind the same wall-clock adapter; a sharded filter clones the APD
// policy per shard and exposes per-shard gauges on /metrics.
func coldFilter(opts []core.Option, shards int) (*live.Filter, error) {
	var inner live.Inner
	if shards > 1 {
		sh, err := core.NewSharded(shards, opts...)
		if err != nil {
			return nil, err
		}
		inner = sh
	} else {
		f, err := core.New(opts...)
		if err != nil {
			return nil, err
		}
		inner = f
	}
	return live.New(inner)
}

// logRestore reports each restore-ladder outcome distinctly.
func logRestore(ckptPath string, res checkpoint.RestoreResult) {
	if ckptPath == "" {
		return
	}
	switch res.Outcome {
	case checkpoint.OutcomePrimary:
		fmt.Printf("bfserve: restored filter state from %s\n", res.File)
	case checkpoint.OutcomeBackup:
		fmt.Fprintf(os.Stderr, "bfserve: checkpoint %s unusable (%v); restored from backup %s\n",
			ckptPath, res.PrimaryErr, res.File)
	case checkpoint.OutcomeColdStartEmpty:
		fmt.Printf("bfserve: no checkpoint at %s; cold start\n", ckptPath)
	case checkpoint.OutcomeColdStartCorrupt:
		fmt.Fprintf(os.Stderr, "bfserve: checkpoint unusable (primary: %v; backup: %v); COLD START — established flows will drop for up to T_e\n",
			res.PrimaryErr, res.BackupErr)
	}
}

// Demo feed batching: packets due within demoBatchSlack of "now" are
// coalesced and stamped through one live.ObserveBatchInto call, the same
// way a NIC-ring poller delivers everything that arrived since the last
// poll. Both buffers are reused, so the steady-state feed is
// allocation-free.
const (
	demoBatchSize  = 256
	demoBatchSlack = 2 * time.Millisecond
)

// runDemo replays the calibrated trace against the filter, pacing trace
// time at `speedup` × wall-clock time, looping forever until ctx ends.
// probe, when set, tracks the feed's liveness: every flushed batch
// beats it, and the pacing sleeps are marked idle so a slow trace is
// not mistaken for a wedged feed.
func runDemo(ctx context.Context, filter *live.Filter, rate, speedup float64, probe *resilience.Probe) error {
	if speedup <= 0 {
		return fmt.Errorf("speedup must be positive")
	}
	seed := uint64(1)
	batch := make([]packet.Packet, 0, demoBatchSize)
	var verdicts []filtering.Verdict
	flush := func() {
		verdicts = filter.ObserveBatchInto(batch, verdicts)
		batch = batch[:0]
		if probe != nil {
			probe.Beat()
		}
	}
	for {
		cfg := trafficgen.DefaultConfig()
		cfg.Duration = 10 * time.Minute
		cfg.ConnRate = rate
		cfg.Seed = seed
		seed++
		gen, err := trafficgen.NewGenerator(cfg)
		if err != nil {
			return err
		}
		epoch := time.Now()
		for {
			pkt, ok := gen.Next()
			if !ok {
				break
			}
			// Pace: the packet is due at epoch + traceTime/speedup.
			// Anything due sooner than the slack rides in the current
			// batch instead of sleeping.
			due := epoch.Add(time.Duration(float64(pkt.Time) / speedup))
			if wait := time.Until(due); wait > demoBatchSlack {
				flush()
				if probe != nil {
					probe.SetIdle(true)
				}
				select {
				case <-ctx.Done():
					return nil // left idle: the feed is gone, not wedged
				case <-time.After(wait):
				}
				if probe != nil {
					probe.SetIdle(false)
				}
			} else if ctx.Err() != nil {
				flush()
				return nil
			}
			batch = append(batch, pkt)
			if len(batch) == demoBatchSize {
				flush()
			}
		}
		flush()
	}
}
