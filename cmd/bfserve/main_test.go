package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"bitmapfilter/internal/checkpoint"
	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

var testOpts = []core.Option{
	core.WithOrder(12), core.WithVectors(4), core.WithHashes(3),
	core.WithRotateEvery(5 * time.Second),
}

// TestWarmRestartAdmitsEstablishedFlows is the daemon-level restart
// drill: mark a flow, checkpoint, rebuild the filter from disk the way
// run() does on boot, and verify the reply is still admitted.
func TestWarmRestartAdmitsEstablishedFlows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bmf")

	f1, res, err := buildLiveFilter(path, testOpts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != checkpoint.OutcomeColdStartEmpty {
		t.Fatalf("first boot outcome = %v, want cold-start-empty", res.Outcome)
	}
	tup := packet.Tuple{
		Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(198, 51, 100, 7),
		SrcPort: 4000, DstPort: 80, Proto: packet.TCP,
	}
	f1.Observe(tup, packet.Outgoing, packet.SYN, 60)
	if _, err := checkpoint.Save(path, f1.WriteSnapshot); err != nil {
		t.Fatal(err)
	}

	f2, res, err := buildLiveFilter(path, testOpts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != checkpoint.OutcomePrimary {
		t.Fatalf("restart outcome = %v, want primary", res.Outcome)
	}
	if v := f2.Observe(tup.Reverse(), packet.Incoming, packet.ACK, 60); v != filtering.Pass {
		t.Error("established flow dropped after warm restart")
	}
}

// TestWarmRestartShardedFlavor: the snapshot is authoritative for the
// flavor — a daemon checkpointed with 4 shards restores 4 shards even if
// the restart flags say otherwise.
func TestWarmRestartShardedFlavor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bmf")

	f1, _, err := buildLiveFilter(path, testOpts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Save(path, f1.WriteSnapshot); err != nil {
		t.Fatal(err)
	}

	f2, res, err := buildLiveFilter(path, testOpts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != checkpoint.OutcomePrimary {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if ss := f2.ShardStats(); len(ss) != 4 {
		t.Errorf("restored %d shards, want 4", len(ss))
	}
}

// TestCorruptCheckpointColdStarts: a mangled checkpoint (no backup) must
// come up empty rather than fail the boot or restore garbage.
func TestCorruptCheckpointColdStarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bmf")
	if err := os.WriteFile(path, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	f, res, err := buildLiveFilter(path, testOpts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != checkpoint.OutcomeColdStartCorrupt {
		t.Fatalf("outcome = %v, want cold-start-corrupt", res.Outcome)
	}
	if res.PrimaryErr == nil {
		t.Error("corrupt primary error not reported")
	}
	if f.Stats().Marks != 0 {
		t.Error("cold start carries marks")
	}
}

// TestNoCheckpointPathColdStarts: without -checkpoint the daemon builds
// from flags only.
func TestNoCheckpointPathColdStarts(t *testing.T) {
	f, res, err := buildLiveFilter("", testOpts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != checkpoint.OutcomeColdStartEmpty {
		t.Errorf("outcome = %v", res.Outcome)
	}
	if ss := f.ShardStats(); len(ss) != 2 {
		t.Errorf("flag shards ignored: got %d", len(ss))
	}
}
