// Command bflint runs the repository's custom static-analysis suite: five
// analyzers that enforce invariants generic tooling cannot check — see
// internal/lint for the rule catalogue and the //bf: annotation language.
//
// Usage:
//
//	bflint [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. The exit
// status is 1 when any diagnostic is reported, so `go run ./cmd/bflint
// ./...` gates CI exactly like vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bitmapfilter/internal/lint"
)

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers in the suite and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bflint [-list] [-run analyzers] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the bitmapfilter invariant suite (default packages: ./...).\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *listOnly {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "bflint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}

	failed := false
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		diags, err := lint.Check(pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bflint: %v\n", err)
	os.Exit(2)
}
