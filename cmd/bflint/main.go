// Command bflint runs the repository's custom static-analysis suite:
// the analyzers that enforce invariants generic tooling cannot check —
// see internal/lint for the rule catalogue and the //bf: annotation
// language.
//
// Usage:
//
//	bflint [-list] [-run names] [-skip names] [-tags list] [-json] [-stale-allows] [packages]
//
// Packages default to ./... relative to the enclosing module. The exit
// status is 1 when any diagnostic is reported, so `go run ./cmd/bflint
// ./...` gates CI exactly like vet. -json emits one JSON object per
// diagnostic (file/line/column/analyzer/message) for machine consumers
// such as the GitHub Actions problem matcher; -skip drops named
// analyzers (the `make lint-fast` loop skips escapecheck's compiler
// pass); -tags selects build tags for file loading and the escapecheck
// compiler invocation; -stale-allows additionally fails on //bf:allow
// markers that no longer suppress anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/build"
	"os"
	"strings"

	"bitmapfilter/internal/lint"
)

// jsonDiag is the machine-readable diagnostic shape for -json output.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers in the suite and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzer names to skip")
	tags := flag.String("tags", "", "comma-separated build tags (selects files and feeds escapecheck's compiler pass)")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON objects, one per line")
	staleAllows := flag.Bool("stale-allows", false, "also fail on //bf:allow markers that suppress nothing")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bflint [-list] [-run names] [-skip names] [-tags list] [-json] [-stale-allows] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the bitmapfilter invariant suite (default packages: ./...).\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *listOnly {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	byName := map[string]*lint.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "bflint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}
	if *skip != "" {
		skipped := map[string]bool{}
		for _, name := range strings.Split(*skip, ",") {
			name = strings.TrimSpace(name)
			if _, ok := byName[name]; !ok {
				fmt.Fprintf(os.Stderr, "bflint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			skipped[name] = true
		}
		kept := analyzers[:0:0]
		for _, a := range analyzers {
			if !skipped[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	if *tags != "" {
		// The loader and escapecheck both consult build.Default, so one
		// mutation covers file selection and the compiler pass alike.
		build.Default.BuildTags = strings.Split(*tags, ",")
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	emit := func(d lint.Diagnostic) {
		if *asJSON {
			enc.Encode(jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			return
		}
		fmt.Println(d)
	}

	failed := false
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		diags, allows, err := lint.CheckWithAllows(pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		if *staleAllows {
			diags = append(diags, lint.StaleAllows(allows, analyzers)...)
		}
		for _, d := range diags {
			emit(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bflint: %v\n", err)
	os.Exit(2)
}
