// Command bfablate runs the behavioural ablation sweeps of the bitmap
// filter's design choices (DESIGN.md §5):
//
//   - hash count m: measured random-packet penetration vs Equation 2 and
//     the exact Bloom form;
//   - k×Δt splits of the same T_e: benign drop rate and memory;
//   - partial vs full tuple hashing: alternate-remote-port admission;
//   - mark-all vs mark-current-only: benign drop rate.
//
// Usage:
//
//	bfablate [-duration 3m] [-rate 25] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bitmapfilter/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bfablate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration = flag.Duration("duration", 3*time.Minute, "trace duration for the trace-driven sweeps")
		rate     = flag.Float64("rate", 25, "session arrival rate per second")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := experiments.DefaultAblationConfig()
	cfg.Scale = experiments.Scale{Duration: *duration, ConnRate: *rate, Seed: *seed}
	res, err := experiments.RunAblations(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}
