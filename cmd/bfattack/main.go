// Command bfattack reproduces the attack experiments:
//
//   - default: Figure 5 — the random-scan flood mixed into the benign
//     trace, reporting the attack filtering rate and the per-interval
//     series of normal / attack / passed traffic.
//   - -apd: the §5.3 adaptive-packet-dropping comparison under a SYN scan.
//
// Usage:
//
//	bfattack [-duration 5m] [-rate 30] [-mult 20] [-series]
//	bfattack -apd [-scanrate 2000]
//	bfattack -collude | -bandwidth
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bitmapfilter/internal/asciiplot"
	"bitmapfilter/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bfattack:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration  = flag.Duration("duration", 5*time.Minute, "trace duration")
		rate      = flag.Float64("rate", 30, "session arrival rate per second")
		seed      = flag.Uint64("seed", 1, "random seed")
		mult      = flag.Float64("mult", 20, "attack rate as a multiple of the benign packet rate")
		startAt   = flag.Float64("start", 0.55, "attack start as a fraction of the trace")
		order     = flag.Uint("order", 20, "bitmap order n; shrink to match the paper's utilization at reduced trace scale")
		series    = flag.Bool("series", false, "print the Figure 5-a time series")
		plot      = flag.Bool("plot", false, "render the Figure 5-a series as an ASCII chart")
		apd       = flag.Bool("apd", false, "run the §5.3 APD experiment instead")
		scanrate  = flag.Float64("scanrate", 2000, "APD experiment scan rate (probes/s)")
		collude   = flag.Bool("collude", false, "run the §5.4 colluding-attacker sweep instead")
		bandwidth = flag.Bool("bandwidth", false, "run the bottleneck-link bandwidth-attack comparison instead")
		snoop     = flag.Float64("snoop", 0.05, "collusion: fraction of outgoing tuples sniffed")
	)
	flag.Parse()

	if *bandwidth {
		cfg := experiments.DefaultBandwidthConfig()
		cfg.Seed = *seed
		res, err := experiments.RunBandwidth(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
		return nil
	}

	if *collude {
		cfg := experiments.DefaultCollusionConfig()
		cfg.Scale = experiments.Scale{Duration: *duration, ConnRate: *rate, Seed: *seed}
		cfg.SnoopFraction = *snoop
		res, err := experiments.RunCollusion(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
		return nil
	}

	if *apd {
		cfg := experiments.DefaultAPDConfig()
		cfg.Seed = *seed
		cfg.ScanRate = *scanrate
		res, err := experiments.RunAPD(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
		return nil
	}

	cfg := experiments.DefaultFig5Config()
	cfg.Scale = experiments.Scale{Duration: *duration, ConnRate: *rate, Seed: *seed}
	cfg.AttackRateMultiplier = *mult
	cfg.AttackStartFraction = *startAt
	cfg.Order = *order
	res, err := experiments.RunFig5(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())

	if *plot {
		n := res.Normal.Len()
		normal := make([]float64, n)
		atk := make([]float64, n)
		passed := make([]float64, n)
		for i := 0; i < n; i++ {
			normal[i] = res.Normal.At(i)
			atk[i] = res.Attack.At(i)
			passed[i] = res.Passed.At(i)
		}
		fmt.Println("\nFigure 5-a (n=benign incoming, a=attack, p=passed):")
		fmt.Print(asciiplot.Lines([]string{"normal", "attack", "passed"},
			[][]float64{normal, atk, passed}, 72, 18))
	}

	if *series {
		fmt.Println("\nFigure 5-a series (t, normal_in, attack, passed):")
		for i := 0; i < res.Normal.Len(); i++ {
			fmt.Printf("  %5.0f %8.0f %9.0f %8.0f\n",
				res.Normal.BucketStart(i), res.Normal.At(i),
				res.Attack.At(i), res.Passed.At(i))
		}
	}
	return nil
}
