// Command bfanalysis evaluates the paper's closed-form analysis:
//
//   - default: the §4.1 capacity table (Equation 5 bounds, optimal m,
//     memory footprint) for the {4×20} configuration.
//   - -insider: the §5.2 insider-attack sweep, comparing simulated bitmap
//     utilization against the m·r·T_e/2^n estimate.
//
// Usage:
//
//	bfanalysis
//	bfanalysis -insider [-rates 100,1000,10000]
//	bfanalysis -plan -conns 15000 -p 0.05 [-te 20s] [-dt 5s] [-maxmem N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/experiments"
	"bitmapfilter/internal/model"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bfanalysis:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		insider = flag.Bool("insider", false, "run the §5.2 insider-attack sweep")
		rates   = flag.String("rates", "", "comma-separated flood rates for -insider")
		seed    = flag.Uint64("seed", 1, "random seed")
		plan    = flag.Bool("plan", false, "run the §3.4 parameter planner")
		conns   = flag.Float64("conns", 15000, "planner: expected active connections per T_e window")
		pTarget = flag.Float64("p", 0.05, "planner: target penetration probability")
		te      = flag.Duration("te", 20*time.Second, "planner: expiry timer T_e")
		dt      = flag.Duration("dt", 5*time.Second, "planner: rotation period Δt")
		maxmem  = flag.Uint64("maxmem", 0, "planner: memory cap in bytes (0 = unlimited)")
	)
	flag.Parse()

	if *plan {
		return runPlanner(*conns, *pTarget, *te, *dt, *maxmem, *seed)
	}

	if !*insider {
		res, err := experiments.RunCapacity()
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
		return nil
	}

	cfg := experiments.DefaultInsiderConfig()
	cfg.Seed = *seed
	if *rates != "" {
		parsed, err := parseRates(*rates)
		if err != nil {
			return err
		}
		cfg.Rates = parsed
	}
	res, err := experiments.RunInsider(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

// runPlanner prints the §3.4 recommendation and validates it by
// simulation: the planned filter is loaded with the expected connections
// and probed with random tuples.
func runPlanner(conns, pTarget float64, te, dt time.Duration, maxmem, seed uint64) error {
	plan, err := model.PlanFor(model.PlanInput{
		ActiveConnections: conns,
		TargetPenetration: pTarget,
		ExpiryTimer:       te,
		RotateEvery:       dt,
		MaxMemoryBytes:    maxmem,
	})
	if err != nil {
		return err
	}
	fmt.Println("recommended:", plan)

	f, err := core.New(
		core.WithOrder(plan.Order),
		core.WithVectors(plan.Vectors),
		core.WithHashes(plan.Hashes),
		core.WithRotateEvery(plan.RotateEvery),
		core.WithSeed(seed),
	)
	if err != nil {
		return err
	}
	r := xrand.New(seed)
	client := packet.AddrFrom4(10, 10, 0, 1)
	for i := 0; i < int(conns); i++ {
		f.Process(packet.Packet{
			Tuple: packet.Tuple{
				Src: client, Dst: packet.Addr(r.Uint32() | 1),
				SrcPort: uint16(1024 + i%60000), DstPort: 80, Proto: packet.TCP,
			},
			Dir: packet.Outgoing, Flags: packet.ACK,
		})
	}
	const probes = 500000
	hits := 0
	for i := 0; i < probes; i++ {
		tup := packet.Tuple{
			Src: packet.Addr(r.Uint32() | 1), Dst: client,
			SrcPort: uint16(1 + r.Intn(65535)), DstPort: uint16(1 + r.Intn(65535)),
			Proto: packet.TCP,
		}
		if f.WouldAdmit(tup) {
			hits++
		}
	}
	measured := float64(hits) / probes
	fmt.Printf("validated:   measured penetration %.3e over %d probes (target %.0e, Eq.2 predicts %.3e)\n",
		measured, probes, pTarget, plan.PredictedPenetration)
	if measured > pTarget {
		fmt.Println("warning: measured penetration exceeds the target; consider one order larger")
	}
	return nil
}

func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	rates := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parse rate %q: %w", p, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("rate %v must be positive", v)
		}
		rates = append(rates, v)
	}
	return rates, nil
}
