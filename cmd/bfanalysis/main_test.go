package main

import "testing"

func TestParseRates(t *testing.T) {
	got, err := parseRates("100, 2500.5 ,9")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{100, 2500.5, 9}
	if len(got) != len(want) {
		t.Fatalf("%d rates", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rate %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestParseRatesErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "100,-5", "100,0", "100,,200"} {
		if _, err := parseRates(in); err == nil {
			t.Errorf("parseRates(%q) accepted", in)
		}
	}
}
