// Command bftrace generates the calibrated synthetic client-network trace
// and reports the Figure 2 statistics (connection lifetimes, out-in packet
// delays, protocol mix). With -pcap it also writes the trace as a standard
// pcap file readable by tcpdump/Wireshark.
//
// Usage:
//
//	bftrace [-duration 10m] [-rate 40] [-seed 1] [-pcap trace.pcap] [-hist]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bitmapfilter/internal/experiments"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/pcap"
	"bitmapfilter/internal/trafficgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bftrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration = flag.Duration("duration", 10*time.Minute, "trace duration")
		rate     = flag.Float64("rate", 40, "session arrival rate per second")
		seed     = flag.Uint64("seed", 1, "random seed")
		pcapPath = flag.String("pcap", "", "also write the trace to this pcap file")
		hist     = flag.Bool("hist", false, "print the delay histogram tail (Figure 2-b)")
		profile  = flag.String("profile", "campus", "client-network archetype: campus, enterprise, dsl, wireless")
	)
	flag.Parse()

	prof, err := trafficgen.ParseProfile(*profile)
	if err != nil {
		return err
	}
	scale := experiments.Scale{Duration: *duration, ConnRate: *rate, Seed: *seed, Profile: prof}

	if *pcapPath != "" {
		if err := writePcap(*pcapPath, scale); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", *pcapPath)
	}

	res, err := experiments.RunFig2(scale)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())

	if *hist {
		fmt.Println("\nFigure 2-b delay histogram tail (>20s, 1s bins):")
		for bin := 21; bin < res.DelayHist.Bins() && bin < 300; bin++ {
			if c := res.DelayHist.Count(bin); c > 0 {
				fmt.Printf("  %4ds %6d %s\n", bin, c, bar(c))
			}
		}
	}
	return nil
}

func bar(n uint64) string {
	const maxBar = 50
	if n > maxBar {
		n = maxBar
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

// writePcap encodes the trace to the libpcap format.
func writePcap(path string, scale experiments.Scale) error {
	gen, err := trafficgen.NewGenerator(scale.TraceConfig())
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := pcap.NewWriter(f)
	if err != nil {
		return err
	}
	var encodeErr error
	gen.Drain(func(pkt packet.Packet) {
		if encodeErr != nil {
			return
		}
		frame, err := packet.Encode(pkt)
		if err != nil {
			encodeErr = err
			return
		}
		if err := w.WriteRecord(pcap.Record{Time: pkt.Time, Data: frame}); err != nil {
			encodeErr = err
		}
	})
	return encodeErr
}
