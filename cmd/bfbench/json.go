package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/live"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/tenant"
	"bitmapfilter/internal/xrand"
)

// The -json mode is the repo-local perf trajectory: it measures the pinned
// kernel+flavor benchmark matrix (single/safe/sharded/live × scalar/
// coalesced ProcessBatchInto on the standard 512-packet mixed batch) with
// a fixed -count and -benchtime, and writes machine-readable results to
// BENCH_<pr>.json. Checked-in BENCH files make every PR's speed claims
// diffable in-repo (`bfbench -compare old.json new.json`) instead of
// living only in CI logs.

// benchSchema identifies the BENCH file format.
const benchSchema = "bfbench/v1"

// benchFile is the serialized form of one benchmark run.
type benchFile struct {
	Schema      string        `json:"schema"`
	Label       string        `json:"label"`
	Go          string        `json:"go"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	CPUs        int           `json:"cpus"`
	Batch       int           `json:"batch"`
	Count       int           `json:"count"`
	BenchTimeMs int64         `json:"benchtime_ms"`
	Results     []benchResult `json:"results"`
}

// benchResult is one (flavor, kernel) cell of the matrix. NsPerPkt is the
// minimum across the -count runs — the least-noise estimator on a shared
// machine — with every run's value retained in Samples; AllocsPerOp is the
// maximum across runs (the hot-path contract is exactly 0) with
// testing.B.AllocsPerOp semantics: total mallocs over iterations,
// truncated, so ambient runtime activity (background GC on a busy box)
// does not smear the per-op contract the way a fractional report would.
type benchResult struct {
	Flavor      string    `json:"flavor"`
	Kernel      string    `json:"kernel"`
	NsPerPkt    float64   `json:"ns_per_pkt"`
	PPS         float64   `json:"pps"`
	AllocsPerOp uint64    `json:"allocs_per_op"`
	Samples     []float64 `json:"samples_ns_per_pkt"`
}

// benchWorkload builds the standard mixed batch: outgoing packets over
// distinct tuples interleaved with their replies, all timestamps zero (the
// same shape as the root-package BenchmarkProcessBatchInto).
func benchWorkload(n int, seed uint64) []packet.Packet {
	r := xrand.New(seed)
	pkts := make([]packet.Packet, 0, n)
	for i := 0; len(pkts) < n; i++ {
		tup := packet.Tuple{
			Src:     packet.AddrFrom4(10, 10, byte(i>>16), byte(i>>8)),
			Dst:     packet.Addr(r.Uint32() | 1),
			SrcPort: uint16(1024 + i%60000),
			DstPort: 80,
			Proto:   packet.TCP,
		}
		pkts = append(pkts,
			packet.Packet{Tuple: tup, Dir: packet.Outgoing, Flags: packet.ACK, Length: 60},
			packet.Packet{Tuple: tup.Reverse(), Dir: packet.Incoming, Flags: packet.ACK, Length: 60})
	}
	return pkts[:n]
}

// tenantWorkload is benchWorkload with the client side spread uniformly
// across the tenants flavor's 64 /16 prefixes, so a batch exercises the
// full route→group→dispatch path (LPM per packet, counting sort, ~64
// grouped sub-batches) rather than collapsing into one tenant.
func tenantWorkload(n int, seed uint64) []packet.Packet {
	r := xrand.New(seed)
	pkts := make([]packet.Packet, 0, n)
	for i := 0; len(pkts) < n; i++ {
		tup := packet.Tuple{
			Src:     packet.AddrFrom4(10, byte(i%benchTenants), byte(i>>8), byte(i)),
			Dst:     packet.Addr(r.Uint32() | 1),
			SrcPort: uint16(1024 + i%60000),
			DstPort: 80,
			Proto:   packet.TCP,
		}
		pkts = append(pkts,
			packet.Packet{Tuple: tup, Dir: packet.Outgoing, Flags: packet.ACK, Length: 60},
			packet.Packet{Tuple: tup.Reverse(), Dir: packet.Incoming, Flags: packet.ACK, Length: 60})
	}
	return pkts[:n]
}

// benchTenants is the pinned fleet size of the tenants flavor; the
// ns/pkt gap between the tenants and single rows is the routing +
// grouped-dispatch overhead the multi-tenant data plane costs.
const benchTenants = 64

// batchIntoFunc is the one method every measured flavor exposes.
type batchIntoFunc func([]packet.Packet, []filtering.Verdict) []filtering.Verdict

// cellFunc is one measured operation: process the cell's pinned workload
// once, reusing the verdict buffer. Filter flavors close over a packet
// batch; wire cells close over encoded frames and decode them first, so
// the matrix can price the full wire-to-verdict path in the same table.
type cellFunc func(out []filtering.Verdict) []filtering.Verdict

// mkFlavor builds one filter flavor with the given kernel mode and returns
// its batch entry point. The configurations are pinned (single/safe/live
// at the paper's {4×20}, sharded at 8×order-17) so results are comparable
// across PRs.
func mkFlavor(flavor string, kernels core.KernelMode) (batchIntoFunc, error) {
	opt := core.WithKernels(kernels)
	switch flavor {
	case "single":
		f, err := core.New(opt)
		if err != nil {
			return nil, err
		}
		return f.ProcessBatchInto, nil
	case "safe":
		f, err := core.New(opt)
		if err != nil {
			return nil, err
		}
		return core.NewSafe(f).ProcessBatchInto, nil
	case "sharded":
		s, err := core.NewSharded(8, core.WithOrder(17), opt)
		if err != nil {
			return nil, err
		}
		return s.ProcessBatchInto, nil
	case "live":
		f, err := core.New(opt)
		if err != nil {
			return nil, err
		}
		l, err := live.New(f)
		if err != nil {
			return nil, err
		}
		return l.ObserveBatchInto, nil
	case "tenants":
		cfgs := make([]tenant.Config, benchTenants)
		for t := range cfgs {
			cfgs[t] = tenant.Config{
				ID:     fmt.Sprintf("t%02d", t),
				Prefix: packet.PrefixFrom(packet.AddrFrom4(10, byte(t), 0, 0), 16),
				Options: []core.Option{
					core.WithOrder(14), core.WithSeed(uint64(t) + 1), opt,
				},
			}
		}
		s, err := tenant.NewSet(tenant.SetConfig{Tenants: cfgs})
		if err != nil {
			return nil, err
		}
		return s.ProcessBatchInto, nil
	}
	return nil, fmt.Errorf("unknown flavor %q", flavor)
}

// mkWireCell builds one wire-flavor cell: the standard batch re-encoded to
// 720-byte Ethernet/IPv4 frames (the simulator's average-packet shape),
// decoded back every op — DecodeInto for "zerocopy", Decode+ToPacket for
// "struct" — and pushed through a pinned single coalesced filter.
func mkWireCell(decode string, batch int) (cellFunc, int, error) {
	pkts := benchWorkload(batch, 8)
	frames := make([][]byte, len(pkts))
	for i := range pkts {
		pkts[i].Length = 720
		buf, err := packet.Encode(pkts[i])
		if err != nil {
			return nil, 0, err
		}
		frames[i] = buf
	}
	f, err := core.New(core.WithKernels(core.KernelCoalesced))
	if err != nil {
		return nil, 0, err
	}
	scratch := make([]packet.Packet, len(frames))
	switch decode {
	case "zerocopy":
		return func(out []filtering.Verdict) []filtering.Verdict {
			for i, fr := range frames {
				if err := packet.DecodeInto(&scratch[i], fr); err != nil {
					panic(err) // frames are self-encoded; decode cannot fail
				}
			}
			return f.ProcessBatchInto(scratch, out)
		}, len(frames), nil
	case "struct":
		return func(out []filtering.Verdict) []filtering.Verdict {
			for i, fr := range frames {
				df, err := packet.Decode(fr)
				if err != nil {
					panic(err) // frames are self-encoded; decode cannot fail
				}
				scratch[i] = df.ToPacket()
			}
			return f.ProcessBatchInto(scratch, out)
		}, len(frames), nil
	}
	return nil, 0, fmt.Errorf("unknown wire decode %q", decode)
}

// measure runs one timed window of back-to-back batches and reports
// (ns/pkt, allocs per batch call). pktsPerOp is how many packets one run
// call processes.
func measure(run cellFunc, pktsPerOp int, out []filtering.Verdict, benchtime time.Duration) (float64, uint64, []filtering.Verdict) {
	// Settle background GC work so stray runtime allocations don't land
	// inside the measurement window and smear the allocs/op contract.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	iters := 0
	start := time.Now()
	var elapsed time.Duration
	for elapsed < benchtime {
		for j := 0; j < 8; j++ {
			out = run(out)
		}
		iters += 8
		elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&after)
	nsPerPkt := float64(elapsed.Nanoseconds()) / float64(iters*pktsPerOp)
	allocs := (after.Mallocs - before.Mallocs) / uint64(iters)
	return nsPerPkt, allocs, out
}

// runJSONBench measures the pinned matrix and writes the BENCH file to w.
// The count measurement windows are taken round-robin across every
// (flavor, kernel) cell rather than back-to-back per cell: on a shared
// machine, load drifts on the scale of seconds, and interleaving spreads
// that drift across all cells so min-of-count comparisons (scalar vs
// coalesced in particular) are not biased by when a cell happened to run.
func runJSONBench(w io.Writer, label string, batch, count int, benchtime time.Duration) error {
	pkts := benchWorkload(batch, 8)
	file := benchFile{
		Schema:      benchSchema,
		Label:       label,
		Go:          runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Batch:       batch,
		Count:       count,
		BenchTimeMs: benchtime.Milliseconds(),
	}
	kernels := []struct {
		name string
		mode core.KernelMode
	}{
		{name: "scalar", mode: core.KernelScalar},
		{name: "coalesced", mode: core.KernelCoalesced},
	}
	type cell struct {
		res   benchResult
		run   cellFunc
		perOp int
		out   []filtering.Verdict
	}
	var cells []*cell
	for _, flavor := range []string{"single", "safe", "sharded", "live", "tenants"} {
		for _, k := range kernels {
			bi, err := mkFlavor(flavor, k.mode)
			if err != nil {
				return err
			}
			// The tenants flavor routes by client prefix, so its batch
			// spreads clients across the fleet; every other flavor shares
			// the standard workload, keeping row shapes identical.
			cellPkts := pkts
			if flavor == "tenants" {
				cellPkts = tenantWorkload(batch, 8)
			}
			c := &cell{
				res:   benchResult{Flavor: flavor, Kernel: k.name, Samples: make([]float64, 0, count)},
				run:   func(out []filtering.Verdict) []filtering.Verdict { return bi(cellPkts, out) },
				perOp: len(cellPkts),
			}
			cells = append(cells, c)
		}
	}
	// The wire rows price the live packet plane: the same standard batch
	// encoded to 720-byte frames (the paper's average packet size) and
	// decoded back per op — zero-copy header decode vs. the full Frame
	// decode — before the identical ProcessBatchInto call. The gap between
	// wire/zerocopy and the single rows is the decode cost per packet.
	for _, decode := range []string{"zerocopy", "struct"} {
		run, perOp, err := mkWireCell(decode, batch)
		if err != nil {
			return err
		}
		cells = append(cells, &cell{
			res:   benchResult{Flavor: "wire", Kernel: decode, Samples: make([]float64, 0, count)},
			run:   run,
			perOp: perOp,
		})
	}
	for _, c := range cells {
		// Warm up: grow the verdict buffer and scratch pools, prime
		// caches and branch predictors.
		for j := 0; j < 32; j++ {
			c.out = c.run(c.out)
		}
	}
	for s := 0; s < count; s++ {
		for _, c := range cells {
			ns, allocs, o := measure(c.run, c.perOp, c.out, benchtime)
			c.out = o
			c.res.Samples = append(c.res.Samples, ns)
			if s == 0 || ns < c.res.NsPerPkt {
				c.res.NsPerPkt = ns
			}
			if allocs > c.res.AllocsPerOp {
				c.res.AllocsPerOp = allocs
			}
		}
		fmt.Fprintf(os.Stderr, "  pass %d/%d done\n", s+1, count)
	}
	for _, c := range cells {
		c.res.PPS = 1e9 / c.res.NsPerPkt
		file.Results = append(file.Results, c.res)
		fmt.Fprintf(os.Stderr, "  %-8s %-10s %8.1f ns/pkt  %12.0f pps  %d allocs/op\n",
			c.res.Flavor, c.res.Kernel, c.res.NsPerPkt, c.res.PPS, c.res.AllocsPerOp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// loadBenchFile reads and validates a BENCH_*.json file.
func loadBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, benchSchema)
	}
	return &f, nil
}

// compareBench prints a per-config delta table between two BENCH files —
// the in-repo benchstat for the persisted perf trajectory.
func compareBench(w io.Writer, oldPath, newPath string) error {
	oldF, err := loadBenchFile(oldPath)
	if err != nil {
		return err
	}
	newF, err := loadBenchFile(newPath)
	if err != nil {
		return err
	}
	oldBy := map[string]benchResult{}
	for _, r := range oldF.Results {
		oldBy[r.Flavor+"/"+r.Kernel] = r
	}
	fmt.Fprintf(w, "%-20s %12s %12s %9s\n", "flavor/kernel",
		oldF.Label+" ns/pkt", newF.Label+" ns/pkt", "delta")
	for _, nr := range newF.Results {
		key := nr.Flavor + "/" + nr.Kernel
		or, ok := oldBy[key]
		if !ok {
			fmt.Fprintf(w, "%-20s %12s %12.1f %9s\n", key, "-", nr.NsPerPkt, "new")
			continue
		}
		delta := (nr.NsPerPkt - or.NsPerPkt) / or.NsPerPkt * 100
		fmt.Fprintf(w, "%-20s %12.1f %12.1f %+8.1f%%\n", key, or.NsPerPkt, nr.NsPerPkt, delta)
	}
	return nil
}
