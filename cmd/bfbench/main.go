// Command bfbench reproduces Table 1 — the storage and per-operation cost
// comparison of the bitmap filter against the hash+linked-list
// (Linux-conntrack-style) and AVL-tree SPI tables — and doubles as the
// repo's pinned performance harness.
//
// Usage:
//
//	bfbench [-conns 2560000] [-seed 1]
//	bfbench -json [-o BENCH_n.json] [-label n] [-count 5] [-benchtime 300ms] [-batch 512]
//	bfbench -compare OLD.json NEW.json
//
// The default connection count is the paper's 2.56 M scenario; use a
// smaller -conns for quick runs. -json measures the pinned kernel+flavor
// benchmark matrix and writes a BENCH file (see json.go); -compare diffs
// two BENCH files.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bitmapfilter/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bfbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		conns     = flag.Int("conns", experiments.Table1Connections, "concurrent connections to load")
		seed      = flag.Uint64("seed", 1, "random seed")
		jsonMode  = flag.Bool("json", false, "run the pinned kernel+flavor matrix and emit a BENCH json file")
		out       = flag.String("o", "", "with -json: output path (default stdout)")
		label     = flag.String("label", "dev", "with -json: label recorded in the BENCH file (e.g. the PR number)")
		count     = flag.Int("count", 5, "with -json: timed runs per configuration (min is reported)")
		benchtime = flag.Duration("benchtime", 300*time.Millisecond, "with -json: duration of each timed run")
		batch     = flag.Int("batch", 512, "with -json: packets per ProcessBatchInto call")
		compare   = flag.Bool("compare", false, "diff two BENCH json files: bfbench -compare OLD.json NEW.json")
	)
	flag.Parse()

	switch {
	case *compare:
		if flag.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two BENCH files, got %d args", flag.NArg())
		}
		return compareBench(os.Stdout, flag.Arg(0), flag.Arg(1))
	case *jsonMode:
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return runJSONBench(w, *label, *batch, *count, *benchtime)
	}

	res, err := experiments.RunTable1(*conns, *seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	fmt.Println("\ncomplexity columns (from the paper):")
	for _, row := range res.Rows {
		fmt.Printf("  %-24s insert %-10s lookup %-12s gc %s\n",
			row.Name, row.InsertComplexity, row.LookupComplexity, row.GCComplexity)
	}
	return nil
}
