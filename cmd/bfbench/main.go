// Command bfbench reproduces Table 1: the storage and per-operation cost
// comparison of the bitmap filter against the hash+linked-list
// (Linux-conntrack-style) and AVL-tree SPI tables.
//
// Usage:
//
//	bfbench [-conns 2560000] [-seed 1]
//
// The default connection count is the paper's 2.56 M scenario; use a
// smaller -conns for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"bitmapfilter/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bfbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		conns = flag.Int("conns", experiments.Table1Connections, "concurrent connections to load")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	res, err := experiments.RunTable1(*conns, *seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	fmt.Println("\ncomplexity columns (from the paper):")
	for _, row := range res.Rows {
		fmt.Printf("  %-24s insert %-10s lookup %-12s gc %s\n",
			row.Name, row.InsertComplexity, row.LookupComplexity, row.GCComplexity)
	}
	return nil
}
