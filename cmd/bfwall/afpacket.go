//go:build linux && afpacket

package main

import "bitmapfilter/internal/capture"

// openAFPacket binds the live AF_PACKET backend. Only compiled with the
// "afpacket" build tag on Linux.
func openAFPacket(iface string, snapLen int) (capture.Source, error) {
	return capture.NewAFPacket(iface, snapLen)
}
