package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bitmapfilter/internal/checkpoint"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/resilience"
	"bitmapfilter/internal/xrand"
)

// Decode-error classes surfaced on /stats and /metrics. Real links carry
// traffic the filter deliberately refuses to judge (ARP, IPv6, fragments,
// corrupt frames); per-class counters separate "the wire is weird" from
// "the decoder is broken".
const (
	decTruncated = iota
	decNotIPv4
	decMalformed
	decChecksum
	decFragmented
	decProto
	decOther
	decClasses
)

var decClassNames = [decClasses]string{
	"truncated", "not_ipv4", "malformed", "checksum", "fragmented", "proto", "other",
}

func decClass(err error) int {
	switch {
	case errors.Is(err, packet.ErrTruncated):
		return decTruncated
	case errors.Is(err, packet.ErrNotIPv4):
		return decNotIPv4
	case errors.Is(err, packet.ErrBadIPVersion), errors.Is(err, packet.ErrBadIHL):
		return decMalformed
	case errors.Is(err, packet.ErrBadChecksum):
		return decChecksum
	case errors.Is(err, packet.ErrFragmented):
		return decFragmented
	case errors.Is(err, packet.ErrProto):
		return decProto
	default:
		return decOther
	}
}

// reservoirSize bounds the latency sample set: enough for a stable p99,
// constant memory regardless of run length.
const reservoirSize = 4096

// wallStats is the daemon's observability state. The counters are written
// by the pump goroutine and read by HTTP handlers, so everything is
// atomic; the latency reservoir has its own lock (it is touched once per
// batch, not per packet).
type wallStats struct {
	start time.Time

	frames    atomic.Uint64
	bytes     atomic.Uint64
	truncated atomic.Uint64
	decodeErr [decClasses]atomic.Uint64
	unrouted  atomic.Uint64 // decodable but outside every client subnet

	outgoing atomic.Uint64
	incoming atomic.Uint64
	passed   atomic.Uint64
	dropped  atomic.Uint64

	// Panic containment: batches quarantined by the pump's recover
	// boundary, and the frames they carried (never judged).
	quarantinedBatches atomic.Uint64
	quarantinedFrames  atomic.Uint64

	mu      sync.Mutex
	rng     *xrand.Rand
	samples []time.Duration // per-packet latency reservoir
	seen    uint64
}

func newWallStats(start time.Time) *wallStats {
	return &wallStats{
		start:   start,
		rng:     xrand.New(0xbf0a11),
		samples: make([]time.Duration, 0, reservoirSize),
	}
}

// observeBatchLatency folds one batch's wall-clock processing time into
// the per-packet latency reservoir: each of the n packets is attributed
// the batch average, which is exactly the per-packet cost the saturation
// question cares about (can the loop keep up), without a clock read per
// packet.
func (s *wallStats) observeBatchLatency(elapsed time.Duration, n int) {
	if n <= 0 {
		return
	}
	per := elapsed / time.Duration(n)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < n; i++ {
		s.seen++
		if len(s.samples) < reservoirSize {
			s.samples = append(s.samples, per)
			continue
		}
		if j := s.rng.Intn(int(s.seen)); j < reservoirSize {
			s.samples[j] = per
		}
	}
}

// latencyQuantiles returns the requested quantiles of the reservoir
// (zeros when nothing was sampled yet).
func (s *wallStats) latencyQuantiles(qs ...float64) []time.Duration {
	s.mu.Lock()
	sorted := append([]time.Duration(nil), s.samples...)
	s.mu.Unlock()
	out := make([]time.Duration, len(qs))
	if len(sorted) == 0 {
		return out
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, q := range qs {
		idx := int(q * float64(len(sorted)-1))
		out[i] = sorted[idx]
	}
	return out
}

func (s *wallStats) decodeErrors() (per map[string]uint64, total uint64) {
	per = make(map[string]uint64, decClasses)
	for i := range s.decodeErr {
		v := s.decodeErr[i].Load()
		per[decClassNames[i]] = v
		total += v
	}
	return per, total
}

// statsSnapshot is the JSON shape of GET /stats.
type statsSnapshot struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Frames        uint64            `json:"frames"`
	Bytes         uint64            `json:"bytes"`
	Truncated     uint64            `json:"truncated"`
	DecodeErrors  map[string]uint64 `json:"decode_errors"`
	Unrouted      uint64            `json:"unrouted"`
	Outgoing      uint64            `json:"outgoing"`
	Incoming      uint64            `json:"incoming"`
	Passed        uint64            `json:"passed"`
	Dropped       uint64            `json:"dropped"`
	Quarantined   uint64            `json:"quarantined_batches"`
	PPS           float64           `json:"pps"`
	LatencyP50Ns  int64             `json:"latency_p50_ns"`
	LatencyP99Ns  int64             `json:"latency_p99_ns"`
	Filter        filterSnapshot    `json:"filter"`
}

type filterSnapshot struct {
	Name        string             `json:"name"`
	MemoryBytes uint64             `json:"memory_bytes"`
	Counters    filtering.Counters `json:"counters"`
}

func (s *wallStats) snapshot(bf filtering.BatchFilter, now time.Time) statsSnapshot {
	uptime := now.Sub(s.start).Seconds()
	frames := s.frames.Load()
	per, _ := s.decodeErrors()
	lat := s.latencyQuantiles(0.50, 0.99)
	pps := 0.0
	if uptime > 0 {
		pps = float64(frames) / uptime
	}
	return statsSnapshot{
		UptimeSeconds: uptime,
		Frames:        frames,
		Bytes:         s.bytes.Load(),
		Truncated:     s.truncated.Load(),
		DecodeErrors:  per,
		Unrouted:      s.unrouted.Load(),
		Outgoing:      s.outgoing.Load(),
		Incoming:      s.incoming.Load(),
		Passed:        s.passed.Load(),
		Dropped:       s.dropped.Load(),
		Quarantined:   s.quarantinedBatches.Load(),
		PPS:           pps,
		LatencyP50Ns:  int64(lat[0]),
		LatencyP99Ns:  int64(lat[1]),
		Filter: filterSnapshot{
			Name:        bf.Name(),
			MemoryBytes: bf.MemoryBytes(),
			Counters:    bf.Counters(),
		},
	}
}

// resiliencePlane bundles the resilience layer's observable surfaces for
// the monitoring mux. Every field may be nil/zero: the mux degrades to
// the bare pump view (tests and -queue=0 runs).
type resiliencePlane struct {
	sup     *resilience.Supervisor
	buf     *resilience.Buffer
	health  *resilience.Health
	cp      *checkpoint.Checkpointer
	restore checkpoint.RestoreResult
	policy  resilience.OverloadPolicy
	stats   *wallStats
}

// newMux wires the monitoring endpoints: /healthz liveness (503 when a
// supervised loop stalls), /readyz readiness (503 while starting or
// draining), /stats JSON, /metrics Prometheus text exposition. plane may
// be nil.
func newMux(s *wallStats, bf filtering.BatchFilter, plane *resiliencePlane) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if plane != nil && plane.health != nil {
			if ok, detail := plane.health.Live(); !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, "stalled:", detail)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if plane != nil && plane.health != nil {
			if ok, detail := plane.health.Ready(); !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, "not ready:", detail)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.snapshot(bf, time.Now()))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap := s.snapshot(bf, time.Now())
		fmt.Fprintf(w, "# TYPE bfwall_frames_total counter\nbfwall_frames_total %d\n", snap.Frames)
		fmt.Fprintf(w, "# TYPE bfwall_bytes_total counter\nbfwall_bytes_total %d\n", snap.Bytes)
		fmt.Fprintf(w, "# TYPE bfwall_truncated_frames_total counter\nbfwall_truncated_frames_total %d\n", snap.Truncated)
		fmt.Fprintf(w, "# TYPE bfwall_decode_errors_total counter\n")
		for i := range decClassNames {
			fmt.Fprintf(w, "bfwall_decode_errors_total{class=%q} %d\n",
				decClassNames[i], snap.DecodeErrors[decClassNames[i]])
		}
		fmt.Fprintf(w, "# TYPE bfwall_unrouted_packets_total counter\nbfwall_unrouted_packets_total %d\n", snap.Unrouted)
		fmt.Fprintf(w, "# TYPE bfwall_packets_total counter\n")
		fmt.Fprintf(w, "bfwall_packets_total{dir=\"out\"} %d\n", snap.Outgoing)
		fmt.Fprintf(w, "bfwall_packets_total{dir=\"in\"} %d\n", snap.Incoming)
		fmt.Fprintf(w, "# TYPE bfwall_verdicts_total counter\n")
		fmt.Fprintf(w, "bfwall_verdicts_total{verdict=\"pass\"} %d\n", snap.Passed)
		fmt.Fprintf(w, "bfwall_verdicts_total{verdict=\"drop\"} %d\n", snap.Dropped)
		fmt.Fprintf(w, "# TYPE bfwall_pps gauge\nbfwall_pps %g\n", snap.PPS)
		fmt.Fprintf(w, "# TYPE bfwall_packet_latency_seconds gauge\n")
		fmt.Fprintf(w, "bfwall_packet_latency_seconds{quantile=\"0.5\"} %g\n",
			time.Duration(snap.LatencyP50Ns).Seconds())
		fmt.Fprintf(w, "bfwall_packet_latency_seconds{quantile=\"0.99\"} %g\n",
			time.Duration(snap.LatencyP99Ns).Seconds())
		fmt.Fprintf(w, "# TYPE bfwall_filter_memory_bytes gauge\nbfwall_filter_memory_bytes %d\n",
			snap.Filter.MemoryBytes)
		if plane != nil {
			plane.writeMetrics(w)
		}
	})
	return mux
}

// writeMetrics renders the resilience layer's Prometheus series. The
// bitmapfilter_resilience_* namespace is shared with internal/httpapi so
// one alert set covers both daemons.
func (p *resiliencePlane) writeMetrics(w io.Writer) {
	pol := p.policy.String()
	if p.sup != nil {
		st := p.sup.Stats()
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_source_reads_total counter\nbitmapfilter_resilience_source_reads_total %d\n", st.Reads)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_source_transient_errors_total counter\nbitmapfilter_resilience_source_transient_errors_total %d\n", st.TransientErrors)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_source_reopens_total counter\nbitmapfilter_resilience_source_reopens_total %d\n", st.Reopens)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_source_reopen_failures_total counter\nbitmapfilter_resilience_source_reopen_failures_total %d\n", st.ReopenFailures)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_source_fatal_errors_total counter\nbitmapfilter_resilience_source_fatal_errors_total %d\n", st.FatalErrors)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_backoffs_total counter\nbitmapfilter_resilience_backoffs_total %d\n", st.Backoffs)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_backoff_seconds_total counter\nbitmapfilter_resilience_backoff_seconds_total %g\n", st.BackoffTotal.Seconds())
	}
	if p.buf != nil {
		st := p.buf.Stats()
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_queue_depth gauge\nbitmapfilter_resilience_queue_depth %d\n", st.Depth)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_queue_capacity gauge\nbitmapfilter_resilience_queue_capacity %d\n", st.Capacity)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_queue_max_depth gauge\nbitmapfilter_resilience_queue_max_depth %d\n", st.MaxDepth)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_accepted_frames_total counter\nbitmapfilter_resilience_accepted_frames_total %d\n", st.Accepted)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_shed_frames_total counter\nbitmapfilter_resilience_shed_frames_total{policy=%q} %d\n", pol, st.Shed)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_shed_events_total counter\nbitmapfilter_resilience_shed_events_total %d\n", st.ShedEvents)
		shedding := 0
		if st.Shedding {
			shedding = 1
		}
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_shedding gauge\nbitmapfilter_resilience_shedding %d\n", shedding)
	}
	if p.stats != nil {
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_quarantined_batches_total counter\nbitmapfilter_resilience_quarantined_batches_total %d\n", p.stats.quarantinedBatches.Load())
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_quarantined_frames_total counter\nbitmapfilter_resilience_quarantined_frames_total{policy=%q} %d\n", pol, p.stats.quarantinedFrames.Load())
	}
	if p.health != nil {
		live, _ := p.health.Live()
		ready, _ := p.health.Ready()
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_live gauge\nbitmapfilter_resilience_live %d\n", b2i(live))
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_ready gauge\nbitmapfilter_resilience_ready %d\n", b2i(ready))
		state := p.health.State()
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_state gauge\n")
		for _, s := range []resilience.State{resilience.StateStarting, resilience.StateReady, resilience.StateDraining} {
			fmt.Fprintf(w, "bitmapfilter_resilience_state{state=%q} %d\n", s, b2i(s == state))
		}
		if wd := p.health.Watchdog(); wd != nil {
			fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_probe_beats_total counter\n")
			fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_probe_age_seconds gauge\n")
			fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_probe_stalled gauge\n")
			for _, ps := range wd.Status() {
				fmt.Fprintf(w, "bitmapfilter_resilience_probe_beats_total{probe=%q} %d\n", ps.Name, ps.Beats)
				fmt.Fprintf(w, "bitmapfilter_resilience_probe_age_seconds{probe=%q} %g\n", ps.Name, ps.Age.Seconds())
				fmt.Fprintf(w, "bitmapfilter_resilience_probe_stalled{probe=%q} %d\n", ps.Name, b2i(ps.Stalled))
			}
		}
	}
	if p.cp != nil {
		st := p.cp.Stats()
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_checkpoint_successes_total counter\nbitmapfilter_resilience_checkpoint_successes_total %d\n", st.Successes)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_checkpoint_failures_total counter\nbitmapfilter_resilience_checkpoint_failures_total %d\n", st.Failures)
		fmt.Fprintf(w, "# TYPE bitmapfilter_resilience_restore_outcome gauge\nbitmapfilter_resilience_restore_outcome{outcome=%q} 1\n", p.restore.Outcome)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
