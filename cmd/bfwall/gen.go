package main

import (
	"fmt"
	"io"
	"time"

	"bitmapfilter/internal/attack"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/pcap"
	"bitmapfilter/internal/trafficgen"
)

// genConfig parameterizes the synthesized benchmark trace: the paper's
// Figure 5 scenario, a random scan flood at scanPPS aimed into the client
// subnets, over a bed of legitimate bidirectional sessions so the filter
// exercises both the mark (outgoing) and judge (incoming) paths.
type genConfig struct {
	scanPPS  float64
	connRate float64
	duration time.Duration
	seed     uint64
	subnets  []packet.Prefix
}

// writeScanTrace encodes the merged legitimate+scan packet stream into a
// pcap stream on w and returns how many frames it wrote and the virtual
// time the trace spans.
func writeScanTrace(w io.Writer, cfg genConfig) (frames uint64, span time.Duration, err error) {
	tg := trafficgen.DefaultConfig()
	tg.Duration = cfg.duration
	tg.ConnRate = cfg.connRate
	tg.Seed = cfg.seed
	if len(cfg.subnets) > 0 {
		tg.Subnets = cfg.subnets
	}
	gen, err := trafficgen.NewGenerator(tg)
	if err != nil {
		return 0, 0, fmt.Errorf("trafficgen: %w", err)
	}
	scan, err := attack.NewRandomScan(attack.RandomScanConfig{
		Seed:     cfg.seed + 1,
		Rate:     cfg.scanPPS,
		Duration: cfg.duration,
		Subnets:  tg.Subnets,
	})
	if err != nil {
		return 0, 0, fmt.Errorf("scan: %w", err)
	}

	pw, err := pcap.NewWriter(w)
	if err != nil {
		return 0, 0, err
	}
	stream := attack.Merge(gen, scan)
	for {
		pkt, ok := stream.Next()
		if !ok {
			break
		}
		frame, err := packet.Encode(pkt)
		if err != nil {
			return frames, span, fmt.Errorf("encode: %w", err)
		}
		if err := pw.WriteRecord(pcap.Record{Time: pkt.Time, Data: frame}); err != nil {
			return frames, span, err
		}
		frames++
		span = pkt.Time
	}
	return frames, span, nil
}
