// Command bfwall is the live packet plane: it pulls raw Ethernet frames
// from a capture source, decodes them on the zero-copy header path
// (packet.DecodeInto — no Frame materialization, no payload reads),
// batches them into the filter's allocation-free batch data plane, and
// emits verdicts at line rate with an HTTP monitoring plane on the side:
//
//	GET /healthz   liveness
//	GET /stats     pump + filter introspection (JSON)
//	GET /metrics   Prometheus text exposition (pps, drops, decode error
//	               classes, p50/p99 per-packet latency)
//
// Sources, most hermetic first:
//
//	(default)      a synthesized Figure 5 trace — legitimate sessions
//	               with a random-scan flood at -scan-pps — replayed
//	               through the full wire path, -loops times
//	-pcap FILE     a recorded trace, replayed at filter speed
//	-iface NAME    a real NIC via AF_PACKET (build with -tags afpacket;
//	               needs CAP_NET_RAW)
//
// In -bench mode the daemon runs the source to exhaustion and reports
// whether the pump saturates -target packets per second (the paper's
// Figure 5 scan floor is 500K pps), with per-packet latency quantiles.
// With -gen FILE it writes the synthesized trace to a pcap file and
// exits, so the same trace can be replayed elsewhere (tcpdump, bfreplay).
//
// Usage:
//
//	bfwall -bench                         # saturation check, in memory
//	bfwall -gen scan.pcap -scan-pps 500000
//	bfwall -pcap scan.pcap -loops 10 -listen :8081
//	bfwall -tenants fleet.json -pcap trace.pcap
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bitmapfilter/internal/capture"
	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/tenant"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bfwall:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bfwall", flag.ContinueOnError)
	var (
		pcapPath = fs.String("pcap", "", "pcap trace to replay (default: synthesize one in memory)")
		loops    = fs.Int("loops", 1, "replay the trace this many times back-to-back")
		iface    = fs.String("iface", "", "live AF_PACKET capture interface (requires -tags afpacket build)")
		snapLen  = fs.Int("snaplen", capture.DefaultSnapLen, "per-frame capture buffer bytes")
		batch    = fs.Int("batch", 512, "frames per batch through the filter data plane")
		listen   = fs.String("listen", "", "HTTP monitoring address (e.g. 127.0.0.1:8081); empty serves nothing")
		benchRun = fs.Bool("bench", false, "run the source to exhaustion, print a saturation report, exit")
		target   = fs.Float64("target", 500_000, "saturation target in packets/s for -bench")
		genPath  = fs.String("gen", "", "write the synthesized trace to this pcap file and exit")

		subnetsF = fs.String("subnets", "10.0.0.0/8", "comma-separated client subnets for direction classification")
		order    = fs.Uint("order", 20, "bitmap order n")
		vectors  = fs.Int("vectors", 4, "bitmap vector count k")
		hashes   = fs.Int("hashes", 3, "hash count m")
		rotate   = fs.Duration("rotate", 5*time.Second, "rotation period Δt")
		shards   = fs.Int("shards", 1, "shard count (>1 runs the sharded data plane)")
		tenantsF = fs.String("tenants", "", "multi-tenant fleet config (JSON); replaces the geometry flags")

		scanPPS  = fs.Float64("scan-pps", 500_000, "synthesized scan rate in packets/s")
		connRate = fs.Float64("conn-rate", 25, "synthesized legitimate session arrival rate per second")
		genDur   = fs.Duration("gen-duration", time.Second, "synthesized trace duration (virtual time)")
		seed     = fs.Uint64("seed", 1, "synthesized trace seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	subnets, err := parseSubnets(*subnetsF)
	if err != nil {
		return err
	}
	gcfg := genConfig{
		scanPPS:  *scanPPS,
		connRate: *connRate,
		duration: *genDur,
		seed:     *seed,
		subnets:  subnets,
	}

	// -gen: synthesize, persist, done.
	if *genPath != "" {
		f, err := os.Create(*genPath)
		if err != nil {
			return err
		}
		frames, span, err := writeScanTrace(f, gcfg)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "bfwall: wrote %d frames spanning %v to %s\n", frames, span, *genPath)
		return nil
	}

	bf, tenantPrefixes, err := buildFilter(*tenantsF, *order, *vectors, *hashes, *rotate, *shards)
	if err != nil {
		return err
	}
	if tenantPrefixes != nil {
		// A tenant fleet's routing prefixes are its client subnets.
		subnets = tenantPrefixes
	}

	src, err := openSource(*pcapPath, *iface, *loops, *snapLen, gcfg, out)
	if err != nil {
		return err
	}
	defer src.Close()

	stats := newWallStats(time.Now())
	p := newPump(src, bf, subnets, *batch, *snapLen, stats)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var srv *http.Server
	httpErr := make(chan error, 1)
	if *listen != "" {
		srv = &http.Server{
			Addr:              *listen,
			Handler:           newMux(stats, bf),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			fmt.Fprintf(out, "bfwall: monitoring on http://%s\n", *listen)
			if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				httpErr <- err
				return
			}
			httpErr <- nil
		}()
	}

	// The pump owns the hot loop; a signal closes the source, which makes
	// ReadBatch return and the pump drain out.
	pumpDone := make(chan error, 1)
	go func() { pumpDone <- p.run() }()
	go func() {
		<-ctx.Done()
		src.Close()
	}()

	start := time.Now()
	err = <-pumpDone
	elapsed := time.Since(start)
	if srv != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		if herr := <-httpErr; err == nil {
			err = herr
		}
	}
	if err != nil {
		return err
	}

	if *benchRun {
		printBenchReport(out, stats, elapsed, *target)
	} else {
		snap := stats.snapshot(bf, time.Now())
		fmt.Fprintf(out, "bfwall: %d frames, %d out / %d in (%d passed, %d dropped), %d decode errors\n",
			snap.Frames, snap.Outgoing, snap.Incoming, snap.Passed, snap.Dropped,
			sumDecodeErrors(snap.DecodeErrors))
	}
	return nil
}

func sumDecodeErrors(per map[string]uint64) (total uint64) {
	for _, v := range per {
		total += v
	}
	return total
}

// parseSubnets parses a comma-separated CIDR list.
func parseSubnets(s string) ([]packet.Prefix, error) {
	if s == "" {
		return nil, nil
	}
	var out []packet.Prefix
	for _, part := range strings.Split(s, ",") {
		p, err := packet.ParsePrefix(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-subnets: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// buildFilter composes the filter flavor from the flags: a tenant fleet
// when a config file is given, otherwise a single or sharded bitmap
// filter via the unified builder. For a fleet it also returns the
// tenants' routing prefixes (used as the client subnets).
func buildFilter(tenantsPath string, order uint, vectors, hashes int, rotate time.Duration, shards int) (filtering.BatchFilter, []packet.Prefix, error) {
	if tenantsPath != "" {
		data, err := os.ReadFile(tenantsPath)
		if err != nil {
			return nil, nil, err
		}
		cfg, err := tenant.ParseConfig(data)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", tenantsPath, err)
		}
		set, err := tenant.NewSet(cfg)
		if err != nil {
			return nil, nil, err
		}
		prefixes := make([]packet.Prefix, len(cfg.Tenants))
		for i := range cfg.Tenants {
			prefixes[i] = cfg.Tenants[i].Prefix
		}
		return set, prefixes, nil
	}
	opts := []core.Option{
		core.WithOrder(order),
		core.WithVectors(vectors),
		core.WithHashes(hashes),
		core.WithRotateEvery(rotate),
	}
	if shards > 1 {
		opts = append(opts, core.WithShards(shards))
	}
	f, err := core.Build(opts...)
	if err != nil {
		return nil, nil, err
	}
	return f, nil, nil
}

// openSource picks the capture source: a NIC with -iface, a trace file
// with -pcap, otherwise a trace synthesized in memory.
func openSource(pcapPath, iface string, loops, snapLen int, gcfg genConfig, out io.Writer) (capture.Source, error) {
	if iface != "" {
		return openAFPacket(iface, snapLen)
	}
	if pcapPath != "" {
		data, err := os.ReadFile(pcapPath)
		if err != nil {
			return nil, err
		}
		return capture.NewReplay(bytes.NewReader(data), loops)
	}
	var buf bytes.Buffer
	frames, span, err := writeScanTrace(&buf, gcfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "bfwall: synthesized %d frames spanning %v (scan %.0f pps)\n",
		frames, span, gcfg.scanPPS)
	return capture.NewReplay(bytes.NewReader(buf.Bytes()), loops)
}

// pump is the wire-to-verdict hot loop: one reusable frame ring, one
// reusable packet batch, one reusable verdict buffer — zero allocations
// per frame in steady state.
type pump struct {
	src      capture.Source
	bf       filtering.BatchFilter
	subnets  []packet.Prefix
	ring     []capture.Frame
	pkts     []packet.Packet
	verdicts []filtering.Verdict
	stats    *wallStats
}

func newPump(src capture.Source, bf filtering.BatchFilter, subnets []packet.Prefix, batch, snapLen int, stats *wallStats) *pump {
	if batch < 1 {
		batch = 1
	}
	return &pump{
		src:      src,
		bf:       bf,
		subnets:  subnets,
		ring:     capture.NewRing(batch, snapLen),
		pkts:     make([]packet.Packet, 0, batch),
		verdicts: make([]filtering.Verdict, 0, batch),
		stats:    stats,
	}
}

func (p *pump) inside(a packet.Addr) bool {
	for _, s := range p.subnets {
		if s.Contains(a) {
			return true
		}
	}
	return false
}

// run drains the source through the filter until EOF.
func (p *pump) run() error {
	for {
		n, err := p.src.ReadBatch(p.ring)
		if n > 0 {
			p.processBatch(p.ring[:n])
		}
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// processBatch is the per-batch fast path: zero-copy decode each frame,
// classify its direction against the client subnets, and push the whole
// batch through ProcessBatchInto in one call.
func (p *pump) processBatch(frames []capture.Frame) {
	start := time.Now()
	pkts := p.pkts[:0]
	for i := range frames {
		p.stats.frames.Add(1)
		p.stats.bytes.Add(uint64(frames[i].OrigLen))
		if frames[i].Truncated() {
			p.stats.truncated.Add(1)
		}
		m := len(pkts)
		pkts = pkts[:m+1]
		if err := packet.DecodeInto(&pkts[m], frames[i].Data); err != nil {
			pkts = pkts[:m]
			p.stats.decodeErr[decClass(err)].Add(1)
			continue
		}
		pkts[m].Time = frames[i].Time
		if frames[i].Truncated() {
			// The decoder judged the captured prefix; account the frame
			// at its wire length (APD bandwidth policies care).
			pkts[m].Length = frames[i].OrigLen
		}
		// Subnet classification overrides the synthetic-MAC direction:
		// real captures do not carry our MACs. Frames touching no client
		// subnet are transit the edge would never forward to us.
		if len(p.subnets) > 0 {
			switch {
			case p.inside(pkts[m].Tuple.Src):
				pkts[m].Dir = packet.Outgoing
			case p.inside(pkts[m].Tuple.Dst):
				pkts[m].Dir = packet.Incoming
			default:
				pkts = pkts[:m]
				p.stats.unrouted.Add(1)
				continue
			}
		}
	}
	p.verdicts = p.bf.ProcessBatchInto(pkts, p.verdicts)
	var out, in, pass, drop uint64
	for i := range pkts {
		if pkts[i].Dir == packet.Outgoing {
			out++
			continue
		}
		in++
		if p.verdicts[i] == filtering.Pass {
			pass++
		} else {
			drop++
		}
	}
	p.stats.outgoing.Add(out)
	p.stats.incoming.Add(in)
	p.stats.passed.Add(pass)
	p.stats.dropped.Add(drop)
	p.pkts = pkts[:0]
	p.stats.observeBatchLatency(time.Since(start), len(frames))
}

// printBenchReport renders the -bench verdict: did the wire-to-verdict
// loop keep up with the target packet rate?
func printBenchReport(out io.Writer, stats *wallStats, elapsed time.Duration, target float64) {
	frames := stats.frames.Load()
	_, decErrs := stats.decodeErrors()
	lat := stats.latencyQuantiles(0.50, 0.99)
	pps := 0.0
	if elapsed > 0 {
		pps = float64(frames) / elapsed.Seconds()
	}
	verdict := "SATURATED"
	if pps < target {
		verdict = "NOT saturated"
	}
	fmt.Fprintf(out, "bfwall bench: %d frames in %v wall (%.0f pps)\n", frames, elapsed.Round(time.Millisecond), pps)
	fmt.Fprintf(out, "  decode errors: %d, unrouted: %d, truncated: %d\n",
		decErrs, stats.unrouted.Load(), stats.truncated.Load())
	fmt.Fprintf(out, "  verdicts: out=%d in=%d pass=%d drop=%d\n",
		stats.outgoing.Load(), stats.incoming.Load(), stats.passed.Load(), stats.dropped.Load())
	fmt.Fprintf(out, "  per-packet latency: p50=%v p99=%v\n", lat[0], lat[1])
	ratio := 0.0
	if target > 0 {
		ratio = pps / target
	}
	fmt.Fprintf(out, "  target %.0f pps: %s (%.2fx)\n", target, verdict, ratio)
}
