// Command bfwall is the live packet plane: it pulls raw Ethernet frames
// from a capture source, decodes them on the zero-copy header path
// (packet.DecodeInto — no Frame materialization, no payload reads),
// batches them into the filter's allocation-free batch data plane, and
// emits verdicts at line rate with an HTTP monitoring plane on the side:
//
//	GET /healthz   liveness (503 when a supervised loop stalls)
//	GET /readyz    readiness (503 while starting or draining)
//	GET /stats     pump + filter introspection (JSON)
//	GET /metrics   Prometheus text exposition (pps, drops, decode error
//	               classes, p50/p99 per-packet latency, resilience
//	               counters)
//
// Between capture and filter sits a resilience layer: a supervisor
// classifies source errors (a truncated pcap record or an EINTR is
// survivable, a bad magic number is not), retries transient failures
// with jittered exponential backoff, and reopens the source when it
// keeps failing; a bounded frame queue sheds under overload per
// -on-overload (drop = fail-closed, the security posture; admit =
// fail-open, the availability posture); a watchdog flags wedged loops;
// and SIGTERM drains gracefully — intake stops, in-flight frames are
// judged, a final checkpoint is taken — within -drain-timeout.
//
// Sources, most hermetic first:
//
//	(default)      a synthesized Figure 5 trace — legitimate sessions
//	               with a random-scan flood at -scan-pps — replayed
//	               through the full wire path, -loops times
//	-pcap FILE     a recorded trace, replayed at filter speed
//	-iface NAME    a real NIC via AF_PACKET (build with -tags afpacket;
//	               needs CAP_NET_RAW)
//
// In -bench mode the daemon runs the source to exhaustion and reports
// whether the pump saturates -target packets per second (the paper's
// Figure 5 scan floor is 500K pps), with per-packet latency quantiles.
// With -gen FILE it writes the synthesized trace to a pcap file and
// exits, so the same trace can be replayed elsewhere (tcpdump, bfreplay).
//
// Usage:
//
//	bfwall -bench                         # saturation check, in memory
//	bfwall -gen scan.pcap -scan-pps 500000
//	bfwall -pcap scan.pcap -loops 10 -listen :8081
//	bfwall -tenants fleet.json -pcap trace.pcap
//	bfwall -pcap trace.pcap -checkpoint state.bmf -on-overload drop
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bitmapfilter/internal/capture"
	"bitmapfilter/internal/checkpoint"
	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/resilience"
	"bitmapfilter/internal/tenant"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bfwall:", err)
		os.Exit(1)
	}
}

// snapFilter is the filter surface bfwall drives: the batch data plane
// plus snapshot output for checkpointing. core.Build's Snapshottable and
// *tenant.Set both satisfy it.
type snapFilter interface {
	filtering.BatchFilter
	WriteSnapshot(w io.Writer) error
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bfwall", flag.ContinueOnError)
	var (
		pcapPath = fs.String("pcap", "", "pcap trace to replay (default: synthesize one in memory)")
		loops    = fs.Int("loops", 1, "replay the trace this many times back-to-back")
		iface    = fs.String("iface", "", "live AF_PACKET capture interface (requires -tags afpacket build)")
		snapLen  = fs.Int("snaplen", capture.DefaultSnapLen, "per-frame capture buffer bytes")
		batch    = fs.Int("batch", 512, "frames per batch through the filter data plane")
		listen   = fs.String("listen", "", "HTTP monitoring address (e.g. 127.0.0.1:8081); empty serves nothing")
		benchRun = fs.Bool("bench", false, "run the source to exhaustion, print a saturation report, exit")
		target   = fs.Float64("target", 500_000, "saturation target in packets/s for -bench")
		genPath  = fs.String("gen", "", "write the synthesized trace to this pcap file and exit")

		subnetsF = fs.String("subnets", "10.0.0.0/8", "comma-separated client subnets for direction classification")
		order    = fs.Uint("order", 20, "bitmap order n")
		vectors  = fs.Int("vectors", 4, "bitmap vector count k")
		hashes   = fs.Int("hashes", 3, "hash count m")
		rotate   = fs.Duration("rotate", 5*time.Second, "rotation period Δt")
		shards   = fs.Int("shards", 1, "shard count (>1 runs the sharded data plane)")
		tenantsF = fs.String("tenants", "", "multi-tenant fleet config (JSON); replaces the geometry flags")

		onOverload = fs.String("on-overload", "drop", "overload policy when the frame queue fills: drop (fail-closed) or admit (fail-open)")
		queue      = fs.Int("queue", 8192, "bounded frame queue between capture and filter, in frames (0 disables the overload stage)")
		drainTO    = fs.Duration("drain-timeout", 5*time.Second, "graceful-drain deadline after SIGTERM")
		srcRetries = fs.Int("source-retries", resilience.DefaultMaxConsecutiveFailures, "consecutive source failures tolerated before the daemon gives up")
		stallAfter = fs.Duration("stall-after", resilience.DefaultStallAfter, "watchdog stall threshold for the supervised loops (0 disables the watchdog)")
		ckpt       = fs.String("checkpoint", "", "checkpoint file; restores state on startup and persists it periodically and on SIGTERM")
		ckptDt     = fs.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval (with -checkpoint; jittered ±10%)")

		scanPPS  = fs.Float64("scan-pps", 500_000, "synthesized scan rate in packets/s")
		connRate = fs.Float64("conn-rate", 25, "synthesized legitimate session arrival rate per second")
		genDur   = fs.Duration("gen-duration", time.Second, "synthesized trace duration (virtual time)")
		seed     = fs.Uint64("seed", 1, "synthesized trace seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy, err := resilience.ParsePolicy(*onOverload)
	if err != nil {
		return err
	}
	// -bench asks "can the judge path keep up with the trace" — an
	// unpaced replay through the overload queue would shed most frames
	// and measure queue throughput instead. Default the bench to the
	// direct, backpressured path; an explicit -queue still wins.
	if *benchRun {
		queueSet := false
		fs.Visit(func(f *flag.Flag) { queueSet = queueSet || f.Name == "queue" })
		if !queueSet {
			*queue = 0
		}
	}
	subnets, err := parseSubnets(*subnetsF)
	if err != nil {
		return err
	}
	gcfg := genConfig{
		scanPPS:  *scanPPS,
		connRate: *connRate,
		duration: *genDur,
		seed:     *seed,
		subnets:  subnets,
	}

	// -gen: synthesize, persist, done.
	if *genPath != "" {
		f, err := os.Create(*genPath)
		if err != nil {
			return err
		}
		frames, span, err := writeScanTrace(f, gcfg)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "bfwall: wrote %d frames spanning %v to %s\n", frames, span, *genPath)
		return nil
	}

	bf, tenantPrefixes, restoreRes, err := buildFilter(*ckpt, *tenantsF, *order, *vectors, *hashes, *rotate, *shards)
	if err != nil {
		return err
	}
	logRestore(out, *ckpt, restoreRes)
	if tenantPrefixes != nil {
		// A tenant fleet's routing prefixes are its client subnets.
		subnets = tenantPrefixes
	}

	// The resilience plane: watchdog probes for every supervised loop,
	// a lifecycle state machine behind /healthz and /readyz.
	var (
		wd                       *resilience.Watchdog
		captureProbe, batchProbe *resilience.Probe
	)
	if *stallAfter > 0 {
		wd = resilience.NewWatchdog(nil)
		captureProbe = wd.Heartbeat("capture", *stallAfter)
		batchProbe = wd.Heartbeat("batch", *stallAfter)
	}
	health := resilience.NewHealth(wd)
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bfwall: "+format+"\n", args...)
	}

	factory, err := sourceFactory(*pcapPath, *iface, *loops, *snapLen, gcfg, out)
	if err != nil {
		return err
	}
	sup, err := resilience.NewSupervisor(resilience.SupervisorConfig{
		Open:                   factory,
		MaxConsecutiveFailures: *srcRetries,
		Heartbeat:              beatFn(captureProbe),
		Logf:                   logf,
	})
	if err != nil {
		return err
	}
	var src capture.Source = sup
	var buf *resilience.Buffer
	if *queue > 0 {
		buf = resilience.NewBuffer(sup, resilience.BufferConfig{
			Capacity: *queue,
			SnapLen:  *snapLen,
			Policy:   policy,
			Logf:     logf,
		})
		src = buf
	}
	defer src.Close()

	// With -checkpoint the daemon persists snapshots periodically and
	// once more after the drain, and a watchdog probe verifies the
	// checkpointer keeps checkpointing.
	var cp *checkpoint.Checkpointer
	if *ckpt != "" {
		var ckptProbe *resilience.Probe
		if wd != nil {
			ckptProbe = wd.Heartbeat("checkpoint", max(3**ckptDt, *stallAfter))
		}
		cp, err = checkpoint.New(checkpoint.Config{
			Path:      *ckpt,
			Write:     bf.WriteSnapshot,
			Interval:  *ckptDt,
			Heartbeat: beatFn(ckptProbe),
			Logf:      logf,
		})
		if err != nil {
			return err
		}
		if err := cp.Start(); err != nil {
			return err
		}
		defer cp.Stop()
	}

	stats := newWallStats(time.Now())
	p := newPump(src, bf, subnets, *batch, *snapLen, stats)
	p.batchProbe = batchProbe
	p.logf = logf

	plane := &resiliencePlane{
		sup:     sup,
		buf:     buf,
		health:  health,
		cp:      cp,
		restore: restoreRes,
		policy:  policy,
		stats:   stats,
	}

	var srv *http.Server
	httpErr := make(chan error, 1)
	if *listen != "" {
		srv = &http.Server{
			Addr:              *listen,
			Handler:           newMux(stats, bf, plane),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			fmt.Fprintf(out, "bfwall: monitoring on http://%s\n", *listen)
			if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				httpErr <- err
				return
			}
			httpErr <- nil
		}()
	}

	// The pump owns the hot loop. A signal starts the graceful drain:
	// readiness flips first (stop routing here), the source closes (intake
	// stops; queued frames still flow), the pump drains out, and only then
	// is the final checkpoint taken — all within the drain deadline.
	start := time.Now()
	pumpDone := make(chan error, 1)
	go func() { pumpDone <- p.run() }()
	health.SetReady()

	var runErr error
	drained := true
	select {
	case runErr = <-pumpDone:
		// Source exhausted on its own (replay, bench) or failed fatally.
		health.SetDraining()
	case <-ctx.Done():
		health.SetDraining()
		fmt.Fprintln(out, "bfwall: signal received, draining")
		src.Close()
		timer := time.NewTimer(*drainTO)
		select {
		case runErr = <-pumpDone:
			timer.Stop()
		case <-timer.C:
			drained = false
			runErr = fmt.Errorf("drain deadline %v exceeded with frames still in flight", *drainTO)
		}
	}
	elapsed := time.Since(start)

	if cp != nil {
		cp.Stop()
		if !drained {
			// The pump may still be mid-batch; a snapshot now could tear.
			// The periodic checkpoints remain the newest consistent state.
			logf("final checkpoint skipped: pump did not drain")
		} else if err := cp.CheckpointNow(); err != nil {
			logf("final checkpoint: %v", err)
			if runErr == nil {
				runErr = err
			}
		} else {
			fmt.Fprintf(out, "bfwall: final checkpoint saved to %s\n", *ckpt)
		}
	}

	if srv != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		if herr := <-httpErr; runErr == nil {
			runErr = herr
		}
	}
	if runErr != nil {
		return runErr
	}

	if *benchRun {
		printBenchReport(out, stats, elapsed, *target)
	} else {
		snap := stats.snapshot(bf, time.Now())
		fmt.Fprintf(out, "bfwall: %d frames, %d out / %d in (%d passed, %d dropped), %d decode errors\n",
			snap.Frames, snap.Outgoing, snap.Incoming, snap.Passed, snap.Dropped,
			sumDecodeErrors(snap.DecodeErrors))
		if st := sup.Stats(); st.TransientErrors > 0 || st.Reopens > 0 {
			fmt.Fprintf(out, "bfwall: survived %d transient source errors (%d reopens)\n",
				st.TransientErrors, st.Reopens)
		}
		if buf != nil {
			if st := buf.Stats(); st.Shed > 0 {
				fmt.Fprintf(out, "bfwall: shed %d frames under overload (policy %s)\n", st.Shed, st.Policy)
			}
		}
	}
	return nil
}

// beatFn adapts a possibly-nil probe to an optional heartbeat hook.
func beatFn(p *resilience.Probe) func() {
	if p == nil {
		return nil
	}
	return p.Beat
}

func sumDecodeErrors(per map[string]uint64) (total uint64) {
	for _, v := range per {
		total += v
	}
	return total
}

// parseSubnets parses a comma-separated CIDR list.
func parseSubnets(s string) ([]packet.Prefix, error) {
	if s == "" {
		return nil, nil
	}
	var out []packet.Prefix
	for _, part := range strings.Split(s, ",") {
		p, err := packet.ParsePrefix(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-subnets: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// buildFilter composes the filter flavor from the flags: a tenant fleet
// when a config file is given, otherwise a single or sharded bitmap
// filter via the unified builder. For a fleet it also returns the
// tenants' routing prefixes (used as the client subnets).
//
// With a checkpoint path it walks the restore ladder first — primary
// file, .bak rotation, cold start — and builds fresh from the flags only
// when no good snapshot exists. Checkpointing also forces every filter
// goroutine-safe (WithConcurrencySafe / the fleet's safe flavor): the
// periodic snapshot writer runs concurrently with the pump.
func buildFilter(ckptPath, tenantsPath string, order uint, vectors, hashes int, rotate time.Duration, shards int) (snapFilter, []packet.Prefix, checkpoint.RestoreResult, error) {
	noRestore := checkpoint.RestoreResult{Outcome: checkpoint.OutcomeColdStartEmpty}
	if tenantsPath != "" {
		data, err := os.ReadFile(tenantsPath)
		if err != nil {
			return nil, nil, noRestore, err
		}
		cfg, err := tenant.ParseConfig(data)
		if err != nil {
			return nil, nil, noRestore, fmt.Errorf("%s: %w", tenantsPath, err)
		}
		prefixes := make([]packet.Prefix, len(cfg.Tenants))
		for i := range cfg.Tenants {
			prefixes[i] = cfg.Tenants[i].Prefix
		}
		if ckptPath != "" {
			// The snapshot serializes each tenant's flavor (including
			// safe), so no extra options are needed on restore.
			var restored *tenant.Set
			res := checkpoint.Restore(ckptPath, func(r io.Reader) error {
				set, err := tenant.ReadSnapshot(r, nil)
				if err != nil {
					return err
				}
				restored = set
				return nil
			})
			if res.Outcome.Restored() {
				return restored, prefixes, res, nil
			}
			for i := range cfg.Tenants {
				cfg.Tenants[i].Options = append(cfg.Tenants[i].Options, core.WithConcurrencySafe())
			}
			set, err := tenant.NewSet(cfg)
			return set, prefixes, res, err
		}
		set, err := tenant.NewSet(cfg)
		return set, prefixes, noRestore, err
	}
	geom := []core.Option{
		core.WithOrder(order),
		core.WithVectors(vectors),
		core.WithHashes(hashes),
		core.WithRotateEvery(rotate),
	}
	opts := geom
	if shards > 1 {
		opts = append(opts, core.WithShards(shards))
	} else if ckptPath != "" {
		opts = append(opts, core.WithConcurrencySafe())
	}
	if ckptPath != "" {
		// Restore takes only the parameter options (the flavor is encoded
		// in the snapshot container; core.New rejects flavor options), and
		// the restored single filter is wrapped goroutine-safe here.
		var restored snapFilter
		res := checkpoint.Restore(ckptPath, func(r io.Reader) error {
			snap, err := core.ReadAnySnapshot(r, geom...)
			if err != nil {
				return err
			}
			if f, ok := snap.(*core.Filter); ok {
				restored = core.NewSafe(f)
			} else {
				restored = snap
			}
			return nil
		})
		if res.Outcome.Restored() {
			return restored, nil, res, nil
		}
		f, err := core.Build(opts...)
		return f, nil, res, err
	}
	f, err := core.Build(opts...)
	return f, nil, noRestore, err
}

// logRestore reports each restore-ladder outcome distinctly.
func logRestore(out io.Writer, ckptPath string, res checkpoint.RestoreResult) {
	if ckptPath == "" {
		return
	}
	switch res.Outcome {
	case checkpoint.OutcomePrimary:
		fmt.Fprintf(out, "bfwall: restored filter state from %s\n", res.File)
	case checkpoint.OutcomeBackup:
		fmt.Fprintf(os.Stderr, "bfwall: checkpoint %s unusable (%v); restored from backup %s\n",
			ckptPath, res.PrimaryErr, res.File)
	case checkpoint.OutcomeColdStartEmpty:
		fmt.Fprintf(out, "bfwall: no checkpoint at %s; cold start\n", ckptPath)
	case checkpoint.OutcomeColdStartCorrupt:
		fmt.Fprintf(os.Stderr, "bfwall: checkpoint unusable (primary: %v; backup: %v); COLD START — established flows will drop for up to T_e\n",
			res.PrimaryErr, res.BackupErr)
	}
}

// sourceFactory returns a constructor for the capture source, so the
// supervisor can reopen it after persistent failures: a fresh AF_PACKET
// bind for a NIC, a fresh Replay over the trace bytes (read or
// synthesized exactly once) otherwise.
func sourceFactory(pcapPath, iface string, loops, snapLen int, gcfg genConfig, out io.Writer) (func() (capture.Source, error), error) {
	if iface != "" {
		// Probe once so a missing build tag or interface fails at startup
		// with a clear error instead of spinning the supervisor.
		probe, err := openAFPacket(iface, snapLen)
		if err != nil {
			return nil, err
		}
		probe.Close()
		return func() (capture.Source, error) { return openAFPacket(iface, snapLen) }, nil
	}
	var data []byte
	if pcapPath != "" {
		var err error
		data, err = os.ReadFile(pcapPath)
		if err != nil {
			return nil, err
		}
	} else {
		var buf bytes.Buffer
		frames, span, err := writeScanTrace(&buf, gcfg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "bfwall: synthesized %d frames spanning %v (scan %.0f pps)\n",
			frames, span, gcfg.scanPPS)
		data = buf.Bytes()
	}
	return func() (capture.Source, error) {
		return capture.NewReplay(bytes.NewReader(data), loops)
	}, nil
}

// pump is the wire-to-verdict hot loop: one reusable frame ring, one
// reusable packet batch, one reusable verdict buffer — zero allocations
// per frame in steady state.
type pump struct {
	src      capture.Source
	bf       filtering.BatchFilter
	subnets  []packet.Prefix
	ring     []capture.Frame
	pkts     []packet.Packet
	verdicts []filtering.Verdict
	stats    *wallStats

	// batchProbe, when set, tracks the batch loop's liveness: idle while
	// parked on the source, beating once per processed batch.
	batchProbe *resilience.Probe
	// logf, when set, receives terminal source errors and quarantine
	// events.
	logf func(format string, args ...any)
}

func newPump(src capture.Source, bf filtering.BatchFilter, subnets []packet.Prefix, batch, snapLen int, stats *wallStats) *pump {
	if batch < 1 {
		batch = 1
	}
	return &pump{
		src:      src,
		bf:       bf,
		subnets:  subnets,
		ring:     capture.NewRing(batch, snapLen),
		pkts:     make([]packet.Packet, 0, batch),
		verdicts: make([]filtering.Verdict, 0, batch),
		stats:    stats,
	}
}

func (p *pump) inside(a packet.Addr) bool {
	for _, s := range p.subnets {
		if s.Contains(a) {
			return true
		}
	}
	return false
}

// run drains the source through the filter until EOF. A clean close
// (io.EOF, a closed source) ends the loop silently; anything else is
// logged with its error class before it surfaces — by the time an error
// reaches the pump the supervisor has already retried everything
// survivable, so what arrives here is genuinely terminal.
func (p *pump) run() error {
	for {
		if p.batchProbe != nil {
			p.batchProbe.SetIdle(true)
		}
		n, err := p.src.ReadBatch(p.ring)
		if p.batchProbe != nil {
			p.batchProbe.SetIdle(false)
		}
		if n > 0 {
			p.processBatch(p.ring[:n])
			if p.batchProbe != nil {
				p.batchProbe.Beat()
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, capture.ErrClosed) {
				return nil
			}
			if p.logf != nil {
				p.logf("source failed (class=%s): %v", resilience.Classify(err), err)
			}
			return err
		}
	}
}

// processBatch is the per-batch fast path: zero-copy decode each frame,
// classify its direction against the client subnets, and push the whole
// batch through ProcessBatchInto in one call. A panic anywhere in the
// path quarantines the batch (counted, logged) instead of killing the
// daemon — the next batch proceeds with fresh buffers.
func (p *pump) processBatch(frames []capture.Frame) {
	defer p.contain(len(frames))
	start := time.Now()
	pkts := p.pkts[:0]
	for i := range frames {
		p.stats.frames.Add(1)
		p.stats.bytes.Add(uint64(frames[i].OrigLen))
		if frames[i].Truncated() {
			p.stats.truncated.Add(1)
		}
		m := len(pkts)
		pkts = pkts[:m+1]
		if err := packet.DecodeInto(&pkts[m], frames[i].Data); err != nil {
			pkts = pkts[:m]
			p.stats.decodeErr[decClass(err)].Add(1)
			continue
		}
		pkts[m].Time = frames[i].Time
		if frames[i].Truncated() {
			// The decoder judged the captured prefix; account the frame
			// at its wire length (APD bandwidth policies care).
			pkts[m].Length = frames[i].OrigLen
		}
		// Subnet classification overrides the synthetic-MAC direction:
		// real captures do not carry our MACs. Frames touching no client
		// subnet are transit the edge would never forward to us.
		if len(p.subnets) > 0 {
			switch {
			case p.inside(pkts[m].Tuple.Src):
				pkts[m].Dir = packet.Outgoing
			case p.inside(pkts[m].Tuple.Dst):
				pkts[m].Dir = packet.Incoming
			default:
				pkts = pkts[:m]
				p.stats.unrouted.Add(1)
				continue
			}
		}
	}
	p.verdicts = p.bf.ProcessBatchInto(pkts, p.verdicts)
	var out, in, pass, drop uint64
	for i := range pkts {
		if pkts[i].Dir == packet.Outgoing {
			out++
			continue
		}
		in++
		if p.verdicts[i] == filtering.Pass {
			pass++
		} else {
			drop++
		}
	}
	p.stats.outgoing.Add(out)
	p.stats.incoming.Add(in)
	p.stats.passed.Add(pass)
	p.stats.dropped.Add(drop)
	p.pkts = pkts[:0]
	p.stats.observeBatchLatency(time.Since(start), len(frames))
}

// contain is the pump's panic boundary: a filter or decoder panic
// quarantines the offending batch — its frames counted under the
// overload policy, never judged — and the loop continues. The filter's
// own state is untouched by construction (ProcessBatchInto mutates per
// packet, and a panicking packet never completed).
func (p *pump) contain(frames int) {
	r := recover()
	if r == nil {
		return
	}
	p.stats.quarantinedBatches.Add(1)
	p.stats.quarantinedFrames.Add(uint64(frames))
	p.pkts = p.pkts[:0]
	if p.logf != nil {
		p.logf("panic in batch path quarantined %d frames: %v", frames, r)
	}
}

// printBenchReport renders the -bench verdict: did the wire-to-verdict
// loop keep up with the target packet rate?
func printBenchReport(out io.Writer, stats *wallStats, elapsed time.Duration, target float64) {
	frames := stats.frames.Load()
	_, decErrs := stats.decodeErrors()
	lat := stats.latencyQuantiles(0.50, 0.99)
	pps := 0.0
	if elapsed > 0 {
		pps = float64(frames) / elapsed.Seconds()
	}
	verdict := "SATURATED"
	if pps < target {
		verdict = "NOT saturated"
	}
	fmt.Fprintf(out, "bfwall bench: %d frames in %v wall (%.0f pps)\n", frames, elapsed.Round(time.Millisecond), pps)
	fmt.Fprintf(out, "  decode errors: %d, unrouted: %d, truncated: %d\n",
		decErrs, stats.unrouted.Load(), stats.truncated.Load())
	fmt.Fprintf(out, "  verdicts: out=%d in=%d pass=%d drop=%d\n",
		stats.outgoing.Load(), stats.incoming.Load(), stats.passed.Load(), stats.dropped.Load())
	fmt.Fprintf(out, "  per-packet latency: p50=%v p99=%v\n", lat[0], lat[1])
	ratio := 0.0
	if target > 0 {
		ratio = pps / target
	}
	fmt.Fprintf(out, "  target %.0f pps: %s (%.2fx)\n", target, verdict, ratio)
}
