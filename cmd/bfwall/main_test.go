package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bitmapfilter/internal/capture"
	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

func TestParseSubnets(t *testing.T) {
	got, err := parseSubnets("10.0.0.0/8, 192.168.1.0/24")
	if err != nil || len(got) != 2 {
		t.Fatalf("parseSubnets: %v %v", got, err)
	}
	if got[1].Bits != 24 {
		t.Errorf("bits = %d", got[1].Bits)
	}
	if _, err := parseSubnets("not-a-cidr"); err == nil {
		t.Error("garbage accepted")
	}
}

// TestBenchEndToEnd runs the full wire path — synthesize, encode, replay
// through zero-copy decode and the batch data plane — and checks the
// report: the scan must be overwhelmingly dropped while the run
// saturates a trivial target.
func TestBenchEndToEnd(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-bench", "-target", "1",
		"-scan-pps", "20000", "-conn-rate", "10", "-gen-duration", "500ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "SATURATED") {
		t.Errorf("no saturation verdict in report:\n%s", report)
	}
	if !strings.Contains(report, "decode errors: 0") {
		t.Errorf("decode errors on a clean synthetic trace:\n%s", report)
	}
	if strings.Contains(report, "NOT saturated") {
		t.Errorf("1 pps target not saturated:\n%s", report)
	}
}

// TestGenThenReplayFile round-trips the generated trace through disk:
// -gen writes a pcap, -pcap replays it with identical frame counts.
func TestGenThenReplayFile(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "scan.pcap")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-gen", trace, "-scan-pps", "5000", "-conn-rate", "5", "-gen-duration", "200ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatalf("gen output: %s", out.String())
	}

	out.Reset()
	if err := run(context.Background(), []string{"-bench", "-pcap", trace, "-loops", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bfwall bench:") {
		t.Fatalf("bench output: %s", out.String())
	}
}

// TestTenantFleetReplay drives the pump against a multi-tenant data
// plane, with the tenants' prefixes taking over subnet classification.
func TestTenantFleetReplay(t *testing.T) {
	dir := t.TempDir()
	fleet := filepath.Join(dir, "fleet.json")
	cfg := `{"tenants":[
		{"id":"a","prefix":"10.0.0.0/9","order":12},
		{"id":"b","prefix":"10.128.0.0/9","order":12}
	]}`
	if err := os.WriteFile(fleet, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-bench", "-tenants", fleet,
		"-scan-pps", "5000", "-conn-rate", "5", "-gen-duration", "200ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bfwall bench:") {
		t.Fatalf("output: %s", out.String())
	}
}

// mustFilter builds a small single filter for pump-level tests.
func mustFilter(t *testing.T) filtering.BatchFilter {
	t.Helper()
	f, err := core.New(core.WithOrder(12), core.WithVectors(4), core.WithHashes(3),
		core.WithRotateEvery(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// refixIPChecksum recomputes the IPv4 header checksum (RFC 1071) after a
// test mutated header bytes.
func refixIPChecksum(frame []byte) {
	ip := frame[packet.EthernetHeaderLen:]
	ip[10], ip[11] = 0, 0
	var sum uint32
	for i := 0; i < packet.IPv4HeaderLen; i += 2 {
		sum += uint32(ip[i])<<8 | uint32(ip[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	cs := ^uint16(sum)
	ip[10], ip[11] = byte(cs>>8), byte(cs)
}

func encodeFrame(t *testing.T, pkt packet.Packet) []byte {
	t.Helper()
	frame, err := packet.Encode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestPumpClassifiesAndCounts drives hand-built frames through a
// Loopback source: an outgoing mark, its matching reply (pass), an
// unsolicited probe (drop), a fragment (decode error), garbage
// (decode error), and a transit frame (unrouted).
func TestPumpClassifiesAndCounts(t *testing.T) {
	client := packet.AddrFrom4(10, 0, 0, 5)
	server := packet.AddrFrom4(198, 51, 100, 7)
	attacker := packet.AddrFrom4(203, 0, 113, 9)
	tup := packet.Tuple{Src: client, Dst: server, SrcPort: 4000, DstPort: 80, Proto: packet.TCP}
	rev := packet.Tuple{Src: server, Dst: client, SrcPort: 80, DstPort: 4000, Proto: packet.TCP}

	outFrame := encodeFrame(t, packet.Packet{Time: time.Second, Tuple: tup,
		Dir: packet.Outgoing, Flags: packet.SYN, Length: 60})
	replyFrame := encodeFrame(t, packet.Packet{Time: 2 * time.Second, Tuple: rev,
		Dir: packet.Incoming, Flags: packet.SYN | packet.ACK, Length: 60})
	probeFrame := encodeFrame(t, packet.Packet{Time: 3 * time.Second,
		Tuple: packet.Tuple{Src: attacker, Dst: client, SrcPort: 6666, DstPort: 445, Proto: packet.TCP},
		Dir:   packet.Incoming, Flags: packet.SYN, Length: 60})
	transitFrame := encodeFrame(t, packet.Packet{Time: 4 * time.Second,
		Tuple: packet.Tuple{Src: attacker, Dst: server, SrcPort: 1, DstPort: 2, Proto: packet.TCP},
		Dir:   packet.Incoming, Length: 60})
	fragFrame := encodeFrame(t, packet.Packet{Time: 5 * time.Second, Tuple: rev,
		Dir: packet.Incoming, Length: 60})
	fragFrame[packet.EthernetHeaderLen+6] = 0x20 // MF: decoder must refuse it
	refixIPChecksum(fragFrame)                   // the mutation, not a checksum error, is under test
	garbage := []byte{1, 2, 3}

	lb := capture.NewLoopback()
	for i, data := range [][]byte{outFrame, replyFrame, probeFrame, transitFrame, fragFrame, garbage} {
		if err := lb.WriteFrame(capture.Frame{Time: time.Duration(i+1) * time.Second, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}

	subnets, err := parseSubnets("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	stats := newWallStats(time.Now())
	p := newPump(lb, mustFilter(t), subnets, 8, 2048, stats)
	if err := p.run(); err != nil {
		t.Fatal(err)
	}

	if got := stats.frames.Load(); got != 6 {
		t.Errorf("frames = %d, want 6", got)
	}
	if got := stats.outgoing.Load(); got != 1 {
		t.Errorf("outgoing = %d, want 1", got)
	}
	if got := stats.incoming.Load(); got != 2 {
		t.Errorf("incoming = %d, want 2", got)
	}
	if got := stats.passed.Load(); got != 1 {
		t.Errorf("passed = %d, want 1 (the marked reply)", got)
	}
	if got := stats.dropped.Load(); got != 1 {
		t.Errorf("dropped = %d, want 1 (the unsolicited probe)", got)
	}
	if got := stats.unrouted.Load(); got != 1 {
		t.Errorf("unrouted = %d, want 1 (the transit frame)", got)
	}
	if got := stats.decodeErr[decFragmented].Load(); got != 1 {
		t.Errorf("fragmented decode errors = %d, want 1", got)
	}
	if got := stats.decodeErr[decTruncated].Load(); got != 1 {
		t.Errorf("truncated decode errors = %d, want 1 (the garbage frame)", got)
	}
}

// TestPumpZeroAllocsSteadyState pins the hot-loop contract end to end:
// ring reuse + zero-copy decode + ProcessBatchInto must not allocate per
// batch once warmed up.
func TestPumpZeroAllocsSteadyState(t *testing.T) {
	client := packet.AddrFrom4(10, 0, 0, 5)
	server := packet.AddrFrom4(198, 51, 100, 7)
	frame := encodeFrame(t, packet.Packet{Time: time.Second,
		Tuple: packet.Tuple{Src: client, Dst: server, SrcPort: 4000, DstPort: 80, Proto: packet.TCP},
		Dir:   packet.Outgoing, Flags: packet.SYN, Length: 60})

	subnets, _ := parseSubnets("10.0.0.0/8")
	stats := newWallStats(time.Now())
	p := newPump(nil, mustFilter(t), subnets, 16, 2048, stats)
	batch := make([]capture.Frame, 16)
	for i := range batch {
		batch[i] = capture.Frame{Time: time.Duration(i) * time.Millisecond,
			Data: frame, OrigLen: len(frame)}
	}
	p.processBatch(batch) // warm (verdict buffer growth)
	allocs := testing.AllocsPerRun(100, func() { p.processBatch(batch) })
	if allocs != 0 {
		t.Errorf("processBatch allocates %.2f times per batch", allocs)
	}
}

// TestMonitoringEndpoints exercises /healthz, /stats and /metrics off a
// populated stats object.
func TestMonitoringEndpoints(t *testing.T) {
	stats := newWallStats(time.Now().Add(-time.Second))
	stats.frames.Add(100)
	stats.incoming.Add(60)
	stats.dropped.Add(40)
	stats.decodeErr[decFragmented].Add(3)
	stats.observeBatchLatency(100*time.Microsecond, 100)

	srv := httptest.NewServer(newMux(stats, mustFilter(t), nil))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %q", body)
	}

	var snap statsSnapshot
	if err := json.Unmarshal([]byte(get("/stats")), &snap); err != nil {
		t.Fatalf("/stats JSON: %v", err)
	}
	if snap.Frames != 100 || snap.Dropped != 40 {
		t.Errorf("/stats frames=%d dropped=%d", snap.Frames, snap.Dropped)
	}
	if snap.DecodeErrors["fragmented"] != 3 {
		t.Errorf("/stats decode_errors = %v", snap.DecodeErrors)
	}
	if snap.LatencyP99Ns <= 0 {
		t.Errorf("/stats p99 = %d", snap.LatencyP99Ns)
	}
	if snap.PPS <= 0 {
		t.Errorf("/stats pps = %v", snap.PPS)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"bfwall_frames_total 100",
		`bfwall_decode_errors_total{class="fragmented"} 3`,
		`bfwall_verdicts_total{verdict="drop"} 40`,
		`bfwall_packet_latency_seconds{quantile="0.99"}`,
		"bfwall_filter_memory_bytes",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestIfaceWithoutTagFails: the hermetic build must reject -iface with a
// clear error instead of silently reading nothing.
func TestIfaceWithoutTagFails(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-iface", "eth0"}, &out)
	if err == nil || !strings.Contains(err.Error(), "afpacket") {
		t.Errorf("err = %v, want afpacket build-tag guidance", err)
	}
}
