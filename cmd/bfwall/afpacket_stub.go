//go:build !linux || !afpacket

package main

import (
	"errors"

	"bitmapfilter/internal/capture"
)

// openAFPacket in the hermetic build: live capture is compiled out, so
// asking for an interface is a configuration error rather than a silent
// no-op.
func openAFPacket(string, int) (capture.Source, error) {
	return nil, errors.New("-iface requires a build with -tags afpacket on linux (go build -tags afpacket ./cmd/bfwall)")
}
