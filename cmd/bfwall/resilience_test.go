package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bitmapfilter/internal/capture"
	"bitmapfilter/internal/checkpoint"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/resilience"
)

// TestDrainOnSignal: a cancelled context (the SIGTERM path) must stop
// intake, drain the pump, take the final checkpoint, and exit cleanly —
// long before the replay would have finished on its own.
func TestDrainOnSignal(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.bmf")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // signal already pending: drain immediately

	var out bytes.Buffer
	err := run(ctx, []string{
		"-loops", "200000", // far more work than the drain window allows
		"-scan-pps", "2000", "-conn-rate", "10", "-gen-duration", "100ms",
		"-checkpoint", ckpt,
	}, &out)
	if err != nil {
		t.Fatalf("drain returned error: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"signal received, draining", "final checkpoint saved"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Errorf("final checkpoint not on disk: %v", err)
	}
}

// TestCheckpointRoundTrip: a completed run persists its filter state and
// the next boot restores it instead of cold-starting.
func TestCheckpointRoundTrip(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.bmf")
	args := []string{
		"-bench", "-target", "1",
		"-scan-pps", "2000", "-conn-rate", "10", "-gen-duration", "100ms",
		"-checkpoint", ckpt,
	}

	var first bytes.Buffer
	if err := run(context.Background(), args, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "cold start") {
		t.Errorf("first boot should cold-start:\n%s", first.String())
	}

	var second bytes.Buffer
	if err := run(context.Background(), args, &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "restored filter state from") {
		t.Errorf("second boot should restore:\n%s", second.String())
	}
}

// TestCheckpointRoundTripTenants pins the fleet path: per-tenant state
// (including the forced goroutine-safe flavor) survives the snapshot.
func TestCheckpointRoundTripTenants(t *testing.T) {
	dir := t.TempDir()
	fleet := filepath.Join(dir, "fleet.json")
	cfg := `{"tenants":[
		{"id":"a","prefix":"10.0.0.0/9","order":12},
		{"id":"b","prefix":"10.128.0.0/9","order":12}
	]}`
	if err := os.WriteFile(fleet, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "fleet.bmf")
	args := []string{
		"-bench", "-target", "1", "-tenants", fleet,
		"-scan-pps", "2000", "-conn-rate", "10", "-gen-duration", "100ms",
		"-checkpoint", ckpt,
	}
	var first, second bytes.Buffer
	if err := run(context.Background(), args, &first); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), args, &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "restored filter state from") {
		t.Errorf("fleet second boot should restore:\n%s", second.String())
	}
}

// TestOverloadPolicyFlag: the policy flag parses strictly and an
// admit-policy run completes end to end with a tiny queue.
func TestOverloadPolicyFlag(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-on-overload", "bogus"}, &out)
	if err == nil || !strings.Contains(err.Error(), "overload") {
		t.Errorf("bogus policy: err = %v", err)
	}

	out.Reset()
	err = run(context.Background(), []string{
		"-bench", "-target", "1", "-on-overload", "admit", "-queue", "16",
		"-scan-pps", "2000", "-conn-rate", "10", "-gen-duration", "100ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bfwall bench:") {
		t.Errorf("output: %s", out.String())
	}
}

// panicFilter wraps a real filter and panics on the Nth batch — the
// stand-in for a decode- or filter-path bug the pump must contain.
type panicFilter struct {
	filtering.BatchFilter
	calls   atomic.Int64
	panicOn int64
}

func (p *panicFilter) ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	if p.calls.Add(1) == p.panicOn {
		panic("injected filter fault")
	}
	return p.BatchFilter.ProcessBatchInto(pkts, out)
}

// TestPumpQuarantinesPanic: a panicking batch is counted and skipped,
// and the pump keeps judging subsequent batches.
func TestPumpQuarantinesPanic(t *testing.T) {
	client := packet.AddrFrom4(10, 0, 0, 5)
	server := packet.AddrFrom4(198, 51, 100, 7)
	frame := encodeFrame(t, packet.Packet{Time: time.Second,
		Tuple: packet.Tuple{Src: client, Dst: server, SrcPort: 4000, DstPort: 80, Proto: packet.TCP},
		Dir:   packet.Outgoing, Flags: packet.SYN, Length: 60})

	lb := capture.NewLoopback()
	for i := 0; i < 6; i++ {
		if err := lb.WriteFrame(capture.Frame{Time: time.Duration(i+1) * time.Second, Data: frame}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}

	subnets, _ := parseSubnets("10.0.0.0/8")
	stats := newWallStats(time.Now())
	bf := &panicFilter{BatchFilter: mustFilter(t), panicOn: 1}
	p := newPump(lb, bf, subnets, 2, 2048, stats) // 3 batches of 2
	var logged []string
	p.logf = func(format string, args ...any) { logged = append(logged, format) }

	if err := p.run(); err != nil {
		t.Fatalf("pump died on a contained panic: %v", err)
	}
	if got := stats.quarantinedBatches.Load(); got != 1 {
		t.Errorf("quarantined batches = %d, want 1", got)
	}
	if got := stats.quarantinedFrames.Load(); got != 2 {
		t.Errorf("quarantined frames = %d, want 2", got)
	}
	// The two healthy batches were judged: 6 frames seen, 4 verdicts.
	if got := stats.frames.Load(); got != 6 {
		t.Errorf("frames = %d, want 6", got)
	}
	if got := stats.outgoing.Load(); got != 4 {
		t.Errorf("outgoing = %d, want 4 (quarantined batch never judged)", got)
	}
	if len(logged) == 0 {
		t.Error("quarantine was not logged")
	}
}

// TestResilienceEndpoints wires a live resilience plane behind the mux
// and checks /readyz, the stalled /healthz, and every
// bitmapfilter_resilience_* series group on /metrics.
func TestResilienceEndpoints(t *testing.T) {
	// A fake clock so the stall is deterministic.
	var clock atomic.Int64
	wd := resilience.NewWatchdog(func() time.Duration { return time.Duration(clock.Load()) })
	probe := wd.Heartbeat("capture", 100*time.Millisecond)
	probe.Beat()
	health := resilience.NewHealth(wd)

	lb := capture.NewLoopback()
	sup, err := resilience.NewSupervisor(resilience.SupervisorConfig{
		Open: func() (capture.Source, error) { return lb, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := resilience.NewBuffer(sup, resilience.BufferConfig{Capacity: 8, SnapLen: 256})
	defer buf.Close()

	cp, err := checkpoint.New(checkpoint.Config{
		Path:  filepath.Join(t.TempDir(), "state.bmf"),
		Write: func(io.Writer) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}

	stats := newWallStats(time.Now())
	stats.quarantinedBatches.Add(2)
	stats.quarantinedFrames.Add(7)
	plane := &resiliencePlane{
		sup:     sup,
		buf:     buf,
		health:  health,
		cp:      cp,
		restore: checkpoint.RestoreResult{Outcome: checkpoint.OutcomeColdStartEmpty},
		policy:  resilience.PolicyDrop,
		stats:   stats,
	}
	srv := httptest.NewServer(newMux(stats, mustFilter(t), plane))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Starting: live but not ready.
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz while starting = %d", code)
	}
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "starting") {
		t.Errorf("/readyz while starting = %d %q", code, body)
	}

	health.SetReady()
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz when ready = %d", code)
	}

	code, metrics := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"bitmapfilter_resilience_source_transient_errors_total 0",
		"bitmapfilter_resilience_source_reopens_total 0",
		"bitmapfilter_resilience_backoff_seconds_total 0",
		"bitmapfilter_resilience_queue_capacity 8",
		`bitmapfilter_resilience_shed_frames_total{policy="drop"} 0`,
		"bitmapfilter_resilience_shedding 0",
		"bitmapfilter_resilience_quarantined_batches_total 2",
		`bitmapfilter_resilience_quarantined_frames_total{policy="drop"} 7`,
		"bitmapfilter_resilience_live 1",
		"bitmapfilter_resilience_ready 1",
		`bitmapfilter_resilience_state{state="ready"} 1`,
		`bitmapfilter_resilience_state{state="draining"} 0`,
		`bitmapfilter_resilience_probe_beats_total{probe="capture"} 1`,
		`bitmapfilter_resilience_probe_stalled{probe="capture"} 0`,
		"bitmapfilter_resilience_checkpoint_successes_total 0",
		`bitmapfilter_resilience_restore_outcome{outcome="cold-start-empty"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Stall the capture probe: liveness flips, the stalled gauge rises.
	clock.Store(int64(time.Second))
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "capture stalled") {
		t.Errorf("/healthz while stalled = %d %q", code, body)
	}
	if _, metrics := get("/metrics"); !strings.Contains(metrics,
		`bitmapfilter_resilience_probe_stalled{probe="capture"} 1`) {
		t.Error("/metrics stalled gauge did not rise")
	}

	// Draining: live again (fresh beat), but not ready.
	probe.Beat()
	health.SetDraining()
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz while draining = %d", code)
	}
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "draining") {
		t.Errorf("/readyz while draining = %d %q", code, body)
	}
}
