// Command bfreplay evaluates a pcap capture against a packet filter: every
// frame is classified as outgoing or incoming relative to the configured
// client subnets and run through the selected filter, and the verdict
// statistics are printed. Use cmd/bftrace -pcap to produce a synthetic
// capture, or feed a real one.
//
// Usage:
//
//	bfreplay -in trace.pcap [-filter bitmap|spi] [-subnets 10.10.0.0/24,...]
//	bfreplay -in trace.pcap -stats      # also compute Figure 2 statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/delaymeter"
	"bitmapfilter/internal/experiments"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/flowtable"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/replay"
	"bitmapfilter/internal/stats"
	"bitmapfilter/internal/trafficgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bfreplay:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		inPath     = flag.String("in", "", "pcap file to replay (required)")
		filterName = flag.String("filter", "bitmap", "filter to evaluate: bitmap or spi")
		subnetsCSV = flag.String("subnets", "", "comma-separated client CIDRs (default: the generator's campus subnets)")
		order      = flag.Uint("order", 20, "bitmap order n")
		vectors    = flag.Int("vectors", 4, "bitmap vector count k")
		hashes     = flag.Int("hashes", 3, "hash count m")
		statsFlag  = flag.Bool("stats", false, "also compute Figure 2 trace statistics for the capture")
	)
	flag.Parse()
	if *inPath == "" {
		return fmt.Errorf("-in is required")
	}

	subnets := trafficgen.CampusSubnets()
	if *subnetsCSV != "" {
		parsed, err := parseSubnets(*subnetsCSV)
		if err != nil {
			return err
		}
		subnets = parsed
	}

	var filter filtering.PacketFilter
	switch *filterName {
	case "bitmap":
		f, err := core.New(
			core.WithOrder(*order),
			core.WithVectors(*vectors),
			core.WithHashes(*hashes),
		)
		if err != nil {
			return err
		}
		filter = f
	case "spi":
		filter = flowtable.NewHashList()
	default:
		return fmt.Errorf("unknown filter %q (want bitmap or spi)", *filterName)
	}

	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()

	var observers []func(packet.Packet)
	var lives *experiments.LifetimeTracker
	meter := delaymeter.MustNew(delaymeter.DefaultExpiry)
	var delays stats.Sample
	if *statsFlag {
		lives = experiments.NewLifetimeTracker()
		observers = append(observers, func(pkt packet.Packet) {
			lives.Observe(pkt)
			if d, ok := meter.Observe(pkt); ok {
				delays.Add(d.Seconds())
			}
		})
	}

	res, err := replay.Run(f, filter, subnets, observers...)
	if err != nil {
		return err
	}
	fmt.Printf("capture:   %s (%v .. %v)\n", *inPath, res.FirstTime, res.LastTime)
	fmt.Printf("filter:    %s (%d bytes of state)\n", filter.Name(), filter.MemoryBytes())
	fmt.Printf("frames:    %d (%d skipped)\n", res.Frames, res.Skipped)
	fmt.Printf("outgoing:  %d\n", res.Outgoing)
	fmt.Printf("incoming:  %d  passed %d  dropped %d  (drop rate %.3f%%)\n",
		res.Incoming, res.Passed, res.Dropped, res.DropRate()*100)
	if *statsFlag {
		fmt.Printf("lifetimes: %d connections, q90 %.1fs, q95 %.1fs, >515s %.3f%%\n",
			lives.Count(), lives.Quantile(0.90), lives.Quantile(0.95),
			lives.FractionOver(515)*100)
		fmt.Printf("delays:    %d measured, q95 %.2fs, q99 %.2fs\n",
			delays.N(), delays.Quantile(0.95), delays.Quantile(0.99))
	}
	return nil
}

func parseSubnets(csv string) ([]packet.Prefix, error) {
	var out []packet.Prefix
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		slash := strings.IndexByte(part, '/')
		if slash < 0 {
			return nil, fmt.Errorf("subnet %q missing /bits", part)
		}
		bits, err := strconv.Atoi(part[slash+1:])
		if err != nil || bits < 0 || bits > 32 {
			return nil, fmt.Errorf("subnet %q: bad prefix length", part)
		}
		octets := strings.Split(part[:slash], ".")
		if len(octets) != 4 {
			return nil, fmt.Errorf("subnet %q: bad address", part)
		}
		var quad [4]byte
		for i, o := range octets {
			v, err := strconv.Atoi(o)
			if err != nil || v < 0 || v > 255 {
				return nil, fmt.Errorf("subnet %q: bad octet %q", part, o)
			}
			quad[i] = byte(v)
		}
		out = append(out, packet.PrefixFrom(
			packet.AddrFrom4(quad[0], quad[1], quad[2], quad[3]), uint8(bits)))
	}
	return out, nil
}
