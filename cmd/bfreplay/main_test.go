package main

import (
	"testing"

	"bitmapfilter/internal/packet"
)

func TestParseSubnets(t *testing.T) {
	got, err := parseSubnets("10.10.0.0/24, 192.168.1.0/28")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d subnets", len(got))
	}
	if got[0] != packet.PrefixFrom(packet.AddrFrom4(10, 10, 0, 0), 24) {
		t.Errorf("subnet 0 = %v", got[0])
	}
	if got[1] != packet.PrefixFrom(packet.AddrFrom4(192, 168, 1, 0), 28) {
		t.Errorf("subnet 1 = %v", got[1])
	}
}

func TestParseSubnetsErrors(t *testing.T) {
	bad := []string{
		"10.10.0.0",       // no prefix length
		"10.10.0.0/33",    // bad length
		"10.10.0.0/x",     // non-numeric length
		"10.10.0/24",      // three octets
		"10.10.0.300/24",  // octet out of range
		"10.10.0.z/24",    // non-numeric octet
		"10.0.0.0/24,bad", // second entry bad
	}
	for _, in := range bad {
		if _, err := parseSubnets(in); err == nil {
			t.Errorf("parseSubnets(%q) accepted", in)
		}
	}
}
