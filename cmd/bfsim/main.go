// Command bfsim reproduces Figure 4: it runs the benign trace through both
// an SPI filter (Linux-conntrack-style, 240 s idle timeout) and the
// paper's {4×20} bitmap filter and compares their packet drop rates
// interval by interval.
//
// Usage:
//
//	bfsim [-duration 10m] [-rate 40] [-seed 1] [-interval 30] [-points]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bitmapfilter/internal/asciiplot"
	"bitmapfilter/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bfsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration = flag.Duration("duration", 10*time.Minute, "trace duration")
		rate     = flag.Float64("rate", 40, "session arrival rate per second")
		seed     = flag.Uint64("seed", 1, "random seed")
		interval = flag.Float64("interval", 30, "scatter interval in seconds")
		points   = flag.Bool("points", false, "print every scatter point (SPI vs bitmap drop rate)")
		plot     = flag.Bool("plot", false, "render the Figure 4 scatter as an ASCII chart")
		order    = flag.Uint("order", 20, "bitmap order n (2^n bits per vector)")
		vectors  = flag.Int("vectors", 4, "bitmap vector count k")
		hashes   = flag.Int("hashes", 3, "hash function count m")
		rotate   = flag.Duration("rotate", 5*time.Second, "rotation period Δt")
		spiIdle  = flag.Duration("spi-idle", 240*time.Second, "SPI idle timeout")
	)
	flag.Parse()

	cfg := experiments.Fig4Config{
		Scale:       experiments.Scale{Duration: *duration, ConnRate: *rate, Seed: *seed},
		IntervalSec: *interval,
		Order:       *order,
		Vectors:     *vectors,
		Hashes:      *hashes,
		RotateEvery: *rotate,
		SPITimeout:  *spiIdle,
	}
	res, err := experiments.RunFig4(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())

	if *plot {
		xs := make([]float64, res.Scatter.N())
		ys := make([]float64, res.Scatter.N())
		for i := range xs {
			xs[i], ys[i] = res.Scatter.Point(i)
		}
		fmt.Println("\nFigure 4 scatter (x=SPI drop rate, y=bitmap drop rate):")
		fmt.Print(asciiplot.Scatter(xs, ys, 60, 20))
	}

	if *points {
		fmt.Println("\nscatter points (spi_drop_rate bitmap_drop_rate):")
		for i := 0; i < res.Scatter.N(); i++ {
			x, y := res.Scatter.Point(i)
			fmt.Printf("  %.5f %.5f\n", x, y)
		}
	}
	return nil
}
