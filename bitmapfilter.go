// Package bitmapfilter is the public API of this repository: a Go
// implementation of the bitmap filter from "Mitigating Active Attacks
// Towards Client Networks Using the Bitmap Filter" (Huang, Chen, Lei;
// DSN 2006).
//
// A bitmap filter is a composite of k rotating Bloom-filter bit vectors of
// 2^n bits installed at the entry point of a client network. Outgoing
// packets mark the hash positions of their partial address tuple in all k
// vectors; incoming packets are admitted only if all positions are set in
// the current vector; every Δt seconds the oldest vector is zeroed. The
// result behaves like a stateful-inspection firewall whose state expires
// after T_e = k·Δt, but with O(1) per-packet cost and a fixed
// (k·2^n)/8-byte footprint.
//
// Quick start:
//
//	f, err := bitmapfilter.New() // the paper's {4×20}, m=3, Δt=5s
//	if err != nil { ... }
//	verdict := f.Process(bitmapfilter.Packet{
//		Time:  elapsed,            // virtual or wall-clock offset
//		Tuple: tuple,              // 4-tuple + protocol
//		Dir:   bitmapfilter.Outgoing,
//	})
//
// Packet sources that deliver bursts (NIC rings, pcap buffers) should use
// the batched data plane instead — one call per burst, and with a reused
// verdict buffer the steady state allocates nothing:
//
//	verdicts = f.ProcessBatchInto(pkts, verdicts) // see BatchFilter
//
// See examples/quickstart for a complete program, internal/core for the
// implementation, and DESIGN.md for the experiment index.
package bitmapfilter

import (
	"io"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/live"
	"bitmapfilter/internal/packet"
)

// Core packet-model types, aliased from the implementation packages so
// callers need only this import.
type (
	// Packet is one observed packet with its timestamp, tuple,
	// direction, TCP flags and length.
	Packet = packet.Packet
	// Tuple is the address tuple {src, sport, dst, dport, proto}.
	Tuple = packet.Tuple
	// Addr is an IPv4 address in host byte order.
	Addr = packet.Addr
	// Prefix is an IPv4 CIDR prefix.
	Prefix = packet.Prefix
	// Proto is a transport protocol number.
	Proto = packet.Proto
	// Direction tells whether a packet leaves or enters the client
	// network.
	Direction = packet.Direction
	// Flags holds TCP control flags.
	Flags = packet.Flags
	// Verdict is a filter decision.
	Verdict = filtering.Verdict
	// Counters accumulates per-filter packet statistics.
	Counters = filtering.Counters
	// PacketFilter is the interface shared by the bitmap filter and the
	// SPI baselines in internal/flowtable.
	PacketFilter = filtering.PacketFilter
	// BatchFilter is a PacketFilter with a batched data plane:
	// ProcessBatch plus the allocation-free ProcessBatchInto. Filter,
	// Safe, and Sharded implement it natively.
	BatchFilter = filtering.BatchFilter
)

// Re-exported enum values.
const (
	TCP = packet.TCP
	UDP = packet.UDP

	Outgoing = packet.Outgoing
	Incoming = packet.Incoming

	Pass = filtering.Pass
	Drop = filtering.Drop

	FIN = packet.FIN
	SYN = packet.SYN
	RST = packet.RST
	PSH = packet.PSH
	ACK = packet.ACK
	URG = packet.URG
)

// Wire-decode sentinel errors, re-exported for callers feeding the filter
// from raw frames (compare with errors.Is).
var (
	// ErrFragmented rejects non-initial IPv4 fragments: their transport
	// header is absent, so no 4-tuple exists to judge.
	ErrFragmented = packet.ErrFragmented
	// ErrTooLong rejects packets whose encoded IP length would overflow
	// the 16-bit total-length field.
	ErrTooLong = packet.ErrTooLong
)

// DecodeTuple extracts the address tuple and direction from a raw
// Ethernet/IPv4/TCP-or-UDP frame without materializing a Frame — the
// zero-copy entry point of the live packet plane (cmd/bfwall). It applies
// the same structural validation as the full decoder but skips the
// transport checksum, which the filter never consults.
func DecodeTuple(frame []byte) (Tuple, Direction, error) { return packet.DecodeTuple(frame) }

// DecodeInto fills pkt's Tuple, Dir, Flags and Length from a raw frame
// with zero allocations, leaving pkt.Time for the caller (capture
// timestamp). pkt is unmodified on error.
func DecodeInto(pkt *Packet, frame []byte) error { return packet.DecodeInto(pkt, frame) }

// AddrFrom4 builds an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr { return packet.AddrFrom4(a, b, c, d) }

// PrefixFrom returns the CIDR prefix base/bits.
func PrefixFrom(base Addr, bits uint8) Prefix { return packet.PrefixFrom(base, bits) }

// Filter is the {k×n}-bitmap filter (not safe for concurrent use; see
// Safe).
type Filter = core.Filter

// Safe is a goroutine-safe wrapper around Filter.
type Safe = core.Safe

// Option configures a Filter.
type Option = core.Option

// Stats is the point-in-time introspection snapshot returned by
// Filter.Stats and LiveFilter.Stats.
type Stats = core.Stats

// DropPolicy is an adaptive-packet-dropping indicator (§5.3).
type DropPolicy = core.DropPolicy

// PolicyResetter is the optional DropPolicy extension Filter.Reset uses to
// flush indicator windows along with the bitmap.
type PolicyResetter = core.PolicyResetter

// PolicyCloner is the optional DropPolicy extension NewSharded uses to
// give every shard its own policy instance; stateful policies that cannot
// clone are rejected. Both built-in policies implement it.
type PolicyCloner = core.PolicyCloner

// PolicyShardScaler is the optional DropPolicy extension NewSharded uses
// to rescale a per-shard clone to the 1/S traffic partition it observes
// (BandwidthPolicy divides its link capacity by S).
type PolicyShardScaler = core.PolicyShardScaler

// BandwidthPolicy is the §5.3 APD design 1 indicator (drop probability =
// link bandwidth utilization).
type BandwidthPolicy = core.BandwidthPolicy

// RatioPolicy is the §5.3 APD design 2 indicator (drop probability driven
// by the in/out packet ratio).
type RatioPolicy = core.RatioPolicy

// AsBatch returns f's batched data plane: filters that implement
// BatchFilter natively (Filter, Safe, Sharded) are returned unchanged,
// anything else gets a generic per-packet fallback with identical
// verdicts.
func AsBatch(f PacketFilter) BatchFilter { return filtering.AsBatch(f) }

// Chain composes filter stages into one BatchFilter: packets flow through
// the stages in order and the first Drop short-circuits, so later stages
// never observe a dropped packet. The batch path feeds each stage only
// its predecessor's survivors (compacted in order, pooled scratch), which
// keeps stage state evolution identical to per-packet chaining. This is
// the composition point for layered defenses — e.g. a SYN-validation
// stage in front of the bitmap filter, or a TenantSet behind a rate
// limiter. Chain() passes everything; Chain(f) returns f unchanged.
func Chain(stages ...BatchFilter) BatchFilter { return filtering.Chain(stages...) }

// MarkPolicy and TuplePolicy select ablation variants of the filter.
type (
	MarkPolicy  = core.MarkPolicy
	TuplePolicy = core.TuplePolicy
)

// KernelMode selects the data-plane bit kernels (word-coalesced by
// default, scalar reference available) and SweepMode governs when batch
// processing reorders its bitmap touches into sorted sweeps. Both are
// pure performance knobs: every combination produces byte-identical
// verdicts and statistics (see DESIGN.md §9).
type (
	KernelMode = core.KernelMode
	SweepMode  = core.SweepMode
)

// Re-exported policy values.
const (
	MarkAllVectors  = core.MarkAllVectors
	MarkCurrentOnly = core.MarkCurrentOnly
	PartialTuple    = core.PartialTuple
	FullTuple       = core.FullTuple

	KernelCoalesced = core.KernelCoalesced
	KernelScalar    = core.KernelScalar
	SweepAuto       = core.SweepAuto
	SweepAlways     = core.SweepAlways
	SweepNever      = core.SweepNever
)

// Build is the unified constructor: one option bundle describes a
// complete deployment, with flavor selectors riding in the same slice as
// the bitmap parameters. It composes, inside-out:
//
//	Build(WithOrder(20))                          == New(...)
//	Build(WithConcurrencySafe(), ...)             == NewSafe(New(...))
//	Build(WithShards(8), ...)                     == NewSharded(8, ...)
//	Build(WithLiveClock(nil), ...)                == NewLive(<inner>, ...)
//	Build(WithShards(8), WithLiveClock(clk), ...) == NewLive(NewSharded(8, ...), WithClock(clk))
//
// The classic constructors below remain as thin wrappers and return their
// concrete types; Build is the surface that can be stored as
// configuration and applied uniformly — TenantSet construction takes the
// same bundle per tenant. The result always implements BatchFilter; it is
// goroutine-safe unless the bundle selected a bare single filter.
func Build(opts ...Option) (BatchFilter, error) {
	plan := core.PlanBuild(opts...)
	if !plan.Live {
		return core.Build(opts...)
	}
	// Wall-clock deployments: compose the core flavor with the live
	// request cancelled (core.Build rejects it otherwise), then wrap it
	// in the adapter driven by the requested clock.
	inner, err := core.Build(append(append(make([]Option, 0, len(opts)+1), opts...), core.ClearLive())...)
	if err != nil {
		return nil, err
	}
	var lopts []LiveOption
	if plan.Clock != nil {
		lopts = append(lopts, live.WithClock(plan.Clock))
	}
	return live.New(inner, lopts...)
}

// Flavor selectors for Build. They are ordinary Options, but only Build
// honors them: New and the other classic constructors reject bundles that
// carry flavor requests rather than silently ignoring them.

// WithShards selects the sharded flavor with the given shard count
// (rounded up to a power of two, exactly as NewSharded).
func WithShards(n int) Option { return core.WithShards(n) }

// WithConcurrencySafe selects a goroutine-safe filter (the Safe wrapper).
// It is implied for WithShards and WithLiveClock.
func WithConcurrencySafe() Option { return core.WithConcurrencySafe() }

// WithLiveClock selects the wall-clock adapter (LiveFilter) around the
// composed filter, driven by c; nil selects the real clock.
func WithLiveClock(c Clock) Option { return core.WithLiveClock(c) }

// New constructs a bitmap filter. With no options it is the paper's
// {4×20}-bitmap with m = 3 hash functions rotated every 5 seconds
// (512 KiB, T_e = 20 s). Equivalent to Build with no flavor selectors,
// typed as the concrete *Filter.
func New(opts ...Option) (*Filter, error) { return core.New(opts...) }

// NewSafe wraps a filter for concurrent use.
func NewSafe(f *Filter) *Safe { return core.NewSafe(f) }

// Sharded partitions one logical filter across independently locked shards
// for multi-core packet paths; flow-key routing keeps semantics identical
// to a single filter.
type Sharded = core.Sharded

// NewSharded builds a sharded filter (shard count rounded up to a power of
// two; each shard gets the configured per-filter memory). WithAPD works on
// the sharded flavor too: the policy is cloned per shard (PolicyCloner),
// with BandwidthPolicy capacity rescaled to each shard's 1/S traffic
// partition, and Sharded.Stats/APDSpared aggregate the per-shard state.
func NewSharded(shards int, opts ...Option) (*Sharded, error) {
	return core.NewSharded(shards, opts...)
}

// Configuration options (see the paper's §3.4 for the parameter
// trade-offs).
func WithOrder(n uint) Option                 { return core.WithOrder(n) }
func WithVectors(k int) Option                { return core.WithVectors(k) }
func WithHashes(m int) Option                 { return core.WithHashes(m) }
func WithRotateEvery(dt time.Duration) Option { return core.WithRotateEvery(dt) }
func WithSeed(seed uint64) Option             { return core.WithSeed(seed) }
func WithAPD(policy DropPolicy) Option        { return core.WithAPD(policy) }
func WithMarkPolicy(p MarkPolicy) Option      { return core.WithMarkPolicy(p) }
func WithTuplePolicy(p TuplePolicy) Option    { return core.WithTuplePolicy(p) }
func WithKernels(m KernelMode) Option         { return core.WithKernels(m) }
func WithSweep(m SweepMode) Option            { return core.WithSweep(m) }

// NewBandwidthPolicy returns the §5.3 APD design 1 (drop with probability
// equal to the link's bandwidth utilization).
func NewBandwidthPolicy(capacityBitsPerSec float64, window time.Duration) (*BandwidthPolicy, error) {
	return core.NewBandwidthPolicy(capacityBitsPerSec, window)
}

// NewRatioPolicy returns the §5.3 APD design 2 (drop probability driven by
// the in/out packet ratio between thresholds l and h).
func NewRatioPolicy(low, high float64, window time.Duration) (*RatioPolicy, error) {
	return core.NewRatioPolicy(low, high, window)
}

// ReadSnapshot reconstructs a filter from a stream written by
// Filter.WriteSnapshot (e.g. for edge-router failover). Extra options such
// as WithAPD are applied on top of the serialized configuration.
func ReadSnapshot(r io.Reader, opts ...Option) (*Filter, error) {
	return core.ReadSnapshot(r, opts...)
}

// Snapshottable is the surface shared by every filter flavor that can be
// checkpointed; *Filter, *Safe and *Sharded implement it.
type Snapshottable = core.Snapshottable

// ErrSnapshotKind is returned when a snapshot holds a different filter
// flavor than the reader expects; ReadAnySnapshot accepts every flavor.
var ErrSnapshotKind = core.ErrSnapshotKind

// ReadSafeSnapshot is ReadSnapshot returning the filter already wrapped
// for concurrent use.
func ReadSafeSnapshot(r io.Reader, opts ...Option) (*Safe, error) {
	return core.ReadSafeSnapshot(r, opts...)
}

// ReadShardedSnapshot reconstructs a sharded filter from a stream written
// by Sharded.WriteSnapshot. The shard count comes from the snapshot (flow
// routing depends on it); an APD policy passed via WithAPD is cloned per
// shard exactly as NewSharded does.
func ReadShardedSnapshot(r io.Reader, opts ...Option) (*Sharded, error) {
	return core.ReadShardedSnapshot(r, opts...)
}

// ReadAnySnapshot reconstructs whichever filter flavor the stream holds —
// the restore path for checkpoints whose flavor is not known in advance.
func ReadAnySnapshot(r io.Reader, opts ...Option) (Snapshottable, error) {
	return core.ReadAnySnapshot(r, opts...)
}

// LiveFilter is the wall-clock deployment adapter: goroutine-safe, stamps
// packets with elapsed monotonic time, and can rotate in the background
// while the link is quiet.
type LiveFilter = live.Filter

// Clock abstracts the LiveFilter's time source for tests.
type Clock = live.Clock

// LiveOption configures NewLive.
type LiveOption = live.Option

// LiveInner is the filter surface NewLive accepts: *Filter, *Safe and
// *Sharded all satisfy it, so a deployment picks its concurrency flavor
// without changing the wall-clock adapter.
type LiveInner = live.Inner

// NewLive wraps a filter for wall-clock operation. The wrapped filter must
// not be used directly afterwards.
func NewLive(f LiveInner, opts ...LiveOption) (*LiveFilter, error) {
	return live.New(f, opts...)
}

// WithClock substitutes the LiveFilter's time source.
func WithClock(c Clock) LiveOption { return live.WithClock(c) }

// ReadLiveSnapshot reconstructs a wall-clock filter from a stream written
// by LiveFilter.WriteSnapshot (or any flavor's WriteSnapshot): the inner
// flavor comes from the snapshot and the adapter's clock is back-dated so
// marks keep their residual lifetime across the restart.
func ReadLiveSnapshot(r io.Reader, coreOpts []Option, liveOpts ...LiveOption) (*LiveFilter, error) {
	return live.ReadSnapshot(r, coreOpts, liveOpts...)
}
