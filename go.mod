module bitmapfilter

go 1.22
