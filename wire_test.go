package bitmapfilter_test

import (
	"testing"
	"time"

	"bitmapfilter"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// wireTrace synthesizes one chunk of mixed traffic starting at index base:
// outgoing marks over fresh tuples, their incoming replies, and unsolicited
// incoming probes (the scan component), with timestamps advancing fast
// enough that a million-packet trace crosses many rotation boundaries.
func wireTrace(r *xrand.Rand, base, n int) []bitmapfilter.Packet {
	pkts := make([]bitmapfilter.Packet, 0, n)
	for i := base; len(pkts) < n; i++ {
		ts := time.Duration(i) * 20 * time.Microsecond
		tup := bitmapfilter.Tuple{
			Src:     bitmapfilter.AddrFrom4(10, byte(i>>16), byte(i>>8), byte(i)),
			Dst:     bitmapfilter.Addr(r.Uint32() | 1),
			SrcPort: uint16(1024 + i%60000),
			DstPort: 443,
			Proto:   bitmapfilter.TCP,
		}
		if i%8 == 7 {
			tup.Proto = bitmapfilter.UDP
		}
		length := 60 + int(r.Uint32()%1400)
		switch i % 4 {
		case 0: // outgoing mark
			pkts = append(pkts, bitmapfilter.Packet{
				Time: ts, Tuple: tup, Dir: bitmapfilter.Outgoing,
				Flags: bitmapfilter.ACK, Length: length,
			})
		case 1: // reply to the previous mark (same tuple family, reversed)
			pkts = append(pkts, bitmapfilter.Packet{
				Time: ts, Tuple: tup.Reverse(), Dir: bitmapfilter.Incoming,
				Flags: bitmapfilter.ACK, Length: length,
			})
		default: // unsolicited probe: the scan the filter exists to drop
			probe := bitmapfilter.Tuple{
				Src:     bitmapfilter.Addr(r.Uint32() | 1),
				Dst:     bitmapfilter.AddrFrom4(10, byte(r.Uint32()), byte(i>>8), byte(i)),
				SrcPort: uint16(1024 + i%60000),
				DstPort: uint16(1 + r.Uint32()%1024),
				Proto:   tup.Proto,
			}
			flags := bitmapfilter.SYN
			if probe.Proto == bitmapfilter.UDP {
				flags = 0
			}
			pkts = append(pkts, bitmapfilter.Packet{
				Time: ts, Tuple: probe, Dir: bitmapfilter.Incoming,
				Flags: flags, Length: length,
			})
		}
	}
	return pkts
}

// TestWireDifferentialMillion is the live packet plane's acceptance
// differential at scale: one million packets are encoded to raw frames and
// judged twice — once through the struct path (the packets as generated)
// and once through the wire path (encode → DecodeInto → verdict) — on
// identically seeded filters. The verdict streams must be byte-identical,
// on both the single and the 8-shard flavor, and DecodeTuple must agree
// with the struct tuple on every sampled frame. Any divergence between the
// zero-copy decoder and the reference decoder shows up here as a verdict
// mismatch at a named packet index.
func TestWireDifferentialMillion(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 65_536
	}
	const chunk = 4096

	type lane struct {
		name           string
		structF, wireF bitmapfilter.BatchFilter
		structV, wireV []bitmapfilter.Verdict
	}
	mk := func(name string, opts ...bitmapfilter.Option) *lane {
		sf, err := bitmapfilter.Build(opts...)
		if err != nil {
			t.Fatalf("%s struct filter: %v", name, err)
		}
		wf, err := bitmapfilter.Build(opts...)
		if err != nil {
			t.Fatalf("%s wire filter: %v", name, err)
		}
		return &lane{name: name, structF: sf, wireF: wf}
	}
	lanes := []*lane{
		mk("single", bitmapfilter.WithOrder(16), bitmapfilter.WithSeed(99)),
		mk("sharded8", bitmapfilter.WithShards(8), bitmapfilter.WithOrder(13), bitmapfilter.WithSeed(99)),
	}

	r := xrand.New(4242)
	frames := make([][]byte, chunk)
	decoded := make([]bitmapfilter.Packet, chunk)
	for base := 0; base < n; base += chunk {
		m := chunk
		if n-base < m {
			m = n - base
		}
		pkts := wireTrace(r, base, m)
		for i := range pkts {
			buf, err := packet.Encode(pkts[i])
			if err != nil {
				t.Fatalf("encode packet %d: %v", base+i, err)
			}
			frames[i] = buf
		}
		// The wire lane sees only the raw bytes plus the capture
		// timestamp, exactly like bfwall's pump.
		for i := 0; i < m; i++ {
			if err := bitmapfilter.DecodeInto(&decoded[i], frames[i]); err != nil {
				t.Fatalf("decode frame %d: %v", base+i, err)
			}
			decoded[i].Time = pkts[i].Time
		}
		// Spot-check the tuple-only fast path against the generated truth.
		for i := 0; i < m; i += 97 {
			tup, dir, err := bitmapfilter.DecodeTuple(frames[i])
			if err != nil {
				t.Fatalf("DecodeTuple frame %d: %v", base+i, err)
			}
			if tup != pkts[i].Tuple || dir != pkts[i].Dir {
				t.Fatalf("DecodeTuple frame %d: got (%v, %v), want (%v, %v)",
					base+i, tup, dir, pkts[i].Tuple, pkts[i].Dir)
			}
		}
		for _, l := range lanes {
			l.structV = l.structF.ProcessBatchInto(pkts, l.structV)
			l.wireV = l.wireF.ProcessBatchInto(decoded[:m], l.wireV)
			for i := range l.structV {
				if l.structV[i] != l.wireV[i] {
					t.Fatalf("%s: packet %d: struct verdict %v, wire verdict %v",
						l.name, base+i, l.structV[i], l.wireV[i])
				}
			}
		}
	}
}
