package bitvector

import (
	"bytes"
	"math/bits"
	"testing"

	"bitmapfilter/internal/xrand"
)

// scanCount recomputes the popcount the old O(2^n/64) way; every test here
// checks the running count against it.
func scanCount(v *Vector) uint64 {
	var c int
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return uint64(c)
}

func checkCount(t *testing.T, v *Vector, label string) {
	t.Helper()
	if got, want := v.PopCount(), scanCount(v); got != want {
		t.Fatalf("%s: PopCount = %d, scan = %d", label, got, want)
	}
}

func TestRunningCountSetClear(t *testing.T) {
	v := MustNew(10)
	r := xrand.New(1)
	for i := 0; i < 5000; i++ {
		idx := r.Uint64()
		if r.Bool(0.5) {
			was := v.Test(idx)
			if newly := v.Set(idx); newly == was {
				t.Fatalf("Set(%d) newly=%v but bit was %v", idx, newly, was)
			}
		} else {
			was := v.Test(idx)
			if cleared := v.Clear(idx); cleared != was {
				t.Fatalf("Clear(%d) cleared=%v but bit was %v", idx, cleared, was)
			}
		}
	}
	checkCount(t, v, "after random set/clear")
}

func TestRunningCountSetIdempotent(t *testing.T) {
	v := MustNew(8)
	if !v.Set(42) {
		t.Error("first Set(42) not newly set")
	}
	if v.Set(42) {
		t.Error("second Set(42) reported newly set")
	}
	if v.PopCount() != 1 {
		t.Errorf("PopCount = %d after double set", v.PopCount())
	}
	if !v.Clear(42) {
		t.Error("Clear(42) of a set bit returned false")
	}
	if v.Clear(42) {
		t.Error("Clear(42) of a clear bit returned true")
	}
	if v.PopCount() != 0 {
		t.Errorf("PopCount = %d after double clear", v.PopCount())
	}
}

func TestRunningCountReset(t *testing.T) {
	v := MustNew(10)
	r := xrand.New(2)
	for i := 0; i < 300; i++ {
		v.Set(r.Uint64())
	}
	v.Reset()
	if v.PopCount() != 0 {
		t.Errorf("PopCount = %d after Reset", v.PopCount())
	}
	checkCount(t, v, "after Reset")
}

func TestRunningCountOr(t *testing.T) {
	a, b := MustNew(10), MustNew(10)
	r := xrand.New(3)
	for i := 0; i < 400; i++ {
		a.Set(r.Uint64())
		b.Set(r.Uint64())
	}
	// Overlap so the OR must not double-count shared bits.
	a.Set(7)
	b.Set(7)
	if err := a.Or(b); err != nil {
		t.Fatal(err)
	}
	checkCount(t, a, "after Or")
	if err := a.Or(b); err != nil { // second OR is a no-op for the count
		t.Fatal(err)
	}
	checkCount(t, a, "after idempotent Or")
}

func TestRunningCountCopyFromClone(t *testing.T) {
	a, b := MustNew(10), MustNew(10)
	r := xrand.New(4)
	for i := 0; i < 250; i++ {
		a.Set(r.Uint64())
	}
	b.Set(99) // b has prior state the copy must replace
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	checkCount(t, b, "after CopyFrom")
	if b.PopCount() != a.PopCount() {
		t.Errorf("CopyFrom count %d != source %d", b.PopCount(), a.PopCount())
	}
	c := a.Clone()
	checkCount(t, c, "after Clone")
}

func TestRunningCountReadFrom(t *testing.T) {
	a := MustNew(10)
	r := xrand.New(5)
	for i := 0; i < 250; i++ {
		a.Set(r.Uint64())
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := MustNew(10)
	b.Set(3) // prior state must be replaced, count included
	if _, err := b.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	checkCount(t, b, "after ReadFrom")
	if !a.Equal(b) {
		t.Error("round-tripped vector differs")
	}
}
