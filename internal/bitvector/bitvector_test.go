package bitvector

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"bitmapfilter/internal/xrand"
)

func TestNewOrderValidation(t *testing.T) {
	tests := []struct {
		order   uint
		wantErr bool
	}{
		{order: 5, wantErr: true},
		{order: 6, wantErr: false},
		{order: 20, wantErr: false},
		{order: 32, wantErr: false},
		{order: 33, wantErr: true},
	}
	for _, tt := range tests {
		_, err := New(tt.order)
		if gotErr := err != nil; gotErr != tt.wantErr {
			t.Errorf("New(%d) error = %v, wantErr %v", tt.order, err, tt.wantErr)
		}
		if err != nil && !errors.Is(err, ErrOrderRange) {
			t.Errorf("New(%d) error %v is not ErrOrderRange", tt.order, err)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(1) did not panic")
		}
	}()
	MustNew(1)
}

func TestLenAndBytes(t *testing.T) {
	v := MustNew(20)
	if v.Len() != 1<<20 {
		t.Errorf("Len = %d", v.Len())
	}
	if v.Bytes() != (1<<20)/8 {
		t.Errorf("Bytes = %d", v.Bytes())
	}
	if v.Order() != 20 {
		t.Errorf("Order = %d", v.Order())
	}
}

func TestSetTestClear(t *testing.T) {
	v := MustNew(10)
	for i := uint64(0); i < v.Len(); i++ {
		if v.Test(i) {
			t.Fatalf("fresh vector has bit %d set", i)
		}
	}
	v.Set(0)
	v.Set(63)
	v.Set(64)
	v.Set(v.Len() - 1)
	for _, i := range []uint64{0, 63, 64, v.Len() - 1} {
		if !v.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.PopCount() != 4 {
		t.Errorf("PopCount = %d, want 4", v.PopCount())
	}
	v.Clear(63)
	if v.Test(63) {
		t.Error("bit 63 still set after Clear")
	}
	if v.PopCount() != 3 {
		t.Errorf("PopCount after clear = %d, want 3", v.PopCount())
	}
}

func TestIndexMasking(t *testing.T) {
	// Raw 64-bit hash values must be reduced mod 2^order.
	v := MustNew(8)
	h := uint64(0xdeadbeefcafe0000) | 37
	v.Set(h)
	if !v.Test(37) {
		t.Error("Set with high bits did not land on masked index")
	}
	if !v.Test(h) {
		t.Error("Test with high bits did not find masked index")
	}
	if v.Mask(h) != 37&v.mask {
		t.Errorf("Mask(%#x) = %d", h, v.Mask(h))
	}
}

func TestReset(t *testing.T) {
	v := MustNew(12)
	r := xrand.New(1)
	for i := 0; i < 500; i++ {
		v.Set(r.Uint64())
	}
	if v.PopCount() == 0 {
		t.Fatal("setup produced empty vector")
	}
	v.Reset()
	if v.PopCount() != 0 {
		t.Errorf("PopCount after Reset = %d", v.PopCount())
	}
}

func TestUtilization(t *testing.T) {
	v := MustNew(10) // 1024 bits
	for i := uint64(0); i < 256; i++ {
		v.Set(i)
	}
	if got := v.Utilization(); got != 0.25 {
		t.Errorf("Utilization = %v, want 0.25", got)
	}
}

func TestOr(t *testing.T) {
	a := MustNew(8)
	b := MustNew(8)
	a.Set(1)
	b.Set(2)
	if err := a.Or(b); err != nil {
		t.Fatalf("Or: %v", err)
	}
	if !a.Test(1) || !a.Test(2) {
		t.Error("Or did not union bits")
	}
	c := MustNew(9)
	if err := a.Or(c); err == nil {
		t.Error("Or across orders did not error")
	}
}

func TestCopyFromAndClone(t *testing.T) {
	a := MustNew(8)
	a.Set(5)
	a.Set(200)

	b := MustNew(8)
	if err := b.CopyFrom(a); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if !b.Equal(a) {
		t.Error("CopyFrom result not equal")
	}
	b.Set(7)
	if a.Test(7) {
		t.Error("CopyFrom aliases storage")
	}

	c := a.Clone()
	if !c.Equal(a) {
		t.Error("Clone not equal")
	}
	c.Set(9)
	if a.Test(9) {
		t.Error("Clone aliases storage")
	}

	d := MustNew(9)
	if err := d.CopyFrom(a); err == nil {
		t.Error("CopyFrom across orders did not error")
	}
}

func TestEqual(t *testing.T) {
	a, b := MustNew(8), MustNew(8)
	if !a.Equal(b) {
		t.Error("fresh vectors not equal")
	}
	a.Set(3)
	if a.Equal(b) {
		t.Error("differing vectors reported equal")
	}
	if a.Equal(MustNew(9)) {
		t.Error("different orders reported equal")
	}
}

func TestStringMentionsCounts(t *testing.T) {
	v := MustNew(8)
	v.Set(1)
	s := v.String()
	if s == "" {
		t.Error("empty String()")
	}
}

// Property: setting any sequence of indexes makes exactly those (masked)
// indexes readable and PopCount equals the distinct count.
func TestSetTestProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		v := MustNew(12)
		distinct := make(map[uint64]bool)
		for _, h := range raw {
			v.Set(h)
			distinct[v.Mask(h)] = true
		}
		for _, h := range raw {
			if !v.Test(h) {
				return false
			}
		}
		return v.PopCount() == uint64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Clear is the inverse of Set for any index when no aliasing
// occurs.
func TestClearProperty(t *testing.T) {
	f := func(h uint64) bool {
		v := MustNew(16)
		v.Set(h)
		v.Clear(h)
		return !v.Test(h) && v.PopCount() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteToReadFromRoundTrip(t *testing.T) {
	v := MustNew(12)
	r := xrand.New(5)
	for i := 0; i < 700; i++ {
		v.Set(r.Uint64())
	}
	var buf bytes.Buffer
	n, err := v.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(v.Bytes()) {
		t.Errorf("WriteTo wrote %d bytes, want %d", n, v.Bytes())
	}
	w := MustNew(12)
	if _, err := w.ReadFrom(&buf); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if !w.Equal(v) {
		t.Error("round trip not equal")
	}
}

func TestReadFromTruncated(t *testing.T) {
	v := MustNew(10)
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	w := MustNew(10)
	if _, err := w.ReadFrom(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Error("truncated stream accepted")
	}
}

func BenchmarkSet(b *testing.B) {
	v := MustNew(20)
	r := xrand.New(1)
	idx := make([]uint64, 4096)
	for i := range idx {
		idx[i] = r.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Set(idx[i&4095])
	}
}

func BenchmarkTest(b *testing.B) {
	v := MustNew(20)
	r := xrand.New(1)
	idx := make([]uint64, 4096)
	for i := range idx {
		idx[i] = r.Uint64()
		v.Set(idx[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		if v.Test(idx[i&4095]) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkReset(b *testing.B) {
	v := MustNew(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Reset()
	}
}
