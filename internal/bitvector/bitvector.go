// Package bitvector implements the fixed-size bit vector that underlies both
// the Bloom filter and the bitmap filter. Each vector is 2^n bits, stored as
// a contiguous []uint64 so that the rotate operation of the bitmap filter —
// "reset all bits in the last bit vector to zero" — is a single sequential
// memory sweep, exactly the property §4.2 of the paper relies on for cheap
// garbage collection.
package bitvector

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
)

const (
	// MinOrder is the smallest supported vector order. 2^6 = 64 bits is
	// one machine word; anything smaller has no practical use.
	MinOrder = 6
	// MaxOrder caps a vector at 2^32 bits (512 MiB), far above any
	// configuration in the paper (which uses order 20, 128 KiB).
	MaxOrder = 32
)

// ErrOrderRange is returned by New when the requested order is outside
// [MinOrder, MaxOrder].
var ErrOrderRange = errors.New("bitvector: order out of range")

// Vector is a fixed-size bit vector of 2^order bits. The zero value is not
// usable; construct vectors with New.
//
// Every mutating operation maintains a running count of set bits, so
// PopCount and Utilization are O(1) field reads rather than scans over the
// word array. This is what makes per-packet penetration-probability
// sampling and metrics scrapes free (§4.2's "cheap introspection").
type Vector struct {
	words []uint64
	order uint
	mask  uint64 // 2^order - 1, applied to indexes by the Masked helpers
	count uint64 // running number of set bits, kept coherent by all mutators
}

// New returns a zeroed Vector of 2^order bits.
func New(order uint) (*Vector, error) {
	if order < MinOrder || order > MaxOrder {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrOrderRange, order, MinOrder, MaxOrder)
	}
	return &Vector{
		words: make([]uint64, 1<<(order-6)),
		order: order,
		mask:  1<<order - 1,
	}, nil
}

// MustNew is New for statically known orders; it panics on error and exists
// for tests and package-internal constants.
func MustNew(order uint) *Vector {
	v, err := New(order)
	if err != nil {
		panic(err)
	}
	return v
}

// Order returns the order n of the vector (the vector holds 2^n bits).
func (v *Vector) Order() uint { return v.order }

// Len returns the number of bits in the vector.
func (v *Vector) Len() uint64 { return 1 << v.order }

// Bytes returns the storage footprint of the vector's bit array in bytes.
func (v *Vector) Bytes() uint64 { return v.Len() / 8 }

// Mask reduces an arbitrary 64-bit hash output to a valid bit index. This is
// the "output that exceeds n-bit should be truncated" rule from §3.3.
func (v *Vector) Mask(h uint64) uint64 { return h & v.mask }

// Set sets bit i and reports whether it was newly set (false if the bit
// was already 1). Indexes are reduced modulo the vector size so callers may
// pass raw hash outputs directly.
//
//bf:hotpath
func (v *Vector) Set(i uint64) bool {
	i &= v.mask
	w := &v.words[i>>6]
	b := uint64(1) << (i & 63)
	if *w&b != 0 {
		return false
	}
	*w |= b
	v.count++
	return true
}

// Clear clears bit i (reduced modulo the vector size) and reports whether
// the bit was previously set.
//
//bf:hotpath
func (v *Vector) Clear(i uint64) bool {
	i &= v.mask
	w := &v.words[i>>6]
	b := uint64(1) << (i & 63)
	if *w&b == 0 {
		return false
	}
	*w &^= b
	v.count--
	return true
}

// Test reports whether bit i is set (index reduced modulo the vector size).
//
//bf:hotpath
func (v *Vector) Test(i uint64) bool {
	i &= v.mask
	return v.words[i>>6]&(1<<(i&63)) != 0
}

// WordMask names one 64-bit word of a vector's bit array together with a
// mask of bits inside that word. Coalesce produces groups of them from raw
// hash indexes; SetWords and TestWords consume them. A WordMask is only
// valid for vectors of the order it was coalesced for — Word must be a
// legal index into the word array.
type WordMask struct {
	Word uint32
	Mask uint64
}

// coalesceStack bounds the on-stack WordMask buffer used by the coalesced
// SetAll/TestAll kernels; larger index groups fall back to the scalar
// kernels. It is deliberately small: the buffer is zero-initialized on
// every call, so sizing it for hashfam.MaxFunctions (64) would spend ~1
// KiB of memclr per packet on a filter whose m is 3. Eight covers every
// practical family size; oversized ablation sweeps take the scalar path,
// which is semantically identical (pinned by the differential tests).
const coalesceStack = 8

// Split reduces a raw hash output to its (word index, in-word bit mask)
// pair — the coordinates every coalesced kernel operates on.
//
//bf:hotpath
func (v *Vector) Split(h uint64) (word uint32, mask uint64) {
	h &= v.mask
	return uint32(h >> 6), 1 << (h & 63)
}

// Word returns the w-th 64-bit word of the bit array. Batch sweeps read
// words directly and write them back through SetWords so the running
// popcount stays coherent.
//
//bf:hotpath
func (v *Vector) Word(w uint32) uint64 { return v.words[w] }

// Words returns the number of 64-bit words in the bit array.
func (v *Vector) Words() int { return len(v.words) }

// growWordMasks returns a WordMask slice of length n backed by dst's array
// when cap(dst) >= n, allocating only on growth (contents unspecified).
func growWordMasks(dst []WordMask, n int) []WordMask {
	if cap(dst) < n {
		return make([]WordMask, n)
	}
	return dst[:n]
}

// coalesceInto fills dst (len(dst) >= len(idxs)) with the word-grouped
// masks of idxs and returns the number of distinct words. Duplicate and
// same-word indexes merge into one WordMask, so a bit named twice in one
// group contributes exactly one mask bit. The scan is O(len(idxs)²) but
// index groups are tiny (m hash outputs, m ≤ 64).
//
//bf:hotpath
func (v *Vector) coalesceInto(dst []WordMask, idxs []uint64) int {
	if len(idxs) == 3 {
		// Straight-line path for the paper's m=3: three splits and three
		// compares, no inner scan loop.
		w0, b0 := v.Split(idxs[0])
		w1, b1 := v.Split(idxs[1])
		w2, b2 := v.Split(idxs[2])
		dst[0] = WordMask{Word: w0, Mask: b0}
		n := 1
		if w1 == w0 {
			dst[0].Mask |= b1
		} else {
			dst[1] = WordMask{Word: w1, Mask: b1}
			n = 2
		}
		if w2 == w0 {
			dst[0].Mask |= b2
		} else if n == 2 && w2 == w1 {
			dst[1].Mask |= b2
		} else {
			dst[n] = WordMask{Word: w2, Mask: b2}
			n++
		}
		return n
	}
	n := 0
	for _, i := range idxs {
		i &= v.mask
		w := uint32(i >> 6)
		b := uint64(1) << (i & 63)
		j := 0
		for ; j < n; j++ {
			if dst[j].Word == w {
				dst[j].Mask |= b
				break
			}
		}
		if j == n {
			dst[n] = WordMask{Word: w, Mask: b}
			n++
		}
	}
	return n
}

// Coalesce groups the raw hash indexes idxs (each reduced modulo the
// vector size) by word and merges their bit masks, so each distinct word
// appears exactly once. The result reuses dst's backing array when
// cap(dst) >= len(idxs) and is grown otherwise; pass the previous return
// value to keep the hot path allocation-free. The grouped pairs drive
// SetWords/TestWords on any vector of the same order.
//
//bf:hotpath
func (v *Vector) Coalesce(dst []WordMask, idxs []uint64) []WordMask {
	dst = growWordMasks(dst, len(idxs)) //bf:allow escapecheck amortized grow: callers recycle dst per the documented contract, so steady state reuses capacity
	return dst[:v.coalesceInto(dst, idxs)]
}

// SetWords ORs every pair's mask into its word and returns how many bits
// were newly set — one read-modify-write and one popcount delta per pair.
// Pairs must hold valid word indexes for this vector (see Coalesce);
// duplicate words in pairs are tolerated (each pair's delta is computed
// against the word's current value).
//
//bf:hotpath
func (v *Vector) SetWords(pairs []WordMask) int {
	newly := 0
	for _, p := range pairs {
		old := v.words[p.Word]
		if newBits := p.Mask &^ old; newBits != 0 {
			v.words[p.Word] = old | p.Mask
			newly += bits.OnesCount64(newBits)
		}
	}
	v.count += uint64(newly)
	return newly
}

// TestWords reports whether every mask bit of every pair is set — one
// masked compare per distinct word, with early exit on the first word
// missing a bit.
//
//bf:hotpath
func (v *Vector) TestWords(pairs []WordMask) bool {
	for _, p := range pairs {
		if v.words[p.Word]&p.Mask != p.Mask {
			return false
		}
	}
	return true
}

// SetAll sets every bit named by idxs (each reduced modulo the vector
// size) and returns how many were newly set. It is the multi-index mark
// fast path of the batch data plane, word-coalesced: the group's indexes
// are first merged by word (duplicate indexes collapse into one mask
// bit), then each distinct word is touched exactly once — one
// read-modify-write plus one popcount delta — instead of once per index.
//
//bf:hotpath
func (v *Vector) SetAll(idxs []uint64) int {
	if len(idxs) > coalesceStack {
		return v.SetAllScalar(idxs)
	}
	var buf [coalesceStack]WordMask
	return v.SetWords(buf[:v.coalesceInto(buf[:], idxs)])
}

// SetAllVectors marks every bit named by idxs in every vector of vs — the
// k-vector mark of the bitmap filter, fused: the indexes are split and
// word-grouped once on the stack, then each vector takes one SetWords pass
// (per-vector popcount deltas included). All vectors must share the first
// vector's order, since the grouped word indexes are reused across them.
//
//bf:hotpath
func SetAllVectors(vs []*Vector, idxs []uint64) {
	if len(vs) == 0 {
		return
	}
	if len(idxs) == 3 {
		// Unrolled path for the paper's m=3 with three distinct words
		// (the overwhelmingly common case): the splits are computed once
		// for all k vectors and each vector takes three fixed
		// read-modify-writes — strictly less work than k scalar passes.
		v0 := vs[0]
		w0, b0 := v0.Split(idxs[0])
		w1, b1 := v0.Split(idxs[1])
		w2, b2 := v0.Split(idxs[2])
		if w0 != w1 && w0 != w2 && w1 != w2 {
			for _, v := range vs {
				newly := uint64(0)
				o0 := v.words[w0]
				v.words[w0] = o0 | b0
				if o0&b0 == 0 {
					newly++
				}
				o1 := v.words[w1]
				v.words[w1] = o1 | b1
				if o1&b1 == 0 {
					newly++
				}
				o2 := v.words[w2]
				v.words[w2] = o2 | b2
				if o2&b2 == 0 {
					newly++
				}
				v.count += newly
			}
			return
		}
	}
	if len(idxs) > coalesceStack {
		for _, v := range vs {
			v.SetAllScalar(idxs)
		}
		return
	}
	var buf [coalesceStack]WordMask
	n := vs[0].coalesceInto(buf[:], idxs)
	for _, v := range vs {
		v.SetWords(buf[:n])
	}
}

// SetAllScalar is the per-index reference kernel SetAll coalesces: one
// load/store per index. It is kept as the oversized-group fallback and as
// the pinned baseline for the scalar-vs-coalesced differential tests and
// benchmarks; behavior (including the newly-set count under duplicate
// indexes) is identical to SetAll.
//
//bf:hotpath
func (v *Vector) SetAllScalar(idxs []uint64) int {
	newly := 0
	for _, i := range idxs {
		i &= v.mask
		w := &v.words[i>>6]
		b := uint64(1) << (i & 63)
		old := *w
		*w = old | b
		if old&b == 0 {
			newly++
		}
	}
	v.count += uint64(newly)
	return newly
}

// TestAll reports whether every bit named by idxs (each reduced modulo the
// vector size) is set — the Bloom-filter membership test for one packet's
// m hash outputs, word-coalesced: indexes are merged by word and each
// distinct word is probed with one masked compare, exiting early on the
// first word missing a bit.
//
//bf:hotpath
func (v *Vector) TestAll(idxs []uint64) bool {
	if len(idxs) == 3 {
		// Unrolled path for m=3 with three distinct words: each word is
		// probed exactly once, no grouping buffer needed. Colliding words
		// (rare) fall through to the grouped path below.
		w0, b0 := v.Split(idxs[0])
		w1, b1 := v.Split(idxs[1])
		w2, b2 := v.Split(idxs[2])
		if w0 != w1 && w0 != w2 && w1 != w2 {
			return v.words[w0]&b0 != 0 && v.words[w1]&b1 != 0 && v.words[w2]&b2 != 0
		}
	}
	if len(idxs) > coalesceStack {
		return v.TestAllScalar(idxs)
	}
	var buf [coalesceStack]WordMask
	n := v.coalesceInto(buf[:], idxs)
	for i := 0; i < n; i++ {
		if v.words[buf[i].Word]&buf[i].Mask != buf[i].Mask {
			return false
		}
	}
	return true
}

// TestAllScalar is the per-index reference kernel TestAll coalesces; see
// SetAllScalar.
//
//bf:hotpath
func (v *Vector) TestAllScalar(idxs []uint64) bool {
	for _, i := range idxs {
		i &= v.mask
		if v.words[i>>6]&(1<<(i&63)) == 0 {
			return false
		}
	}
	return true
}

// Reset zeroes every bit. This is the b.rotate clean-up; it touches a fixed,
// contiguous region and is therefore O(2^n / 64) word writes.
func (v *Vector) Reset() {
	clear(v.words)
	v.count = 0
}

// PopCount returns the number of set bits. The bitmap filter uses this to
// report utilization U = b / 2^n (§4.1). It is an O(1) read of the running
// count maintained by the mutating operations.
func (v *Vector) PopCount() uint64 {
	return v.count
}

// Utilization returns the fraction of set bits, U in the paper's analysis.
func (v *Vector) Utilization() float64 {
	return float64(v.PopCount()) / float64(v.Len())
}

// Or sets v to the bitwise OR of v and other. It returns an error if the two
// vectors have different orders.
func (v *Vector) Or(other *Vector) error {
	if other.order != v.order {
		return fmt.Errorf("bitvector: or of order %d with order %d", v.order, other.order)
	}
	for i, w := range other.words {
		merged := v.words[i] | w
		v.count += uint64(bits.OnesCount64(merged &^ v.words[i]))
		v.words[i] = merged
	}
	return nil
}

// CopyFrom overwrites v with the contents of other. It returns an error if
// the two vectors have different orders.
func (v *Vector) CopyFrom(other *Vector) error {
	if other.order != v.order {
		return fmt.Errorf("bitvector: copy of order %d into order %d", other.order, v.order)
	}
	copy(v.words, other.words)
	v.count = other.count
	return nil
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	c := &Vector{
		words: make([]uint64, len(v.words)),
		order: v.order,
		mask:  v.mask,
		count: v.count,
	}
	copy(c.words, v.words)
	return c
}

// Equal reports whether v and other have identical size and contents.
func (v *Vector) Equal(other *Vector) bool {
	if v.order != other.order || v.count != other.count {
		return false
	}
	for i, w := range v.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// String summarizes the vector for debugging.
func (v *Vector) String() string {
	return fmt.Sprintf("bitvector{order=%d bits=%d set=%d}", v.order, v.Len(), v.PopCount())
}

// WriteTo serializes the raw bit array (little-endian words) to w. It
// implements io.WriterTo; pair it with ReadFrom on a vector of the same
// order.
func (v *Vector) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, 8*len(v.words))
	for i, word := range v.words {
		binary.LittleEndian.PutUint64(buf[i*8:], word)
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadFrom fills the vector from a stream produced by WriteTo on a vector
// of the same order. It implements io.ReaderFrom.
func (v *Vector) ReadFrom(r io.Reader) (int64, error) {
	buf := make([]byte, 8*len(v.words))
	n, err := io.ReadFull(r, buf)
	if err != nil {
		return int64(n), fmt.Errorf("bitvector: read words: %w", err)
	}
	var c int
	for i := range v.words {
		w := binary.LittleEndian.Uint64(buf[i*8:])
		v.words[i] = w
		c += bits.OnesCount64(w)
	}
	v.count = uint64(c)
	return int64(n), nil
}

// Interface compliance checks.
var (
	_ io.WriterTo   = (*Vector)(nil)
	_ io.ReaderFrom = (*Vector)(nil)
)
