// Package bitvector implements the fixed-size bit vector that underlies both
// the Bloom filter and the bitmap filter. Each vector is 2^n bits, stored as
// a contiguous []uint64 so that the rotate operation of the bitmap filter —
// "reset all bits in the last bit vector to zero" — is a single sequential
// memory sweep, exactly the property §4.2 of the paper relies on for cheap
// garbage collection.
package bitvector

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
)

const (
	// MinOrder is the smallest supported vector order. 2^6 = 64 bits is
	// one machine word; anything smaller has no practical use.
	MinOrder = 6
	// MaxOrder caps a vector at 2^32 bits (512 MiB), far above any
	// configuration in the paper (which uses order 20, 128 KiB).
	MaxOrder = 32
)

// ErrOrderRange is returned by New when the requested order is outside
// [MinOrder, MaxOrder].
var ErrOrderRange = errors.New("bitvector: order out of range")

// Vector is a fixed-size bit vector of 2^order bits. The zero value is not
// usable; construct vectors with New.
//
// Every mutating operation maintains a running count of set bits, so
// PopCount and Utilization are O(1) field reads rather than scans over the
// word array. This is what makes per-packet penetration-probability
// sampling and metrics scrapes free (§4.2's "cheap introspection").
type Vector struct {
	words []uint64
	order uint
	mask  uint64 // 2^order - 1, applied to indexes by the Masked helpers
	count uint64 // running number of set bits, kept coherent by all mutators
}

// New returns a zeroed Vector of 2^order bits.
func New(order uint) (*Vector, error) {
	if order < MinOrder || order > MaxOrder {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrOrderRange, order, MinOrder, MaxOrder)
	}
	return &Vector{
		words: make([]uint64, 1<<(order-6)),
		order: order,
		mask:  1<<order - 1,
	}, nil
}

// MustNew is New for statically known orders; it panics on error and exists
// for tests and package-internal constants.
func MustNew(order uint) *Vector {
	v, err := New(order)
	if err != nil {
		panic(err)
	}
	return v
}

// Order returns the order n of the vector (the vector holds 2^n bits).
func (v *Vector) Order() uint { return v.order }

// Len returns the number of bits in the vector.
func (v *Vector) Len() uint64 { return 1 << v.order }

// Bytes returns the storage footprint of the vector's bit array in bytes.
func (v *Vector) Bytes() uint64 { return v.Len() / 8 }

// Mask reduces an arbitrary 64-bit hash output to a valid bit index. This is
// the "output that exceeds n-bit should be truncated" rule from §3.3.
func (v *Vector) Mask(h uint64) uint64 { return h & v.mask }

// Set sets bit i and reports whether it was newly set (false if the bit
// was already 1). Indexes are reduced modulo the vector size so callers may
// pass raw hash outputs directly.
//
//bf:hotpath
func (v *Vector) Set(i uint64) bool {
	i &= v.mask
	w := &v.words[i>>6]
	b := uint64(1) << (i & 63)
	if *w&b != 0 {
		return false
	}
	*w |= b
	v.count++
	return true
}

// Clear clears bit i (reduced modulo the vector size) and reports whether
// the bit was previously set.
//
//bf:hotpath
func (v *Vector) Clear(i uint64) bool {
	i &= v.mask
	w := &v.words[i>>6]
	b := uint64(1) << (i & 63)
	if *w&b == 0 {
		return false
	}
	*w &^= b
	v.count--
	return true
}

// Test reports whether bit i is set (index reduced modulo the vector size).
//
//bf:hotpath
func (v *Vector) Test(i uint64) bool {
	i &= v.mask
	return v.words[i>>6]&(1<<(i&63)) != 0
}

// SetAll sets every bit named by idxs (each reduced modulo the vector
// size) and returns how many were newly set. It is the multi-index
// mark fast path of the batch data plane: the m hash outputs of one
// packet are gathered into word/bit pairs and applied in a single pass,
// with one running-popcount update for the whole group instead of one
// per bit.
//
//bf:hotpath
func (v *Vector) SetAll(idxs []uint64) int {
	newly := 0
	for _, i := range idxs {
		i &= v.mask
		w := &v.words[i>>6]
		b := uint64(1) << (i & 63)
		old := *w
		*w = old | b
		if old&b == 0 {
			newly++
		}
	}
	v.count += uint64(newly)
	return newly
}

// TestAll reports whether every bit named by idxs (each reduced modulo the
// vector size) is set — the Bloom-filter membership test for one packet's
// m hash outputs in a single pass.
//
//bf:hotpath
func (v *Vector) TestAll(idxs []uint64) bool {
	for _, i := range idxs {
		i &= v.mask
		if v.words[i>>6]&(1<<(i&63)) == 0 {
			return false
		}
	}
	return true
}

// Reset zeroes every bit. This is the b.rotate clean-up; it touches a fixed,
// contiguous region and is therefore O(2^n / 64) word writes.
func (v *Vector) Reset() {
	clear(v.words)
	v.count = 0
}

// PopCount returns the number of set bits. The bitmap filter uses this to
// report utilization U = b / 2^n (§4.1). It is an O(1) read of the running
// count maintained by the mutating operations.
func (v *Vector) PopCount() uint64 {
	return v.count
}

// Utilization returns the fraction of set bits, U in the paper's analysis.
func (v *Vector) Utilization() float64 {
	return float64(v.PopCount()) / float64(v.Len())
}

// Or sets v to the bitwise OR of v and other. It returns an error if the two
// vectors have different orders.
func (v *Vector) Or(other *Vector) error {
	if other.order != v.order {
		return fmt.Errorf("bitvector: or of order %d with order %d", v.order, other.order)
	}
	for i, w := range other.words {
		merged := v.words[i] | w
		v.count += uint64(bits.OnesCount64(merged &^ v.words[i]))
		v.words[i] = merged
	}
	return nil
}

// CopyFrom overwrites v with the contents of other. It returns an error if
// the two vectors have different orders.
func (v *Vector) CopyFrom(other *Vector) error {
	if other.order != v.order {
		return fmt.Errorf("bitvector: copy of order %d into order %d", other.order, v.order)
	}
	copy(v.words, other.words)
	v.count = other.count
	return nil
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	c := &Vector{
		words: make([]uint64, len(v.words)),
		order: v.order,
		mask:  v.mask,
		count: v.count,
	}
	copy(c.words, v.words)
	return c
}

// Equal reports whether v and other have identical size and contents.
func (v *Vector) Equal(other *Vector) bool {
	if v.order != other.order || v.count != other.count {
		return false
	}
	for i, w := range v.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// String summarizes the vector for debugging.
func (v *Vector) String() string {
	return fmt.Sprintf("bitvector{order=%d bits=%d set=%d}", v.order, v.Len(), v.PopCount())
}

// WriteTo serializes the raw bit array (little-endian words) to w. It
// implements io.WriterTo; pair it with ReadFrom on a vector of the same
// order.
func (v *Vector) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, 8*len(v.words))
	for i, word := range v.words {
		binary.LittleEndian.PutUint64(buf[i*8:], word)
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadFrom fills the vector from a stream produced by WriteTo on a vector
// of the same order. It implements io.ReaderFrom.
func (v *Vector) ReadFrom(r io.Reader) (int64, error) {
	buf := make([]byte, 8*len(v.words))
	n, err := io.ReadFull(r, buf)
	if err != nil {
		return int64(n), fmt.Errorf("bitvector: read words: %w", err)
	}
	var c int
	for i := range v.words {
		w := binary.LittleEndian.Uint64(buf[i*8:])
		v.words[i] = w
		c += bits.OnesCount64(w)
	}
	v.count = uint64(c)
	return int64(n), nil
}

// Interface compliance checks.
var (
	_ io.WriterTo   = (*Vector)(nil)
	_ io.ReaderFrom = (*Vector)(nil)
)
