package bitvector

import (
	"bytes"
	"math/bits"
	"testing"

	"bitmapfilter/internal/xrand"
)

// sumPopCount recomputes the ground-truth popcount from the raw words.
func sumPopCount(v *Vector) uint64 {
	var n uint64
	for i := 0; i < v.Words(); i++ {
		n += uint64(bits.OnesCount64(v.Word(uint32(i))))
	}
	return n
}

// TestDuplicateIndexDifferential is the duplicate-index coherence
// differential: the coalesced kernels (SetAll/TestAll/SetAllVectors) must
// agree bit-for-bit and popcount-for-popcount with the scalar reference
// kernels on index groups engineered to stress the merge logic —
// duplicate indexes inside one group, distinct indexes landing in the
// same 64-bit word, and every branch of the m=3 straight-line
// specialization.
func TestDuplicateIndexDifferential(t *testing.T) {
	const order = 10
	// sameWord returns an index in i's word with a (possibly) different bit.
	sameWord := func(i uint64, bit uint64) uint64 { return (i &^ 63) | (bit & 63) }

	i0 := uint64(0x1234567890abcdef)
	i1 := uint64(0x0fedcba987654321)
	i2 := uint64(0xdeadbeefcafef00d)
	groups := [][]uint64{
		{},                                     // empty
		{i0},                                   // singleton
		{i0, i0},                               // pure duplicate
		{i0, sameWord(i0, 7)},                  // same word, different bit
		{i0, i1, i2},                           // m=3: (likely) all-distinct branch
		{i0, i0, i0},                           // m=3: all duplicate
		{i0, i0, i1},                           // m=3: w1==w0
		{i0, i1, i0},                           // m=3: w2==w0
		{i0, i1, sameWord(i1, 9)},              // m=3: w2==w1
		{i0, sameWord(i0, 1), sameWord(i0, 2)}, // m=3: one word, three bits
		{i0, i1, i2, i0, sameWord(i2, 3)},      // general path with dups
	}
	r := xrand.New(21)
	for round := 0; round < 500; round++ {
		g := make([]uint64, 1+r.Intn(9))
		for i := range g {
			switch {
			case i > 0 && r.Bool(0.3):
				g[i] = g[r.Intn(i)] // duplicate
			case i > 0 && r.Bool(0.3):
				g[i] = sameWord(g[r.Intn(i)], r.Uint64()) // same-word sibling
			default:
				g[i] = r.Uint64()
			}
		}
		groups = append(groups, g)
	}

	coal := MustNew(order)
	scal := MustNew(order)
	k := 3
	coalVecs := make([]*Vector, k)
	scalVecs := make([]*Vector, k)
	for i := range coalVecs {
		coalVecs[i] = MustNew(order)
		scalVecs[i] = MustNew(order)
	}

	for gi, g := range groups {
		if got, want := coal.SetAll(g), scal.SetAllScalar(g); got != want {
			t.Fatalf("group %d %v: SetAll newly=%d, SetAllScalar newly=%d", gi, g, got, want)
		}
		if got, want := coal.TestAll(g), scal.TestAllScalar(g); got != want {
			t.Fatalf("group %d %v: TestAll=%v, TestAllScalar=%v", gi, g, got, want)
		}
		SetAllVectors(coalVecs, g)
		for _, v := range scalVecs {
			v.SetAllScalar(g)
		}

		vecs := [][2]*Vector{{coal, scal}}
		for i := range coalVecs {
			vecs = append(vecs, [2]*Vector{coalVecs[i], scalVecs[i]})
		}
		for vi, pair := range vecs {
			c, s := pair[0], pair[1]
			if !c.Equal(s) {
				t.Fatalf("group %d %v: vector %d bits diverged", gi, g, vi)
			}
			if c.PopCount() != s.PopCount() {
				t.Fatalf("group %d %v: vector %d popcount %d vs %d", gi, g, vi, c.PopCount(), s.PopCount())
			}
			if got, want := c.PopCount(), sumPopCount(c); got != want {
				t.Fatalf("group %d %v: vector %d running count %d, true popcount %d", gi, g, vi, got, want)
			}
		}
	}
}

// TestSetAllVectorsMatchesPerVector pins the fused k-vector mark against
// the unfused loop, including vectors whose prior contents differ (so the
// per-vector popcount deltas differ too).
func TestSetAllVectorsMatchesPerVector(t *testing.T) {
	r := xrand.New(33)
	const k = 4
	fused := make([]*Vector, k)
	loose := make([]*Vector, k)
	for i := range fused {
		fused[i] = MustNew(9)
		loose[i] = MustNew(9)
		// Desynchronize starting contents across vectors.
		for j := 0; j < i*17; j++ {
			h := r.Uint64()
			fused[i].Set(h)
			loose[i].Set(h)
		}
	}
	g := make([]uint64, 0, 12)
	for round := 0; round < 2000; round++ {
		g = g[:0]
		for i, n := 0, 1+r.Intn(12); i < n; i++ {
			g = append(g, r.Uint64())
		}
		SetAllVectors(fused, g)
		for _, v := range loose {
			v.SetAll(g)
		}
		for i := range fused {
			if !fused[i].Equal(loose[i]) || fused[i].PopCount() != loose[i].PopCount() {
				t.Fatalf("round %d: vector %d diverged (counts %d vs %d)",
					round, i, fused[i].PopCount(), loose[i].PopCount())
			}
		}
	}
}

// FuzzCountCoherence drives a vector through an arbitrary interleaving of
// every mutator and asserts the running count invariant the whole
// accounting layer rests on: v.count == Σ OnesCount64(words) after every
// operation. The ops byte string is the fuzz vector; each op consumes a
// few bytes of operand.
func FuzzCountCoherence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 0xff, 3, 3, 9})
	f.Add([]byte{2, 2, 2, 7, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const order = 8
		v := MustNew(order)
		other := MustNew(order)
		vecs := []*Vector{v, MustNew(order)}
		r := xrand.New(5)
		next := func(i *int) uint64 {
			if *i >= len(ops) {
				return r.Uint64()
			}
			b := uint64(ops[*i])
			*i++
			return b * 0x9e3779b97f4a7c15
		}
		group := make([]uint64, 0, 8)
		for i := 0; i < len(ops); {
			op := ops[i]
			i++
			group = group[:0]
			for n := 0; n < int(op%5)+1; n++ {
				group = append(group, next(&i))
			}
			switch op % 9 {
			case 0:
				v.Set(next(&i))
			case 1:
				v.Clear(next(&i))
			case 2:
				v.SetAll(group)
			case 3:
				v.SetAllScalar(group)
			case 4:
				SetAllVectors(vecs, group)
			case 5:
				other.Set(next(&i))
				if err := v.Or(other); err != nil {
					t.Fatal(err)
				}
			case 6:
				if err := v.CopyFrom(other); err != nil {
					t.Fatal(err)
				}
			case 7:
				var buf bytes.Buffer
				if _, err := other.WriteTo(&buf); err != nil {
					t.Fatal(err)
				}
				if _, err := v.ReadFrom(&buf); err != nil {
					t.Fatal(err)
				}
			case 8:
				v.Reset()
			}
			for vi, vec := range append([]*Vector{v, other}, vecs...) {
				if got, want := vec.PopCount(), sumPopCount(vec); got != want {
					t.Fatalf("op %d (#%d) vector %d: running count %d, true popcount %d",
						op, i, vi, got, want)
				}
			}
		}
	})
}
