package bitvector

import (
	"testing"

	"bitmapfilter/internal/xrand"
)

// TestSetAllTestAllMatchScalar checks the multi-index fast path against the
// scalar Set/Test loop it replaces, including duplicate indexes within one
// group and the running popcount.
func TestSetAllTestAllMatchScalar(t *testing.T) {
	r := xrand.New(11)
	fast := MustNew(10)
	slow := MustNew(10)

	idxs := make([]uint64, 0, 8)
	for round := 0; round < 2000; round++ {
		idxs = idxs[:0]
		n := 1 + r.Intn(5)
		for i := 0; i < n; i++ {
			h := r.Uint64()
			if i > 0 && r.Bool(0.2) {
				h = idxs[r.Intn(i)] // duplicate inside the group
			}
			idxs = append(idxs, h)
		}

		wantNew := 0
		for _, h := range idxs {
			if slow.Set(h) {
				wantNew++
			}
		}
		if got := fast.SetAll(idxs); got != wantNew {
			t.Fatalf("round %d: SetAll = %d newly set, scalar %d", round, got, wantNew)
		}

		probe := r.Uint64()
		if r.Bool(0.5) {
			probe = idxs[r.Intn(len(idxs))]
		}
		group := []uint64{probe, r.Uint64()}
		wantAll := slow.Test(group[0]) && slow.Test(group[1])
		if got := fast.TestAll(group); got != wantAll {
			t.Fatalf("round %d: TestAll(%v) = %v, scalar %v", round, group, got, wantAll)
		}

		if fast.PopCount() != slow.PopCount() {
			t.Fatalf("round %d: popcount diverged: %d vs %d", round, fast.PopCount(), slow.PopCount())
		}
	}
	if !fast.Equal(slow) {
		t.Fatal("vectors diverged after interleaved SetAll/Set")
	}
}

func TestTestAllEmpty(t *testing.T) {
	v := MustNew(6)
	if !v.TestAll(nil) {
		t.Error("TestAll(nil) = false, want vacuous true")
	}
	if n := v.SetAll(nil); n != 0 {
		t.Errorf("SetAll(nil) = %d", n)
	}
}
