package trafficgen

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"bitmapfilter/internal/delaymeter"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/stats"
	"bitmapfilter/internal/xrand"
)

func TestQuantileDistValidation(t *testing.T) {
	tests := []struct {
		name string
		qs   []float64
		vals []float64
	}{
		{name: "length mismatch", qs: []float64{0, 1}, vals: []float64{1}},
		{name: "too short", qs: []float64{0}, vals: []float64{1}},
		{name: "not starting at 0", qs: []float64{0.1, 1}, vals: []float64{1, 2}},
		{name: "not ending at 1", qs: []float64{0, 0.9}, vals: []float64{1, 2}},
		{name: "non-increasing quantiles", qs: []float64{0, 0.5, 0.5, 1}, vals: []float64{1, 2, 3, 4}},
		{name: "decreasing values", qs: []float64{0, 0.5, 1}, vals: []float64{1, 3, 2}},
		{name: "non-positive value", qs: []float64{0, 1}, vals: []float64{0, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewQuantileDist(tt.qs, tt.vals); !errors.Is(err, ErrAnchors) {
				t.Errorf("error = %v, want ErrAnchors", err)
			}
		})
	}
}

func TestQuantileDistInverseCDFAnchors(t *testing.T) {
	d := MustNewQuantileDist([]float64{0, 0.5, 1}, []float64{1, 10, 100})
	if got := d.InverseCDF(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := d.InverseCDF(0.5); math.Abs(got-10) > 1e-9 {
		t.Errorf("q0.5 = %v", got)
	}
	if got := d.InverseCDF(1); got != 100 {
		t.Errorf("q1 = %v", got)
	}
	// Log-linear midpoint of [1, 10] is sqrt(10).
	if got := d.InverseCDF(0.25); math.Abs(got-math.Sqrt(10)) > 1e-9 {
		t.Errorf("q0.25 = %v, want sqrt(10)", got)
	}
	// Clamps.
	if d.InverseCDF(-1) != 1 || d.InverseCDF(2) != 100 {
		t.Error("clamps broken")
	}
}

func TestQuantileDistCDFInvertsInverse(t *testing.T) {
	d := LifetimeDist()
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		x := d.InverseCDF(q)
		if got := d.CDFAt(x); math.Abs(got-q) > 1e-6 {
			t.Errorf("CDF(InvCDF(%v)) = %v", q, got)
		}
	}
	if d.CDFAt(0.0001) != 0 {
		t.Error("below-min CDF nonzero")
	}
	if d.CDFAt(1e9) != 1 {
		t.Error("above-max CDF not one")
	}
}

func TestLifetimeDistMatchesPaperPercentiles(t *testing.T) {
	// Figure 2-a: 90% < 76 s, 95% < 360 s, <1% > 515 s.
	d := LifetimeDist()
	r := xrand.New(1)
	var s stats.Sample
	for i := 0; i < 200000; i++ {
		s.Add(d.Sample(r))
	}
	if got := s.Quantile(0.90); math.Abs(got-76)/76 > 0.06 {
		t.Errorf("q90 = %v, want ~76", got)
	}
	if got := s.Quantile(0.95); math.Abs(got-360)/360 > 0.06 {
		t.Errorf("q95 = %v, want ~360", got)
	}
	over515 := 1 - s.CDFAt(515)
	if over515 >= 0.01 {
		t.Errorf("P(L > 515s) = %v, want < 0.01", over515)
	}
	if s.Max() > 21600 {
		t.Errorf("max lifetime = %v, exceeds 6h trace", s.Max())
	}
}

func TestReplyDelayDistMatchesPaperPercentiles(t *testing.T) {
	// Figure 2-c: 95% < 0.8 s, 99% < 2.8 s.
	d := ReplyDelayDist()
	r := xrand.New(2)
	var s stats.Sample
	for i := 0; i < 200000; i++ {
		s.Add(d.Sample(r))
	}
	if got := s.Quantile(0.95); math.Abs(got-0.8)/0.8 > 0.05 {
		t.Errorf("q95 = %v, want ~0.8", got)
	}
	if got := s.Quantile(0.99); math.Abs(got-2.8)/2.8 > 0.05 {
		t.Errorf("q99 = %v, want ~2.8", got)
	}
	if s.Max() >= 20 {
		t.Errorf("max delay = %v, must stay below T_e=20s", s.Max())
	}
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{name: "zero duration", mut: func(c *Config) { c.Duration = 0 }},
		{name: "zero rate", mut: func(c *Config) { c.ConnRate = 0 }},
		{name: "no subnets", mut: func(c *Config) { c.Subnets = nil }},
		{name: "no servers", mut: func(c *Config) { c.Servers = 0 }},
		{name: "bad udp fraction", mut: func(c *Config) { c.UDPSessionFraction = 1.5 }},
		{name: "bad noise fraction", mut: func(c *Config) { c.NoiseFraction = -0.1 }},
		{name: "bad timeout fraction", mut: func(c *Config) { c.ServerTimeoutFraction = 2 }},
		{name: "bad postclose fraction", mut: func(c *Config) { c.PostCloseFraction = -1 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mut(&cfg)
			if _, err := NewGenerator(cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("error = %v, want ErrConfig", err)
			}
		})
	}
	if _, err := NewGenerator(base); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestCampusSubnets(t *testing.T) {
	subnets := CampusSubnets()
	if len(subnets) != 6 {
		t.Fatalf("%d subnets, want 6 (six class-C networks)", len(subnets))
	}
	for _, s := range subnets {
		if s.Bits != 24 {
			t.Errorf("subnet %v is not a /24", s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 30 * time.Second
	cfg.ConnRate = 20

	collect := func() []packet.Packet {
		g, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var pkts []packet.Packet
		g.Drain(func(p packet.Packet) { pkts = append(pkts, p) })
		return pkts
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestBatchEmissionMatchesNext proves batch emission is a pure re-chunking
// of the per-packet stream: same packets, same order, same totals.
func TestBatchEmissionMatchesNext(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 30 * time.Second
	cfg.ConnRate = 20

	ref, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []packet.Packet
	ref.Drain(func(p packet.Packet) { want = append(want, p) })

	for _, batchSize := range []int{1, 7, 64, DefaultBatchSize} {
		g, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got []packet.Packet
		batches := 0
		g.DrainBatches(batchSize, func(pkts []packet.Packet) {
			if len(pkts) == 0 || len(pkts) > batchSize {
				t.Fatalf("batch of %d packets (size %d)", len(pkts), batchSize)
			}
			got = append(got, pkts...)
			batches++
		})
		if len(got) != len(want) {
			t.Fatalf("size %d: %d packets, per-packet %d", batchSize, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: packet %d differs: %v vs %v", batchSize, i, got[i], want[i])
			}
		}
		if wantBatches := (len(want) + batchSize - 1) / batchSize; batches != wantBatches {
			t.Errorf("size %d: %d batches, want %d", batchSize, batches, wantBatches)
		}
		if g.Totals() != ref.Totals() {
			t.Errorf("size %d: totals diverged: %+v vs %+v", batchSize, g.Totals(), ref.Totals())
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 10 * time.Second
	cfg.ConnRate = 20
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	g2, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, ok1 := g1.Next()
	p2, ok2 := g2.Next()
	if !ok1 || !ok2 {
		t.Fatal("empty traces")
	}
	if p1 == p2 {
		t.Error("different seeds produced identical first packet")
	}
}

func TestPacketsAreTimeOrdered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 60 * time.Second
	cfg.ConnRate = 30
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := time.Duration(-1)
	count := 0
	g.Drain(func(p packet.Packet) {
		if p.Time < last {
			t.Fatalf("packet %d out of order: %v after %v", count, p.Time, last)
		}
		last = p.Time
		count++
	})
	if count == 0 {
		t.Fatal("no packets")
	}
	if last > cfg.Duration {
		t.Errorf("packet beyond duration: %v", last)
	}
}

func TestTupleSanity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 30 * time.Second
	cfg.ConnRate = 30
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inSubnets := func(a packet.Addr) bool {
		for _, s := range cfg.Subnets {
			if s.Contains(a) {
				return true
			}
		}
		return false
	}
	g.Drain(func(p packet.Packet) {
		switch p.Dir {
		case packet.Outgoing:
			if !inSubnets(p.Tuple.Src) {
				t.Fatalf("outgoing packet from outside client subnets: %v", p)
			}
			if inSubnets(p.Tuple.Dst) {
				t.Fatalf("outgoing packet to client subnet: %v", p)
			}
		case packet.Incoming:
			if !inSubnets(p.Tuple.Dst) {
				t.Fatalf("incoming packet not addressed to client subnets: %v", p)
			}
		}
		if p.Length < 40 || p.Length > 1514 {
			t.Fatalf("implausible packet length %d", p.Length)
		}
		if p.Tuple.Proto != packet.TCP && p.Tuple.Proto != packet.UDP {
			t.Fatalf("unexpected protocol %v", p.Tuple.Proto)
		}
	})
}

var calib struct {
	once sync.Once
	gen  *Generator
	pkts []packet.Packet
	err  error
}

// calibrationTrace generates (once) a trace big enough for distribution
// checks; the result is shared by all calibration tests.
func calibrationTrace(t *testing.T) (*Generator, []packet.Packet) {
	t.Helper()
	calib.once.Do(func() {
		cfg := DefaultConfig()
		cfg.Duration = 20 * time.Minute
		cfg.ConnRate = 40
		calib.gen, calib.err = NewGenerator(cfg)
		if calib.err != nil {
			return
		}
		calib.gen.Drain(func(p packet.Packet) { calib.pkts = append(calib.pkts, p) })
	})
	if calib.err != nil {
		t.Fatal(calib.err)
	}
	return calib.gen, calib.pkts
}

func TestProtocolMixMatchesPaper(t *testing.T) {
	// §3.2: 96.25% TCP, 3.75% UDP by packets. Accept a generous band.
	g, _ := calibrationTrace(t)
	tot := g.Totals()
	udpFrac := float64(tot.UDPPackets) / float64(tot.Packets)
	if udpFrac < 0.02 || udpFrac > 0.06 {
		t.Errorf("UDP packet fraction = %v, want ~0.0375", udpFrac)
	}
}

func TestMeanPacketSizeReasonable(t *testing.T) {
	// §3.2: average packet size 720 bytes.
	g, _ := calibrationTrace(t)
	tot := g.Totals()
	mean := float64(tot.Bytes) / float64(tot.Packets)
	if mean < 450 || mean > 950 {
		t.Errorf("mean packet size = %v, want ~720", mean)
	}
}

func TestTrafficRoughlyBidirectional(t *testing.T) {
	g, _ := calibrationTrace(t)
	tot := g.Totals()
	ratio := float64(tot.Incoming) / float64(tot.Outgoing)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("in/out packet ratio = %v", ratio)
	}
}

func TestMeasuredOutInDelaysMatchFigure2(t *testing.T) {
	_, pkts := calibrationTrace(t)
	meter := delaymeter.MustNew(delaymeter.DefaultExpiry)
	var sample stats.Sample
	for _, p := range pkts {
		if d, ok := meter.Observe(p); ok {
			sample.Add(d.Seconds())
		}
	}
	if sample.N() < 10000 {
		t.Fatalf("only %d matched delays", sample.N())
	}
	// Figure 2-c: 95% < 0.8 s and 99% < 2.8 s, measured on the full
	// stream (so including timeout FINs and stragglers).
	q95 := sample.Quantile(0.95)
	if q95 < 0.5 || q95 > 1.3 {
		t.Errorf("measured q95 = %v, want ~0.8", q95)
	}
	q99 := sample.Quantile(0.99)
	if q99 < 1.8 || q99 > 4.5 {
		t.Errorf("measured q99 = %v, want ~2.8", q99)
	}
	// "Most Internet traffic is bi-directional": nearly all incoming
	// packets match a recorded outgoing tuple.
	matchRate := float64(meter.Matched()) / float64(meter.Matched()+meter.Missed())
	if matchRate < 0.95 {
		t.Errorf("incoming match rate = %v", matchRate)
	}
}

func TestDelayTailHasServerTimeoutMass(t *testing.T) {
	// The (20 s, 240 s] delay band — server-timeout FINs — must exist
	// (it is what separates bitmap from SPI drop rates) but stay small.
	_, pkts := calibrationTrace(t)
	meter := delaymeter.MustNew(delaymeter.DefaultExpiry)
	var total, band int
	for _, p := range pkts {
		if d, ok := meter.Observe(p); ok {
			total++
			if d > 20*time.Second && d <= 240*time.Second {
				band++
			}
		}
	}
	frac := float64(band) / float64(total)
	if frac <= 0 {
		t.Fatal("no server-timeout delay mass")
	}
	if frac > 0.02 {
		t.Errorf("timeout band fraction = %v, want well under 2%%", frac)
	}
}

func TestTimeoutPeaksAt30And60Seconds(t *testing.T) {
	// Figure 2-b: delay histogram peaks interleaved at ~30/60 s
	// multiples.
	cfg := DefaultConfig()
	cfg.Duration = 20 * time.Minute
	cfg.ConnRate = 40
	cfg.ServerTimeoutFraction = 0.10 // exaggerate for signal
	cfg.Seed = 7
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meter := delaymeter.MustNew(delaymeter.DefaultExpiry)
	hist := stats.MustNewHistogram(1, 300) // 1s bins to 300s
	g.Drain(func(p packet.Packet) {
		if d, ok := meter.Observe(p); ok {
			if d > 20*time.Second {
				hist.Add(d.Seconds())
			}
		}
	})
	// Expect clear mass at 30, 60, 90, 120 versus neighbors.
	for _, peak := range []int{30, 60, 90, 120} {
		at := hist.Count(peak)
		off := hist.Count(peak-10) + hist.Count(peak+10)
		if at == 0 {
			t.Errorf("no mass at %ds peak", peak)
			continue
		}
		if float64(at) < 3*float64(off)/2 {
			t.Errorf("peak at %ds not prominent: %d vs neighbors %d", peak, at, off)
		}
	}
}

func TestNoiseFractionTracksConfig(t *testing.T) {
	g, _ := calibrationTrace(t)
	tot := g.Totals()
	frac := float64(tot.NoiseIn) / float64(tot.Incoming)
	want := DefaultConfig().NoiseFraction
	if frac < want*0.5 || frac > want*2 {
		t.Errorf("noise fraction = %v, want ~%v", frac, want)
	}
}

func TestSessionCountsAndHandshakes(t *testing.T) {
	g, pkts := calibrationTrace(t)
	tot := g.Totals()
	if tot.Sessions == 0 {
		t.Fatal("no sessions")
	}
	syn := 0
	for _, p := range pkts {
		if p.Dir == packet.Outgoing && p.Tuple.Proto == packet.TCP &&
			p.Flags == packet.SYN {
			syn++
		}
	}
	// Every TCP session starts with exactly one bare SYN; sessions near
	// the end of the window may be truncated, so allow slack.
	tcpSessions := float64(tot.Sessions) * (1 - DefaultConfig().UDPSessionFraction)
	if float64(syn) < tcpSessions*0.8 || float64(syn) > tcpSessions*1.2 {
		t.Errorf("SYN count %d vs ~%v expected TCP sessions", syn, tcpSessions)
	}
}

func TestGeneratorNextAfterExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 2 * time.Second
	cfg.ConnRate = 5
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	if _, ok := g.Next(); ok {
		t.Error("Next returned a packet after exhaustion")
	}
}

func BenchmarkGenerator(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Duration = time.Hour
	cfg.ConnRate = 100
	g, err := NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.StopTimer()
			g, err = NewGenerator(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}
