package trafficgen

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"bitmapfilter/internal/xrand"
)

// QuantileDist samples a positive continuous distribution specified by
// quantile anchors, interpolating log-linearly between them. This is how
// the generator pins the *published* percentiles of the paper's trace
// (connection lifetime and out-in delay, §3.2 / Figure 2) by construction
// rather than hoping a parametric family lands on them.
type QuantileDist struct {
	qs   []float64 // ascending quantiles in [0, 1]
	vals []float64 // corresponding positive values, ascending
}

// ErrAnchors is returned for malformed anchor sets.
var ErrAnchors = errors.New("trafficgen: invalid quantile anchors")

// NewQuantileDist builds a distribution from (quantile, value) anchors.
// Anchors must start at 0, end at 1, be strictly increasing in quantile,
// non-decreasing in value, and strictly positive in value.
func NewQuantileDist(qs, vals []float64) (*QuantileDist, error) {
	if len(qs) != len(vals) || len(qs) < 2 {
		return nil, fmt.Errorf("%w: %d quantiles, %d values", ErrAnchors, len(qs), len(vals))
	}
	if qs[0] != 0 || qs[len(qs)-1] != 1 {
		return nil, fmt.Errorf("%w: quantiles must span [0,1]", ErrAnchors)
	}
	for i := range qs {
		if vals[i] <= 0 {
			return nil, fmt.Errorf("%w: value %v not positive", ErrAnchors, vals[i])
		}
		if i > 0 {
			if qs[i] <= qs[i-1] {
				return nil, fmt.Errorf("%w: quantiles not increasing at %d", ErrAnchors, i)
			}
			if vals[i] < vals[i-1] {
				return nil, fmt.Errorf("%w: values decreasing at %d", ErrAnchors, i)
			}
		}
	}
	d := &QuantileDist{
		qs:   append([]float64(nil), qs...),
		vals: append([]float64(nil), vals...),
	}
	return d, nil
}

// MustNewQuantileDist is NewQuantileDist for statically known anchors.
func MustNewQuantileDist(qs, vals []float64) *QuantileDist {
	d, err := NewQuantileDist(qs, vals)
	if err != nil {
		panic(err)
	}
	return d
}

// InverseCDF returns the value at quantile q (clamped to [0, 1]).
func (d *QuantileDist) InverseCDF(q float64) float64 {
	if q <= 0 {
		return d.vals[0]
	}
	if q >= 1 {
		return d.vals[len(d.vals)-1]
	}
	// Find the anchor segment containing q.
	i := sort.SearchFloat64s(d.qs, q)
	if i == 0 {
		return d.vals[0]
	}
	q0, q1 := d.qs[i-1], d.qs[i]
	v0, v1 := d.vals[i-1], d.vals[i]
	frac := (q - q0) / (q1 - q0)
	// Log-linear interpolation keeps heavy tails smooth.
	return math.Exp(math.Log(v0) + frac*(math.Log(v1)-math.Log(v0)))
}

// Sample draws one value using r.
func (d *QuantileDist) Sample(r *xrand.Rand) float64 {
	return d.InverseCDF(r.Float64())
}

// CDFAt numerically inverts InverseCDF by bisection, for tests and
// calibration reports.
func (d *QuantileDist) CDFAt(x float64) float64 {
	if x <= d.vals[0] {
		return 0
	}
	if x >= d.vals[len(d.vals)-1] {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if d.InverseCDF(mid) < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Calibrated distributions reproducing the §3.2 trace statistics.

// LifetimeDist matches Figure 2-a: "90% of connections are under 76
// seconds, 95% are under 6 minutes, and less than one percent last for more
// than 515 seconds", with a maximum of six hours (the trace length).
func LifetimeDist() *QuantileDist {
	return MustNewQuantileDist(
		[]float64{0, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1},
		[]float64{0.005, 1, 8, 30, 76, 360, 480, 3600, 21600},
	)
}

// ReplyDelayDist matches the bulk of Figure 2-c: "95% of out-in packet
// delays are shorter than 0.8 seconds" and "99% ... shorter than 2.8
// seconds". The distribution tops out below the filter's T_e = 20 s; the
// >20 s delay mass of Figure 2-b comes from the discrete server-timeout
// events the generator emits separately (see session.go).
func ReplyDelayDist() *QuantileDist {
	return MustNewQuantileDist(
		[]float64{0, 0.50, 0.80, 0.95, 0.99, 1},
		[]float64{0.001, 0.05, 0.25, 0.80, 2.80, 15},
	)
}
