package trafficgen

import (
	"time"

	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// Packet length models (bytes on the wire, Ethernet included). The §3.2
// trace averages 720 bytes per packet; requests are small, data replies
// large, pure ACKs minimal.
const (
	ackLen        = 60
	synLen        = 74
	minRequestLen = 90
	maxRequestLen = 700
	minReplyLen   = 600
	maxReplyLen   = 1514
)

// transactionsCap bounds the number of request/reply rounds of a single
// session so that one multi-hour connection cannot dominate the trace.
const transactionsCap = 2000

// event is one scheduled packet of the trace.
type event struct {
	pkt packet.Packet
	seq uint64 // tie-break for identical timestamps
}

// session captures the parameters of one client connection; buildSession
// materializes its full packet schedule.
type session struct {
	client     packet.Addr
	clientPort uint16
	server     packet.Addr
	serverPort uint16
	proto      packet.Proto
	start      time.Duration
	lifetime   time.Duration
}

// sessionPackets appends the session's packets to dst in (locally) sorted
// order. The caller merges them globally through the event heap.
func (g *Generator) sessionPackets(s session, dst []packet.Packet) []packet.Packet {
	if s.proto == packet.UDP {
		return g.udpPackets(s, dst)
	}
	return g.tcpPackets(s, dst)
}

func (g *Generator) out(t time.Duration, s session, flags packet.Flags, length int) packet.Packet {
	return packet.Packet{
		Time: t,
		Tuple: packet.Tuple{
			Src: s.client, SrcPort: s.clientPort,
			Dst: s.server, DstPort: s.serverPort,
			Proto: s.proto,
		},
		Dir:    packet.Outgoing,
		Flags:  flags,
		Length: length,
	}
}

func (g *Generator) in(t time.Duration, s session, flags packet.Flags, length int) packet.Packet {
	return packet.Packet{
		Time: t,
		Tuple: packet.Tuple{
			Src: s.server, SrcPort: s.serverPort,
			Dst: s.client, DstPort: s.clientPort,
			Proto: s.proto,
		},
		Dir:    packet.Incoming,
		Flags:  flags,
		Length: length,
	}
}

// tcpPackets emits handshake, request/reply transactions, and one of three
// endings: a normal FIN close (possibly followed by a late post-close
// packet), or a server-timeout FIN arriving a multiple of 30/60 seconds
// after the client's last packet (the Figure 2-b peak structure).
func (g *Generator) tcpPackets(s session, dst []packet.Packet) []packet.Packet {
	r := g.rng
	end := s.start + s.lifetime

	// Handshake.
	d := g.replyDelay(r)
	t := s.start
	dst = append(dst,
		g.out(t, s, packet.SYN, synLen),
		g.in(t+d, s, packet.SYN|packet.ACK, synLen),
		g.out(t+d+2*time.Millisecond, s, packet.ACK, ackLen),
	)
	t = t + d + 2*time.Millisecond
	lastOut := t

	// Request/reply transactions until the lifetime is spent. Think time
	// scales with lifetime so long sessions stay sparse instead of
	// ballooning to millions of packets.
	thinkMean := 1500 * time.Millisecond
	if scaled := s.lifetime / 40; scaled > thinkMean {
		thinkMean = scaled
	}
	for n := 0; n < transactionsCap; n++ {
		gap := time.Duration(r.Exp(float64(thinkMean)))
		t += gap
		if t >= end {
			break
		}
		// Request.
		reqLen := r.IntRange(minRequestLen, maxRequestLen)
		dst = append(dst, g.out(t, s, packet.PSH|packet.ACK, reqLen))
		lastOut = t
		// Replies: each delay is an independent draw from the
		// calibrated distribution, measured from the request (which is
		// exactly how the §3.2 out-in delay procedure will see them).
		nReplies := 1 + r.Intn(5)
		var lastReply time.Duration
		for i := 0; i < nReplies; i++ {
			rt := t + g.replyDelay(r)
			if rt > lastReply {
				lastReply = rt
			}
			dst = append(dst, g.in(rt, s, packet.ACK, r.IntRange(minReplyLen, maxReplyLen)))
		}
		// Client acknowledges the data.
		ackT := lastReply + 5*time.Millisecond
		dst = append(dst, g.out(ackT, s, packet.ACK, ackLen))
		lastOut = ackT
		if ackT > t {
			t = ackT
		}
	}

	if r.Bool(g.cfg.ServerTimeoutFraction) {
		// Server-side idle timeout: the server FINs at a multiple of 30
		// or 60 seconds after the client's last packet. These incoming
		// packets carry the large out-in delays of Figure 2-b and are
		// the mass in (T_e, SPI-timeout) that only the bitmap drops.
		unit := 30 * time.Second
		if r.Bool(0.5) {
			unit = 60 * time.Second
		}
		mult := time.Duration(1 + r.Intn(4))
		jitter := time.Duration(r.Intn(400)) * time.Millisecond
		finT := lastOut + unit*mult + jitter
		dst = append(dst,
			g.in(finT, s, packet.FIN|packet.ACK, ackLen),
			g.out(finT+5*time.Millisecond, s, packet.FIN|packet.ACK, ackLen),
		)
		return dst
	}

	// Normal client-initiated close.
	closeT := t
	if closeT < lastOut {
		closeT = lastOut
	}
	closeT += time.Duration(r.Exp(float64(200 * time.Millisecond)))
	d = g.replyDelay(r)
	dst = append(dst,
		g.out(closeT, s, packet.FIN|packet.ACK, ackLen),
		g.in(closeT+d, s, packet.FIN|packet.ACK, ackLen),
		g.out(closeT+d+2*time.Millisecond, s, packet.ACK, ackLen),
	)

	if r.Bool(g.cfg.PostCloseFraction) {
		// A straggler (retransmission or late data) arrives 1–10 s
		// after the close: a close-tracking SPI filter drops it, the
		// bitmap filter admits it (still within T_e of the final ACK).
		lateT := closeT + d + time.Duration(1+r.Intn(9))*time.Second +
			time.Duration(r.Intn(1000))*time.Millisecond
		dst = append(dst, g.in(lateT, s, packet.ACK, ackLen))
	}
	return dst
}

// udpPackets emits a short DNS-like exchange: 1–3 query/response rounds.
func (g *Generator) udpPackets(s session, dst []packet.Packet) []packet.Packet {
	r := g.rng
	t := s.start
	rounds := 1 + r.Intn(3)
	for i := 0; i < rounds; i++ {
		dst = append(dst, g.out(t, s, 0, r.IntRange(70, 120)))
		d := g.replyDelay(r)
		dst = append(dst, g.in(t+d, s, 0, r.IntRange(100, 512)))
		t += d + time.Duration(r.Exp(float64(300*time.Millisecond)))
	}
	return dst
}

// replyDelay draws one out-in delay from the calibrated distribution.
func (g *Generator) replyDelay(r *xrand.Rand) time.Duration {
	return time.Duration(g.delayDist.Sample(r) * float64(time.Second))
}

// newSession draws the parameters of the next session.
func (g *Generator) newSession(start time.Duration) session {
	r := g.rng
	subnet := g.cfg.Subnets[r.Intn(len(g.cfg.Subnets))]
	// Skip network/broadcast addresses within the prefix.
	host := uint64(1 + r.Intn(int(subnet.Size()-2)))
	s := session{
		client: subnet.Nth(host),
		start:  start,
	}
	if r.Bool(g.cfg.UDPSessionFraction) {
		s.proto = packet.UDP
		s.serverPort = g.cfg.UDPPorts[r.Categorical(g.cfg.UDPPortWeights)]
		// UDP sessions are one short exchange; lifetime is implicit.
		s.lifetime = time.Second
	} else {
		s.proto = packet.TCP
		s.serverPort = g.cfg.TCPPorts[r.Categorical(g.cfg.TCPPortWeights)]
		s.lifetime = time.Duration(g.lifetimeDist.Sample(r) * float64(time.Second))
	}
	s.server = g.servers[r.Intn(len(g.servers))]
	s.clientPort = g.ephemeralPort(s.client)
	return s
}

// ephemeralPort hands out client source ports per host, wrapping through
// the ephemeral range so ports are eventually reused (the port-reuse
// behaviour §3.2 observes).
func (g *Generator) ephemeralPort(client packet.Addr) uint16 {
	const (
		ephemeralBase  = 1024
		ephemeralRange = 28232 // 1024..29255, a deliberately small range
	)
	next := g.portCursor[client]
	g.portCursor[client] = next + 1
	return uint16(ephemeralBase + next%ephemeralRange)
}
