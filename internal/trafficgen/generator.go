// Package trafficgen synthesizes the client-network workload the paper's
// evaluation is built on. The real input was a 6-hour packet trace of six
// class-C campus networks (§3.2); that trace is not available, so this
// package generates a statistically calibrated substitute that pins every
// published property of the original:
//
//   - ~96/4 TCP/UDP packet mix;
//   - connection lifetimes with the Figure 2-a percentiles (90% < 76 s,
//     95% < 360 s, <1% > 515 s);
//   - out-in packet delays with the Figure 2-c percentiles (95% < 0.8 s,
//     99% < 2.8 s) plus the Figure 2-b delay peaks at multiples of 30/60 s
//     (server idle timeouts on recycled ports);
//   - ~1.5% of incoming packets that no longer match recent outgoing state
//     (background radiation, server-timeout FINs, post-close stragglers) —
//     the drop mass behind Figure 4.
//
// The generator is a deterministic stream: identical configurations yield
// byte-identical traces.
package trafficgen

import (
	"container/heap"
	"fmt"
	"time"

	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// Generator produces a time-ordered stream of packets as seen by the edge
// router of the client networks. It is not safe for concurrent use.
type Generator struct {
	cfg          Config
	rng          *xrand.Rand
	lifetimeDist *QuantileDist
	delayDist    *QuantileDist
	servers      []packet.Addr
	portCursor   map[packet.Addr]uint64

	events      eventHeap
	nextArrival time.Duration
	seq         uint64
	emitted     Totals
}

// Totals summarizes an emitted trace.
type Totals struct {
	Packets    uint64
	TCPPackets uint64
	UDPPackets uint64
	Outgoing   uint64
	Incoming   uint64
	NoiseIn    uint64 // unsolicited incoming packets (subset of Incoming)
	Bytes      uint64
	Sessions   uint64
}

// NewGenerator validates cfg and returns a ready stream.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	g := &Generator{
		cfg:          cfg,
		rng:          rng,
		lifetimeDist: LifetimeDist(),
		delayDist:    ReplyDelayDist(),
		servers:      serverPool(cfg.Servers, rng),
		portCursor:   make(map[packet.Addr]uint64),
	}
	heap.Init(&g.events)
	g.scheduleArrival(0)
	return g, nil
}

// serverPool draws distinct public server addresses (outside the 10/8
// client space).
func serverPool(n int, r *xrand.Rand) []packet.Addr {
	pool := make([]packet.Addr, 0, n)
	seen := make(map[packet.Addr]bool, n)
	for len(pool) < n {
		a := packet.Addr(r.Uint32())
		// Keep servers out of the client address space and the
		// zero/broadcast corners.
		if byte(a>>24) == 10 || a == 0 || a == ^packet.Addr(0) {
			continue
		}
		if seen[a] {
			continue
		}
		seen[a] = true
		pool = append(pool, a)
	}
	return pool
}

// Next returns the next packet of the trace in time order. ok is false
// once the trace duration is exhausted.
func (g *Generator) Next() (pkt packet.Packet, ok bool) {
	for {
		// Admit new sessions while they precede the earliest queued
		// packet.
		for g.nextArrival >= 0 &&
			(g.events.Len() == 0 || g.nextArrival <= g.events[0].pkt.Time) {
			g.admitSession()
		}
		if g.events.Len() == 0 {
			return packet.Packet{}, false
		}
		ev := heap.Pop(&g.events).(event)
		if ev.pkt.Time > g.cfg.Duration {
			// The trace window is over; drain and stop.
			g.events = g.events[:0]
			return packet.Packet{}, false
		}
		g.account(ev.pkt)
		return ev.pkt, true
	}
}

// Totals returns counters of everything emitted so far.
func (g *Generator) Totals() Totals { return g.emitted }

// Drain runs the generator to completion, invoking fn for every packet.
// It is the common driver for experiments: fn gets packets strictly in
// time order.
func (g *Generator) Drain(fn func(pkt packet.Packet)) {
	for {
		pkt, ok := g.Next()
		if !ok {
			return
		}
		fn(pkt)
	}
}

// NextBatch fills buf[:cap(buf)] with the next packets of the trace in time
// order and returns the filled prefix; an empty result means the trace is
// exhausted. Passing the same buffer back each call makes emission
// allocation-free, which is what lets the batch data plane measure filters
// rather than the generator.
func (g *Generator) NextBatch(buf []packet.Packet) []packet.Packet {
	buf = buf[:cap(buf)]
	n := 0
	for n < len(buf) {
		pkt, ok := g.Next()
		if !ok {
			break
		}
		buf[n] = pkt
		n++
	}
	return buf[:n]
}

// DrainBatches runs the generator to completion in batches of batchSize
// packets (the last one may be shorter), reusing one internal buffer. The
// slice passed to fn is only valid until the next call. Non-positive
// batchSize falls back to DefaultBatchSize.
func (g *Generator) DrainBatches(batchSize int, fn func(pkts []packet.Packet)) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	buf := make([]packet.Packet, batchSize)
	for {
		batch := g.NextBatch(buf)
		if len(batch) == 0 {
			return
		}
		fn(batch)
	}
}

// DefaultBatchSize is the batch granularity drivers use when the caller
// has no reason to choose: large enough to amortize per-batch overheads
// (locks, clock reads, shard grouping), small enough to stay cache-resident.
const DefaultBatchSize = 512

func (g *Generator) account(pkt packet.Packet) {
	g.emitted.Packets++
	g.emitted.Bytes += uint64(pkt.Length)
	if pkt.Tuple.Proto == packet.TCP {
		g.emitted.TCPPackets++
	} else {
		g.emitted.UDPPackets++
	}
	if pkt.Dir == packet.Outgoing {
		g.emitted.Outgoing++
	} else {
		g.emitted.Incoming++
	}
}

func (g *Generator) scheduleArrival(after time.Duration) {
	gap := time.Duration(g.rng.Exp(float64(time.Second) / g.cfg.ConnRate))
	next := after + gap
	if next > g.cfg.Duration {
		g.nextArrival = -1 // no more arrivals
		return
	}
	g.nextArrival = next
}

// admitSession materializes one session's packets into the event heap and
// schedules the following arrival.
func (g *Generator) admitSession() {
	start := g.nextArrival
	s := g.newSession(start)
	g.emitted.Sessions++
	pkts := g.sessionPackets(s, nil)
	for _, p := range pkts {
		g.push(p)
		// Unsolicited background radiation is paced off real incoming
		// traffic so its share of incoming packets tracks
		// cfg.NoiseFraction.
		if p.Dir == packet.Incoming && g.rng.Bool(g.cfg.NoiseFraction) {
			g.pushNoise(p.Time)
		}
	}
	g.scheduleArrival(start)
}

// pushNoise emits one random unsolicited incoming packet near time t.
func (g *Generator) pushNoise(t time.Duration) {
	r := g.rng
	subnet := g.cfg.Subnets[r.Intn(len(g.cfg.Subnets))]
	dst := subnet.Nth(uint64(1 + r.Intn(int(subnet.Size()-2))))
	proto := packet.TCP
	flags := packet.Flags(packet.SYN)
	if r.Bool(0.2) {
		proto = packet.UDP
		flags = 0
	}
	noise := packet.Packet{
		Time: t + time.Duration(r.Intn(1000))*time.Millisecond,
		Tuple: packet.Tuple{
			Src:     packet.Addr(r.Uint32() | 1),
			Dst:     dst,
			SrcPort: uint16(1024 + r.Intn(60000)),
			DstPort: uint16(1 + r.Intn(65535)),
			Proto:   proto,
		},
		Dir:    packet.Incoming,
		Flags:  flags,
		Length: ackLen,
	}
	g.push(noise)
	g.emitted.NoiseIn++
}

func (g *Generator) push(pkt packet.Packet) {
	g.seq++
	heap.Push(&g.events, event{pkt: pkt, seq: g.seq})
}

// eventHeap is a min-heap on (time, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].pkt.Time != h[j].pkt.Time {
		return h[i].pkt.Time < h[j].pkt.Time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(event)
	if !ok {
		panic(fmt.Sprintf("eventHeap: pushed %T", x))
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
