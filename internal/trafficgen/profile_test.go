package trafficgen

import (
	"errors"
	"testing"
	"time"

	"bitmapfilter/internal/packet"
)

func TestProfileNamesRoundTrip(t *testing.T) {
	for _, p := range []Profile{ProfileCampus, ProfileEnterprise, ProfileDSL, ProfileWireless} {
		got, err := ParseProfile(p.String())
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
	if _, err := ParseProfile("nonsense"); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown profile error = %v", err)
	}
	if Profile(99).String() != "profile(99)" {
		t.Error("unknown profile String wrong")
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range []Profile{ProfileCampus, ProfileEnterprise, ProfileDSL, ProfileWireless} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := p.Config()
			if err := cfg.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			cfg.Duration = 20 * time.Second
			cfg.ConnRate = 10
			g, err := NewGenerator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			g.Drain(func(packet.Packet) { count++ })
			if count == 0 {
				t.Error("profile generated no traffic")
			}
		})
	}
}

func TestProfileSubnetCounts(t *testing.T) {
	tests := []struct {
		profile Profile
		want    int
	}{
		{profile: ProfileCampus, want: 6}, // the paper's six class-C networks
		{profile: ProfileEnterprise, want: 2},
		{profile: ProfileDSL, want: 8},
		{profile: ProfileWireless, want: 1},
	}
	for _, tt := range tests {
		if got := len(tt.profile.Config().Subnets); got != tt.want {
			t.Errorf("%v subnets = %d, want %d", tt.profile, got, tt.want)
		}
	}
}

func TestProfilesProduceDistinctPortMixes(t *testing.T) {
	// Count destination-port distribution of TCP SYNs per profile; the
	// dominant ports must match each archetype.
	dominantPort := func(p Profile) uint16 {
		cfg := p.Config()
		cfg.Duration = 60 * time.Second
		cfg.ConnRate = 20
		g, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[uint16]int)
		g.Drain(func(pkt packet.Packet) {
			if pkt.Dir == packet.Outgoing && pkt.Tuple.Proto == packet.TCP &&
				pkt.Flags == packet.SYN {
				counts[pkt.Tuple.DstPort]++
			}
		})
		var best uint16
		bestN := -1
		for port, n := range counts {
			if n > bestN {
				best, bestN = port, n
			}
		}
		return best
	}
	if got := dominantPort(ProfileCampus); got != 80 {
		t.Errorf("campus dominant port = %d, want 80", got)
	}
	if got := dominantPort(ProfileEnterprise); got != 443 {
		t.Errorf("enterprise dominant port = %d, want 443", got)
	}
	if got := dominantPort(ProfileWireless); got != 443 {
		t.Errorf("wireless dominant port = %d, want 443", got)
	}
}

// Profiles must not break the §3.2 calibration the filter experiments rely
// on: delay percentiles stay in the paper's regime for every archetype.
func TestProfilesKeepDelayCalibration(t *testing.T) {
	for _, p := range []Profile{ProfileEnterprise, ProfileDSL, ProfileWireless} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := p.Config()
			cfg.Duration = 4 * time.Minute
			cfg.ConnRate = 15
			g, err := NewGenerator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Match rate of incoming packets stays high: traffic is
			// still overwhelmingly bidirectional.
			var in, out uint64
			g.Drain(func(pkt packet.Packet) {
				if pkt.Dir == packet.Incoming {
					in++
				} else {
					out++
				}
			})
			if in == 0 || out == 0 {
				t.Fatal("one-directional trace")
			}
			ratio := float64(in) / float64(out)
			if ratio < 0.4 || ratio > 2.5 {
				t.Errorf("in/out ratio = %v", ratio)
			}
		})
	}
}
