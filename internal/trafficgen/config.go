package trafficgen

import (
	"errors"
	"fmt"
	"time"

	"bitmapfilter/internal/packet"
)

// ErrConfig is returned by NewGenerator for invalid configurations.
var ErrConfig = errors.New("trafficgen: invalid configuration")

// Config parameterizes the synthetic client-network workload. The zero
// value is not valid; start from DefaultConfig.
type Config struct {
	// Seed drives all randomness; equal seeds give identical traces.
	Seed uint64
	// Duration is the trace length. The paper's trace is six hours;
	// tests and quick experiments use minutes.
	Duration time.Duration
	// ConnRate is the mean TCP+UDP session arrival rate per second.
	// The paper's trace averages ~15 K active connections per 20 s
	// window; with the default lifetime distribution that corresponds
	// to roughly 500 sessions/s, which the bench harness scales down.
	ConnRate float64
	// Subnets are the protected client networks. The paper's router
	// aggregates six class-C (/24) campus subnets.
	Subnets []packet.Prefix
	// Servers is the size of the remote server pool sessions pick from.
	Servers int
	// UDPSessionFraction is the fraction of sessions that are UDP
	// (short DNS-like exchanges). The default is calibrated so that
	// ~3.75% of packets are UDP, matching §3.2.
	UDPSessionFraction float64
	// NoiseFraction is the fraction of *incoming* packets that are
	// unsolicited Internet background radiation (random-source one-off
	// packets). Both SPI and bitmap filters drop these.
	NoiseFraction float64
	// ServerTimeoutFraction is the per-session probability that the
	// remote server closes an idle session with a FIN at a multiple of
	// 30 or 60 seconds after the client's last packet — the port-reuse
	// peak structure of Figure 2-b and the (20 s, 240 s) delay mass that
	// only the bitmap filter drops.
	ServerTimeoutFraction float64
	// PostCloseFraction is the per-TCP-session probability of one late
	// incoming packet 1–10 s after the connection closed — dropped by a
	// close-tracking SPI filter but admitted by the bitmap filter.
	PostCloseFraction float64
	// TCPPorts / TCPPortWeights define the destination-port popularity
	// mix of TCP sessions; UDPPorts / UDPPortWeights likewise for UDP.
	// Defaults model a web-dominated campus network; the Profile
	// presets change them.
	TCPPorts       []uint16
	TCPPortWeights []float64
	UDPPorts       []uint16
	UDPPortWeights []float64
}

// DefaultConfig returns a configuration calibrated to the §3.2 trace
// statistics at a test-friendly scale (rate and duration are meant to be
// overridden by callers).
func DefaultConfig() Config {
	return Config{
		Seed:     1,
		Duration: 10 * time.Minute,
		ConnRate: 50,
		Subnets:  CampusSubnets(),
		Servers:  4096,
		// Calibrated: TCP sessions average ~45 packets, UDP ~4, so a
		// ~30% UDP session share yields ~3.75% UDP packets.
		UDPSessionFraction:    0.30,
		NoiseFraction:         0.011,
		ServerTimeoutFraction: 0.010,
		PostCloseFraction:     0.012,
		TCPPorts:              []uint16{80, 443, 25, 110, 143, 22, 23, 21, 8080, 3128},
		TCPPortWeights:        []float64{45, 30, 5, 4, 3, 3, 2, 2, 4, 2},
		UDPPorts:              []uint16{53, 123, 161, 514},
		UDPPortWeights:        []float64{80, 10, 5, 5},
	}
}

// CampusSubnets returns six /24 client networks, mirroring the trace
// source: "the router aggregates the up-links of six class C client
// networks on a campus".
func CampusSubnets() []packet.Prefix {
	subnets := make([]packet.Prefix, 0, 6)
	for i := byte(0); i < 6; i++ {
		subnets = append(subnets, packet.PrefixFrom(packet.AddrFrom4(10, 10, i, 0), 24))
	}
	return subnets
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("%w: duration %v", ErrConfig, c.Duration)
	}
	if c.ConnRate <= 0 {
		return fmt.Errorf("%w: connection rate %v", ErrConfig, c.ConnRate)
	}
	if len(c.Subnets) == 0 {
		return fmt.Errorf("%w: no client subnets", ErrConfig)
	}
	if c.Servers <= 0 {
		return fmt.Errorf("%w: server pool %d", ErrConfig, c.Servers)
	}
	if len(c.TCPPorts) == 0 || len(c.TCPPorts) != len(c.TCPPortWeights) {
		return fmt.Errorf("%w: TCP port mix (%d ports, %d weights)",
			ErrConfig, len(c.TCPPorts), len(c.TCPPortWeights))
	}
	if len(c.UDPPorts) == 0 || len(c.UDPPorts) != len(c.UDPPortWeights) {
		return fmt.Errorf("%w: UDP port mix (%d ports, %d weights)",
			ErrConfig, len(c.UDPPorts), len(c.UDPPortWeights))
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{name: "UDPSessionFraction", v: c.UDPSessionFraction},
		{name: "NoiseFraction", v: c.NoiseFraction},
		{name: "ServerTimeoutFraction", v: c.ServerTimeoutFraction},
		{name: "PostCloseFraction", v: c.PostCloseFraction},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("%w: %s = %v", ErrConfig, f.name, f.v)
		}
	}
	return nil
}
