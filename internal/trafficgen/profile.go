package trafficgen

import (
	"fmt"

	"bitmapfilter/internal/packet"
)

// Profile selects a client-network archetype. §3 of the paper defines a
// client network as "a business enterprise customer, a group of DSL users,
// a wireless network, or a building on a campus" — each preset tunes the
// workload mix for one of those while keeping the §3.2 lifetime and delay
// calibration (which the paper measured on the campus profile and which
// the filter's correctness arguments rely on).
type Profile int

// Client-network archetypes from §3 of the paper.
const (
	// ProfileCampus is the paper's measured network: six /24 subnets,
	// web-dominated with a long tail of interactive protocols.
	ProfileCampus Profile = iota + 1
	// ProfileEnterprise is a business customer: two subnets, heavier
	// mail/VPN/ssh share, busier hosts.
	ProfileEnterprise
	// ProfileDSL is a pool of residential DSL users: many small
	// subnets, web/streaming-heavy, more UDP (DNS-chatty short
	// sessions).
	ProfileDSL
	// ProfileWireless is a hotspot-style WLAN: one subnet, bursty web
	// traffic, more background noise reaching the clients.
	ProfileWireless
)

// String names the profile.
func (p Profile) String() string {
	switch p {
	case ProfileCampus:
		return "campus"
	case ProfileEnterprise:
		return "enterprise"
	case ProfileDSL:
		return "dsl"
	case ProfileWireless:
		return "wireless"
	default:
		return fmt.Sprintf("profile(%d)", int(p))
	}
}

// ParseProfile resolves a profile name.
func ParseProfile(name string) (Profile, error) {
	switch name {
	case "campus":
		return ProfileCampus, nil
	case "enterprise":
		return ProfileEnterprise, nil
	case "dsl":
		return ProfileDSL, nil
	case "wireless":
		return ProfileWireless, nil
	default:
		return 0, fmt.Errorf("%w: unknown profile %q", ErrConfig, name)
	}
}

// Config returns the preset configuration for the profile. Rate, duration
// and seed keep the DefaultConfig values and are meant to be overridden.
func (p Profile) Config() Config {
	cfg := DefaultConfig()
	switch p {
	case ProfileEnterprise:
		cfg.Subnets = prefixRange(2)
		// Mail, web, ssh and proxy dominate; telnet/ftp nearly gone.
		cfg.TCPPorts = []uint16{443, 80, 25, 993, 465, 22, 3128, 8080, 1194}
		cfg.TCPPortWeights = []float64{35, 20, 12, 8, 6, 8, 5, 4, 2}
		cfg.UDPPorts = []uint16{53, 123, 500, 4500}
		cfg.UDPPortWeights = []float64{70, 10, 10, 10}
		cfg.UDPSessionFraction = 0.25
		cfg.NoiseFraction = 0.008
	case ProfileDSL:
		cfg.Subnets = prefixRange(8)
		// Web and streaming-ish high ports; lots of DNS.
		cfg.TCPPorts = []uint16{80, 443, 8080, 1935, 8443, 110, 25}
		cfg.TCPPortWeights = []float64{40, 35, 8, 6, 5, 3, 3}
		cfg.UDPPorts = []uint16{53, 123, 3478}
		cfg.UDPPortWeights = []float64{80, 5, 15}
		cfg.UDPSessionFraction = 0.40
		cfg.NoiseFraction = 0.015
	case ProfileWireless:
		cfg.Subnets = prefixRange(1)
		cfg.TCPPorts = []uint16{443, 80, 8080, 5223}
		cfg.TCPPortWeights = []float64{50, 35, 8, 7}
		cfg.UDPPorts = []uint16{53, 123, 3478, 443}
		cfg.UDPPortWeights = []float64{60, 5, 15, 20}
		cfg.UDPSessionFraction = 0.35
		cfg.NoiseFraction = 0.02
	default:
		// ProfileCampus: DefaultConfig already is the campus network.
	}
	return cfg
}

// prefixRange returns n /24 subnets under 10.10/16.
func prefixRange(n int) []packet.Prefix {
	subnets := make([]packet.Prefix, 0, n)
	for i := 0; i < n; i++ {
		subnets = append(subnets, packet.PrefixFrom(
			packet.AddrFrom4(10, 10, byte(i), 0), 24))
	}
	return subnets
}
