package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// Fig2/Fig4/Fig5 share the QuickScale trace; cache results across tests.
var (
	fig2Once sync.Once
	fig2Res  Fig2Result
	fig2Err  error

	fig4Once sync.Once
	fig4Res  Fig4Result
	fig4Err  error

	fig5Once sync.Once
	fig5Res  Fig5Result
	fig5Err  error
)

func getFig2(t *testing.T) Fig2Result {
	t.Helper()
	fig2Once.Do(func() { fig2Res, fig2Err = RunFig2(DefaultScale()) })
	if fig2Err != nil {
		t.Fatal(fig2Err)
	}
	return fig2Res
}

func getFig4(t *testing.T) Fig4Result {
	t.Helper()
	fig4Once.Do(func() {
		cfg := DefaultFig4Config()
		fig4Res, fig4Err = RunFig4(cfg)
	})
	if fig4Err != nil {
		t.Fatal(fig4Err)
	}
	return fig4Res
}

func getFig5(t *testing.T) Fig5Result {
	t.Helper()
	fig5Once.Do(func() {
		cfg := DefaultFig5Config()
		cfg.Scale = QuickScale()
		fig5Res, fig5Err = RunFig5(cfg)
	})
	if fig5Err != nil {
		t.Fatal(fig5Err)
	}
	return fig5Res
}

func TestFig2MatchesPaperShape(t *testing.T) {
	r := getFig2(t)
	if r.Connections < 1000 {
		t.Fatalf("only %d connections measured", r.Connections)
	}
	// Figure 2-a percentiles.
	if r.LifetimeQ90 < 55 || r.LifetimeQ90 > 100 {
		t.Errorf("lifetime q90 = %v, paper 76", r.LifetimeQ90)
	}
	if r.LifetimeQ95 < 250 || r.LifetimeQ95 > 480 {
		t.Errorf("lifetime q95 = %v, paper 360", r.LifetimeQ95)
	}
	if r.LifetimeOver515s > 0.02 {
		t.Errorf("P(lifetime>515) = %v, paper <1%%", r.LifetimeOver515s)
	}
	// Figure 2-c percentiles.
	if r.DelayQ95 < 0.4 || r.DelayQ95 > 1.4 {
		t.Errorf("delay q95 = %v, paper 0.8", r.DelayQ95)
	}
	if r.DelayQ99 < 1.5 || r.DelayQ99 > 4.5 {
		t.Errorf("delay q99 = %v, paper 2.8", r.DelayQ99)
	}
	// §3.2 aggregates.
	if r.TCPFraction < 0.92 || r.TCPFraction > 0.99 {
		t.Errorf("TCP fraction = %v, paper 0.9625", r.TCPFraction)
	}
	if r.AvgPktBytes < 400 || r.AvgPktBytes > 1000 {
		t.Errorf("avg packet size = %v, paper 720", r.AvgPktBytes)
	}
	// Figure 2-b: at least one delay peak beyond 20s at a ~30s multiple.
	found := false
	for _, p := range r.DelayPeaks {
		for _, m := range []int{30, 60, 90, 120, 150, 180, 240} {
			if p >= m-2 && p <= m+2 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no 30/60s-multiple delay peaks found: %v", r.DelayPeaks)
	}
	if !strings.Contains(r.Format(), "Figure 2") {
		t.Error("Format missing header")
	}
}

func TestFig4MatchesPaperShape(t *testing.T) {
	r := getFig4(t)
	// Paper: SPI 1.56%, bitmap 1.51%. Shape requirements: both in the
	// ~1-2.5% band, SPI ≥ bitmap (close tracking), both close together.
	if r.BitmapDropRate < 0.005 || r.BitmapDropRate > 0.035 {
		t.Errorf("bitmap drop rate = %v, paper 0.0151", r.BitmapDropRate)
	}
	if r.SPIDropRate < 0.005 || r.SPIDropRate > 0.035 {
		t.Errorf("SPI drop rate = %v, paper 0.0156", r.SPIDropRate)
	}
	if r.SPIDropRate <= r.BitmapDropRate {
		t.Errorf("SPI (%v) should drop slightly more than bitmap (%v)",
			r.SPIDropRate, r.BitmapDropRate)
	}
	if diff := math.Abs(r.SPIDropRate - r.BitmapDropRate); diff > 0.005 {
		t.Errorf("drop rates differ by %v, paper by 0.0005", diff)
	}
	// The per-interval scatter follows the identity line.
	if r.Slope < 0.6 || r.Slope > 1.4 {
		t.Errorf("scatter slope = %v, paper 1.0", r.Slope)
	}
	if r.Correlation < 0.7 {
		t.Errorf("scatter correlation = %v", r.Correlation)
	}
	if r.Intervals < 10 {
		t.Errorf("only %d intervals", r.Intervals)
	}
	if !strings.Contains(r.Format(), "Figure 4") {
		t.Error("Format missing header")
	}
}

func TestFig5MatchesPaperShape(t *testing.T) {
	r := getFig5(t)
	if r.AttackPackets < 100000 {
		t.Fatalf("only %d attack packets", r.AttackPackets)
	}
	// Paper: 99.983% filtered. At our scale utilization is lower, so the
	// rate should be at least 99.9%.
	if r.FilterRate < 0.999 {
		t.Errorf("attack filtering rate = %v, paper 0.99983", r.FilterRate)
	}
	// Benign traffic keeps flowing at roughly the Figure 4 drop rate.
	if r.NormalInDropped > 0.035 {
		t.Errorf("benign drop rate during attack = %v", r.NormalInDropped)
	}
	// Figure 5-a shape: after the attack starts, passed ≈ normal per
	// interval (penetrated attack traffic is negligible next to benign).
	startIdx := int(r.AttackStart.Seconds() / 10)
	checked := 0
	for i := startIdx + 1; i < r.Normal.Len()-1; i++ {
		n, p := r.Normal.At(i), r.Passed.At(i)
		if n < 100 {
			continue
		}
		checked++
		if p > n*1.10 {
			t.Errorf("interval %d: passed %v far above normal %v", i, p, n)
		}
		if p < n*0.90 {
			t.Errorf("interval %d: passed %v far below normal %v", i, p, n)
		}
	}
	if checked == 0 {
		t.Error("no attack intervals checked")
	}
	// The attack series must dwarf the normal series (20×).
	if idx := startIdx + 2; idx < r.Attack.Len() {
		if r.Attack.At(idx) < 5*r.Normal.At(idx) {
			t.Errorf("attack rate %v not >> normal %v", r.Attack.At(idx), r.Normal.At(idx))
		}
	}
	if !strings.Contains(r.Format(), "Figure 5") {
		t.Error("Format missing header")
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	// Reduced scale: 200K connections still exposes the memory ratio.
	const conns = 200000
	r, err := RunTable1(conns, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	byName := map[string]Table1Row{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	hash := byName["hash+link-list (Linux)"]
	avl := byName["AVL-tree"]
	bitmap := byName["bitmap filter"]

	// SPI tables scale with flows: 30 B/flow.
	wantSPI := uint64(conns * 30)
	if hash.MeasuredBytes < wantSPI || hash.MeasuredBytes > wantSPI*2 {
		t.Errorf("hashlist bytes = %d, want ≥ %d", hash.MeasuredBytes, wantSPI)
	}
	if avl.MeasuredBytes != wantSPI {
		t.Errorf("avl bytes = %d, want %d", avl.MeasuredBytes, wantSPI)
	}
	// Bitmap is fixed at 8 MiB regardless of flows.
	if bitmap.MeasuredBytes != 8*1024*1024 {
		t.Errorf("bitmap bytes = %d, want 8 MiB", bitmap.MeasuredBytes)
	}
	// Shape at paper scale (2.56 M) would be 76.8 MB vs 8 MB; verify the
	// ratio direction already holds here (6 MB vs 8 MB is close, so just
	// require bitmap is constant and SPI grows linearly).
	if bitmap.PaperBytes != 8*1024*1024 || hash.PaperBytes != 76_800_000 {
		t.Error("paper reference bytes wrong")
	}
	if r.Format() == "" {
		t.Error("empty Format")
	}
	if _, err := RunTable1(0, 1); err == nil {
		t.Error("RunTable1(0) accepted")
	}
}

func TestCapacityMatchesPaper(t *testing.T) {
	r, err := RunCapacity()
	if err != nil {
		t.Fatal(err)
	}
	wants := []float64{167e3, 125e3, 83e3}
	for i, row := range r.Rows {
		if math.Abs(row.MaxConnections-wants[i])/wants[i] > 0.05 {
			t.Errorf("p=%v: %v, paper ~%v", row.P, row.MaxConnections, wants[i])
		}
	}
	if r.OptimalM != 3 {
		t.Errorf("optimal m = %d, paper 3", r.OptimalM)
	}
	if r.MemoryBytes != 512*1024 {
		t.Errorf("memory = %d, paper 512K", r.MemoryBytes)
	}
	if !strings.Contains(r.Format(), "Eq. 5") {
		t.Error("Format missing header")
	}
}

func TestInsiderMatchesModel(t *testing.T) {
	cfg := DefaultInsiderConfig()
	cfg.Order = 16 // smaller vector so the sweep is fast and utilization visible
	cfg.Rates = []float64{100, 1000, 5000}
	r, err := RunInsider(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	prev := 0.0
	for _, row := range r.Rows {
		// Measured utilization must track the collision-aware model
		// within 20%.
		if row.ExactU > 0.001 {
			rel := math.Abs(row.MeasuredU-row.ExactU) / row.ExactU
			if rel > 0.20 {
				t.Errorf("rate %v: measured U %v vs exact %v (rel %v)",
					row.RatePerSec, row.MeasuredU, row.ExactU, rel)
			}
		}
		// Utilization grows with the attack rate (§5.2).
		if row.MeasuredU <= prev {
			t.Errorf("utilization not increasing: %v after %v", row.MeasuredU, prev)
		}
		prev = row.MeasuredU
		// The linear estimate upper-bounds the measurement.
		if row.MeasuredU > row.LinearU*1.05 {
			t.Errorf("measured %v above linear bound %v", row.MeasuredU, row.LinearU)
		}
	}
	if !strings.Contains(r.Format(), "insider") {
		t.Error("Format missing header")
	}
}

func TestAPDPolicyBlocksScanPollution(t *testing.T) {
	cfg := DefaultAPDConfig()
	r, err := RunAPD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Probes != 256 {
		t.Fatalf("probes = %d", r.Probes)
	}
	// Plain marking lets every victim SYN+ACK mark the bitmap and every
	// attacker follow-up through.
	if r.PlainMarks < r.Probes {
		t.Errorf("plain marks = %d, want >= %d", r.PlainMarks, r.Probes)
	}
	if r.PlainFollowupAdmitted < r.Probes*9/10 {
		t.Errorf("plain follow-ups admitted = %d / %d", r.PlainFollowupAdmitted, r.Probes)
	}
	// APD's marking policy keeps signal packets out of the bitmap.
	if r.APDMarks != 0 {
		t.Errorf("APD marks = %d, want 0", r.APDMarks)
	}
	if r.APDFollowupAdmitted != 0 {
		t.Errorf("APD follow-ups admitted = %d, want 0", r.APDFollowupAdmitted)
	}
	// The per-shard policy clones must preserve both properties on the
	// sharded data plane.
	if r.ShardedAPDMarks != 0 {
		t.Errorf("sharded APD marks = %d, want 0", r.ShardedAPDMarks)
	}
	if r.ShardedFollowupAdmitted != 0 {
		t.Errorf("sharded APD follow-ups admitted = %d, want 0", r.ShardedFollowupAdmitted)
	}
	// Ratio policy: no drops when balanced, full drops when flooded.
	if r.RatioDropEarly != 0 {
		t.Errorf("balanced drop probability = %v", r.RatioDropEarly)
	}
	if r.RatioDropLate < 0.99 {
		t.Errorf("flooded drop probability = %v", r.RatioDropLate)
	}
	if !strings.Contains(r.Format(), "APD") {
		t.Error("Format missing header")
	}
}

func TestAPDPolicyBlocksFINScanPollution(t *testing.T) {
	// Same §5.3 property for the FIN-scan variant: victims answer with
	// RST (a signal packet); APD must not let those RSTs mark the
	// bitmap.
	cfg := DefaultAPDConfig()
	cfg.FINScan = true
	r, err := RunAPD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.PlainMarks < r.Probes {
		t.Errorf("plain marks = %d (RST replies should mark without APD)", r.PlainMarks)
	}
	if r.APDMarks != 0 {
		t.Errorf("APD marks from FIN-scan RSTs = %d, want 0", r.APDMarks)
	}
	if r.APDFollowupAdmitted != 0 {
		t.Errorf("APD follow-ups admitted = %d", r.APDFollowupAdmitted)
	}
}

func TestWormContainment(t *testing.T) {
	cfg := DefaultWormConfig()
	cfg.Duration = 4 * time.Minute
	r, err := RunWorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both networks see comparable probe arrivals (same epidemic).
	if r.Unprotected.ProbesArrived == 0 {
		t.Fatal("no probes arrived")
	}
	// The unprotected network delivers everything and gets infected.
	if r.Unprotected.ProbesDelivered != r.Unprotected.ProbesArrived {
		t.Errorf("unprotected delivered %d of %d probes",
			r.Unprotected.ProbesDelivered, r.Unprotected.ProbesArrived)
	}
	if r.Unprotected.InsideInfected == 0 {
		t.Error("unprotected network stayed clean; epidemic too weak for the test")
	}
	// The protected network blocks the probes and stays clean.
	if r.Protected.InsideInfected != 0 {
		t.Errorf("protected network infected: %d hosts", r.Protected.InsideInfected)
	}
	if r.Protected.ProbesDelivered > r.Protected.ProbesArrived/100 {
		t.Errorf("protected network delivered %d of %d probes",
			r.Protected.ProbesDelivered, r.Protected.ProbesArrived)
	}
	// Infected insiders generate outbound scans only in the unprotected
	// case.
	if r.Unprotected.OutboundScans == 0 {
		t.Error("no outbound scans from infected insiders")
	}
	if r.Protected.OutboundScans != 0 {
		t.Errorf("protected network emitted %d outbound scans", r.Protected.OutboundScans)
	}
	if !strings.Contains(r.Format(), "containment") {
		t.Error("Format missing header")
	}
}
