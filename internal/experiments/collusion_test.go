package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestCollusionLagSweep(t *testing.T) {
	cfg := DefaultCollusionConfig()
	cfg.Scale = Scale{Duration: 2 * time.Minute, ConnRate: 20, Seed: 1}
	cfg.Lags = []time.Duration{
		time.Second, 10 * time.Second, 25 * time.Second, 60 * time.Second,
	}
	res, err := RunCollusion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Spoofed < 100 {
			t.Fatalf("lag %v: only %d spoofed packets", row.Lag, row.Spoofed)
		}
	}

	// Fresh knowledge (1s lag, well under (k−1)·Δt = 15s) mostly works:
	// this is why the paper says identifying connections CAN admit
	// packets...
	if res.Rows[0].SuccessRate < 0.8 {
		t.Errorf("1s lag success = %v, want high", res.Rows[0].SuccessRate)
	}
	// ...but success decays with lag...
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].SuccessRate > res.Rows[i-1].SuccessRate+0.02 {
			t.Errorf("success rate not decaying: lag %v %v -> lag %v %v",
				res.Rows[i-1].Lag, res.Rows[i-1].SuccessRate,
				res.Rows[i].Lag, res.Rows[i].SuccessRate)
		}
	}
	// ...and knowledge older than T_e only helps if the flow itself
	// stayed active (refreshing the mark). At 60s lag only long-lived
	// flows survive: success must be far below the fresh case.
	last := res.Rows[len(res.Rows)-1]
	if last.SuccessRate > res.Rows[0].SuccessRate*0.7 {
		t.Errorf("stale-knowledge success %v not well below fresh %v",
			last.SuccessRate, res.Rows[0].SuccessRate)
	}
	if !strings.Contains(res.Format(), "collusion") {
		t.Error("Format missing header")
	}
}

// Shortening T_e (the paper's countermeasure: "short connections will be
// deleted quickly from a bitmap filter with a short expiry timer")
// suppresses stale-knowledge attacks further.
func TestCollusionShorterTeHelps(t *testing.T) {
	base := DefaultCollusionConfig()
	base.Scale = Scale{Duration: 2 * time.Minute, ConnRate: 20, Seed: 1}
	base.Lags = []time.Duration{8 * time.Second}

	long := base // T_e = 20s
	short := base
	short.RotateEvery = time.Second // T_e = 4s ("3 or 5 seconds", §5.2)

	longRes, err := RunCollusion(long)
	if err != nil {
		t.Fatal(err)
	}
	shortRes, err := RunCollusion(short)
	if err != nil {
		t.Fatal(err)
	}
	if shortRes.Rows[0].SuccessRate >= longRes.Rows[0].SuccessRate {
		t.Errorf("short T_e success %v >= long T_e success %v",
			shortRes.Rows[0].SuccessRate, longRes.Rows[0].SuccessRate)
	}
}
