package experiments

import (
	"fmt"
	"testing"
	"time"
)

// The headline conclusions must not depend on the lucky seed: re-run the
// Figure 4 and Figure 5 pipelines under several seeds and require the same
// orderings every time.
func TestHeadlineResultsStableAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{2, 7, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			scale := Scale{Duration: 2 * time.Minute, ConnRate: 20, Seed: seed}

			fig4cfg := DefaultFig4Config()
			fig4cfg.Scale = scale
			f4, err := RunFig4(fig4cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Figure 4 shape: both ~1-3%, SPI ≥ bitmap.
			if f4.BitmapDropRate < 0.004 || f4.BitmapDropRate > 0.04 {
				t.Errorf("bitmap drop rate = %v", f4.BitmapDropRate)
			}
			if f4.SPIDropRate < f4.BitmapDropRate {
				t.Errorf("SPI %v < bitmap %v", f4.SPIDropRate, f4.BitmapDropRate)
			}

			fig5cfg := DefaultFig5Config()
			fig5cfg.Scale = scale
			f5, err := RunFig5(fig5cfg)
			if err != nil {
				t.Fatal(err)
			}
			if f5.FilterRate < 0.999 {
				t.Errorf("filter rate = %v", f5.FilterRate)
			}
			if f5.AttackPackets < 50000 {
				t.Errorf("attack packets = %d", f5.AttackPackets)
			}
		})
	}
}
