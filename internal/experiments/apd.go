package experiments

import (
	"fmt"
	"time"

	"bitmapfilter/internal/attack"
	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// APDConfig parameterizes the §5.3 adaptive-packet-dropping experiment: a
// SYN scan sweeps the protected subnet while a modest benign load runs,
// and we compare (a) how much the scan inflates the bitmap under the
// plain marking policy versus the APD signal-packet policy, and (b) how
// the ratio-indicator APD modulates drops with attack intensity.
type APDConfig struct {
	Seed uint64
	// FINScan selects a FIN-scan instead of a SYN-scan: probes carry
	// FIN, and victims answer closed ports with RST (also a signal
	// packet under the APD marking policy).
	FINScan bool
	// ScanRate is probes per second of the scan.
	ScanRate float64
	// Subnet is the swept network.
	Subnet packet.Prefix
	// RatioLow/RatioHigh are the ratio-policy thresholds l < h.
	RatioLow, RatioHigh float64
	// Window is the indicator window.
	Window time.Duration
}

// DefaultAPDConfig returns a small sweep against one /24.
func DefaultAPDConfig() APDConfig {
	return APDConfig{
		Seed:      1,
		ScanRate:  2000,
		Subnet:    packet.PrefixFrom(packet.AddrFrom4(10, 10, 0, 0), 24),
		RatioLow:  1,
		RatioHigh: 3,
		Window:    5 * time.Second,
	}
}

// APDResult compares marking policies under a SYN scan.
type APDResult struct {
	// PlainMarks / APDMarks count bitmap marks caused by the victims'
	// SYN+ACK responses under each policy ("marking the bitmap filter
	// carefully can avoid a rapid increase in the number of false
	// negatives").
	PlainMarks uint64
	APDMarks   uint64
	// PlainFollowupAdmitted / APDFollowupAdmitted count attacker
	// follow-up packets admitted because of those marks.
	PlainFollowupAdmitted uint64
	APDFollowupAdmitted   uint64
	// ShardedAPDMarks / ShardedFollowupAdmitted repeat the APD run on a
	// 4-shard filter: per-shard policy clones must preserve the §5.3
	// marking and dropping behavior on the sharded data plane.
	ShardedAPDMarks         uint64
	ShardedFollowupAdmitted uint64
	// RatioDropEarly / RatioDropLate are the ratio-APD drop
	// probabilities before and during the flood.
	RatioDropEarly float64
	RatioDropLate  float64
	Probes         uint64
}

// RunAPD executes the comparison. The victims are modeled as live hosts:
// every SYN probe that reaches a host elicits an outgoing SYN+ACK (open
// port) — exactly the reflection a scanner exploits to pollute the filter.
func RunAPD(cfg APDConfig) (APDResult, error) {
	// statser is the filter surface the scan loop needs; both the single
	// filter and the sharded composite satisfy it.
	type statser interface {
		filtering.PacketFilter
		Stats() core.Stats
	}
	baseOpts := func(apd core.DropPolicy) []core.Option {
		opts := []core.Option{
			core.WithOrder(16), core.WithVectors(4), core.WithHashes(3),
			core.WithRotateEvery(5 * time.Second), core.WithSeed(cfg.Seed),
		}
		if apd != nil {
			opts = append(opts, core.WithAPD(apd))
		}
		return opts
	}
	run := func(mk func() (statser, error)) (statser, uint64, uint64, error) {
		f, err := mk()
		if err != nil {
			return nil, 0, 0, err
		}
		scan, err := attack.NewPortScan(attack.PortScanConfig{
			Seed:    cfg.Seed,
			Scanner: packet.AddrFrom4(203, 0, 113, 66),
			Subnet:  cfg.Subnet,
			Ports:   []uint16{80},
			Rate:    cfg.ScanRate,
			FIN:     cfg.FINScan,
		})
		if err != nil {
			return nil, 0, 0, err
		}
		var probes, admittedFollowups uint64
		for {
			probe, ok := scan.Next()
			if !ok {
				break
			}
			probes++
			f.Process(probe)
			// The victim answers: SYN probes to an open port elicit
			// SYN+ACK; FIN probes elicit RST. Both are outgoing
			// signal packets under the §5.3 classification.
			replyFlags := packet.SYN | packet.ACK
			if cfg.FINScan {
				replyFlags = packet.RST
			}
			reply := packet.Packet{
				Time:   probe.Time + time.Millisecond,
				Tuple:  probe.Tuple.Reverse(),
				Dir:    packet.Outgoing,
				Flags:  replyFlags,
				Length: 60,
			}
			f.Process(reply)
			// The attacker follows up on the same tuple; under the
			// plain marking policy, the victim's SYN+ACK has opened
			// the door.
			followup := probe
			followup.Time = probe.Time + 5*time.Millisecond
			followup.Flags = packet.ACK
			if f.Process(followup) == filtering.Pass {
				admittedFollowups++
			}
		}
		return f, probes, admittedFollowups, nil
	}

	plain, probes, plainAdmitted, err := run(func() (statser, error) {
		return core.New(baseOpts(nil)...)
	})
	if err != nil {
		return APDResult{}, fmt.Errorf("apd: %w", err)
	}
	// p=1 APD isolates the marking policy: unmatched packets always
	// drop, so any admitted follow-up went through a mark.
	ratioForMarks, err := core.NewRatioPolicy(0.0001, 0.0002, cfg.Window)
	if err != nil {
		return APDResult{}, fmt.Errorf("apd: %w", err)
	}
	apdF, _, apdAdmitted, err := run(func() (statser, error) {
		return core.New(baseOpts(ratioForMarks)...)
	})
	if err != nil {
		return APDResult{}, fmt.Errorf("apd: %w", err)
	}
	// Same APD policy on the sharded data plane: NewSharded clones it per
	// shard, and the aggregate behavior must match the single filter's.
	shardedRatio, err := core.NewRatioPolicy(0.0001, 0.0002, cfg.Window)
	if err != nil {
		return APDResult{}, fmt.Errorf("apd: %w", err)
	}
	shardedF, _, shardedAdmitted, err := run(func() (statser, error) {
		return core.NewSharded(4, baseOpts(shardedRatio)...)
	})
	if err != nil {
		return APDResult{}, fmt.Errorf("apd: %w", err)
	}

	res := APDResult{
		PlainMarks:              plain.Stats().Marks,
		APDMarks:                apdF.Stats().Marks,
		PlainFollowupAdmitted:   plainAdmitted,
		APDFollowupAdmitted:     apdAdmitted,
		ShardedAPDMarks:         shardedF.Stats().Marks,
		ShardedFollowupAdmitted: shardedAdmitted,
		Probes:                  probes,
	}

	// Ratio-policy dynamics: balanced traffic first, then an incoming
	// flood.
	ratio, err := core.NewRatioPolicy(cfg.RatioLow, cfg.RatioHigh, cfg.Window)
	if err != nil {
		return APDResult{}, fmt.Errorf("apd: %w", err)
	}
	now := time.Duration(0)
	for i := 0; i < 100; i++ {
		now += 10 * time.Millisecond
		ratio.Observe(packet.Packet{Time: now, Dir: packet.Outgoing})
		ratio.Observe(packet.Packet{Time: now, Dir: packet.Incoming})
	}
	res.RatioDropEarly = ratio.DropProbability(now)
	for i := 0; i < 1000; i++ {
		now += time.Millisecond
		ratio.Observe(packet.Packet{Time: now, Dir: packet.Incoming})
	}
	res.RatioDropLate = ratio.DropProbability(now)
	return res, nil
}

// Format renders the comparison.
func (r APDResult) Format() string {
	t := newTable(34, 14, 14)
	t.row("§5.3 APD under SYN scan", "plain", "APD policy")
	t.line()
	t.row("bitmap marks from scan", fmt.Sprintf("%d", r.PlainMarks), fmt.Sprintf("%d", r.APDMarks))
	t.row("attacker follow-ups admitted", fmt.Sprintf("%d", r.PlainFollowupAdmitted), fmt.Sprintf("%d", r.APDFollowupAdmitted))
	t.row("4-shard APD marks / follow-ups", "", fmt.Sprintf("%d / %d", r.ShardedAPDMarks, r.ShardedFollowupAdmitted))
	t.row("probes", fmt.Sprintf("%d", r.Probes), "")
	t.line()
	t.row("ratio-APD p(drop) balanced", pct(r.RatioDropEarly), "")
	t.row("ratio-APD p(drop) flooded", pct(r.RatioDropLate), "")
	return t.String()
}
