package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var ablation struct {
	once sync.Once
	res  AblationResult
	err  error
}

func getAblations(t *testing.T) AblationResult {
	t.Helper()
	ablation.once.Do(func() {
		cfg := DefaultAblationConfig()
		cfg.Scale = Scale{Duration: 2 * time.Minute, ConnRate: 20, Seed: 1}
		ablation.res, ablation.err = RunAblations(cfg)
	})
	if ablation.err != nil {
		t.Fatal(ablation.err)
	}
	return ablation.res
}

func TestAblationHashCountMatchesModel(t *testing.T) {
	res := getAblations(t)
	if len(res.HashCount) != 5 {
		t.Fatalf("%d rows", len(res.HashCount))
	}
	for _, row := range res.HashCount {
		// Measured penetration tracks the exact Bloom form wherever it
		// is statistically resolvable. (Equation 2 is its
		// low-utilization approximation and visibly overshoots at
		// m=6, where c·m/2^n ≈ 0.73 — kept in the table as the paper's
		// model.)
		if row.Exact > 1e-4 {
			ratio := row.Measured / row.Exact
			if ratio < 0.4 || ratio > 2.5 {
				t.Errorf("m=%d: measured %.3g vs exact %.3g", row.M, row.Measured, row.Exact)
			}
		}
		// Eq. 2 upper-bounds the exact form.
		if row.Model+1e-12 < row.Exact {
			t.Errorf("m=%d: Eq.2 %.3g below exact %.3g", row.M, row.Model, row.Exact)
		}
	}
	// Penetration decreases with m in the low-utilization regime.
	for i := 1; i < len(res.HashCount); i++ {
		if res.HashCount[i].Measured > res.HashCount[i-1].Measured+1e-4 {
			t.Errorf("penetration not decreasing: m=%d %.3g -> m=%d %.3g",
				res.HashCount[i-1].M, res.HashCount[i-1].Measured,
				res.HashCount[i].M, res.HashCount[i].Measured)
		}
	}
	// Utilization grows with m (more bits marked per connection).
	for i := 1; i < len(res.HashCount); i++ {
		if res.HashCount[i].Utilization <= res.HashCount[i-1].Utilization {
			t.Errorf("utilization not increasing with m")
		}
	}
}

func TestAblationRotationSplit(t *testing.T) {
	res := getAblations(t)
	if len(res.Rotation) != 3 {
		t.Fatalf("%d rows", len(res.Rotation))
	}
	for _, row := range res.Rotation {
		// All splits share T_e = 20 s.
		if time.Duration(row.K)*row.Dt != 20*time.Second {
			t.Errorf("k=%d Δt=%v: T_e != 20s", row.K, row.Dt)
		}
		// Same trace, same T_e: drop rates stay in the Figure 4 band.
		if row.DropRate < 0.004 || row.DropRate > 0.04 {
			t.Errorf("k=%d: drop rate %v out of band", row.K, row.DropRate)
		}
	}
	// Memory grows linearly with k.
	if res.Rotation[0].MemoryBytes*2 != res.Rotation[1].MemoryBytes {
		t.Errorf("memory not linear in k: %d vs %d",
			res.Rotation[0].MemoryBytes, res.Rotation[1].MemoryBytes)
	}
	// At fixed T_e = k·Δt, a larger k raises the guaranteed minimum mark
	// lifetime (k−1)·Δt toward T_e, so the filter becomes slightly MORE
	// permissive: the drop rate must not increase with k.
	if res.Rotation[2].DropRate > res.Rotation[0].DropRate+1e-9 {
		t.Errorf("k=10 drop rate %v above k=2 %v; granularity effect inverted",
			res.Rotation[2].DropRate, res.Rotation[0].DropRate)
	}
}

func TestAblationTuplePolicy(t *testing.T) {
	res := getAblations(t)
	var partial, full PolicyRow
	for _, row := range res.TuplePolicy {
		if strings.Contains(row.Name, "partial") {
			partial = row
		} else {
			full = row
		}
	}
	if partial.AltPortAdmit != 1 {
		t.Errorf("partial tuple alt-port admit = %v, want 1", partial.AltPortAdmit)
	}
	// Full tuple admits almost nothing (only hash collisions).
	if full.AltPortAdmit > 0.01 {
		t.Errorf("full tuple alt-port admit = %v, want ~0", full.AltPortAdmit)
	}
}

func TestAblationMarkPolicy(t *testing.T) {
	res := getAblations(t)
	var all, current PolicyRow
	for _, row := range res.MarkPolicy {
		if strings.Contains(row.Name, "mark-all") {
			all = row
		} else {
			current = row
		}
	}
	// The paper's policy keeps the benign drop rate in the Figure 4
	// band; the single-vector simplification breaks flows at every
	// rotation and multiplies it.
	if all.BenignDropRate > 0.04 {
		t.Errorf("mark-all drop rate = %v", all.BenignDropRate)
	}
	if current.BenignDropRate < all.BenignDropRate*3 {
		t.Errorf("mark-current drop rate %v not far above mark-all %v",
			current.BenignDropRate, all.BenignDropRate)
	}
}

func TestAblationFormat(t *testing.T) {
	res := getAblations(t)
	out := res.Format()
	for _, want := range []string{"hash count", "tuple policy", "mark policy", "T_e=20s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q", want)
		}
	}
}
