package experiments

import (
	"fmt"
	"time"

	"bitmapfilter/internal/attack"
	"bitmapfilter/internal/core"
	"bitmapfilter/internal/model"
	"bitmapfilter/internal/packet"
)

// InsiderConfig parameterizes the §5.2 insider-attack experiment: an
// infected inside host floods random outgoing tuples and we measure how
// much the bitmap utilization (and hence the random-penetration
// probability) rises, against the paper's ΔU ≈ m·r·T_e/2^n estimate.
type InsiderConfig struct {
	Seed  uint64
	Rates []float64 // outgoing flood rates to sweep, packets/second
	// Order..RotateEvery configure the bitmap (paper defaults).
	Order       uint
	Vectors     int
	Hashes      int
	RotateEvery time.Duration
}

// DefaultInsiderConfig sweeps four decades of flood rate against the
// paper's filter.
func DefaultInsiderConfig() InsiderConfig {
	return InsiderConfig{
		Seed:        1,
		Rates:       []float64{100, 1000, 5000, 10000, 50000},
		Order:       20,
		Vectors:     4,
		Hashes:      3,
		RotateEvery: 5 * time.Second,
	}
}

// InsiderRow is one swept rate.
type InsiderRow struct {
	RatePerSec float64
	// MeasuredU is the simulated steady-state utilization.
	MeasuredU float64
	// LinearU is the paper's m·r·T_e/2^n estimate.
	LinearU float64
	// ExactU is the collision-aware 1−e^{−m·r·T_e/2^n} form.
	ExactU float64
	// Penetration is the resulting random-packet penetration
	// probability U^m.
	Penetration float64
}

// InsiderResult is the sweep outcome.
type InsiderResult struct {
	Rows []InsiderRow
	Te   time.Duration
}

// RunInsider executes the sweep. For each rate, the flood runs for 3·T_e
// of virtual time so the bitmap reaches steady state, then the current
// vector's utilization is read just before a rotation (the maximum-history
// point).
func RunInsider(cfg InsiderConfig) (InsiderResult, error) {
	res := InsiderResult{
		Te: time.Duration(cfg.Vectors) * cfg.RotateEvery,
	}
	for _, rate := range cfg.Rates {
		f, err := core.New(
			core.WithOrder(cfg.Order),
			core.WithVectors(cfg.Vectors),
			core.WithHashes(cfg.Hashes),
			core.WithRotateEvery(cfg.RotateEvery),
			core.WithSeed(cfg.Seed),
		)
		if err != nil {
			return InsiderResult{}, fmt.Errorf("insider: %w", err)
		}
		duration := 3 * res.Te
		flood, err := attack.NewInsiderFlood(attack.InsiderFloodConfig{
			Seed:     cfg.Seed,
			Host:     packet.AddrFrom4(10, 10, 0, 66),
			Rate:     rate,
			Duration: duration,
		})
		if err != nil {
			return InsiderResult{}, fmt.Errorf("insider: %w", err)
		}
		for {
			pkt, ok := flood.Next()
			if !ok {
				break
			}
			f.Process(pkt)
		}
		u := f.Utilization()
		res.Rows = append(res.Rows, InsiderRow{
			RatePerSec:  rate,
			MeasuredU:   u,
			LinearU:     model.InsiderUtilization(cfg.Hashes, rate, res.Te, cfg.Order),
			ExactU:      model.InsiderUtilizationExact(cfg.Hashes, rate, res.Te, cfg.Order),
			Penetration: model.PenetrationFromUtilization(u, cfg.Hashes),
		})
	}
	return res, nil
}

// Format renders the sweep.
func (r InsiderResult) Format() string {
	t := newTable(14, 12, 12, 12, 14)
	t.row("rate (pps)", "measured U", "m·r·Te/2^n", "exact U", "penetration")
	t.line()
	for _, row := range r.Rows {
		t.row(
			fmt.Sprintf("%.0f", row.RatePerSec),
			fmt.Sprintf("%.4f", row.MeasuredU),
			fmt.Sprintf("%.4f", row.LinearU),
			fmt.Sprintf("%.4f", row.ExactU),
			fmt.Sprintf("%.2e", row.Penetration),
		)
	}
	t.line()
	t.row(fmt.Sprintf("§5.2 insider attack, T_e=%v", r.Te))
	return t.String()
}
