// Package experiments contains the runnable reproductions of every table
// and figure in the paper's evaluation (the E1–E13 index in DESIGN.md).
// Each experiment is a pure function from a configuration to a result
// struct with a Format method, so the cmd/ tools print them and
// bench_test.go measures them without duplicating logic.
//
// Scale note: the paper's trace is 6 hours at ~24.6 K pps (≈ 532 M
// packets). The default configurations here run the same pipeline at
// laptop scale (minutes, tens of pps of sessions); Scale lets callers
// approach paper scale when they have the time budget.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/trafficgen"
)

// Scale selects how much work an experiment does and which workload
// archetype drives it.
type Scale struct {
	// Duration of the synthetic trace.
	Duration time.Duration
	// ConnRate is the session arrival rate per second.
	ConnRate float64
	// Seed drives all randomness.
	Seed uint64
	// Profile selects the client-network archetype; the zero value is
	// the paper's campus network.
	Profile trafficgen.Profile
}

// DefaultScale is a laptop-friendly configuration: a 10-minute trace with
// 40 sessions/s (≈ 1.5 M packets), enough for every distributional
// statistic to stabilize.
func DefaultScale() Scale {
	return Scale{
		Duration: 10 * time.Minute,
		ConnRate: 40,
		Seed:     1,
	}
}

// QuickScale is used by unit tests and smoke runs.
func QuickScale() Scale {
	return Scale{
		Duration: 3 * time.Minute,
		ConnRate: 25,
		Seed:     1,
	}
}

// TraceConfig converts a Scale into the calibrated generator
// configuration.
func (s Scale) TraceConfig() trafficgen.Config {
	profile := s.Profile
	if profile == 0 {
		profile = trafficgen.ProfileCampus
	}
	cfg := profile.Config()
	cfg.Duration = s.Duration
	cfg.ConnRate = s.ConnRate
	cfg.Seed = s.Seed
	return cfg
}

// drainThrough runs a generator to completion through a filter's batch
// data plane with one reused verdict buffer, for experiments that only
// need the filter's cumulative counters afterwards. Verdict-for-verdict
// identical to a per-packet Drain loop.
func drainThrough(gen *trafficgen.Generator, f filtering.BatchFilter) {
	var verdicts []filtering.Verdict
	gen.DrainBatches(trafficgen.DefaultBatchSize, func(pkts []packet.Packet) {
		verdicts = f.ProcessBatchInto(pkts, verdicts)
	})
}

// table is a tiny fixed-width text table builder shared by the Format
// methods.
type table struct {
	b     strings.Builder
	width []int
}

func newTable(widths ...int) *table {
	return &table{width: widths}
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		w := 12
		if i < len(t.width) {
			w = t.width[i]
		}
		if i == 0 {
			fmt.Fprintf(&t.b, "%-*s", w, c)
		} else {
			fmt.Fprintf(&t.b, " %*s", w, c)
		}
	}
	t.b.WriteByte('\n')
}

func (t *table) line() {
	total := 0
	for _, w := range t.width {
		total += w + 1
	}
	t.b.WriteString(strings.Repeat("-", total))
	t.b.WriteByte('\n')
}

func (t *table) String() string { return t.b.String() }

func pct(x float64) string {
	return fmt.Sprintf("%.3f%%", x*100)
}
