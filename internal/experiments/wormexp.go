package experiments

import (
	"fmt"
	"time"

	"bitmapfilter/internal/attack"
	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/netsim"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/stats"
)

// WormConfig parameterizes the worm-containment experiment (E13): the same
// epidemic hits a protected and an unprotected client network and we count
// inside infections and attack packets delivered.
type WormConfig struct {
	Seed uint64
	// VulnerableHosts is the number of vulnerable hosts per client
	// network.
	VulnerableHosts int
	// Epidemic parameters (see attack.WormConfig).
	ScanRate           float64
	ExternalVulnerable int
	ExternalInfected0  int
	AddressSpace       float64
	Duration           time.Duration
}

// DefaultWormConfig is a compressed epidemic that saturates within
// simulated minutes.
func DefaultWormConfig() WormConfig {
	return WormConfig{
		Seed:               1,
		VulnerableHosts:    20,
		ScanRate:           40,
		ExternalVulnerable: 20000,
		ExternalInfected0:  10,
		AddressSpace:       1 << 24,
		Duration:           8 * time.Minute,
	}
}

// WormOutcome is the result for one network.
type WormOutcome struct {
	Protected        bool
	ProbesArrived    uint64
	ProbesDelivered  uint64
	InsideInfected   int
	OutboundScans    uint64 // scans leaving the network from insiders
	InfectedSeries   *stats.TimeSeries
	ExternalInfected float64
}

// WormResult compares protected and unprotected networks under the same
// epidemic.
type WormResult struct {
	Unprotected WormOutcome
	Protected   WormOutcome
}

// RunWorm executes the comparison. Each run replays an identical epidemic
// (same seed); only the filter differs.
func RunWorm(cfg WormConfig) (WormResult, error) {
	runOne := func(protected bool) (WormOutcome, error) {
		sim := netsim.NewSimulator()
		subnets := []packet.Prefix{
			packet.PrefixFrom(packet.AddrFrom4(10, 10, 0, 0), 24),
		}
		var filter filtering.PacketFilter
		if protected {
			f, err := core.New(
				core.WithOrder(18), core.WithVectors(4), core.WithHashes(3),
				core.WithRotateEvery(5*time.Second), core.WithSeed(cfg.Seed),
			)
			if err != nil {
				return WormOutcome{}, err
			}
			filter = f
		}
		net, err := netsim.NewNetwork(sim, subnets, filter)
		if err != nil {
			return WormOutcome{}, err
		}

		vulnerable := make([]packet.Addr, 0, cfg.VulnerableHosts)
		for i := 0; i < cfg.VulnerableHosts; i++ {
			addr := subnets[0].Nth(uint64(10 + i))
			if _, err := net.AddHost(fmt.Sprintf("v%d", i), addr); err != nil {
				return WormOutcome{}, err
			}
			vulnerable = append(vulnerable, addr)
		}

		worm, err := attack.NewWorm(attack.WormConfig{
			Seed:               cfg.Seed,
			ScanRate:           cfg.ScanRate,
			ExternalVulnerable: cfg.ExternalVulnerable,
			ExternalInfected0:  cfg.ExternalInfected0,
			VulnerablePort:     445,
			Subnets:            subnets,
			InsideVulnerable:   vulnerable,
			Duration:           cfg.Duration,
			AddressSpace:       cfg.AddressSpace,
			Step:               time.Second,
		})
		if err != nil {
			return WormOutcome{}, err
		}

		out := WormOutcome{
			Protected: protected,
			InfectedSeries: stats.MustNewTimeSeries(
				10, int(cfg.Duration.Seconds()/10)+1),
		}
		for {
			pkt, ok := worm.Next()
			if !ok {
				break
			}
			sim.Run(pkt.Time)
			if pkt.Dir == packet.Incoming {
				out.ProbesArrived++
				if v := net.InjectIncoming(pkt); v == filtering.Pass {
					out.ProbesDelivered++
					worm.Deliver(pkt)
				}
			} else {
				// An infected insider's outbound scan crosses the
				// edge (marking the bitmap like any outgoing
				// packet).
				out.OutboundScans++
				if filter != nil {
					filter.Process(pkt)
				}
			}
			// Record the running inside-infected level: the series
			// accumulates, so add only the delta above what the
			// bucket already holds.
			idx := int(pkt.Time.Seconds() / 10)
			if idx < out.InfectedSeries.Len() {
				cur := out.InfectedSeries.At(idx)
				if lvl := float64(worm.InsideInfected()); lvl > cur {
					out.InfectedSeries.Add(pkt.Time.Seconds(), lvl-cur)
				}
			}
		}
		sim.RunAll()
		out.InsideInfected = worm.InsideInfected()
		out.ExternalInfected = worm.ExternalInfected()
		return out, nil
	}

	unprotected, err := runOne(false)
	if err != nil {
		return WormResult{}, fmt.Errorf("worm: %w", err)
	}
	protected, err := runOne(true)
	if err != nil {
		return WormResult{}, fmt.Errorf("worm: %w", err)
	}
	return WormResult{Unprotected: unprotected, Protected: protected}, nil
}

// Format renders the comparison.
func (r WormResult) Format() string {
	t := newTable(30, 14, 14)
	t.row("worm containment (E13)", "unprotected", "bitmap filter")
	t.line()
	t.row("probes arriving at edge",
		fmt.Sprintf("%d", r.Unprotected.ProbesArrived),
		fmt.Sprintf("%d", r.Protected.ProbesArrived))
	t.row("probes delivered inside",
		fmt.Sprintf("%d", r.Unprotected.ProbesDelivered),
		fmt.Sprintf("%d", r.Protected.ProbesDelivered))
	t.row("inside hosts infected",
		fmt.Sprintf("%d", r.Unprotected.InsideInfected),
		fmt.Sprintf("%d", r.Protected.InsideInfected))
	t.row("outbound worm scans",
		fmt.Sprintf("%d", r.Unprotected.OutboundScans),
		fmt.Sprintf("%d", r.Protected.OutboundScans))
	t.row("external infected (end)",
		fmt.Sprintf("%.0f", r.Unprotected.ExternalInfected),
		fmt.Sprintf("%.0f", r.Protected.ExternalInfected))
	return t.String()
}
