package experiments

import (
	"fmt"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/netsim"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// BandwidthConfig parameterizes the end-to-end bandwidth-attack experiment
// (§1 + §5.3): a client network behind a bottleneck access link is flooded
// while benign flows run, under three edge configurations — no filter, the
// plain bitmap filter, and an APD(bandwidth-utilization) bitmap filter.
//
// The experiment separates three traffic classes the configurations treat
// differently:
//
//   - benign replies (matched marks): everyone should deliver these;
//   - benign-but-unmatched packets (server pushes on expired marks):
//     the plain bitmap drops them always, APD admits them while the link
//     is idle (the whole point of §5.3's "adaptive" dropping);
//   - flood packets: the unprotected link collapses under them, both
//     filters shed them before the bottleneck.
type BandwidthConfig struct {
	Seed uint64
	// LinkBps is the bottleneck capacity in bits/second.
	LinkBps float64
	// Phase is the length of each of the two phases (calm, then flood).
	Phase time.Duration
	// FloodBps is the offered flood rate during phase 2, in bits/second.
	FloodBps float64
}

// DefaultBandwidthConfig floods a 2 Mbit/s access link at 5× capacity.
func DefaultBandwidthConfig() BandwidthConfig {
	return BandwidthConfig{
		Seed:     1,
		LinkBps:  2e6,
		Phase:    30 * time.Second,
		FloodBps: 1e7,
	}
}

// BandwidthOutcome is the result for one edge configuration.
type BandwidthOutcome struct {
	Config string
	// BenignDelivered counts matched benign replies that reached the
	// client.
	BenignDelivered uint64
	BenignSent      uint64
	// UnmatchedDelivered counts benign-but-unmatched deliveries (server
	// pushes) — only APD can admit these.
	UnmatchedDelivered uint64
	UnmatchedSent      uint64
	// FloodDelivered counts attack packets that reached a host.
	FloodDelivered uint64
	FloodSent      uint64
	// TailDropped counts packets lost to bottleneck congestion.
	TailDropped uint64
}

// BandwidthResult compares the three configurations.
type BandwidthResult struct {
	Unfiltered BandwidthOutcome
	Plain      BandwidthOutcome
	APD        BandwidthOutcome
}

// RunBandwidth executes the three runs with identical traffic.
func RunBandwidth(cfg BandwidthConfig) (BandwidthResult, error) {
	type mode struct {
		name string
		mk   func() (filtering.PacketFilter, error)
	}
	modes := []mode{
		{name: "unfiltered", mk: func() (filtering.PacketFilter, error) { return nil, nil }},
		{name: "bitmap", mk: func() (filtering.PacketFilter, error) {
			return core.New(
				core.WithOrder(16), core.WithVectors(4), core.WithHashes(3),
				core.WithRotateEvery(5*time.Second), core.WithSeed(cfg.Seed))
		}},
		{name: "bitmap+apd", mk: func() (filtering.PacketFilter, error) {
			policy, err := core.NewBandwidthPolicy(cfg.LinkBps, 2*time.Second)
			if err != nil {
				return nil, err
			}
			return core.New(
				core.WithOrder(16), core.WithVectors(4), core.WithHashes(3),
				core.WithRotateEvery(5*time.Second), core.WithSeed(cfg.Seed),
				core.WithAPD(policy))
		}},
	}

	var outs []BandwidthOutcome
	for _, m := range modes {
		filter, err := m.mk()
		if err != nil {
			return BandwidthResult{}, fmt.Errorf("bandwidth: %w", err)
		}
		out, err := runBandwidthMode(cfg, m.name, filter)
		if err != nil {
			return BandwidthResult{}, fmt.Errorf("bandwidth: %w", err)
		}
		outs = append(outs, out)
	}
	return BandwidthResult{Unfiltered: outs[0], Plain: outs[1], APD: outs[2]}, nil
}

func runBandwidthMode(cfg BandwidthConfig, name string, filter filtering.PacketFilter) (BandwidthOutcome, error) {
	sim := netsim.NewSimulator()
	subnet := packet.PrefixFrom(packet.AddrFrom4(10, 10, 0, 0), 24)
	net, err := netsim.NewNetwork(sim, []packet.Prefix{subnet}, filter)
	if err != nil {
		return BandwidthOutcome{}, err
	}
	if err := net.SetInboundLink(cfg.LinkBps, 50*time.Millisecond); err != nil {
		return BandwidthOutcome{}, err
	}

	client, err := net.AddHost("client", subnet.Nth(5))
	if err != nil {
		return BandwidthOutcome{}, err
	}
	webServer, err := net.AddInternetHost("web", packet.AddrFrom4(198, 51, 100, 7))
	if err != nil {
		return BandwidthOutcome{}, err
	}
	pushServer := packet.AddrFrom4(198, 51, 100, 99) // never contacted

	out := BandwidthOutcome{Config: name}
	const (
		benignPort = 443
		pushPort   = 30000
	)
	client.OnPacket = func(_ *netsim.Simulator, _ *netsim.Host, pkt packet.Packet) {
		switch {
		case pkt.Tuple.Src == pushServer:
			out.UnmatchedDelivered++
		case pkt.Tuple.SrcPort == benignPort:
			out.BenignDelivered++
		default:
			out.FloodDelivered++
		}
	}
	webServer.OnPacket = func(_ *netsim.Simulator, self *netsim.Host, pkt packet.Packet) {
		self.Send(pkt.Tuple.Src, benignPort, pkt.Tuple.SrcPort, packet.TCP, packet.ACK, 1200)
	}

	r := xrand.New(cfg.Seed)
	total := 2 * cfg.Phase

	// Benign requests every 200 ms for the whole run.
	for at := time.Duration(0); at < total; at += 200 * time.Millisecond {
		at := at
		port := uint16(40000 + (at/(200*time.Millisecond))%1000)
		out.BenignSent++
		if err := sim.Schedule(at, func() {
			client.Send(webServer.Addr(), port, benignPort, packet.TCP, packet.ACK, 120)
		}); err != nil {
			return BandwidthOutcome{}, err
		}
	}
	// Server pushes (benign but unmatched) every second for the whole
	// run.
	for at := 500 * time.Millisecond; at < total; at += time.Second {
		at := at
		out.UnmatchedSent++
		if err := sim.Schedule(at, func() {
			net.InjectIncoming(packet.Packet{
				Tuple: packet.Tuple{
					Src: pushServer, Dst: client.Addr(),
					SrcPort: 80, DstPort: pushPort, Proto: packet.TCP,
				},
				Flags: packet.PSH | packet.ACK, Length: 800,
			})
		}); err != nil {
			return BandwidthOutcome{}, err
		}
	}
	// Flood during phase 2.
	const floodPkt = 1400
	floodInterval := time.Duration(float64(floodPkt*8) / cfg.FloodBps * float64(time.Second))
	for at := cfg.Phase; at < total; at += floodInterval {
		at := at
		out.FloodSent++
		if err := sim.Schedule(at, func() {
			net.InjectIncoming(packet.Packet{
				Tuple: packet.Tuple{
					Src:     packet.Addr(r.Uint32() | 1),
					Dst:     subnet.Nth(uint64(r.Intn(int(subnet.Size())))),
					SrcPort: uint16(1 + r.Intn(65000)),
					DstPort: uint16(1 + r.Intn(65000)),
					Proto:   packet.UDP,
				},
				Length: floodPkt,
			})
		}); err != nil {
			return BandwidthOutcome{}, err
		}
	}

	sim.RunAll()
	out.TailDropped = net.LinkStats().TailDropped
	return out, nil
}

// Format renders the comparison.
func (r BandwidthResult) Format() string {
	t := newTable(26, 13, 13, 13)
	t.row("bandwidth attack (E10b)", "unfiltered", "bitmap", "bitmap+apd")
	t.line()
	row := func(label string, f func(BandwidthOutcome) string) {
		t.row(label, f(r.Unfiltered), f(r.Plain), f(r.APD))
	}
	row("benign delivered", func(o BandwidthOutcome) string {
		return fmt.Sprintf("%d/%d", o.BenignDelivered, o.BenignSent)
	})
	row("server pushes delivered", func(o BandwidthOutcome) string {
		return fmt.Sprintf("%d/%d", o.UnmatchedDelivered, o.UnmatchedSent)
	})
	row("flood delivered", func(o BandwidthOutcome) string {
		return fmt.Sprintf("%d/%d", o.FloodDelivered, o.FloodSent)
	})
	row("bottleneck tail drops", func(o BandwidthOutcome) string {
		return fmt.Sprintf("%d", o.TailDropped)
	})
	return t.String()
}
