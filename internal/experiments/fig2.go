package experiments

import (
	"fmt"
	"time"

	"bitmapfilter/internal/delaymeter"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/stats"
	"bitmapfilter/internal/trafficgen"
)

// Fig2Result reproduces Figure 2 of the paper: the traffic characteristics
// of the client-network trace.
type Fig2Result struct {
	// Connection lifetime statistics (Figure 2-a). Lifetimes are
	// measured exactly as §3.2 describes: "from the appearance of the
	// first TCP-SYN packet to the appearance of a TCP-FIN or TCP-RST
	// packet".
	Connections      uint64
	LifetimeQ50      float64 // seconds
	LifetimeQ90      float64
	LifetimeQ95      float64
	LifetimeOver515s float64 // fraction
	LifetimeHist     *stats.Histogram

	// Out-in packet delay statistics (Figures 2-b and 2-c), measured
	// with the §3.2 tracker at T_e = 600 s.
	DelaysMeasured uint64
	DelayQ50       float64 // seconds
	DelayQ95       float64
	DelayQ99       float64
	DelayHist      *stats.Histogram // 1-second bins for peak structure
	DelayPeaks     []int            // peak positions (seconds) beyond 20 s

	// Aggregate trace statistics (the §3.2 prose numbers).
	Packets     uint64
	TCPFraction float64
	AvgPktBytes float64
	AvgPktRate  float64 // packets per second
}

// LifetimeTracker measures TCP connection lifetimes from a packet stream
// per the §3.2 definition: "from the appearance of the first TCP-SYN
// packet to the appearance of a TCP-FIN or TCP-RST packet". It is exported
// so cmd/bfreplay can compute Figure 2 statistics over arbitrary captures.
type LifetimeTracker struct {
	open   map[packet.Tuple]time.Duration // outgoing tuple -> first SYN time
	sample *stats.Sample
	hist   *stats.Histogram
	count  uint64
}

// NewLifetimeTracker returns an empty tracker.
func NewLifetimeTracker() *LifetimeTracker {
	return &LifetimeTracker{
		open:   make(map[packet.Tuple]time.Duration, 1<<12),
		sample: &stats.Sample{},
		hist:   stats.MustNewHistogram(5, 240), // 5 s bins to 1200 s
	}
}

// Count returns the number of completed connections measured.
func (l *LifetimeTracker) Count() uint64 { return l.count }

// Quantile returns the q-quantile of measured lifetimes in seconds.
func (l *LifetimeTracker) Quantile(q float64) float64 { return l.sample.Quantile(q) }

// FractionOver returns the fraction of lifetimes exceeding sec seconds.
func (l *LifetimeTracker) FractionOver(sec float64) float64 {
	return 1 - l.sample.CDFAt(sec)
}

// Observe feeds one packet to the tracker.
func (l *LifetimeTracker) Observe(pkt packet.Packet) {
	if pkt.Tuple.Proto != packet.TCP {
		return
	}
	// Canonicalize to the outgoing orientation.
	key := pkt.Tuple
	if pkt.Dir == packet.Incoming {
		key = key.Reverse()
	}
	switch {
	case pkt.Flags.Has(packet.SYN) && !pkt.Flags.Has(packet.ACK) && pkt.Dir == packet.Outgoing:
		if _, exists := l.open[key]; !exists {
			l.open[key] = pkt.Time
		}
	case pkt.Flags&(packet.FIN|packet.RST) != 0:
		start, exists := l.open[key]
		if !exists {
			return
		}
		delete(l.open, key)
		life := (pkt.Time - start).Seconds()
		l.sample.Add(life)
		l.hist.Add(life)
		l.count++
	}
}

// RunFig2 generates the calibrated trace and measures the Figure 2
// statistics from the packet stream (not from the generator's internals,
// so the measurement procedure itself is exercised).
//
// Lifetime percentiles are right-censored by the trace window (a session
// longer than the remaining trace never emits its FIN), so the trace must
// be long relative to the 360 s lifetime q95 — exactly why the paper used
// a 6-hour capture. RunFig2 therefore stretches short scales to at least
// an hour, trading session rate to keep the packet volume similar.
func RunFig2(scale Scale) (Fig2Result, error) {
	const minDuration = time.Hour
	if scale.Duration < minDuration {
		ratio := float64(minDuration) / float64(scale.Duration)
		scale.ConnRate /= ratio
		scale.Duration = minDuration
	}
	gen, err := trafficgen.NewGenerator(scale.TraceConfig())
	if err != nil {
		return Fig2Result{}, fmt.Errorf("fig2: %w", err)
	}

	lives := NewLifetimeTracker()
	meter := delaymeter.MustNew(delaymeter.DefaultExpiry)
	delaySample := &stats.Sample{}
	delayHist := stats.MustNewHistogram(1, 600)

	var lastTime time.Duration
	gen.Drain(func(pkt packet.Packet) {
		lives.Observe(pkt)
		if d, ok := meter.Observe(pkt); ok {
			sec := d.Seconds()
			delaySample.Add(sec)
			delayHist.Add(sec)
		}
		lastTime = pkt.Time
	})

	tot := gen.Totals()
	res := Fig2Result{
		Connections:      lives.count,
		LifetimeQ50:      lives.sample.Quantile(0.50),
		LifetimeQ90:      lives.sample.Quantile(0.90),
		LifetimeQ95:      lives.sample.Quantile(0.95),
		LifetimeOver515s: 1 - lives.sample.CDFAt(515),
		LifetimeHist:     lives.hist,
		DelaysMeasured:   uint64(delaySample.N()),
		DelayQ50:         delaySample.Quantile(0.50),
		DelayQ95:         delaySample.Quantile(0.95),
		DelayQ99:         delaySample.Quantile(0.99),
		DelayHist:        delayHist,
		Packets:          tot.Packets,
		TCPFraction:      float64(tot.TCPPackets) / float64(tot.Packets),
		AvgPktBytes:      float64(tot.Bytes) / float64(tot.Packets),
	}
	if lastTime > 0 {
		res.AvgPktRate = float64(tot.Packets) / lastTime.Seconds()
	}
	// Locate histogram peaks beyond 20 s (the Figure 2-b port-reuse /
	// server-timeout structure). The peaks sit on a near-empty tail, so
	// a small absolute threshold suffices (Figure 2-b is log-scale for
	// the same reason).
	minCount := res.DelaysMeasured / 50000
	if minCount < 5 {
		minCount = 5
	}
	for _, bin := range res.DelayHist.Peaks(minCount) {
		if bin > 20 {
			res.DelayPeaks = append(res.DelayPeaks, bin)
		}
	}
	return res, nil
}

// Format renders the result next to the paper's published numbers.
func (r Fig2Result) Format() string {
	t := newTable(34, 14, 14)
	t.row("Figure 2: trace characteristics", "paper", "measured")
	t.line()
	t.row("TCP packet fraction", "96.25%", pct(r.TCPFraction))
	t.row("avg packet size (B)", "720", fmt.Sprintf("%.0f", r.AvgPktBytes))
	t.row("connections measured", "-", fmt.Sprintf("%d", r.Connections))
	t.row("lifetime q90 (s)  [2-a]", "76", fmt.Sprintf("%.1f", r.LifetimeQ90))
	t.row("lifetime q95 (s)  [2-a]", "360", fmt.Sprintf("%.1f", r.LifetimeQ95))
	t.row("P(lifetime>515s)  [2-a]", "<1%", pct(r.LifetimeOver515s))
	t.row("out-in delays measured", "-", fmt.Sprintf("%d", r.DelaysMeasured))
	t.row("delay q95 (s)     [2-c]", "0.8", fmt.Sprintf("%.2f", r.DelayQ95))
	t.row("delay q99 (s)     [2-c]", "2.8", fmt.Sprintf("%.2f", r.DelayQ99))
	t.row("delay peaks >20s  [2-b]", "30/60s multiples", fmt.Sprintf("%v", r.DelayPeaks))
	return t.String()
}
