package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestBandwidthAttackMitigation(t *testing.T) {
	cfg := DefaultBandwidthConfig()
	cfg.Phase = 15 * time.Second
	res, err := RunBandwidth(cfg)
	if err != nil {
		t.Fatal(err)
	}

	un, plain, apd := res.Unfiltered, res.Plain, res.APD

	// Identical offered traffic in all three runs.
	if un.BenignSent != plain.BenignSent || plain.BenignSent != apd.BenignSent {
		t.Fatalf("benign offered load differs: %d/%d/%d",
			un.BenignSent, plain.BenignSent, apd.BenignSent)
	}
	if un.FloodSent == 0 {
		t.Fatal("no flood traffic")
	}

	// Unfiltered: the flood congests the bottleneck and benign goodput
	// suffers.
	if un.TailDropped == 0 {
		t.Error("unfiltered link did not congest")
	}
	if un.BenignDelivered >= un.BenignSent {
		t.Errorf("unfiltered delivered all %d benign replies despite flood", un.BenignDelivered)
	}
	if un.FloodDelivered == 0 {
		t.Error("unfiltered delivered no flood packets (flood ineffective)")
	}

	// Plain bitmap: full benign goodput, zero flood, zero pushes (the
	// strict positive-listing cost §5.3 motivates APD with).
	if plain.BenignDelivered != plain.BenignSent {
		t.Errorf("plain bitmap benign %d/%d", plain.BenignDelivered, plain.BenignSent)
	}
	if plain.FloodDelivered != 0 {
		t.Errorf("plain bitmap delivered %d flood packets", plain.FloodDelivered)
	}
	if plain.UnmatchedDelivered != 0 {
		t.Errorf("plain bitmap delivered %d unmatched pushes", plain.UnmatchedDelivered)
	}
	if plain.TailDropped != 0 {
		t.Errorf("plain bitmap link congested: %d tail drops", plain.TailDropped)
	}

	// APD: high benign goodput, AND server pushes get through during the
	// calm phase, while the flood is still mostly shed once utilization
	// rises. U_b counts only bytes the filter admits (dropped packets
	// never reach the downstream link), so during the flood the
	// indicator equilibrates below 1 and keeps admitting a trickle that
	// contends with benign replies at the bottleneck — a few benign
	// losses are the honest price of the adaptive admission.
	if float64(apd.BenignDelivered) < 0.90*float64(apd.BenignSent) {
		t.Errorf("APD benign %d/%d", apd.BenignDelivered, apd.BenignSent)
	}
	if apd.UnmatchedDelivered == 0 {
		t.Error("APD delivered no server pushes; adaptive admission broken")
	}
	if apd.UnmatchedDelivered <= plain.UnmatchedDelivered {
		t.Error("APD not more permissive than plain bitmap for unmatched benign traffic")
	}
	// During the flood the bandwidth indicator saturates: the vast
	// majority of flood packets must be dropped.
	floodThrough := float64(apd.FloodDelivered) / float64(apd.FloodSent)
	if floodThrough > 0.10 {
		t.Errorf("APD passed %.1f%% of the flood", floodThrough*100)
	}
	// And benign goodput must beat the unfiltered run.
	if apd.BenignDelivered <= un.BenignDelivered {
		t.Errorf("APD benign %d not better than unfiltered %d",
			apd.BenignDelivered, un.BenignDelivered)
	}

	if !strings.Contains(res.Format(), "bandwidth attack") {
		t.Error("Format missing header")
	}
}
