package experiments

import (
	"fmt"
	"time"

	"bitmapfilter/internal/model"
)

// CapacityResult is the §4.1 worked example (E4): Equation 5 capacity
// bounds, the optimal hash count and the memory footprint for the paper's
// {4×20} configuration.
type CapacityResult struct {
	Order   uint
	Vectors int
	Dt      time.Duration
	Rows    []model.CapacityRow
	// OptimalM is Equation 4 evaluated at the p=5% capacity bound (the
	// paper derives m=3 for its setup).
	OptimalM int
	// MemoryBytes is (k·2^n)/8.
	MemoryBytes uint64
}

// RunCapacity evaluates the closed-form analysis for the paper's
// parameters.
func RunCapacity() (CapacityResult, error) {
	const (
		order   = 20
		vectors = 4
		dt      = 5 * time.Second
	)
	rows, err := model.CapacityTable(order, []float64{0.10, 0.05, 0.01})
	if err != nil {
		return CapacityResult{}, fmt.Errorf("capacity: %w", err)
	}
	m, err := model.OptimalHashesInt(rows[1].MaxConnections, order)
	if err != nil {
		return CapacityResult{}, fmt.Errorf("capacity: %w", err)
	}
	return CapacityResult{
		Order:       order,
		Vectors:     vectors,
		Dt:          dt,
		Rows:        rows,
		OptimalM:    m,
		MemoryBytes: model.MemoryBytes(order, vectors),
	}, nil
}

// Format renders the capacity table next to the paper's numbers.
func (r CapacityResult) Format() string {
	t := newTable(26, 14, 14)
	t.row("§4.1 capacity (Eq. 5)", "paper", "computed")
	t.line()
	paper := []string{"167K", "125K", "83K"}
	for i, row := range r.Rows {
		t.row(fmt.Sprintf("max conns @ p=%.0f%%", row.P*100),
			paper[i], fmt.Sprintf("%.0f", row.MaxConnections))
	}
	t.row("optimal m (Eq. 4)", "3", fmt.Sprintf("%d", r.OptimalM))
	t.row("memory (k·2^n)/8", "512K bytes", fmt.Sprintf("%d", r.MemoryBytes))
	t.row("T_e = k·Δt", "20s",
		fmt.Sprintf("%v", time.Duration(r.Vectors)*r.Dt))
	return t.String()
}
