package experiments

import (
	"fmt"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/trafficgen"
	"bitmapfilter/internal/xrand"
)

// CollusionConfig parameterizes the §5.4 colluding-attacker analysis: a
// sniffer inside (or peered with) the client network reports a fraction of
// live connection tuples to an attacker, who then sends spoofed packets
// matching those tuples after a reporting lag. The paper argues this is an
// unattractive strategy because "short connections will be deleted quickly
// from a bitmap filter with a short expiry timer" — the sniffer must
// report fresh state constantly, raising its exposure.
type CollusionConfig struct {
	Scale Scale
	// SnoopFraction is the share of outgoing tuples the sniffer
	// captures.
	SnoopFraction float64
	// Lags are the sniffer-report-to-attack delays to sweep.
	Lags []time.Duration
	// Order..RotateEvery configure the bitmap under attack.
	Order       uint
	Vectors     int
	Hashes      int
	RotateEvery time.Duration
}

// DefaultCollusionConfig sweeps lags around the default T_e = 20 s.
func DefaultCollusionConfig() CollusionConfig {
	return CollusionConfig{
		Scale:         QuickScale(),
		SnoopFraction: 0.05,
		Lags: []time.Duration{
			time.Second, 5 * time.Second, 10 * time.Second,
			30 * time.Second, 60 * time.Second,
		},
		Order:       20,
		Vectors:     4,
		Hashes:      3,
		RotateEvery: 5 * time.Second,
	}
}

// CollusionRow is the outcome for one reporting lag.
type CollusionRow struct {
	Lag      time.Duration
	Spoofed  uint64
	Admitted uint64
	// SuccessRate is Admitted/Spoofed.
	SuccessRate float64
}

// CollusionResult is the sweep outcome.
type CollusionResult struct {
	Te            time.Duration
	SnoopFraction float64
	Rows          []CollusionRow
}

// RunCollusion replays the benign trace once per lag. The sniffer samples
// outgoing packets; for each sample the attacker injects a spoofed packet
// matching the sniffed tuple `lag` later. Because marks live between
// (k−1)·Δt and k·Δt, lags below (k−1)·Δt mostly succeed (if the flow sent
// nothing since, the spoofed packet matches the stale mark), and lags
// beyond T_e always fail.
func RunCollusion(cfg CollusionConfig) (CollusionResult, error) {
	res := CollusionResult{
		Te:            time.Duration(cfg.Vectors) * cfg.RotateEvery,
		SnoopFraction: cfg.SnoopFraction,
	}
	for _, lag := range cfg.Lags {
		row, err := runCollusionLag(cfg, lag)
		if err != nil {
			return CollusionResult{}, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runCollusionLag(cfg CollusionConfig, lag time.Duration) (CollusionRow, error) {
	gen, err := trafficgen.NewGenerator(cfg.Scale.TraceConfig())
	if err != nil {
		return CollusionRow{}, fmt.Errorf("collusion: %w", err)
	}
	f, err := core.New(
		core.WithOrder(cfg.Order),
		core.WithVectors(cfg.Vectors),
		core.WithHashes(cfg.Hashes),
		core.WithRotateEvery(cfg.RotateEvery),
		core.WithSeed(cfg.Scale.Seed),
	)
	if err != nil {
		return CollusionRow{}, fmt.Errorf("collusion: %w", err)
	}
	r := xrand.New(cfg.Scale.Seed ^ 0xc0111c0de)

	row := CollusionRow{Lag: lag}
	// Pending spoofed packets, time-ordered because sniff events are.
	type spoof struct {
		at  time.Duration
		pkt packet.Packet
	}
	var queue []spoof
	head := 0

	gen.Drain(func(pkt packet.Packet) {
		// Release due spoofed packets first.
		for head < len(queue) && queue[head].at <= pkt.Time {
			sp := queue[head]
			head++
			sp.pkt.Time = sp.at
			row.Spoofed++
			if f.Process(sp.pkt) == filtering.Pass {
				row.Admitted++
			}
		}
		f.Process(pkt)
		// The sniffer samples outgoing data packets.
		if pkt.Dir == packet.Outgoing && r.Bool(cfg.SnoopFraction) {
			spoofPkt := packet.Packet{
				Tuple:  pkt.Tuple.Reverse(),
				Dir:    packet.Incoming,
				Flags:  packet.ACK,
				Length: 512,
			}
			// The attacker spoofs the remote peer; any source port
			// works against the bitmap, which is part of the threat.
			spoofPkt.Tuple.SrcPort = uint16(1 + r.Intn(65535))
			queue = append(queue, spoof{at: pkt.Time + lag, pkt: spoofPkt})
		}
	})
	// Flush stragglers past the end of the trace.
	for ; head < len(queue); head++ {
		sp := queue[head]
		sp.pkt.Time = sp.at
		row.Spoofed++
		if f.Process(sp.pkt) == filtering.Pass {
			row.Admitted++
		}
	}
	if row.Spoofed > 0 {
		row.SuccessRate = float64(row.Admitted) / float64(row.Spoofed)
	}
	return row, nil
}

// Format renders the sweep.
func (r CollusionResult) Format() string {
	t := newTable(16, 12, 12, 14)
	t.row("sniffer lag", "spoofed", "admitted", "success")
	t.line()
	for _, row := range r.Rows {
		t.row(row.Lag.String(),
			fmt.Sprintf("%d", row.Spoofed),
			fmt.Sprintf("%d", row.Admitted),
			pct(row.SuccessRate))
	}
	t.line()
	t.row(fmt.Sprintf("§5.4 collusion, T_e=%v, snoop=%.0f%%", r.Te, r.SnoopFraction*100))
	return t.String()
}
