package experiments

import (
	"fmt"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/flowtable"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/stats"
	"bitmapfilter/internal/trafficgen"
)

// Fig4Config parameterizes the drop-rate comparison of Figure 4: the
// benign trace is run through both an SPI filter (240 s idle timeout, the
// Windows TIME_WAIT default) and the paper's {4×20} bitmap filter, and
// per-interval drop rates are compared.
type Fig4Config struct {
	Scale Scale
	// IntervalSec is the width of one scatter point in seconds.
	IntervalSec float64
	// Order..RotateEvery configure the bitmap (paper: 20/4/3/5 s).
	Order       uint
	Vectors     int
	Hashes      int
	RotateEvery time.Duration
	// SPITimeout is the SPI idle timeout (paper: 240 s).
	SPITimeout time.Duration
}

// DefaultFig4Config returns the paper's configuration at default scale.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Scale:       DefaultScale(),
		IntervalSec: 30,
		Order:       20,
		Vectors:     4,
		Hashes:      3,
		RotateEvery: 5 * time.Second,
		SPITimeout:  240 * time.Second,
	}
}

// Fig4Result holds the drop-rate comparison.
type Fig4Result struct {
	// SPIDropRate and BitmapDropRate are the overall incoming drop
	// fractions (paper: 1.56% and 1.51%).
	SPIDropRate    float64
	BitmapDropRate float64
	// Scatter holds one (SPI, bitmap) drop-rate point per interval;
	// Slope and Correlation summarize it (paper: the points follow a
	// line of slope 1.0).
	Scatter     *stats.Scatter
	Slope       float64
	Correlation float64
	Intervals   int
	Packets     uint64
}

// RunFig4 executes the comparison.
func RunFig4(cfg Fig4Config) (Fig4Result, error) {
	gen, err := trafficgen.NewGenerator(cfg.Scale.TraceConfig())
	if err != nil {
		return Fig4Result{}, fmt.Errorf("fig4: %w", err)
	}
	bitmap, err := core.New(
		core.WithOrder(cfg.Order),
		core.WithVectors(cfg.Vectors),
		core.WithHashes(cfg.Hashes),
		core.WithRotateEvery(cfg.RotateEvery),
		core.WithSeed(cfg.Scale.Seed),
	)
	if err != nil {
		return Fig4Result{}, fmt.Errorf("fig4: %w", err)
	}
	spi := flowtable.NewHashList(flowtable.WithIdleTimeout(cfg.SPITimeout))

	type bucket struct {
		spiIn, spiDrop       uint64
		bitmapIn, bitmapDrop uint64
	}
	intervals := int(cfg.Scale.Duration.Seconds()/cfg.IntervalSec) + 1
	buckets := make([]bucket, intervals)

	// Both filters are driven through the batch data plane (the SPI table
	// via the generic fallback) with reused verdict buffers, so the whole
	// trace runs allocation-free past generation.
	var spiV, bitmapV []filtering.Verdict
	gen.DrainBatches(trafficgen.DefaultBatchSize, func(pkts []packet.Packet) {
		spiV = spi.ProcessBatchInto(pkts, spiV)
		bitmapV = bitmap.ProcessBatchInto(pkts, bitmapV)
		for i := range pkts {
			if pkts[i].Dir != packet.Incoming {
				continue
			}
			b := &buckets[int(pkts[i].Time.Seconds()/cfg.IntervalSec)]
			b.spiIn++
			b.bitmapIn++
			if spiV[i] == filtering.Drop {
				b.spiDrop++
			}
			if bitmapV[i] == filtering.Drop {
				b.bitmapDrop++
			}
		}
	})

	res := Fig4Result{
		Scatter: &stats.Scatter{},
		Packets: gen.Totals().Packets,
	}
	for _, b := range buckets {
		if b.spiIn == 0 {
			continue
		}
		res.Intervals++
		res.Scatter.Add(
			float64(b.spiDrop)/float64(b.spiIn),
			float64(b.bitmapDrop)/float64(b.bitmapIn),
		)
	}
	res.SPIDropRate = spi.Counters().DropRate()
	res.BitmapDropRate = bitmap.Counters().DropRate()
	_, res.Slope = res.Scatter.Fit()
	res.Correlation = res.Scatter.Correlation()
	return res, nil
}

// Format renders the result next to the paper's numbers.
func (r Fig4Result) Format() string {
	t := newTable(34, 14, 14)
	t.row("Figure 4: benign drop rates", "paper", "measured")
	t.line()
	t.row("SPI filter drop rate", "1.56%", pct(r.SPIDropRate))
	t.row("bitmap filter drop rate", "1.51%", pct(r.BitmapDropRate))
	t.row("scatter slope", "1.0", fmt.Sprintf("%.3f", r.Slope))
	t.row("scatter correlation", "~1", fmt.Sprintf("%.3f", r.Correlation))
	t.row("intervals", "-", fmt.Sprintf("%d", r.Intervals))
	t.row("packets", "-", fmt.Sprintf("%d", r.Packets))
	return t.String()
}
