package experiments

import (
	"fmt"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/flowtable"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// Table1Connections is the paper's sizing scenario: "handle maxima 2.56M
// concurrent connections".
const Table1Connections = 2_560_000

// Table1Row is one column of the paper's Table 1 (we transpose: one row
// per implementation).
type Table1Row struct {
	Name string
	// PaperBytes is the storage the paper reports for 2.56 M
	// connections.
	PaperBytes uint64
	// MeasuredBytes is the accounted state footprint after inserting
	// Connections flows.
	MeasuredBytes uint64
	// InsertNs / LookupNs are measured per-op costs at full load.
	InsertNs float64
	LookupNs float64
	// GCNs is the cost of one full garbage-collection sweep (bitmap:
	// one vector reset).
	GCNs float64
	// Complexity columns, straight from the paper.
	InsertComplexity string
	LookupComplexity string
	GCComplexity     string
}

// Table1Result is the performance comparison of the three filters.
type Table1Result struct {
	Connections int
	Rows        []Table1Row
}

// table1Filter abstracts the pieces Table 1 measures. Insert and lookup
// phases run through the batch data plane so the timings reflect the
// filters' amortized per-packet cost, not driver-loop overhead.
type table1Filter interface {
	filtering.BatchFilter
}

// RunTable1 inserts `connections` flows into each implementation and
// measures memory plus per-operation latencies. Use a reduced connection
// count for quick runs; the bench harness uses Table1Connections.
func RunTable1(connections int, seed uint64) (Table1Result, error) {
	if connections <= 0 {
		return Table1Result{}, fmt.Errorf("table1: connections %d", connections)
	}
	// The paper's bitmap column handles 2.56 M connections at ~10%
	// penetration with an 8 MB bitmap: {4×24} (4·2^24/8 = 8 MiB).
	bitmap, err := core.New(
		core.WithOrder(24), core.WithVectors(4), core.WithHashes(3),
		core.WithRotateEvery(5*time.Second), core.WithSeed(seed),
	)
	if err != nil {
		return Table1Result{}, fmt.Errorf("table1: %w", err)
	}

	specs := []struct {
		name       string
		filter     table1Filter
		paperBytes uint64
		insertC    string
		lookupC    string
		gcC        string
		gc         func()
	}{
		{
			name: "hash+link-list (Linux)",
			// Bucket count sized at conns/4, the usual conntrack
			// hashsize ratio.
			filter:     flowtable.NewHashList(flowtable.WithBuckets(connections / 4)),
			paperBytes: 76_800_000,
			insertC:    "O(1)", lookupC: "O(n) worst", gcC: "O(n)",
		},
		{
			name:       "AVL-tree",
			filter:     flowtable.NewAVLTable(),
			paperBytes: 76_800_000,
			insertC:    "O(log n)", lookupC: "O(log n)", gcC: "O(n)",
		},
		{
			name:       "bitmap filter",
			filter:     bitmap,
			paperBytes: 8 * 1024 * 1024,
			insertC:    "O(1)", lookupC: "O(1)", gcC: "O(n) reset",
			gc: bitmap.Rotate,
		},
	}

	res := Table1Result{Connections: connections}
	for _, spec := range specs {
		r := xrand.New(seed)
		outs := make([]packet.Packet, connections)
		ins := make([]packet.Packet, connections)
		for i := range outs {
			tup := packet.Tuple{
				Src:     packet.AddrFrom4(10, 10, byte(i>>16), byte(i>>8)),
				Dst:     packet.Addr(r.Uint32() | 1),
				SrcPort: uint16(1024 + i%60000),
				DstPort: 80,
				Proto:   packet.TCP,
			}
			outs[i] = packet.Packet{Tuple: tup, Dir: packet.Outgoing, Flags: packet.ACK, Length: 60}
			ins[i] = packet.Packet{Tuple: tup.Reverse(), Dir: packet.Incoming, Flags: packet.ACK, Length: 60}
		}

		// Sized to the batch up front so the timed sections are
		// allocation-free.
		verdicts := make([]filtering.Verdict, connections)

		startInsert := nowNs()
		spec.filter.ProcessBatchInto(outs, verdicts)
		insertNs := float64(nowNs()-startInsert) / float64(connections)

		startLookup := nowNs()
		spec.filter.ProcessBatchInto(ins, verdicts)
		lookupNs := float64(nowNs()-startLookup) / float64(connections)

		startGC := nowNs()
		if spec.gc != nil {
			spec.gc()
		} else {
			// Force one full sweep by advancing past a GC interval
			// (entries stay, the traversal cost is what we time).
			spec.filter.AdvanceTo(flowtable.DefaultGCInterval + time.Nanosecond)
			spec.filter.AdvanceTo(2*flowtable.DefaultGCInterval + time.Nanosecond)
		}
		gcNs := float64(nowNs() - startGC)

		res.Rows = append(res.Rows, Table1Row{
			Name:             spec.name,
			PaperBytes:       spec.paperBytes,
			MeasuredBytes:    spec.filter.MemoryBytes(),
			InsertNs:         insertNs,
			LookupNs:         lookupNs,
			GCNs:             gcNs,
			InsertComplexity: spec.insertC,
			LookupComplexity: spec.lookupC,
			GCComplexity:     spec.gcC,
		})
	}
	return res, nil
}

// nowNs is a monotonic nanosecond clock for coarse CLI-side timing (the
// bench harness uses testing.B for precise numbers). It is the one
// deliberate wall-clock seam in this package — Table 1 reports measured
// costs, not simulated ones — and a variable so tests can stub it.
var nowNs = func() int64 {
	return time.Now().UnixNano() //bf:allow wallclock Table 1 reports measured wall costs; everything else in this package is virtual-time
}

// Format renders the comparison.
func (r Table1Result) Format() string {
	t := newTable(24, 14, 14, 10, 10, 12)
	t.row("Table 1", "paper bytes", "measured B", "ins ns/op", "look ns/op", "gc ns")
	t.line()
	for _, row := range r.Rows {
		t.row(row.Name,
			fmt.Sprintf("%d", row.PaperBytes),
			fmt.Sprintf("%d", row.MeasuredBytes),
			fmt.Sprintf("%.0f", row.InsertNs),
			fmt.Sprintf("%.0f", row.LookupNs),
			fmt.Sprintf("%.0f", row.GCNs),
		)
	}
	t.line()
	t.row(fmt.Sprintf("(%d connections)", r.Connections))
	return t.String()
}
