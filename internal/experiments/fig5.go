package experiments

import (
	"fmt"
	"time"

	"bitmapfilter/internal/attack"
	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/stats"
	"bitmapfilter/internal/trafficgen"
)

// Fig5Config parameterizes the attack-mix experiment of §4.3/Figure 5:
// random scan packets are mixed into the benign trace partway through, and
// the bitmap filter's attack-filtering rate is measured.
type Fig5Config struct {
	Scale Scale
	// AttackStartFraction is where in the trace the attack begins
	// (paper: 12000 s of 21600 s ≈ 0.55).
	AttackStartFraction float64
	// AttackRateMultiplier scales the attack rate relative to the
	// benign packet rate (paper: 500 K pps ≈ 20× the trace rate).
	AttackRateMultiplier float64
	// Order..RotateEvery configure the bitmap. The paper's {4×20}
	// filter faces ~15 K active connections; at reduced trace scale the
	// default order keeps utilization (and thus the penetration rate)
	// in the same regime.
	Order       uint
	Vectors     int
	Hashes      int
	RotateEvery time.Duration
	// IntervalSec buckets the Figure 5-a time series.
	IntervalSec float64
}

// DefaultFig5Config returns the paper's setup at default scale.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		Scale:                DefaultScale(),
		AttackStartFraction:  0.55,
		AttackRateMultiplier: 20,
		Order:                20,
		Vectors:              4,
		Hashes:               3,
		RotateEvery:          5 * time.Second,
		IntervalSec:          10,
	}
}

// Fig5Result holds the attack-mix outcome.
type Fig5Result struct {
	// FilterRate is the fraction of attack packets dropped (paper:
	// 99.983% on average).
	FilterRate float64
	// AttackPackets and Penetrated count ground-truth attack traffic.
	AttackPackets uint64
	Penetrated    uint64
	// NormalInDropped is the benign incoming drop rate during the
	// attack (should stay near the Figure 4 rate).
	NormalInDropped float64
	// Time series for Figure 5-a: benign incoming, attack, and
	// penetrated+passed-benign ("the black line fits the border of the
	// light-gray area").
	Normal, Attack, Passed *stats.TimeSeries
	// AttackStart is when the attack began.
	AttackStart time.Duration
}

// RunFig5 executes the experiment. Attack packets are tracked by origin
// (not by inspection), exactly as the paper "verified whether [each attack
// packet] penetrates the bitmap filter or not".
func RunFig5(cfg Fig5Config) (Fig5Result, error) {
	traceCfg := cfg.Scale.TraceConfig()
	gen, err := trafficgen.NewGenerator(traceCfg)
	if err != nil {
		return Fig5Result{}, fmt.Errorf("fig5: %w", err)
	}

	// Estimate the benign packet rate to size the attack (the paper's
	// 500 K pps is "about 20 times faster than the normal traffic
	// packet rate"). A quick probe run of the same generator measures
	// the rate without consuming the main stream.
	probe, err := trafficgen.NewGenerator(traceCfg)
	if err != nil {
		return Fig5Result{}, fmt.Errorf("fig5: %w", err)
	}
	probeWindow := traceCfg.Duration / 10
	var probePkts uint64
	for {
		pkt, ok := probe.Next()
		if !ok || pkt.Time > probeWindow {
			break
		}
		probePkts++
	}
	benignRate := float64(probePkts) / probeWindow.Seconds()

	start := time.Duration(cfg.AttackStartFraction * float64(traceCfg.Duration))
	scan, err := attack.NewRandomScan(attack.RandomScanConfig{
		Seed:     cfg.Scale.Seed + 1,
		Rate:     benignRate * cfg.AttackRateMultiplier,
		Start:    start,
		Duration: traceCfg.Duration - start,
		Subnets:  traceCfg.Subnets,
	})
	if err != nil {
		return Fig5Result{}, fmt.Errorf("fig5: %w", err)
	}

	bitmap, err := core.New(
		core.WithOrder(cfg.Order),
		core.WithVectors(cfg.Vectors),
		core.WithHashes(cfg.Hashes),
		core.WithRotateEvery(cfg.RotateEvery),
		core.WithSeed(cfg.Scale.Seed),
	)
	if err != nil {
		return Fig5Result{}, fmt.Errorf("fig5: %w", err)
	}

	intervals := int(traceCfg.Duration.Seconds()/cfg.IntervalSec) + 1
	res := Fig5Result{
		Normal:      stats.MustNewTimeSeries(cfg.IntervalSec, intervals),
		Attack:      stats.MustNewTimeSeries(cfg.IntervalSec, intervals),
		Passed:      stats.MustNewTimeSeries(cfg.IntervalSec, intervals),
		AttackStart: start,
	}

	var benignIn, benignDropped uint64

	// Manual two-stream merge so each packet keeps its ground-truth
	// origin.
	benignPkt, benignOK := gen.Next()
	attackPkt, attackOK := scan.Next()
	for benignOK || attackOK {
		isAttack := attackOK && (!benignOK || attackPkt.Time < benignPkt.Time)
		var pkt packet.Packet
		if isAttack {
			pkt = attackPkt
			attackPkt, attackOK = scan.Next()
		} else {
			pkt = benignPkt
			benignPkt, benignOK = gen.Next()
		}

		v := bitmap.Process(pkt)
		sec := pkt.Time.Seconds()
		if pkt.Dir != packet.Incoming {
			continue
		}
		if isAttack {
			res.AttackPackets++
			res.Attack.Add(sec, 1)
			if v == filtering.Pass {
				res.Penetrated++
				res.Passed.Add(sec, 1)
			}
			continue
		}
		benignIn++
		res.Normal.Add(sec, 1)
		if v == filtering.Pass {
			res.Passed.Add(sec, 1)
		} else {
			benignDropped++
		}
	}

	if res.AttackPackets > 0 {
		res.FilterRate = 1 - float64(res.Penetrated)/float64(res.AttackPackets)
	}
	if benignIn > 0 {
		res.NormalInDropped = float64(benignDropped) / float64(benignIn)
	}
	return res, nil
}

// Format renders the result next to the paper's numbers.
func (r Fig5Result) Format() string {
	t := newTable(34, 14, 14)
	t.row("Figure 5: attack filtering", "paper", "measured")
	t.line()
	t.row("attack packets", "-", fmt.Sprintf("%d", r.AttackPackets))
	t.row("penetrated", "-", fmt.Sprintf("%d", r.Penetrated))
	t.row("attack filtering rate [5-b]", "99.983%", pct(r.FilterRate))
	t.row("benign drop rate in mix", "~1.5%", pct(r.NormalInDropped))
	t.row("attack start (s)", "12000/21600", fmt.Sprintf("%.0f", r.AttackStart.Seconds()))
	return t.String()
}
