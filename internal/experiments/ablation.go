package experiments

import (
	"fmt"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/model"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/trafficgen"
	"bitmapfilter/internal/xrand"
)

// Ablations measure the design choices DESIGN.md §5 calls out, by
// simulation (the bench harness measures their costs; this measures their
// *behavior*):
//
//   - hash count m: random-packet penetration at a fixed connection load,
//     empirically vs Equation 2;
//   - k×Δt split of the same T_e: benign drop rate and memory;
//   - partial vs full tuple hashing: alternate-remote-port admission;
//   - mark-all vs mark-current-only: benign drop rate (the paper's design
//     vs the broken simplification).

// AblationConfig parameterizes the sweeps.
type AblationConfig struct {
	Scale Scale
	// Order is the bit-vector order used by the sweeps (small enough
	// that utilization, and therefore penetration, is measurable).
	Order uint
	// ActiveConns is the steady connection load for the hash-count
	// sweep.
	ActiveConns int
	// Probes is the number of random tuples probed per measurement.
	Probes int
}

// DefaultAblationConfig measures at an order where effects are visible.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{
		Scale:       QuickScale(),
		Order:       14,
		ActiveConns: 2000,
		Probes:      200000,
	}
}

// HashCountRow is one m in the hash-count sweep.
type HashCountRow struct {
	M           int
	Utilization float64
	Measured    float64 // empirical random-packet penetration
	Model       float64 // Equation 2 prediction (low-utilization approx)
	Exact       float64 // exact Bloom form (1 − e^{−cm/2^n})^m
}

// RotationRow is one k×Δt split.
type RotationRow struct {
	K           int
	Dt          time.Duration
	DropRate    float64
	MemoryBytes uint64
}

// PolicyRow compares admission behaviour of one policy variant.
type PolicyRow struct {
	Name string
	// AltPortAdmit is the fraction of replies from a different remote
	// port that are admitted (tuple-policy sweep).
	AltPortAdmit float64
	// BenignDropRate is the incoming drop rate on the calibrated trace
	// (mark-policy sweep).
	BenignDropRate float64
}

// AblationResult aggregates the sweeps.
type AblationResult struct {
	HashCount   []HashCountRow
	Rotation    []RotationRow
	TuplePolicy []PolicyRow
	MarkPolicy  []PolicyRow
}

// RunAblations executes all four sweeps.
func RunAblations(cfg AblationConfig) (AblationResult, error) {
	var res AblationResult
	var err error
	if res.HashCount, err = ablateHashCount(cfg); err != nil {
		return res, fmt.Errorf("ablation: %w", err)
	}
	if res.Rotation, err = ablateRotation(cfg); err != nil {
		return res, fmt.Errorf("ablation: %w", err)
	}
	if res.TuplePolicy, err = ablateTuplePolicy(cfg); err != nil {
		return res, fmt.Errorf("ablation: %w", err)
	}
	if res.MarkPolicy, err = ablateMarkPolicy(cfg); err != nil {
		return res, fmt.Errorf("ablation: %w", err)
	}
	return res, nil
}

// ablateHashCount fills a filter with ActiveConns marked connections and
// probes random tuples for each m.
func ablateHashCount(cfg AblationConfig) ([]HashCountRow, error) {
	var rows []HashCountRow
	for _, m := range []int{1, 2, 3, 4, 6} {
		f, err := core.New(
			core.WithOrder(cfg.Order), core.WithVectors(4), core.WithHashes(m),
			core.WithRotateEvery(5*time.Second), core.WithSeed(cfg.Scale.Seed),
		)
		if err != nil {
			return nil, err
		}
		r := xrand.New(cfg.Scale.Seed + uint64(m))
		client := packet.AddrFrom4(10, 10, 0, 1)
		for i := 0; i < cfg.ActiveConns; i++ {
			f.Process(packet.Packet{
				Tuple: packet.Tuple{
					Src: client, Dst: packet.Addr(r.Uint32() | 1),
					SrcPort: uint16(1024 + i%60000), DstPort: 80, Proto: packet.TCP,
				},
				Dir: packet.Outgoing, Flags: packet.ACK,
			})
		}
		hits := 0
		for i := 0; i < cfg.Probes; i++ {
			tup := packet.Tuple{
				Src: packet.Addr(r.Uint32() | 1), Dst: client,
				SrcPort: uint16(1 + r.Intn(65535)), DstPort: uint16(1 + r.Intn(65535)),
				Proto: packet.TCP,
			}
			if f.WouldAdmit(tup) {
				hits++
			}
		}
		rows = append(rows, HashCountRow{
			M:           m,
			Utilization: f.Utilization(),
			Measured:    float64(hits) / float64(cfg.Probes),
			Model:       model.Penetration(float64(cfg.ActiveConns), m, cfg.Order),
			Exact:       model.PenetrationExact(float64(cfg.ActiveConns), m, cfg.Order),
		})
	}
	return rows, nil
}

// ablateRotation replays the same trace under different k×Δt splits of
// T_e = 20 s.
func ablateRotation(cfg AblationConfig) ([]RotationRow, error) {
	splits := []struct {
		k  int
		dt time.Duration
	}{
		{k: 2, dt: 10 * time.Second},
		{k: 4, dt: 5 * time.Second},
		{k: 10, dt: 2 * time.Second},
	}
	var rows []RotationRow
	for _, s := range splits {
		f, err := core.New(
			core.WithOrder(cfg.Order), core.WithVectors(s.k), core.WithHashes(3),
			core.WithRotateEvery(s.dt), core.WithSeed(cfg.Scale.Seed),
		)
		if err != nil {
			return nil, err
		}
		gen, err := trafficgen.NewGenerator(cfg.Scale.TraceConfig())
		if err != nil {
			return nil, err
		}
		drainThrough(gen, f)
		rows = append(rows, RotationRow{
			K: s.k, Dt: s.dt,
			DropRate:    f.Counters().DropRate(),
			MemoryBytes: f.MemoryBytes(),
		})
	}
	return rows, nil
}

// ablateTuplePolicy measures alternate-remote-port admission under both
// tuple policies.
func ablateTuplePolicy(cfg AblationConfig) ([]PolicyRow, error) {
	var rows []PolicyRow
	for _, p := range []struct {
		name   string
		policy core.TuplePolicy
	}{
		{name: "partial-tuple (paper)", policy: core.PartialTuple},
		{name: "full-tuple", policy: core.FullTuple},
	} {
		// A large vector keeps hash-collision admissions negligible so
		// the sweep isolates the tuple-policy effect.
		f, err := core.New(
			core.WithOrder(20), core.WithVectors(4), core.WithHashes(3),
			core.WithRotateEvery(5*time.Second), core.WithSeed(cfg.Scale.Seed),
			core.WithTuplePolicy(p.policy),
		)
		if err != nil {
			return nil, err
		}
		r := xrand.New(cfg.Scale.Seed)
		client := packet.AddrFrom4(10, 10, 0, 1)
		admitted, trials := 0, 5000
		for i := 0; i < trials; i++ {
			remote := packet.Addr(r.Uint32() | 1)
			lport := uint16(1024 + i%60000)
			f.Process(packet.Packet{
				Tuple: packet.Tuple{Src: client, Dst: remote, SrcPort: lport, DstPort: 21, Proto: packet.TCP},
				Dir:   packet.Outgoing, Flags: packet.ACK,
			})
			// Reply from a different remote port (e.g. FTP data from
			// port 20).
			reply := packet.Packet{
				Tuple: packet.Tuple{Src: remote, Dst: client, SrcPort: 20, DstPort: lport, Proto: packet.TCP},
				Dir:   packet.Incoming, Flags: packet.ACK,
			}
			if f.Process(reply) == filtering.Pass {
				admitted++
			}
		}
		rows = append(rows, PolicyRow{
			Name:         p.name,
			AltPortAdmit: float64(admitted) / float64(trials),
		})
	}
	return rows, nil
}

// ablateMarkPolicy replays the calibrated trace under both marking
// policies: marking only the current vector breaks flows at every rotation
// and the benign drop rate explodes.
func ablateMarkPolicy(cfg AblationConfig) ([]PolicyRow, error) {
	var rows []PolicyRow
	for _, p := range []struct {
		name   string
		policy core.MarkPolicy
	}{
		{name: "mark-all (paper)", policy: core.MarkAllVectors},
		{name: "mark-current-only", policy: core.MarkCurrentOnly},
	} {
		f, err := core.New(
			core.WithOrder(16), core.WithVectors(4), core.WithHashes(3),
			core.WithRotateEvery(5*time.Second), core.WithSeed(cfg.Scale.Seed),
			core.WithMarkPolicy(p.policy),
		)
		if err != nil {
			return nil, err
		}
		gen, err := trafficgen.NewGenerator(cfg.Scale.TraceConfig())
		if err != nil {
			return nil, err
		}
		drainThrough(gen, f)
		rows = append(rows, PolicyRow{
			Name:           p.name,
			BenignDropRate: f.Counters().DropRate(),
		})
	}
	return rows, nil
}

// Format renders all four sweeps.
func (r AblationResult) Format() string {
	t := newTable(24, 12, 12, 12, 12)
	t.row("hash count m", "utilization", "measured p", "Eq.2 p", "exact p")
	t.line()
	for _, row := range r.HashCount {
		t.row(fmt.Sprintf("m=%d", row.M),
			fmt.Sprintf("%.4f", row.Utilization),
			fmt.Sprintf("%.2e", row.Measured),
			fmt.Sprintf("%.2e", row.Model),
			fmt.Sprintf("%.2e", row.Exact))
	}
	t.line()
	t.row("k x Δt (T_e=20s)", "drop rate", "memory B", "")
	t.line()
	for _, row := range r.Rotation {
		t.row(fmt.Sprintf("k=%d Δt=%v", row.K, row.Dt),
			pct(row.DropRate),
			fmt.Sprintf("%d", row.MemoryBytes), "")
	}
	t.line()
	t.row("tuple policy", "alt-port admit", "", "")
	t.line()
	for _, row := range r.TuplePolicy {
		t.row(row.Name, pct(row.AltPortAdmit), "", "")
	}
	t.line()
	t.row("mark policy", "benign drop", "", "")
	t.line()
	for _, row := range r.MarkPolicy {
		t.row(row.Name, pct(row.BenignDropRate), "", "")
	}
	return t.String()
}
