package checkpoint

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
)

// memFS is an in-memory fileSystem with crash injection: it can kill the
// process (modeled as a panic carrying crashSentinel) after a configured
// number of payload bytes have been written, or immediately before a
// configured metadata operation (create/rename/remove/sync). The
// fault-injection suite drives a checkpoint Save into every possible
// crash point and proves Restore never comes back with corrupt state.
type memFS struct {
	files   map[string][]byte
	tempSeq int

	// byteBudget counts remaining payload bytes; a write that would
	// exceed it persists the prefix and crashes. -1 disables.
	byteBudget int
	// opBudget counts remaining metadata operations; when it reaches
	// zero the next operation crashes before executing. -1 disables.
	opBudget int
}

type crashSentinel struct{}

func newMemFS() *memFS {
	return &memFS{files: make(map[string][]byte), byteBudget: -1, opBudget: -1}
}

// clone deep-copies the filesystem state so each crash scenario starts
// from the same disk image.
func (m *memFS) clone() *memFS {
	c := newMemFS()
	c.tempSeq = m.tempSeq
	for name, data := range m.files {
		c.files[name] = bytes.Clone(data)
	}
	return c
}

// crash kills the simulated process.
func (m *memFS) crash() {
	panic(crashSentinel{})
}

// op spends one metadata-operation budget slot, crashing when exhausted.
func (m *memFS) op() {
	if m.opBudget < 0 {
		return
	}
	if m.opBudget == 0 {
		m.crash()
	}
	m.opBudget--
}

func (m *memFS) CreateTemp(dir, pattern string) (writableFile, error) {
	m.op()
	m.tempSeq++
	name := fmt.Sprintf("%s/%s.%d", dir, pattern, m.tempSeq)
	m.files[name] = nil
	return &memFile{fs: m, name: name}, nil
}

func (m *memFS) Rename(oldpath, newpath string) error {
	m.op()
	data, ok := m.files[oldpath]
	if !ok {
		return fmt.Errorf("rename %s: %w", oldpath, fs.ErrNotExist)
	}
	delete(m.files, oldpath)
	m.files[newpath] = data
	return nil
}

func (m *memFS) Remove(name string) error {
	m.op()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("remove %s: %w", name, fs.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

func (m *memFS) Open(name string) (io.ReadCloser, error) {
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("open %s: %w", name, fs.ErrNotExist)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

func (m *memFS) SyncDir(string) error {
	m.op()
	return nil
}

// names returns the current file set (for scenario assertions).
func (m *memFS) names() []string {
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	return out
}

// memFile appends into its memFS entry, honoring the byte budget.
type memFile struct {
	fs   *memFS
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.fs.byteBudget >= 0 && f.fs.byteBudget < len(p) {
		// Torn write: the crash persists only a prefix.
		f.fs.files[f.name] = append(f.fs.files[f.name], p[:f.fs.byteBudget]...)
		f.fs.crash()
	}
	if f.fs.byteBudget >= 0 {
		f.fs.byteBudget -= len(p)
	}
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.op()
	return nil
}

func (f *memFile) Close() error { return nil }

func (f *memFile) Name() string { return f.name }
