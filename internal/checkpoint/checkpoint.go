// Package checkpoint persists bitmap-filter snapshots crash-safely and
// restores them across restarts.
//
// The paper's §4.2 argument — filter state is only k·2^n/8 bytes — makes
// periodic checkpointing cheap; what this package adds is the durability
// discipline around it:
//
//   - Save writes through a temp file, fsyncs it, atomically renames it
//     into place and fsyncs the directory, so a crash at ANY byte offset
//     of the write leaves either the previous checkpoint or the new one
//     on disk — never a torn file at the checkpoint path.
//   - The previous checkpoint is rotated to a ".bak" sibling before the
//     rename, so even a crash between the two renames (the only window
//     where the primary path is briefly absent) leaves a good file.
//   - Restore walks a fallback ladder — primary file, then backup, then
//     cold start — reporting which rung was used and why the earlier
//     rungs were rejected. Combined with the CRC32C framing of snapshot
//     format v2, a corrupt or truncated file is detected and skipped
//     instead of silently restoring garbage bits.
//   - Checkpointer runs the loop: periodic saves on a jittered interval
//     (so a fleet of routers does not thunder onto shared storage in
//     lockstep) with bounded exponential-backoff retries on write
//     failures, and counters/timestamps for metrics export.
//
// The filesystem is abstracted behind an internal interface so the tests
// can inject an in-memory filesystem that crashes at every byte offset
// and metadata operation, proving the "never restore corrupt state"
// property exhaustively.
package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sync"
	"time"

	"bitmapfilter/internal/xrand"
)

// BackupSuffix is appended to the checkpoint path for the last-good
// rotation file.
const BackupSuffix = ".bak"

// Defaults for Config fields left zero.
const (
	DefaultInterval = 30 * time.Second
	DefaultJitter   = 0.1
	DefaultRetries  = 3
	DefaultBackoff  = 250 * time.Millisecond
)

// maxBackoff caps the exponential retry backoff.
const maxBackoff = 8 * time.Second

// ErrNoWriter is returned by New when the Config carries no snapshot
// writer.
var ErrNoWriter = errors.New("checkpoint: config needs a Write function")

// Save atomically persists one snapshot to path: the bytes produced by
// write land in a temp file in the same directory, are fsynced, the
// previous checkpoint (if any) is rotated to path+BackupSuffix, and the
// temp file is renamed into place followed by a directory fsync. It
// returns the number of snapshot bytes written. On any error the
// checkpoint path still holds what it held before (or, in the brief
// rename window, the backup does).
func Save(path string, write func(io.Writer) error) (int64, error) {
	return save(osFS{}, path, write)
}

func save(fsys fileSystem, path string, write func(io.Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmp := f.Name()
	cw := &countingWriter{w: f}
	if err := write(cw); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: sync temp: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: close temp: %w", err)
	}
	// Rotate the last good checkpoint out of the way. A crash after this
	// rename leaves no primary file, which is exactly what the backup
	// rung of the Restore ladder is for.
	if err := fsys.Rename(path, path+BackupSuffix); err != nil && !errors.Is(err, fs.ErrNotExist) {
		fsys.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: rotate backup: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: publish: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return 0, fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return cw.n, nil
}

// countingWriter counts the snapshot bytes flowing into the temp file and
// normalizes short writes (n < len(p) with a nil error) into
// io.ErrShortWrite so a misbehaving file implementation cannot silently
// truncate a checkpoint.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return n, err
}

// Outcome says which rung of the restore ladder produced the state the
// process is now running with.
type Outcome uint8

// Restore outcomes, from best to worst.
const (
	// OutcomePrimary: the checkpoint file itself loaded cleanly.
	OutcomePrimary Outcome = iota
	// OutcomeBackup: the primary was missing or corrupt, the ".bak"
	// rotation loaded cleanly.
	OutcomeBackup
	// OutcomeColdStartEmpty: no checkpoint exists (first boot, or the
	// operator removed it); the caller starts from an empty filter.
	OutcomeColdStartEmpty
	// OutcomeColdStartCorrupt: checkpoint file(s) exist but none loaded;
	// the caller starts from an empty filter and should alert.
	OutcomeColdStartCorrupt
)

// String names the outcome for logs and the restore-outcome metric.
func (o Outcome) String() string {
	switch o {
	case OutcomePrimary:
		return "primary"
	case OutcomeBackup:
		return "backup"
	case OutcomeColdStartEmpty:
		return "cold-start-empty"
	case OutcomeColdStartCorrupt:
		return "cold-start-corrupt"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Restored reports whether any snapshot state was loaded.
func (o Outcome) Restored() bool { return o == OutcomePrimary || o == OutcomeBackup }

// RestoreResult reports what Restore did, with each rejected rung's
// reason kept for distinct operator reporting.
type RestoreResult struct {
	// Outcome is the rung that produced the running state.
	Outcome Outcome
	// File is the file that loaded successfully ("" on cold start).
	File string
	// PrimaryErr is why the checkpoint file was rejected (nil when it
	// loaded; fs.ErrNotExist when absent).
	PrimaryErr error
	// BackupErr is why the backup was rejected (nil when it loaded or
	// was never tried because the primary succeeded).
	BackupErr error
}

// Restore walks the fallback ladder: the checkpoint at path, then
// path+BackupSuffix, then a cold start. load is called with each
// candidate stream and must return a non-nil error without committing
// any state if the stream is corrupt, truncated or otherwise unusable —
// core.ReadSnapshot and friends satisfy this by construction (they
// return a fresh filter or an error). Restore itself never fails: the
// worst case is a cold start, reported distinctly from a clean first
// boot.
func Restore(path string, load func(io.Reader) error) RestoreResult {
	return restore(osFS{}, path, load)
}

func restore(fsys fileSystem, path string, load func(io.Reader) error) RestoreResult {
	res := RestoreResult{}
	res.PrimaryErr = loadFrom(fsys, path, load)
	if res.PrimaryErr == nil {
		res.Outcome = OutcomePrimary
		res.File = path
		return res
	}
	res.BackupErr = loadFrom(fsys, path+BackupSuffix, load)
	if res.BackupErr == nil {
		res.Outcome = OutcomeBackup
		res.File = path + BackupSuffix
		return res
	}
	if errors.Is(res.PrimaryErr, fs.ErrNotExist) && errors.Is(res.BackupErr, fs.ErrNotExist) {
		res.Outcome = OutcomeColdStartEmpty
	} else {
		res.Outcome = OutcomeColdStartCorrupt
	}
	return res
}

// loadFrom opens one candidate file and runs load over it.
func loadFrom(fsys fileSystem, path string, load func(io.Reader) error) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return load(f)
}

// Config parameterizes a Checkpointer.
type Config struct {
	// Path is the checkpoint file; its directory must exist.
	Path string
	// Write streams one snapshot (e.g. (*live.Filter).WriteSnapshot).
	Write func(io.Writer) error
	// Interval between periodic checkpoints (DefaultInterval if zero).
	Interval time.Duration
	// Jitter is the fraction of Interval each period is uniformly
	// perturbed by (±), so fleets don't checkpoint in lockstep.
	// DefaultJitter if zero; negative disables jitter.
	Jitter float64
	// Retries bounds how many times a failed save is retried within one
	// checkpoint round (DefaultRetries if zero; negative disables).
	Retries int
	// Backoff is the first retry delay; it doubles per retry up to an
	// internal cap (DefaultBackoff if zero).
	Backoff time.Duration
	// Seed randomizes the jitter; 0 derives one from the wall clock.
	Seed uint64
	// Heartbeat, when set, is called once per completed checkpoint round
	// (successful or not) — the liveness signal a resilience.Watchdog
	// probe uses to tell "checkpoints keep happening" from "the
	// checkpointer is wedged".
	Heartbeat func()
	// Logf, when set, receives one line per checkpoint outcome.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time view of the checkpointer for metrics export.
type Stats struct {
	// Interval is the configured base period.
	Interval time.Duration
	// Attempts counts save attempts, including retries.
	Attempts uint64
	// Successes counts completed checkpoints.
	Successes uint64
	// Failures counts failed save attempts.
	Failures uint64
	// LastSuccess is the completion time of the newest checkpoint
	// (zero if none yet).
	LastSuccess time.Time
	// LastBytes is the size of the newest checkpoint.
	LastBytes int64
	// LastError describes the most recent failed attempt ("" if the
	// most recent attempt succeeded).
	LastError string
}

// Checkpointer periodically persists snapshots of a live filter. Create
// one with New, call Start for the background loop, CheckpointNow for an
// immediate synchronous checkpoint (operator endpoint, SIGTERM), and
// Stop before exit.
type Checkpointer struct {
	cfg  Config
	fsys fileSystem

	// runMu serializes saves: a manual CheckpointNow never interleaves
	// bytes with a periodic save.
	runMu sync.Mutex

	mu    sync.Mutex    // guards stats, rng and the loop channels
	stats Stats         //bf:guardedby mu
	rng   *xrand.Rand   //bf:guardedby mu
	stop  chan struct{} //bf:guardedby mu
	done  chan struct{} //bf:guardedby mu
}

// New validates cfg, applies defaults and returns a Checkpointer. The
// loop is not started; CheckpointNow works immediately.
func New(cfg Config) (*Checkpointer, error) {
	if cfg.Write == nil {
		return nil, ErrNoWriter
	}
	if cfg.Path == "" {
		return nil, errors.New("checkpoint: config needs a path")
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("checkpoint: negative interval %v", cfg.Interval)
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = DefaultJitter
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Jitter > 0.5 {
		cfg.Jitter = 0.5
	}
	if cfg.Retries == 0 {
		cfg.Retries = DefaultRetries
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	return &Checkpointer{
		cfg:   cfg,
		fsys:  osFS{},
		stats: Stats{Interval: cfg.Interval},
		rng:   xrand.New(seed),
	}, nil
}

// Start launches the periodic checkpoint goroutine. It returns an error
// if the loop is already running. Always pair with Stop.
func (c *Checkpointer) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return errors.New("checkpoint: already running")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.stop, c.done = stop, done
	go c.loop(stop, done)
	return nil
}

// Stop halts the periodic loop and waits for it to exit (any in-flight
// save completes first). It does not take a final checkpoint; callers
// that want one (e.g. on SIGTERM) call CheckpointNow themselves so they
// can log the outcome.
func (c *Checkpointer) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (c *Checkpointer) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		t := time.NewTimer(c.nextInterval())
		select {
		case <-stop:
			t.Stop()
			return
		case <-t.C:
		}
		c.checkpoint(stop)
	}
}

// nextInterval returns the jittered period for the next checkpoint.
func (c *Checkpointer) nextInterval() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Jitter == 0 {
		return c.cfg.Interval
	}
	// Uniform in [1-j, 1+j] × Interval.
	scale := 1 + c.cfg.Jitter*(2*c.rng.Float64()-1)
	return time.Duration(float64(c.cfg.Interval) * scale)
}

// CheckpointNow takes one checkpoint synchronously, with the same
// bounded-retry policy as the periodic loop, and returns the final
// error (nil on success).
func (c *Checkpointer) CheckpointNow() error {
	return c.checkpoint(nil)
}

// checkpoint runs one save round: attempt, then up to Retries retries
// with exponential backoff. A Stop during backoff abandons the round.
func (c *Checkpointer) checkpoint(stop <-chan struct{}) error {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	if c.cfg.Heartbeat != nil {
		defer c.cfg.Heartbeat()
	}
	backoff := c.cfg.Backoff
	var err error
	for attempt := 0; ; attempt++ {
		var n int64
		n, err = save(c.fsys, c.cfg.Path, c.cfg.Write)
		c.record(n, err)
		if err == nil {
			return nil
		}
		c.logf("checkpoint: attempt %d failed: %v", attempt+1, err)
		if attempt >= c.cfg.Retries {
			return err
		}
		t := time.NewTimer(backoff)
		select {
		case <-stop:
			t.Stop()
			return err
		case <-t.C:
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// record folds one attempt's result into the stats.
func (c *Checkpointer) record(n int64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Attempts++
	if err != nil {
		c.stats.Failures++
		c.stats.LastError = err.Error()
		return
	}
	c.stats.Successes++
	c.stats.LastSuccess = time.Now()
	c.stats.LastBytes = n
	c.stats.LastError = ""
}

func (c *Checkpointer) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Stats returns a copy of the current counters.
func (c *Checkpointer) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
