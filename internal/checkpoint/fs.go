package checkpoint

import (
	"io"
	"os"
	"path/filepath"
)

// fileSystem abstracts the handful of filesystem operations the
// checkpoint path needs, so the fault-injection tests can substitute an
// in-memory implementation that crashes at arbitrary byte offsets and
// metadata operations. Production code always uses osFS.
type fileSystem interface {
	// CreateTemp creates a new unique file in dir for writing.
	CreateTemp(dir, pattern string) (writableFile, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file; used only for cleanup of abandoned temps.
	Remove(name string) error
	// Open opens a file for reading.
	Open(name string) (io.ReadCloser, error)
	// SyncDir fsyncs a directory so a preceding rename is durable.
	SyncDir(dir string) error
}

// writableFile is the write side of a checkpoint temp file.
type writableFile interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (writableFile, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
