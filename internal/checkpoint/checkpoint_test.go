package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/packet"
)

// testFilter returns a small filter with `marks` distinct flows marked,
// deterministically derived from seed.
func testFilter(t *testing.T, marks int, seed uint64) *core.Filter {
	t.Helper()
	f, err := core.New(core.WithOrder(6), core.WithVectors(2), core.WithHashes(2),
		core.WithRotateEvery(time.Second), core.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := packet.AddrFrom4(10, 0, 0, 1)
	dst := packet.AddrFrom4(198, 51, 100, 7)
	for i := 0; i < marks; i++ {
		f.Process(packet.Packet{
			Time: time.Duration(i) * time.Millisecond,
			Tuple: packet.Tuple{Src: src, Dst: dst,
				SrcPort: uint16(1024 + i), DstPort: 80, Proto: packet.TCP},
			Dir: packet.Outgoing,
		})
	}
	return f
}

// snapBytes serializes f; identical filter state yields identical bytes,
// so snapshots double as state fingerprints.
func snapBytes(t *testing.T, f *core.Filter) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// loadInto returns a load func capturing the restored filter.
func loadInto(got **core.Filter) func(io.Reader) error {
	return func(r io.Reader) error {
		f, err := core.ReadSnapshot(r)
		if err != nil {
			return err
		}
		*got = f
		return nil
	}
}

// runCrash executes fn, converting a memFS crash panic into a bool.
func runCrash(t *testing.T, fn func()) (crashed bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSentinel); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	fn()
	return false
}

func TestSaveRestoreRoundTripOS(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bmf")
	f := testFilter(t, 50, 1)

	n, err := Save(path, f.WriteSnapshot)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if want := int64(len(snapBytes(t, f))); n != want {
		t.Errorf("Save reported %d bytes, want %d", n, want)
	}

	var got *core.Filter
	res := Restore(path, loadInto(&got))
	if res.Outcome != OutcomePrimary || res.File != path {
		t.Fatalf("Restore = %+v, want primary from %s", res, path)
	}
	if !bytes.Equal(snapBytes(t, got), snapBytes(t, f)) {
		t.Error("restored state differs from saved state")
	}

	// A second save rotates the first checkpoint to .bak.
	f2 := testFilter(t, 80, 1)
	if _, err := Save(path, f2.WriteSnapshot); err != nil {
		t.Fatal(err)
	}
	bak, err := os.ReadFile(path + BackupSuffix)
	if err != nil {
		t.Fatalf("backup missing after rotation: %v", err)
	}
	if !bytes.Equal(bak, snapBytes(t, f)) {
		t.Error("backup does not hold the previous checkpoint")
	}

	// Corrupting the primary falls back to the backup.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got = nil
	res = Restore(path, loadInto(&got))
	if res.Outcome != OutcomeBackup {
		t.Fatalf("Restore after corruption = %v, want backup", res.Outcome)
	}
	if res.PrimaryErr == nil {
		t.Error("primary rejection reason not reported")
	}
	if !bytes.Equal(snapBytes(t, got), snapBytes(t, f)) {
		t.Error("backup restore does not match previous state")
	}
}

func TestRestoreLadderOutcomes(t *testing.T) {
	good := snapBytes(t, testFilter(t, 10, 2))
	const path = "/d/state.bmf"

	cases := []struct {
		name    string
		primary []byte // nil = absent
		backup  []byte
		want    Outcome
	}{
		{"no files", nil, nil, OutcomeColdStartEmpty},
		{"good primary", good, nil, OutcomePrimary},
		{"corrupt primary good backup", good[:len(good)/2], good, OutcomeBackup},
		{"missing primary good backup", nil, good, OutcomeBackup},
		{"both corrupt", []byte("x"), good[:10], OutcomeColdStartCorrupt},
		{"corrupt primary no backup", good[:len(good)-1], nil, OutcomeColdStartCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newMemFS()
			if tc.primary != nil {
				m.files[path] = tc.primary
			}
			if tc.backup != nil {
				m.files[path+BackupSuffix] = tc.backup
			}
			var got *core.Filter
			res := restore(m, path, loadInto(&got))
			if res.Outcome != tc.want {
				t.Fatalf("outcome = %v, want %v (result %+v)", res.Outcome, tc.want, res)
			}
			if res.Outcome.Restored() != (got != nil) {
				t.Errorf("Restored()=%v but filter=%v", res.Outcome.Restored(), got)
			}
			if res.Outcome == OutcomeColdStartEmpty &&
				(!errors.Is(res.PrimaryErr, fs.ErrNotExist) || !errors.Is(res.BackupErr, fs.ErrNotExist)) {
				t.Errorf("cold-start-empty should carry not-exist errors, got %v / %v",
					res.PrimaryErr, res.BackupErr)
			}
		})
	}
}

// Fault-injection writers: a writer that errors mid-stream, a writer that
// violates the io.Writer contract with silent short writes, and a torn
// writer that persists a prefix before failing. None may leave a bad
// checkpoint behind.
type failAfter struct {
	w io.Writer
	n int // bytes accepted before erroring
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("injected write failure")
	}
	if len(p) > f.n {
		n, _ := f.w.Write(p[:f.n]) // torn: prefix lands, then the fault
		f.n = 0
		return n, errors.New("injected torn write")
	}
	f.n -= len(p)
	return f.w.Write(p)
}

type shortWriter struct{ w io.Writer }

func (s shortWriter) Write(p []byte) (int, error) {
	if len(p) > 1 {
		n, err := s.w.Write(p[:len(p)/2])
		return n, err // silent short write, no error
	}
	return s.w.Write(p)
}

func TestSaveWriterFaultsLeavePreviousCheckpoint(t *testing.T) {
	state1 := testFilter(t, 20, 3)
	state2 := testFilter(t, 40, 3)
	snapLen := len(snapBytes(t, state2))
	const path = "/d/state.bmf"

	base := newMemFS()
	if _, err := save(base, path, state1.WriteSnapshot); err != nil {
		t.Fatal(err)
	}

	faults := map[string]func(io.Writer) error{
		"fail immediately": func(w io.Writer) error {
			return state2.WriteSnapshot(&failAfter{w: w})
		},
		"torn mid-stream": func(w io.Writer) error {
			return state2.WriteSnapshot(&failAfter{w: w, n: snapLen / 2})
		},
		"short writes": func(w io.Writer) error {
			return state2.WriteSnapshot(shortWriter{w: w})
		},
	}
	for name, write := range faults {
		t.Run(name, func(t *testing.T) {
			m := base.clone()
			if _, err := save(m, path, write); err == nil {
				t.Fatal("faulty write did not error")
			}
			var got *core.Filter
			res := restore(m, path, loadInto(&got))
			if res.Outcome != OutcomePrimary {
				t.Fatalf("outcome = %v, want primary (previous checkpoint intact)", res.Outcome)
			}
			if !bytes.Equal(snapBytes(t, got), snapBytes(t, state1)) {
				t.Error("previous checkpoint damaged by failed save")
			}
			if n := len(m.names()); n != 1 {
				t.Errorf("temp file litter after failed save: %v", m.names())
			}
		})
	}
}

// TestCrashAtEveryByteOffset is the core acceptance property: whatever
// byte offset a crash kills the checkpoint write at, Restore afterwards
// returns either the previous good state or (once the new file is fully
// published) the new state — never an error-free load of corrupt bytes.
func TestCrashAtEveryByteOffset(t *testing.T) {
	state1 := testFilter(t, 20, 4)
	state2 := testFilter(t, 40, 4)
	snap1 := snapBytes(t, state1)
	snap2 := snapBytes(t, state2)
	const path = "/d/state.bmf"

	base := newMemFS()
	if _, err := save(base, path, state1.WriteSnapshot); err != nil {
		t.Fatal(err)
	}

	for offset := 0; offset <= len(snap2); offset++ {
		m := base.clone()
		m.byteBudget = offset
		crashed := runCrash(t, func() { _, _ = save(m, path, state2.WriteSnapshot) })
		if wantCrash := offset < len(snap2); crashed != wantCrash {
			t.Fatalf("offset %d: crashed=%v, want %v", offset, crashed, wantCrash)
		}
		m.byteBudget = -1

		var got *core.Filter
		res := restore(m, path, loadInto(&got))
		if !res.Outcome.Restored() {
			t.Fatalf("offset %d: restore outcome %v, want a restored state (%+v)",
				offset, res.Outcome, res)
		}
		gotSnap := snapBytes(t, got)
		if !bytes.Equal(gotSnap, snap1) && !bytes.Equal(gotSnap, snap2) {
			t.Fatalf("offset %d: restored state is neither the previous nor the new checkpoint", offset)
		}
		if crashed && !bytes.Equal(gotSnap, snap1) {
			// The crash hit before the rename, so the previous state
			// must be what comes back.
			t.Fatalf("offset %d: crash during temp write must restore the previous state", offset)
		}
	}
}

// TestCrashAtEveryMetadataOp kills the process immediately before each
// filesystem metadata operation of a save (create, fsync, the two
// renames, the directory fsync) and checks the restore ladder lands on a
// good state every time — including the window between the renames where
// only the backup exists.
func TestCrashAtEveryMetadataOp(t *testing.T) {
	state1 := testFilter(t, 20, 5)
	state2 := testFilter(t, 40, 5)
	snap1 := snapBytes(t, state1)
	snap2 := snapBytes(t, state2)
	const path = "/d/state.bmf"

	base := newMemFS()
	if _, err := save(base, path, state1.WriteSnapshot); err != nil {
		t.Fatal(err)
	}

	// Op order in save: CreateTemp, file.Sync, Rename(path→bak),
	// Rename(tmp→path), SyncDir.
	want := []struct {
		desc    string
		outcome Outcome
		state   []byte
	}{
		{"crash before CreateTemp", OutcomePrimary, snap1},
		{"crash before temp fsync", OutcomePrimary, snap1},
		{"crash before backup rotation", OutcomePrimary, snap1},
		{"crash between renames", OutcomeBackup, snap1},
		{"crash before dir fsync", OutcomePrimary, snap2},
		{"no crash", OutcomePrimary, snap2},
	}
	for budget, w := range want {
		m := base.clone()
		m.opBudget = budget
		crashed := runCrash(t, func() { _, _ = save(m, path, state2.WriteSnapshot) })
		if wantCrash := budget < len(want)-1; crashed != wantCrash {
			t.Fatalf("%s: crashed=%v, want %v", w.desc, crashed, wantCrash)
		}
		m.opBudget = -1

		var got *core.Filter
		res := restore(m, path, loadInto(&got))
		if res.Outcome != w.outcome {
			t.Fatalf("%s: outcome %v, want %v (%+v)", w.desc, res.Outcome, w.outcome, res)
		}
		if !bytes.Equal(snapBytes(t, got), w.state) {
			t.Fatalf("%s: wrong state restored", w.desc)
		}
	}
}

// TestEveryBitFlipDetected flips each bit of a checkpoint file in turn:
// the mutated primary must never load (CRC framing), and the ladder must
// fall back to the intact backup.
func TestEveryBitFlipDetected(t *testing.T) {
	state := testFilter(t, 30, 6)
	snap := snapBytes(t, state)
	const path = "/d/state.bmf"

	for bit := 0; bit < len(snap)*8; bit++ {
		mutated := bytes.Clone(snap)
		mutated[bit/8] ^= 1 << (bit % 8)

		if _, err := core.ReadSnapshot(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("bit flip at %d accepted by ReadSnapshot", bit)
		}

		m := newMemFS()
		m.files[path] = mutated
		m.files[path+BackupSuffix] = bytes.Clone(snap)
		var got *core.Filter
		res := restore(m, path, loadInto(&got))
		if res.Outcome != OutcomeBackup {
			t.Fatalf("bit flip at %d: outcome %v, want backup", bit, res.Outcome)
		}
		if !bytes.Equal(snapBytes(t, got), snap) {
			t.Fatalf("bit flip at %d: backup restore wrong", bit)
		}
	}
}

// flakyFS fails the first n CreateTemp calls with an ordinary error (a
// transient failure, not a crash).
type flakyFS struct {
	fileSystem
	failures int
}

func (f *flakyFS) CreateTemp(dir, pattern string) (writableFile, error) {
	if f.failures > 0 {
		f.failures--
		return nil, errors.New("transient storage failure")
	}
	return f.fileSystem.CreateTemp(dir, pattern)
}

func TestCheckpointNowRetriesTransientFailures(t *testing.T) {
	f := testFilter(t, 10, 7)
	c, err := New(Config{
		Path:     "/d/state.bmf",
		Write:    f.WriteSnapshot,
		Backoff:  time.Microsecond,
		Retries:  3,
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.fsys = &flakyFS{fileSystem: newMemFS(), failures: 2}

	if err := c.CheckpointNow(); err != nil {
		t.Fatalf("CheckpointNow with 2 transient failures and 3 retries: %v", err)
	}
	s := c.Stats()
	if s.Attempts != 3 || s.Failures != 2 || s.Successes != 1 {
		t.Errorf("stats = %+v, want 3 attempts / 2 failures / 1 success", s)
	}
	if s.LastError != "" {
		t.Errorf("LastError = %q after a success", s.LastError)
	}
	if s.LastSuccess.IsZero() || s.LastBytes == 0 {
		t.Errorf("success not recorded: %+v", s)
	}
}

func TestCheckpointNowExhaustsRetries(t *testing.T) {
	f := testFilter(t, 10, 8)
	c, err := New(Config{
		Path:    "/d/state.bmf",
		Write:   f.WriteSnapshot,
		Backoff: time.Microsecond,
		Retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.fsys = &flakyFS{fileSystem: newMemFS(), failures: 10}

	if err := c.CheckpointNow(); err == nil {
		t.Fatal("CheckpointNow succeeded with persistent failures")
	}
	s := c.Stats()
	if s.Attempts != 3 || s.Failures != 3 || s.Successes != 0 {
		t.Errorf("stats = %+v, want 3 attempts / 3 failures / 0 successes", s)
	}
	if !strings.Contains(s.LastError, "transient storage failure") {
		t.Errorf("LastError = %q", s.LastError)
	}
}

func TestCheckpointerPeriodicLoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bmf")
	f := testFilter(t, 10, 9)
	c, err := New(Config{
		Path:     path,
		Write:    f.WriteSnapshot,
		Interval: 5 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Error("second Start did not error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Successes < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("periodic loop produced %d checkpoints in 5s", c.Stats().Successes)
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent

	var got *core.Filter
	if res := Restore(path, loadInto(&got)); res.Outcome != OutcomePrimary {
		t.Fatalf("restore after periodic checkpoints: %+v", res)
	}
}

func TestNextIntervalJitterBounds(t *testing.T) {
	c, err := New(Config{
		Path:     "/d/s",
		Write:    func(io.Writer) error { return nil },
		Interval: time.Second,
		Jitter:   0.1,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := time.Duration(float64(time.Second)*0.9), time.Duration(float64(time.Second)*1.1)
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		d := c.nextInterval()
		if d < lo || d > hi {
			t.Fatalf("jittered interval %v outside [%v, %v]", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Errorf("jitter produced only %d distinct intervals", len(seen))
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Path: "/d/s"}); !errors.Is(err, ErrNoWriter) {
		t.Errorf("missing Write: %v", err)
	}
	if _, err := New(Config{Write: func(io.Writer) error { return nil }}); err == nil {
		t.Error("missing Path accepted")
	}
	if _, err := New(Config{Path: "/d/s", Write: func(io.Writer) error { return nil },
		Interval: -time.Second}); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestCountingWriterNormalizesShortWrites(t *testing.T) {
	cw := &countingWriter{w: shortWriter{w: io.Discard}}
	if _, err := cw.Write(make([]byte, 100)); !errors.Is(err, io.ErrShortWrite) {
		t.Errorf("short write surfaced as %v, want io.ErrShortWrite", err)
	}
}

// TestRestoreNeverCommitsPartialState pins the load-callback contract the
// ladder depends on: when a rung fails, nothing the callback captured may
// be used. The ladder guarantees this by only reporting the rung that
// returned nil.
func TestRestoreNeverCommitsPartialState(t *testing.T) {
	good := snapBytes(t, testFilter(t, 10, 10))
	m := newMemFS()
	m.files["/d/state.bmf"] = good[:len(good)-3] // truncated primary
	m.files["/d/state.bmf"+BackupSuffix] = good

	calls := 0
	var got *core.Filter
	res := restore(m, "/d/state.bmf", func(r io.Reader) error {
		calls++
		f, err := core.ReadSnapshot(r)
		if err != nil {
			return err
		}
		got = f
		return nil
	})
	if calls != 2 {
		t.Errorf("ladder made %d load calls, want 2", calls)
	}
	if res.Outcome != OutcomeBackup || got == nil {
		t.Fatalf("res=%+v got=%v", res, got)
	}
	if !bytes.Equal(snapBytes(t, got), good) {
		t.Error("backup state wrong")
	}
	if res.PrimaryErr == nil || !errors.Is(res.PrimaryErr, core.ErrSnapshotCorrupt) {
		t.Errorf("PrimaryErr = %v, want ErrSnapshotCorrupt", res.PrimaryErr)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomePrimary:          "primary",
		OutcomeBackup:           "backup",
		OutcomeColdStartEmpty:   "cold-start-empty",
		OutcomeColdStartCorrupt: "cold-start-corrupt",
		Outcome(9):              "outcome(9)",
	} {
		if got := fmt.Sprint(o); got != want {
			t.Errorf("Outcome(%d) = %q, want %q", o, got, want)
		}
	}
}
