package bloom

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"bitmapfilter/internal/xrand"
)

func key(i uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return b[:]
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, 3, 0); err == nil {
		t.Error("order 3 accepted")
	}
	if _, err := New(10, 0, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(10, 3, 0); err != nil {
		t.Errorf("valid args rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(1,0,0) did not panic")
		}
	}()
	MustNew(1, 0, 0)
}

func TestNoFalseNegatives(t *testing.T) {
	f := MustNew(16, 3, 1)
	const n = 5000
	for i := uint64(0); i < n; i++ {
		f.Add(key(i))
	}
	for i := uint64(0); i < n; i++ {
		if !f.Contains(key(i)) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	if f.Added() != n {
		t.Errorf("Added = %d, want %d", f.Added(), n)
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	fn := func(keys [][]byte) bool {
		f := MustNew(12, 4, 2)
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateNearTheory(t *testing.T) {
	// Insert c keys into a 2^16-bit filter with m=4 and measure the FP
	// rate against the (1-e^{-cm/2^n})^m estimate.
	const (
		order = 16
		m     = 4
		c     = 8000
	)
	f := MustNew(order, m, 3)
	for i := uint64(0); i < c; i++ {
		f.Add(key(i))
	}
	const probes = 200000
	fps := 0
	for i := uint64(0); i < probes; i++ {
		if f.Contains(key(1_000_000 + i)) {
			fps++
		}
	}
	got := float64(fps) / probes
	want := ExpectedFalsePositiveRate(c, m, order)
	if got > want*1.6 || got < want*0.4 {
		t.Errorf("measured FP rate %v, theory %v", got, want)
	}
}

func TestEmptyFilterRejectsEverything(t *testing.T) {
	f := MustNew(12, 3, 4)
	for i := uint64(0); i < 1000; i++ {
		if f.Contains(key(i)) {
			t.Fatalf("empty filter contains key %d", i)
		}
	}
}

func TestReset(t *testing.T) {
	f := MustNew(12, 3, 5)
	f.Add([]byte("x"))
	if !f.Contains([]byte("x")) {
		t.Fatal("Add/Contains broken")
	}
	f.Reset()
	if f.Contains([]byte("x")) {
		t.Error("Reset filter still contains key")
	}
	if f.Added() != 0 {
		t.Errorf("Added after Reset = %d", f.Added())
	}
	if f.Utilization() != 0 {
		t.Errorf("Utilization after Reset = %v", f.Utilization())
	}
}

func TestSizeAccessors(t *testing.T) {
	f := MustNew(20, 3, 0)
	if f.Bits() != 1<<20 {
		t.Errorf("Bits = %d", f.Bits())
	}
	if f.Bytes() != (1<<20)/8 {
		t.Errorf("Bytes = %d", f.Bytes())
	}
	if f.M() != 3 {
		t.Errorf("M = %d", f.M())
	}
}

func TestUtilizationGrowsWithKeys(t *testing.T) {
	f := MustNew(14, 3, 6)
	prev := f.Utilization()
	for batch := 0; batch < 5; batch++ {
		for i := uint64(0); i < 500; i++ {
			f.Add(key(uint64(batch)*500 + i))
		}
		u := f.Utilization()
		if u <= prev {
			t.Fatalf("utilization did not grow: %v -> %v", prev, u)
		}
		prev = u
	}
	if prev >= 1 {
		t.Errorf("utilization saturated unexpectedly: %v", prev)
	}
}

func TestFalsePositiveRateFromUtilization(t *testing.T) {
	f := MustNew(14, 2, 7)
	for i := uint64(0); i < 2000; i++ {
		f.Add(key(i))
	}
	want := math.Pow(f.Utilization(), 2)
	if got := f.FalsePositiveRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("FalsePositiveRate = %v, want %v", got, want)
	}
}

func TestExpectedFalsePositiveRateMonotonic(t *testing.T) {
	// More keys => higher FP rate; more bits => lower FP rate.
	if ExpectedFalsePositiveRate(1000, 3, 16) >= ExpectedFalsePositiveRate(10000, 3, 16) {
		t.Error("FP rate not increasing in c")
	}
	if ExpectedFalsePositiveRate(1000, 3, 20) >= ExpectedFalsePositiveRate(1000, 3, 14) {
		t.Error("FP rate not decreasing in order")
	}
}

func TestOptimalM(t *testing.T) {
	tests := []struct {
		c     uint64
		order uint
		want  int
	}{
		{c: 0, order: 16, want: 1},
		// ln2 * 2^16 / 4543 ≈ 10.0
		{c: 4543, order: 16, want: 10},
		// Huge c clamps at 1.
		{c: 1 << 30, order: 10, want: 1},
		// Tiny c clamps at MaxFunctions.
		{c: 1, order: 20, want: 64},
	}
	for _, tt := range tests {
		if got := OptimalM(tt.c, tt.order); got != tt.want {
			t.Errorf("OptimalM(%d, %d) = %d, want %d", tt.c, tt.order, got, tt.want)
		}
	}
}

func TestOptimalMMinimizesRate(t *testing.T) {
	const (
		c     = 15000
		order = 18
	)
	best := OptimalM(c, order)
	rateAt := func(m int) float64 { return ExpectedFalsePositiveRate(c, m, order) }
	if rateAt(best) > rateAt(best-1) || rateAt(best) > rateAt(best+1) {
		// Allow rounding to the neighbor: the minimum of the continuous
		// curve may fall between integers.
		lo := math.Min(rateAt(best-1), rateAt(best+1))
		if rateAt(best) > lo*1.02 {
			t.Errorf("OptimalM=%d rate %v not near minimum (neighbors %v, %v)",
				best, rateAt(best), rateAt(best-1), rateAt(best+1))
		}
	}
}

func TestDifferentSeedsIndependent(t *testing.T) {
	// The same keys inserted under different seeds should produce
	// different bit patterns (utilization identical-ish but membership of
	// un-inserted keys decorrelated).
	a := MustNew(12, 3, 1)
	b := MustNew(12, 3, 999)
	for i := uint64(0); i < 800; i++ {
		a.Add(key(i))
		b.Add(key(i))
	}
	r := xrand.New(8)
	bothPositive, total := 0, 0
	for i := 0; i < 50000; i++ {
		k := key(uint64(1_000_000) + r.Uint64()%1_000_000)
		pa, pb := a.Contains(k), b.Contains(k)
		if pa && pb {
			bothPositive++
		}
		total++
	}
	// Independent filters: P(both FP) ≈ P(FP)^2, i.e. rare.
	if float64(bothPositive)/float64(total) > 0.05 {
		t.Errorf("filters with different seeds correlate: %d/%d joint FPs", bothPositive, total)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := MustNew(20, 3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add(key(uint64(i)))
	}
}

func BenchmarkContains(b *testing.B) {
	f := MustNew(20, 3, 1)
	for i := uint64(0); i < 100000; i++ {
		f.Add(key(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		if f.Contains(key(uint64(i))) {
			hits++
		}
	}
	_ = hits
}
