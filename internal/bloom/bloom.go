// Package bloom implements the classic Bloom filter (Bloom, 1970) cited by
// the paper as the building block of the bitmap filter: each column of the
// {k×n}-bitmap "represents a bit-vector of a bloom filter" (§3.3, Figure 3).
//
// The filter is an approximate set: Add never produces false negatives and
// Contains may produce false positives at a rate that, for c inserted keys,
// m hash functions and 2^n bits, is approximately (1 - e^{-cm/2^n})^m, which
// the paper simplifies to (cm/2^n)^m under low utilization (Equation 2).
package bloom

import (
	"fmt"
	"math"

	"bitmapfilter/internal/bitvector"
	"bitmapfilter/internal/hashfam"
)

// Filter is a Bloom filter over byte-string keys. It is not safe for
// concurrent use; wrap it with external synchronization if needed.
type Filter struct {
	vec     *bitvector.Vector
	hashes  *hashfam.Family
	scratch []uint64
	added   uint64
}

// New returns an empty Bloom filter with 2^order bits and m hash functions
// derived from seed.
func New(order uint, m int, seed uint64) (*Filter, error) {
	vec, err := bitvector.New(order)
	if err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	fam, err := hashfam.New(m, seed)
	if err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	return &Filter{
		vec:     vec,
		hashes:  fam,
		scratch: make([]uint64, 0, m),
	}, nil
}

// MustNew is New for statically known arguments; it panics on error.
func MustNew(order uint, m int, seed uint64) *Filter {
	f, err := New(order, m, seed)
	if err != nil {
		panic(err)
	}
	return f
}

// Add inserts key into the filter.
func (f *Filter) Add(key []byte) {
	f.scratch = f.hashes.Indexes(f.scratch[:0], key)
	for _, h := range f.scratch {
		f.vec.Set(h)
	}
	f.added++
}

// Contains reports whether key may be in the filter. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(key []byte) bool {
	f.scratch = f.hashes.Indexes(f.scratch[:0], key)
	for _, h := range f.scratch {
		if !f.vec.Test(h) {
			return false
		}
	}
	return true
}

// Reset clears the filter back to empty.
func (f *Filter) Reset() {
	f.vec.Reset()
	f.added = 0
}

// Added returns the number of Add calls since the last Reset.
func (f *Filter) Added() uint64 { return f.added }

// Utilization returns the fraction of set bits, U = b/2^n in the paper.
func (f *Filter) Utilization() float64 { return f.vec.Utilization() }

// Bits returns the size of the underlying bit vector in bits.
func (f *Filter) Bits() uint64 { return f.vec.Len() }

// Bytes returns the memory footprint of the bit array in bytes.
func (f *Filter) Bytes() uint64 { return f.vec.Bytes() }

// M returns the number of hash functions.
func (f *Filter) M() int { return f.hashes.M() }

// FalsePositiveRate estimates the current false-positive probability from
// the exact utilization: p = U^m (Equation 1 of the paper).
func (f *Filter) FalsePositiveRate() float64 {
	return math.Pow(f.Utilization(), float64(f.M()))
}

// ExpectedFalsePositiveRate returns the textbook estimate
// (1 - e^{-cm/2^n})^m for c inserted keys, m hashes and 2^n bits.
func ExpectedFalsePositiveRate(c uint64, m int, order uint) float64 {
	bits := float64(uint64(1) << order)
	inner := 1 - math.Exp(-float64(c)*float64(m)/bits)
	return math.Pow(inner, float64(m))
}

// OptimalM returns the m that minimizes the false-positive rate for an
// expected c keys in a 2^order-bit vector: m* = ln 2 · 2^n / c for the exact
// model. (The paper's simplified model yields m* = e⁻¹·2^n/c; see
// internal/model for that form.) The result is clamped to at least 1.
func OptimalM(c uint64, order uint) int {
	if c == 0 {
		return 1
	}
	bits := float64(uint64(1) << order)
	m := int(math.Round(math.Ln2 * bits / float64(c)))
	if m < 1 {
		return 1
	}
	if m > hashfam.MaxFunctions {
		return hashfam.MaxFunctions
	}
	return m
}
