package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"bitmapfilter/internal/xrand"
)

func TestWelford(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Error("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v", w.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v", w.Variance())
	}
	if math.Abs(w.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", w.StdDev())
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range vals {
			w.Add(v)
			sum += v
		}
		mean := sum / float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		variance := ss / float64(len(vals)-1)
		scale := math.Max(1, math.Abs(variance))
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Variance()-variance)/scale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 || s.CDFAt(1) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Error("empty sample not neutral")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.N() != 100 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("Q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("Q1 = %v", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v", got)
	}
	if got := s.Quantile(0.95); math.Abs(got-95.05) > 1e-9 {
		t.Errorf("p95 = %v", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Max(); got != 100 {
		t.Errorf("Max = %v", got)
	}
}

func TestSampleCDF(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.CDFAt(5); got != 0.5 {
		t.Errorf("CDF(5) = %v", got)
	}
	if got := s.CDFAt(0.5); got != 0 {
		t.Errorf("CDF(0.5) = %v", got)
	}
	if got := s.CDFAt(10); got != 1 {
		t.Errorf("CDF(10) = %v", got)
	}
	if got := s.CDFAt(4.5); got != 0.4 {
		t.Errorf("CDF(4.5) = %v", got)
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	// Adding after a quantile query must re-sort correctly.
	var s Sample
	s.Add(5)
	s.Add(1)
	_ = s.Quantile(0.5)
	s.Add(3)
	if got := s.Quantile(0.5); got != 3 {
		t.Errorf("median after late add = %v", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10); !errors.Is(err, ErrArgs) {
		t.Error("binWidth 0 accepted")
	}
	if _, err := NewHistogram(1, 0); !errors.Is(err, ErrArgs) {
		t.Error("bins 0 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewHistogram did not panic")
		}
	}()
	MustNewHistogram(0, 0)
}

func TestHistogramBinning(t *testing.T) {
	h := MustNewHistogram(10, 5) // bins [0,10) [10,20) ... [40,50)
	for _, x := range []float64{0, 9.99, 10, 25, 49.9, 50, 1000, -3} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(0) != 2 {
		t.Errorf("bin0 = %d", h.Count(0))
	}
	if h.Count(1) != 1 {
		t.Errorf("bin1 = %d", h.Count(1))
	}
	if h.Count(2) != 1 {
		t.Errorf("bin2 = %d", h.Count(2))
	}
	if h.Count(4) != 1 {
		t.Errorf("bin4 = %d", h.Count(4))
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d", h.Overflow())
	}
	if h.Count(-1) != 0 || h.Count(99) != 0 {
		t.Error("out-of-range Count not zero")
	}
	if h.Bins() != 5 {
		t.Errorf("Bins = %d", h.Bins())
	}
	if h.BinStart(3) != 30 {
		t.Errorf("BinStart(3) = %v", h.BinStart(3))
	}
}

func TestHistogramCDF(t *testing.T) {
	h := MustNewHistogram(1, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if got := h.CDFAt(50); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CDF(50) = %v", got)
	}
	if got := h.CDFAt(100); got != 1 {
		t.Errorf("CDF(100) = %v", got)
	}
	var empty Histogram
	if empty.CDFAt(1) != 0 {
		t.Error("empty CDF nonzero")
	}
}

func TestHistogramPeaks(t *testing.T) {
	h := MustNewHistogram(1, 10)
	// Build counts: 0 5 1 1 8 1 0 3 0 0 → peaks at 1, 4, 7.
	addN := func(bin int, n int) {
		for i := 0; i < n; i++ {
			h.Add(float64(bin))
		}
	}
	addN(1, 5)
	addN(2, 1)
	addN(3, 1)
	addN(4, 8)
	addN(5, 1)
	addN(7, 3)
	peaks := h.Peaks(2)
	want := []int{1, 4, 7}
	if len(peaks) != len(want) {
		t.Fatalf("peaks = %v, want %v", peaks, want)
	}
	for i := range want {
		if peaks[i] != want[i] {
			t.Errorf("peaks = %v, want %v", peaks, want)
		}
	}
	// Raising the threshold filters small peaks.
	if p := h.Peaks(4); len(p) != 2 {
		t.Errorf("Peaks(4) = %v", p)
	}
}

func TestTimeSeries(t *testing.T) {
	if _, err := NewTimeSeries(0, 5); !errors.Is(err, ErrArgs) {
		t.Error("interval 0 accepted")
	}
	if _, err := NewTimeSeries(1, 0); !errors.Is(err, ErrArgs) {
		t.Error("n 0 accepted")
	}
	ts := MustNewTimeSeries(10, 6) // 60 seconds in 10s buckets
	ts.Add(0, 1)
	ts.Add(9.99, 1)
	ts.Add(10, 5)
	ts.Add(59.9, 2)
	ts.Add(60, 100) // out of range: ignored
	ts.Add(-5, 100) // negative: ignored
	if ts.Len() != 6 {
		t.Errorf("Len = %d", ts.Len())
	}
	if ts.At(0) != 2 {
		t.Errorf("At(0) = %v", ts.At(0))
	}
	if ts.At(1) != 5 {
		t.Errorf("At(1) = %v", ts.At(1))
	}
	if ts.At(5) != 2 {
		t.Errorf("At(5) = %v", ts.At(5))
	}
	if ts.At(-1) != 0 || ts.At(9) != 0 {
		t.Error("out-of-range At not zero")
	}
	if ts.BucketStart(3) != 30 {
		t.Errorf("BucketStart(3) = %v", ts.BucketStart(3))
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewTimeSeries did not panic")
		}
	}()
	MustNewTimeSeries(0, 0)
}

func TestScatterFitPerfectLine(t *testing.T) {
	var s Scatter
	for i := 0; i < 50; i++ {
		x := float64(i)
		s.Add(x, 3+2*x)
	}
	a, b := s.Fit()
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Errorf("Fit = %v + %v x", a, b)
	}
	if c := s.Correlation(); math.Abs(c-1) > 1e-12 {
		t.Errorf("Correlation = %v", c)
	}
	if s.N() != 50 {
		t.Errorf("N = %d", s.N())
	}
	x, y := s.Point(10)
	if x != 10 || y != 23 {
		t.Errorf("Point(10) = %v,%v", x, y)
	}
}

func TestScatterFitNoisy(t *testing.T) {
	var s Scatter
	r := xrand.New(3)
	for i := 0; i < 5000; i++ {
		x := r.Float64() * 10
		s.Add(x, 1+0.5*x+0.01*r.Normal())
	}
	a, b := s.Fit()
	if math.Abs(a-1) > 0.01 || math.Abs(b-0.5) > 0.01 {
		t.Errorf("Fit = %v + %v x", a, b)
	}
	if c := s.Correlation(); c < 0.99 {
		t.Errorf("Correlation = %v", c)
	}
}

func TestScatterDegenerate(t *testing.T) {
	var s Scatter
	if a, b := s.Fit(); a != 0 || b != 0 {
		t.Error("empty Fit nonzero")
	}
	if s.Correlation() != 0 {
		t.Error("empty Correlation nonzero")
	}
	s.Add(1, 5)
	if a, b := s.Fit(); a != 0 || b != 0 {
		t.Error("single-point Fit nonzero")
	}
	// Vertical line: zero x-variance.
	s.Add(1, 7)
	if _, b := s.Fit(); b != 0 {
		t.Error("vertical line slope nonzero")
	}
	if s.Correlation() != 0 {
		t.Error("zero-variance Correlation nonzero")
	}
}
