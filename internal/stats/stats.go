// Package stats provides the small statistical toolkit used to regenerate
// the paper's figures: histograms and CDFs (Figure 2), per-interval time
// series (Figure 5), scatter summaries with a least-squares slope
// (Figure 4), and streaming moments.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrArgs is returned for invalid constructor arguments.
var ErrArgs = errors.New("stats: invalid arguments")

// Welford accumulates streaming mean and variance. The zero value is ready
// to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with <2 observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Sample collects raw observations for exact quantiles. Suitable for the
// per-experiment sample counts in this repository (≤ tens of millions).
type Sample struct {
	values []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.values = append(s.values, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

func (s *Sample) sortValues() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation,
// or 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sortValues()
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[len(s.values)-1]
	}
	pos := q * float64(len(s.values)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.values) {
		return s.values[lo]
	}
	return s.values[lo]*(1-frac) + s.values[lo+1]*frac
}

// CDFAt returns the empirical P(X ≤ x), or 0 for an empty sample.
func (s *Sample) CDFAt(x float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sortValues()
	// First index with value > x.
	idx := sort.SearchFloat64s(s.values, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(s.values))
}

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sortValues()
	return s.values[len(s.values)-1]
}

// Histogram counts observations into fixed-width bins over [0, binWidth ×
// bins); larger values land in an overflow bin, negative values in an
// underflow bin.
type Histogram struct {
	binWidth  float64
	counts    []uint64
	underflow uint64
	overflow  uint64
	total     uint64
}

// NewHistogram returns a histogram with the given number of equal-width
// bins.
func NewHistogram(binWidth float64, bins int) (*Histogram, error) {
	if binWidth <= 0 || bins <= 0 {
		return nil, fmt.Errorf("%w: binWidth=%v bins=%d", ErrArgs, binWidth, bins)
	}
	return &Histogram{binWidth: binWidth, counts: make([]uint64, bins)}, nil
}

// MustNewHistogram is NewHistogram for statically known arguments.
func MustNewHistogram(binWidth float64, bins int) *Histogram {
	h, err := NewHistogram(binWidth, bins)
	if err != nil {
		panic(err)
	}
	return h
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < 0 {
		h.underflow++
		return
	}
	bin := int(x / h.binWidth)
	if bin >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[bin]++
}

// Total returns the number of observations including under/overflow.
func (h *Histogram) Total() uint64 { return h.total }

// Bins returns the number of regular bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the count in bin i.
func (h *Histogram) Count(i int) uint64 {
	if i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i]
}

// Overflow returns the overflow count.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// BinStart returns the lower edge of bin i.
func (h *Histogram) BinStart(i int) float64 { return float64(i) * h.binWidth }

// CDFAt returns the fraction of observations ≤ x (bin-resolution
// approximation: whole bins whose upper edge is ≤ x are counted).
func (h *Histogram) CDFAt(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var cum uint64 = h.underflow
	for i, c := range h.counts {
		if h.BinStart(i)+h.binWidth <= x {
			cum += c
			continue
		}
		break
	}
	return float64(cum) / float64(h.total)
}

// Peaks returns indexes of local maxima whose count is at least minCount,
// used to locate the 30/60-second port-reuse peaks of Figure 2-b.
func (h *Histogram) Peaks(minCount uint64) []int {
	var peaks []int
	for i := range h.counts {
		c := h.counts[i]
		if c < minCount {
			continue
		}
		left := uint64(0)
		if i > 0 {
			left = h.counts[i-1]
		}
		right := uint64(0)
		if i+1 < len(h.counts) {
			right = h.counts[i+1]
		}
		if c > left && c >= right {
			peaks = append(peaks, i)
		}
	}
	return peaks
}

// TimeSeries buckets counts by fixed time intervals, for the
// packets-per-interval plots of Figure 5.
type TimeSeries struct {
	interval float64 // seconds per bucket
	buckets  []float64
}

// NewTimeSeries returns a series covering n intervals of the given width in
// seconds.
func NewTimeSeries(intervalSec float64, n int) (*TimeSeries, error) {
	if intervalSec <= 0 || n <= 0 {
		return nil, fmt.Errorf("%w: interval=%v n=%d", ErrArgs, intervalSec, n)
	}
	return &TimeSeries{interval: intervalSec, buckets: make([]float64, n)}, nil
}

// MustNewTimeSeries is NewTimeSeries for statically known arguments.
func MustNewTimeSeries(intervalSec float64, n int) *TimeSeries {
	ts, err := NewTimeSeries(intervalSec, n)
	if err != nil {
		panic(err)
	}
	return ts
}

// Add accumulates v at time tSec; observations outside the covered range
// are ignored.
func (ts *TimeSeries) Add(tSec, v float64) {
	if tSec < 0 {
		return
	}
	b := int(tSec / ts.interval)
	if b >= len(ts.buckets) {
		return
	}
	ts.buckets[b] += v
}

// Len returns the number of buckets.
func (ts *TimeSeries) Len() int { return len(ts.buckets) }

// At returns the accumulated value of bucket i.
func (ts *TimeSeries) At(i int) float64 {
	if i < 0 || i >= len(ts.buckets) {
		return 0
	}
	return ts.buckets[i]
}

// BucketStart returns the start time in seconds of bucket i.
func (ts *TimeSeries) BucketStart(i int) float64 { return float64(i) * ts.interval }

// Scatter collects (x, y) points and fits y = a + b·x by least squares, the
// summary used for the Figure 4 drop-rate comparison ("the gray-dashed line
// has a slope of 1.0").
type Scatter struct {
	xs, ys []float64
}

// Add appends one point.
func (s *Scatter) Add(x, y float64) {
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
}

// N returns the number of points.
func (s *Scatter) N() int { return len(s.xs) }

// Point returns the i-th point.
func (s *Scatter) Point(i int) (x, y float64) { return s.xs[i], s.ys[i] }

// Fit returns the least-squares intercept and slope. With fewer than two
// points it returns (0, 0).
func (s *Scatter) Fit() (intercept, slope float64) {
	n := float64(len(s.xs))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range s.xs {
		sx += s.xs[i]
		sy += s.ys[i]
		sxx += s.xs[i] * s.xs[i]
		sxy += s.xs[i] * s.ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return intercept, slope
}

// Correlation returns the Pearson correlation of the points (0 with <2
// points or zero variance).
func (s *Scatter) Correlation() float64 {
	n := float64(len(s.xs))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range s.xs {
		sx += s.xs[i]
		sy += s.ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range s.xs {
		dx, dy := s.xs[i]-mx, s.ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
