package filtering_test

import (
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// recordingStage wraps a BatchFilter and records every packet it is fed,
// so tests can prove what a downstream stage did and did not observe.
type recordingStage struct {
	filtering.BatchFilter
	seen []packet.Packet
}

func (r *recordingStage) Process(pkt packet.Packet) filtering.Verdict {
	r.seen = append(r.seen, pkt)
	return r.BatchFilter.Process(pkt)
}

func (r *recordingStage) ProcessBatch(pkts []packet.Packet) []filtering.Verdict {
	r.seen = append(r.seen, pkts...)
	return r.BatchFilter.ProcessBatch(pkts)
}

func (r *recordingStage) ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	r.seen = append(r.seen, pkts...)
	return r.BatchFilter.ProcessBatchInto(pkts, out)
}

// chainTrace builds a deterministic mixed trace: outgoing packets from a
// client prefix establish flows, incoming packets split between replies
// (admitted) and random scans (dropped by a warm filter).
func chainTrace(n int) []packet.Packet {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	pkts := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		t := time.Duration(i) * time.Millisecond
		r := next()
		client := packet.AddrFrom4(10, 0, byte(r>>8), byte(r))
		remote := packet.AddrFrom4(198, 51, byte(r>>24), byte(r>>16))
		tup := packet.Tuple{
			Src: client, SrcPort: uint16(r>>32)%1024 + 1024,
			Dst: remote, DstPort: 80, Proto: packet.TCP,
		}
		if r%3 == 0 {
			pkts = append(pkts, packet.Packet{Time: t, Tuple: tup, Dir: packet.Outgoing, Length: 100})
		} else if r%3 == 1 {
			// Reply to the flow just opened (if any previous outgoing
			// used this tuple it is admitted; otherwise it scans).
			pkts = append(pkts, packet.Packet{Time: t, Tuple: tup.Reverse(), Dir: packet.Incoming, Length: 100})
		} else {
			scan := packet.Tuple{
				Src: remote, SrcPort: 443,
				Dst: client, DstPort: uint16(r >> 40), Proto: packet.TCP,
			}
			pkts = append(pkts, packet.Packet{Time: t, Tuple: scan, Dir: packet.Incoming, Length: 60})
		}
	}
	return pkts
}

func mustFilter(t *testing.T, opts ...core.Option) *core.Filter {
	t.Helper()
	f, err := core.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestChainShortCircuit proves the defining property: a packet dropped by
// stage i is never observed by stage i+1 — on both the per-packet and the
// batch paths, which must agree packet for packet.
func TestChainShortCircuit(t *testing.T) {
	for _, batched := range []bool{false, true} {
		name := "per-packet"
		if batched {
			name = "batch"
		}
		t.Run(name, func(t *testing.T) {
			front := mustFilter(t, core.WithOrder(12), core.WithSeed(1))
			rec := &recordingStage{BatchFilter: mustFilter(t, core.WithOrder(12), core.WithSeed(2))}
			ch := filtering.Chain(front, rec)

			// Reference copy of the front stage decides expectations.
			ref := mustFilter(t, core.WithOrder(12), core.WithSeed(1))
			pkts := chainTrace(20_000)
			var wantSeen []packet.Packet
			wantVerdicts := make([]filtering.Verdict, len(pkts))
			for i, p := range pkts {
				wantVerdicts[i] = ref.Process(p)
				if wantVerdicts[i] == filtering.Pass {
					wantSeen = append(wantSeen, p)
				}
			}

			var got []filtering.Verdict
			if batched {
				for off := 0; off < len(pkts); off += 700 {
					end := off + 700
					if end > len(pkts) {
						end = len(pkts)
					}
					got = append(got, ch.ProcessBatch(pkts[off:end])...)
				}
			} else {
				for _, p := range pkts {
					got = append(got, ch.Process(p))
				}
			}

			if len(rec.seen) != len(wantSeen) {
				t.Fatalf("stage 2 saw %d packets, want %d", len(rec.seen), len(wantSeen))
			}
			for i := range wantSeen {
				if rec.seen[i] != wantSeen[i] {
					t.Fatalf("stage 2 packet %d = %+v, want %+v", i, rec.seen[i], wantSeen[i])
				}
			}
			drops := 0
			for i := range got {
				if wantVerdicts[i] == filtering.Drop && got[i] != filtering.Drop {
					t.Fatalf("packet %d: front dropped but chain returned %v", i, got[i])
				}
				if wantVerdicts[i] == filtering.Drop {
					drops++
				}
			}
			if drops == 0 {
				t.Fatal("trace exercised no drops; test is vacuous")
			}
		})
	}
}

// TestChainBatchMatchesPerPacket is the chain differential: the batched
// chain must be verdict- and state-identical to per-packet chaining over
// the same trace.
func TestChainBatchMatchesPerPacket(t *testing.T) {
	mk := func() filtering.BatchFilter {
		return filtering.Chain(
			mustFilter(t, core.WithOrder(12), core.WithSeed(7)),
			mustFilter(t, core.WithOrder(11), core.WithSeed(8)),
			mustFilter(t, core.WithOrder(10), core.WithSeed(9)),
		)
	}
	seq, bat := mk(), mk()
	pkts := chainTrace(50_000)

	want := make([]filtering.Verdict, 0, len(pkts))
	for _, p := range pkts {
		want = append(want, seq.Process(p))
	}
	var got, buf []filtering.Verdict
	for off := 0; off < len(pkts); off += 513 { // unaligned chunks
		end := off + 513
		if end > len(pkts) {
			end = len(pkts)
		}
		buf = bat.ProcessBatchInto(pkts[off:end], buf)
		got = append(got, buf...)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d: batch %v, per-packet %v", i, got[i], want[i])
		}
	}
	if seq.Counters() != bat.Counters() {
		t.Errorf("counters diverged: %+v vs %+v", seq.Counters(), bat.Counters())
	}
}

// TestChainIdentities pins the degenerate forms: no stages passes
// everything, one stage is returned unchanged.
func TestChainIdentities(t *testing.T) {
	empty := filtering.Chain()
	if empty.Name() != "chain()" {
		t.Errorf("Name = %q", empty.Name())
	}
	pkts := chainTrace(100)
	for _, p := range pkts {
		if v := empty.Process(p); v != filtering.Pass {
			t.Fatalf("empty chain dropped %+v", p)
		}
	}
	out := empty.ProcessBatchInto(pkts, nil)
	for i, v := range out {
		if v != filtering.Pass {
			t.Fatalf("empty chain batch verdict %d = %v", i, v)
		}
	}
	if c := empty.Counters(); c.InDropped != 0 || c.InPackets == 0 {
		t.Errorf("empty chain counters: %+v", c)
	}
	if empty.MemoryBytes() != 0 {
		t.Errorf("empty chain MemoryBytes = %d", empty.MemoryBytes())
	}

	f := mustFilter(t, core.WithOrder(10))
	if got := filtering.Chain(f); got != filtering.BatchFilter(f) {
		t.Error("Chain(f) did not return f unchanged")
	}
}

// TestChainSurfaces covers the aggregate PacketFilter surface: Name,
// MemoryBytes sums stages, AdvanceTo reaches every stage (even ones a
// short-circuit would starve), and the empty-batch contract holds.
func TestChainSurfaces(t *testing.T) {
	a := mustFilter(t, core.WithOrder(12), core.WithSeed(1))
	b := mustFilter(t, core.WithOrder(10), core.WithSeed(2))
	ch := filtering.Chain(a, b)

	if want := a.MemoryBytes() + b.MemoryBytes(); ch.MemoryBytes() != want {
		t.Errorf("MemoryBytes = %d, want %d", ch.MemoryBytes(), want)
	}
	if ch.Name() != "chain("+a.Name()+","+b.Name()+")" {
		t.Errorf("Name = %q", ch.Name())
	}

	ch.AdvanceTo(47 * time.Second)
	if a.Rotations() == 0 || b.Rotations() == 0 {
		t.Errorf("AdvanceTo did not reach both stages: %d, %d", a.Rotations(), b.Rotations())
	}

	if got := ch.ProcessBatch(nil); got != nil {
		t.Errorf("ProcessBatch(nil) = %v", got)
	}
	buf := make([]filtering.Verdict, 3, 8)
	if got := ch.ProcessBatchInto(nil, buf); len(got) != 0 || cap(got) != cap(buf) {
		t.Errorf("ProcessBatchInto(nil, buf): len %d cap %d", len(got), cap(got))
	}
}
