// Package filtering defines the small contract every packet filter in this
// repository implements — the bitmap filter of internal/core and the three
// SPI baselines of internal/flowtable — so that simulations and benchmarks
// can drive them interchangeably.
//
// Filters are driven by virtual time: each packet carries its observation
// timestamp, and filters advance their timers (bitmap rotation, flow-table
// garbage collection) lazily from those timestamps. AdvanceTo exists for
// callers that need to move time forward without traffic.
package filtering

import (
	"time"

	"bitmapfilter/internal/packet"
)

// Verdict is a filter's decision for one packet.
type Verdict uint8

// Filter decisions.
const (
	Pass Verdict = iota + 1
	Drop
)

// String returns "pass" or "drop".
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	default:
		return "verdict(?)"
	}
}

// PacketFilter is the common interface of all filters under test.
type PacketFilter interface {
	// Process inspects one packet and returns the verdict. Packet
	// timestamps must be non-decreasing; filters use them to drive
	// expiry.
	Process(pkt packet.Packet) Verdict
	// AdvanceTo moves the filter's clock to now, firing any pending
	// rotation or garbage-collection work, without observing a packet.
	AdvanceTo(now time.Duration)
	// Name identifies the filter in reports.
	Name() string
	// MemoryBytes estimates the filter's current state footprint.
	MemoryBytes() uint64
	// Counters returns cumulative packet counters.
	Counters() Counters
}

// BatchFilter is a PacketFilter with a batched data plane. Batch processing
// is behaviorally identical to calling Process per packet, in order — same
// verdicts, counters and expiry work — but amortizes per-packet overheads
// (lock acquisitions, clock reads, verdict-slice allocation) across the
// whole batch. The bitmap filter implements it natively; the SPI baselines
// satisfy it through the per-packet fallback in this package.
type BatchFilter interface {
	PacketFilter
	// ProcessBatch processes pkts in order and returns one verdict per
	// packet. For an empty batch (nil or zero-length) it returns nil,
	// never a non-nil empty slice. The returned slice is freshly
	// allocated; use ProcessBatchInto on hot paths.
	ProcessBatch(pkts []packet.Packet) []Verdict
	// ProcessBatchInto processes pkts in order, storing one verdict per
	// packet in out's backing array, and returns the verdict slice of
	// length len(pkts). When cap(out) >= len(pkts) the backing array is
	// reused and the call performs no allocation; otherwise a larger
	// slice is allocated, exactly like append. Every element of the
	// returned slice is overwritten, so dirty buffers from previous
	// batches may be passed as-is. out may be nil. For an empty batch
	// the result is out[:0] — length 0 with out's backing array
	// retained, so a packet pump that recycles its verdict buffer does
	// not lose it across an idle poll (contrast ProcessBatch, which
	// returns nil). The empty-batch behavior of every implementation is
	// pinned by TestEmptyBatchContract in this package.
	ProcessBatchInto(pkts []packet.Packet, out []Verdict) []Verdict
}

// GrowVerdicts returns a verdict slice of length n backed by out's array
// when cap(out) >= n, allocating only on growth. This is the resizing rule
// every ProcessBatchInto implementation shares; contents are unspecified
// until written.
func GrowVerdicts(out []Verdict, n int) []Verdict {
	if cap(out) < n {
		return make([]Verdict, n)
	}
	return out[:n]
}

// ProcessBatch drives f per packet and returns freshly allocated verdicts —
// the generic fallback for filters with no native batch path.
func ProcessBatch(f PacketFilter, pkts []packet.Packet) []Verdict {
	if len(pkts) == 0 {
		return nil
	}
	return ProcessBatchInto(f, pkts, nil)
}

// ProcessBatchInto drives f per packet, filling out under the
// BatchFilter.ProcessBatchInto contract.
func ProcessBatchInto(f PacketFilter, pkts []packet.Packet, out []Verdict) []Verdict {
	out = GrowVerdicts(out, len(pkts))
	for i := range pkts {
		out[i] = f.Process(pkts[i])
	}
	return out
}

// AsBatch returns f's batched data plane: filters that already implement
// BatchFilter are returned unchanged, anything else is wrapped with the
// generic per-packet fallback. Drivers (replay, experiments, daemons) call
// this once and then speak batch everywhere.
func AsBatch(f PacketFilter) BatchFilter {
	if b, ok := f.(BatchFilter); ok {
		return b
	}
	return fallbackBatcher{f}
}

// fallbackBatcher adapts a plain PacketFilter to BatchFilter by looping.
type fallbackBatcher struct {
	PacketFilter
}

func (b fallbackBatcher) ProcessBatch(pkts []packet.Packet) []Verdict {
	return ProcessBatch(b.PacketFilter, pkts)
}

func (b fallbackBatcher) ProcessBatchInto(pkts []packet.Packet, out []Verdict) []Verdict {
	return ProcessBatchInto(b.PacketFilter, pkts, out)
}

// Counters accumulates per-filter packet statistics.
type Counters struct {
	OutPackets uint64 // outgoing packets observed
	InPackets  uint64 // incoming packets observed
	InPassed   uint64 // incoming packets admitted
	InDropped  uint64 // incoming packets dropped
}

// DropRate returns the fraction of incoming packets that were dropped, or 0
// if none were observed.
func (c Counters) DropRate() float64 {
	if c.InPackets == 0 {
		return 0
	}
	return float64(c.InDropped) / float64(c.InPackets)
}

// Count records a verdict for a packet in the counters.
func (c *Counters) Count(pkt packet.Packet, v Verdict) {
	if pkt.Dir == packet.Outgoing {
		c.OutPackets++
		return
	}
	c.InPackets++
	if v == Pass {
		c.InPassed++
	} else {
		c.InDropped++
	}
}
