// Package filtering defines the small contract every packet filter in this
// repository implements — the bitmap filter of internal/core and the three
// SPI baselines of internal/flowtable — so that simulations and benchmarks
// can drive them interchangeably.
//
// Filters are driven by virtual time: each packet carries its observation
// timestamp, and filters advance their timers (bitmap rotation, flow-table
// garbage collection) lazily from those timestamps. AdvanceTo exists for
// callers that need to move time forward without traffic.
package filtering

import (
	"time"

	"bitmapfilter/internal/packet"
)

// Verdict is a filter's decision for one packet.
type Verdict uint8

// Filter decisions.
const (
	Pass Verdict = iota + 1
	Drop
)

// String returns "pass" or "drop".
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	default:
		return "verdict(?)"
	}
}

// PacketFilter is the common interface of all filters under test.
type PacketFilter interface {
	// Process inspects one packet and returns the verdict. Packet
	// timestamps must be non-decreasing; filters use them to drive
	// expiry.
	Process(pkt packet.Packet) Verdict
	// AdvanceTo moves the filter's clock to now, firing any pending
	// rotation or garbage-collection work, without observing a packet.
	AdvanceTo(now time.Duration)
	// Name identifies the filter in reports.
	Name() string
	// MemoryBytes estimates the filter's current state footprint.
	MemoryBytes() uint64
	// Counters returns cumulative packet counters.
	Counters() Counters
}

// Counters accumulates per-filter packet statistics.
type Counters struct {
	OutPackets uint64 // outgoing packets observed
	InPackets  uint64 // incoming packets observed
	InPassed   uint64 // incoming packets admitted
	InDropped  uint64 // incoming packets dropped
}

// DropRate returns the fraction of incoming packets that were dropped, or 0
// if none were observed.
func (c Counters) DropRate() float64 {
	if c.InPackets == 0 {
		return 0
	}
	return float64(c.InDropped) / float64(c.InPackets)
}

// Count records a verdict for a packet in the counters.
func (c *Counters) Count(pkt packet.Packet, v Verdict) {
	if pkt.Dir == packet.Outgoing {
		c.OutPackets++
		return
	}
	c.InPackets++
	if v == Pass {
		c.InPassed++
	} else {
		c.InDropped++
	}
}
