package filtering

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bitmapfilter/internal/packet"
)

// Chain composes filter stages into one BatchFilter: every packet flows
// through the stages in order and the first Drop short-circuits — later
// stages never observe a dropped packet, exactly as if the stages were
// separate boxes wired in series on the path. This is the composition
// point for layered defenses (a SYN-validation stage in front of the
// bitmap filter, a TenantSet behind a rate limiter, ...).
//
// The batch path preserves the short-circuit semantics: stage i+1
// receives only the packets stage i admitted, compacted in their original
// order, so a stage's internal state (rotation clock, APD coin sequence)
// evolves identically to per-packet chaining. Grouping is done with
// pooled scratch; a steady-state batch stream allocates nothing beyond
// what the stages themselves allocate.
//
// Chain() with no stages is a pass-everything filter; Chain(f) returns f
// unchanged. The chain keeps its own cumulative Counters (classified by
// the final verdict); MemoryBytes sums the stages and AdvanceTo forwards
// to every stage. The chain adds no locking of its own: it is safe for
// concurrent use iff every stage is.
func Chain(stages ...BatchFilter) BatchFilter {
	switch len(stages) {
	case 0:
		return &chain{}
	case 1:
		return stages[0]
	}
	names := make([]string, len(stages))
	for i, s := range stages {
		names[i] = s.Name()
	}
	return &chain{
		stages: append([]BatchFilter(nil), stages...),
		name:   "chain(" + strings.Join(names, ",") + ")",
	}
}

type chain struct {
	stages []BatchFilter
	name   string

	// Chain-level counters, atomic so concurrent batch pumps through
	// goroutine-safe stages stay race-free.
	outPackets atomic.Uint64
	inPackets  atomic.Uint64
	inPassed   atomic.Uint64
	inDropped  atomic.Uint64
}

var _ BatchFilter = (*chain)(nil)

// chainScratch holds the per-batch survivor-compaction buffers.
type chainScratch struct {
	pkts []packet.Packet
	idx  []int32 // survivor position -> original batch index
	verd []Verdict
}

var chainScratchPool = sync.Pool{New: func() any { return new(chainScratch) }}

// growSlice resizes s to n elements, reallocating only on growth; contents
// are unspecified.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Name identifies the chain and its stages.
func (c *chain) Name() string {
	if c.name == "" {
		return "chain()"
	}
	return c.name
}

// MemoryBytes sums the stages' footprints.
func (c *chain) MemoryBytes() uint64 {
	var total uint64
	for _, s := range c.stages {
		total += s.MemoryBytes()
	}
	return total
}

// AdvanceTo moves every stage's clock forward, including stages a
// short-circuit has been starving of packets.
func (c *chain) AdvanceTo(now time.Duration) {
	for _, s := range c.stages {
		s.AdvanceTo(now)
	}
}

// Counters returns the chain-level counters: each packet is counted once,
// classified by the chain's final verdict.
func (c *chain) Counters() Counters {
	return Counters{
		OutPackets: c.outPackets.Load(),
		InPackets:  c.inPackets.Load(),
		InPassed:   c.inPassed.Load(),
		InDropped:  c.inDropped.Load(),
	}
}

// Process runs one packet through the stages in order; the first Drop
// wins and later stages never see the packet.
func (c *chain) Process(pkt packet.Packet) Verdict {
	v := Pass
	for _, s := range c.stages {
		if s.Process(pkt) == Drop {
			v = Drop
			break
		}
	}
	c.count(pkt, v)
	return v
}

// count records one packet's final verdict in the chain counters.
func (c *chain) count(pkt packet.Packet, v Verdict) {
	if pkt.Dir == packet.Outgoing {
		c.outPackets.Add(1)
		return
	}
	c.inPackets.Add(1)
	if v == Pass {
		c.inPassed.Add(1)
	} else {
		c.inDropped.Add(1)
	}
}

// ProcessBatch implements BatchFilter (nil for an empty batch).
func (c *chain) ProcessBatch(pkts []packet.Packet) []Verdict {
	if len(pkts) == 0 {
		return nil
	}
	out := make([]Verdict, len(pkts))
	c.processBatchInto(pkts, out)
	return out
}

// ProcessBatchInto implements BatchFilter under the standard Into
// contract; see Chain for the batch short-circuit semantics.
func (c *chain) ProcessBatchInto(pkts []packet.Packet, out []Verdict) []Verdict {
	out = GrowVerdicts(out, len(pkts))
	if len(pkts) == 0 {
		return out
	}
	c.processBatchInto(pkts, out)
	return out
}

// processBatchInto fills out (same length as pkts) with the chain's final
// verdicts, feeding each stage only its predecessor's survivors.
func (c *chain) processBatchInto(pkts []packet.Packet, out []Verdict) {
	if len(c.stages) == 0 {
		for i := range out {
			out[i] = Pass
		}
		c.tally(pkts, out)
		return
	}

	// Stage 1 sees the whole batch and writes straight into out.
	c.stages[0].ProcessBatchInto(pkts, out)
	if len(c.stages) > 1 {
		sc := chainScratchPool.Get().(*chainScratch)
		defer chainScratchPool.Put(sc)
		sc.pkts = growSlice(sc.pkts, len(pkts))
		sc.idx = growSlice(sc.idx, len(pkts))
		sc.verd = growSlice(sc.verd, len(pkts))

		// Compact stage 1's survivors (with their original indices) into
		// the scratch; subsequent stages compact in place — the write
		// cursor never passes the read cursor.
		n := 0
		for i := range pkts {
			if out[i] == Pass {
				sc.pkts[n] = pkts[i]
				sc.idx[n] = int32(i)
				n++
			}
		}
		for _, s := range c.stages[1:] {
			if n == 0 {
				break
			}
			s.ProcessBatchInto(sc.pkts[:n], sc.verd[:n])
			m := 0
			for j := 0; j < n; j++ {
				if sc.verd[j] == Pass {
					sc.pkts[m] = sc.pkts[j]
					sc.idx[m] = sc.idx[j]
					m++
				} else {
					out[sc.idx[j]] = Drop
				}
			}
			n = m
		}
	}
	c.tally(pkts, out)
}

// tally folds a batch's final verdicts into the chain counters with four
// atomic adds.
func (c *chain) tally(pkts []packet.Packet, out []Verdict) {
	var outP, inP, passed, dropped uint64
	for i := range pkts {
		if pkts[i].Dir == packet.Outgoing {
			outP++
			continue
		}
		inP++
		if out[i] == Pass {
			passed++
		} else {
			dropped++
		}
	}
	if outP != 0 {
		c.outPackets.Add(outP)
	}
	if inP != 0 {
		c.inPackets.Add(inP)
		c.inPassed.Add(passed)
		c.inDropped.Add(dropped)
	}
}
