package filtering_test

import (
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/flowtable"
	"bitmapfilter/internal/packet"
)

// plainFilter hides a filter's native batch methods so AsBatch must wrap
// it in the generic per-packet fallback.
type plainFilter struct{ f filtering.PacketFilter }

func (p plainFilter) Process(pkt packet.Packet) filtering.Verdict { return p.f.Process(pkt) }
func (p plainFilter) AdvanceTo(now time.Duration)                 { p.f.AdvanceTo(now) }
func (p plainFilter) Name() string                                { return p.f.Name() }
func (p plainFilter) MemoryBytes() uint64                         { return p.f.MemoryBytes() }
func (p plainFilter) Counters() filtering.Counters                { return p.f.Counters() }

// TestEmptyBatchContract pins the empty-batch behavior documented on
// BatchFilter for every implementation in the repository: ProcessBatch
// returns nil (never a non-nil empty slice), and ProcessBatchInto returns
// a length-0 slice that keeps the caller's backing array.
func TestEmptyBatchContract(t *testing.T) {
	sharded, err := core.NewSharded(4, core.WithOrder(10))
	if err != nil {
		t.Fatal(err)
	}
	flavors := []struct {
		name string
		f    filtering.BatchFilter
	}{
		{"core.Filter", core.MustNew(core.WithOrder(10))},
		{"core.Safe", core.NewSafe(core.MustNew(core.WithOrder(10)))},
		{"core.Sharded", sharded},
		{"flowtable.HashList", flowtable.NewHashList()},
		{"flowtable.AVLTable", flowtable.NewAVLTable()},
		{"flowtable.MapTable", flowtable.NewMapTable()},
		{"flowtable.Naive", flowtable.NewNaive(20 * time.Second)},
		{"AsBatch-fallback", filtering.AsBatch(plainFilter{core.MustNew(core.WithOrder(10))})},
	}
	for _, fl := range flavors {
		t.Run(fl.name, func(t *testing.T) {
			if got := fl.f.ProcessBatch(nil); got != nil {
				t.Errorf("ProcessBatch(nil) = %v, want nil", got)
			}
			if got := fl.f.ProcessBatch([]packet.Packet{}); got != nil {
				t.Errorf("ProcessBatch(empty) = %v, want nil", got)
			}
			// A dirty recycled buffer must come back length-0 but with its
			// backing array intact, so a pump does not lose its buffer
			// across an idle poll.
			buf := make([]filtering.Verdict, 3, 8)
			buf[0], buf[1], buf[2] = filtering.Drop, filtering.Drop, filtering.Drop
			got := fl.f.ProcessBatchInto(nil, buf)
			if len(got) != 0 {
				t.Fatalf("ProcessBatchInto(nil, buf) has length %d, want 0", len(got))
			}
			if cap(got) != cap(buf) || &got[:1][0] != &buf[:1][0] {
				t.Errorf("ProcessBatchInto(nil, buf) lost the caller's backing array")
			}
			if got := fl.f.ProcessBatchInto([]packet.Packet{}, nil); len(got) != 0 {
				t.Errorf("ProcessBatchInto(empty, nil) has length %d, want 0", len(got))
			}
		})
	}
}
