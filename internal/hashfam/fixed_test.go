package hashfam

import (
	"testing"

	"bitmapfilter/internal/xrand"
)

// packLE packs up to FixedKeyMax bytes into the (lo, hi) little-endian lane
// pair the fixed kernels consume.
func packLE(b []byte) (lo, hi uint64) {
	for i, c := range b {
		if i < 8 {
			lo |= uint64(c) << (8 * uint(i))
		} else {
			hi |= uint64(c) << (8 * uint(i-8))
		}
	}
	return lo, hi
}

// TestFixedKernelsMatchByteKernels pins the fixed-width kernels to the
// []byte reference kernels: for every length 0..FixedKeyMax and many random
// byte patterns and seeds, Murmur64Fixed/XX64Fixed must produce the exact
// value of Murmur64/XX64 over the same bytes. This is what guarantees that
// switching the filter hot path to the fixed kernels changes no hash value,
// hence no filter behavior and no snapshot compatibility.
func TestFixedKernelsMatchByteKernels(t *testing.T) {
	r := xrand.New(7)
	buf := make([]byte, FixedKeyMax)
	for n := 0; n <= FixedKeyMax; n++ {
		for trial := 0; trial < 2000; trial++ {
			for i := 0; i < n; i++ {
				buf[i] = byte(r.Uint32())
			}
			seed := r.Uint64()
			data := buf[:n]
			lo, hi := packLE(data)
			if got, want := Murmur64Fixed(lo, hi, n, seed), Murmur64(data, seed); got != want {
				t.Fatalf("Murmur64Fixed(n=%d, seed=%#x, data=%x) = %#x, want %#x", n, seed, data, got, want)
			}
			if got, want := XX64Fixed(lo, hi, n, seed), XX64(data, seed); got != want {
				t.Fatalf("XX64Fixed(n=%d, seed=%#x, data=%x) = %#x, want %#x", n, seed, data, got, want)
			}
		}
	}
}

// TestIndexesFixedMatchesIndexes pins the derived family outputs: the whole
// Kirsch–Mitzenmacher index group must agree between the byte and fixed
// entry points.
func TestIndexesFixedMatchesIndexes(t *testing.T) {
	r := xrand.New(8)
	for _, m := range []int{1, 3, 8} {
		fam := MustNew(m, r.Uint64())
		for trial := 0; trial < 500; trial++ {
			n := int(r.Uint32() % (FixedKeyMax + 1))
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(r.Uint32())
			}
			lo, hi := packLE(data)
			want := fam.Indexes(nil, data)
			got := fam.IndexesFixed(nil, lo, hi, n)
			if len(got) != len(want) {
				t.Fatalf("m=%d: len %d vs %d", m, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("m=%d n=%d data=%x: index %d: %#x vs %#x", m, n, data, i, got[i], want[i])
				}
			}
		}
	}
}
