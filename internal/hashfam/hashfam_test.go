package hashfam

import (
	"errors"
	"hash/fnv"
	"math"
	"testing"
	"testing/quick"

	"bitmapfilter/internal/xrand"
)

func TestFNV1aMatchesStdlibUnseeded(t *testing.T) {
	// With seed 0 our FNV-1a must agree with hash/fnv exactly.
	inputs := []string{"", "a", "hello world", "\x00\x01\x02\x03", "bitmapfilter"}
	for _, in := range inputs {
		h := fnv.New64a()
		h.Write([]byte(in))
		want := h.Sum64()
		if got := FNV1a([]byte(in), 0); got != want {
			t.Errorf("FNV1a(%q, 0) = %#x, want %#x", in, got, want)
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	data := []byte("some tuple bytes")
	if FNV1a(data, 1) == FNV1a(data, 2) {
		t.Error("FNV1a seeds 1 and 2 collide")
	}
	if Murmur64(data, 1) == Murmur64(data, 2) {
		t.Error("Murmur64 seeds 1 and 2 collide")
	}
	if XX64(data, 1) == XX64(data, 2) {
		t.Error("XX64 seeds 1 and 2 collide")
	}
}

func TestHashesDeterministic(t *testing.T) {
	f := func(data []byte, seed uint64) bool {
		return FNV1a(data, seed) == FNV1a(data, seed) &&
			Murmur64(data, seed) == Murmur64(data, seed) &&
			XX64(data, seed) == XX64(data, seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashesDifferFromEachOther(t *testing.T) {
	data := []byte("192.0.2.1:12345->198.51.100.7:80")
	a, b, c := FNV1a(data, 7), Murmur64(data, 7), XX64(data, 7)
	if a == b || b == c || a == c {
		t.Errorf("base hashes collide: %#x %#x %#x", a, b, c)
	}
}

func TestTailBytesMatter(t *testing.T) {
	// Inputs differing only in the final (non-block) byte must hash
	// differently: exercises the tail paths of Murmur64 and XX64.
	a := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	b := append(append([]byte{}, a[:12]...), 99)
	if Murmur64(a, 0) == Murmur64(b, 0) {
		t.Error("Murmur64 ignores tail byte")
	}
	if XX64(a, 0) == XX64(b, 0) {
		t.Error("XX64 ignores tail byte")
	}
	// And a 13-vs-12-byte input (length must be mixed in).
	if Murmur64(a[:12], 0) == Murmur64(a, 0) {
		t.Error("Murmur64 ignores length")
	}
	if XX64(a[:12], 0) == XX64(a, 0) {
		t.Error("XX64 ignores length")
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits on
	// average. Accept a generous [20, 44] band over 2048 trials.
	r := xrand.New(1)
	for name, h := range map[string]func([]byte, uint64) uint64{
		"murmur": Murmur64,
		"xx":     XX64,
	} {
		var totalFlips, trials int
		buf := make([]byte, 13)
		for trial := 0; trial < 2048; trial++ {
			for i := range buf {
				buf[i] = byte(r.Uint64())
			}
			orig := h(buf, 0)
			bit := r.Intn(len(buf) * 8)
			buf[bit/8] ^= 1 << (bit % 8)
			flipped := h(buf, 0)
			totalFlips += popcount(orig ^ flipped)
			trials++
		}
		mean := float64(totalFlips) / float64(trials)
		if mean < 20 || mean > 44 {
			t.Errorf("%s avalanche mean bit flips = %v, want ~32", name, mean)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		m       int
		wantErr bool
	}{
		{m: 0, wantErr: true},
		{m: -1, wantErr: true},
		{m: 1, wantErr: false},
		{m: 3, wantErr: false},
		{m: MaxFunctions, wantErr: false},
		{m: MaxFunctions + 1, wantErr: true},
	}
	for _, tt := range tests {
		_, err := New(tt.m, 0)
		if gotErr := err != nil; gotErr != tt.wantErr {
			t.Errorf("New(%d) error = %v, wantErr %v", tt.m, err, tt.wantErr)
		}
		if err != nil && !errors.Is(err, ErrCount) {
			t.Errorf("New(%d) error %v is not ErrCount", tt.m, err)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0, 0) did not panic")
		}
	}()
	MustNew(0, 0)
}

func TestFamilyAccessors(t *testing.T) {
	f := MustNew(3, 42)
	if f.M() != 3 {
		t.Errorf("M = %d", f.M())
	}
	if f.Seed() != 42 {
		t.Errorf("Seed = %d", f.Seed())
	}
}

func TestIndexesCountAndDeterminism(t *testing.T) {
	f := MustNew(5, 9)
	data := []byte("tuple")
	a := f.Indexes(nil, data)
	b := f.Indexes(nil, data)
	if len(a) != 5 {
		t.Fatalf("Indexes returned %d values", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("index %d nondeterministic", i)
		}
	}
}

func TestIndexesAppendsToDst(t *testing.T) {
	f := MustNew(2, 9)
	dst := make([]uint64, 0, 8)
	got := f.Indexes(dst, []byte("x"))
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	got2 := f.Indexes(got, []byte("y"))
	if len(got2) != 4 {
		t.Fatalf("second append len = %d", len(got2))
	}
}

func TestIndexMatchesIndexes(t *testing.T) {
	f := MustNew(4, 77)
	data := []byte("abcdef")
	all := f.Indexes(nil, data)
	for i := range all {
		if got := f.Index(i, data); got != all[i] {
			t.Errorf("Index(%d) = %#x, Indexes[%d] = %#x", i, got, i, all[i])
		}
	}
	// Out-of-range i wraps.
	if f.Index(5, data) != all[1] {
		t.Error("Index(5) did not wrap to Index(1)")
	}
	if f.Index(-1, data) != all[3] {
		t.Error("Index(-1) did not wrap to Index(3)")
	}
}

func TestKirschMitzenmacherStep(t *testing.T) {
	// g_i - g_{i-1} must be constant (= h2) and odd.
	f := MustNew(8, 3)
	data := []byte("constant step")
	idx := f.Indexes(nil, data)
	step := idx[1] - idx[0]
	if step%2 != 1 {
		t.Errorf("h2 = %#x is even", step)
	}
	for i := 2; i < len(idx); i++ {
		if idx[i]-idx[i-1] != step {
			t.Errorf("step between %d and %d differs", i-1, i)
		}
	}
}

func TestFamiliesWithDifferentSeedsDiffer(t *testing.T) {
	a := MustNew(3, 1)
	b := MustNew(3, 2)
	data := []byte("same data")
	ia := a.Indexes(nil, data)
	ib := b.Indexes(nil, data)
	same := 0
	for i := range ia {
		if ia[i] == ib[i] {
			same++
		}
	}
	if same == len(ia) {
		t.Error("families with different seeds produced identical indexes")
	}
}

func TestIndexDistributionUniformity(t *testing.T) {
	// Masked to 2^10 buckets, 40K hashed tuples should fill buckets with a
	// chi-square-ish spread: no bucket wildly over- or under-full.
	f := MustNew(1, 5)
	const (
		buckets = 1 << 10
		samples = 40000
	)
	counts := make([]int, buckets)
	var key [12]byte
	r := xrand.New(2)
	for i := 0; i < samples; i++ {
		for j := range key {
			key[j] = byte(r.Uint64())
		}
		h := f.Index(0, key[:])
		counts[h&(buckets-1)]++
	}
	expect := float64(samples) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// For 1023 dof, mean chi2 is ~1023 with stddev ~45; allow 5 sigma.
	if math.Abs(chi2-float64(buckets-1)) > 5*45 {
		t.Errorf("chi-square = %v, want ~%d", chi2, buckets-1)
	}
}

func BenchmarkIndexesM3(b *testing.B) {
	f := MustNew(3, 1)
	key := []byte{192, 0, 2, 1, 0x30, 0x39, 198, 51, 100, 7, 0, 80}
	dst := make([]uint64, 0, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = f.Indexes(dst[:0], key)
	}
	_ = dst
}

func BenchmarkMurmur64Tuple(b *testing.B) {
	key := []byte{192, 0, 2, 1, 0x30, 0x39, 198, 51, 100, 7, 0, 80}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Murmur64(key, 0)
	}
	_ = sink
}
