package hashfam

// Fixed-width hash kernels for short keys. The bitmap filter hashes 11- or
// 13-byte tuple keys millions of times per second; routing them through the
// general []byte kernels costs a byte-slice materialization, per-block
// bounds checks and tail loops on every packet. The *Fixed variants accept
// the key packed into two little-endian 64-bit words (lo = bytes 0..7,
// hi = bytes 8..15) plus its true byte length n (0 <= n <= FixedKeyMax) and
// run fully straight-line in registers.
//
// They are value-identical to the []byte kernels over the same bytes —
// pinned by TestFixedKernelsMatchByteKernels — so snapshots, goldens and
// every filter behavior are unchanged by which entry point a caller uses.

// FixedKeyMax is the largest key length (in bytes) the fixed-width kernels
// accept: two 64-bit lanes.
const FixedKeyMax = 16

const (
	murmurC1 = 0x87c37b91114253d5
	murmurC2 = 0x4cf5ad432745937f

	xxPrime1 = 0x9e3779b185ebca87
	xxPrime2 = 0xc2b2ae3d27d4eb4f
	xxPrime3 = 0x165667b19e3779f9
	xxPrime4 = 0x85ebca77c2b2ae63
	xxPrime5 = 0x27d4eb2f165667c5
)

// Murmur64Fixed is Murmur64 over the n bytes packed into (lo, hi).
func Murmur64Fixed(lo, hi uint64, n int, seed uint64) uint64 {
	h := seed
	tail := lo
	rem := n
	if n >= 8 {
		k := lo * murmurC1
		k = rotl64(k, 31)
		k *= murmurC2
		h ^= k
		h = rotl64(h, 27)
		h = h*5 + 0x52dce729
		tail = hi
		rem = n - 8
	}
	if rem == 8 {
		// n == 16: the second lane is a full block, not a tail.
		k := hi * murmurC1
		k = rotl64(k, 31)
		k *= murmurC2
		h ^= k
		h = rotl64(h, 27)
		h = h*5 + 0x52dce729
		rem = 0
	}
	if rem > 0 {
		t := tail & (^uint64(0) >> (64 - 8*uint(rem)))
		t *= murmurC1
		t = rotl64(t, 31)
		t *= murmurC2
		h ^= t
	}
	h ^= uint64(n)
	return fmix64(h)
}

// XX64Fixed is XX64 over the n bytes packed into (lo, hi).
func XX64Fixed(lo, hi uint64, n int, seed uint64) uint64 {
	h := seed + xxPrime5 + uint64(n)
	rest := lo
	rem := n
	if n >= 8 {
		k := lo * xxPrime2
		k = rotl64(k, 31) * xxPrime1
		h ^= k
		h = rotl64(h, 27)*xxPrime1 + xxPrime4
		rest = hi
		rem = n - 8
	}
	if rem == 8 {
		// n == 16: the second lane is a full block too.
		k := hi * xxPrime2
		k = rotl64(k, 31) * xxPrime1
		h ^= k
		h = rotl64(h, 27)*xxPrime1 + xxPrime4
		rem = 0
	}
	if rem >= 4 {
		h ^= (rest & 0xffffffff) * xxPrime1
		h = rotl64(h, 23)*xxPrime2 + xxPrime3
		rest >>= 32
		rem -= 4
	}
	for ; rem > 0; rem-- {
		h ^= (rest & 0xff) * xxPrime5
		h = rotl64(h, 11) * xxPrime1
		rest >>= 8
	}
	h ^= h >> 33
	h *= xxPrime2
	h ^= h >> 29
	h *= xxPrime3
	h ^= h >> 32
	return h
}

// BaseFixed is Base for a key packed into (lo, hi) with byte length n.
func (f *Family) BaseFixed(lo, hi uint64, n int) (h1, h2 uint64) {
	h1 = Murmur64Fixed(lo, hi, n, f.seed)
	h2 = XX64Fixed(lo, hi, n, f.seed^0xa5a5a5a5a5a5a5a5) | 1
	return h1, h2
}

// IndexesFixed is Indexes for a key packed into (lo, hi) with byte length
// n. Passing a reusable dst[:0] keeps the hot path allocation-free.
func (f *Family) IndexesFixed(dst []uint64, lo, hi uint64, n int) []uint64 {
	h1, h2 := f.BaseFixed(lo, hi, n)
	for i := 0; i < f.m; i++ {
		dst = append(dst, h1+uint64(i)*h2)
	}
	return dst
}
