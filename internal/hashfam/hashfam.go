// Package hashfam provides the family of m hash functions shared by all bit
// vectors of a bitmap filter (§3.3: "All the bloom filters in the bitmap
// share the same m hash functions, each of which should only output an n-bit
// value").
//
// Three independent 64-bit base hashes are implemented from scratch —
// FNV-1a, a Murmur3-style mixer, and an xxHash-style avalanche — and larger
// families are derived with the Kirsch–Mitzenmacher construction
// g_i(x) = h1(x) + i·h2(x), which preserves Bloom-filter false-positive
// behaviour while requiring only two base hash evaluations per lookup.
// Outputs are full 64-bit values; the bit vector truncates them to n bits,
// matching the paper's truncation rule.
package hashfam

import (
	"errors"
	"fmt"
)

// MaxFunctions bounds the family size. The paper's optimal m is 3 for its
// configuration; 64 leaves generous room for ablation sweeps.
const MaxFunctions = 64

// ErrCount is returned by New when the requested function count is invalid.
var ErrCount = errors.New("hashfam: function count out of range")

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// FNV1a computes the 64-bit FNV-1a hash of data with an additional seed
// folded into the offset basis so independent streams can be derived.
func FNV1a(data []byte, seed uint64) uint64 {
	h := uint64(fnvOffset64) ^ (seed * 0x9e3779b97f4a7c15)
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// Murmur64 computes a MurmurHash3-style 64-bit hash of data: 8-byte blocks
// mixed with the Murmur3 constants and the fmix64 finalizer.
func Murmur64(data []byte, seed uint64) uint64 {
	const (
		c1 = 0x87c37b91114253d5
		c2 = 0x4cf5ad432745937f
	)
	h := seed
	n := len(data)
	i := 0
	for ; i+8 <= n; i += 8 {
		k := le64(data[i:])
		k *= c1
		k = rotl64(k, 31)
		k *= c2
		h ^= k
		h = rotl64(h, 27)
		h = h*5 + 0x52dce729
	}
	var tail uint64
	for j := n - 1; j >= i; j-- {
		tail = tail<<8 | uint64(data[j])
	}
	if n > i {
		tail *= c1
		tail = rotl64(tail, 31)
		tail *= c2
		h ^= tail
	}
	h ^= uint64(n)
	return fmix64(h)
}

// XX64 computes an xxHash64-style hash of data. For the short tuple keys the
// filter hashes (12–16 bytes), the single-lane variant is used.
func XX64(data []byte, seed uint64) uint64 {
	const (
		prime1 = 0x9e3779b185ebca87
		prime2 = 0xc2b2ae3d27d4eb4f
		prime3 = 0x165667b19e3779f9
		prime4 = 0x85ebca77c2b2ae63
		prime5 = 0x27d4eb2f165667c5
	)
	n := len(data)
	h := seed + prime5 + uint64(n)
	i := 0
	for ; i+8 <= n; i += 8 {
		k := le64(data[i:]) * prime2
		k = rotl64(k, 31) * prime1
		h ^= k
		h = rotl64(h, 27)*prime1 + prime4
	}
	if i+4 <= n {
		h ^= uint64(le32(data[i:])) * prime1
		h = rotl64(h, 23)*prime2 + prime3
		i += 4
	}
	for ; i < n; i++ {
		h ^= uint64(data[i]) * prime5
		h = rotl64(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Family is an immutable set of m hash functions derived from two base
// hashes via the Kirsch–Mitzenmacher construction. It is safe for concurrent
// use.
type Family struct {
	m    int
	seed uint64
}

// New returns a family of m hash functions parameterized by seed. Two
// families with the same (m, seed) are identical; different seeds give
// independent families.
func New(m int, seed uint64) (*Family, error) {
	if m < 1 || m > MaxFunctions {
		return nil, fmt.Errorf("%w: %d not in [1, %d]", ErrCount, m, MaxFunctions)
	}
	return &Family{m: m, seed: seed}, nil
}

// MustNew is New for statically known arguments; it panics on error.
func MustNew(m int, seed uint64) *Family {
	f, err := New(m, seed)
	if err != nil {
		panic(err)
	}
	return f
}

// M returns the number of hash functions in the family.
func (f *Family) M() int { return f.m }

// Seed returns the family seed.
func (f *Family) Seed() uint64 { return f.seed }

// Base computes the two base hashes (h1, h2) of data. h2 is forced odd so
// that g_i = h1 + i·h2 walks a full-period sequence modulo any power of two,
// avoiding index collisions between family members on 2^n-bit vectors.
func (f *Family) Base(data []byte) (h1, h2 uint64) {
	h1 = Murmur64(data, f.seed)
	h2 = XX64(data, f.seed^0xa5a5a5a5a5a5a5a5) | 1
	return h1, h2
}

// Indexes appends the m hash values of data to dst and returns the extended
// slice. Passing a reusable dst[:0] makes the hot path allocation-free.
func (f *Family) Indexes(dst []uint64, data []byte) []uint64 {
	h1, h2 := f.Base(data)
	for i := 0; i < f.m; i++ {
		dst = append(dst, h1+uint64(i)*h2)
	}
	return dst
}

// Index returns the i-th hash of data, for 0 <= i < M(). Out-of-range i is
// reduced modulo M so the function is total.
func (f *Family) Index(i int, data []byte) uint64 {
	if f.m > 0 {
		i %= f.m
		if i < 0 {
			i += f.m
		}
	}
	h1, h2 := f.Base(data)
	return h1 + uint64(i)*h2
}

func rotl64(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
