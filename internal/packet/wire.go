package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire-format encoding and decoding of Ethernet II / IPv4 / TCP / UDP
// frames. This is the from-scratch replacement for the gopacket dependency
// the reproduction hint suggests: enough of the real formats that generated
// traces are valid pcap payloads, checksums included.

// Header sizes in bytes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20 // without options
	TCPHeaderLen      = 20 // without options
	UDPHeaderLen      = 8
)

// EtherTypeIPv4 is the Ethernet II type code for IPv4 payloads.
const EtherTypeIPv4 = 0x0800

// Decoding errors, matchable with errors.Is.
var (
	ErrTruncated    = errors.New("packet: truncated frame")
	ErrNotIPv4      = errors.New("packet: not an IPv4 frame")
	ErrBadIPVersion = errors.New("packet: bad IP version")
	ErrBadIHL       = errors.New("packet: bad IPv4 header length")
	ErrBadChecksum  = errors.New("packet: bad checksum")
	ErrProto        = errors.New("packet: unsupported transport protocol")
	// ErrFragmented rejects IPv4 fragments. A non-first fragment carries
	// no transport header — its first payload bytes would be misparsed as
	// ports — and a first fragment (MF set) may be followed by an
	// overlapping rewrite, so the filter refuses to judge either rather
	// than hash garbage into the bitmap.
	ErrFragmented = errors.New("packet: fragmented IPv4 datagram")
	// ErrTooLong is returned by Encode when the packet cannot be
	// represented: the IPv4 total-length field is 16 bits, so anything
	// over 65535 bytes of IP datagram would silently wrap.
	ErrTooLong = errors.New("packet: frame exceeds IPv4 maximum length")
)

// fragMask selects the IPv4 MF flag and the 13-bit fragment offset in the
// flags+offset word (ip[6:8]). DF and the reserved bit are irrelevant to
// reassembly and pass through.
const fragMask = 0x3fff

// MAC is a 6-byte Ethernet address.
type MAC [6]byte

// Synthetic MAC addresses used when framing simulated packets. The
// locally-administered bit is set so they can never collide with real NICs.
var (
	clientMAC = MAC{0x02, 0xbf, 0x00, 0x00, 0x00, 0x01}
	ispMAC    = MAC{0x02, 0xbf, 0x00, 0x00, 0x00, 0x02}
)

// Frame is the decoded form of a wire frame.
type Frame struct {
	SrcMAC   MAC
	DstMAC   MAC
	Tuple    Tuple
	Flags    Flags // TCP only
	TTL      uint8
	Seq, Ack uint32 // TCP only
	Payload  []byte
	Length   int // total frame length in bytes
}

// Encode serializes pkt into an Ethernet/IPv4/TCP-or-UDP frame with valid
// length fields and checksums. The payload is zero-filled to pad the frame
// to pkt.Length bytes (the simulator tracks lengths, not contents). The MAC
// addresses encode the direction: outgoing frames go client→ISP.
func Encode(pkt Packet) ([]byte, error) {
	transportLen := TCPHeaderLen
	if pkt.Tuple.Proto == UDP {
		transportLen = UDPHeaderLen
	} else if pkt.Tuple.Proto != TCP {
		return nil, fmt.Errorf("%w: %d", ErrProto, pkt.Tuple.Proto)
	}

	minLen := EthernetHeaderLen + IPv4HeaderLen + transportLen
	total := pkt.Length
	if total < minLen {
		total = minLen
	}
	payloadLen := total - minLen
	// The IPv4 total-length field is 16 bits. A larger packet used to
	// encode with a wrapped length (and a checksum over garbage); refuse
	// it instead.
	if total-EthernetHeaderLen > 0xffff {
		return nil, fmt.Errorf("%w: ip total length %d", ErrTooLong, total-EthernetHeaderLen)
	}

	buf := make([]byte, total)

	// Ethernet II.
	src, dst := clientMAC, ispMAC
	if pkt.Dir == Incoming {
		src, dst = ispMAC, clientMAC
	}
	copy(buf[0:6], dst[:])
	copy(buf[6:12], src[:])
	binary.BigEndian.PutUint16(buf[12:14], EtherTypeIPv4)

	// IPv4.
	ip := buf[EthernetHeaderLen:]
	ipTotal := IPv4HeaderLen + transportLen + payloadLen
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipTotal))
	ip[8] = 64 // TTL
	ip[9] = byte(pkt.Tuple.Proto)
	binary.BigEndian.PutUint32(ip[12:16], uint32(pkt.Tuple.Src))
	binary.BigEndian.PutUint32(ip[16:20], uint32(pkt.Tuple.Dst))
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:IPv4HeaderLen], 0))

	// Transport.
	tr := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(tr[0:2], pkt.Tuple.SrcPort)
	binary.BigEndian.PutUint16(tr[2:4], pkt.Tuple.DstPort)
	switch pkt.Tuple.Proto {
	case TCP:
		tr[12] = 5 << 4 // data offset 5 words
		tr[13] = byte(pkt.Flags)
		binary.BigEndian.PutUint16(tr[14:16], 0xffff) // window
		seg := tr[:TCPHeaderLen+payloadLen]
		binary.BigEndian.PutUint16(tr[16:18],
			checksum(seg, pseudoHeaderSum(pkt.Tuple, len(seg))))
	case UDP:
		binary.BigEndian.PutUint16(tr[4:6], uint16(UDPHeaderLen+payloadLen))
		seg := tr[:UDPHeaderLen+payloadLen]
		sum := checksum(seg, pseudoHeaderSum(pkt.Tuple, len(seg)))
		if sum == 0 {
			// RFC 768: a computed checksum of zero is transmitted as
			// all ones (zero means "no checksum").
			sum = 0xffff
		}
		binary.BigEndian.PutUint16(tr[6:8], sum)
	}
	return buf, nil
}

// Decode parses an Ethernet/IPv4/TCP-or-UDP frame produced by Encode (or by
// any standards-conforming source without IP options). Checksums are
// verified.
func Decode(frame []byte) (Frame, error) {
	var out Frame
	if len(frame) < EthernetHeaderLen+IPv4HeaderLen {
		return out, fmt.Errorf("%w: %d bytes", ErrTruncated, len(frame))
	}
	copy(out.DstMAC[:], frame[0:6])
	copy(out.SrcMAC[:], frame[6:12])
	if et := binary.BigEndian.Uint16(frame[12:14]); et != EtherTypeIPv4 {
		return out, fmt.Errorf("%w: ethertype %#04x", ErrNotIPv4, et)
	}

	ip := frame[EthernetHeaderLen:]
	if ip[0]>>4 != 4 {
		return out, fmt.Errorf("%w: %d", ErrBadIPVersion, ip[0]>>4)
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return out, fmt.Errorf("%w: ihl=%d", ErrBadIHL, ihl)
	}
	if checksum(ip[:ihl], 0) != 0 {
		return out, fmt.Errorf("%w: ipv4 header", ErrBadChecksum)
	}
	ipTotal := int(binary.BigEndian.Uint16(ip[2:4]))
	if ipTotal < ihl || len(ip) < ipTotal {
		return out, fmt.Errorf("%w: ip total length %d", ErrTruncated, ipTotal)
	}
	// Reject fragments before touching the transport layer: a non-first
	// fragment (offset != 0) has payload bytes where the ports would be,
	// and a first fragment (MF set) is an incomplete datagram.
	if frag := binary.BigEndian.Uint16(ip[6:8]); frag&fragMask != 0 {
		return out, fmt.Errorf("%w: flags+offset %#04x", ErrFragmented, frag)
	}
	out.TTL = ip[8]
	proto := Proto(ip[9])
	out.Tuple.Src = Addr(binary.BigEndian.Uint32(ip[12:16]))
	out.Tuple.Dst = Addr(binary.BigEndian.Uint32(ip[16:20]))
	out.Tuple.Proto = proto

	tr := ip[ihl:ipTotal]
	switch proto {
	case TCP:
		if len(tr) < TCPHeaderLen {
			return out, fmt.Errorf("%w: tcp header", ErrTruncated)
		}
		out.Tuple.SrcPort = binary.BigEndian.Uint16(tr[0:2])
		out.Tuple.DstPort = binary.BigEndian.Uint16(tr[2:4])
		out.Seq = binary.BigEndian.Uint32(tr[4:8])
		out.Ack = binary.BigEndian.Uint32(tr[8:12])
		dataOff := int(tr[12]>>4) * 4
		if dataOff < TCPHeaderLen || len(tr) < dataOff {
			return out, fmt.Errorf("%w: tcp data offset %d", ErrTruncated, dataOff)
		}
		out.Flags = Flags(tr[13])
		if checksum(tr, pseudoHeaderSum(out.Tuple, len(tr))) != 0 {
			return out, fmt.Errorf("%w: tcp segment", ErrBadChecksum)
		}
		out.Payload = tr[dataOff:]
	case UDP:
		if len(tr) < UDPHeaderLen {
			return out, fmt.Errorf("%w: udp header", ErrTruncated)
		}
		out.Tuple.SrcPort = binary.BigEndian.Uint16(tr[0:2])
		out.Tuple.DstPort = binary.BigEndian.Uint16(tr[2:4])
		udpLen := int(binary.BigEndian.Uint16(tr[4:6]))
		if udpLen < UDPHeaderLen || udpLen > len(tr) {
			return out, fmt.Errorf("%w: udp length %d", ErrTruncated, udpLen)
		}
		// A zero UDP checksum means "not computed" and is legal.
		if binary.BigEndian.Uint16(tr[6:8]) != 0 {
			if checksum(tr[:udpLen], pseudoHeaderSum(out.Tuple, udpLen)) != 0 {
				return out, fmt.Errorf("%w: udp datagram", ErrBadChecksum)
			}
		}
		out.Payload = tr[UDPHeaderLen:udpLen]
	default:
		return out, fmt.Errorf("%w: %d", ErrProto, proto)
	}
	out.Length = EthernetHeaderLen + ipTotal
	return out, nil
}

// ToPacket converts a decoded frame back to the simulator's Packet form.
// Direction is recovered from the synthetic MAC addresses; frames from
// other sources default to Incoming.
func (f Frame) ToPacket() Packet {
	dir := Incoming
	if f.SrcMAC == clientMAC {
		dir = Outgoing
	}
	return Packet{
		Tuple:  f.Tuple,
		Dir:    dir,
		Flags:  f.Flags,
		Length: f.Length,
	}
}

// pseudoHeaderSum computes the partial ones-complement sum of the IPv4
// pseudo-header used by TCP and UDP checksums.
func pseudoHeaderSum(t Tuple, transportLen int) uint32 {
	var sum uint32
	src, dst := uint32(t.Src), uint32(t.Dst)
	sum += src >> 16
	sum += src & 0xffff
	sum += dst >> 16
	sum += dst & 0xffff
	sum += uint32(t.Proto)
	sum += uint32(transportLen)
	return sum
}

// checksum computes the RFC 1071 ones-complement checksum of data with an
// initial partial sum.
func checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
