package packet

import "encoding/binary"

// The zero-copy decode path: wire bytes to a verdict-ready tuple without
// materializing a Frame or touching the payload.
//
// Decode builds a Frame (MACs, seq/ack, a payload subslice) and verifies
// the transport checksum, which walks every payload byte — the right
// contract for offline trace analysis, and the wrong one for an inline
// edge device judging 500K+ pps. DecodeTuple and DecodeInto read only
// header bytes: Ethernet (direction from the synthetic MACs), the IPv4
// header (version/IHL/length/fragment checks plus the 20-byte header
// checksum), and the first transport words (ports, TCP flags, structural
// length checks). Everything stays in registers; the payload is never
// loaded.
//
// The two paths are pinned against each other: the structural checks run
// in exactly Decode's order, return the same sentinel errors, and the only
// permitted divergence is the transport checksum — a frame whose payload
// (or transport header) is corrupt decodes here and fails Decode with
// ErrBadChecksum. TestDecodeTupleMatchesDecode and
// FuzzDecodeTupleEquivalence enforce the contract.

// decodeHeaders is the shared header-only parse behind DecodeTuple and
// DecodeInto. All results are scalar; error returns are bare sentinels
// (never wrapped) so the path performs zero allocations.
//
//bf:hotpath
func decodeHeaders(frame []byte) (tup Tuple, dir Direction, flags Flags, length int, err error) {
	if len(frame) < EthernetHeaderLen+IPv4HeaderLen {
		return tup, dir, flags, length, ErrTruncated
	}
	dir = Incoming
	if MAC(frame[6:12]) == clientMAC {
		dir = Outgoing
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeIPv4 {
		return tup, dir, flags, length, ErrNotIPv4
	}

	ip := frame[EthernetHeaderLen:]
	if ip[0]>>4 != 4 {
		return tup, dir, flags, length, ErrBadIPVersion
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return tup, dir, flags, length, ErrBadIHL
	}
	if checksum(ip[:ihl], 0) != 0 {
		return tup, dir, flags, length, ErrBadChecksum
	}
	ipTotal := int(binary.BigEndian.Uint16(ip[2:4]))
	if ipTotal < ihl || len(ip) < ipTotal {
		return tup, dir, flags, length, ErrTruncated
	}
	if binary.BigEndian.Uint16(ip[6:8])&fragMask != 0 {
		return tup, dir, flags, length, ErrFragmented
	}
	proto := Proto(ip[9])
	tup.Src = Addr(binary.BigEndian.Uint32(ip[12:16]))
	tup.Dst = Addr(binary.BigEndian.Uint32(ip[16:20]))
	tup.Proto = proto

	tr := ip[ihl:ipTotal]
	switch proto {
	case TCP:
		if len(tr) < TCPHeaderLen {
			return tup, dir, flags, length, ErrTruncated
		}
		tup.SrcPort = binary.BigEndian.Uint16(tr[0:2])
		tup.DstPort = binary.BigEndian.Uint16(tr[2:4])
		if dataOff := int(tr[12]>>4) * 4; dataOff < TCPHeaderLen || len(tr) < dataOff {
			return tup, dir, flags, length, ErrTruncated
		}
		flags = Flags(tr[13])
	case UDP:
		if len(tr) < UDPHeaderLen {
			return tup, dir, flags, length, ErrTruncated
		}
		tup.SrcPort = binary.BigEndian.Uint16(tr[0:2])
		tup.DstPort = binary.BigEndian.Uint16(tr[2:4])
		if udpLen := int(binary.BigEndian.Uint16(tr[4:6])); udpLen < UDPHeaderLen || udpLen > len(tr) {
			return tup, dir, flags, length, ErrTruncated
		}
	default:
		return tup, dir, flags, length, ErrProto
	}
	return tup, dir, flags, EthernetHeaderLen + ipTotal, nil
}

// DecodeTuple parses just enough of an Ethernet/IPv4/TCP-or-UDP frame to
// produce the filter's address tuple and the packet direction (recovered
// from the synthetic MAC addresses; frames from other sources are
// Incoming). It allocates nothing, reads no payload bytes, and does not
// verify the transport checksum — see the package contract above. The
// returned tuple feeds the fixed-width key kernels directly via
// Tuple.OutgoingKeyWords / IncomingKeyWords.
//
//bf:hotpath
func DecodeTuple(frame []byte) (Tuple, Direction, error) {
	tup, dir, _, _, err := decodeHeaders(frame)
	if err != nil {
		return Tuple{}, 0, err
	}
	return tup, dir, nil
}

// DecodeInto is the wire-to-batch entry point of the live packet plane:
// it fills pkt's Tuple, Dir, Flags and Length straight off the header
// bytes, leaving pkt.Time for the caller to stamp (capture timestamp or
// wall clock). On error pkt is unmodified. Like DecodeTuple it performs
// zero allocations and skips the transport checksum; for a frame both
// paths accept, the filled packet is byte-identical to
// Decode(frame).ToPacket().
//
//bf:hotpath
func DecodeInto(pkt *Packet, frame []byte) error {
	tup, dir, flags, length, err := decodeHeaders(frame)
	if err != nil {
		return err
	}
	pkt.Tuple = tup
	pkt.Dir = dir
	pkt.Flags = flags
	pkt.Length = length
	return nil
}
