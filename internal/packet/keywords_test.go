package packet

import (
	"testing"

	"bitmapfilter/internal/xrand"
)

func packLEBytes(b []byte) (lo, hi uint64) {
	for i, c := range b {
		if i < 8 {
			lo |= uint64(c) << (8 * uint(i))
		} else {
			hi |= uint64(c) << (8 * uint(i-8))
		}
	}
	return lo, hi
}

// TestKeyWordsMatchBytes pins the packed key words to the byte encodings:
// OutgoingKeyWords/IncomingKeyWords/FullKeyWords must equal the
// little-endian packing of OutgoingKey/IncomingKey/FullKey for arbitrary
// tuples. The filter hot path hashes the word forms; any divergence here
// would silently change every hash the filter computes.
func TestKeyWordsMatchBytes(t *testing.T) {
	r := xrand.New(11)
	for trial := 0; trial < 5000; trial++ {
		tup := Tuple{
			Src:     Addr(r.Uint32()),
			Dst:     Addr(r.Uint32()),
			SrcPort: uint16(r.Uint32()),
			DstPort: uint16(r.Uint32()),
			Proto:   Proto(r.Uint32()),
		}
		check := func(name string, gotLo, gotHi uint64, key []byte) {
			t.Helper()
			wantLo, wantHi := packLEBytes(key)
			if gotLo != wantLo || gotHi != wantHi {
				t.Fatalf("%s(%v) = (%#x, %#x), want (%#x, %#x)", name, tup, gotLo, gotHi, wantLo, wantHi)
			}
		}
		ok := tup.OutgoingKey()
		lo, hi := tup.OutgoingKeyWords()
		check("OutgoingKeyWords", lo, hi, ok[:])
		ik := tup.IncomingKey()
		lo, hi = tup.IncomingKeyWords()
		check("IncomingKeyWords", lo, hi, ik[:])
		fk := tup.FullKey()
		lo, hi = tup.FullKeyWords()
		check("FullKeyWords", lo, hi, fk[:])
	}
}
