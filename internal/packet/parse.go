package packet

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrParse is returned for malformed textual addresses and prefixes.
var ErrParse = errors.New("packet: malformed address")

// ParseAddr parses a dotted-quad IPv4 address ("10.1.2.3"). Each octet
// must be a plain decimal in [0, 255] — no whitespace, signs, hex, or
// leading-zero octal ambiguity.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	for i := 0; i < 4; i++ {
		part := s
		if i < 3 {
			dot := strings.IndexByte(s, '.')
			if dot < 0 {
				return 0, fmt.Errorf("%w: %q", ErrParse, s)
			}
			part, s = s[:dot], s[dot+1:]
		}
		if len(part) == 0 || len(part) > 3 || (len(part) > 1 && part[0] == '0') {
			return 0, fmt.Errorf("%w: octet %q", ErrParse, part)
		}
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("%w: octet %q", ErrParse, part)
		}
		a = a<<8 | Addr(v)
	}
	return a, nil
}

// ParsePrefix parses CIDR notation ("10.1.0.0/16") into a Prefix. The
// base must be canonical — host bits below the prefix length must be
// zero — so that a configuration typo ("10.1.2.3/16") is rejected
// instead of silently masked to a different subnet.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q has no /bits", ErrParse, s)
	}
	base, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bitsStr := s[slash+1:]
	if len(bitsStr) == 0 || len(bitsStr) > 2 || (len(bitsStr) > 1 && bitsStr[0] == '0') {
		return Prefix{}, fmt.Errorf("%w: prefix length %q", ErrParse, bitsStr)
	}
	bits, err := strconv.ParseUint(bitsStr, 10, 8)
	if err != nil || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: prefix length %q", ErrParse, bitsStr)
	}
	p := PrefixFrom(base, uint8(bits))
	if p.Base != base {
		return Prefix{}, fmt.Errorf("%w: %q has host bits set below /%d", ErrParse, s, bits)
	}
	return p, nil
}
