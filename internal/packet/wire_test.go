package packet

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func samplePacket(proto Proto) Packet {
	return Packet{
		Tuple: Tuple{
			Src:     AddrFrom4(10, 0, 0, 5),
			Dst:     AddrFrom4(198, 51, 100, 7),
			SrcPort: 40000,
			DstPort: 80,
			Proto:   proto,
		},
		Dir:    Outgoing,
		Flags:  SYN,
		Length: 120,
	}
}

func TestEncodeDecodeTCP(t *testing.T) {
	pkt := samplePacket(TCP)
	frame, err := Encode(pkt)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(frame) != pkt.Length {
		t.Errorf("frame length %d, want %d", len(frame), pkt.Length)
	}
	dec, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Tuple != pkt.Tuple {
		t.Errorf("tuple %+v, want %+v", dec.Tuple, pkt.Tuple)
	}
	if dec.Flags != pkt.Flags {
		t.Errorf("flags %v, want %v", dec.Flags, pkt.Flags)
	}
	if dec.Length != pkt.Length {
		t.Errorf("decoded length %d, want %d", dec.Length, pkt.Length)
	}
	back := dec.ToPacket()
	if back.Dir != Outgoing {
		t.Errorf("direction %v, want out", back.Dir)
	}
	if back.Tuple != pkt.Tuple {
		t.Errorf("round-trip tuple %+v", back.Tuple)
	}
}

func TestEncodeDecodeUDP(t *testing.T) {
	pkt := samplePacket(UDP)
	pkt.Flags = 0
	pkt.Dir = Incoming
	frame, err := Encode(pkt)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Tuple != pkt.Tuple {
		t.Errorf("tuple %+v", dec.Tuple)
	}
	if got := dec.ToPacket().Dir; got != Incoming {
		t.Errorf("direction %v, want in", got)
	}
}

func TestEncodeMinimumLength(t *testing.T) {
	pkt := samplePacket(TCP)
	pkt.Length = 1 // below header size: must be padded up
	frame, err := Encode(pkt)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(frame) != EthernetHeaderLen+IPv4HeaderLen+TCPHeaderLen {
		t.Errorf("minimum frame length = %d", len(frame))
	}
	if _, err := Decode(frame); err != nil {
		t.Errorf("Decode minimal frame: %v", err)
	}
}

func TestEncodeUnsupportedProto(t *testing.T) {
	pkt := samplePacket(Proto(47))
	if _, err := Encode(pkt); !errors.Is(err, ErrProto) {
		t.Errorf("error = %v, want ErrProto", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	frame, err := Encode(samplePacket(TCP))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 10, EthernetHeaderLen + 5, EthernetHeaderLen + IPv4HeaderLen + 3} {
		if _, err := Decode(frame[:n]); err == nil {
			t.Errorf("Decode of %d-byte prefix succeeded", n)
		}
	}
}

func TestDecodeBadEtherType(t *testing.T) {
	frame, _ := Encode(samplePacket(TCP))
	binary.BigEndian.PutUint16(frame[12:14], 0x86dd) // IPv6
	if _, err := Decode(frame); !errors.Is(err, ErrNotIPv4) {
		t.Errorf("error = %v, want ErrNotIPv4", err)
	}
}

func TestDecodeBadIPVersion(t *testing.T) {
	frame, _ := Encode(samplePacket(TCP))
	frame[EthernetHeaderLen] = 0x65 // version 6
	if _, err := Decode(frame); !errors.Is(err, ErrBadIPVersion) {
		t.Errorf("error = %v, want ErrBadIPVersion", err)
	}
}

func TestDecodeCorruptedIPChecksum(t *testing.T) {
	frame, _ := Encode(samplePacket(TCP))
	frame[EthernetHeaderLen+12] ^= 0xff // flip a source-address byte
	if _, err := Decode(frame); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("error = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeCorruptedTCPChecksum(t *testing.T) {
	frame, _ := Encode(samplePacket(TCP))
	// Flip a payload byte: the IP header checksum stays valid, the TCP
	// checksum must catch it.
	frame[len(frame)-1] ^= 0xff
	if _, err := Decode(frame); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("error = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeCorruptedUDPChecksum(t *testing.T) {
	pkt := samplePacket(UDP)
	frame, _ := Encode(pkt)
	frame[len(frame)-1] ^= 0xff
	if _, err := Decode(frame); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("error = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeZeroUDPChecksumAccepted(t *testing.T) {
	pkt := samplePacket(UDP)
	frame, _ := Encode(pkt)
	// Zero out the UDP checksum: RFC 768 "no checksum".
	off := EthernetHeaderLen + IPv4HeaderLen + 6
	frame[off], frame[off+1] = 0, 0
	if _, err := Decode(frame); err != nil {
		t.Errorf("zero UDP checksum rejected: %v", err)
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, udp bool, flags uint8, extra uint16) bool {
		proto := TCP
		if udp {
			proto = UDP
		}
		pkt := Packet{
			Tuple: Tuple{
				Src: Addr(src), Dst: Addr(dst),
				SrcPort: sp, DstPort: dp, Proto: proto,
			},
			Dir:    Outgoing,
			Length: EthernetHeaderLen + IPv4HeaderLen + TCPHeaderLen + int(extra%1400),
		}
		if proto == TCP {
			pkt.Flags = Flags(flags) & (FIN | SYN | RST | PSH | ACK | URG)
		}
		frame, err := Encode(pkt)
		if err != nil {
			return false
		}
		dec, err := Decode(frame)
		if err != nil {
			return false
		}
		return dec.Tuple == pkt.Tuple && dec.Flags == pkt.Flags && dec.Length == len(frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: the checksum of {0x00,0x01,0xf2,0x03,0xf4,0xf5,
	// 0xf6,0xf7} has partial sum 0x2ddf0 -> folded 0xddf2 -> complement
	// 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := checksum(data, 0); got != 0x220d {
		t.Errorf("checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length data pads with a zero byte: {0x01} -> sum 0x0100 ->
	// complement 0xfeff.
	if got := checksum([]byte{0x01}, 0); got != 0xfeff {
		t.Errorf("checksum = %#04x, want 0xfeff", got)
	}
}

func BenchmarkEncodeTCP(b *testing.B) {
	pkt := samplePacket(TCP)
	pkt.Length = 720 // paper's average packet size
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeTCP(b *testing.B) {
	pkt := samplePacket(TCP)
	pkt.Length = 720
	frame, err := Encode(pkt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
