package packet

import (
	"testing"
	"testing/quick"
	"time"
)

func TestProtoString(t *testing.T) {
	tests := []struct {
		proto Proto
		want  string
	}{
		{TCP, "tcp"},
		{UDP, "udp"},
		{Proto(1), "proto(1)"},
	}
	for _, tt := range tests {
		if got := tt.proto.String(); got != tt.want {
			t.Errorf("Proto(%d).String() = %q, want %q", tt.proto, got, tt.want)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if Outgoing.String() != "out" || Incoming.String() != "in" {
		t.Error("direction strings wrong")
	}
	if Direction(9).String() != "direction(9)" {
		t.Error("unknown direction string wrong")
	}
}

func TestFlags(t *testing.T) {
	f := SYN | ACK
	if !f.Has(SYN) || !f.Has(ACK) || !f.Has(SYN|ACK) {
		t.Error("Has broken")
	}
	if f.Has(FIN) {
		t.Error("Has reports unset flag")
	}
	if f.String() != "SA" {
		t.Errorf("String = %q, want SA", f.String())
	}
	if Flags(0).String() != "." {
		t.Errorf("empty flags String = %q", Flags(0).String())
	}
	if (FIN | RST | PSH | URG).String() != "FRPU" {
		t.Errorf("FRPU = %q", (FIN | RST | PSH | URG).String())
	}
}

func TestAddrRoundTrip(t *testing.T) {
	a := AddrFrom4(192, 0, 2, 17)
	o1, o2, o3, o4 := a.Octets()
	if o1 != 192 || o2 != 0 || o3 != 2 || o4 != 17 {
		t.Errorf("Octets = %d.%d.%d.%d", o1, o2, o3, o4)
	}
	if a.String() != "192.0.2.17" {
		t.Errorf("String = %q", a.String())
	}
}

func TestPrefix(t *testing.T) {
	p := PrefixFrom(AddrFrom4(10, 1, 2, 200), 24)
	if p.Base != AddrFrom4(10, 1, 2, 0) {
		t.Errorf("Base not masked: %s", p.Base)
	}
	if !p.Contains(AddrFrom4(10, 1, 2, 0)) || !p.Contains(AddrFrom4(10, 1, 2, 255)) {
		t.Error("Contains rejects member")
	}
	if p.Contains(AddrFrom4(10, 1, 3, 0)) {
		t.Error("Contains accepts outsider")
	}
	if p.Size() != 256 {
		t.Errorf("Size = %d", p.Size())
	}
	if p.Nth(5) != AddrFrom4(10, 1, 2, 5) {
		t.Errorf("Nth(5) = %s", p.Nth(5))
	}
	if p.Nth(256+7) != AddrFrom4(10, 1, 2, 7) {
		t.Errorf("Nth wraps wrong: %s", p.Nth(256+7))
	}
	if p.String() != "10.1.2.0/24" {
		t.Errorf("String = %q", p.String())
	}
}

func TestPrefixEdgeBits(t *testing.T) {
	p0 := PrefixFrom(AddrFrom4(1, 2, 3, 4), 0)
	if !p0.Contains(AddrFrom4(255, 255, 255, 255)) {
		t.Error("/0 does not contain everything")
	}
	p32 := PrefixFrom(AddrFrom4(1, 2, 3, 4), 32)
	if !p32.Contains(AddrFrom4(1, 2, 3, 4)) || p32.Contains(AddrFrom4(1, 2, 3, 5)) {
		t.Error("/32 wrong")
	}
	pBig := PrefixFrom(AddrFrom4(1, 2, 3, 4), 40)
	if pBig.Bits != 32 {
		t.Errorf("bits > 32 not clamped: %d", pBig.Bits)
	}
}

func TestTupleReverse(t *testing.T) {
	tup := Tuple{
		Src:     AddrFrom4(10, 0, 0, 1),
		Dst:     AddrFrom4(198, 51, 100, 7),
		SrcPort: 12345,
		DstPort: 80,
		Proto:   TCP,
	}
	rev := tup.Reverse()
	if rev.Src != tup.Dst || rev.Dst != tup.Src ||
		rev.SrcPort != tup.DstPort || rev.DstPort != tup.SrcPort ||
		rev.Proto != tup.Proto {
		t.Errorf("Reverse = %+v", rev)
	}
	if rev.Reverse() != tup {
		t.Error("double Reverse is not identity")
	}
}

func TestReverseInvolutionProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, udp bool) bool {
		proto := TCP
		if udp {
			proto = UDP
		}
		tup := Tuple{Src: Addr(src), Dst: Addr(dst), SrcPort: sp, DstPort: dp, Proto: proto}
		return tup.Reverse().Reverse() == tup
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The central correctness property of §3.3: an incoming reply's IncomingKey
// must equal the original outgoing packet's OutgoingKey, even when the
// remote answers from a different source port.
func TestKeySymmetry(t *testing.T) {
	out := Tuple{
		Src:     AddrFrom4(10, 0, 0, 1),
		Dst:     AddrFrom4(198, 51, 100, 7),
		SrcPort: 40000,
		DstPort: 80,
		Proto:   TCP,
	}
	reply := out.Reverse()
	if reply.IncomingKey() != out.OutgoingKey() {
		t.Error("reply IncomingKey != request OutgoingKey")
	}

	// Reply from a *different* remote port still matches (the remote
	// port is excluded from the key).
	replyOtherPort := reply
	replyOtherPort.SrcPort = 8080
	if replyOtherPort.IncomingKey() != out.OutgoingKey() {
		t.Error("reply from different remote port does not match")
	}

	// But a packet to a different *local* port must not match.
	otherLocal := reply
	otherLocal.DstPort = 40001
	if otherLocal.IncomingKey() == out.OutgoingKey() {
		t.Error("different local port collides")
	}

	// A different remote host must not match.
	otherRemote := reply
	otherRemote.Src = AddrFrom4(203, 0, 113, 9)
	if otherRemote.IncomingKey() == out.OutgoingKey() {
		t.Error("different remote host collides")
	}

	// Same addresses under a different protocol must not match.
	udpReply := reply
	udpReply.Proto = UDP
	if udpReply.IncomingKey() == out.OutgoingKey() {
		t.Error("UDP aliases TCP key")
	}
}

func TestKeySymmetryProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp, remotePort uint16) bool {
		out := Tuple{Src: Addr(src), Dst: Addr(dst), SrcPort: sp, DstPort: dp, Proto: TCP}
		reply := out.Reverse()
		reply.SrcPort = remotePort // remote may answer from any port
		return reply.IncomingKey() == out.OutgoingKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFullKeyDistinguishesRemotePort(t *testing.T) {
	a := Tuple{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: TCP}
	b := a
	b.DstPort = 5
	if a.FullKey() == b.FullKey() {
		t.Error("FullKey ignores remote port")
	}
	if a.OutgoingKey() != b.OutgoingKey() {
		t.Error("OutgoingKey should ignore remote port")
	}
}

func TestIsSignal(t *testing.T) {
	mk := func(proto Proto, flags Flags) Packet {
		return Packet{Tuple: Tuple{Proto: proto}, Flags: flags}
	}
	tests := []struct {
		name string
		pkt  Packet
		want bool
	}{
		{name: "syn-ack", pkt: mk(TCP, SYN|ACK), want: true},
		{name: "fin-ack", pkt: mk(TCP, FIN|ACK), want: true},
		{name: "rst", pkt: mk(TCP, RST), want: true},
		{name: "rst-ack", pkt: mk(TCP, RST|ACK), want: true},
		{name: "bare syn", pkt: mk(TCP, SYN), want: false},
		{name: "bare fin", pkt: mk(TCP, FIN), want: false},
		{name: "data ack", pkt: mk(TCP, ACK), want: false},
		{name: "data psh-ack", pkt: mk(TCP, PSH|ACK), want: false},
		{name: "udp", pkt: mk(UDP, 0), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.pkt.IsSignal(); got != tt.want {
				t.Errorf("IsSignal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStringers(t *testing.T) {
	tup := Tuple{
		Src:     AddrFrom4(10, 0, 0, 1),
		Dst:     AddrFrom4(198, 51, 100, 7),
		SrcPort: 40000,
		DstPort: 80,
		Proto:   TCP,
	}
	want := "tcp 10.0.0.1:40000>198.51.100.7:80"
	if got := tup.String(); got != want {
		t.Errorf("Tuple.String = %q, want %q", got, want)
	}
	p := Packet{Time: time.Second, Tuple: tup, Dir: Outgoing, Flags: SYN, Length: 60}
	if p.String() == "" {
		t.Error("Packet.String empty")
	}
}
