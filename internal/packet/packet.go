// Package packet models the TCP/UDP-over-IPv4 packets that flow through the
// simulated ISP network, together with the address tuples the bitmap filter
// hashes. It also provides full wire-format encoding and decoding of
// Ethernet/IPv4/TCP/UDP headers (see wire.go) so traces can round-trip
// through the pcap format and real tools.
//
// Terminology follows §3.2 of the paper: an *outgoing* packet is sent from a
// client network, an *incoming* packet is received by a client network, and
// each packet carries an address tuple
// τ = {source-address, source-port, destination-address, destination-port}.
package packet

import (
	"fmt"
	"math/bits"
	"time"
)

// Proto identifies the transport protocol of a packet. Values match the IP
// protocol numbers so headers can be encoded directly.
type Proto uint8

// Transport protocols used by the simulator.
const (
	TCP Proto = 6
	UDP Proto = 17
)

// String returns the conventional protocol name.
func (p Proto) String() string {
	switch p {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Direction tells whether a packet leaves or enters the client network, as
// observed by the edge router the filter is installed on.
type Direction uint8

// Packet directions relative to the protected client network.
const (
	Outgoing Direction = iota + 1
	Incoming
)

// String returns "out" or "in".
func (d Direction) String() string {
	switch d {
	case Outgoing:
		return "out"
	case Incoming:
		return "in"
	default:
		return fmt.Sprintf("direction(%d)", uint8(d))
	}
}

// Flags holds TCP control flags. For UDP packets Flags is zero.
type Flags uint8

// TCP flag bits (matching the TCP header layout).
const (
	FIN Flags = 1 << iota
	SYN
	RST
	PSH
	ACK
	URG
)

// Has reports whether every flag in mask is set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// String renders flags in tcpdump-like notation, e.g. "SA" for SYN+ACK.
func (f Flags) String() string {
	if f == 0 {
		return "."
	}
	var out []byte
	for _, fl := range []struct {
		bit Flags
		ch  byte
	}{
		{FIN, 'F'}, {SYN, 'S'}, {RST, 'R'}, {PSH, 'P'}, {ACK, 'A'}, {URG, 'U'},
	} {
		if f&fl.bit != 0 {
			out = append(out, fl.ch)
		}
	}
	return string(out)
}

// Addr is an IPv4 address in host byte order. uint32 keeps tuples compact
// and comparable.
type Addr uint32

// AddrFrom4 builds an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(a)<<24 | Addr(b)<<16 | Addr(c)<<8 | Addr(d)
}

// Octets returns the four dotted-quad octets of the address.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	o1, o2, o3, o4 := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", o1, o2, o3, o4)
}

// Prefix describes an IPv4 CIDR prefix used to define client subnets.
type Prefix struct {
	Base Addr
	Bits uint8
}

// PrefixFrom returns the prefix base/bits with the base masked to the prefix
// length.
func PrefixFrom(base Addr, bits uint8) Prefix {
	if bits > 32 {
		bits = 32
	}
	return Prefix{Base: base & mask32(bits), Bits: bits}
}

func mask32(bits uint8) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - bits))
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr Addr) bool {
	return addr&mask32(p.Bits) == p.Base
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 { return 1 << (32 - p.Bits) }

// Nth returns the i-th address in the prefix (wrapping modulo its size).
func (p Prefix) Nth(i uint64) Addr {
	return p.Base | Addr(i%p.Size())
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Base, p.Bits)
}

// Tuple is the address tuple τ of a packet:
// {source-address, source-port, destination-address, destination-port}
// plus the transport protocol.
type Tuple struct {
	Src     Addr
	Dst     Addr
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// Reverse returns the inverse tuple τ⁻¹ = {dst, dport, src, sport}: the
// tuple a reply packet would carry.
func (t Tuple) Reverse() Tuple {
	return Tuple{
		Src:     t.Dst,
		Dst:     t.Src,
		SrcPort: t.DstPort,
		DstPort: t.SrcPort,
		Proto:   t.Proto,
	}
}

// String renders the tuple as "proto src:sport>dst:dport".
func (t Tuple) String() string {
	return fmt.Sprintf("%s %s:%d>%s:%d", t.Proto, t.Src, t.SrcPort, t.Dst, t.DstPort)
}

// KeySize is the byte length of the keys produced by OutgoingKey and
// IncomingKey: 4 (local addr) + 2 (local port) + 4 (remote addr) + 1 (proto).
const KeySize = 11

// Key is the fixed-size byte string hashed by the bitmap filter.
type Key [KeySize]byte

// OutgoingKey builds the filter key of an outgoing packet. Per §3.3 the
// filter hashes only {source-address, source-port, destination-address} —
// the remote port is deliberately excluded so replies from any remote port
// are admitted. The protocol number is appended so TCP and UDP flows with
// identical addresses do not alias.
func (t Tuple) OutgoingKey() Key {
	return makeKey(t.Src, t.SrcPort, t.Dst, t.Proto)
}

// IncomingKey builds the filter key of an incoming packet: per §3.3 only
// {destination-address, destination-port, source-address} are hashed. For a
// reply to an earlier outgoing packet this equals the OutgoingKey of that
// packet, which is exactly what makes marking-on-out / lookup-on-in work.
func (t Tuple) IncomingKey() Key {
	return makeKey(t.Dst, t.DstPort, t.Src, t.Proto)
}

// FullKeySize is the byte length of FullKey: the complete 4-tuple plus
// protocol.
const FullKeySize = 13

// FullKey encodes the complete 4-tuple plus protocol. It is what exact
// (SPI-style) flow tables key on, and what the full-tuple ablation hashes.
func (t Tuple) FullKey() [FullKeySize]byte {
	var k [FullKeySize]byte
	put32(k[0:], uint32(t.Src))
	put16(k[4:], t.SrcPort)
	put32(k[6:], uint32(t.Dst))
	put16(k[10:], t.DstPort)
	k[12] = byte(t.Proto)
	return k
}

func makeKey(local Addr, localPort uint16, remote Addr, proto Proto) Key {
	var k Key
	put32(k[0:], uint32(local))
	put16(k[4:], localPort)
	put32(k[6:], uint32(remote))
	k[10] = byte(proto)
	return k
}

// The *KeyWords forms below pack the exact bytes of the corresponding key
// into two little-endian 64-bit words (lo = bytes 0..7, hi = the rest),
// the fixed-width representation hashfam's short-key kernels consume. They
// exist so the per-packet hot path never materializes a byte slice: the
// key goes from tuple fields to hash lanes entirely in registers. Pinned
// against the byte encodings by TestKeyWordsMatchBytes.

// OutgoingKeyWords is OutgoingKey packed into (lo, hi); hash it with
// length KeySize.
//
//bf:hotpath
func (t Tuple) OutgoingKeyWords() (lo, hi uint64) {
	return keyWords(t.Src, t.SrcPort, t.Dst, t.Proto)
}

// IncomingKeyWords is IncomingKey packed into (lo, hi); hash it with
// length KeySize.
//
//bf:hotpath
func (t Tuple) IncomingKeyWords() (lo, hi uint64) {
	return keyWords(t.Dst, t.DstPort, t.Src, t.Proto)
}

// FullKeyWords is FullKey packed into (lo, hi); hash it with length
// FullKeySize.
//
//bf:hotpath
func (t Tuple) FullKeyWords() (lo, hi uint64) {
	lo, r := keyHead(t.Src, t.SrcPort, t.Dst)
	hi = r>>16 |
		uint64(bits.ReverseBytes16(t.DstPort))<<16 |
		uint64(t.Proto)<<32
	return lo, hi
}

// keyHead packs the shared 10-byte prefix {local BE, localPort BE, remote
// BE} of every key layout: lo holds bytes 0..7, and the returned r is the
// byte-reversed remote address whose low half already sits in lo's top 16
// bits (bytes 8..9 of the key are r>>16).
//
//bf:hotpath
func keyHead(local Addr, localPort uint16, remote Addr) (lo, r uint64) {
	r = uint64(bits.ReverseBytes32(uint32(remote)))
	lo = uint64(bits.ReverseBytes32(uint32(local))) |
		uint64(bits.ReverseBytes16(localPort))<<32 |
		r<<48
	return lo, r
}

//bf:hotpath
func keyWords(local Addr, localPort uint16, remote Addr, proto Proto) (lo, hi uint64) {
	lo, r := keyHead(local, localPort, remote)
	return lo, r>>16 | uint64(proto)<<16
}

func put32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func put16(b []byte, v uint16) {
	b[0] = byte(v >> 8)
	b[1] = byte(v)
}

// Packet is one simulated packet observed at the edge router.
type Packet struct {
	// Time is the observation timestamp on the simulation clock.
	Time time.Duration
	// Tuple is the address tuple as carried in the packet headers.
	Tuple Tuple
	// Dir is the packet direction relative to the client network.
	Dir Direction
	// Flags holds TCP control flags (zero for UDP).
	Flags Flags
	// Length is the total packet length in bytes (headers + payload).
	Length int
}

// IsSignal reports whether the packet is a TCP *signal* packet in the sense
// of §5.3: SYN+ACK, FIN+ACK, RST, or RST+ACK. Under the APD marking policy
// outgoing signal packets do not mark the bitmap, so that responses elicited
// by SYN/FIN scans cannot inflate it. A bare SYN or bare FIN (no ACK) is a
// genuine connection-opening/closing action and is NOT a signal packet.
func (p Packet) IsSignal() bool {
	if p.Tuple.Proto != TCP {
		return false
	}
	f := p.Flags
	switch {
	case f.Has(SYN | ACK):
		return true
	case f.Has(FIN | ACK):
		return true
	case f&RST != 0:
		return true
	default:
		return false
	}
}

// String renders the packet compactly for logs and debugging.
func (p Packet) String() string {
	return fmt.Sprintf("%v %s %s [%s] %dB", p.Time, p.Dir, p.Tuple, p.Flags, p.Length)
}
