package packet

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

// refixIPChecksum recomputes the IPv4 header checksum of an encoded frame
// after a test mutated header bytes, so the mutation under test — not a
// checksum mismatch — is what the decoder sees.
func refixIPChecksum(frame []byte) {
	ip := frame[EthernetHeaderLen:]
	ip[10], ip[11] = 0, 0
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:IPv4HeaderLen], 0))
}

// decodeSentinels are the error classes the decoders may return; the
// differential tests assert both paths pick the same one.
var decodeSentinels = []error{
	ErrTruncated, ErrNotIPv4, ErrBadIPVersion, ErrBadIHL,
	ErrBadChecksum, ErrFragmented, ErrProto,
}

func sameErrorClass(a, b error) bool {
	for _, s := range decodeSentinels {
		if errors.Is(a, s) != errors.Is(b, s) {
			return false
		}
	}
	return true
}

// TestDecodeRejectsFragments: a non-first fragment carries no transport
// header, so both decoders must refuse it rather than misparse payload
// bytes as ports. This is the regression test for the fragment-handling
// bug: the old Decode ignored ip[6:8] entirely.
func TestDecodeRejectsFragments(t *testing.T) {
	cases := []struct {
		name string
		frag uint16 // flags+offset word
		want error
	}{
		{"offset-nonzero", 0x0001, ErrFragmented}, // second fragment
		{"offset-large", 0x1fff, ErrFragmented},
		{"more-fragments", 0x2000, ErrFragmented}, // first fragment, MF set
		{"mf-and-offset", 0x2005, ErrFragmented},
		{"dont-fragment", 0x4000, nil}, // DF is not a fragment
		{"reserved-bit", 0x8000, nil},  // ignored, as before
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := Encode(samplePacket(TCP))
			if err != nil {
				t.Fatal(err)
			}
			binary.BigEndian.PutUint16(frame[EthernetHeaderLen+6:], tc.frag)
			refixIPChecksum(frame)
			_, derr := Decode(frame)
			_, _, terr := DecodeTuple(frame)
			if tc.want == nil {
				if derr != nil || terr != nil {
					t.Fatalf("Decode err = %v, DecodeTuple err = %v, want both nil", derr, terr)
				}
				return
			}
			if !errors.Is(derr, tc.want) {
				t.Errorf("Decode err = %v, want %v", derr, tc.want)
			}
			if !errors.Is(terr, tc.want) {
				t.Errorf("DecodeTuple err = %v, want %v", terr, tc.want)
			}
		})
	}
}

// TestEncodeTooLong pins the boundary of the 16-bit IPv4 total length:
// the largest representable frame is 65535 bytes of IP datagram behind a
// 14-byte Ethernet header. The old Encode silently wrapped the length
// through uint16() above that.
func TestEncodeTooLong(t *testing.T) {
	maxLen := EthernetHeaderLen + 0xffff

	pkt := samplePacket(TCP)
	pkt.Length = maxLen
	frame, err := Encode(pkt)
	if err != nil {
		t.Fatalf("Encode at the boundary (%d bytes): %v", maxLen, err)
	}
	dec, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode of maximum frame: %v", err)
	}
	if dec.Length != maxLen {
		t.Errorf("round-tripped length %d, want %d", dec.Length, maxLen)
	}

	pkt.Length = maxLen + 1
	if _, err := Encode(pkt); !errors.Is(err, ErrTooLong) {
		t.Errorf("Encode(%d bytes) err = %v, want ErrTooLong", pkt.Length, err)
	}
	// Far past the wrap point, where uint16 truncation used to produce a
	// plausible-looking small length.
	pkt.Length = EthernetHeaderLen + 0x10000 + 200
	if _, err := Encode(pkt); !errors.Is(err, ErrTooLong) {
		t.Errorf("Encode(wrapped length) err = %v, want ErrTooLong", err)
	}
}

// TestDecodeTupleMatchesDecode drives both decoders over valid frames of
// every shape Encode produces and requires identical tuples, directions,
// flags and lengths.
func TestDecodeTupleMatchesDecode(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, udp, incoming bool, flags uint8, extra uint16) bool {
		proto := TCP
		if udp {
			proto = UDP
		}
		dir := Outgoing
		if incoming {
			dir = Incoming
		}
		pkt := Packet{
			Tuple: Tuple{
				Src: Addr(src), Dst: Addr(dst),
				SrcPort: sp, DstPort: dp, Proto: proto,
			},
			Dir:    dir,
			Length: EthernetHeaderLen + IPv4HeaderLen + TCPHeaderLen + int(extra%1400),
		}
		if proto == TCP {
			pkt.Flags = Flags(flags) & (FIN | SYN | RST | PSH | ACK | URG)
		}
		frame, err := Encode(pkt)
		if err != nil {
			return false
		}
		fr, err := Decode(frame)
		if err != nil {
			return false
		}
		want := fr.ToPacket()

		tup, gotDir, err := DecodeTuple(frame)
		if err != nil || tup != want.Tuple || gotDir != want.Dir {
			return false
		}
		var into Packet
		if err := DecodeInto(&into, frame); err != nil {
			return false
		}
		return into.Tuple == want.Tuple && into.Dir == want.Dir &&
			into.Flags == want.Flags && into.Length == want.Length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeIntoLeavesPacketOnError: the documented contract is that a
// failed DecodeInto does not modify the packet, so a pump can reuse one
// scratch Packet across frames without scrubbing it between errors.
func TestDecodeIntoLeavesPacketOnError(t *testing.T) {
	frame, err := Encode(samplePacket(TCP))
	if err != nil {
		t.Fatal(err)
	}
	sentinel := Packet{Tuple: Tuple{Src: 0xdead, SrcPort: 7}, Length: 42}
	pkt := sentinel
	if err := DecodeInto(&pkt, frame[:10]); err == nil {
		t.Fatal("truncated frame decoded")
	}
	if pkt != sentinel {
		t.Errorf("packet modified on error: %+v", pkt)
	}
}

// TestDecodeTupleSkipsPayloadChecksum pins the one documented divergence:
// a corrupt payload byte fails Decode (transport checksum) but not the
// header-only path.
func TestDecodeTupleSkipsPayloadChecksum(t *testing.T) {
	pkt := samplePacket(TCP)
	pkt.Length = 200
	frame, err := Encode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] ^= 0xff
	if _, err := Decode(frame); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("Decode of corrupt payload: %v, want ErrBadChecksum", err)
	}
	tup, dir, err := DecodeTuple(frame)
	if err != nil {
		t.Fatalf("DecodeTuple rejected a frame with valid headers: %v", err)
	}
	if tup != pkt.Tuple || dir != Outgoing {
		t.Errorf("tuple %v dir %v", tup, dir)
	}
}

// TestDecodeTupleZeroAllocs is the hot-loop contract: no allocation per
// frame on either success or failure.
func TestDecodeTupleZeroAllocs(t *testing.T) {
	good, err := Encode(samplePacket(TCP))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[EthernetHeaderLen+9] = 47 // unsupported protocol
	refixIPChecksum(bad)

	var pkt Packet
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := DecodeTuple(good); err != nil {
			t.Fatal(err)
		}
		if err := DecodeInto(&pkt, good); err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeTuple(bad); err == nil {
			t.Fatal("bad frame accepted")
		}
	}); n != 0 {
		t.Errorf("zero-copy decode allocates %.1f times per frame", n)
	}
}

func BenchmarkDecodeTuple(b *testing.B) {
	pkt := samplePacket(TCP)
	pkt.Length = 720 // paper's average packet size
	frame, err := Encode(pkt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeTuple(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	pkt := samplePacket(TCP)
	pkt.Length = 720
	frame, err := Encode(pkt)
	if err != nil {
		b.Fatal(err)
	}
	var out Packet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(&out, frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeStructPath is the baseline DecodeInto replaces: the full
// Frame decode (payload checksum included) plus the ToPacket conversion.
func BenchmarkDecodeStructPath(b *testing.B) {
	pkt := samplePacket(TCP)
	pkt.Length = 720
	frame, err := Encode(pkt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := Decode(frame)
		if err != nil {
			b.Fatal(err)
		}
		_ = fr.ToPacket()
	}
}
