package packet

import (
	"errors"
	"testing"
	"testing/quick"
)

// FuzzDecode drives arbitrary bytes through the wire decoder: any input
// may be rejected, none may panic or return a malformed success.
func FuzzDecode(f *testing.F) {
	// Seed with valid TCP and UDP frames plus interesting corruptions.
	tcp, err := Encode(samplePacket(TCP))
	if err != nil {
		f.Fatal(err)
	}
	udp, err := Encode(samplePacket(UDP))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tcp)
	f.Add(udp)
	f.Add(tcp[:20])
	f.Add([]byte{})
	short := append([]byte(nil), tcp...)
	short[EthernetHeaderLen] = 0x46 // IHL 6 words but no options present
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Decode(data)
		if err != nil {
			return
		}
		// Successful decodes must be internally consistent.
		if frame.Length > len(data) {
			t.Fatalf("decoded length %d exceeds input %d", frame.Length, len(data))
		}
		if frame.Tuple.Proto != TCP && frame.Tuple.Proto != UDP {
			t.Fatalf("accepted protocol %d", frame.Tuple.Proto)
		}
		if len(frame.Payload) > len(data) {
			t.Fatal("payload longer than frame")
		}
	})
}

// FuzzDecodeTupleEquivalence is the differential contract between the two
// decoders on arbitrary bytes: they must agree on success (same tuple and
// direction) or fail with the same sentinel class. The single permitted
// divergence is the transport checksum, which the zero-copy path
// deliberately skips (it never reads payload bytes): DecodeTuple may
// succeed where Decode fails, but then only with ErrBadChecksum.
func FuzzDecodeTupleEquivalence(f *testing.F) {
	tcp, err := Encode(samplePacket(TCP))
	if err != nil {
		f.Fatal(err)
	}
	udp, err := Encode(samplePacket(UDP))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tcp)
	f.Add(udp)
	f.Add(tcp[:EthernetHeaderLen+IPv4HeaderLen])
	f.Add([]byte{})
	frag := append([]byte(nil), tcp...)
	frag[EthernetHeaderLen+6] = 0x20 // MF set
	f.Add(frag)
	corrupt := append([]byte(nil), tcp...)
	corrupt[len(corrupt)-1] ^= 0xff // payload bit flip: transport checksum
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		tup, dir, terr := DecodeTuple(data)
		fr, derr := Decode(data)
		switch {
		case terr == nil && derr == nil:
			want := fr.ToPacket()
			if tup != want.Tuple {
				t.Fatalf("tuple mismatch: zero-copy %v, struct %v", tup, want.Tuple)
			}
			if dir != want.Dir {
				t.Fatalf("direction mismatch: zero-copy %v, struct %v", dir, want.Dir)
			}
			var into Packet
			if err := DecodeInto(&into, data); err != nil {
				t.Fatalf("DecodeInto failed where DecodeTuple passed: %v", err)
			}
			if into.Tuple != want.Tuple || into.Dir != want.Dir ||
				into.Flags != want.Flags || into.Length != want.Length {
				t.Fatalf("DecodeInto %+v, struct path %+v", into, want)
			}
		case terr == nil && derr != nil:
			if !errors.Is(derr, ErrBadChecksum) {
				t.Fatalf("zero-copy accepted a frame Decode rejects with %v (only transport-checksum divergence is allowed)", derr)
			}
		case terr != nil && derr == nil:
			t.Fatalf("zero-copy rejected (%v) a frame Decode accepts", terr)
		default:
			if !sameErrorClass(terr, derr) {
				t.Fatalf("error class mismatch: zero-copy %v, struct %v", terr, derr)
			}
		}
	})
}

// TestDecodeRandomMutationsNeverPanic complements the fuzz seed corpus in
// plain `go test` runs: random bit flips over valid frames.
func TestDecodeRandomMutationsNeverPanic(t *testing.T) {
	valid, err := Encode(samplePacket(TCP))
	if err != nil {
		t.Fatal(err)
	}
	fn := func(pos uint16, mask byte, truncate uint16) bool {
		data := append([]byte(nil), valid...)
		data[int(pos)%len(data)] ^= mask
		data = data[:int(truncate)%(len(data)+1)]
		_, _ = Decode(data) // must not panic; error is fine
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
