package packet

import (
	"testing"
	"testing/quick"
)

// FuzzDecode drives arbitrary bytes through the wire decoder: any input
// may be rejected, none may panic or return a malformed success.
func FuzzDecode(f *testing.F) {
	// Seed with valid TCP and UDP frames plus interesting corruptions.
	tcp, err := Encode(samplePacket(TCP))
	if err != nil {
		f.Fatal(err)
	}
	udp, err := Encode(samplePacket(UDP))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tcp)
	f.Add(udp)
	f.Add(tcp[:20])
	f.Add([]byte{})
	short := append([]byte(nil), tcp...)
	short[EthernetHeaderLen] = 0x46 // IHL 6 words but no options present
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Decode(data)
		if err != nil {
			return
		}
		// Successful decodes must be internally consistent.
		if frame.Length > len(data) {
			t.Fatalf("decoded length %d exceeds input %d", frame.Length, len(data))
		}
		if frame.Tuple.Proto != TCP && frame.Tuple.Proto != UDP {
			t.Fatalf("accepted protocol %d", frame.Tuple.Proto)
		}
		if len(frame.Payload) > len(data) {
			t.Fatal("payload longer than frame")
		}
	})
}

// TestDecodeRandomMutationsNeverPanic complements the fuzz seed corpus in
// plain `go test` runs: random bit flips over valid frames.
func TestDecodeRandomMutationsNeverPanic(t *testing.T) {
	valid, err := Encode(samplePacket(TCP))
	if err != nil {
		t.Fatal(err)
	}
	fn := func(pos uint16, mask byte, truncate uint16) bool {
		data := append([]byte(nil), valid...)
		data[int(pos)%len(data)] ^= mask
		data = data[:int(truncate)%(len(data)+1)]
		_, _ = Decode(data) // must not panic; error is fine
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
