package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoleakAnalyzer turns the chaos harness's runtime goroutine-leak checks
// into a compile-time gate: every `go` statement in the capture,
// resilience, checkpoint, and daemon packages must have a statically
// visible join — a signal by which some other goroutine can observe that
// this one finished.
//
// A join signal inside the spawned body (or a same-package callee it
// reaches, two calls deep) is any of:
//
//   - a channel send (including select cases) — the done-channel idiom
//   - close(ch) — typically `defer close(done)`
//   - wg.Done() on a sync.WaitGroup — provided the function that spawns
//     the goroutine also calls Add on a WaitGroup, so the pair is
//     visibly matched; Done without a visible Add is reported, because
//     an unmatched Done is how double-spawn bugs hide
//
// Broadcasting on a sync.Cond does NOT count: a Cond wakes waiters but
// carries no "finished" state a joiner can block on after the fact —
// exactly the gap the chaos tests found at runtime in reopen storms.
//
// A `go` statement whose body the analyzer cannot resolve (a function
// value from a parameter or field) is reported too: an unresolvable
// spawn is unauditable, and the fix is either to spawn a named
// same-package function or to annotate why the join lives elsewhere.
var GoleakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement must have a statically visible join (channel send/close or matched WaitGroup.Add/Done)",
	Run:  runGoleak,
}

// goleakTargetLeaves: the packages whose goroutines outlive request
// scope and therefore leak under reopen storms if unjoined.
var goleakTargetLeaves = map[string]bool{
	"resilience": true,
	"capture":    true,
	"checkpoint": true,
	"bfserve":    true,
	"bfwall":     true,
}

func runGoleak(pass *Pass) error {
	if !goleakTargetLeaves[pkgLeaf(pass.Pkg.Path())] {
		return nil
	}
	// Index same-package function declarations for body resolution.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// spawnerAdds: does the declaring function (any scope within
			// it) call WaitGroup.Add? Computed lazily per decl.
			adds := -1
			spawnerAdds := func() bool {
				if adds < 0 {
					adds = 0
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(pass.TypesInfo, call, "Add") {
							adds = 1
						}
						return true
					})
				}
				return adds == 1
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, gs, decls, spawnerAdds)
				return true
			})
		}
	}
	return nil
}

// checkGoStmt resolves the spawned body and verifies a join signal.
func checkGoStmt(pass *Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl, spawnerAdds func() bool) {
	body := goStmtBody(pass.TypesInfo, gs, decls)
	if body == nil {
		pass.Reportf(gs.Pos(),
			"goroutine body cannot be statically resolved (function value); spawn a named same-package function so the join is auditable")
		return
	}
	j := findJoin(pass.TypesInfo, body, decls, 2, map[*ast.BlockStmt]bool{})
	switch {
	case j.channel:
		return
	case j.wgDone:
		if spawnerAdds() {
			return
		}
		pass.Reportf(gs.Pos(),
			"goroutine signals completion via WaitGroup.Done but the spawning function never calls Add; pair them so the join is visible")
	default:
		pass.Reportf(gs.Pos(),
			"goroutine has no statically visible join (no channel send, close, or WaitGroup.Done on any path); it leaks across reopen cycles")
	}
}

// goStmtBody resolves the body a go statement runs: a FuncLit's own
// body, or the declaration of a same-package function or method.
func goStmtBody(info *types.Info, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return fl.Body
	}
	if fn := calleeFunc(info, gs.Call); fn != nil {
		if fd, ok := decls[fn]; ok {
			return fd.Body
		}
	}
	return nil
}

// joinSignals accumulates what findJoin saw.
type joinSignals struct {
	channel bool // send or close — self-sufficient join
	wgDone  bool // needs a matching Add in the spawner
}

// findJoin searches body — and same-package callees up to depth calls
// deep — for join signals. seen breaks recursion cycles.
func findJoin(info *types.Info, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl, depth int, seen map[*ast.BlockStmt]bool) joinSignals {
	if seen[body] {
		return joinSignals{}
	}
	seen[body] = true
	var j joinSignals
	// Full Inspect (not inspectShallow): a join inside a nested closure
	// the goroutine runs synchronously still joins it.
	ast.Inspect(body, func(n ast.Node) bool {
		if j.channel {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			j.channel = true
		case *ast.CallExpr:
			if ident, ok := n.Fun.(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[ident].(*types.Builtin); isBuiltin && ident.Name == "close" {
					j.channel = true
					return false
				}
			}
			if isWaitGroupCall(info, n, "Done") {
				j.wgDone = true
				return true
			}
			if depth > 0 {
				if fn := calleeFunc(info, n); fn != nil {
					if fd, ok := decls[fn]; ok && fd.Body != nil {
						sub := findJoin(info, fd.Body, decls, depth-1, seen)
						j.channel = j.channel || sub.channel
						j.wgDone = j.wgDone || sub.wgDone
					}
				}
			}
		}
		return true
	})
	return j
}

// isWaitGroupCall reports whether call is <wg>.<name>() on a
// sync.WaitGroup receiver. The type check keeps ctx.Done() and other
// Done/Add methods from matching.
func isWaitGroupCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	s := t.String()
	return strings.HasSuffix(s, "sync.WaitGroup") || strings.HasSuffix(s, "*sync.WaitGroup")
}
