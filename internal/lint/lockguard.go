package lint

import (
	"go/ast"
	"go/types"
)

// LockguardAnalyzer checks mutex discipline declared with //bf:guardedby.
//
// A struct field annotated
//
//	f  *Filter //bf:guardedby mu
//
// may only be read or written through a selector (x.f) inside a function
// that also locks the named sibling mutex on the same base expression
// (x.mu.Lock() or x.mu.RLock()). This is exactly the class of bug behind
// the PR 3 Sharded+APD race: state reachable from multiple goroutines
// touched outside its lock.
//
// The check is intraprocedural and deliberately conservative in what it
// accepts rather than what it flags:
//
//   - Composite literals (construction: &Safe{f: f}) never alias before
//     they escape, so literal keys are exempt.
//   - A lock call anywhere in the same function body sanctions accesses
//     on that base expression; ordering within the body is not modelled.
//   - Function literals are independent scopes: a goroutine body must
//     take the lock itself (it runs concurrently with its creator).
//   - Helpers documented to be called with the lock held, and
//     single-goroutine construction code, use //bf:allow lockguard with
//     a reason.
var LockguardAnalyzer = &Analyzer{
	Name: "lockguard",
	Doc:  "check that //bf:guardedby fields are only accessed under their mutex",
	Run:  runLockguard,
}

func runLockguard(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		funcScopes(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			checkLockScope(pass, guarded, body)
		})
	}
	return nil
}

// collectGuardedFields maps each annotated field object to the name of
// the mutex field guarding it.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutexName, ok := commentHasMarker(field.Doc, guardedByMarker)
				if !ok {
					mutexName, ok = commentHasMarker(field.Comment, guardedByMarker)
				}
				if !ok || mutexName == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = mutexName
					}
				}
			}
			return true
		})
	}
	return guarded
}

// checkLockScope verifies every guarded-field access in one function body
// against the lock calls in the same body.
func checkLockScope(pass *Pass, guarded map[types.Object]string, body *ast.BlockStmt) {
	// locked["base.mu"] is true when base.mu.Lock() or .RLock() appears
	// in this scope. Bases are compared by their printed expression, so
	// receiver idents, range variables and nested selectors all work.
	locked := make(map[string]bool)
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if mutexSel, ok := sel.X.(*ast.SelectorExpr); ok {
			locked[types.ExprString(mutexSel)] = true
		}
		return true
	})

	inspectShallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		mutexName, isGuarded := guarded[selection.Obj()]
		if !isGuarded {
			return true
		}
		base := types.ExprString(sel.X)
		if !locked[base+"."+mutexName] {
			pass.Reportf(sel.Pos(),
				"%s.%s is guarded by %s.%s, but this function never locks it; lock the mutex, or annotate a lock-held helper //bf:allow lockguard with a reason",
				base, sel.Sel.Name, base, mutexName)
		}
		return true
	})
}
