package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library: module-internal imports are resolved from
// source relative to the module root, everything else (the standard
// library — this module has no external dependencies) goes through the
// stdlib "source" importer. This keeps bflint runnable in hermetic
// environments with no module cache and no network.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package // by dir + import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader locates the module containing dir (by walking up to go.mod)
// and returns a Loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer consults go/build; with cgo disabled it picks
	// the pure-Go variants of stdlib packages (net, os/user, ...), which
	// type-check without a C toolchain.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Expand resolves package patterns relative to the module root. "./..."
// (or "...") walks the whole module; "./x" and bare import paths name one
// package. Directories without non-test Go files, testdata trees, and
// hidden/underscore directories are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != l.ModuleRoot &&
					(strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(l.dirToImportPath(path))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		case strings.HasPrefix(pat, "./"):
			dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			if !hasGoFiles(dir) {
				return nil, fmt.Errorf("lint: no Go files in %s", dir)
			}
			add(l.dirToImportPath(dir))
		default:
			add(pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) dirToImportPath(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// Load parses and type-checks the package with the given import path
// (module-internal paths only).
func (l *Loader) Load(path string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	if path != l.ModulePath && !strings.HasPrefix(path, l.ModulePath+"/") {
		return nil, fmt.Errorf("lint: %q is not a package of module %s", path, l.ModulePath)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	return l.loadDir(dir, path)
}

// LoadDir type-checks the package in dir under a caller-chosen import
// path. The analyzer golden tests use it to stand up testdata packages
// whose paths exercise path-sensitive rules (wallclock's allowlist,
// boundedalloc's decoder set).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.loadDir(dir, asPath)
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	// The cache key includes the directory: golden tests stand up
	// different testdata packages under the same synthetic import path
	// (two analyzers both want "example.com/internal/pcap"), and a
	// path-only key would hand the second test the first test's package.
	key := dir + "\x00" + path
	if pkg, ok := l.pkgs[key]; ok {
		return pkg, nil
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		// Respect build constraints the way the compiler does: files gated
		// behind //go:build tags not in the default context (e.g. the
		// afpacket capture backend) would otherwise be type-checked
		// alongside their fallback twins and fail on duplicate symbols.
		if match, err := build.Default.MatchFile(dir, e.Name()); err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[key] = pkg
	return pkg, nil
}

// loaderImporter adapts Loader to types.Importer: module-internal imports
// recurse into the loader, everything else falls through to the stdlib
// source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
