// Package lint is bflint's analysis engine: a small, self-contained
// reimplementation of the golang.org/x/tools/go/analysis driver surface
// (Analyzer, Pass, Diagnostic) built only on the standard library's go/ast
// and go/types, plus the five domain analyzers that enforce this
// repository's own invariants:
//
//   - wallclock:    deterministic packages must not read the wall clock
//   - hotpath:      //bf:hotpath functions must stay allocation-free
//   - lockguard:    //bf:guardedby fields are only touched under their mutex
//   - boundedalloc: untrusted decoders must clamp attacker-controlled sizes
//   - sentinelerr:  sentinel errors use errors.Is / %w, never == or %v
//
// Generic tooling (vet, staticcheck) cannot check any of these: they are
// properties of this codebase's design — the batch hot path's 0 allocs/op
// contract, the injected-clock determinism the experiments and the
// checkpoint restore path rely on, the mutex discipline that already caught
// one real race (the Sharded+APD shared-policy bug), and the adversarial
// posture of the snapshot/packet/pcap decoders.
//
// # Annotation language
//
//	//bf:hotpath
//	    On a function or method declaration: the body must not contain
//	    allocation-forcing constructs (see hotpath.go).
//
//	//bf:guardedby <field>
//	    On a struct field: every read or write of the field must happen in
//	    a function that locks <field> (a sibling mutex field) on the same
//	    receiver expression (see lockguard.go).
//
//	//bf:allow <analyzer> [reason...]
//	    On the offending line, or in the doc comment of the enclosing
//	    function: suppresses that analyzer's diagnostics there. Every
//	    allow should carry a reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named rule. It mirrors the x/tools analysis.Analyzer
// shape so the rules could be ported to a multichecker verbatim if a
// vendored x/tools ever becomes available.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package's directory on disk. Compiler-driven analyzers
	// (escapecheck) shell out to the go tool from here.
	Dir string

	diags *[]Diagnostic
	lines *lineComments
}

// Diagnostic is one finding, positioned for file:line:col display.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless an //bf:allow comment for
// this analyzer covers the position (same line, or the doc comment of the
// enclosing function declaration).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allowedAt(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full bflint suite in stable order: the five
// phase-1 AST analyzers, then the five phase-2 dataflow/concurrency/
// compiler analyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		HotpathAnalyzer,
		LockguardAnalyzer,
		BoundedAllocAnalyzer,
		SentinelErrAnalyzer,
		TaintAnalyzer,
		GoleakAnalyzer,
		AtomicFieldAnalyzer,
		EscapeCheckAnalyzer,
		MetricNameAnalyzer,
	}
}

// AllowSite is one //bf:allow marker found in a package, plus whether
// any of the analyzers run against that package actually had a
// diagnostic suppressed by it. Unused allows are drift: either the code
// they excused was fixed (prune the comment) or the marker was
// misplaced and never protected anything.
type AllowSite struct {
	Pos      token.Position
	Analyzer string
	Used     bool
}

// Check runs every analyzer in the suite over pkg and returns the
// diagnostics sorted by position.
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := CheckWithAllows(pkg, analyzers)
	return diags, err
}

// CheckWithAllows is Check plus the package's //bf:allow inventory with
// usage bits, for the driver's stale-allow audit.
func CheckWithAllows(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, []AllowSite, error) {
	var diags []Diagnostic
	lines := newLineComments(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Dir:       pkg.Dir,
			diags:     &diags,
			lines:     lines,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	allows := make([]AllowSite, len(lines.allows))
	for i, s := range lines.allows {
		allows[i] = *s
	}
	return diags, allows, nil
}

// StaleAllows turns unused //bf:allow markers into diagnostics. Only
// allows naming one of the analyzers that actually ran are considered:
// an escapecheck allow is not stale just because a -skip escapecheck
// run never consulted it.
func StaleAllows(allows []AllowSite, ran []*Analyzer) []Diagnostic {
	active := make(map[string]bool, len(ran))
	for _, a := range ran {
		active[a.Name] = true
	}
	var diags []Diagnostic
	for _, s := range allows {
		if s.Used || !active[s.Analyzer] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      s.Pos,
			Analyzer: "staleallow",
			Message: fmt.Sprintf(
				"//bf:allow %s suppresses nothing; the code it excused was fixed or the marker is misplaced — delete it",
				s.Analyzer),
		})
	}
	return diags
}

// ---- //bf: annotation plumbing ----

const (
	allowMarker     = "bf:allow"
	hotpathMarker   = "bf:hotpath"
	guardedByMarker = "bf:guardedby"
)

// lineComments indexes every //bf:allow marker by (file, line) so
// same-line allows resolve in O(1), records which lines each function
// declaration spans so function-level allows cover their bodies, and
// keeps the full allow inventory with usage bits for the stale-allow
// audit.
type lineComments struct {
	fset *token.FileSet
	// lineAllow maps file:line to the allow sites declared on that line.
	lineAllow map[string][]*AllowSite
	// funcAllow maps file:line to the allow sites of the function whose
	// body covers that line (entries are shared across the span, so one
	// suppression anywhere marks the site used).
	funcAllow map[string][]*AllowSite
	// allows is every //bf:allow marker in the package, in source order.
	allows []*AllowSite
}

func lineKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

func newLineComments(fset *token.FileSet, files []*ast.File) *lineComments {
	lc := &lineComments{
		fset:      fset,
		lineAllow: make(map[string][]*AllowSite),
		funcAllow: make(map[string][]*AllowSite),
	}
	// Function-doc comment groups become function-scoped allows; every
	// other comment is a line-scoped allow on its own line.
	funcDocs := make(map[*ast.CommentGroup]*ast.FuncDecl)
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			fd := funcDocs[cg]
			for _, c := range cg.List {
				// Read the raw comment text: CommentGroup.Text() drops
				// directive-style comments (no space after //), which is
				// exactly what //bf:allow is.
				name, ok := allowedAnalyzer(c.Text)
				if !ok {
					continue
				}
				site := &AllowSite{Pos: fset.Position(c.Pos()), Analyzer: name}
				lc.allows = append(lc.allows, site)
				if fd != nil {
					start := fset.Position(fd.Pos())
					end := fset.Position(fd.End())
					for line := start.Line; line <= end.Line; line++ {
						key := fmt.Sprintf("%s:%d", start.Filename, line)
						lc.funcAllow[key] = append(lc.funcAllow[key], site)
					}
				} else {
					lc.lineAllow[lineKey(site.Pos)] = append(lc.lineAllow[lineKey(site.Pos)], site)
				}
			}
		}
	}
	return lc
}

// allowedAnalyzer extracts the analyzer name from one //bf:allow comment
// line, if present.
func allowedAnalyzer(text string) (string, bool) {
	rest, ok := markerArgs(text, allowMarker)
	if !ok {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// markerArgs reports whether line carries the given //bf: marker and
// returns the text following it.
func markerArgs(line, marker string) (string, bool) {
	line = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "//"))
	if line == marker {
		return "", true
	}
	if strings.HasPrefix(line, marker+" ") || strings.HasPrefix(line, marker+"\t") {
		return strings.TrimSpace(line[len(marker):]), true
	}
	return "", false
}

// commentHasMarker reports whether any line of a comment group carries the
// marker, returning its arguments.
func commentHasMarker(doc *ast.CommentGroup, marker string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if args, ok := markerArgs(c.Text, marker); ok {
			return args, true
		}
	}
	return "", false
}

func (p *Pass) allowedAt(pos token.Pos) bool {
	key := lineKey(p.Fset.Position(pos))
	for _, site := range p.lines.lineAllow[key] {
		if site.Analyzer == p.Analyzer.Name {
			site.Used = true
			return true
		}
	}
	for _, site := range p.lines.funcAllow[key] {
		if site.Analyzer == p.Analyzer.Name {
			site.Used = true
			return true
		}
	}
	return false
}

// ---- shared AST / type helpers ----

// pkgFunc resolves a call to a top-level function of a named package
// (e.g. time.Now, fmt.Errorf), returning (package path, func name, true).
// It resolves the qualifier through the type info, so import aliases are
// handled.
func pkgFunc(info *types.Info, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isErrorType reports whether t is (or trivially implements) the built-in
// error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}

// funcScopes yields every function body in the file as an independent
// scope: each FuncDecl, and each FuncLit nested anywhere (goroutine
// bodies, callbacks). The enclosing decl is passed for annotation lookup
// (nil for FuncLits outside any decl, which cannot happen in valid Go).
func funcScopes(f *ast.File, visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd, fd.Body)
		// Each nested FuncLit (goroutine body, callback) is its own
		// scope; Inspect finds them at any depth, each exactly once.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				visit(fd, fl.Body)
			}
			return true
		})
	}
}

// inspectShallow walks body but does not descend into nested function
// literals: those are separate scopes handled by funcScopes.
func inspectShallow(body ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		return visit(n)
	})
}
