package lint_test

import (
	"testing"

	"bitmapfilter/internal/lint"
	"bitmapfilter/internal/lint/linttest"
)

// The golden suites: each testdata package carries // want annotations
// (or an explicit ok-marker), so every analyzer is proven both to fire
// on violations and to stay silent on conforming code. The synthetic
// import paths exercise the path-sensitive rules from both sides.

func TestWallclockDeterministic(t *testing.T) {
	linttest.Run(t, "testdata/wallclock/det", "example.com/internal/det", lint.WallclockAnalyzer)
}

func TestWallclockAllowlist(t *testing.T) {
	// Same constructs as the det package, but under an allowlisted leaf:
	// zero diagnostics expected.
	linttest.Run(t, "testdata/wallclock/allowed", "example.com/internal/live", lint.WallclockAnalyzer)
}

func TestHotpath(t *testing.T) {
	linttest.Run(t, "testdata/hotpath/hot", "example.com/internal/hot", lint.HotpathAnalyzer)
}

func TestLockguard(t *testing.T) {
	linttest.Run(t, "testdata/lockguard/guard", "example.com/internal/guard", lint.LockguardAnalyzer)
}

func TestBoundedAllocDecoder(t *testing.T) {
	linttest.Run(t, "testdata/boundedalloc/dec", "example.com/internal/pcap", lint.BoundedAllocAnalyzer)
}

func TestBoundedAllocNonTarget(t *testing.T) {
	// The same unclamped make in a non-decoder package is out of scope.
	linttest.Run(t, "testdata/boundedalloc/other", "example.com/internal/render", lint.BoundedAllocAnalyzer)
}

func TestSentinelErr(t *testing.T) {
	linttest.Run(t, "testdata/sentinelerr/sent", "example.com/internal/sent", lint.SentinelErrAnalyzer)
}

// TestRepoIsClean runs the full suite over the whole module — the same
// gate as `go run ./cmd/bflint ./...` — so a new violation anywhere in
// the tree fails `go test` too, not just the lint CI step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint skipped in -short mode")
	}
	l, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		diags, err := lint.Check(pkg, lint.Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
