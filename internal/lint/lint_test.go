package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"bitmapfilter/internal/lint"
	"bitmapfilter/internal/lint/linttest"
)

// The golden suites: each testdata package carries // want annotations
// (or an explicit ok-marker), so every analyzer is proven both to fire
// on violations and to stay silent on conforming code. The synthetic
// import paths exercise the path-sensitive rules from both sides.

func TestWallclockDeterministic(t *testing.T) {
	linttest.Run(t, "testdata/wallclock/det", "example.com/internal/det", lint.WallclockAnalyzer)
}

func TestWallclockAllowlist(t *testing.T) {
	// Same constructs as the det package, but under an allowlisted leaf:
	// zero diagnostics expected.
	linttest.Run(t, "testdata/wallclock/allowed", "example.com/internal/live", lint.WallclockAnalyzer)
}

func TestHotpath(t *testing.T) {
	linttest.Run(t, "testdata/hotpath/hot", "example.com/internal/hot", lint.HotpathAnalyzer)
}

func TestLockguard(t *testing.T) {
	linttest.Run(t, "testdata/lockguard/guard", "example.com/internal/guard", lint.LockguardAnalyzer)
}

func TestBoundedAllocDecoder(t *testing.T) {
	linttest.Run(t, "testdata/boundedalloc/dec", "example.com/internal/pcap", lint.BoundedAllocAnalyzer)
}

func TestBoundedAllocNonTarget(t *testing.T) {
	// The same unclamped make in a non-decoder package is out of scope.
	linttest.Run(t, "testdata/boundedalloc/other", "example.com/internal/render", lint.BoundedAllocAnalyzer)
}

func TestSentinelErr(t *testing.T) {
	linttest.Run(t, "testdata/sentinelerr/sent", "example.com/internal/sent", lint.SentinelErrAnalyzer)
}

func TestTaintDecoder(t *testing.T) {
	linttest.Run(t, "testdata/taint/dec", "example.com/internal/pcap", lint.TaintAnalyzer)
}

func TestTaintNonTarget(t *testing.T) {
	// The same unclamped wire read outside the decoder/config packages is
	// out of scope.
	linttest.Run(t, "testdata/taint/other", "example.com/internal/render", lint.TaintAnalyzer)
}

func TestGoleak(t *testing.T) {
	linttest.Run(t, "testdata/goleak/res", "example.com/internal/resilience", lint.GoleakAnalyzer)
}

func TestGoleakNonTarget(t *testing.T) {
	linttest.Run(t, "testdata/goleak/other", "example.com/internal/render", lint.GoleakAnalyzer)
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, "testdata/atomicfield/af", "example.com/internal/af", lint.AtomicFieldAnalyzer)
}

func TestMetricName(t *testing.T) {
	linttest.Run(t, "testdata/metricname/m", "example.com/internal/metricsx", lint.MetricNameAnalyzer)
}

func TestEscapeCheck(t *testing.T) {
	linttest.Run(t, "testdata/escapecheck/hot", "example.com/internal/hot", lint.EscapeCheckAnalyzer)
}

// TestEscapeCheckBeyondAST is the acceptance proof that escapecheck
// catches an allocation the AST hotpath analyzer structurally cannot:
// over the same fixture where escapecheck reports the package-level
// interface boxing (TestEscapeCheck), the hotpath analyzer must find
// nothing at all.
func TestEscapeCheckBeyondAST(t *testing.T) {
	l, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("testdata/escapecheck/hot", "example.com/internal/hot")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Check(pkg, []*lint.Analyzer{lint.HotpathAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("hotpath analyzer unexpectedly sees the boxing fixture: %s", d)
	}
	diags, err = lint.Check(pkg, []*lint.Analyzer{lint.EscapeCheckAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("escapecheck found nothing in the boxing fixture; the compiler cross-check is not working")
	}
}

// TestAnalyzerRegistry is the suite's completeness contract: every
// analyzer the bflint binary advertises via -list must be exactly the
// set lint.Analyzers() returns, and each must carry non-empty golden
// testdata on both sides — at least one // want annotation proving it
// fires, and at least one clean-side marker (an // ok: package or a
// //bf:allow for that analyzer) proving its silence and suppression
// paths are exercised too. Registering an analyzer without goldens, or
// goldens without registration, fails here before CI ever runs it.
func TestAnalyzerRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("bflint subprocess skipped in -short mode")
	}
	cmd := exec.Command("go", "run", "bitmapfilter/cmd/bflint", "-list")
	cmd.Dir = filepath.Join("..", "..")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("bflint -list: %v\n%s", err, out)
	}
	var listed []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if fields := strings.Fields(line); len(fields) > 0 {
			listed = append(listed, fields[0])
		}
	}
	var registered []string
	for _, a := range lint.Analyzers() {
		registered = append(registered, a.Name)
	}
	if strings.Join(listed, ",") != strings.Join(registered, ",") {
		t.Fatalf("bflint -list = %v, lint.Analyzers() = %v", listed, registered)
	}

	for _, name := range registered {
		dir := filepath.Join("testdata", name)
		var wants, okMarks, allows int
		walkErr := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			src := string(data)
			wants += strings.Count(src, "// want ")
			okMarks += strings.Count(src, "// ok:")
			allows += strings.Count(src, "bf:allow "+name)
			return nil
		})
		if walkErr != nil {
			t.Errorf("analyzer %s has no golden testdata directory: %v", name, walkErr)
			continue
		}
		if wants == 0 {
			t.Errorf("analyzer %s: no // want annotations in %s; the firing side is unproven", name, dir)
		}
		if okMarks == 0 && allows == 0 {
			t.Errorf("analyzer %s: no // ok: marker or //bf:allow %s in %s; the clean side is unproven", name, name, dir)
		}
	}
}

// TestRepoIsClean runs the full suite over the whole module — the same
// gate as `go run ./cmd/bflint ./...` — so a new violation anywhere in
// the tree fails `go test` too, not just the lint CI step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint skipped in -short mode")
	}
	l, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		diags, err := lint.Check(pkg, lint.Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
