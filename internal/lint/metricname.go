package lint

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// MetricNameAnalyzer guards the /metrics contract now that three layers
// (httpapi, the bfwall stats plane, the resilience probes) emit
// Prometheus series. Metric names are stringly-typed: nothing in the
// type system stops two layers from registering the same series, a typo
// from forking bitmapfilter_lookups_total into _lookup_total on a
// dashboard, or a new counter from shipping undocumented. Each of those
// is silent until an operator's query returns nothing.
//
// The analyzer scans every string literal for bitmapfilter_* tokens and
// enforces, per package:
//
//   - style: names must be snake_case segments —
//     bitmapfilter(_[a-z0-9]+)+ — no uppercase, no double or trailing
//     underscores, no colons (reserved for recording rules)
//   - unique registration: a `# TYPE name kind` exposition line for the
//     same name must appear at most once per package (the same name in
//     its series line or a HELP line is of course fine)
//   - valid kind: the TYPE kind must be counter, gauge, histogram,
//     summary, or untyped
//   - documented: every name must appear in the nearest DESIGN.md
//     above the package directory, so the operator-facing metrics table
//     stays the single source of truth
//
// Tokens immediately followed by '*' (log messages and comments saying
// "bitmapfilter_resilience_*") are wildcard mentions, not names, and
// are skipped.
var MetricNameAnalyzer = &Analyzer{
	Name: "metricname",
	Doc:  "bitmapfilter_* metric literals must be unique, snake_case, and documented in DESIGN.md",
	Run:  runMetricName,
}

var (
	metricTokenRE = regexp.MustCompile(`bitmapfilter[A-Za-z0-9_]*`)
	metricNameRE  = regexp.MustCompile(`^bitmapfilter(_[a-z0-9]+)+$`)
	metricTypeRE  = regexp.MustCompile(`# TYPE ([A-Za-z0-9_]+) ([A-Za-z]+)`)
)

var metricKinds = map[string]bool{
	"counter":   true,
	"gauge":     true,
	"histogram": true,
	"summary":   true,
	"untyped":   true,
}

func runMetricName(pass *Pass) error {
	design, designPath := nearestDesignDoc(pass.Dir)

	typeSeen := make(map[string]token.Pos) // first # TYPE registration per name
	undocumented := make(map[string]bool)  // report each missing name once per package

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			text, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !strings.Contains(text, "bitmapfilter") {
				return true
			}

			// TYPE registrations: uniqueness and kind validity.
			for _, m := range metricTypeRE.FindAllStringSubmatch(text, -1) {
				name, kind := m[1], m[2]
				if !strings.HasPrefix(name, "bitmapfilter") {
					continue
				}
				if !metricKinds[kind] {
					pass.Reportf(lit.Pos(),
						"metric %s registered with invalid Prometheus type %q (want counter, gauge, histogram, summary, or untyped)",
						name, kind)
				}
				if prev, dup := typeSeen[name]; dup {
					pass.Reportf(lit.Pos(),
						"metric %s registered twice in this package (previous # TYPE at %s); duplicate series corrupt the exposition",
						name, pass.Fset.Position(prev))
				} else {
					typeSeen[name] = lit.Pos()
				}
			}

			// Every token: style and documentation.
			for _, loc := range metricTokenRE.FindAllStringIndex(text, -1) {
				name := text[loc[0]:loc[1]]
				if name == "bitmapfilter" {
					continue // the bare project name, e.g. in import paths
				}
				if loc[1] < len(text) && (text[loc[1]] == '*' || text[loc[1]] == '%') {
					// Wildcard mention ("bitmapfilter_resilience_*") or
					// dynamic prefix ("bitmapfilter_%s_total"): not a
					// literal series name.
					continue
				}
				if !metricNameRE.MatchString(name) {
					pass.Reportf(lit.Pos(),
						"metric name %s is not snake_case (want bitmapfilter(_[a-z0-9]+)+: lowercase segments, single underscores)",
						name)
					continue
				}
				if design != "" && !strings.Contains(design, name) && !undocumented[name] {
					undocumented[name] = true
					pass.Reportf(lit.Pos(),
						"metric %s is not documented in %s; add it to the metrics table so dashboards have a source of truth",
						name, designPath)
				}
			}
			return true
		})
	}
	return nil
}

// nearestDesignDoc walks up from dir to the filesystem root and returns
// the content and path of the first DESIGN.md found. Golden testdata
// carries its own DESIGN.md next to the package, making the fixture
// hermetic; real packages resolve to the repo root's. Empty content
// means no doc was found and the documentation check is skipped.
func nearestDesignDoc(dir string) (string, string) {
	for dir != "" {
		p := filepath.Join(dir, "DESIGN.md")
		if b, err := os.ReadFile(p); err == nil {
			return string(b), p
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return "", ""
}
