package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TaintAnalyzer is the interprocedural generalization of boundedalloc:
// it tracks values that originate in untrusted input through assignments,
// arithmetic, field stores and same-package calls, and reports any path
// on which such a value reaches an allocation-size sink without a clamp.
//
// boundedalloc asks "is this make() size compared against something
// trusted in this function?" — purely local. taint answers the question
// the attacker actually poses: "can a length I control reach an
// allocation anywhere, laundered through a helper, a struct field, or a
// return value?" The pcap snapLen DoS that motivated boundedalloc was a
// one-hop flow; the flows this pass closes are the multi-hop ones.
//
// # Sources
//
// A value is tainted when it originates from:
//
//   - a binary.{Big,Little}Endian.Uint16/32/64 read (a wire integer)
//   - a field of capture.Frame or pcap.Record (captured wire data), or
//     http.Request.Body / http.Request.ContentLength
//   - a []byte (or byte-index of one) passed as a parameter into a
//     decoder package (core, packet, pcap, tenant) — those packages'
//     inputs are adversarial by design
//   - the target of encoding/json Unmarshal/Decode (attacker-shaped
//     config, e.g. tenant.ParseConfig)
//   - a struct field that is assigned a tainted value anywhere in the
//     package (snapshot headers decoded in one method, consumed in
//     another)
//   - a call to a same-package function whose return derives from any
//     of the above
//
// # Sanitizers
//
// Taint is discharged by a bound the analyzer can see in the same
// function: a relational comparison against a constant, len/cap, or a
// local identifier; a mask (x & const) or modulus (x % const); a
// min/max with a constant operand; or passing the value to a
// same-package validator — a function that itself compares that
// parameter against a trusted bound. Struct-field comparisons still do
// not sanitize (fields carry unvalidated decoded state), matching
// boundedalloc.
//
// # Sinks
//
// make() size arguments, bytes/strings.Repeat counts, bytes.Buffer.Grow,
// and — the interprocedural step — arguments to same-package functions
// whose parameter reaches one of those sinks unclamped.
//
// Flows the analyzer cannot see (clamps enforced by a caller in another
// package) are annotated //bf:allow taint with a reason.
var TaintAnalyzer = &Analyzer{
	Name: "taint",
	Doc:  "track untrusted input (wire reads, capture frames, JSON config) into allocation sizes across function boundaries",
	Run:  runTaint,
}

// taintTargetLeaves are the package-name leaves the pass analyzes: every
// package that parses adversarial bytes or attacker-shaped config.
var taintTargetLeaves = map[string]bool{
	"core":       true,
	"packet":     true,
	"pcap":       true,
	"capture":    true,
	"tenant":     true,
	"checkpoint": true,
	"httpapi":    true,
}

// taintParamLeaves are the decoder packages whose []byte parameters are
// themselves untrusted roots: their whole contract is "parse bytes an
// attacker crafted".
var taintParamLeaves = map[string]bool{
	"core":   true,
	"packet": true,
	"pcap":   true,
	"tenant": true,
}

// taintSourceTypes maps (package leaf, type name) pairs whose field
// reads are intrinsically tainted.
var taintSourceTypes = map[[2]string]bool{
	{"capture", "Frame"}: true,
	{"pcap", "Record"}:   true,
	{"http", "Request"}:  true,
}

const (
	// taintIntrinsic marks taint that originated inside the analyzed
	// function (or a field cell / tainted return): these are reported at
	// local sinks. Bits 0..62 mark taint derived only from parameter i,
	// which is recorded in the function's summary and reported at call
	// sites that pass tainted arguments.
	taintIntrinsic uint64 = 1 << 63
	maxTaintParams        = 63
)

// taintSummary is one function's interprocedural contract.
type taintSummary struct {
	// paramToSink[i]: parameter i reaches an allocation size unclamped.
	paramToSink map[int]bool
	// paramToRet[i]: parameter i flows into a return value unclamped.
	paramToRet map[int]bool
	// retTainted: some return value derives from an intrinsic source.
	retTainted bool
	// validates[i]: parameter i is compared against a trusted bound in
	// the body, so passing a value here sanitizes it at the call site.
	validates map[int]bool
}

func (s *taintSummary) equal(o *taintSummary) bool {
	return boolMapEqual(s.paramToSink, o.paramToSink) &&
		boolMapEqual(s.paramToRet, o.paramToRet) &&
		s.retTainted == o.retTainted &&
		boolMapEqual(s.validates, o.validates)
}

func boolMapEqual(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// taintCtx is the per-package analysis state shared by the summary
// fixpoint and the reporting pass.
type taintCtx struct {
	pass       *Pass
	decls      map[*types.Func]*ast.FuncDecl
	summaries  map[*types.Func]*taintSummary
	fields     map[types.Object]bool // field cells assigned tainted values anywhere
	paramRoots bool                  // []byte params are untrusted (decoder package)
}

func pkgLeaf(path string) string {
	segs := strings.Split(path, "/")
	return segs[len(segs)-1]
}

func runTaint(pass *Pass) error {
	if !taintTargetLeaves[pkgLeaf(pass.Pkg.Path())] {
		return nil
	}
	ctx := &taintCtx{
		pass:       pass,
		decls:      make(map[*types.Func]*ast.FuncDecl),
		summaries:  make(map[*types.Func]*taintSummary),
		fields:     make(map[types.Object]bool),
		paramRoots: taintParamLeaves[pkgLeaf(pass.Pkg.Path())],
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				ctx.decls[fn] = fd
				ctx.summaries[fn] = &taintSummary{
					paramToSink: map[int]bool{},
					paramToRet:  map[int]bool{},
					validates:   map[int]bool{},
				}
			}
		}
	}

	// Fixpoint: summaries and field cells feed each other (a helper's
	// tainted return can be stored into a field, which taints another
	// function, which widens its summary...). The lattice is finite and
	// monotone, so this converges; the cap is a safety net.
	for iter := 0; iter < 16; iter++ {
		changed := false
		for fn, fd := range ctx.decls {
			next := ctx.analyzeFunc(fd, nil)
			if !next.equal(ctx.summaries[fn]) {
				ctx.summaries[fn] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Reporting pass: re-run each function with diagnostics enabled.
	for _, fd := range sortedDecls(ctx.decls) {
		ctx.analyzeFunc(fd, pass)
	}
	return nil
}

// sortedDecls yields declarations in source order for stable output.
func sortedDecls(decls map[*types.Func]*ast.FuncDecl) []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, 0, len(decls))
	for _, fd := range decls {
		out = append(out, fd)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Pos() < out[j-1].Pos(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// funcParams returns the parameter objects of fd in order.
func funcParams(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// analyzeFunc runs the dataflow over one function body. With report nil
// it only computes the function's summary (and widens the package field
// cells); with report set it emits diagnostics for intrinsic taint
// reaching sinks.
func (c *taintCtx) analyzeFunc(fd *ast.FuncDecl, report *Pass) *taintSummary {
	info := c.pass.TypesInfo
	params := funcParams(info, fd)
	paramBit := make(map[types.Object]uint64, len(params))
	masks := make(map[types.Object]uint64)
	for i, p := range params {
		if i >= maxTaintParams {
			break
		}
		bit := uint64(1) << i
		paramBit[p] = bit
		masks[p] = bit
		if c.paramRoots && isByteSliceType(p.Type()) {
			// Decoder-package []byte inputs are wire data: intrinsic.
			masks[p] |= taintIntrinsic
		}
	}

	sanitized := c.collectTaintSanitized(fd.Body)
	sum := &taintSummary{
		paramToSink: map[int]bool{},
		paramToRet:  map[int]bool{},
		validates:   map[int]bool{},
	}
	for i, p := range params {
		if sanitized[p.Name()] {
			sum.validates[i] = true
		}
	}

	// Propagate assignments to a fixpoint: loop bodies can taint a
	// variable after its first read.
	for iter := 0; iter < 8; iter++ {
		changed := false
		inspectShallow(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var m uint64
					if len(n.Rhs) == len(n.Lhs) {
						m = c.taintOf(n.Rhs[i], masks, sanitized)
					} else if len(n.Rhs) == 1 {
						// Multi-value: a tainted call taints every lhs.
						m = c.taintOf(n.Rhs[0], masks, sanitized)
					}
					if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
						// Compound (+=, <<=, ...): old taint persists.
						m |= c.taintOf(lhs, masks, sanitized)
					}
					if m == 0 {
						continue
					}
					changed = c.taintLHS(lhs, m, masks) || changed
				}
			case *ast.RangeStmt:
				m := c.taintOf(n.X, masks, sanitized)
				if m != 0 && n.Value != nil {
					changed = c.taintLHS(n.Value, m, masks) || changed
				}
			case *ast.CallExpr:
				// json.Unmarshal(data, &v) / dec.Decode(&v) taint v.
				if jsonDecodeTarget(info, n) != nil {
					if obj := addrTargetObj(info, jsonDecodeTarget(info, n)); obj != nil {
						if masks[obj]&taintIntrinsic == 0 {
							masks[obj] |= taintIntrinsic
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	// Sinks and returns.
	inspectShallow(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				m := c.taintOf(res, masks, sanitized)
				if m&taintIntrinsic != 0 {
					sum.retTainted = true
				}
				for i := range params {
					if i < maxTaintParams && m&(1<<i) != 0 {
						sum.paramToRet[i] = true
					}
				}
			}
		case *ast.CallExpr:
			c.checkSinkCall(fd, n, masks, sanitized, sum, params, report)
		}
		return true
	})
	return sum
}

// taintLHS merges mask m into the object or field cell named by an
// assignment target, reporting whether anything widened.
func (c *taintCtx) taintLHS(lhs ast.Expr, m uint64, masks map[types.Object]uint64) bool {
	lhs = ast.Unparen(lhs)
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.ObjectOf(lhs); obj != nil {
			if masks[obj]|m != masks[obj] {
				masks[obj] |= m
				return true
			}
		}
	case *ast.SelectorExpr:
		// Storing taint into a field makes the field a package-wide
		// taint cell (the snapshot-header pattern). Only intrinsic
		// taint is promoted: a field holding a caller's parameter is
		// the caller's problem at its own call sites.
		if sel, ok := c.pass.TypesInfo.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			if m&taintIntrinsic != 0 && !c.fields[sel.Obj()] {
				c.fields[sel.Obj()] = true
				return true
			}
		}
	case *ast.IndexExpr:
		return c.taintLHS(lhs.X, m, masks)
	case *ast.StarExpr:
		return c.taintLHS(lhs.X, m, masks)
	}
	return false
}

// checkSinkCall handles the three sink shapes: make sizes, stdlib
// repeat/grow counts, and same-package calls whose parameter reaches a
// sink.
func (c *taintCtx) checkSinkCall(fd *ast.FuncDecl, call *ast.CallExpr,
	masks map[types.Object]uint64, sanitized map[string]bool,
	sum *taintSummary, params []types.Object, report *Pass) {

	info := c.pass.TypesInfo
	sinkArg := func(arg ast.Expr, what string) {
		m := c.taintOf(arg, masks, sanitized)
		if m == 0 {
			return
		}
		for i := range params {
			if i < maxTaintParams && m&(1<<i) != 0 {
				sum.paramToSink[i] = true
			}
		}
		if m&taintIntrinsic != 0 && report != nil {
			report.Reportf(arg.Pos(),
				"%s %s derives from untrusted input (wire read, capture frame, or decoded config) and reaches the allocation unclamped; bound it with a comparison against a constant or len/cap, a mask, or a validated helper",
				what, types.ExprString(arg))
		}
	}

	if ident, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[ident].(*types.Builtin); isBuiltin && ident.Name == "make" {
			for _, sizeArg := range call.Args[1:] {
				sinkArg(sizeArg, "make size")
			}
			return
		}
	}
	if pkgPath, name, ok := pkgFunc(info, call); ok {
		if (pkgPath == "bytes" || pkgPath == "strings") && name == "Repeat" && len(call.Args) == 2 {
			sinkArg(call.Args[1], "Repeat count")
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Grow" && len(call.Args) == 1 {
		if recv := info.TypeOf(sel.X); recv != nil && strings.Contains(recv.String(), "bytes.Buffer") {
			sinkArg(call.Args[0], "Grow size")
		}
	}

	// Interprocedural: a tainted argument at a parameter position that
	// the callee's summary says reaches a sink.
	callee := calleeFunc(info, call)
	if callee == nil {
		return
	}
	calleeSum, ok := c.summaries[callee]
	if !ok {
		return
	}
	for argIdx, arg := range call.Args {
		if !calleeSum.paramToSink[argIdx] {
			continue
		}
		m := c.taintOf(arg, masks, sanitized)
		if m == 0 {
			continue
		}
		for i := range params {
			if i < maxTaintParams && m&(1<<i) != 0 {
				sum.paramToSink[i] = true
			}
		}
		if m&taintIntrinsic != 0 && report != nil {
			report.Reportf(arg.Pos(),
				"untrusted value %s flows into %s, whose parameter %d reaches an allocation size unclamped; validate it here or clamp it in %s",
				types.ExprString(arg), callee.Name(), argIdx, callee.Name())
		}
	}
}

// taintOf computes the taint mask of an expression.
func (c *taintCtx) taintOf(e ast.Expr, masks map[types.Object]uint64, sanitized map[string]bool) uint64 {
	e = ast.Unparen(e)
	info := c.pass.TypesInfo

	// A constant is never tainted; a sanitized printed form has been
	// bounded somewhere in this body.
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return 0
	}
	if sanitized[types.ExprString(e)] {
		return 0
	}

	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return masks[obj]
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if c.fields[sel.Obj()] {
				return taintIntrinsic
			}
			if isTaintSourceField(sel) {
				return taintIntrinsic
			}
		}
		return c.taintOf(e.X, masks, sanitized)
	case *ast.IndexExpr:
		return c.taintOf(e.X, masks, sanitized)
	case *ast.SliceExpr:
		return c.taintOf(e.X, masks, sanitized)
	case *ast.StarExpr:
		return c.taintOf(e.X, masks, sanitized)
	case *ast.UnaryExpr:
		return c.taintOf(e.X, masks, sanitized)
	case *ast.BinaryExpr:
		// Masking and modulus by an untainted operand bound the result.
		if e.Op == token.AND || e.Op == token.REM {
			if c.taintOf(e.Y, masks, sanitized) == 0 {
				return 0
			}
		}
		return c.taintOf(e.X, masks, sanitized) | c.taintOf(e.Y, masks, sanitized)
	case *ast.CallExpr:
		return c.taintOfCall(e, masks, sanitized)
	}
	return 0
}

func (c *taintCtx) taintOfCall(call *ast.CallExpr, masks map[types.Object]uint64, sanitized map[string]bool) uint64 {
	info := c.pass.TypesInfo

	// Builtins: len/cap are bounded by existing memory; min/max with a
	// constant is a clamp; conversions unwrap.
	if ident, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[ident].(*types.Builtin); isBuiltin {
			switch ident.Name {
			case "len", "cap":
				return 0
			case "min", "max":
				for _, arg := range call.Args {
					if tv, ok := info.Types[arg]; ok && tv.Value != nil {
						return 0
					}
				}
			}
			var m uint64
			for _, arg := range call.Args {
				m |= c.taintOf(arg, masks, sanitized)
			}
			return m
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return c.taintOf(call.Args[0], masks, sanitized)
	}

	// Wire-integer reads are intrinsic sources in these packages.
	if isByteOrderRead(info, call) {
		return taintIntrinsic
	}
	// io.ReadAll of a tainted reader (an http body) yields tainted bytes.
	if pkgPath, name, ok := pkgFunc(info, call); ok && pkgPath == "io" && name == "ReadAll" && len(call.Args) == 1 {
		return c.taintOf(call.Args[0], masks, sanitized)
	}

	// Same-package calls propagate via summaries.
	if callee := calleeFunc(info, call); callee != nil {
		if calleeSum, ok := c.summaries[callee]; ok {
			var m uint64
			if calleeSum.retTainted {
				m = taintIntrinsic
			}
			for argIdx, arg := range call.Args {
				if calleeSum.paramToRet[argIdx] {
					m |= c.taintOf(arg, masks, sanitized)
				}
			}
			return m
		}
	}
	return 0
}

// collectTaintSanitized is collectSanitized plus same-package validator
// calls: passing x to a function that compares that parameter against a
// trusted bound sanitizes x in this body.
func (c *taintCtx) collectTaintSanitized(body *ast.BlockStmt) map[string]bool {
	sanitized := collectSanitized(c.pass, body)
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(c.pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		sum, ok := c.summaries[callee]
		if !ok {
			return true
		}
		for argIdx, arg := range call.Args {
			if sum.validates[argIdx] {
				sanitized[types.ExprString(arg)] = true
			}
		}
		return true
	})
	return sanitized
}

// ---- classification helpers ----

// calleeFunc resolves a call to a same-package function or method
// declaration's object, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// isByteOrderRead reports whether call is a Uint16/32/64 read on an
// encoding/binary ByteOrder value.
func isByteOrderRead(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Uint16", "Uint32", "Uint64":
	default:
		return false
	}
	recv := info.TypeOf(sel.X)
	return recv != nil && strings.HasPrefix(recv.String(), "encoding/binary.")
}

// isTaintSourceField reports whether a field selection reads one of the
// untrusted source types (capture.Frame, pcap.Record, http.Request),
// matched by package leaf + type name so synthetic testdata paths work.
func isTaintSourceField(sel *types.Selection) bool {
	t := sel.Recv()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return taintSourceTypes[[2]string{pkgLeaf(obj.Pkg().Path()), obj.Name()}]
}

// isByteSliceType reports whether t is []byte (or a named []byte).
func isByteSliceType(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// jsonDecodeTarget returns the &target argument of a json.Unmarshal or
// (*json.Decoder).Decode call, or nil.
func jsonDecodeTarget(info *types.Info, call *ast.CallExpr) ast.Expr {
	if pkgPath, name, ok := pkgFunc(info, call); ok {
		if pkgPath == "encoding/json" && name == "Unmarshal" && len(call.Args) == 2 {
			return call.Args[1]
		}
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Decode" || len(call.Args) != 1 {
		return nil
	}
	recv := info.TypeOf(sel.X)
	if recv == nil || !strings.Contains(recv.String(), "encoding/json.Decoder") {
		return nil
	}
	return call.Args[0]
}

// addrTargetObj resolves &ident (possibly through parens) to ident's
// object.
func addrTargetObj(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	if ident, ok := e.(*ast.Ident); ok {
		return info.ObjectOf(ident)
	}
	return nil
}
