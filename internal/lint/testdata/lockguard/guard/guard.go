// Package guard exercises the lockguard analyzer: fields annotated
// //bf:guardedby mu may only be touched in functions that lock mu on the
// same base expression.
package guard

import "sync"

type box struct {
	mu sync.Mutex
	n  int //bf:guardedby mu
}

type rwbox struct {
	mu sync.RWMutex
	m  map[int]int //bf:guardedby mu

	// unguarded has no annotation: the analyzer must ignore it.
	unguarded int
}

// Good: lock/unlock bracket.
func Good(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// GoodDefer: the idiomatic deferred unlock.
func GoodDefer(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// GoodRLock: read locks count.
func GoodRLock(r *rwbox) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[0]
}

// GoodUnguarded: unannotated fields are free to roam.
func GoodUnguarded(r *rwbox) int {
	return r.unguarded
}

// GoodConstruct: composite-literal construction cannot race — the value
// has not escaped yet.
func GoodConstruct(n int) *box {
	return &box{n: n}
}

// Bad: no lock anywhere in the function.
func Bad(b *box) int {
	return b.n // want "b.n is guarded by b.mu, but this function never locks it"
}

// BadWrite: writes are checked too.
func BadWrite(b *box) {
	b.n = 7 // want "b.n is guarded by b.mu"
}

// BadWrongBase: locking one instance does not sanction touching another.
func BadWrongBase(a, b *box) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n // want "b.n is guarded by b.mu"
}

// BadGoroutine: a function literal runs concurrently with its creator,
// so it is its own scope and must take the lock itself.
func BadGoroutine(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.n++ // want "b.n is guarded by b.mu"
	}()
}

// GoodGoroutine: the closure locks for itself.
func GoodGoroutine(b *box) {
	go func() {
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
	}()
}

// lockedHelper documents its contract instead of locking: the escape
// hatch for helpers called with the lock held.
//
//bf:allow lockguard caller holds b.mu
func lockedHelper(b *box) int {
	return b.n
}

var _ = lockedHelper
