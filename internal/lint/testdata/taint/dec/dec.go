// Package dec stands in for the pcap decoder (synthetic import path
// leaf /pcap): values that originate on the wire must be clamped before
// they size an allocation, on every interprocedural path.
package dec

import (
	"encoding/binary"
	"encoding/json"
	"io"
)

const maxRecord = 1 << 20

// Bad is the classic one-hop flow (the bug boundedalloc was built for);
// taint must agree with it.
func Bad(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	buf := make([]byte, n) // want "derives from untrusted input"
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// Good clamps the wire value before allocating.
func Good(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxRecord {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// alloc is an unvalidating helper: its summary records that parameter n
// reaches a make size unclamped, so callers must sanitize first.
func alloc(n uint32) []byte {
	return make([]byte, n)
}

// BadCall launders the wire length through alloc — the flow boundedalloc
// structurally cannot see.
func BadCall(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	return alloc(n), nil // want "flows into alloc"
}

// allocChecked validates its parameter, so its summary marks it as a
// sanitizer and callers may pass wire values directly.
func allocChecked(n uint32) []byte {
	if n > maxRecord {
		return nil
	}
	return make([]byte, n)
}

// GoodCall delegates the clamp to a visibly-validating helper.
func GoodCall(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	return allocChecked(n), nil
}

// BadByte: in a decoder package the []byte parameter is wire data, so a
// length computed from its bytes is tainted at birth.
func BadByte(data []byte) []byte {
	n := int(data[0])<<8 | int(data[1])
	return make([]byte, n) // want "derives from untrusted input"
}

// GoodMask: masking against a constant bounds the result by
// construction.
func GoodMask(data []byte) []byte {
	n := int(data[0]) & 0x3f
	return make([]byte, n)
}

// Record mirrors the pcap record struct: captured wire data, so every
// field read is untrusted regardless of how the value got there.
type Record struct {
	CapLen uint32
	Data   []byte
}

func BadRecordLen(rec *Record) []byte {
	return make([]byte, rec.CapLen) // want "derives from untrusted input"
}

func GoodRecordLen(rec *Record) []byte {
	n := rec.CapLen
	if n > maxRecord {
		n = maxRecord
	}
	return make([]byte, n)
}

// header models the snapshot-header pattern: a length decoded in one
// method and consumed in another. The field becomes a package-wide
// taint cell.
type header struct {
	count uint32
}

func (h *header) decode(b []byte) {
	h.count = binary.LittleEndian.Uint32(b)
}

func (h *header) BadFieldAlloc() []uint64 {
	return make([]uint64, h.count) // want "derives from untrusted input"
}

func (h *header) GoodFieldAlloc() []uint64 {
	n := h.count
	if n > maxRecord {
		n = maxRecord
	}
	return make([]uint64, n)
}

// frameConfig models tenant.ParseConfig: JSON-decoded values are
// attacker-shaped.
type frameConfig struct {
	Slots int `json:"slots"`
}

func BadJSON(raw []byte) ([]uint64, error) {
	var fc frameConfig
	if err := json.Unmarshal(raw, &fc); err != nil {
		return nil, err
	}
	return make([]uint64, fc.Slots), nil // want "derives from untrusted input"
}

func GoodJSON(raw []byte) ([]uint64, error) {
	var fc frameConfig
	if err := json.Unmarshal(raw, &fc); err != nil {
		return nil, err
	}
	n := fc.Slots
	if n > maxRecord {
		return nil, io.ErrUnexpectedEOF
	}
	return make([]uint64, n), nil
}

// AllowedCross: the container format validated n at the section table,
// which this helper cannot see; the escape hatch documents the contract.
//
//bf:allow taint n validated against the section directory by the container reader
func AllowedCross(r io.Reader) []byte {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	return make([]byte, n)
}

var _ = (*header).decode
