// Package other stands in for a package outside the taint target set
// (synthetic path leaf /render): the same unclamped wire read draws no
// diagnostic because the package never parses adversarial input.
//
// ok: no diagnostics expected
package other

import (
	"encoding/binary"
	"io"
)

func Size(r io.Reader) []byte {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	return make([]byte, n)
}
