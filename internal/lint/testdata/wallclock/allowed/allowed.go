// Package live stands in for an allowlisted wall-clock-facing package
// (live, checkpoint, httpapi, cmd/*, examples/*): the analyzer must stay
// silent here.
//
// ok: no diagnostics expected
package live

import "time"

// Now is this package's whole job.
func Now() time.Time { return time.Now() }

// Uptime reads the wall clock twice, and that is fine here.
func Uptime(start time.Time) time.Duration { return time.Since(start) }

// Ticker backs a rotation loop.
func Ticker(d time.Duration) *time.Ticker { return time.NewTicker(d) }
