// Package det stands in for a deterministic package (core, experiments,
// trafficgen, ...): reading the wall clock here is a reproducibility bug.
package det

import "time"

// Bad: the classic stray wall-clock read.
func Bad() time.Time {
	return time.Now() // want "time.Now in deterministic package"
}

// BadSince: Since is Now in disguise.
func BadSince(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since in deterministic package"
}

// BadTicker: timers tie behavior to the scheduler's clock.
func BadTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want "time.NewTicker in deterministic package"
}

// BadAfter: hides a timer allocation and a wall-clock read.
func BadAfter() <-chan time.Time {
	return time.After(time.Millisecond) // want "time.After in deterministic package"
}

// Good: virtual time is carried as a value; arithmetic on it is fine.
func Good(now time.Duration) time.Duration {
	return now + 5*time.Second
}

// GoodConstruction: durations and dates built from constants are
// deterministic.
func GoodConstruction() time.Time {
	return time.Unix(0, 0)
}

// seamInline is a deliberate, documented wall-clock seam: the allow
// marker on the offending line suppresses the diagnostic.
func seamInline() int64 {
	return time.Now().UnixNano() //bf:allow wallclock deliberate timing seam for this test
}

// seamWholeFunc demonstrates the function-doc form of the escape hatch.
//
//bf:allow wallclock whole function is a documented seam
func seamWholeFunc() time.Time {
	return time.Now()
}

var _ = seamInline
var _ = seamWholeFunc
