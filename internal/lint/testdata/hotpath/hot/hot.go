// Package hot exercises the hotpath analyzer: //bf:hotpath functions may
// not contain allocation-forcing constructs; everything else may.
package hot

import (
	"fmt"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) bump() { c.n++ }

func sinkAny(v any) { _ = v }

func helper() {}

// BadFmt: fmt allocates and boxes.
//
//bf:hotpath
func BadFmt(n int) {
	fmt.Println(n) // want "fmt.Println in hot path BadFmt allocates"
}

// BadMake: allocation per call.
//
//bf:hotpath
func BadMake(n int) []int {
	if n > 64 {
		n = 64
	}
	return make([]int, n) // want "make in hot path BadMake allocates"
}

// BadSliceLit: a slice literal is a hidden make.
//
//bf:hotpath
func BadSliceLit() []int {
	return []int{1, 2, 3} // want "slice literal in hot path BadSliceLit allocates"
}

// BadMapLit: map literals always allocate.
//
//bf:hotpath
func BadMapLit() map[int]int {
	return map[int]int{} // want "map literal in hot path BadMapLit allocates"
}

// BadClosure: closures capture and allocate.
//
//bf:hotpath
func BadClosure() func() int {
	return func() int { return 1 } // want "closure literal in hot path BadClosure allocates"
}

// BadGo: a goroutine launch is far off the per-packet budget.
//
//bf:hotpath
func BadGo() {
	go helper() // want "go statement in hot path BadGo"
}

// BadDefer: arbitrary defers are not free.
//
//bf:hotpath
func BadDefer(c *counter) {
	defer c.bump() // want "defer in hot path BadDefer"
	c.n++
}

// BadAppend: append may grow.
//
//bf:hotpath
func BadAppend(dst []int, v int) []int {
	return append(dst, v) // want "append in hot path BadAppend"
}

// BadBox: a non-pointer concrete value converted to an interface
// parameter heap-allocates.
//
//bf:hotpath
func BadBox(n int) {
	sinkAny(n) // want "boxes int into interface"
}

// GoodMutexDefer: Unlock defers are open-coded and free.
//
//bf:hotpath
func GoodMutexDefer(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// GoodAllowedDefer: the documented escape hatch for load-bearing defers
// (the pooled-put pattern).
//
//bf:hotpath
func GoodAllowedDefer(c *counter) {
	defer c.bump() //bf:allow hotpath pooled put must survive panics
	c.n++
}

// GoodPointerBox: boxing a pointer does not allocate.
//
//bf:hotpath
func GoodPointerBox(c *counter) {
	sinkAny(c)
}

// GoodNilBox: nil literals carry no value to box.
//
//bf:hotpath
func GoodNilBox() {
	sinkAny(nil)
}

// GoodStructWork: plain field math is the expected hot-path shape.
//
//bf:hotpath
func GoodStructWork(c *counter, xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	c.n += sum
	return sum
}

// coldMake is not annotated: the analyzer must stay silent however much
// it allocates.
func coldMake(n int) []int {
	out := make([]int, n)
	fmt.Println(out)
	return out
}

var _ = coldMake
