// Package dec stands in for an untrusted decoder package (its synthetic
// import path ends in /pcap): every non-constant make size must be
// clamped locally.
package dec

import (
	"encoding/binary"
	"io"
)

const maxRecord = 1 << 20

type reader struct {
	r       io.Reader
	snapLen uint32
}

// BadUnclamped: the size comes straight off the wire.
func (r *reader) BadUnclamped() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	buf := make([]byte, n) // want "make size n is not clamped"
	_, err := io.ReadFull(r.r, buf)
	return buf, err
}

// BadFieldBound: comparing against a struct field is not a clamp — the
// field may itself hold an unvalidated decoded value (the pcap snapLen
// bug).
func (r *reader) BadFieldBound(n uint32) ([]byte, error) {
	if n > r.snapLen {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n) // want "make size n is not clamped"
	_, err := io.ReadFull(r.r, buf)
	return buf, err
}

// GoodConstClamp: a comparison against a constant bounds the size.
func (r *reader) GoodConstClamp(n uint32) ([]byte, error) {
	if n > maxRecord {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r.r, buf)
	return buf, err
}

// GoodLen: len/cap of existing memory cannot be attacker-inflated.
func GoodLen(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// GoodMin: the builtin min with a constant bound is a clamp by
// construction.
func GoodMin(n int) []byte {
	return make([]byte, min(n, maxRecord))
}

// GoodConst: constants are trivially bounded.
func GoodConst() []byte {
	return make([]byte, 64)
}

// GoodArithmetic: arithmetic over constants and clamped leaves is fine.
func GoodArithmetic(count int) []uint64 {
	if count > maxRecord {
		count = maxRecord
	}
	return make([]uint64, 8*count)
}

// AllowedCrossFunction: the container header validated n before this
// helper was called; the analyzer cannot see that, so the escape hatch
// documents it.
//
//bf:allow boundedalloc n validated against the section count by the caller
func AllowedCrossFunction(n int) []byte {
	return make([]byte, n)
}

var _ = AllowedCrossFunction
