// Package render is not one of the untrusted decoder packages: unclamped
// sizes are allowed here (its inputs come from this process, not the
// wire).
//
// ok: no diagnostics expected
package render

// Grow allocates whatever the caller asks for.
func Grow(n int) []byte { return make([]byte, n) }
