// Package sent exercises the sentinelerr analyzer: sentinel errors are
// matched with errors.Is and wrapped with %w, never == or %v.
package sent

import (
	"errors"
	"fmt"
	"io"
)

// Package sentinels.
var (
	ErrBad   = errors.New("sent: bad")
	ErrOther = errors.New("sent: other")
)

// ErrCount is named like a sentinel but is not an error: not a sentinel.
var ErrCount = 3

// errLocalStyle is unexported and not Err-prefixed in the exported
// convention; the analyzer keys on the Err* name and error type only.
var errLocalStyle = errors.New("sent: local")

// BadCompare: wrapped returns make == false.
func BadCompare(err error) bool {
	return err == ErrBad // want "sentinel error ErrBad compared with =="
}

// BadNotEqual: != has the same problem.
func BadNotEqual(err error) bool {
	return err != ErrOther // want "sentinel error ErrOther compared with !="
}

// BadStdlib: stdlib sentinels are matched the same way.
func BadStdlib(err error) bool {
	return err == io.ErrUnexpectedEOF // want "sentinel error ErrUnexpectedEOF compared with =="
}

// BadWrapV: %v flattens the sentinel to text and severs errors.Is.
func BadWrapV(detail int) error {
	return fmt.Errorf("%v: detail %d", ErrBad, detail) // want "sentinel error ErrBad wrapped with %v"
}

// BadWrapSecondArg: verb positions are tracked per argument.
func BadWrapSecondArg(err error) error {
	return fmt.Errorf("%w after %s", err, ErrOther) // want "sentinel error ErrOther wrapped with %s"
}

// GoodIs: the blessed comparison.
func GoodIs(err error) bool {
	return errors.Is(err, ErrBad)
}

// GoodNilCompare: nil checks are not sentinel comparisons.
func GoodNilCompare(err error) bool {
	return err == nil
}

// GoodWrapW: %w keeps the chain intact.
func GoodWrapW(detail int) error {
	return fmt.Errorf("%w: detail %d", ErrBad, detail)
}

// GoodWrapWithTrailingDetail: a non-sentinel error under %v is fine —
// only sentinels must survive unwrapping.
func GoodWrapWithTrailingDetail(err error) error {
	return fmt.Errorf("%w: %v", ErrBad, err)
}

// GoodNotError: Err-prefixed non-error identifiers are ignored.
func GoodNotError(n int) bool {
	return n == ErrCount
}

// GoodLocalCompare: errLocalStyle is error-typed but not Err*-named, so
// the convention does not apply.
func GoodLocalCompare(err error) bool {
	return err == errLocalStyle
}

// AllowedCompare: a hot loop may compare identity on purpose when the
// sentinel is guaranteed unwrapped; the allow records the reason.
//
//bf:allow sentinelerr identity compare is intentional: the decode loop never wraps ErrBad
func AllowedCompare(err error) bool {
	return err == ErrBad
}
