// Package hot demonstrates the allocation class only the compiler can
// see. Both functions below build the identical composite literal and
// call the identical interface method; the AST hotpath analyzer finds
// nothing to object to in either (no make, no closure, no boxing at a
// call boundary). But the compiler's escape analysis — which runs after
// inlining and devirtualization — proves hotOK's value never leaves the
// stack, while hotBox's assignment to a package-level interface
// variable forces a heap allocation on every call.
package hot

type summer interface {
	sum() uint64
}

type pair struct {
	a, b uint64
}

func (p pair) sum() uint64 {
	return p.a + p.b
}

var sink summer

// hotBox stores the pair into a package-level interface: the concrete
// value outlives the frame, so the compiler boxes it on the heap —
// one allocation per call, invisible to any syntax-directed rule.
//
//bf:hotpath
func hotBox(k uint64) uint64 {
	sink = pair{a: k, b: k} // want "escapes to heap"
	return sink.sum()
}

// hotOK binds the same literal to a local interface variable: the
// compiler devirtualizes the call and keeps the pair on the stack.
// Zero allocations, zero diagnostics.
//
//bf:hotpath
func hotOK(k uint64) uint64 {
	var s summer = pair{a: k, b: k}
	return s.sum()
}

// hotAllowed boxes exactly like hotBox, but the escape is the point of
// this helper and the allow records why — proving line suppression
// works even when the diagnostic originates from the compiler pass.
//
//bf:allow escapecheck fixture: boxing here is deliberate, the helper publishes a snapshot once per rotation
//bf:hotpath
func hotAllowed(k uint64) uint64 {
	sink = pair{a: k, b: k}
	return sink.sum()
}

var (
	_ = hotBox
	_ = hotOK
	_ = hotAllowed
)
