// Package af exercises the atomic-field discipline: once a field is
// touched via sync/atomic it must never be accessed plainly, and it
// must not also claim //bf:guardedby protection.
package af

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	// count is a function-style atomic: accessed via atomic.AddUint64.
	count uint64

	mu sync.Mutex

	// guardedU claims mutex protection but is also bumped atomically —
	// the conflict is reported at the declaration.
	//
	//bf:guardedby mu
	guardedU uint64 // want "also accessed via sync/atomic"

	// badTyped is atomic-typed and claims a mutex at the same time.
	//
	//bf:guardedby mu
	badTyped atomic.Bool // want "sync/atomic type and a //bf:guardedby marker"

	// typed and arr are well-behaved typed atomics.
	typed atomic.Uint64
	arr   [4]atomic.Uint64
}

func inc(s *stats) {
	atomic.AddUint64(&s.count, 1)
	atomic.AddUint64(&s.guardedU, 1)
}

// BadPlainRead races with inc's atomic adds.
func BadPlainRead(s *stats) uint64 {
	return s.count // want "plain access races"
}

// BadPlainWrite is a torn store waiting to happen.
func BadPlainWrite(s *stats) {
	s.count = 0 // want "plain access races"
}

// GoodAtomicLoad is the sanctioned read.
func GoodAtomicLoad(s *stats) uint64 {
	return atomic.LoadUint64(&s.count)
}

// BadCopy forks the counter: the copy and the original diverge
// silently.
func BadCopy(s *stats) atomic.Uint64 {
	return s.typed // want "copied or accessed plainly"
}

// BadIndexCopy copies an element out of an atomic array.
func BadIndexCopy(s *stats) atomic.Uint64 {
	return s.arr[1] // want "copied or accessed plainly"
}

// GoodMethod, GoodAddr, GoodIndex, GoodRange, GoodLen are the
// legitimate shapes.
func GoodMethod(s *stats) uint64 {
	return s.typed.Load()
}

func GoodAddr(s *stats) *atomic.Uint64 {
	return &s.typed
}

func GoodIndex(s *stats) uint64 {
	return s.arr[2].Load()
}

func GoodRange(s *stats) uint64 {
	var total uint64
	for i := range s.arr {
		total += s.arr[i].Load()
	}
	return total
}

func GoodLen(s *stats) int {
	return len(s.arr)
}

// legacy models a documented exception: a best-effort snapshot read
// that tolerates torn values.
type legacy struct {
	n uint64
}

func bump(l *legacy) {
	atomic.AddUint64(&l.n, 1)
}

// AllowedPlain is the escape hatch in action.
//
//bf:allow atomicfield snapshot read is best-effort; torn values only skew one report
func AllowedPlain(l *legacy) uint64 {
	return l.n
}

var (
	_ = inc
	_ = bump
)
