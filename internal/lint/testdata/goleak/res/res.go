// Package res stands in for internal/resilience (synthetic import path
// leaf /resilience): every go statement needs a statically visible join.
package res

import (
	"context"
	"sync"
)

var counter int

// work is join-free on purpose: goroutines running it must provide
// their own signal.
func work() {
	counter++
}

func work2() error {
	counter++
	return nil
}

// BadFire spawns with no way for anyone to observe completion.
func BadFire() {
	go func() { // want "no statically visible join"
		work()
	}()
}

// GoodClose joins via the done-channel close idiom.
func GoodClose() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// GoodSend joins via a buffered error send.
func GoodSend() error {
	errc := make(chan error, 1)
	go func() {
		errc <- work2()
	}()
	return <-errc
}

// GoodWG pairs Add in the spawner with Done in the goroutine.
func GoodWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// BadWGNoAdd has a Done with no visible Add: the join claim cannot be
// audited from here.
func BadWGNoAdd(wg *sync.WaitGroup) {
	go func() { // want "WaitGroup.Done but the spawning function never calls Add"
		defer wg.Done()
		work()
	}()
}

// worker carries its own done channel; run closes it.
type worker struct {
	done chan struct{}
}

func (w *worker) run() {
	defer close(w.done)
	work()
}

// GoodMethod resolves the named-method goroutine body.
func GoodMethod() {
	w := &worker{done: make(chan struct{})}
	go w.run()
	<-w.done
}

// loop reaches its join two calls deep — finish closes the channel.
func (w *worker) loop() {
	work()
	w.finish()
}

func (w *worker) finish() {
	close(w.done)
}

// GoodTransitive: the join is inside a same-package callee of the
// goroutine body.
func GoodTransitive() {
	w := &worker{done: make(chan struct{})}
	go w.loop()
	<-w.done
}

// BadOpaque spawns a function value the analyzer cannot resolve.
func BadOpaque(f func()) {
	go f() // want "cannot be statically resolved"
}

// BadCtxOnly: waiting on ctx.Done() is cancellation, not a join —
// context.Done must not satisfy the WaitGroup rule.
func BadCtxOnly(ctx context.Context) {
	go func() { // want "no statically visible join"
		<-ctx.Done()
		work()
	}()
}

// AllowedFire is a documented process-lifetime goroutine.
//
//bf:allow goleak process-lifetime stats flusher, reaped at exit
func AllowedFire() {
	go work()
}
