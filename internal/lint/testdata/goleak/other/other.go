// Package other stands in for a package outside the goleak target set
// (synthetic path leaf /render): request-scoped goroutines there are
// not this analyzer's concern.
//
// ok: no diagnostics expected
package other

var counter int

func Fire() {
	go func() {
		counter++
	}()
}
