// Package m exercises the Prometheus series-name rules against the
// DESIGN.md fixture in this directory.
package m

import (
	"fmt"
	"io"
)

// good registers two documented, well-formed series.
func good(w io.Writer) {
	fmt.Fprintf(w, "# TYPE bitmapfilter_good_total counter\nbitmapfilter_good_total %d\n", 1)
	fmt.Fprintf(w, "# TYPE bitmapfilter_depth gauge\nbitmapfilter_depth %d\n", 2)
}

func bad(w io.Writer) {
	fmt.Fprintf(w, "# TYPE bitmapfilter_BadCase counter\n")    // want "not snake_case"
	fmt.Fprintf(w, "# TYPE bitmapfilter_good_total counter\n") // want "registered twice"
	fmt.Fprintf(w, "# TYPE bitmapfilter_reg_total meter\n")    // want "invalid Prometheus type"
	fmt.Fprintf(w, "bitmapfilter_undocumented_total %d\n", 3)  // want "not documented"
	fmt.Fprintf(w, "bitmapfilter__double_total %d\n", 4)       // want "not snake_case"
}

// wildcard mentions name a family, not a series.
func note() string {
	return "see bitmapfilter_resilience_* for the probe counters"
}

// AllowedLegacy keeps a grandfathered series until dashboards migrate.
//
//bf:allow metricname legacy camelCase series; dashboards migrate next release
func AllowedLegacy(w io.Writer) {
	fmt.Fprintf(w, "bitmapfilter_legacyCamel %d\n", 5)
}

var (
	_ = good
	_ = bad
	_ = note
)
