package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotpathAnalyzer enforces the batch data plane's 0 allocs/op contract.
//
// Functions annotated //bf:hotpath (ProcessBatchInto and its helpers,
// the bitvector SetAll/TestAll kernels, the per-packet process/mark/
// lookup path) are the per-packet steady state: one allocation there
// turns into millions per second at line rate and shows up directly in
// the ns/pkt benchmarks the repo gates on. The benchmarks catch a
// regression after the fact; this analyzer rejects the construct at
// review time.
//
// Reported constructs:
//
//   - calls into fmt or log (allocate and box their arguments)
//   - map and slice composite literals, make, new
//   - function literals (closure allocation)
//   - go statements (goroutine + closure)
//   - defer, except mutex Unlock/RUnlock (open-coded and free since
//     go1.13) — the pooled-put defer in Sharded.processBatchInto is the
//     documented //bf:allow escape hatch
//   - interface boxing: passing a non-pointer concrete value to an
//     interface-typed parameter forces a heap conversion
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation-forcing constructs in //bf:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := commentHasMarker(fd.Doc, hotpathMarker); !ok {
				continue
			}
			checkHotpathBody(pass, fd)
		}
	}
	return nil
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path %s allocates", fd.Name.Name)
			return false // its body is off the hot path once reported
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hot path %s allocates a goroutine", fd.Name.Name)
		case *ast.DeferStmt:
			if !isUnlockCall(n.Call) {
				pass.Reportf(n.Pos(),
					"defer in hot path %s (only mutex Unlock/RUnlock defers are free); if this defer is load-bearing (e.g. a pooled put that must survive panics), annotate it //bf:allow hotpath with a reason",
					fd.Name.Name)
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot path %s allocates", fd.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot path %s allocates", fd.Name.Name)
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, fd, n)
		}
		return true
	})
}

// isUnlockCall reports whether call is anyMutex.Unlock() / .RUnlock().
func isUnlockCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock"
}

func checkHotpathCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Builtins that allocate.
	if ident, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[ident].(*types.Builtin); isBuiltin {
			switch ident.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in hot path %s allocates; preallocate or pool the buffer", ident.Name, fd.Name.Name)
			case "append":
				pass.Reportf(call.Pos(), "append in hot path %s may grow and allocate; size the buffer up front", fd.Name.Name)
			}
			return
		}
	}

	// Formatting/logging packages allocate and box their arguments.
	if pkgPath, name, ok := pkgFunc(info, call); ok {
		if pkgPath == "fmt" || pkgPath == "log" || strings.HasSuffix(pkgPath, "/log") {
			pass.Reportf(call.Pos(), "%s.%s in hot path %s allocates and boxes its arguments", pkgPath, name, fd.Name.Name)
			return
		}
	}

	// Interface boxing at call boundaries: a non-pointer concrete
	// argument converted to an interface parameter heap-allocates.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // type conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			paramType = params.At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				paramType = params.At(params.Len() - 1).Type()
			} else {
				paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		default:
			continue
		}
		if !types.IsInterface(paramType.Underlying()) {
			continue
		}
		argType := info.TypeOf(arg)
		if argType == nil || types.IsInterface(argType.Underlying()) {
			continue
		}
		switch argType.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			// Pointer-shaped values box without a heap allocation.
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(),
			"argument boxes %s into interface %s in hot path %s; pass a pointer or keep the parameter concrete",
			argType, paramType, fd.Name.Name)
	}
}
