package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicFieldAnalyzer enforces the memory-model discipline the stats
// plumbing depends on: once a struct field is touched via sync/atomic,
// every access must be atomic, and the field must not also claim mutex
// protection.
//
// Two styles of atomic use are recognized:
//
//   - function style: atomic.AddUint64(&s.count, 1). The field's
//     object is recorded, and any other read or write of that field
//     that is not an &-arg to a sync/atomic call is a race: the plain
//     access can be torn or reordered against the atomic ones.
//   - typed style: fields of type atomic.Uint64/Bool/... . The type
//     system already forces Load/Store through methods, so the only
//     plain access possible is copying the value (assignment, range
//     value, composite literal) — which silently forks the counter.
//     Method calls, &-of, array indexing, index-only range, and
//     len/cap are the legitimate shapes and are allowed.
//
// Separately, an atomic field (either style) that also carries a
// //bf:guardedby marker is reported at its declaration: mixed
// mutex-plus-atomic protection means neither discipline actually holds,
// because writers under the lock and atomic readers outside it see no
// common ordering.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly, and must be disjoint from //bf:guardedby fields",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	info := pass.TypesInfo

	// Inventory function-style atomic fields: &s.f passed to sync/atomic.
	funcStyle := make(map[types.Object]token.Pos)
	// Every &s.f expression that appears as a sync/atomic argument is a
	// sanctioned use; remember the selector nodes so the access walk can
	// skip them.
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, _, ok := pkgFunc(info, call)
			if !ok || pkgPath != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := fieldObject(info, sel); obj != nil {
					if _, seen := funcStyle[obj]; !seen {
						funcStyle[obj] = obj.Pos()
					}
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	// Walk all field accesses with parent context.
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := fieldObject(info, sel)
			if obj == nil {
				return true
			}
			if _, isFuncStyle := funcStyle[obj]; isFuncStyle && !sanctioned[sel] {
				pass.Reportf(sel.Pos(),
					"field %s is accessed via sync/atomic elsewhere; this plain access races with the atomic ones — use atomic.Load/Store here too",
					obj.Name())
				return true
			}
			if isTypedAtomic(obj.Type()) && !typedAtomicUseOK(parents, sel) {
				pass.Reportf(sel.Pos(),
					"field %s has a sync/atomic type but is copied or accessed plainly here; atomics must only be used via their methods or by address",
					obj.Name())
			}
			return true
		})
	}

	// Disjointness from //bf:guardedby, reported at the declaration so
	// the fix (pick one discipline) lands where the field is defined.
	guarded := collectGuardedFields(pass)
	reported := make(map[types.Object]bool)
	check := func(obj types.Object) {
		if reported[obj] || obj == nil {
			return
		}
		if _, isGuarded := guarded[obj]; isGuarded {
			reported[obj] = true
			pass.Reportf(obj.Pos(),
				"field %s is marked //bf:guardedby but is also accessed via sync/atomic; mixed mutex/atomic protection orders nothing — pick one",
				obj.Name())
		}
	}
	for obj := range funcStyle {
		check(obj)
	}
	for obj := range guarded {
		if isTypedAtomic(obj.Type()) {
			reported[obj] = true
			pass.Reportf(obj.Pos(),
				"field %s has a sync/atomic type and a //bf:guardedby marker; mixed mutex/atomic protection orders nothing — pick one",
				obj.Name())
		}
	}
	return nil
}

// fieldObject resolves a selector to a struct field object, or nil.
func fieldObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// isTypedAtomic reports whether t (or an array of it) is one of the
// sync/atomic value types.
func isTypedAtomic(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		return isTypedAtomic(arr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// typedAtomicUseOK reports whether the context around a typed-atomic
// field selector is one of the non-copying shapes.
func typedAtomicUseOK(parents map[ast.Node]ast.Node, sel ast.Expr) bool {
	parent := parents[sel]
	// Unwrap parens around the selector.
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		sel = p
		parent = parents[p]
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// s.counter.Load(): the atomic value is the method receiver.
		return p.X == sel
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.IndexExpr:
		// s.arr[i]: the element is itself atomic-typed; the IndexExpr
		// gets its own check as a value node via its parent.
		return p.X == sel && typedAtomicUseOK(parents, p)
	case *ast.RangeStmt:
		// for i := range s.arr — index-only iteration; a range with a
		// value variable copies elements and go vet's copylocks already
		// rejects it.
		return p.X == sel
	case *ast.CallExpr:
		// len(s.arr) / cap(s.arr).
		if ident, ok := p.Fun.(*ast.Ident); ok && (ident.Name == "len" || ident.Name == "cap") {
			return true
		}
		return false
	}
	return false
}

// buildParents maps every node in f to its parent.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
