package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BoundedAllocAnalyzer guards the untrusted decoders against
// attacker-driven allocations.
//
// The snapshot readers (internal/core), the wire-format decoder
// (internal/packet) and the pcap reader (internal/pcap) all consume
// input an adversary may craft — the same posture the Bloom-filter DDoS
// literature assumes for edge-router state. A length field lifted out of
// such input must never reach make() unclamped: a 16-byte header claiming
// a 4 GiB record would OOM the edge router before a single checksum is
// verified (exactly what an unvalidated snapLen allowed in the pcap
// reader before this analyzer landed).
//
// Within the decoder packages, every non-constant make() size must be
// locally sanitized. A size expression is considered sanitized when each
// non-constant leaf is one of:
//
//   - len(x) or cap(x) (bounded by memory that already exists)
//   - a call to the min/max builtins with at least one constant bound
//   - an expression that is compared in this function against a constant,
//     a len/cap expression, or a plain local identifier
//
// Comparison against a struct field does NOT sanitize: fields carry
// unvalidated decoded state across calls (r.snapLen was the concrete
// case). Cross-function clamps that the analyzer cannot see locally are
// either re-validated locally (preferred: defense in depth) or annotated
// //bf:allow boundedalloc with a reason.
var BoundedAllocAnalyzer = &Analyzer{
	Name: "boundedalloc",
	Doc:  "flag unclamped make() sizes derived from decoded input in untrusted decoder packages",
	Run:  runBoundedAlloc,
}

// boundedAllocLeaves are the package-name leaves treated as untrusted
// decoders.
var boundedAllocLeaves = map[string]bool{
	"core":   true,
	"packet": true,
	"pcap":   true,
}

func boundedAllocTarget(pkgPath string) bool {
	segs := strings.Split(pkgPath, "/")
	return boundedAllocLeaves[segs[len(segs)-1]]
}

func runBoundedAlloc(pass *Pass) error {
	if !boundedAllocTarget(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		funcScopes(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			sanitized := collectSanitized(pass, body)
			inspectShallow(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				ident, ok := call.Fun.(*ast.Ident)
				if !ok || ident.Name != "make" {
					return true
				}
				if _, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin); !isBuiltin {
					return true
				}
				for _, sizeArg := range call.Args[1:] {
					for _, leaf := range unsanitizedLeaves(pass, sanitized, sizeArg) {
						pass.Reportf(leaf.Pos(),
							"make size %s is not clamped in this function; untrusted decoder allocations must be bounded by a local comparison against a constant or len/cap (comparisons against struct fields do not count — fields may carry unvalidated decoded state)",
							types.ExprString(leaf))
					}
				}
				return true
			})
		})
	}
	return nil
}

// collectSanitized returns the printed form of every expression that a
// comparison in body bounds against a trusted operand.
func collectSanitized(pass *Pass, body *ast.BlockStmt) map[string]bool {
	sanitized := make(map[string]bool)
	inspectShallow(body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		if trustedBound(pass, bin.Y) {
			sanitized[types.ExprString(bin.X)] = true
		}
		if trustedBound(pass, bin.X) {
			sanitized[types.ExprString(bin.Y)] = true
		}
		return true
	})
	return sanitized
}

// trustedBound reports whether a comparison operand is an acceptable
// bound: a constant, len/cap, or a plain local identifier. Struct-field
// selectors are rejected — they may hold unvalidated decoded values.
func trustedBound(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.CallExpr:
		return isLenCap(pass, e)
	}
	return false
}

func isLenCap(pass *Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin); !isBuiltin {
		return false
	}
	return ident.Name == "len" || ident.Name == "cap"
}

// unsanitizedLeaves decomposes a size expression through arithmetic and
// conversions and returns the leaves that are neither constant nor
// len/cap nor sanitized by a local comparison.
func unsanitizedLeaves(pass *Pass, sanitized map[string]bool, e ast.Expr) []ast.Expr {
	e = ast.Unparen(e)
	// Whole-expression checks first: constants and locally compared
	// expressions are fine regardless of shape.
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return nil
	}
	if sanitized[types.ExprString(e)] {
		return nil
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		return append(unsanitizedLeaves(pass, sanitized, e.X),
			unsanitizedLeaves(pass, sanitized, e.Y)...)
	case *ast.CallExpr:
		if isLenCap(pass, e) {
			return nil
		}
		if ident, ok := e.Fun.(*ast.Ident); ok {
			if _, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin); isBuiltin &&
				(ident.Name == "min" || ident.Name == "max") {
				// min(x, CONST) is a clamp by construction.
				for _, arg := range e.Args {
					if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
						return nil
					}
				}
			}
		}
		// Conversions unwrap to their operand; other calls are opaque.
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return unsanitizedLeaves(pass, sanitized, e.Args[0])
		}
		return []ast.Expr{e}
	default:
		return []ast.Expr{e}
	}
}
