// Package linttest is a stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis/analysistest golden-test convention:
// a testdata package is type-checked and analyzed, and every expected
// diagnostic is declared inline with a
//
//	// want "regexp"
//
// comment on the offending line (several per line are allowed:
// // want "a" "b"). The test fails on any diagnostic without a matching
// want, and on any want without a matching diagnostic — so each analyzer
// suite proves both that the rule fires on violations and that it stays
// silent on conforming code.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"bitmapfilter/internal/lint"
)

// sharedLoader caches type-checked stdlib dependencies across the many
// per-analyzer tests in one process; building a fresh source-importer per
// test would re-typecheck fmt/sync/io each time.
var sharedLoader *lint.Loader

func loader(t *testing.T) *lint.Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := lint.NewLoader(".")
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// Run type-checks the package in dir under the import path asPath, runs
// the single analyzer over it, and matches diagnostics against the
// // want annotations in the testdata sources.
//
// asPath matters: wallclock and boundedalloc decide applicability from
// the package path, so testdata packages choose paths on either side of
// the allowlist (e.g. "example.com/det" vs "example.com/live").
func Run(t *testing.T, dir, asPath string, a *lint.Analyzer) {
	t.Helper()
	l := loader(t)
	pkg, err := l.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("linttest: load %s: %v", dir, err)
	}
	diags, err := lint.Check(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if !wants.match(key, d.Message) {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	wants.reportUnmatched(t)
}

type wantEntry struct {
	key     string // file:line
	re      *regexp.Regexp
	raw     string
	matched bool
}

type wantSet struct{ entries []*wantEntry }

func (ws *wantSet) match(key, message string) bool {
	for _, w := range ws.entries {
		if !w.matched && w.key == key && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, w := range ws.entries {
		if !w.matched {
			t.Errorf("no diagnostic at %s matching %q", w.key, w.raw)
		}
	}
}

// wantRe extracts the quoted regexps from a `// want "a" "b"` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, pkg *lint.Package) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					unescaped := strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(m[1])
					re, err := regexp.Compile(unescaped)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					ws.entries = append(ws.entries, &wantEntry{
						key: fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
						re:  re,
						raw: unescaped,
					})
				}
			}
		}
	}
	// Guard against silently-empty suites: a testdata package with no
	// wants at all usually means the comments were misplaced.
	if len(ws.entries) == 0 {
		ensureIntentional(t, pkg)
	}
	return ws
}

// ensureIntentional allows want-free testdata only when the package
// declares `// ok: no diagnostics expected` somewhere.
func ensureIntentional(t *testing.T, pkg *lint.Package) {
	t.Helper()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			if strings.Contains(cg.Text(), "ok: no diagnostics expected") {
				return
			}
		}
	}
	var name string
	if len(pkg.Files) > 0 {
		name = pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	}
	t.Fatalf("testdata package %s has no // want annotations and no '// ok: no diagnostics expected' marker", name)
}
