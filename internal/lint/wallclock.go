package lint

import (
	"go/ast"
	"strings"
)

// WallclockAnalyzer forbids reading the wall clock in deterministic
// packages.
//
// Everything under internal/core is driven by virtual time carried on
// packets, and the experiments, generators and models must produce
// byte-identical output for a fixed seed — that determinism is what makes
// the paper's tables reproducible and what lets checkpoint restore
// back-date the filter clock after downtime. A single stray time.Now
// silently breaks all of it.
//
// Wall time is confined to an explicit allowlist of adapter packages
// (live, checkpoint, httpapi, capture), binaries (cmd/*) and runnable examples
// (examples/*); everything else must take time as an input (packet
// timestamps, an injected live.Clock, a caller-supplied seed).
// A deliberate seam in a deterministic package carries
// //bf:allow wallclock with a reason.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/NewTimer/NewTicker/After/Tick in deterministic packages",
	Run:  runWallclock,
}

// wallclockAllowedSegments are path segments that mark a package as
// wall-clock-facing: any package under cmd/ or examples/, and the three
// adapter packages by name.
var wallclockAllowedSegments = map[string]bool{
	"cmd":      true,
	"examples": true,
}

// wallclockAllowedLeaves are package-name leaves allowed to touch the
// wall clock.
var wallclockAllowedLeaves = map[string]bool{
	"live":       true,
	"checkpoint": true,
	"httpapi":    true,
	// capture adapts real NICs (AF_PACKET) to the virtual-time packet
	// plane: stamping a received frame with an offset from the capture
	// epoch is inherently a wall-clock read.
	"capture": true,
	// resilience supervises the wall-clock-facing capture plane: backoff
	// sleeps are real time, and the watchdog's default clock is the
	// process's monotonic elapsed time (tests inject a fake).
	"resilience": true,
}

// wallclockBanned are the time-package functions whose results depend on
// when the process runs.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
}

// wallclockExempt reports whether the package path is on the allowlist.
func wallclockExempt(pkgPath string) bool {
	segs := strings.Split(pkgPath, "/")
	for _, s := range segs {
		if wallclockAllowedSegments[s] {
			return true
		}
	}
	return wallclockAllowedLeaves[segs[len(segs)-1]]
}

func runWallclock(pass *Pass) error {
	if wallclockExempt(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFunc(pass.TypesInfo, call)
			if !ok || pkgPath != "time" || !wallclockBanned[name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s in deterministic package %q: take time as an input (packet timestamps, an injected Clock, a seed) or move this to an allowlisted package (live, checkpoint, httpapi, capture, cmd/*, examples/*)",
				name, pass.Pkg.Path())
			return true
		})
	}
	return nil
}
