package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// SentinelErrAnalyzer enforces wrap-aware error handling for the
// repository's sentinel errors (ErrConfig, ErrSnapshotKind, ...).
//
// Every sentinel in this codebase is returned wrapped — typically
// fmt.Errorf("%w: detail", ErrConfig, ...) — so direct identity checks
// are latent bugs: err == ErrConfig is false for every wrapped return
// even though errors.Is(err, ErrConfig) is true, and the API docs
// ("matchable with errors.Is") promise exactly the latter. Symmetrically,
// wrapping a sentinel with %v or %s instead of %w severs the Is chain
// for every caller downstream.
//
// Reported patterns:
//
//   - x == ErrFoo / x != ErrFoo where ErrFoo is a package-level error
//     variable named Err*: use errors.Is (comparisons against nil are
//     fine)
//   - fmt.Errorf("...", ..., ErrFoo, ...) where ErrFoo's verb is not %w:
//     the sentinel would be flattened to text
var SentinelErrAnalyzer = &Analyzer{
	Name: "sentinelerr",
	Doc:  "require errors.Is/%w for sentinel errors instead of == or %v",
	Run:  runSentinelErr,
}

func runSentinelErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelComparison(pass, n)
			case *ast.CallExpr:
				checkSentinelWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelObj resolves e to a package-level error variable named Err*,
// defined in any package (this module's sentinels and stdlib ones like
// os.ErrNotExist alike — all are documented for errors.Is matching).
func sentinelObj(pass *Pass, e ast.Expr) types.Object {
	var ident *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		ident = e
	case *ast.SelectorExpr:
		ident = e.Sel
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[ident]
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	// Package-level: parent scope is the package scope.
	if v.Parent() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") || !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func checkSentinelComparison(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	for _, operand := range []ast.Expr{bin.X, bin.Y} {
		if obj := sentinelObj(pass, operand); obj != nil {
			op := "errors.Is"
			if bin.Op == token.NEQ {
				op = "!errors.Is"
			}
			pass.Reportf(bin.Pos(),
				"sentinel error %s compared with %s; wrapped returns make this false — use %s(err, %s)",
				obj.Name(), bin.Op, op, obj.Name())
			return
		}
	}
}

// checkSentinelWrap flags fmt.Errorf calls that pass a sentinel under a
// verb other than %w.
func checkSentinelWrap(pass *Pass, call *ast.CallExpr) {
	pkgPath, name, ok := pkgFunc(pass.TypesInfo, call)
	if !ok || pkgPath != "fmt" || name != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		obj := sentinelObj(pass, arg)
		if obj == nil {
			continue
		}
		verb := byte(0)
		if i < len(verbs) {
			verb = verbs[i]
		}
		if verb != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel error %s wrapped with %%%c; use %%w so callers can match it with errors.Is",
				obj.Name(), printableVerb(verb))
		}
	}
}

func printableVerb(v byte) byte {
	if v == 0 {
		return '?'
	}
	return v
}

// formatVerbs returns the verb letter for each successive argument of a
// Printf-style format string. Explicit argument indexes (%[n]d) are rare
// in this codebase and treated conservatively: they terminate parsing.
func formatVerbs(format string) []byte {
	var verbs []byte
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		// Skip flags, width, precision; a '*' width consumes an
		// argument of its own.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.IndexByte("+-# 0123456789.", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%': // literal percent, no argument
		case '[':
			return verbs // explicit index: give up, stay silent
		default:
			verbs = append(verbs, format[i])
		}
		i++
	}
	return verbs
}
