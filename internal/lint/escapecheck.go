package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// EscapeCheckAnalyzer closes the gap between what the AST can prove and
// what the compiler actually does. HotpathAnalyzer rejects allocation
// *constructs* — make, closures, fmt calls, interface boxing at call
// boundaries — but allocation is ultimately an escape-analysis verdict,
// and that verdict depends on inlining depth, devirtualization, and
// flow facts no syntax-directed pass can reconstruct. The canonical
// miss: assigning a concrete struct to a package-level interface
// variable boxes it on the heap, while the identical composite literal
// assigned to a *local* interface variable devirtualizes and stays on
// the stack. Same syntax, opposite allocation behavior — only the
// compiler knows which is which.
//
// So this analyzer asks the compiler: it runs
//
//	go build -gcflags=-m=2 .
//
// in the package directory (the build cache replays diagnostics on
// cached builds, so repeat runs cost milliseconds), parses the
// file:line:col escape diagnostics, and reports every "escapes to heap"
// or "moved to heap" verdict whose position falls inside a //bf:hotpath
// function body. Packages with no hotpath functions skip the compiler
// run entirely.
//
// Contract with the compiler output (documented in DESIGN.md §8): one
// diagnostic per line, `<path>:<line>:<col>: <message>`, where messages
// containing "escapes to heap" (but not "does not escape") or starting
// with "moved to heap" are allocation verdicts; indented flow:/from
// lines are explanatory and ignored. "leaking param" lines are ignored
// too — a leaked parameter only allocates at call sites, which are
// checked in their own packages.
var EscapeCheckAnalyzer = &Analyzer{
	Name: "escapecheck",
	Doc:  "cross-check //bf:hotpath bodies against the compiler's own escape analysis (go build -gcflags=-m=2)",
	Run:  runEscapeCheck,
}

// escapeDiagRE matches one compiler diagnostic line. Paths may be
// printed ./relative, bare, or absolute.
var escapeDiagRE = regexp.MustCompile(`^(.*\.go):(\d+):(\d+): (.+)$`)

// hotSpan is one //bf:hotpath function's position range within a file.
type hotSpan struct {
	name       string
	start, end int // line numbers, inclusive
}

func runEscapeCheck(pass *Pass) error {
	if pass.Dir == "" {
		return nil
	}

	// Inventory hotpath function spans per file base name. No hotpath
	// functions → no compiler run.
	spans := make(map[string][]hotSpan)
	astFiles := make(map[string]*ast.File)
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		base := filepath.Base(pos.Filename)
		astFiles[base] = f
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := commentHasMarker(fd.Doc, hotpathMarker); !ok {
				continue
			}
			spans[base] = append(spans[base], hotSpan{
				name:  fd.Name.Name,
				start: pass.Fset.Position(fd.Pos()).Line,
				end:   pass.Fset.Position(fd.Body.End()).Line,
			})
		}
	}
	if len(spans) == 0 {
		return nil
	}

	out, err := compilerEscapeOutput(pass)
	if err != nil {
		return err
	}

	seen := make(map[string]bool)
	for _, line := range strings.Split(out, "\n") {
		m := escapeDiagRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		base := filepath.Base(m[1])
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		msg := strings.TrimSuffix(m[4], ":")
		if !isEscapeVerdict(msg) {
			continue
		}
		span, ok := spanAt(spans[base], lineNo)
		if !ok {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s", base, lineNo, colNo, msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		pos, ok := filePos(pass.Fset, astFiles[base], lineNo, colNo)
		if !ok {
			continue
		}
		pass.Reportf(pos,
			"compiler escape analysis: %s, inside //bf:hotpath function %s; the allocation is real even though no AST rule matches — restructure (keep the value local, pass a pointer, or predeclare the boxed value)",
			msg, span.name)
	}
	return nil
}

// isEscapeVerdict filters compiler -m=2 messages down to the ones that
// mean "this heap-allocates here".
func isEscapeVerdict(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap")
}

func spanAt(spans []hotSpan, line int) (hotSpan, bool) {
	for _, s := range spans {
		if line >= s.start && line <= s.end {
			return s, true
		}
	}
	return hotSpan{}, false
}

// filePos maps a (line, col) pair back into the fileset.
func filePos(fset *token.FileSet, f *ast.File, line, col int) (token.Pos, bool) {
	if f == nil {
		return token.NoPos, false
	}
	tf := fset.File(f.Pos())
	if tf == nil || line < 1 || line > tf.LineCount() {
		return token.NoPos, false
	}
	return tf.LineStart(line) + token.Pos(col-1), true
}

// compilerEscapeOutput shells out to the go tool from the package
// directory and returns the -m=2 diagnostic stream. Build tags follow
// the loader's build.Default (the -tags flag mutates it), and the
// subprocess inherits the environment, so GOOS=linux runs analyze the
// same file set the loader saw.
func compilerEscapeOutput(pass *Pass) (string, error) {
	args := []string{"build", "-gcflags=-m=2"}
	if tags := build.Default.BuildTags; len(tags) > 0 {
		args = append(args, "-tags="+strings.Join(tags, ","))
	}
	if pass.Pkg.Name() == "main" {
		// Keep go build from dropping a binary into the package dir.
		args = append(args, "-o", os.DevNull)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = pass.Dir
	var buf strings.Builder
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		out := buf.String()
		if len(out) > 2000 {
			out = out[:2000] + " ..."
		}
		return "", fmt.Errorf("escapecheck: go build -gcflags=-m=2 in %s failed: %v\n%s", pass.Dir, err, out)
	}
	return buf.String(), nil
}
