package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for splitmix64 seeded with 1234567, from the
	// public-domain reference implementation.
	sm := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85,
		0x2c73f08458540fa5,
		0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Errorf("Next()[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestNewIsDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("stream diverged at %d: %#x != %#x", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Errorf("seed 0 generator produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(10, 13)
		if v < 10 || v > 13 {
			t.Fatalf("IntRange(10,13) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("IntRange(10,13) hit %d/4 values", len(seen))
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("Exp(2.5) mean = %v", mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	r := New(13)
	if v := r.Exp(0); v != 0 {
		t.Errorf("Exp(0) = %v, want 0", v)
	}
	if v := r.Exp(-1); v != 0 {
		t.Errorf("Exp(-1) = %v, want 0", v)
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := New(17)
	for i := 0; i < 100000; i++ {
		if v := r.Pareto(3, 1.2); v < 3 {
			t.Fatalf("Pareto(3,1.2) = %v below xm", v)
		}
	}
}

func TestParetoMedian(t *testing.T) {
	// Median of Pareto(xm, a) is xm * 2^(1/a).
	r := New(19)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.Pareto(1, 2)
	}
	below := 0
	want := math.Pow(2, 0.5)
	for _, v := range vals {
		if v < want {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below theoretical median = %v, want ~0.5", frac)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance = %v", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal = %v", v)
		}
	}
}

func TestCategoricalDistribution(t *testing.T) {
	r := New(31)
	weights := []float64{1, 3, 0, 6}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[2])
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		got := float64(counts[i]) / n
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency = %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalDegenerate(t *testing.T) {
	r := New(37)
	if got := r.Categorical(nil); got != 0 {
		t.Errorf("Categorical(nil) = %d", got)
	}
	if got := r.Categorical([]float64{0, 0}); got != 0 {
		t.Errorf("Categorical(zeros) = %d", got)
	}
	if got := r.Categorical([]float64{-1, 5}); got != 1 {
		t.Errorf("Categorical(negative,positive) = %d, want 1", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkDecorrelates(t *testing.T) {
	parent := New(99)
	a := parent.Fork()
	b := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked streams matched %d/100 draws", same)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(43)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
