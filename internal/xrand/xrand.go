// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator so that every experiment is
// reproducible from a single 64-bit seed.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny stateless-stepping generator, mainly used to expand
//     one seed into many independent stream seeds.
//   - Rand (xoshiro256**): the workhorse generator with helpers for the
//     distributions the traffic and attack generators need (uniform,
//     exponential, Pareto, log-normal, categorical).
//
// Neither generator is cryptographically secure; they are simulation PRNGs.
package xrand

import "math"

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. Its zero
// value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** PRNG. Construct it with New; the zero value has an
// all-zero state which xoshiro cannot escape, so New always mixes the seed
// through SplitMix64 first.
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded from seed via SplitMix64 expansion, guaranteeing
// a non-degenerate internal state for any seed value (including 0).
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// Astronomically unlikely, but the all-zero state is the one fixed
	// point of xoshiro; nudge it if SplitMix64 ever produced it.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Fork derives an independent generator from r. Streams produced by repeated
// Fork calls are decorrelated because each is re-expanded through SplitMix64.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17

	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)

	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers always pass positive literals or validated
// sizes.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 random mantissa bits scaled into [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// A zero or negative mean yields 0.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto(xm, alpha) distributed value (a classic
// heavy-tailed model for connection lifetimes and flow sizes).
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal returns an exp(Normal(mu, sigma)) distributed value.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Normal returns a standard normal variate using the Box–Muller transform.
func (r *Rand) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Categorical samples an index from the given non-negative weights. Weights
// that sum to zero (or an empty slice) yield index 0.
func (r *Rand) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Shuffle permutes the first n elements using the provided swap function,
// following the Fisher–Yates algorithm.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
