package replay

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/flowtable"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/pcap"
	"bitmapfilter/internal/trafficgen"
)

var subnet = packet.PrefixFrom(packet.AddrFrom4(10, 0, 0, 0), 24)

func writeCapture(t *testing.T, pkts []packet.Packet) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		frame, err := packet.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRecord(pcap.Record{Time: p.Time, Data: frame}); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

func smallFilter() *core.Filter {
	return core.MustNew(
		core.WithOrder(12), core.WithVectors(4), core.WithHashes(3),
		core.WithRotateEvery(5*time.Second))
}

func TestRunRequiresSubnets(t *testing.T) {
	if _, err := Run(bytes.NewReader(nil), smallFilter(), nil); !errors.Is(err, ErrNoSubnets) {
		t.Errorf("error = %v", err)
	}
}

func TestRunBadCapture(t *testing.T) {
	if _, err := Run(bytes.NewReader(make([]byte, 24)), smallFilter(), []packet.Prefix{subnet}); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReplayClassifiesAndFilters(t *testing.T) {
	client := packet.AddrFrom4(10, 0, 0, 5)
	server := packet.AddrFrom4(198, 51, 100, 7)
	attacker := packet.AddrFrom4(203, 0, 113, 9)
	pkts := []packet.Packet{
		{ // outgoing request
			Time: time.Second,
			Tuple: packet.Tuple{Src: client, Dst: server,
				SrcPort: 4000, DstPort: 80, Proto: packet.TCP},
			Dir: packet.Outgoing, Flags: packet.SYN, Length: 60,
		},
		{ // matching reply: passes
			Time: 2 * time.Second,
			Tuple: packet.Tuple{Src: server, Dst: client,
				SrcPort: 80, DstPort: 4000, Proto: packet.TCP},
			Dir: packet.Incoming, Flags: packet.SYN | packet.ACK, Length: 60,
		},
		{ // unsolicited probe: drops
			Time: 3 * time.Second,
			Tuple: packet.Tuple{Src: attacker, Dst: client,
				SrcPort: 6666, DstPort: 445, Proto: packet.TCP},
			Dir: packet.Incoming, Flags: packet.SYN, Length: 60,
		},
	}
	buf := writeCapture(t, pkts)
	res, err := Run(buf, smallFilter(), []packet.Prefix{subnet})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 3 || res.Skipped != 0 {
		t.Errorf("frames=%d skipped=%d", res.Frames, res.Skipped)
	}
	if res.Outgoing != 1 || res.Incoming != 2 {
		t.Errorf("out=%d in=%d", res.Outgoing, res.Incoming)
	}
	if res.Passed != 1 || res.Dropped != 1 {
		t.Errorf("passed=%d dropped=%d", res.Passed, res.Dropped)
	}
	if res.DropRate() != 0.5 {
		t.Errorf("DropRate = %v", res.DropRate())
	}
	if res.FirstTime != time.Second || res.LastTime != 3*time.Second {
		t.Errorf("time bounds %v..%v", res.FirstTime, res.LastTime)
	}
}

func TestReplaySkipsForeignAndGarbage(t *testing.T) {
	// One transit packet (neither end inside) plus one garbage record.
	transit := packet.Packet{
		Time: time.Second,
		Tuple: packet.Tuple{
			Src: packet.AddrFrom4(203, 0, 113, 9), Dst: packet.AddrFrom4(198, 51, 100, 7),
			SrcPort: 1, DstPort: 2, Proto: packet.TCP},
		Dir: packet.Incoming, Length: 60,
	}
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := packet.Encode(transit)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(pcap.Record{Time: transit.Time, Data: frame}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(pcap.Record{Time: 2 * time.Second, Data: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(&buf, smallFilter(), []packet.Prefix{subnet})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 2 || res.Skipped != 2 {
		t.Errorf("frames=%d skipped=%d", res.Frames, res.Skipped)
	}
	if res.DropRate() != 0 {
		t.Errorf("DropRate = %v with no incoming", res.DropRate())
	}
}

// TestReplayTruncatedRecords: snapLen-truncated captures must be counted,
// and frames that still decode (the cut fell beyond the IP datagram, e.g.
// an Ethernet trailer) must be accounted at their original wire length —
// both depend on the reader surfacing origLen, which it used to discard.
func TestReplayTruncatedRecords(t *testing.T) {
	client := packet.AddrFrom4(10, 0, 0, 5)
	server := packet.AddrFrom4(198, 51, 100, 7)
	full := packet.Packet{
		Time: time.Second,
		Tuple: packet.Tuple{Src: client, Dst: server,
			SrcPort: 4000, DstPort: 80, Proto: packet.TCP},
		Dir: packet.Outgoing, Flags: packet.SYN, Length: 60,
	}
	frame, err := packet.Encode(full)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Record 0: whole frame captured, but the wire carried 1514 bytes
	// (the snapshot cut a trailer the IP header does not cover) —
	// decodable, replayed at OrigLen.
	if err := w.WriteRecord(pcap.Record{Time: full.Time, Data: frame, OrigLen: 1514}); err != nil {
		t.Fatal(err)
	}
	// Record 1: cut mid-datagram — truncated and undecodable.
	if err := w.WriteRecord(pcap.Record{Time: 2 * time.Second, Data: frame[:40], OrigLen: len(frame)}); err != nil {
		t.Fatal(err)
	}

	var seen []int
	res, err := Run(&buf, smallFilter(), []packet.Prefix{subnet},
		func(p packet.Packet) { seen = append(seen, p.Length) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 2 || res.Truncated != 2 || res.Skipped != 1 {
		t.Errorf("frames=%d truncated=%d skipped=%d, want 2/2/1",
			res.Frames, res.Truncated, res.Skipped)
	}
	if len(seen) != 1 || seen[0] != 1514 {
		t.Errorf("observer saw lengths %v, want [1514]", seen)
	}
}

// End-to-end: generate a synthetic trace, export to pcap, replay through
// both the bitmap and an SPI filter, and check the replayed drop rates
// agree with direct (in-memory) processing.
func TestReplayMatchesDirectProcessing(t *testing.T) {
	cfg := trafficgen.DefaultConfig()
	cfg.Duration = 90 * time.Second
	cfg.ConnRate = 15
	gen, err := trafficgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []packet.Packet
	gen.Drain(func(p packet.Packet) { pkts = append(pkts, p) })

	// Direct run.
	direct := core.MustNew(core.WithOrder(16), core.WithSeed(1))
	for _, p := range pkts {
		direct.Process(p)
	}

	// Pcap round trip.
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		frame, err := packet.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRecord(pcap.Record{Time: p.Time, Data: frame}); err != nil {
			t.Fatal(err)
		}
	}
	replayed := core.MustNew(core.WithOrder(16), core.WithSeed(1))
	res, err := Run(&buf, replayed, cfg.Subnets)
	if err != nil {
		t.Fatal(err)
	}

	dc := direct.Counters()
	if res.Incoming != dc.InPackets || res.Outgoing != dc.OutPackets {
		t.Fatalf("replay saw %d/%d packets, direct %d/%d",
			res.Outgoing, res.Incoming, dc.OutPackets, dc.InPackets)
	}
	if res.Dropped != dc.InDropped {
		t.Errorf("replay dropped %d, direct %d", res.Dropped, dc.InDropped)
	}

	// And the SPI filter replays cleanly too.
	buf2 := writeCapture(t, pkts)
	spi := flowtable.NewHashList()
	res2, err := Run(buf2, spi, cfg.Subnets)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Incoming == 0 || res2.DropRate() > 0.05 {
		t.Errorf("SPI replay: in=%d droprate=%v", res2.Incoming, res2.DropRate())
	}
}
