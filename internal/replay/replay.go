// Package replay drives packets from a pcap capture through a packet
// filter, closing the loop between the synthetic generator (which can
// export pcap via cmd/bftrace) and real-world captures: any trace of a
// client network can be evaluated against the bitmap filter and the SPI
// baselines offline.
//
// Direction is inferred per frame: frames whose source address lies in a
// configured client subnet are outgoing, frames whose destination lies
// inside are incoming, and frames touching no subnet are skipped (transit
// traffic the edge router would never see).
package replay

import (
	"errors"
	"fmt"
	"io"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/pcap"
)

// ErrNoSubnets is returned when no client subnets are configured.
var ErrNoSubnets = errors.New("replay: no client subnets")

// Result summarizes one replay run.
type Result struct {
	// Frames is the number of pcap records read.
	Frames uint64
	// Truncated counts records whose capture stored fewer bytes than the
	// frame carried on the wire (snapLen cut them short). Decodable
	// truncated frames are replayed with their original wire length so
	// bandwidth-sensitive observers are not skewed by the snapshot.
	Truncated uint64
	// Skipped counts undecodable frames and frames not touching the
	// subnets.
	Skipped uint64
	// Outgoing/Incoming count classified packets fed to the filter.
	Outgoing uint64
	Incoming uint64
	// Passed/Dropped split the incoming packets by verdict.
	Passed  uint64
	Dropped uint64
	// FirstTime and LastTime bound the replayed capture.
	FirstTime, LastTime time.Duration
}

// DropRate returns the incoming drop fraction.
func (r Result) DropRate() float64 {
	if r.Incoming == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Incoming)
}

// batchSize is how many classified packets are accumulated before one
// ProcessBatchInto call. Batching is what keeps replay at filter speed:
// per-packet overheads (locks on Safe/Sharded, verdict allocation) are
// paid once per batch, and both buffers below are reused for the whole
// capture.
const batchSize = 512

// Run reads a pcap stream from src and processes every classifiable frame
// through filter, driving it through the batch data plane (filters without
// a native batch path get the generic per-packet fallback — verdicts are
// identical either way). Undecodable frames are counted, not fatal (real
// captures contain ARP, IPv6 and truncated frames). Optional observers see
// every classified packet before the filter does (e.g. the Figure 2
// trackers).
func Run(src io.Reader, filter filtering.PacketFilter, subnets []packet.Prefix, observers ...func(pkt packet.Packet)) (Result, error) {
	if len(subnets) == 0 {
		return Result{}, ErrNoSubnets
	}
	rd, err := pcap.NewReader(src)
	if err != nil {
		return Result{}, fmt.Errorf("replay: %w", err)
	}

	inside := func(a packet.Addr) bool {
		for _, s := range subnets {
			if s.Contains(a) {
				return true
			}
		}
		return false
	}

	var res Result
	first := true
	bf := filtering.AsBatch(filter)
	batch := make([]packet.Packet, 0, batchSize)
	verdicts := make([]filtering.Verdict, 0, batchSize)
	flush := func() {
		verdicts = bf.ProcessBatchInto(batch, verdicts)
		for i := range batch {
			if batch[i].Dir == packet.Outgoing {
				res.Outgoing++
				continue
			}
			res.Incoming++
			if verdicts[i] == filtering.Pass {
				res.Passed++
			} else {
				res.Dropped++
			}
		}
		batch = batch[:0]
	}
	frameBuf := make([]byte, pcap.DefaultSnapLen)
	for {
		rec, err := rd.ReadRecordInto(frameBuf)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			flush()
			return res, fmt.Errorf("replay: %w", err)
		}
		res.Frames++
		if rec.Truncated() {
			res.Truncated++
		}
		frame, err := packet.Decode(rec.Data)
		if err != nil {
			res.Skipped++
			continue
		}
		pkt := frame.ToPacket()
		pkt.Time = rec.Time
		if rec.Truncated() {
			// The decoder saw only the captured prefix; the filter and
			// the observers should account the frame at its wire length.
			pkt.Length = rec.OrigLen
		}
		switch {
		case inside(pkt.Tuple.Src):
			pkt.Dir = packet.Outgoing
		case inside(pkt.Tuple.Dst):
			pkt.Dir = packet.Incoming
		default:
			res.Skipped++
			continue
		}
		if first {
			res.FirstTime = rec.Time
			first = false
		}
		res.LastTime = rec.Time

		for _, obs := range observers {
			obs(pkt)
		}
		batch = append(batch, pkt)
		if len(batch) == batchSize {
			flush()
		}
	}
	flush()
	return res, nil
}
