package netsim

import (
	"errors"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

func TestSetInboundLinkValidation(t *testing.T) {
	_, net, _, _ := buildNet(t, nil)
	if err := net.SetInboundLink(0, time.Second); !errors.Is(err, ErrLinkConfig) {
		t.Errorf("capacity 0: %v", err)
	}
	if err := net.SetInboundLink(1e6, 0); !errors.Is(err, ErrLinkConfig) {
		t.Errorf("backlog 0: %v", err)
	}
	if err := net.SetInboundLink(1e6, time.Second); err != nil {
		t.Errorf("valid link rejected: %v", err)
	}
}

func TestLinkStatsZeroWithoutLink(t *testing.T) {
	_, net, _, _ := buildNet(t, nil)
	if st := net.LinkStats(); st != (LinkStats{}) {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	sim, net, client, server := buildNet(t, nil)
	// 1 Mbit/s: a 1250-byte packet takes 10 ms of wire time.
	if err := net.SetInboundLink(1e6, time.Second); err != nil {
		t.Fatal(err)
	}
	var deliveredAt time.Duration
	client.OnPacket = func(sim *Simulator, _ *Host, pkt packet.Packet) {
		deliveredAt = sim.Now()
	}
	sim.After(0, func() {
		server.Send(client.Addr(), 80, 4000, packet.TCP, packet.ACK, 1250)
	})
	sim.RunAll()
	want := WANDelay + LANDelay + 10*time.Millisecond
	if deliveredAt < want || deliveredAt > want+time.Millisecond {
		t.Errorf("delivered at %v, want ~%v", deliveredAt, want)
	}
	if st := net.LinkStats(); st.Transmitted != 1 || st.Bytes != 1250 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkTailDropsUnderOverload(t *testing.T) {
	sim, net, client, server := buildNet(t, nil)
	// Tiny link with a 50 ms queue bound: a burst must tail-drop.
	if err := net.SetInboundLink(1e5, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got := 0
	client.OnPacket = func(*Simulator, *Host, packet.Packet) { got++ }
	sim.After(0, func() {
		for i := 0; i < 100; i++ {
			server.Send(client.Addr(), 80, uint16(4000+i), packet.TCP, packet.ACK, 1250)
		}
	})
	sim.RunAll()
	st := net.LinkStats()
	if st.TailDropped == 0 {
		t.Fatal("no tail drops under overload")
	}
	if st.Transmitted+st.TailDropped != 100 {
		t.Errorf("transmitted %d + dropped %d != 100", st.Transmitted, st.TailDropped)
	}
	if got != int(st.Transmitted) {
		t.Errorf("delivered %d != transmitted %d", got, st.Transmitted)
	}
}

// The §1 story: with a filter at the ISP side, attack packets never reach
// the bottleneck, so benign traffic keeps its bandwidth.
func TestFilterProtectsBottleneck(t *testing.T) {
	run := func(filtered bool) (benign int, linkStats LinkStats) {
		var f filtering.PacketFilter
		if filtered {
			f = core.MustNew(
				core.WithOrder(14), core.WithVectors(4), core.WithHashes(3),
				core.WithRotateEvery(5*time.Second))
		}
		sim, net, client, server := buildNet(t, f)
		if err := net.SetInboundLink(2e5, 30*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		client.OnPacket = func(_ *Simulator, _ *Host, pkt packet.Packet) {
			// Count only the benign server replies, not delivered
			// attack packets.
			if pkt.Tuple.SrcPort == 80 {
				benign++
			}
		}

		// The client keeps a flow warm; the server replies; an attacker
		// floods.
		for i := 0; i < 50; i++ {
			i := i
			at := time.Duration(i) * 100 * time.Millisecond
			if err := sim.Schedule(at, func() {
				client.Send(server.Addr(), 4000, 80, packet.TCP, packet.ACK, 100)
			}); err != nil {
				t.Fatal(err)
			}
			if err := sim.Schedule(at+20*time.Millisecond, func() {
				// Attack burst grabs the link first; the benign
				// reply arrives right behind it.
				for j := 0; j < 40; j++ {
					atk := packet.Packet{
						Tuple: packet.Tuple{
							Src: packet.AddrFrom4(203, 0, 113, byte(j)), Dst: client.Addr(),
							SrcPort: uint16(1000 + j), DstPort: uint16(2000 + i), Proto: packet.TCP,
						},
						Flags: packet.SYN, Length: 1400,
					}
					net.InjectIncoming(atk)
				}
				reply := packet.Packet{
					Tuple: packet.Tuple{
						Src: server.Addr(), Dst: client.Addr(),
						SrcPort: 80, DstPort: 4000, Proto: packet.TCP,
					},
					Flags: packet.ACK, Length: 400,
				}
				net.InjectIncoming(reply)
			}); err != nil {
				t.Fatal(err)
			}
		}
		sim.RunAll()
		return benign, net.LinkStats()
	}

	benignOpen, statsOpen := run(false)
	benignFiltered, statsFiltered := run(true)

	if statsOpen.TailDropped == 0 {
		t.Fatal("unfiltered run did not congest the link")
	}
	if statsFiltered.TailDropped != 0 {
		t.Errorf("filtered run congested the link: %+v", statsFiltered)
	}
	if benignFiltered != 50 {
		t.Errorf("filtered benign deliveries = %d, want 50", benignFiltered)
	}
	if benignOpen >= benignFiltered {
		t.Errorf("benign goodput open=%d >= filtered=%d", benignOpen, benignFiltered)
	}
}
