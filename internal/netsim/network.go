package netsim

import (
	"errors"
	"fmt"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// Topology errors.
var (
	ErrAddrInUse   = errors.New("netsim: address already in use")
	ErrNotInSubnet = errors.New("netsim: address outside network subnets")
	ErrInSubnet    = errors.New("netsim: external address inside client subnets")
)

// Latencies of the simulated paths. Values are small and fixed; the
// experiments care about filtering decisions, not queueing dynamics.
const (
	// LANDelay is host ↔ edge router latency.
	LANDelay = 200 * time.Microsecond
	// WANDelay is edge router ↔ Internet host latency.
	WANDelay = 10 * time.Millisecond
)

// Host is an endpoint attached either inside a client network or out on
// the Internet. OnPacket, if set, runs on every delivered packet.
type Host struct {
	addr    packet.Addr
	name    string
	network *Network  // star-topology attachment (NewNetwork)
	topo    *Topology // tree-topology attachment (NewTopology)
	inside  bool

	// OnPacket handles packets delivered to this host.
	OnPacket func(sim *Simulator, self *Host, pkt packet.Packet)

	received uint64
}

// Addr returns the host address.
func (h *Host) Addr() packet.Addr { return h.addr }

// Name returns the host's display name.
func (h *Host) Name() string { return h.name }

// Inside reports whether the host sits inside the protected network.
func (h *Host) Inside() bool { return h.inside }

// Received returns the number of packets delivered to the host.
func (h *Host) Received() uint64 { return h.received }

// Send emits a packet from this host to dst. TCP flags and length describe
// the packet; the attachment (star network or router topology) stamps time
// and direction.
func (h *Host) Send(dst packet.Addr, srcPort, dstPort uint16, proto packet.Proto, flags packet.Flags, length int) {
	pkt := packet.Packet{
		Tuple: packet.Tuple{
			Src: h.addr, Dst: dst,
			SrcPort: srcPort, DstPort: dstPort,
			Proto: proto,
		},
		Flags:  flags,
		Length: length,
	}
	if h.topo != nil {
		pkt.Time = h.topo.sim.Now()
		h.topo.send(pkt)
		return
	}
	pkt.Time = h.network.sim.Now()
	h.network.route(pkt, h)
}

// EdgeStats counts the edge router's forwarding decisions.
type EdgeStats struct {
	OutForwarded uint64 // client → Internet packets forwarded
	InForwarded  uint64 // Internet → client packets admitted
	InDropped    uint64 // Internet → client packets dropped by the filter
	InNoRoute    uint64 // admitted packets with no attached host
}

// Network is one protected client network: a set of subnets behind an edge
// router, plus the Internet hosts it talks to. A filter, if installed,
// sits on the edge router exactly as in Figure 1.
type Network struct {
	sim     *Simulator
	subnets []packet.Prefix
	filter  filtering.PacketFilter // nil means unfiltered
	hosts   map[packet.Addr]*Host  // inside hosts
	remote  map[packet.Addr]*Host  // Internet hosts
	inbound *link                  // optional ISP→client bottleneck
	stats   EdgeStats
}

// NewNetwork builds a network over the given subnets. filter may be nil
// (an unprotected network).
func NewNetwork(sim *Simulator, subnets []packet.Prefix, filter filtering.PacketFilter) (*Network, error) {
	if sim == nil {
		return nil, errors.New("netsim: nil simulator")
	}
	if len(subnets) == 0 {
		return nil, errors.New("netsim: no subnets")
	}
	return &Network{
		sim:     sim,
		subnets: subnets,
		filter:  filter,
		hosts:   make(map[packet.Addr]*Host),
		remote:  make(map[packet.Addr]*Host),
	}, nil
}

// Filter returns the installed filter (nil if none).
func (n *Network) Filter() filtering.PacketFilter { return n.filter }

// Stats returns the edge router counters.
func (n *Network) Stats() EdgeStats { return n.stats }

// Contains reports whether addr belongs to the network's subnets.
func (n *Network) Contains(addr packet.Addr) bool {
	for _, s := range n.subnets {
		if s.Contains(addr) {
			return true
		}
	}
	return false
}

// AddHost attaches an inside host at addr.
func (n *Network) AddHost(name string, addr packet.Addr) (*Host, error) {
	if !n.Contains(addr) {
		return nil, fmt.Errorf("%w: %v", ErrNotInSubnet, addr)
	}
	if _, exists := n.hosts[addr]; exists {
		return nil, fmt.Errorf("%w: %v", ErrAddrInUse, addr)
	}
	h := &Host{addr: addr, name: name, network: n, inside: true}
	n.hosts[addr] = h
	return h, nil
}

// AddInternetHost attaches an external host at addr.
func (n *Network) AddInternetHost(name string, addr packet.Addr) (*Host, error) {
	if n.Contains(addr) {
		return nil, fmt.Errorf("%w: %v", ErrInSubnet, addr)
	}
	if _, exists := n.remote[addr]; exists {
		return nil, fmt.Errorf("%w: %v", ErrAddrInUse, addr)
	}
	h := &Host{addr: addr, name: name, network: n, inside: false}
	n.remote[addr] = h
	return h, nil
}

// InjectIncoming presents an externally generated packet (e.g. from an
// attack.Stream) at the edge router's upstream interface at the current
// simulation time. It returns the filter verdict.
func (n *Network) InjectIncoming(pkt packet.Packet) filtering.Verdict {
	pkt.Time = n.sim.Now()
	pkt.Dir = packet.Incoming
	return n.deliverIncoming(pkt)
}

// route classifies a packet sent by from and moves it through the
// topology.
func (n *Network) route(pkt packet.Packet, from *Host) {
	switch {
	case from.inside && n.Contains(pkt.Tuple.Dst):
		// Intra-network traffic never crosses the edge router; the
		// filter cannot see it (a §5.2 caveat the worm example
		// demonstrates).
		n.deliverLocal(pkt)
	case from.inside:
		pkt.Dir = packet.Outgoing
		if n.filter != nil {
			// Outgoing packets always pass; processing marks the
			// bitmap.
			n.filter.Process(pkt)
		}
		n.stats.OutForwarded++
		n.deliverRemote(pkt)
	default:
		pkt.Dir = packet.Incoming
		// WAN propagation happens before the edge router sees the
		// packet.
		n.sim.After(WANDelay, func() {
			p := pkt
			p.Time = n.sim.Now()
			n.deliverIncoming(p)
		})
	}
}

// deliverIncoming runs the filter and, on Pass, delivers to the inside
// host.
func (n *Network) deliverIncoming(pkt packet.Packet) filtering.Verdict {
	v := filtering.Pass
	if n.filter != nil {
		v = n.filter.Process(pkt)
	}
	if v == filtering.Drop {
		n.stats.InDropped++
		return v
	}
	n.stats.InForwarded++
	delay := LANDelay
	if n.inbound != nil {
		// The admitted packet still has to cross the bottleneck link.
		wire, ok := n.inbound.transmit(n.sim.Now(), pkt.Length)
		if !ok {
			return v // admitted by the filter but lost to congestion
		}
		delay += wire
	}
	dst, ok := n.hosts[pkt.Tuple.Dst]
	if !ok {
		n.stats.InNoRoute++
		return v
	}
	n.sim.After(delay, func() {
		p := pkt
		p.Time = n.sim.Now()
		dst.deliver(n.sim, p)
	})
	return v
}

// deliverLocal moves an intra-network packet host-to-host.
func (n *Network) deliverLocal(pkt packet.Packet) {
	dst, ok := n.hosts[pkt.Tuple.Dst]
	if !ok {
		return
	}
	n.sim.After(LANDelay, func() {
		p := pkt
		p.Time = n.sim.Now()
		dst.deliver(n.sim, p)
	})
}

// deliverRemote moves an outgoing packet to its Internet destination.
func (n *Network) deliverRemote(pkt packet.Packet) {
	dst, ok := n.remote[pkt.Tuple.Dst]
	if !ok {
		return
	}
	n.sim.After(WANDelay, func() {
		p := pkt
		p.Time = n.sim.Now()
		dst.deliver(n.sim, p)
	})
}

func (h *Host) deliver(sim *Simulator, pkt packet.Packet) {
	h.received++
	if h.OnPacket != nil {
		h.OnPacket(sim, h, pkt)
	}
}
