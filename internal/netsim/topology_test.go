package netsim

import (
	"errors"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/packet"
)

// figure1 builds the paper's Figure 1 shape: two edge routers under one
// core router, each edge with one /24 client network, plus an Internet
// host.
func figure1(t *testing.T) (*Simulator, *Topology, map[string]*RouterNode, map[string]*Host) {
	t.Helper()
	sim := NewSimulator()
	topo, err := NewTopology(sim)
	if err != nil {
		t.Fatal(err)
	}
	core1, err := topo.AddRouter(nil, "core")
	if err != nil {
		t.Fatal(err)
	}
	edgeA, err := topo.AddRouter(core1, "edgeA")
	if err != nil {
		t.Fatal(err)
	}
	edgeB, err := topo.AddRouter(core1, "edgeB")
	if err != nil {
		t.Fatal(err)
	}
	if err := edgeA.AttachSubnet(packet.PrefixFrom(packet.AddrFrom4(10, 10, 0, 0), 24)); err != nil {
		t.Fatal(err)
	}
	if err := edgeB.AttachSubnet(packet.PrefixFrom(packet.AddrFrom4(10, 10, 1, 0), 24)); err != nil {
		t.Fatal(err)
	}

	hosts := make(map[string]*Host)
	for _, spec := range []struct {
		name string
		addr packet.Addr
	}{
		{name: "a1", addr: packet.AddrFrom4(10, 10, 0, 5)},
		{name: "a2", addr: packet.AddrFrom4(10, 10, 0, 6)},
		{name: "b1", addr: packet.AddrFrom4(10, 10, 1, 5)},
		{name: "inet", addr: packet.AddrFrom4(198, 51, 100, 7)},
	} {
		h, err := topo.AddHost(spec.name, spec.addr)
		if err != nil {
			t.Fatal(err)
		}
		hosts[spec.name] = h
	}
	routers := map[string]*RouterNode{"core": core1, "edgeA": edgeA, "edgeB": edgeB}
	return sim, topo, routers, hosts
}

func topoFilter() *core.Filter {
	return core.MustNew(
		core.WithOrder(12), core.WithVectors(4), core.WithHashes(3),
		core.WithRotateEvery(5*time.Second))
}

func TestTopologyConstruction(t *testing.T) {
	sim := NewSimulator()
	if _, err := NewTopology(nil); err == nil {
		t.Error("nil simulator accepted")
	}
	topo, err := NewTopology(sim)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Internet().Name() != "internet" {
		t.Error("root name wrong")
	}
	r, err := topo.AddRouter(nil, "edge")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.AddRouter(nil, "edge"); !errors.Is(err, ErrDupRouter) {
		t.Errorf("duplicate router: %v", err)
	}
	if got, ok := topo.Router("edge"); !ok || got != r {
		t.Error("Router lookup failed")
	}
	if err := topo.Internet().AttachSubnet(packet.PrefixFrom(0, 8)); err == nil {
		t.Error("subnet attached to internet root")
	}
	if err := r.AttachSubnet(packet.PrefixFrom(packet.AddrFrom4(10, 0, 0, 0), 24)); err != nil {
		t.Fatal(err)
	}
	// Overlap in either direction is rejected.
	if err := r.AttachSubnet(packet.PrefixFrom(packet.AddrFrom4(10, 0, 0, 128), 25)); !errors.Is(err, ErrOverlapping) {
		t.Errorf("contained subnet: %v", err)
	}
	if err := r.AttachSubnet(packet.PrefixFrom(packet.AddrFrom4(10, 0, 0, 0), 16)); !errors.Is(err, ErrOverlapping) {
		t.Errorf("containing subnet: %v", err)
	}
	if _, err := topo.AddHost("h", packet.AddrFrom4(10, 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.AddHost("h2", packet.AddrFrom4(10, 0, 0, 1)); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("duplicate host: %v", err)
	}
}

func TestTopologyInternetRoundTrip(t *testing.T) {
	sim, _, routers, hosts := figure1(t)
	routers["edgeA"].SetFilter(core.NewSafe(topoFilter()))

	var serverGot, clientGot int
	hosts["inet"].OnPacket = func(sim *Simulator, self *Host, pkt packet.Packet) {
		serverGot++
		self.Send(pkt.Tuple.Src, pkt.Tuple.DstPort, pkt.Tuple.SrcPort, pkt.Tuple.Proto, packet.ACK, 100)
	}
	hosts["a1"].OnPacket = func(*Simulator, *Host, packet.Packet) { clientGot++ }

	sim.After(0, func() {
		hosts["a1"].Send(hosts["inet"].Addr(), 4000, 80, packet.TCP, packet.SYN, 60)
	})
	sim.RunAll()
	if serverGot != 1 || clientGot != 1 {
		t.Errorf("server=%d client=%d", serverGot, clientGot)
	}
	st := routers["edgeA"].Stats()
	if st.OutForwarded != 1 || st.InForwarded != 1 || st.InDropped != 0 {
		t.Errorf("edgeA stats = %+v", st)
	}
}

func TestTopologyUnsolicitedDroppedAtEdge(t *testing.T) {
	sim, topo, routers, hosts := figure1(t)
	routers["edgeA"].SetFilter(core.NewSafe(topoFilter()))
	got := 0
	hosts["a1"].OnPacket = func(*Simulator, *Host, packet.Packet) { got++ }
	topo.InjectFromInternet(packet.Packet{
		Tuple: packet.Tuple{
			Src: packet.AddrFrom4(203, 0, 113, 9), Dst: hosts["a1"].Addr(),
			SrcPort: 6666, DstPort: 445, Proto: packet.TCP,
		},
		Flags: packet.SYN, Length: 60,
	})
	sim.RunAll()
	if got != 0 {
		t.Error("unsolicited packet delivered through filtered edge")
	}
	if st := routers["edgeA"].Stats(); st.InDropped != 1 {
		t.Errorf("edgeA stats = %+v", st)
	}
}

func TestTopologySameSubnetBypassesEdgeFilter(t *testing.T) {
	// a1 → a2 share edgeA: the packet never crosses a filtered boundary
	// (the LCA's filter does not fire for traffic inside its subtree).
	sim, _, routers, hosts := figure1(t)
	f := core.NewSafe(topoFilter())
	routers["edgeA"].SetFilter(f)
	got := 0
	hosts["a2"].OnPacket = func(*Simulator, *Host, packet.Packet) { got++ }
	sim.After(0, func() {
		hosts["a1"].Send(hosts["a2"].Addr(), 1234, 445, packet.TCP, packet.SYN, 60)
	})
	sim.RunAll()
	if got != 1 {
		t.Errorf("intra-subnet delivery = %d", got)
	}
	if c := f.Counters(); c.OutPackets != 0 || c.InPackets != 0 {
		t.Errorf("edge filter saw intra-subnet traffic: %+v", c)
	}
}

func TestTopologySiblingNetworksCrossEdgeFilters(t *testing.T) {
	// a1 → b1 crosses edgeA (outgoing) and edgeB (incoming): with a
	// filter on edgeB, unsolicited cross-customer traffic is dropped —
	// then admitted once b1 initiates contact.
	sim, _, routers, hosts := figure1(t)
	fB := core.NewSafe(topoFilter())
	routers["edgeB"].SetFilter(fB)

	got := 0
	hosts["b1"].OnPacket = func(*Simulator, *Host, packet.Packet) { got++ }

	sim.After(0, func() {
		hosts["a1"].Send(hosts["b1"].Addr(), 4000, 445, packet.TCP, packet.SYN, 60)
	})
	sim.RunAll()
	if got != 0 {
		t.Fatal("unsolicited sibling traffic delivered")
	}
	if st := routers["edgeB"].Stats(); st.InDropped != 1 {
		t.Errorf("edgeB stats = %+v", st)
	}

	// b1 talks to a1 first; now a1's reply is admitted at edgeB.
	sim.After(time.Millisecond, func() {
		hosts["b1"].Send(hosts["a1"].Addr(), 5000, 80, packet.TCP, packet.SYN, 60)
	})
	sim.RunAll()
	sim.After(time.Millisecond, func() {
		hosts["a1"].Send(hosts["b1"].Addr(), 80, 5000, packet.TCP, packet.SYN|packet.ACK, 60)
	})
	sim.RunAll()
	if got != 1 {
		t.Errorf("reply across siblings delivered %d times, want 1", got)
	}
}

func TestTopologyCoreFilterProtectsAggregate(t *testing.T) {
	// One filter on the core router protects BOTH client networks (the
	// paper's "a core router, which is an aggregate of two or more
	// client networks").
	sim, topo, routers, hosts := figure1(t)
	fCore := core.NewSafe(topoFilter())
	routers["core"].SetFilter(fCore)

	gotA, gotB := 0, 0
	hosts["a1"].OnPacket = func(*Simulator, *Host, packet.Packet) { gotA++ }
	hosts["b1"].OnPacket = func(*Simulator, *Host, packet.Packet) { gotB++ }

	// Attack both networks from the Internet: both blocked by the one
	// core filter.
	for i, dst := range []packet.Addr{hosts["a1"].Addr(), hosts["b1"].Addr()} {
		topo.InjectFromInternet(packet.Packet{
			Tuple: packet.Tuple{
				Src: packet.AddrFrom4(203, 0, 113, byte(i+1)), Dst: dst,
				SrcPort: 6666, DstPort: 445, Proto: packet.TCP,
			},
			Flags: packet.SYN, Length: 60,
		})
	}
	sim.RunAll()
	if gotA != 0 || gotB != 0 {
		t.Errorf("core filter leaked: a=%d b=%d", gotA, gotB)
	}
	if st := routers["core"].Stats(); st.InDropped != 2 {
		t.Errorf("core stats = %+v", st)
	}

	// But sibling-to-sibling traffic does NOT cross the core filter
	// boundary (it stays inside the core's subtree) — the §3.1 trade-off
	// of aggregating placement.
	sim.After(time.Millisecond, func() {
		hosts["a1"].Send(hosts["b1"].Addr(), 4000, 445, packet.TCP, packet.SYN, 60)
	})
	sim.RunAll()
	if gotB != 1 {
		t.Errorf("sibling traffic through core placement = %d, want 1 (unfiltered)", gotB)
	}
}

func TestTopologyLatencyAccumulatesPerHop(t *testing.T) {
	sim, _, _, hosts := figure1(t)
	var deliveredAt time.Duration
	hosts["b1"].OnPacket = func(sim *Simulator, _ *Host, _ packet.Packet) {
		deliveredAt = sim.Now()
	}
	sim.After(0, func() {
		hosts["a1"].Send(hosts["b1"].Addr(), 1, 2, packet.TCP, packet.SYN, 60)
	})
	sim.RunAll()
	// a1 → edgeA → core → edgeB → b1: 2 LAN + 2 hops (edgeA and edgeB;
	// LCA=core contributes no hop beyond them... the path up is
	// edgeA, down is edgeB: 2 hops).
	want := 2*LANDelay + 2*HopDelay
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
}
