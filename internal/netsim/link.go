package netsim

import (
	"errors"
	"fmt"
	"time"
)

// Inbound bottleneck-link model. §1 of the paper motivates installing the
// filter at the ISP side because "the bottleneck bandwidth usually lies on
// the link between the client network and the ISP": attack traffic that is
// dropped at the ISP edge never consumes the bottleneck. The link is a
// simple serialization queue — each admitted packet occupies the wire for
// length·8/capacity seconds, and packets arriving when the queue backlog
// exceeds the configured limit are tail-dropped.

// ErrLinkConfig is returned for invalid link parameters.
var ErrLinkConfig = errors.New("netsim: invalid link configuration")

// LinkStats counts bottleneck-link activity.
type LinkStats struct {
	Transmitted uint64 // packets serialized onto the link
	TailDropped uint64 // packets dropped due to a full queue
	Bytes       uint64 // bytes transmitted
}

// link models the serialization queue.
type link struct {
	capacityBps float64       // bits per second
	maxBacklog  time.Duration // queueing delay bound
	nextFree    time.Duration // when the wire becomes idle
	stats       LinkStats
}

// SetInboundLink installs a bottleneck on the ISP→client direction with
// the given capacity (bits/second) and maximum queueing delay. Packets the
// filter admits still contend for this link; packets the filter drops
// never reach it.
func (n *Network) SetInboundLink(capacityBps float64, maxBacklog time.Duration) error {
	if capacityBps <= 0 {
		return fmt.Errorf("%w: capacity %v", ErrLinkConfig, capacityBps)
	}
	if maxBacklog <= 0 {
		return fmt.Errorf("%w: backlog %v", ErrLinkConfig, maxBacklog)
	}
	n.inbound = &link{capacityBps: capacityBps, maxBacklog: maxBacklog}
	return nil
}

// LinkStats returns the inbound bottleneck counters (zero value if no link
// is configured).
func (n *Network) LinkStats() LinkStats {
	if n.inbound == nil {
		return LinkStats{}
	}
	return n.inbound.stats
}

// transmit reserves wire time for one packet at time now. It returns the
// delivery delay and whether the packet was accepted (false = tail drop).
func (l *link) transmit(now time.Duration, lengthBytes int) (time.Duration, bool) {
	if l.nextFree < now {
		l.nextFree = now
	}
	backlog := l.nextFree - now
	if backlog > l.maxBacklog {
		l.stats.TailDropped++
		return 0, false
	}
	wire := time.Duration(float64(lengthBytes*8) / l.capacityBps * float64(time.Second))
	l.nextFree += wire
	l.stats.Transmitted++
	l.stats.Bytes += uint64(lengthBytes)
	return l.nextFree - now, true
}
