package netsim

import (
	"errors"
	"fmt"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// Topology models the full Figure 1 picture: an ISP as a tree of routers
// with the Internet at the root, client networks hanging off edge routers,
// and a bitmap filter installable on ANY router — "the bitmap filter can
// be installed at any location through which traffic from client networks
// must pass".
//
// A packet from one host to another follows the unique tree path between
// their attachment points. At every filtered router it crosses, the filter
// sees the packet with direction semantics relative to that router's
// subtree: leaving the subtree is Outgoing (marks), entering it is
// Incoming (checked). A filter on an edge router therefore protects one
// client network; the same filter moved to a core router protects the
// aggregate of everything beneath it, including traffic between sibling
// ISP customers.
type Topology struct {
	sim      *Simulator
	internet *RouterNode
	hosts    map[packet.Addr]*Host
	routers  map[string]*RouterNode
}

// HopDelay is the per-router-hop propagation latency inside the ISP.
const HopDelay = 2 * time.Millisecond

// Topology errors.
var (
	ErrDupRouter   = errors.New("netsim: router name already in use")
	ErrNoAttach    = errors.New("netsim: no attachment point for address")
	ErrOverlapping = errors.New("netsim: subnet overlaps an existing attachment")
)

// RouterNode is one router in the tree. The zero value is not usable;
// create routers through Topology.AddRouter.
type RouterNode struct {
	name     string
	topo     *Topology
	parent   *RouterNode // nil for the Internet root
	children []*RouterNode
	subnets  []packet.Prefix
	filter   filtering.PacketFilter
	stats    EdgeStats
}

// NewTopology returns a topology containing only the Internet root node.
func NewTopology(sim *Simulator) (*Topology, error) {
	if sim == nil {
		return nil, errors.New("netsim: nil simulator")
	}
	t := &Topology{
		sim:     sim,
		hosts:   make(map[packet.Addr]*Host),
		routers: make(map[string]*RouterNode),
	}
	t.internet = &RouterNode{name: "internet", topo: t}
	t.routers["internet"] = t.internet
	return t, nil
}

// Internet returns the root node, where Internet hosts attach.
func (t *Topology) Internet() *RouterNode { return t.internet }

// Router looks up a router by name (ok is false if absent).
func (t *Topology) Router(name string) (*RouterNode, bool) {
	r, ok := t.routers[name]
	return r, ok
}

// AddRouter creates a router under parent (the Internet root if nil).
func (t *Topology) AddRouter(parent *RouterNode, name string) (*RouterNode, error) {
	if _, exists := t.routers[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrDupRouter, name)
	}
	if parent == nil {
		parent = t.internet
	}
	r := &RouterNode{name: name, topo: t, parent: parent}
	parent.children = append(parent.children, r)
	t.routers[name] = r
	return r, nil
}

// Name returns the router name.
func (r *RouterNode) Name() string { return r.name }

// Stats returns the router's filtering counters.
func (r *RouterNode) Stats() EdgeStats { return r.stats }

// SetFilter installs (or removes, with nil) a filter on the router.
func (r *RouterNode) SetFilter(f filtering.PacketFilter) { r.filter = f }

// Filter returns the router's filter (nil if none).
func (r *RouterNode) Filter() filtering.PacketFilter { return r.filter }

// AttachSubnet declares that prefix is directly attached to this router.
func (r *RouterNode) AttachSubnet(prefix packet.Prefix) error {
	if r == r.topo.internet {
		return errors.New("netsim: cannot attach a client subnet to the internet root")
	}
	for _, other := range r.topo.routers {
		for _, s := range other.subnets {
			if s.Contains(prefix.Base) || prefix.Contains(s.Base) {
				return fmt.Errorf("%w: %v vs %v on %s", ErrOverlapping, prefix, s, other.name)
			}
		}
	}
	r.subnets = append(r.subnets, prefix)
	return nil
}

// AddHost attaches a host. Addresses inside an attached subnet land on
// that subnet's router; all other addresses are Internet hosts at the
// root.
func (t *Topology) AddHost(name string, addr packet.Addr) (*Host, error) {
	if _, exists := t.hosts[addr]; exists {
		return nil, fmt.Errorf("%w: %v", ErrAddrInUse, addr)
	}
	h := &Host{addr: addr, name: name, inside: t.edgeFor(addr) != t.internet}
	h.topo = t
	t.hosts[addr] = h
	return h, nil
}

// edgeFor returns the router an address attaches to (the Internet root if
// no attached subnet contains it).
func (t *Topology) edgeFor(addr packet.Addr) *RouterNode {
	for _, r := range t.routers {
		for _, s := range r.subnets {
			if s.Contains(addr) {
				return r
			}
		}
	}
	return t.internet
}

// inSubtree reports whether addr attaches at r or below it.
func (r *RouterNode) inSubtree(addr packet.Addr) bool {
	edge := r.topo.edgeFor(addr)
	for n := edge; n != nil; n = n.parent {
		if n == r {
			return true
		}
	}
	return false
}

// send routes one packet through the tree, applying filters along the
// path. Delivery (or a filter drop) is scheduled on the simulator.
func (t *Topology) send(pkt packet.Packet) {
	src := t.edgeFor(pkt.Tuple.Src)
	dst := t.edgeFor(pkt.Tuple.Dst)

	// Build the path src → LCA → dst.
	up := pathToRoot(src)
	down := pathToRoot(dst)
	lca := t.internet
	for len(up) > 0 && len(down) > 0 && up[len(up)-1] == down[len(down)-1] {
		lca = up[len(up)-1]
		up = up[:len(up)-1]
		down = down[:len(down)-1]
	}

	delay := 2 * LANDelay // host→edge plus edge→host
	hops := len(up) + len(down)
	if lca == t.internet {
		delay += WANDelay
	}
	delay += time.Duration(hops) * HopDelay

	// Filters on the upward leg see the packet leaving their subtree
	// (Outgoing); on the downward leg, entering (Incoming). The LCA's
	// own filter never triggers: the packet stays inside its subtree.
	for _, r := range up {
		if r == lca {
			break
		}
		r.stats.OutForwarded++
		if r.filter != nil {
			p := pkt
			p.Dir = packet.Outgoing
			r.filter.Process(p)
		}
	}
	for i := len(down) - 1; i >= 0; i-- {
		r := down[i]
		if r == lca {
			continue
		}
		p := pkt
		p.Dir = packet.Incoming
		if r.filter != nil {
			if r.filter.Process(p) == filtering.Drop {
				r.stats.InDropped++
				return
			}
		}
		r.stats.InForwarded++
	}

	dstHost, ok := t.hosts[pkt.Tuple.Dst]
	if !ok {
		return
	}
	t.sim.After(delay, func() {
		p := pkt
		p.Time = t.sim.Now()
		// Preserve the receiver-relative direction.
		if dstHost.inside {
			p.Dir = packet.Incoming
		} else {
			p.Dir = packet.Outgoing
		}
		dstHost.deliver(t.sim, p)
	})
}

// InjectFromInternet presents an attack packet at the Internet root and
// routes it toward its destination at the current simulation time.
func (t *Topology) InjectFromInternet(pkt packet.Packet) {
	pkt.Time = t.sim.Now()
	t.send(pkt)
}

func pathToRoot(r *RouterNode) []*RouterNode {
	var path []*RouterNode
	for n := r; n != nil; n = n.parent {
		path = append(path, n)
	}
	return path
}
