package netsim

import (
	"errors"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

func TestSimulatorOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	if err := s.Schedule(3*time.Second, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(time.Second, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(2*time.Second, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
	if s.Events() != 3 {
		t.Errorf("Events = %d", s.Events())
	}
}

func TestSimulatorFIFOAtSameTime(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := s.Schedule(time.Second, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	s := NewSimulator()
	if err := s.Schedule(time.Second, func() {}); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if err := s.Schedule(500*time.Millisecond, func() {}); !errors.Is(err, ErrPast) {
		t.Errorf("error = %v, want ErrPast", err)
	}
}

func TestAfterNegativeClamped(t *testing.T) {
	s := NewSimulator()
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.RunAll()
	if !ran {
		t.Error("After(-1s) event did not run")
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	s := NewSimulator()
	ran := 0
	for i := 1; i <= 5; i++ {
		i := i
		if err := s.Schedule(time.Duration(i)*time.Second, func() { ran = i }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(3 * time.Second)
	if ran != 3 {
		t.Errorf("ran through event %d, want 3", ran)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
	// Events scheduled at exactly `until` run; later ones remain.
	s.RunAll()
	if ran != 5 {
		t.Errorf("RunAll left events: %d", ran)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var times []time.Duration
	s.After(time.Second, func() {
		times = append(times, s.Now())
		s.After(time.Second, func() {
			times = append(times, s.Now())
		})
	})
	s.RunAll()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("times = %v", times)
	}
}

func testSubnets() []packet.Prefix {
	return []packet.Prefix{packet.PrefixFrom(packet.AddrFrom4(10, 10, 0, 0), 24)}
}

func smallFilter() *core.Filter {
	return core.MustNew(
		core.WithOrder(12), core.WithVectors(4), core.WithHashes(3),
		core.WithRotateEvery(5*time.Second),
	)
}

func buildNet(t *testing.T, filter filtering.PacketFilter) (*Simulator, *Network, *Host, *Host) {
	t.Helper()
	sim := NewSimulator()
	net, err := NewNetwork(sim, testSubnets(), filter)
	if err != nil {
		t.Fatal(err)
	}
	client, err := net.AddHost("client", packet.AddrFrom4(10, 10, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	server, err := net.AddInternetHost("server", packet.AddrFrom4(198, 51, 100, 7))
	if err != nil {
		t.Fatal(err)
	}
	return sim, net, client, server
}

func TestTopologyValidation(t *testing.T) {
	sim := NewSimulator()
	if _, err := NewNetwork(nil, testSubnets(), nil); err == nil {
		t.Error("nil simulator accepted")
	}
	if _, err := NewNetwork(sim, nil, nil); err == nil {
		t.Error("no subnets accepted")
	}
	net, err := NewNetwork(sim, testSubnets(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddHost("x", packet.AddrFrom4(192, 168, 1, 1)); !errors.Is(err, ErrNotInSubnet) {
		t.Errorf("outside host accepted: %v", err)
	}
	if _, err := net.AddHost("a", packet.AddrFrom4(10, 10, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddHost("b", packet.AddrFrom4(10, 10, 0, 1)); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("duplicate host accepted: %v", err)
	}
	if _, err := net.AddInternetHost("in", packet.AddrFrom4(10, 10, 0, 9)); !errors.Is(err, ErrInSubnet) {
		t.Errorf("internal address as internet host accepted: %v", err)
	}
	if _, err := net.AddInternetHost("s", packet.AddrFrom4(198, 51, 100, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddInternetHost("s2", packet.AddrFrom4(198, 51, 100, 1)); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("duplicate internet host accepted: %v", err)
	}
}

func TestRequestReplyThroughFilter(t *testing.T) {
	sim, net, client, server := buildNet(t, core.NewSafe(smallFilter()))

	var clientGot, serverGot []packet.Packet
	server.OnPacket = func(sim *Simulator, self *Host, pkt packet.Packet) {
		serverGot = append(serverGot, pkt)
		// Echo a reply back.
		self.Send(pkt.Tuple.Src, pkt.Tuple.DstPort, pkt.Tuple.SrcPort, pkt.Tuple.Proto, packet.ACK, 200)
	}
	client.OnPacket = func(sim *Simulator, self *Host, pkt packet.Packet) {
		clientGot = append(clientGot, pkt)
	}

	sim.After(0, func() {
		client.Send(server.Addr(), 4000, 80, packet.TCP, packet.SYN, 60)
	})
	sim.RunAll()

	if len(serverGot) != 1 {
		t.Fatalf("server received %d packets", len(serverGot))
	}
	if len(clientGot) != 1 {
		t.Fatalf("client received %d packets (reply filtered?)", len(clientGot))
	}
	st := net.Stats()
	if st.OutForwarded != 1 || st.InForwarded != 1 || st.InDropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if client.Received() != 1 || server.Received() != 1 {
		t.Error("receive counters wrong")
	}
}

func TestUnsolicitedBlockedByFilter(t *testing.T) {
	sim, net, client, server := buildNet(t, core.NewSafe(smallFilter()))
	got := 0
	client.OnPacket = func(*Simulator, *Host, packet.Packet) { got++ }

	sim.After(0, func() {
		server.Send(client.Addr(), 80, 4000, packet.TCP, packet.SYN, 60)
	})
	sim.RunAll()

	if got != 0 {
		t.Errorf("client received %d unsolicited packets", got)
	}
	if st := net.Stats(); st.InDropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnfilteredNetworkDeliversEverything(t *testing.T) {
	sim, net, client, server := buildNet(t, nil)
	got := 0
	client.OnPacket = func(*Simulator, *Host, packet.Packet) { got++ }
	sim.After(0, func() {
		server.Send(client.Addr(), 80, 4000, packet.TCP, packet.SYN, 60)
	})
	sim.RunAll()
	if got != 1 {
		t.Errorf("client received %d packets, want 1", got)
	}
	if st := net.Stats(); st.InForwarded != 1 || st.InDropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIntraNetworkTrafficBypassesFilter(t *testing.T) {
	f := core.NewSafe(smallFilter())
	sim, net, client, _ := buildNet(t, f)
	peer, err := net.AddHost("peer", packet.AddrFrom4(10, 10, 0, 6))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	peer.OnPacket = func(*Simulator, *Host, packet.Packet) { got++ }
	sim.After(0, func() {
		client.Send(peer.Addr(), 1234, 445, packet.TCP, packet.SYN, 60)
	})
	sim.RunAll()
	if got != 1 {
		t.Errorf("peer received %d packets", got)
	}
	// The filter never observed the local packet.
	if c := f.Counters(); c.OutPackets != 0 && c.InPackets != 0 {
		t.Errorf("filter saw intra-network traffic: %+v", c)
	}
	if st := net.Stats(); st.OutForwarded != 0 {
		t.Errorf("edge forwarded local traffic: %+v", st)
	}
}

func TestInjectIncoming(t *testing.T) {
	sim, net, client, _ := buildNet(t, core.NewSafe(smallFilter()))
	got := 0
	client.OnPacket = func(*Simulator, *Host, packet.Packet) { got++ }

	pkt := packet.Packet{
		Tuple: packet.Tuple{
			Src: packet.AddrFrom4(203, 0, 113, 5), Dst: client.Addr(),
			SrcPort: 6666, DstPort: 445, Proto: packet.TCP,
		},
		Flags: packet.SYN, Length: 60,
	}
	if v := net.InjectIncoming(pkt); v != filtering.Drop {
		t.Errorf("unsolicited injection verdict = %v", v)
	}
	// After the client talks to that host:port, injection passes.
	sim.After(time.Millisecond, func() {
		client.Send(packet.AddrFrom4(203, 0, 113, 5), 445, 6666, packet.TCP, packet.SYN, 60)
	})
	sim.Run(50 * time.Millisecond)
	pkt2 := pkt
	pkt2.Tuple.SrcPort = 9999 // any remote port matches the bitmap
	if v := net.InjectIncoming(pkt2); v != filtering.Pass {
		t.Errorf("reply injection verdict = %v", v)
	}
	sim.RunAll()
	if got != 1 {
		t.Errorf("client received %d injected packets", got)
	}
}

func TestInNoRouteCounted(t *testing.T) {
	sim, net, client, _ := buildNet(t, core.NewSafe(smallFilter()))
	// Client opens a flow to a host we never attached.
	ghost := packet.AddrFrom4(203, 0, 113, 77)
	sim.After(0, func() {
		client.Send(ghost, 4000, 80, packet.TCP, packet.SYN, 60)
	})
	sim.RunAll()
	// Reply arrives for a *different* inside address that has no host.
	reply := packet.Packet{
		Tuple: packet.Tuple{
			Src: ghost, Dst: packet.AddrFrom4(10, 10, 0, 200),
			SrcPort: 80, DstPort: 4000, Proto: packet.TCP,
		},
	}
	// It is unsolicited for that address, so it is dropped, not routed.
	if v := net.InjectIncoming(reply); v != filtering.Drop {
		t.Errorf("verdict = %v", v)
	}
	// Now a genuine reply to the client (host exists) and to a punched
	// address without a host.
	reply2 := packet.Packet{
		Tuple: packet.Tuple{
			Src: ghost, Dst: client.Addr(),
			SrcPort: 80, DstPort: 4000, Proto: packet.TCP,
		},
	}
	if v := net.InjectIncoming(reply2); v != filtering.Pass {
		t.Errorf("verdict = %v", v)
	}
	sim.RunAll()
	if st := net.Stats(); st.InNoRoute != 0 {
		t.Errorf("unexpected InNoRoute: %+v", st)
	}
}

func TestContains(t *testing.T) {
	_, net, _, _ := buildNet(t, nil)
	if !net.Contains(packet.AddrFrom4(10, 10, 0, 200)) {
		t.Error("member rejected")
	}
	if net.Contains(packet.AddrFrom4(10, 11, 0, 1)) {
		t.Error("outsider accepted")
	}
	if net.Filter() != nil {
		t.Error("Filter() not nil for unfiltered net")
	}
}
