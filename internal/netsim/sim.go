// Package netsim is a discrete-event network simulator implementing the
// paper's usage model (§3.1, Figure 1): client networks hang off edge
// routers of an ISP, and a bitmap filter (or any filtering.PacketFilter)
// can be installed at any point client traffic must pass — a single edge
// router or a core router aggregating several client networks.
//
// The simulator is deliberately packet-level and virtual-time: hosts
// exchange packets through their network's edge router, the router applies
// its filter with the correct direction semantics, and deliveries are
// scheduled on a global event queue. Everything is deterministic.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrPast is returned when scheduling an event before the current virtual
// time.
var ErrPast = errors.New("netsim: event scheduled in the past")

// Simulator owns the virtual clock and event queue. It is not safe for
// concurrent use; drive it from one goroutine.
type Simulator struct {
	now    time.Duration
	queue  simQueue
	seq    uint64
	events uint64
}

// NewSimulator returns an empty simulator at time zero.
func NewSimulator() *Simulator {
	s := &Simulator{}
	heap.Init(&s.queue)
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Events returns the number of events executed so far.
func (s *Simulator) Events() uint64 { return s.events }

// Schedule enqueues fn to run at virtual time at.
func (s *Simulator) Schedule(at time.Duration, fn func()) error {
	if at < s.now {
		return fmt.Errorf("%w: %v < %v", ErrPast, at, s.now)
	}
	s.seq++
	heap.Push(&s.queue, simEvent{at: at, seq: s.seq, fn: fn})
	return nil
}

// After enqueues fn to run after delay d from now.
func (s *Simulator) After(d time.Duration, fn func()) {
	// d is clamped to zero so callers can pass computed (possibly
	// negative-rounded) delays safely.
	if d < 0 {
		d = 0
	}
	// Scheduling relative to now can never be in the past.
	if err := s.Schedule(s.now+d, fn); err != nil {
		panic(err) // unreachable by construction
	}
}

// Step executes the next event; it reports false when the queue is empty.
func (s *Simulator) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(simEvent)
	s.now = ev.at
	s.events++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the next event is after
// until; the clock ends at max(now, until).
func (s *Simulator) Run(until time.Duration) {
	for s.queue.Len() > 0 && s.queue[0].at <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll executes every remaining event.
func (s *Simulator) RunAll() {
	for s.Step() {
	}
}

type simEvent struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type simQueue []simEvent

func (q simQueue) Len() int { return len(q) }

func (q simQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q simQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *simQueue) Push(x any) {
	ev, ok := x.(simEvent)
	if !ok {
		panic(fmt.Sprintf("simQueue: pushed %T", x))
	}
	*q = append(*q, ev)
}

func (q *simQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}
