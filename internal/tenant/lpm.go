package tenant

import (
	"fmt"

	"bitmapfilter/internal/packet"
)

// lpm is a longest-prefix-match table over IPv4 prefixes: a binary trie
// flattened into one node slice, walked bit by bit from the MSB. Each
// node optionally terminates a prefix (tenant >= 0); a lookup remembers
// the deepest terminal it passes, so overlapping prefixes resolve to the
// most specific tenant — a /24 carved out of a customer's /16 routes to
// the /24's filter.
//
// The table is built once (or rebuilt wholesale) and then read-only, so
// lookups need no synchronization of their own; the Set's RWMutex guards
// the swap.
type lpm struct {
	nodes []lpmNode
}

// lpmNode is one trie vertex. child[b] is the node index to follow for
// bit b, or -1; tenant is the tenant index terminating here, or -1.
type lpmNode struct {
	child  [2]int32
	tenant int32
}

// newLPM builds the trie for prefixes[i] -> tenant i. Duplicate prefixes
// are rejected (two tenants cannot own the same subnet).
func newLPM(prefixes []packet.Prefix) (lpm, error) {
	t := lpm{nodes: make([]lpmNode, 1, 2*len(prefixes)+1)}
	t.nodes[0] = lpmNode{child: [2]int32{-1, -1}, tenant: -1}
	for i, p := range prefixes {
		n := int32(0)
		for depth := uint8(0); depth < p.Bits; depth++ {
			b := (uint32(p.Base) >> (31 - depth)) & 1
			next := t.nodes[n].child[b]
			if next < 0 {
				next = int32(len(t.nodes))
				t.nodes = append(t.nodes, lpmNode{child: [2]int32{-1, -1}, tenant: -1})
				t.nodes[n].child[b] = next
			}
			n = next
		}
		if t.nodes[n].tenant >= 0 {
			return lpm{}, fmt.Errorf("%w: duplicate prefix %v", ErrConfig, p)
		}
		t.nodes[n].tenant = int32(i)
	}
	return t, nil
}

// lookup returns the tenant index of the longest prefix containing a, or
// -1 if no configured prefix covers it.
//
//bf:hotpath
func (t *lpm) lookup(a packet.Addr) int32 {
	best := int32(-1)
	n := int32(0)
	for depth := 0; depth < 32; depth++ {
		node := &t.nodes[n]
		if node.tenant >= 0 {
			best = node.tenant
		}
		b := (uint32(a) >> (31 - depth)) & 1
		n = node.child[b]
		if n < 0 {
			return best
		}
	}
	if tn := t.nodes[n].tenant; tn >= 0 {
		best = tn
	}
	return best
}
