package tenant_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/tenant"
)

// coinPolicy is a stateless fixed-probability APD policy: with 0 < p < 1
// every unmatched incoming packet draws from the filter's seeded coin
// RNG, so verdict equality across drivers proves the coin streams stay
// in sync packet for packet.
type coinPolicy struct{ p float64 }

func (coinPolicy) Observe(packet.Packet)                   {}
func (c coinPolicy) DropProbability(time.Duration) float64 { return c.p }
func (coinPolicy) Name() string                            { return "coin" }
func (c coinPolicy) ClonePolicy() core.DropPolicy          { return c }

// fleetSpec is the differential fixture: a heterogeneous fleet covering
// every flavor (plain, sharded, safe, APD) and an overlapping prefix
// pair so longest-prefix routing is load-bearing, not just exercised.
func fleetSpec() []tenant.Config {
	cfg := []tenant.Config{
		{ID: "t0", Prefix: packet.PrefixFrom(packet.AddrFrom4(10, 0, 0, 0), 16),
			Options: []core.Option{core.WithOrder(12), core.WithSeed(101)}},
		// t1 is a /17 carved out of t0's /16: addresses 10.0.128.0-10.0.255.255
		// must route here, not to t0.
		{ID: "t1", Prefix: packet.PrefixFrom(packet.AddrFrom4(10, 0, 128, 0), 17),
			Options: []core.Option{core.WithOrder(11), core.WithSeed(102)}},
		{ID: "t2", Prefix: packet.PrefixFrom(packet.AddrFrom4(10, 2, 0, 0), 16),
			Options: []core.Option{core.WithOrder(12), core.WithSeed(103), core.WithShards(4)}},
		{ID: "t3", Prefix: packet.PrefixFrom(packet.AddrFrom4(10, 3, 0, 0), 16),
			Options: []core.Option{core.WithOrder(11), core.WithSeed(104), core.WithConcurrencySafe()}},
		{ID: "t4", Prefix: packet.PrefixFrom(packet.AddrFrom4(10, 4, 0, 0), 16),
			Options: []core.Option{core.WithOrder(12), core.WithSeed(105), core.WithAPD(coinPolicy{p: 0.5})}},
		{ID: "t5", Prefix: packet.PrefixFrom(packet.AddrFrom4(10, 5, 0, 0), 16),
			Options: []core.Option{core.WithOrder(10), core.WithSeed(106), core.WithVectors(3), core.WithRotateEvery(2 * time.Second)}},
	}
	return cfg
}

// routeRef is the test's own longest-prefix match, written independently
// of the trie: scan all prefixes, keep the longest containing the
// client-side address.
func routeRef(cfgs []tenant.Config, pkt packet.Packet) int {
	addr := pkt.Tuple.Src
	if pkt.Dir == packet.Incoming {
		addr = pkt.Tuple.Dst
	}
	best, bestBits := -1, -1
	for i, c := range cfgs {
		if c.Prefix.Contains(addr) && int(c.Prefix.Bits) > bestBits {
			best, bestBits = i, int(c.Prefix.Bits)
		}
	}
	return best
}

// fleetTrace builds a deterministic mixed trace spread across the fleet's
// prefixes plus unrouted addresses: outgoing flow-openers, genuine
// replies, and random scans, with timestamps crossing several rotations.
func fleetTrace(n int, cfgs []tenant.Config) []packet.Packet {
	rng := uint64(0x2545f4914f6cdd1d)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	pkts := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		t := time.Duration(i) * 50 * time.Microsecond
		r := next()
		var client packet.Addr
		// Tenant, unrouted and kind selectors draw from disjoint bit
		// ranges of r: sharing low bits would correlate them (r%6 fixes
		// r%3) and starve tenants of whole packet kinds.
		if (r>>9)%16 == 0 {
			// Unrouted: an address no tenant prefix covers.
			client = packet.AddrFrom4(192, 168, byte(r>>8), byte(r))
		} else {
			c := cfgs[(r>>20)%uint64(len(cfgs))]
			client = c.Prefix.Nth((r >> 28) % c.Prefix.Size())
		}
		remote := packet.AddrFrom4(198, 51, byte(r>>24), byte(r>>16))
		tup := packet.Tuple{
			Src: client, SrcPort: uint16(r>>32)%2048 + 1024,
			Dst: remote, DstPort: 443, Proto: packet.TCP,
		}
		switch r % 3 {
		case 0:
			pkts = append(pkts, packet.Packet{Time: t, Tuple: tup, Dir: packet.Outgoing, Length: 120})
		case 1:
			pkts = append(pkts, packet.Packet{Time: t, Tuple: tup.Reverse(), Dir: packet.Incoming, Length: 120})
		default:
			scan := packet.Tuple{
				Src: remote, SrcPort: 53,
				Dst: client, DstPort: uint16(r >> 40), Proto: packet.TCP,
			}
			pkts = append(pkts, packet.Packet{Time: t, Tuple: scan, Dir: packet.Incoming, Length: 60})
		}
	}
	return pkts
}

func mustSet(t *testing.T, cfg tenant.SetConfig) *tenant.Set {
	t.Helper()
	s, err := tenant.NewSet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSetDifferential is the tentpole proof: a Set over N heterogeneous
// tenants is verdict- and stats-identical to N independently driven
// filters over a 1M-packet mixed-prefix trace. Tenant t4 runs APD with
// p=0.5, so equality also pins the per-tenant coin-flip order; batch
// dispatch on the Set side vs per-packet on the reference side pins the
// grouping's order preservation.
func TestSetDifferential(t *testing.T) {
	cfgs := fleetSpec()
	set := mustSet(t, tenant.SetConfig{Tenants: cfgs})

	refs := make([]filtering.BatchFilter, len(cfgs))
	for i, c := range cfgs {
		f, err := core.Build(c.Options...)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = f
	}

	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	pkts := fleetTrace(n, cfgs)

	want := make([]filtering.Verdict, len(pkts))
	var wantUnrouted uint64
	for i, p := range pkts {
		if slot := routeRef(cfgs, p); slot >= 0 {
			want[i] = refs[slot].Process(p)
		} else {
			want[i] = filtering.Pass
			wantUnrouted++
		}
	}

	var got, buf []filtering.Verdict
	for off := 0; off < len(pkts); off += 4096 {
		end := min(off+4096, len(pkts))
		buf = set.ProcessBatchInto(pkts[off:end], buf)
		got = append(got, buf...)
	}

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d: set %v, independent %v (pkt %+v)", i, got[i], want[i], pkts[i])
		}
	}
	if set.UnroutedPackets() != wantUnrouted {
		t.Errorf("UnroutedPackets = %d, want %d", set.UnroutedPackets(), wantUnrouted)
	}
	if wantUnrouted == 0 {
		t.Error("trace exercised no unrouted packets; test is vacuous")
	}

	stats := set.TenantStats()
	var total filtering.Counters
	for i, st := range stats {
		if st.ID != cfgs[i].ID || st.Prefix != cfgs[i].Prefix {
			t.Fatalf("tenant %d identity = %q %v", i, st.ID, st.Prefix)
		}
		ref := refs[i].Counters()
		if st.Stats.Counters != ref {
			t.Errorf("tenant %q counters = %+v, independent %+v", st.ID, st.Stats.Counters, ref)
		}
		if ref.InPackets == 0 || ref.OutPackets == 0 {
			t.Errorf("tenant %q starved: %+v (trace bug)", st.ID, ref)
		}
		total.OutPackets += ref.OutPackets
		total.InPackets += ref.InPackets
		total.InPassed += ref.InPassed
		total.InDropped += ref.InDropped
	}
	want4 := stats[4]
	if !want4.Stats.APDEnabled || want4.Stats.APDSpared == 0 {
		t.Errorf("tenant t4 APD not exercised: %+v", want4.Stats)
	}

	// Aggregate counters: tenant sums plus the unrouted split.
	gotTotal := set.Counters()
	var unroutedOut, unroutedIn uint64
	for _, p := range pkts {
		if routeRef(cfgs, p) < 0 {
			if p.Dir == packet.Outgoing {
				unroutedOut++
			} else {
				unroutedIn++
			}
		}
	}
	exp := total
	exp.OutPackets += unroutedOut
	exp.InPackets += unroutedIn
	exp.InPassed += unroutedIn
	if gotTotal != exp {
		t.Errorf("Set.Counters = %+v, want %+v", gotTotal, exp)
	}
}

// TestSetLookupAndPunchHole pins LPM specifics: longest match wins on
// the overlapping /16-/17 pair, and PunchHole lands in the owning tenant
// (no-op when unrouted).
func TestSetLookupAndPunchHole(t *testing.T) {
	cfgs := fleetSpec()
	set := mustSet(t, tenant.SetConfig{Tenants: cfgs})

	cases := []struct {
		addr packet.Addr
		want string
	}{
		{packet.AddrFrom4(10, 0, 1, 1), "t0"},
		{packet.AddrFrom4(10, 0, 127, 255), "t0"},
		{packet.AddrFrom4(10, 0, 128, 0), "t1"},
		{packet.AddrFrom4(10, 0, 255, 255), "t1"},
		{packet.AddrFrom4(10, 2, 9, 9), "t2"},
		{packet.AddrFrom4(9, 255, 255, 255), ""},
		{packet.AddrFrom4(10, 6, 0, 0), ""},
	}
	for _, c := range cases {
		if got := set.Lookup(c.addr); got != c.want {
			t.Errorf("Lookup(%v) = %q, want %q", c.addr, got, c.want)
		}
	}

	// A hole punched for a t1 address admits the inbound packet there.
	local := packet.AddrFrom4(10, 0, 200, 7)
	remote := packet.AddrFrom4(203, 0, 113, 5)
	set.PunchHole(local, 8080, remote, packet.TCP)
	in := packet.Packet{
		Time:  time.Millisecond,
		Tuple: packet.Tuple{Src: remote, SrcPort: 31337, Dst: local, DstPort: 8080, Proto: packet.TCP},
		Dir:   packet.Incoming, Length: 60,
	}
	if v := set.Process(in); v != filtering.Pass {
		t.Errorf("punched hole did not admit: %v", v)
	}
	if set.TenantStats()[1].Stats.Counters.InPassed == 0 {
		t.Error("hole admitted but not in tenant t1")
	}
	// Unrouted address: must not panic, packet still passes (unfiltered).
	set.PunchHole(packet.AddrFrom4(172, 16, 0, 1), 80, remote, packet.TCP)
}

// TestSetRejectsBadConfig pins the constructor's validation surface.
func TestSetRejectsBadConfig(t *testing.T) {
	base := packet.PrefixFrom(packet.AddrFrom4(10, 0, 0, 0), 16)
	cases := map[string]tenant.SetConfig{
		"no tenants": {},
		"empty id": {Tenants: []tenant.Config{
			{ID: "", Prefix: base}}},
		"duplicate id": {Tenants: []tenant.Config{
			{ID: "a", Prefix: base},
			{ID: "a", Prefix: packet.PrefixFrom(packet.AddrFrom4(10, 1, 0, 0), 16)}}},
		"duplicate prefix": {Tenants: []tenant.Config{
			{ID: "a", Prefix: base},
			{ID: "b", Prefix: base}}},
		"live option": {Tenants: []tenant.Config{
			{ID: "a", Prefix: base, Options: []core.Option{core.WithLiveClock(nil)}}}},
		"bad filter option": {Tenants: []tenant.Config{
			{ID: "a", Prefix: base, Options: []core.Option{core.WithOrder(99)}}}},
		"bad budget": {
			Tenants: []tenant.Config{{ID: "a", Prefix: base}},
			Budget:  &tenant.Budget{TotalBytes: 0, TargetPenetration: 0.01}},
	}
	for name, cfg := range cases {
		if _, err := tenant.NewSet(cfg); err == nil {
			t.Errorf("%s: NewSet accepted", name)
		}
	}
}

// TestSetSnapshotRoundTrip proves the fleet persists atomically: write →
// read → write is byte-identical, every tenant's bitmap state and
// identity survives, and corruption anywhere is detected.
func TestSetSnapshotRoundTrip(t *testing.T) {
	cfgs := fleetSpec()
	// Geometry, seeds and bitmap state all serialize; only policy
	// attachments need replaying, keyed by tenant id.
	extra := func(id string) []core.Option {
		if id == "t4" {
			return []core.Option{core.WithAPD(coinPolicy{p: 0.5})}
		}
		return nil
	}
	set := mustSet(t, tenant.SetConfig{Tenants: cfgs})
	pkts := fleetTrace(200_000, cfgs)
	set.ProcessBatch(pkts)

	var snap1 bytes.Buffer
	if err := set.WriteSnapshot(&snap1); err != nil {
		t.Fatal(err)
	}
	restored, err := tenant.ReadSnapshot(bytes.NewReader(snap1.Bytes()), extra)
	if err != nil {
		t.Fatal(err)
	}
	var snap2 bytes.Buffer
	if err := restored.WriteSnapshot(&snap2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1.Bytes(), snap2.Bytes()) {
		t.Fatal("write→read→write is not byte-identical")
	}
	if restored.UnroutedPackets() != set.UnroutedPackets() {
		t.Errorf("unrouted counters: %d vs %d", restored.UnroutedPackets(), set.UnroutedPackets())
	}
	a, b := set.TenantStats(), restored.TenantStats()
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Prefix != b[i].Prefix || a[i].Stats.Counters != b[i].Stats.Counters ||
			a[i].Stats.Marks != b[i].Stats.Marks || a[i].Stats.Order != b[i].Stats.Order {
			t.Errorf("tenant %d diverged after restore:\n%+v\n%+v", i, a[i], b[i])
		}
	}

	// Two restores of the same snapshot must behave identically going
	// forward: restore is complete and deterministic. (The original set
	// is not a valid forward reference for APD tenants — the coin RNG
	// restarts from its seed on restore, by the same rule as the core
	// format.)
	restored2, err := tenant.ReadSnapshot(bytes.NewReader(snap1.Bytes()), extra)
	if err != nil {
		t.Fatal(err)
	}
	more := fleetTrace(50_000, cfgs)
	for i := range more {
		more[i].Time += pkts[len(pkts)-1].Time
	}
	v1 := restored.ProcessBatch(more)
	v2 := restored2.ProcessBatch(more)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("verdict %d diverged between two restores", i)
		}
	}

	// Corruption anywhere — header, section header, id, inner snapshot,
	// inner CRC — must be detected, and truncation must never panic.
	data := snap1.Bytes()
	for _, off := range []int{2, 9, 24, 40, 80, 130, len(data) / 2, len(data) - 3} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, err := tenant.ReadSnapshot(bytes.NewReader(bad), extra); err == nil {
			t.Errorf("corruption at offset %d undetected", off)
		}
	}
	for _, cut := range []int{0, 5, 19, 37, 100, len(data) - 1} {
		if _, err := tenant.ReadSnapshot(bytes.NewReader(data[:cut]), extra); err == nil {
			t.Errorf("truncation at %d undetected", cut)
		}
	}
	if _, err := tenant.ReadSnapshot(bytes.NewReader(append(append([]byte(nil), data...), 0)), extra); err == nil {
		t.Error("trailing byte undetected")
	}
}

// TestSetConcurrentDispatch races many batch pumps against rotations,
// stats scrapes and rebalances; run under -race this is the concurrency
// proof for the read-locked dispatch path. Every tenant uses a
// goroutine-safe flavor (safe or sharded), as the Set's contract
// requires for concurrent use.
func TestSetConcurrentDispatch(t *testing.T) {
	cfgs := []tenant.Config{
		{ID: "a", Prefix: packet.PrefixFrom(packet.AddrFrom4(10, 0, 0, 0), 16),
			Options: []core.Option{core.WithOrder(11), core.WithSeed(1), core.WithConcurrencySafe()}},
		{ID: "b", Prefix: packet.PrefixFrom(packet.AddrFrom4(10, 1, 0, 0), 16),
			Options: []core.Option{core.WithOrder(11), core.WithSeed(2), core.WithShards(2)}},
		{ID: "c", Prefix: packet.PrefixFrom(packet.AddrFrom4(10, 2, 0, 0), 16),
			Options: []core.Option{core.WithOrder(10), core.WithSeed(3), core.WithConcurrencySafe()}},
	}
	set := mustSet(t, tenant.SetConfig{
		Tenants: cfgs,
		Budget:  &tenant.Budget{TotalBytes: 1 << 20, TargetPenetration: 0.01},
	})
	pkts := fleetTrace(40_000, cfgs)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []filtering.Verdict
			for off := 0; off < len(pkts); off += 1024 {
				end := min(off+1024, len(pkts))
				buf = set.ProcessBatchInto(pkts[off:end], buf)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			set.TenantStats()
			set.Counters()
			set.Stats()
			set.AdvanceTo(time.Duration(i) * 100 * time.Millisecond)
			if i%10 == 9 {
				if _, err := set.Rebalance(time.Duration(i) * 100 * time.Millisecond); err != nil {
					t.Error(err)
				}
			}
		}
	}()
	wg.Wait()

	// All packets from all pumps must be accounted for.
	c := set.Counters()
	if got := c.OutPackets + c.InPackets; got != uint64(4*len(pkts)) {
		t.Errorf("counters lost packets: %d, want %d", got, 4*len(pkts))
	}
}

// TestSetEmptyBatchContract pins the BatchFilter empty-batch behavior.
func TestSetEmptyBatchContract(t *testing.T) {
	set := mustSet(t, tenant.SetConfig{Tenants: fleetSpec()})
	if got := set.ProcessBatch(nil); got != nil {
		t.Errorf("ProcessBatch(nil) = %v", got)
	}
	buf := make([]filtering.Verdict, 5, 9)
	if got := set.ProcessBatchInto(nil, buf); len(got) != 0 || cap(got) != cap(buf) {
		t.Errorf("ProcessBatchInto(nil, buf): len %d cap %d, want 0 %d", len(got), cap(got), cap(buf))
	}
}

// BenchmarkSetDispatch measures routing overhead vs a single filter and
// proves the steady-state dispatch allocates nothing.
func BenchmarkSetDispatch(b *testing.B) {
	const tenants = 64
	cfgs := make([]tenant.Config, tenants)
	for i := range cfgs {
		cfgs[i] = tenant.Config{
			ID:      "t" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			Prefix:  packet.PrefixFrom(packet.AddrFrom4(10, byte(i), 0, 0), 16),
			Options: []core.Option{core.WithOrder(14), core.WithSeed(uint64(i + 1))},
		}
	}
	set, err := tenant.NewSet(tenant.SetConfig{Tenants: cfgs})
	if err != nil {
		b.Fatal(err)
	}
	pkts := fleetTrace(4096, cfgs)
	out := make([]filtering.Verdict, len(pkts))
	set.ProcessBatchInto(pkts, out) // warm the scratch pool

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.ProcessBatchInto(pkts, out)
	}
}
