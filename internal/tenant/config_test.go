package tenant_test

import (
	"errors"
	"testing"
	"time"

	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/tenant"
)

func TestParseConfig(t *testing.T) {
	data := []byte(`{
		"budgetBytes": 1048576,
		"targetPenetration": 0.02,
		"minFlows": 128,
		"tenants": [
			{"id": "cust-a", "prefix": "10.1.0.0/16", "order": 14, "seed": 42},
			{"id": "cust-b", "prefix": "10.2.0.0/16", "shards": 4, "rotate": "2s"},
			{"id": "cust-c", "prefix": "10.2.128.0/17", "safe": true, "vectors": 5, "hashes": 2}
		]
	}`)
	cfg, err := tenant.ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tenants) != 3 {
		t.Fatalf("tenants = %d", len(cfg.Tenants))
	}
	if cfg.Budget == nil || cfg.Budget.TotalBytes != 1<<20 || cfg.Budget.TargetPenetration != 0.02 || cfg.Budget.MinFlows != 128 {
		t.Fatalf("budget = %+v", cfg.Budget)
	}
	if want := packet.PrefixFrom(packet.AddrFrom4(10, 2, 128, 0), 17); cfg.Tenants[2].Prefix != want {
		t.Errorf("prefix = %v, want %v", cfg.Tenants[2].Prefix, want)
	}

	// The parsed config must build a working set with the declared
	// flavors and geometry.
	set, err := tenant.NewSet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := set.TenantStats()
	if stats[0].Stats.Order != 14 {
		t.Errorf("cust-a order = %d", stats[0].Stats.Order)
	}
	if stats[1].Stats.RotateEvery != 2*time.Second {
		t.Errorf("cust-b rotate = %v", stats[1].Stats.RotateEvery)
	}
	if stats[2].Stats.Vectors != 5 || stats[2].Stats.Hashes != 2 {
		t.Errorf("cust-c geometry = %dx m=%d", stats[2].Stats.Vectors, stats[2].Stats.Hashes)
	}
	if set.Lookup(packet.AddrFrom4(10, 2, 200, 1)) != "cust-c" {
		t.Error("overlapping /17 did not win")
	}
}

func TestParseConfigNoBudget(t *testing.T) {
	cfg, err := tenant.ParseConfig([]byte(`{"tenants": [{"id": "a", "prefix": "10.0.0.0/8"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Budget != nil {
		t.Errorf("budget = %+v, want nil", cfg.Budget)
	}
}

func TestParseConfigRejects(t *testing.T) {
	cases := map[string]string{
		"empty":             ``,
		"not json":          `tenants:`,
		"no tenants":        `{}`,
		"empty tenants":     `{"tenants": []}`,
		"unknown field":     `{"tenants": [{"id": "a", "prefix": "10.0.0.0/8", "oder": 14}]}`,
		"bad prefix":        `{"tenants": [{"id": "a", "prefix": "10.0.0.0"}]}`,
		"host bits":         `{"tenants": [{"id": "a", "prefix": "10.0.0.1/8"}]}`,
		"bad duration":      `{"tenants": [{"id": "a", "prefix": "10.0.0.0/8", "rotate": "fast"}]}`,
		"trailing data":     `{"tenants": [{"id": "a", "prefix": "10.0.0.0/8"}]} extra`,
		"budget no target":  `{"budgetBytes": 10, "targetPenetration": 7, "tenants": [{"id": "a", "prefix": "10.0.0.0/8"}]}`,
		"minflows negative": `{"minFlows": -1, "budgetBytes": 10, "tenants": [{"id": "a", "prefix": "10.0.0.0/8"}]}`,
	}
	for name, data := range cases {
		if _, err := tenant.ParseConfig([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, tenant.ErrConfig) {
			t.Errorf("%s: error %v is not ErrConfig", name, err)
		}
	}
}

// FuzzParseConfig asserts the parser never panics and that any config it
// accepts either builds a working Set or is rejected by NewSet with a
// clean error — no partial construction, no panic.
func FuzzParseConfig(f *testing.F) {
	f.Add([]byte(`{"tenants": [{"id": "a", "prefix": "10.0.0.0/8"}]}`))
	f.Add([]byte(`{"budgetBytes": 4096, "targetPenetration": 0.5, "tenants": [{"id": "x", "prefix": "0.0.0.0/0", "order": 10, "shards": 2}]}`))
	f.Add([]byte(`{"tenants": [{"id": "a", "prefix": "10.0.0.0/8", "rotate": "3s", "safe": true}]}`))
	f.Add([]byte(`{"tenants":[{"id":"a","prefix":"255.255.255.255/32","vectors":2,"hashes":1,"seed":9}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := tenant.ParseConfig(data)
		if err != nil {
			return
		}
		set, err := tenant.NewSet(cfg)
		if err != nil {
			return
		}
		// A constructed set must actually dispatch.
		set.Process(packet.Packet{
			Time:  time.Millisecond,
			Tuple: packet.Tuple{Src: 1, SrcPort: 2, Dst: 3, DstPort: 4, Proto: packet.TCP},
			Dir:   packet.Outgoing, Length: 40,
		})
	})
}
