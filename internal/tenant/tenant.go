// Package tenant is the multi-tenant data plane: one Set routes every
// packet to the per-subnet bitmap filter owning it, so an ISP edge
// protects thousands of client networks behind a single BatchFilter.
//
// The paper deploys one filter per client network (§3.2); Set scales the
// deployment out. Each tenant is a {prefix, filter} pair — the filter
// built from an ordinary option bundle, so a tenant can be a bare
// Filter, a Safe, or a Sharded composite. Routing is by the longest
// matching prefix of the packet's client-side address (the source of an
// outgoing packet, the destination of an incoming one — the same §3.3
// symmetry the filter keys on), so a flow's outgoing marks and its
// replies always meet in the same tenant filter. Packets no configured
// prefix covers are passed through unfiltered and counted.
//
// Batches are dispatched with one grouped sub-batch per touched tenant
// (stable counting sort, pooled scratch, zero steady-state allocations),
// exactly the pattern the sharded composite uses internally — the Set is
// to tenants what Sharded is to shards, except tenants are heterogeneous
// and externally meaningful.
//
// A Set optionally carries a Budget (see budget.go): a global memory
// pool carved into per-tenant {order, hashes} plans from each tenant's
// observed flow count, shrinking idle tenants and growing hot ones at
// rotation boundaries.
package tenant

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// ErrConfig is returned for invalid tenant-set configurations.
var ErrConfig = errors.New("tenant: invalid tenant set configuration")

// maxTenants bounds the fleet size (and the snapshot section count).
const maxTenants = 1 << 16

// maxIDLen bounds tenant identifiers (they ride in snapshot headers and
// metric labels).
const maxIDLen = 256

// Config describes one tenant: its identifier (stable across restarts —
// it keys snapshot sections and metric labels), the client prefix it
// owns, and the filter option bundle to build for it. The bundle is the
// same one core.Build/the root Build accept — WithShards and
// WithConcurrencySafe compose per-tenant flavors — except WithLiveClock,
// which is rejected: tenants run on the Set's shared virtual time.
type Config struct {
	ID      string
	Prefix  packet.Prefix
	Options []core.Option
}

// SetConfig configures NewSet.
type SetConfig struct {
	Tenants []Config
	// Budget optionally attaches the shared-memory auto-tuner; see
	// Budget. Nil means every tenant keeps its configured geometry.
	Budget *Budget
}

// tenantState is one tenant's runtime slot. The filter pointer is
// swapped by Rebalance (under the Set's write lock); everything else is
// fixed at construction.
type tenantState struct {
	id     string
	prefix packet.Prefix
	// opts is the tenant's base option bundle, replayed (with geometry
	// overrides appended) when Rebalance rebuilds the filter.
	opts   []core.Option
	safe   bool // flavor: Safe-wrapped single filter
	shards int  // flavor: shard count (0 = unsharded)

	// filter, baseline and planRotations are guarded by the owning
	// Set's mu (read lock for dispatch, write lock for Rebalance and
	// snapshots) — a cross-struct discipline the lockguard marker
	// cannot express, so it is enforced by review and the -race suite.
	filter core.Snapshottable
	// baseline accumulates the counters of filters retired by resizes,
	// so cumulative totals survive swaps.
	baseline filtering.Counters
	// planRotations is filter.Stats().Rotations when the current
	// geometry was (re)planned; Rebalance only reconsiders a tenant
	// after its filter has rotated past it.
	planRotations uint64
}

// Set is the multi-tenant data plane. It implements filtering.BatchFilter
// and the snapshot/introspection surface of the core flavors, so it can
// be wrapped by the live adapter, checkpointed, and composed with Chain.
//
// Concurrency: dispatch takes a read lock (so many batch pumps may run
// concurrently — provided every tenant's own flavor is goroutine-safe,
// i.e. built WithConcurrencySafe or WithShards); Rebalance and snapshot
// writes take the write lock and see a quiesced fleet.
type Set struct {
	mu      sync.RWMutex
	tenants []*tenantState
	byID    map[string]int
	lpm     lpm
	budget  *Budget

	// Unrouted packets are passed through unfiltered; counted here
	// (atomically — the read lock is shared) and folded into Counters.
	unroutedOut atomic.Uint64
	unroutedIn  atomic.Uint64
}

var _ filtering.BatchFilter = (*Set)(nil)
var _ core.Snapshottable = (*Set)(nil)

// NewSet builds the fleet: every tenant's filter is constructed from its
// option bundle via core.Build, and the prefix table is compiled. IDs
// must be unique, non-empty and at most 256 bytes; prefixes must be
// unique (overlap is fine — longest match wins).
func NewSet(cfg SetConfig) (*Set, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("%w: no tenants", ErrConfig)
	}
	if len(cfg.Tenants) > maxTenants {
		return nil, fmt.Errorf("%w: %d tenants (max %d)", ErrConfig, len(cfg.Tenants), maxTenants)
	}
	if cfg.Budget != nil {
		if err := cfg.Budget.validate(); err != nil {
			return nil, err
		}
	}
	states := make([]*tenantState, len(cfg.Tenants))
	for i, tc := range cfg.Tenants {
		plan := core.PlanBuild(tc.Options...)
		if plan.Live {
			return nil, fmt.Errorf("%w: tenant %q: WithLiveClock is not a per-tenant option (tenants share the set's virtual time; wrap the whole Set with the live adapter)", ErrConfig, tc.ID)
		}
		f, err := core.Build(tc.Options...)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: %w", tc.ID, err)
		}
		st := &tenantState{
			id:     tc.ID,
			prefix: tc.Prefix,
			opts:   append([]core.Option(nil), tc.Options...),
			safe:   plan.Safe,
			filter: f,
		}
		if sh, ok := f.(*core.Sharded); ok {
			st.shards = sh.Shards()
		}
		states[i] = st
	}
	return newSetFromStates(states, cfg.Budget)
}

// newSetFromStates validates identifiers and prefixes, compiles the LPM
// table, and assembles the Set. Shared by NewSet and the snapshot
// restore path.
func newSetFromStates(states []*tenantState, budget *Budget) (*Set, error) {
	byID := make(map[string]int, len(states))
	prefixes := make([]packet.Prefix, len(states))
	for i, st := range states {
		if st.id == "" || len(st.id) > maxIDLen {
			return nil, fmt.Errorf("%w: tenant %d: id must be 1..%d bytes", ErrConfig, i, maxIDLen)
		}
		if _, dup := byID[st.id]; dup {
			return nil, fmt.Errorf("%w: duplicate tenant id %q", ErrConfig, st.id)
		}
		byID[st.id] = i
		prefixes[i] = st.prefix
	}
	table, err := newLPM(prefixes)
	if err != nil {
		return nil, err
	}
	return &Set{tenants: states, byID: byID, lpm: table, budget: budget}, nil
}

// Tenants returns the number of tenants.
func (s *Set) Tenants() int { return len(s.tenants) }

// Name implements filtering.PacketFilter.
func (s *Set) Name() string { return fmt.Sprintf("tenants(%d)", len(s.tenants)) }

// UnroutedPackets returns how many packets matched no tenant prefix and
// were passed through unfiltered.
func (s *Set) UnroutedPackets() uint64 {
	return s.unroutedOut.Load() + s.unroutedIn.Load()
}

// clientAddr returns the packet's client-side address — the one tenant
// prefixes are defined over: the source of an outgoing packet, the
// destination of an incoming one (the same symmetry the filter keys on).
//
//bf:hotpath
func clientAddr(pkt *packet.Packet) packet.Addr {
	if pkt.Dir == packet.Outgoing {
		return pkt.Tuple.Src
	}
	return pkt.Tuple.Dst
}

// Process implements filtering.PacketFilter: the packet is handled
// entirely by the tenant its client address routes to; unrouted packets
// pass unfiltered.
//
//bf:hotpath
func (s *Set) Process(pkt packet.Packet) filtering.Verdict {
	s.mu.RLock()
	defer s.mu.RUnlock()
	slot := s.lpm.lookup(clientAddr(&pkt))
	if slot < 0 {
		s.countUnrouted(pkt.Dir, 1)
		return filtering.Pass
	}
	return s.tenants[slot].filter.Process(pkt)
}

//bf:hotpath
func (s *Set) countUnrouted(dir packet.Direction, n uint64) {
	if dir == packet.Outgoing {
		s.unroutedOut.Add(n)
	} else {
		s.unroutedIn.Add(n)
	}
}

// setScratch holds the per-batch grouping buffers, pooled like the
// sharded composite's so a steady batch stream allocates nothing.
type setScratch struct {
	slotOf     []int32
	starts     []int
	next       []int
	grouped    []packet.Packet
	perm       []int32
	groupedOut []filtering.Verdict
}

var setScratchPool = sync.Pool{New: func() any { return new(setScratch) }}

// scratchSlice resizes s to n elements, reallocating only on growth; the
// contents are unspecified and fully overwritten by users.
func scratchSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ProcessBatch routes every packet to its tenant, runs one grouped
// sub-batch per touched tenant, and returns the verdicts in input order.
// Packets sharing a tenant keep their relative order, so each tenant
// filter sees the exact packet sequence (and draws the same APD coin
// flips) it would see per-packet.
func (s *Set) ProcessBatch(pkts []packet.Packet) []filtering.Verdict {
	if len(pkts) == 0 {
		return nil
	}
	out := make([]filtering.Verdict, len(pkts))
	s.processBatchInto(pkts, out)
	return out
}

// ProcessBatchInto is ProcessBatch writing into a caller-provided buffer
// under the filtering.BatchFilter contract; with the pooled scratch the
// steady state is allocation-free.
//
//bf:hotpath
func (s *Set) ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	out = filtering.GrowVerdicts(out, len(pkts)) //bf:allow escapecheck amortized grow per the BatchFilter contract; steady state reuses the caller buffer
	if len(pkts) == 0 {
		return out
	}
	s.processBatchInto(pkts, out)
	return out
}

// processBatchInto fills out (same length as pkts) with one grouped
// sub-batch per touched tenant. Slot len(tenants) is the pseudo-tenant
// for unrouted packets, which pass unfiltered.
//
//bf:hotpath
func (s *Set) processBatchInto(pkts []packet.Packet, out []filtering.Verdict) {
	sc := setScratchPool.Get().(*setScratch)
	defer setScratchPool.Put(sc) //bf:allow hotpath pooled put must run even if a tenant filter panics, or the scratch leaks

	s.mu.RLock()
	defer s.mu.RUnlock()

	slots := len(s.tenants) + 1                            // + the unrouted pseudo-slot
	sc.slotOf = scratchSlice(sc.slotOf, len(pkts))         //bf:allow escapecheck pooled scratch grows to the high-water batch size once, then is reused
	sc.starts = scratchSlice(sc.starts, slots+1)           //bf:allow escapecheck pooled scratch grows to the high-water batch size once, then is reused
	sc.next = scratchSlice(sc.next, slots)                 //bf:allow escapecheck pooled scratch grows to the high-water batch size once, then is reused
	sc.grouped = scratchSlice(sc.grouped, len(pkts))       //bf:allow escapecheck pooled scratch grows to the high-water batch size once, then is reused
	sc.perm = scratchSlice(sc.perm, len(pkts))             //bf:allow escapecheck pooled scratch grows to the high-water batch size once, then is reused
	sc.groupedOut = scratchSlice(sc.groupedOut, len(pkts)) //bf:allow escapecheck pooled scratch grows to the high-water batch size once, then is reused

	// Stable counting sort by tenant slot; the LPM walk runs once per
	// packet.
	clear(sc.starts)
	for i := range pkts {
		slot := s.lpm.lookup(clientAddr(&pkts[i]))
		if slot < 0 {
			slot = int32(len(s.tenants))
		}
		sc.slotOf[i] = slot
		sc.starts[slot+1]++
	}
	for i := 1; i < len(sc.starts); i++ {
		sc.starts[i] += sc.starts[i-1]
	}
	copy(sc.next, sc.starts[:slots])
	for i := range pkts {
		slot := sc.slotOf[i]
		pos := sc.next[slot]
		sc.next[slot]++
		sc.grouped[pos] = pkts[i]
		sc.perm[pos] = int32(i) // grouped position -> original index
	}

	for t := range s.tenants {
		a, b := sc.starts[t], sc.starts[t+1]
		if a == b {
			continue
		}
		s.tenants[t].filter.ProcessBatchInto(sc.grouped[a:b], sc.groupedOut[a:b])
	}
	// Unrouted pseudo-slot: pass unfiltered, count by direction.
	if a, b := sc.starts[slots-1], sc.starts[slots]; a != b {
		var nOut, nIn uint64
		for pos := a; pos < b; pos++ {
			sc.groupedOut[pos] = filtering.Pass
			if sc.grouped[pos].Dir == packet.Outgoing {
				nOut++
			} else {
				nIn++
			}
		}
		if nOut != 0 {
			s.unroutedOut.Add(nOut)
		}
		if nIn != 0 {
			s.unroutedIn.Add(nIn)
		}
	}
	for pos, i := range sc.perm {
		out[i] = sc.groupedOut[pos]
	}
}

// AdvanceTo implements filtering.PacketFilter: every tenant's clock
// moves forward, so idle tenants expire their marks on schedule even
// when all traffic lands elsewhere.
func (s *Set) AdvanceTo(now time.Duration) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, st := range s.tenants {
		st.filter.AdvanceTo(now)
	}
}

// MemoryBytes implements filtering.PacketFilter (sum over tenants) —
// the quantity the Budget constrains.
func (s *Set) MemoryBytes() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total uint64
	for _, st := range s.tenants {
		total += st.filter.MemoryBytes()
	}
	return total
}

// Counters implements filtering.PacketFilter: the cumulative totals
// across every tenant (including filters retired by resizes) plus the
// unrouted pass-through packets.
func (s *Set) Counters() filtering.Counters {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := filtering.Counters{
		OutPackets: s.unroutedOut.Load(),
		InPackets:  s.unroutedIn.Load(),
		InPassed:   s.unroutedIn.Load(),
	}
	for _, st := range s.tenants {
		addCounters(&total, st.baseline)
		addCounters(&total, st.filter.Counters())
	}
	return total
}

func addCounters(dst *filtering.Counters, c filtering.Counters) {
	dst.OutPackets += c.OutPackets
	dst.InPackets += c.InPackets
	dst.InPassed += c.InPassed
	dst.InDropped += c.InDropped
}

// Utilization returns the mean current-vector fill fraction across
// tenants (each tenant's own capacity math uses its individual value;
// see TenantStats).
func (s *Set) Utilization() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum float64
	for _, st := range s.tenants {
		sum += st.filter.Utilization()
	}
	return sum / float64(len(s.tenants))
}

// RotateEvery returns the smallest rotation period across tenants — the
// cadence a background ticker must match so every tenant's rotations
// fire on schedule.
func (s *Set) RotateEvery() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	min := s.tenants[0].filter.RotateEvery()
	for _, st := range s.tenants[1:] {
		if dt := st.filter.RotateEvery(); dt < min {
			min = dt
		}
	}
	return min
}

// PunchHole opens an inbound hole (§5.1) in the tenant filter owning
// local's prefix; it is a no-op if no tenant covers the address.
func (s *Set) PunchHole(local packet.Addr, localPort uint16, remote packet.Addr, proto packet.Proto) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if slot := s.lpm.lookup(local); slot >= 0 {
		s.tenants[slot].filter.PunchHole(local, localPort, remote, proto)
	}
}

// Stats implements the core introspection surface with a cross-tenant
// aggregate, mirroring Sharded.Stats: additive fields are summed,
// fractional indicators averaged, the clock reports the most-advanced
// tenant and the earliest pending rotation. Configuration fields and the
// APD identity come from tenant 0 and are only meaningful for a
// homogeneous fleet; VectorUtilization is nil (tenants disagree on k).
// Use TenantStats for the per-tenant truth.
func (s *Set) Stats() core.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	agg := s.statLocked(0)
	agg.VectorUtilization = nil
	for i := 1; i < len(s.tenants); i++ {
		st := s.statLocked(i)
		agg.MemoryBytes += st.MemoryBytes
		agg.Rotations += st.Rotations
		agg.Marks += st.Marks
		addCounters(&agg.Counters, st.Counters)
		agg.APDSpared += st.APDSpared
		if st.Now > agg.Now {
			agg.Now = st.Now
		}
		if st.NextRotation < agg.NextRotation {
			agg.NextRotation = st.NextRotation
		}
		agg.Utilization += st.Utilization
		agg.PenetrationProbability += st.PenetrationProbability
		agg.APDDropProbability += st.APDDropProbability
	}
	inv := 1 / float64(len(s.tenants))
	agg.Utilization *= inv
	agg.PenetrationProbability *= inv
	agg.APDDropProbability *= inv
	agg.Counters.OutPackets += s.unroutedOut.Load()
	agg.Counters.InPackets += s.unroutedIn.Load()
	agg.Counters.InPassed += s.unroutedIn.Load()
	return agg
}

// Stat is one tenant's introspection snapshot: identity plus the full
// core.Stats of its filter (cumulative counters include filters retired
// by resizes).
type Stat struct {
	ID     string
	Prefix packet.Prefix
	Stats  core.Stats
}

// statLocked returns tenant i's Stats with the resize baseline folded
// in. Callers hold at least the read lock.
func (s *Set) statLocked(i int) core.Stats {
	st := s.tenants[i]
	stats := st.filter.Stats()
	addCounters(&stats.Counters, st.baseline)
	return stats
}

// TenantStats returns one snapshot per tenant, in configuration order —
// the per-tenant series /stats and /metrics expose.
func (s *Set) TenantStats() []Stat {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Stat, len(s.tenants))
	for i, st := range s.tenants {
		out[i] = Stat{ID: st.id, Prefix: st.prefix, Stats: s.statLocked(i)}
	}
	return out
}

// TenantIDs returns the tenant identifiers in configuration order.
func (s *Set) TenantIDs() []string {
	out := make([]string, len(s.tenants))
	for i, st := range s.tenants {
		out[i] = st.id
	}
	return out
}

// Lookup returns the tenant id owning addr, or "" if no prefix covers
// it.
func (s *Set) Lookup(addr packet.Addr) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if slot := s.lpm.lookup(addr); slot >= 0 {
		return s.tenants[slot].id
	}
	return ""
}
