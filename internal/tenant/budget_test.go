package tenant_test

import (
	"errors"
	"testing"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/tenant"
)

// driveFlows opens n distinct outgoing flows from tenant prefix p at
// time base, spreading client addresses and ports so each flow marks
// fresh bits.
func driveFlows(s *tenant.Set, p packet.Prefix, n int, base time.Duration) {
	pkts := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		client := p.Nth(uint64(i) % p.Size())
		pkts = append(pkts, packet.Packet{
			Time: base + time.Duration(i)*time.Microsecond,
			Tuple: packet.Tuple{
				Src: client, SrcPort: uint16(i/256)%60000 + 1024,
				Dst:     packet.AddrFrom4(198, 51, byte(i>>8), byte(i)),
				DstPort: 443, Proto: packet.TCP,
			},
			Dir: packet.Outgoing, Length: 100,
		})
	}
	s.ProcessBatch(pkts)
}

// TestRebalanceShrinksIdleGrowsHot is the budget acceptance test: with a
// deterministic traffic skew, the idle tenant's bitmap provably shrinks
// and the hot tenant's provably grows, resizes land only at rotation
// boundaries, and cumulative counters survive the swaps.
func TestRebalanceShrinksIdleGrowsHot(t *testing.T) {
	// Both tenants start at order 16 (64 Ki-bit vectors). The pool fits
	// roughly 1.5 of those footprints, so the planner must shift bytes
	// toward the hot tenant.
	mk := func(id string, b byte) tenant.Config {
		return tenant.Config{
			ID:     id,
			Prefix: packet.PrefixFrom(packet.AddrFrom4(10, b, 0, 0), 16),
			Options: []core.Option{
				core.WithOrder(16), core.WithSeed(uint64(b) + 1),
				core.WithVectors(4), core.WithRotateEvery(time.Second),
			},
		}
	}
	set, err := tenant.NewSet(tenant.SetConfig{
		Tenants: []tenant.Config{mk("hot", 1), mk("idle", 2)},
		Budget: &tenant.Budget{
			TotalBytes:        48 * 1024, // 1.5× one tenant's 32 KiB footprint
			TargetPenetration: 0.01,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	before := set.TenantStats()
	if before[0].Stats.Order != 16 || before[1].Stats.Order != 16 {
		t.Fatalf("seed orders: %d, %d", before[0].Stats.Order, before[1].Stats.Order)
	}

	// 20k flows into "hot", nothing into "idle".
	driveFlows(set, before[0].Prefix, 20_000, 0)
	hotBefore := set.TenantStats()[0].Stats.Counters

	// Before any rotation has fired, Rebalance must not touch anything:
	// resizes are gated to rotation boundaries.
	if resized, err := set.Rebalance(500 * time.Millisecond); err != nil || resized != 0 {
		t.Fatalf("pre-rotation Rebalance = (%d, %v), want (0, nil)", resized, err)
	}

	// Cross a rotation boundary; now the skew is actionable.
	resized, err := set.Rebalance(1100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if resized == 0 {
		t.Fatal("post-rotation Rebalance resized nothing")
	}
	after := set.TenantStats()
	if after[1].Stats.Order >= 16 {
		t.Errorf("idle tenant order %d, want < 16", after[1].Stats.Order)
	}
	if after[0].Stats.Order <= after[1].Stats.Order {
		t.Errorf("hot order %d not above idle order %d", after[0].Stats.Order, after[1].Stats.Order)
	}
	if set.MemoryBytes() > 48*1024+4*1024 {
		t.Errorf("fleet footprint %d exceeds budget", set.MemoryBytes())
	}
	// The swap must not lose the hot tenant's history.
	if after[0].Stats.Counters != hotBefore {
		t.Errorf("hot counters after resize %+v, want %+v", after[0].Stats.Counters, hotBefore)
	}

	// Determinism: an identical second set driven identically lands on
	// identical geometry.
	set2, err := tenant.NewSet(tenant.SetConfig{
		Tenants: []tenant.Config{mk("hot", 1), mk("idle", 2)},
		Budget: &tenant.Budget{
			TotalBytes:        48 * 1024,
			TargetPenetration: 0.01,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	driveFlows(set2, before[0].Prefix, 20_000, 0)
	if _, err := set2.Rebalance(1100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	again := set2.TenantStats()
	for i := range after {
		if after[i].Stats.Order != again[i].Stats.Order || after[i].Stats.Hashes != again[i].Stats.Hashes {
			t.Errorf("tenant %d geometry not deterministic: {%d,%d} vs {%d,%d}",
				i, after[i].Stats.Order, after[i].Stats.Hashes, again[i].Stats.Order, again[i].Stats.Hashes)
		}
	}

	// The reverse skew must move memory back: grow the now-hot "idle"
	// tenant. The rebalance has to land within T_e of the new traffic —
	// estimates come from the current vector, and marks older than the
	// expiry window have rotated away.
	driveFlows(set, after[1].Prefix, 20_000, 2*time.Second)
	if _, err := set.Rebalance(2050 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	final := set.TenantStats()
	if final[1].Stats.Order <= after[1].Stats.Order {
		t.Errorf("reheated tenant order %d did not grow from %d", final[1].Stats.Order, after[1].Stats.Order)
	}
}

// TestRebalanceExtremePressure proves a tenant is squeezed, never
// evicted: a budget far below any feasible plan still yields a working
// minimum-geometry filter rather than an error.
func TestRebalanceExtremePressure(t *testing.T) {
	set, err := tenant.NewSet(tenant.SetConfig{
		Tenants: []tenant.Config{{
			ID:     "squeezed",
			Prefix: packet.PrefixFrom(packet.AddrFrom4(10, 1, 0, 0), 16),
			Options: []core.Option{
				core.WithOrder(16), core.WithSeed(7),
				core.WithVectors(4), core.WithRotateEvery(time.Second),
			},
		}},
		// 1 KiB cannot hold even the minimum 4×2^10-bit geometry at the
		// target; the floor plan must kick in.
		Budget: &tenant.Budget{TotalBytes: 1024, TargetPenetration: 0.001},
	})
	if err != nil {
		t.Fatal(err)
	}
	driveFlows(set, packet.PrefixFrom(packet.AddrFrom4(10, 1, 0, 0), 16), 50_000, 0)
	if _, err := set.Rebalance(1100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := set.TenantStats()[0].Stats
	// The floor plan picks the largest order fitting the cap: 4 vectors
	// of 2^11 bits is exactly 1 KiB.
	if st.Order != 11 {
		t.Errorf("squeezed order = %d, want 11", st.Order)
	}
	if st.MemoryBytes > 1024 {
		t.Errorf("squeezed footprint %d exceeds the 1 KiB budget", st.MemoryBytes)
	}
	// Still a functioning filter.
	p := packet.Packet{
		Time:  1200 * time.Millisecond,
		Tuple: packet.Tuple{Src: packet.AddrFrom4(10, 1, 0, 1), SrcPort: 2000, Dst: packet.AddrFrom4(1, 1, 1, 1), DstPort: 80, Proto: packet.TCP},
		Dir:   packet.Outgoing, Length: 60,
	}
	set.Process(p)
	reply := p
	reply.Tuple = p.Tuple.Reverse()
	reply.Dir = packet.Incoming
	reply.Time += time.Millisecond
	if v := set.Process(reply); v != filtering.Pass {
		t.Errorf("reply after squeeze: %v", v)
	}
}

// TestRebalanceRequiresBudget pins the ErrNoBudget sentinel.
func TestRebalanceRequiresBudget(t *testing.T) {
	set := mustSet(t, tenant.SetConfig{Tenants: fleetSpec()})
	if _, err := set.Rebalance(time.Second); !errors.Is(err, tenant.ErrNoBudget) {
		t.Errorf("Rebalance without budget: %v", err)
	}
	if err := set.AttachBudget(&tenant.Budget{TotalBytes: 1 << 20, TargetPenetration: 0.01}); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Rebalance(time.Second); err != nil {
		t.Errorf("Rebalance after AttachBudget: %v", err)
	}
	if err := set.AttachBudget(&tenant.Budget{TargetPenetration: 2}); err == nil {
		t.Error("AttachBudget accepted an invalid budget")
	}
}
