package tenant

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/model"
)

// ErrNoBudget is returned by Rebalance when the Set carries no Budget.
var ErrNoBudget = errors.New("tenant: set has no budget attached")

// Budget is the shared-memory planner: one global byte pool carved into
// per-tenant bitmap geometries in proportion to each tenant's observed
// flow count. An idle tenant's slice shrinks toward the MinFlows floor
// and a hot tenant's grows to absorb the released bytes, so a fixed
// appliance budget tracks a shifting traffic mix without operator
// retuning — the fleet-scale version of the paper's §3.4 parameter
// procedure, re-run continuously from live estimates instead of once
// from a traffic study.
type Budget struct {
	// TotalBytes is the global pool shared by all tenants' bitmaps.
	TotalBytes uint64
	// TargetPenetration is the per-tenant penetration target handed to
	// model.PlanFor (Equation 1). When a tenant's share cannot meet it,
	// Rebalance degrades that tenant gracefully instead of failing: the
	// target is relaxed and, at worst, the largest geometry fitting the
	// share is used.
	TargetPenetration float64
	// MinFlows floors the flow count used for planning and weighting, so
	// a completely idle tenant keeps a minimal working filter and a
	// nonzero claim on the pool. Zero selects 64.
	MinFlows float64
}

func (b *Budget) validate() error {
	if b.TotalBytes == 0 {
		return fmt.Errorf("%w: budget TotalBytes must be > 0", ErrConfig)
	}
	if b.TargetPenetration <= 0 || b.TargetPenetration >= 1 {
		return fmt.Errorf("%w: budget TargetPenetration %v outside (0, 1)", ErrConfig, b.TargetPenetration)
	}
	if b.MinFlows < 0 {
		return fmt.Errorf("%w: budget MinFlows %v negative", ErrConfig, b.MinFlows)
	}
	return nil
}

func (b *Budget) minFlows() float64 {
	if b.MinFlows > 0 {
		return b.MinFlows
	}
	return 64
}

// estimateFlows inverts Equation 1 to the flow count marking the current
// vector: U = 1 − e^(−mc/2^n) gives c ≈ −(2^n/m)·ln(1−U). For a sharded
// tenant each shard sees c/S flows, so the per-shard estimate is scaled
// back up by S.
func estimateFlows(stats core.Stats, shards int) float64 {
	u := stats.Utilization
	if u <= 0 || stats.Hashes <= 0 {
		return 0
	}
	if u > 0.999999 {
		u = 0.999999
	}
	c := -(math.Exp2(float64(stats.Order)) / float64(stats.Hashes)) * math.Log(1-u)
	if shards > 1 {
		c *= float64(shards)
	}
	return c
}

// Rebalance advances every tenant to now (firing any due rotations) and
// then re-plans the fleet against the shared budget:
//
//  1. each tenant's active flow count c is estimated from its current
//     vector's fill (estimateFlows) and floored at MinFlows;
//  2. the pool is carved proportionally — tenant i's cap is
//     TotalBytes·cᵢ/Σc — so bytes flow from idle tenants to hot ones;
//  3. each tenant whose filter has rotated since its last plan is
//     re-planned with model.PlanFor under its cap, relaxing the
//     penetration target on ErrInfeasible and falling back to the
//     largest geometry fitting the cap, so a tenant is squeezed rather
//     than evicted;
//  4. tenants whose planned geometry differs from the current one get a
//     replacement filter built from their original option bundle plus
//     the new {order, hashes}, advanced to now and swapped in.
//
// Swaps happen only for tenants that have crossed a rotation boundary
// since their last plan (step 3's gate), keeping resizes aligned with
// the filter's own epochs and bounding re-plan churn to once per
// rotation. A swapped tenant starts with an empty bitmap — its marks
// are re-learned from outgoing traffic within one T_e, exactly the
// cold-start the paper's rotation scheme already tolerates — while its
// cumulative counters are preserved via the baseline.
//
// Rebalance holds the write lock: dispatch is quiesced for the duration.
// It returns how many tenants were resized.
func (s *Set) Rebalance(now time.Duration) (resized int, err error) {
	if s.budget == nil {
		return 0, ErrNoBudget
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	minF := s.budget.minFlows()
	flows := make([]float64, len(s.tenants))
	stats := make([]core.Stats, len(s.tenants))
	var totalWeight float64
	for i, st := range s.tenants {
		st.filter.AdvanceTo(now)
		stats[i] = st.filter.Stats()
		flows[i] = estimateFlows(stats[i], st.shards)
		totalWeight += math.Max(flows[i], minF)
	}

	for i, st := range s.tenants {
		if stats[i].Rotations == st.planRotations {
			continue // no rotation boundary crossed since the last plan
		}
		capBytes := uint64(float64(s.budget.TotalBytes) * math.Max(flows[i], minF) / totalWeight)
		plan, perr := s.planTenant(math.Max(flows[i], minF), stats[i], capBytes)
		if perr != nil {
			return resized, fmt.Errorf("tenant %q: %w", st.id, perr)
		}
		order, hashes := plan.Order, plan.Hashes
		if st.shards > 1 {
			// A sharded tenant splits the keyspace S ways: each shard
			// needs 1/S of the planned capacity, i.e. log2(S) fewer
			// order bits, clamped to the planner's floor (so tiny plans
			// on wide shard counts may exceed the cap slightly).
			drop := uint(math.Round(math.Log2(float64(st.shards))))
			if plan.Order > 10+drop {
				order = plan.Order - drop
			} else {
				order = 10
			}
		}
		if order == stats[i].Order && hashes == stats[i].Hashes {
			st.planRotations = stats[i].Rotations
			continue
		}
		// Replay the tenant's bundle with the new geometry appended
		// (later options win); vectors and rotation are pinned from the
		// running filter so timing survives even a bundle that left
		// them defaulted (e.g. a snapshot-restored tenant).
		opts := append(append(make([]core.Option, 0, len(st.opts)+4), st.opts...),
			core.WithVectors(stats[i].Vectors), core.WithRotateEvery(stats[i].RotateEvery),
			core.WithOrder(order), core.WithHashes(hashes))
		nf, berr := core.Build(opts...)
		if berr != nil {
			return resized, fmt.Errorf("tenant %q: rebuild: %w", st.id, berr)
		}
		nf.AdvanceTo(now)
		addCounters(&st.baseline, st.filter.Counters())
		st.filter = nf
		st.planRotations = nf.Stats().Rotations
		resized++
	}
	return resized, nil
}

// planTenant picks a {order, hashes} geometry for one tenant under its
// byte cap. The penetration target is relaxed geometrically on
// ErrInfeasible; past 0.5 the tenant falls to the largest geometry that
// fits — the budget squeezes tenants, it never evicts them. ErrArgs
// aborts: it signals a bug, not pressure.
func (s *Set) planTenant(c float64, cur core.Stats, capBytes uint64) (model.Plan, error) {
	target := s.budget.TargetPenetration
	for {
		plan, err := model.PlanFor(model.PlanInput{
			ActiveConnections: c,
			TargetPenetration: target,
			ExpiryTimer:       cur.ExpiryTimer,
			RotateEvery:       cur.RotateEvery,
			MaxMemoryBytes:    capBytes,
		})
		if err == nil {
			return plan, nil
		}
		if !errors.Is(err, model.ErrInfeasible) {
			return model.Plan{}, err
		}
		if target >= 0.5 {
			return floorPlan(c, cur, capBytes), nil
		}
		target = math.Min(target*4, 0.5)
	}
}

// floorPlan is the last resort under extreme pressure: the largest order
// in the planner's range whose bitmap fits capBytes (or the minimum
// order if nothing fits), with the Equation 4 optimal hash count for it.
func floorPlan(c float64, cur core.Stats, capBytes uint64) model.Plan {
	order := uint(10)
	for o := uint(10); o <= 32; o++ {
		if model.MemoryBytes(o, cur.Vectors) > capBytes {
			break
		}
		order = o
	}
	hashes, err := model.OptimalHashesInt(math.Max(c, 1), order)
	if err != nil || hashes < 1 {
		hashes = 3
	}
	return model.Plan{
		Order:       order,
		Vectors:     cur.Vectors,
		Hashes:      hashes,
		RotateEvery: cur.RotateEvery,
		ExpiryTimer: cur.ExpiryTimer,
		MemoryBytes: model.MemoryBytes(order, cur.Vectors),
	}
}
