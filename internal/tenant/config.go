package tenant

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/packet"
)

// fileConfig is the on-disk JSON shape loaded by ParseConfig (the
// `bfserve -tenants` file):
//
//	{
//	  "budgetBytes": 8388608,
//	  "targetPenetration": 0.01,
//	  "minFlows": 64,
//	  "tenants": [
//	    {"id": "cust-a", "prefix": "10.1.0.0/16", "order": 14},
//	    {"id": "cust-b", "prefix": "10.2.0.0/16", "shards": 4, "rotate": "2s"}
//	  ]
//	}
//
// The budget block is optional (omit budgetBytes to pin every tenant to
// its configured geometry). Per-tenant fields mirror the filter options;
// zero values mean "package default".
type fileConfig struct {
	BudgetBytes       uint64             `json:"budgetBytes"`
	TargetPenetration float64            `json:"targetPenetration"`
	MinFlows          float64            `json:"minFlows"`
	Tenants           []fileTenantConfig `json:"tenants"`
}

type fileTenantConfig struct {
	ID      string `json:"id"`
	Prefix  string `json:"prefix"`
	Order   uint   `json:"order"`
	Vectors int    `json:"vectors"`
	Hashes  int    `json:"hashes"`
	Rotate  string `json:"rotate"`
	Shards  int    `json:"shards"`
	Safe    bool   `json:"safe"`
	Seed    uint64 `json:"seed"`
}

// ParseConfig parses the JSON tenant-fleet description into a SetConfig
// ready for NewSet. Field validation that only NewSet can do (duplicate
// ids, overlapping identical prefixes, option ranges) is deferred to it;
// ParseConfig rejects structural problems — malformed JSON, unknown
// fields, bad prefixes and durations, a missing tenant list, and a
// budget block with an out-of-range target.
func ParseConfig(data []byte) (SetConfig, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var fc fileConfig
	if err := dec.Decode(&fc); err != nil {
		return SetConfig{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if dec.More() {
		return SetConfig{}, fmt.Errorf("%w: trailing data after config object", ErrConfig)
	}
	if len(fc.Tenants) == 0 {
		return SetConfig{}, fmt.Errorf("%w: no tenants", ErrConfig)
	}

	out := SetConfig{Tenants: make([]Config, 0, len(fc.Tenants))}
	for i, tc := range fc.Tenants {
		prefix, err := packet.ParsePrefix(tc.Prefix)
		if err != nil {
			return SetConfig{}, fmt.Errorf("%w: tenant %d (%q): %v", ErrConfig, i, tc.ID, err)
		}
		var opts []core.Option
		if tc.Order != 0 {
			opts = append(opts, core.WithOrder(tc.Order))
		}
		if tc.Vectors != 0 {
			opts = append(opts, core.WithVectors(tc.Vectors))
		}
		if tc.Hashes != 0 {
			opts = append(opts, core.WithHashes(tc.Hashes))
		}
		if tc.Rotate != "" {
			dt, err := time.ParseDuration(tc.Rotate)
			if err != nil {
				return SetConfig{}, fmt.Errorf("%w: tenant %d (%q): rotate: %v", ErrConfig, i, tc.ID, err)
			}
			opts = append(opts, core.WithRotateEvery(dt))
		}
		if tc.Seed != 0 {
			opts = append(opts, core.WithSeed(tc.Seed))
		}
		if tc.Shards != 0 {
			opts = append(opts, core.WithShards(tc.Shards))
		}
		if tc.Safe {
			opts = append(opts, core.WithConcurrencySafe())
		}
		out.Tenants = append(out.Tenants, Config{ID: tc.ID, Prefix: prefix, Options: opts})
	}

	if fc.BudgetBytes != 0 || fc.TargetPenetration != 0 || fc.MinFlows != 0 {
		b := &Budget{
			TotalBytes:        fc.BudgetBytes,
			TargetPenetration: fc.TargetPenetration,
			MinFlows:          fc.MinFlows,
		}
		if b.TargetPenetration == 0 {
			b.TargetPenetration = 0.01
		}
		if err := b.validate(); err != nil {
			return SetConfig{}, err
		}
		out.Budget = b
	}
	return out, nil
}
