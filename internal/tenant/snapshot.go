package tenant

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"bitmapfilter/internal/core"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// Fleet snapshot format ("BMFT", version 1, little-endian): one framed
// section per tenant wrapping the tenant filter's ordinary v2 snapshot,
// so the whole multi-tenant data plane persists and restores atomically
// through internal/checkpoint like a single filter would.
//
//	header    magic "BMFT" | version u32 | tenantCount u32 | reserved u32
//	          | unroutedOut u64 | unroutedIn u64 | CRC32C(header) u32
//	section   idLen u32 | prefixBase u32 | prefixBits u32 | flavor u32
//	          | snapLen u64 | baseline {out,in,passed,dropped} u64×4
//	          | id bytes | CRC32C(section so far) u32
//	          | inner v2 snapshot (snapLen bytes) | CRC32C(inner) u32
//
// flavor bit 0 records a Safe wrapper (the inner snapshot alone cannot:
// a Safe serializes as its wrapped Filter); sharding needs no flag — a
// sharded tenant's inner snapshot is itself a multi-section container
// that restores as a Sharded. Every integrity failure is detected by a
// CRC or bound check before any tenant filter is constructed.
const (
	tenantMagic     = "BMFT"
	tenantVersion   = 1
	tenantHeaderLen = 4 + 4 + 4 + 4 + 8 + 8
	sectionFixedLen = 4 + 4 + 4 + 4 + 8 + 8*4

	flavorSafe = 1 << 0
)

var tenantCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxTenantSnapLen bounds one tenant's inner snapshot length field so a
// corrupt value is rejected up front; 16 GiB comfortably covers any
// geometry the core reader itself would accept, and the LimitReader
// means the bound never turns into an allocation.
const maxTenantSnapLen = 1 << 34

// WriteSnapshot serializes the whole fleet. It takes the write lock, so
// the snapshot is a consistent point-in-time image: no dispatch or
// rebalance interleaves.
func (s *Set) WriteSnapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	var hdr [tenantHeaderLen + 4]byte
	le := binary.LittleEndian
	copy(hdr[:4], tenantMagic)
	le.PutUint32(hdr[4:], tenantVersion)
	le.PutUint32(hdr[8:], uint32(len(s.tenants)))
	le.PutUint32(hdr[12:], 0)
	le.PutUint64(hdr[16:], s.unroutedOut.Load())
	le.PutUint64(hdr[24:], s.unroutedIn.Load())
	le.PutUint32(hdr[tenantHeaderLen:], crc32.Checksum(hdr[:tenantHeaderLen], tenantCastagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}

	var inner bytes.Buffer
	for _, st := range s.tenants {
		inner.Reset()
		if err := st.filter.WriteSnapshot(&inner); err != nil {
			return fmt.Errorf("tenant %q: %w", st.id, err)
		}
		var flavor uint32
		if st.safe {
			flavor |= flavorSafe
		}
		fixed := make([]byte, sectionFixedLen, sectionFixedLen+len(st.id)+4)
		le.PutUint32(fixed[0:], uint32(len(st.id)))
		le.PutUint32(fixed[4:], uint32(st.prefix.Base))
		le.PutUint32(fixed[8:], uint32(st.prefix.Bits))
		le.PutUint32(fixed[12:], flavor)
		le.PutUint64(fixed[16:], uint64(inner.Len()))
		le.PutUint64(fixed[24:], st.baseline.OutPackets)
		le.PutUint64(fixed[32:], st.baseline.InPackets)
		le.PutUint64(fixed[40:], st.baseline.InPassed)
		le.PutUint64(fixed[48:], st.baseline.InDropped)
		fixed = append(fixed, st.id...)
		fixed = le.AppendUint32(fixed, crc32.Checksum(fixed, tenantCastagnoli))
		if _, err := w.Write(fixed); err != nil {
			return err
		}
		if _, err := w.Write(inner.Bytes()); err != nil {
			return err
		}
		var crc [4]byte
		le.PutUint32(crc[:], crc32.Checksum(inner.Bytes(), tenantCastagnoli))
		if _, err := w.Write(crc[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshot restores a fleet written by WriteSnapshot. Like the core
// reader, it rebuilds everything serializable from the stream; extra
// supplies the per-tenant options that never serialize — seeds, APD
// policies, mark/tuple policies — keyed by tenant id (nil for none).
// The restored Set carries no Budget; see AttachBudget.
func ReadSnapshot(r io.Reader, extra func(id string) []core.Option) (*Set, error) {
	le := binary.LittleEndian
	var hdr [tenantHeaderLen + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("tenant snapshot: header: %w", err)
	}
	if string(hdr[:4]) != tenantMagic {
		return nil, fmt.Errorf("tenant snapshot: bad magic %q", hdr[:4])
	}
	if v := le.Uint32(hdr[4:]); v != tenantVersion {
		return nil, fmt.Errorf("tenant snapshot: unsupported version %d", v)
	}
	if crc32.Checksum(hdr[:tenantHeaderLen], tenantCastagnoli) != le.Uint32(hdr[tenantHeaderLen:]) {
		return nil, fmt.Errorf("tenant snapshot: header checksum mismatch")
	}
	count := le.Uint32(hdr[8:])
	if count == 0 || count > maxTenants {
		return nil, fmt.Errorf("tenant snapshot: tenant count %d outside [1, %d]", count, maxTenants)
	}
	unroutedOut := le.Uint64(hdr[16:])
	unroutedIn := le.Uint64(hdr[24:])

	states := make([]*tenantState, 0, count)
	for i := uint32(0); i < count; i++ {
		var fixed [sectionFixedLen]byte
		if _, err := io.ReadFull(r, fixed[:]); err != nil {
			return nil, fmt.Errorf("tenant snapshot: section %d: %w", i, err)
		}
		idLen := le.Uint32(fixed[0:])
		if idLen == 0 || idLen > maxIDLen {
			return nil, fmt.Errorf("tenant snapshot: section %d: id length %d outside [1, %d]", i, idLen, maxIDLen)
		}
		bits := le.Uint32(fixed[8:])
		if bits > 32 {
			return nil, fmt.Errorf("tenant snapshot: section %d: prefix length %d", i, bits)
		}
		flavor := le.Uint32(fixed[12:])
		if flavor&^flavorSafe != 0 {
			return nil, fmt.Errorf("tenant snapshot: section %d: unknown flavor bits %#x", i, flavor)
		}
		snapLen := le.Uint64(fixed[16:])
		if snapLen == 0 || snapLen > maxTenantSnapLen {
			return nil, fmt.Errorf("tenant snapshot: section %d: snapshot length %d outside [1, %d]", i, snapLen, uint64(maxTenantSnapLen))
		}
		idAndCRC := make([]byte, idLen+4)
		if _, err := io.ReadFull(r, idAndCRC); err != nil {
			return nil, fmt.Errorf("tenant snapshot: section %d: %w", i, err)
		}
		sum := crc32.Checksum(fixed[:], tenantCastagnoli)
		sum = crc32.Update(sum, tenantCastagnoli, idAndCRC[:idLen])
		if sum != le.Uint32(idAndCRC[idLen:]) {
			return nil, fmt.Errorf("tenant snapshot: section %d: header checksum mismatch", i)
		}
		id := string(idAndCRC[:idLen])
		prefix := packet.Prefix{Base: packet.Addr(le.Uint32(fixed[4:])), Bits: uint8(bits)}
		if canon := packet.PrefixFrom(prefix.Base, prefix.Bits); canon != prefix {
			return nil, fmt.Errorf("tenant snapshot: section %d: non-canonical prefix %v", i, prefix)
		}
		baseline := filtering.Counters{
			OutPackets: le.Uint64(fixed[24:]),
			InPackets:  le.Uint64(fixed[32:]),
			InPassed:   le.Uint64(fixed[40:]),
			InDropped:  le.Uint64(fixed[48:]),
		}

		var opts []core.Option
		if extra != nil {
			opts = extra(id)
		}
		crc := crc32.New(tenantCastagnoli)
		lr := io.LimitReader(r, int64(snapLen))
		inner, err := core.ReadAnySnapshot(io.TeeReader(lr, crc), opts...)
		if err != nil {
			return nil, fmt.Errorf("tenant snapshot: tenant %q: %w", id, err)
		}
		var want [4]byte
		if _, err := io.ReadFull(r, want[:]); err != nil {
			return nil, fmt.Errorf("tenant snapshot: tenant %q: %w", id, err)
		}
		if crc.Sum32() != le.Uint32(want[:]) {
			return nil, fmt.Errorf("tenant snapshot: tenant %q: snapshot checksum mismatch", id)
		}

		st := &tenantState{id: id, prefix: prefix, baseline: baseline, filter: inner}
		// Rebuild the option bundle Rebalance replays: the caller's
		// non-serializable extras plus the flavor recorded here. (The
		// geometry options are pinned from the live filter at rebuild
		// time, so they need not appear in the base bundle.)
		st.opts = append(st.opts, opts...)
		if sh, ok := inner.(*core.Sharded); ok {
			st.shards = sh.Shards()
			st.opts = append(st.opts, core.WithShards(st.shards))
		}
		if flavor&flavorSafe != 0 {
			f, ok := inner.(*core.Filter)
			if !ok {
				return nil, fmt.Errorf("tenant snapshot: tenant %q: safe flavor on a %s snapshot", id, inner.Name())
			}
			st.filter = core.NewSafe(f)
			st.safe = true
			st.opts = append(st.opts, core.WithConcurrencySafe())
		}
		states = append(states, st)
	}
	if err := expectEOF(r); err != nil {
		return nil, fmt.Errorf("tenant snapshot: %w", err)
	}

	s, err := newSetFromStates(states, nil)
	if err != nil {
		return nil, err
	}
	s.unroutedOut.Store(unroutedOut)
	s.unroutedIn.Store(unroutedIn)
	return s, nil
}

// expectEOF rejects trailing bytes after a well-formed snapshot, exactly
// like the core reader does.
func expectEOF(r io.Reader) error {
	var b [1]byte
	if n, err := r.Read(b[:]); n != 0 || err != io.EOF {
		return fmt.Errorf("trailing bytes after snapshot")
	}
	return nil
}

// AttachBudget attaches (or replaces) the shared-memory planner —
// primarily for snapshot-restored sets, which never persist a Budget.
func (s *Set) AttachBudget(b *Budget) error {
	if b != nil {
		if err := b.validate(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget = b
	return nil
}
