package model

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Plan is a concrete bitmap-filter configuration recommended for a target
// workload, produced by the §3.4 "Choose Proper Parameters" procedure:
//
//  1. pick T_e from the out-in delay tolerance (20–30 s per §3.4, never
//     below the delay q99);
//  2. pick Δt for timer granularity (4–5 s per §3.4) and k = T_e/Δt;
//  3. pick the smallest n whose Equation 5 capacity covers the expected
//     active connections with the target penetration probability;
//  4. set m to the rounded Equation 4 optimum for that (c, n).
type Plan struct {
	Order       uint
	Vectors     int
	Hashes      int
	RotateEvery time.Duration
	ExpiryTimer time.Duration
	MemoryBytes uint64
	// MaxConnections is the Equation 5 capacity of the chosen order.
	MaxConnections float64
	// PredictedPenetration is Equation 2 evaluated at the workload's
	// connection count with the chosen (n, m).
	PredictedPenetration float64
}

// PlanInput describes the workload to plan for.
type PlanInput struct {
	// ActiveConnections is the expected number of active connections
	// inside one T_e window (the paper's trace: ~15 K in 20 s).
	ActiveConnections float64
	// TargetPenetration is the acceptable random-packet penetration
	// probability (e.g. 0.01).
	TargetPenetration float64
	// ExpiryTimer is the desired T_e; zero selects the paper's 20 s.
	ExpiryTimer time.Duration
	// RotateEvery is the desired Δt; zero selects the paper's 5 s.
	RotateEvery time.Duration
	// MaxMemoryBytes optionally caps the bitmap footprint; zero means
	// unlimited. If the capacity target cannot be met within the cap,
	// PlanFor returns ErrInfeasible.
	MaxMemoryBytes uint64
}

// ErrInfeasible is returned by PlanFor when the inputs are valid but no
// order in the planner's range satisfies the target penetration — because
// the memory cap bites first, or because the workload exceeds even the
// largest bitmap. Callers that degrade gracefully (the tenant Budget
// relaxes its target and retries) distinguish it from ErrArgs, which
// signals out-of-domain inputs no retry can fix. Wrapped errors carry
// context; test with errors.Is.
var ErrInfeasible = errors.New("model: no feasible plan for the target")

// PlanFor runs the procedure. It returns ErrArgs for out-of-domain
// inputs, and ErrInfeasible when the inputs are valid but the target
// cannot be satisfied (see ErrInfeasible).
func PlanFor(in PlanInput) (Plan, error) {
	if in.ActiveConnections <= 0 {
		return Plan{}, fmt.Errorf("%w: connections %v", ErrArgs, in.ActiveConnections)
	}
	if in.TargetPenetration <= 0 || in.TargetPenetration >= 1 {
		return Plan{}, fmt.Errorf("%w: penetration %v", ErrArgs, in.TargetPenetration)
	}
	te := in.ExpiryTimer
	if te == 0 {
		te = 20 * time.Second
	}
	dt := in.RotateEvery
	if dt == 0 {
		dt = 5 * time.Second
	}
	if dt <= 0 || te < dt {
		return Plan{}, fmt.Errorf("%w: T_e %v with Δt %v", ErrArgs, te, dt)
	}
	k := int(math.Round(float64(te) / float64(dt)))
	if k < 1 {
		k = 1
	}

	// Smallest n whose Equation 5 bound covers the workload.
	const (
		minOrder = 10
		maxOrder = 32
	)
	for order := uint(minOrder); order <= maxOrder; order++ {
		capacity, err := MaxConnections(in.TargetPenetration, order)
		if err != nil {
			return Plan{}, err
		}
		if capacity < in.ActiveConnections {
			continue
		}
		memory := MemoryBytes(order, k)
		if in.MaxMemoryBytes > 0 && memory > in.MaxMemoryBytes {
			return Plan{}, fmt.Errorf(
				"%w: order %d needs %d bytes, cap is %d",
				ErrInfeasible, order, memory, in.MaxMemoryBytes)
		}
		// Equation 4's real-valued optimum must be rounded to an
		// integer m; near the capacity boundary that rounding can push
		// Equation 2 slightly over the target, so pick the better of
		// floor/ceil and escalate to the next order if neither meets
		// the target.
		mStar, err := OptimalHashes(in.ActiveConnections, order)
		if err != nil {
			return Plan{}, err
		}
		m, p := bestIntHashes(in.ActiveConnections, mStar, order)
		if p > in.TargetPenetration {
			continue
		}
		return Plan{
			Order:                order,
			Vectors:              k,
			Hashes:               m,
			RotateEvery:          dt,
			ExpiryTimer:          time.Duration(k) * dt,
			MemoryBytes:          memory,
			MaxConnections:       capacity,
			PredictedPenetration: p,
		}, nil
	}
	return Plan{}, fmt.Errorf("%w: no order up to %d satisfies the target", ErrInfeasible, maxOrder)
}

// bestIntHashes picks the integer hash count around the real-valued
// optimum mStar that minimizes Equation 2, returning it with its predicted
// penetration.
func bestIntHashes(c, mStar float64, order uint) (int, float64) {
	lo := int(math.Floor(mStar))
	if lo < 1 {
		lo = 1
	}
	hi := lo + 1
	pLo := Penetration(c, lo, order)
	pHi := Penetration(c, hi, order)
	if pLo <= pHi {
		return lo, pLo
	}
	return hi, pHi
}

// String renders the plan.
func (p Plan) String() string {
	return fmt.Sprintf(
		"{%dx%d}-bitmap, m=%d, Δt=%v (T_e=%v): %d bytes, capacity %.0f conns, predicted p=%.2e",
		p.Vectors, p.Order, p.Hashes, p.RotateEvery, p.ExpiryTimer,
		p.MemoryBytes, p.MaxConnections, p.PredictedPenetration)
}
