package model

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestPlanForPaperWorkload(t *testing.T) {
	// The paper's trace: ~15 K active connections per 20 s window, and
	// §4.1 shows a {4×20} with m=3 gives ~5-10% worst-case bounds. For a
	// 5% target the planner should land on order 20 (the paper's
	// choice): Eq.5 at order 19 covers only ~64 K... let's see — it must
	// at least produce a plan that covers 15 K with sensible shape.
	plan, err := PlanFor(PlanInput{
		ActiveConnections: 15000,
		TargetPenetration: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Vectors != 4 || plan.RotateEvery != 5*time.Second || plan.ExpiryTimer != 20*time.Second {
		t.Errorf("timer shape: %+v", plan)
	}
	if plan.MaxConnections < 15000 {
		t.Errorf("capacity %v below workload", plan.MaxConnections)
	}
	if plan.PredictedPenetration > 0.05 {
		t.Errorf("predicted penetration %v above target", plan.PredictedPenetration)
	}
	if plan.Hashes < 1 {
		t.Errorf("hashes = %d", plan.Hashes)
	}
	if plan.MemoryBytes != MemoryBytes(plan.Order, plan.Vectors) {
		t.Error("memory inconsistent")
	}
	if plan.String() == "" {
		t.Error("empty String")
	}
}

func TestPlanForSmallestSufficientOrder(t *testing.T) {
	plan, err := PlanFor(PlanInput{
		ActiveConnections: 15000,
		TargetPenetration: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The order below must NOT satisfy Equation 5.
	if plan.Order > 10 {
		smaller, err := MaxConnections(0.05, plan.Order-1)
		if err != nil {
			t.Fatal(err)
		}
		if smaller >= 15000 {
			t.Errorf("order %d already sufficed (capacity %v)", plan.Order-1, smaller)
		}
	}
}

func TestPlanForMemoryCap(t *testing.T) {
	// A 16 KiB cap cannot host 15 K connections at 1%: the inputs are
	// valid but the plan is infeasible — the distinction the tenant
	// Budget's relax-and-retry loop relies on.
	_, err := PlanFor(PlanInput{
		ActiveConnections: 15000,
		TargetPenetration: 0.01,
		MaxMemoryBytes:    16 * 1024,
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("error = %v, want ErrInfeasible", err)
	}
	if errors.Is(err, ErrArgs) {
		t.Errorf("memory-cap infeasibility must not alias ErrArgs: %v", err)
	}
}

func TestPlanForInfeasibleWorkload(t *testing.T) {
	// More connections than even order 32 covers at a tight target: no
	// memory cap involved, still ErrInfeasible (not ErrArgs).
	_, err := PlanFor(PlanInput{
		ActiveConnections: 1e12,
		TargetPenetration: 0.001,
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("error = %v, want ErrInfeasible", err)
	}
}

func TestPlanForValidation(t *testing.T) {
	bad := []PlanInput{
		{ActiveConnections: 0, TargetPenetration: 0.05},
		{ActiveConnections: 100, TargetPenetration: 0},
		{ActiveConnections: 100, TargetPenetration: 1},
		{ActiveConnections: 100, TargetPenetration: 0.05,
			ExpiryTimer: time.Second, RotateEvery: 2 * time.Second},
	}
	for _, in := range bad {
		if _, err := PlanFor(in); !errors.Is(err, ErrArgs) {
			t.Errorf("input %+v: error = %v", in, err)
		}
	}
}

func TestPlanForCustomTimers(t *testing.T) {
	plan, err := PlanFor(PlanInput{
		ActiveConnections: 1000,
		TargetPenetration: 0.05,
		ExpiryTimer:       30 * time.Second,
		RotateEvery:       3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Vectors != 10 || plan.ExpiryTimer != 30*time.Second {
		t.Errorf("plan = %+v", plan)
	}
}

// Property: every feasible plan covers its workload at or under the target
// penetration (by Equation 2 with the plan's own m).
func TestPlanMeetsTargetProperty(t *testing.T) {
	fn := func(connsRaw uint32, pIdx uint8) bool {
		conns := float64(connsRaw%2_000_000 + 10)
		targets := []float64{0.10, 0.05, 0.01, 0.001}
		target := targets[int(pIdx)%len(targets)]
		plan, err := PlanFor(PlanInput{
			ActiveConnections: conns,
			TargetPenetration: target,
		})
		if err != nil {
			return false
		}
		return plan.MaxConnections >= conns &&
			plan.PredictedPenetration <= target*1.0000001
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
