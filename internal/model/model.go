// Package model implements the closed-form analysis of §4.1 and §5.2 of the
// paper, used both for the E4/E9 experiments and as an independent check on
// the simulator:
//
//	Eq. 1:  p = U^m
//	Eq. 2:  p ≈ (c·m / 2^n)^m
//	Eq. 3:  ∂p/∂m = (c·m/2^n)^m · (1 + ln(c·m/2^n))
//	Eq. 4:  m* = e⁻¹ · 2^n / c
//	Eq. 5:  c / 2^n ≤ −1 / (e · ln p)
//	§5.2:   ΔU ≈ m · r · T_e / 2^n  for an insider flooding at r tuples/s
package model

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrArgs is returned for out-of-domain parameters.
var ErrArgs = errors.New("model: invalid arguments")

// Bits returns 2^n, the size of one bit vector.
func Bits(order uint) float64 {
	return math.Pow(2, float64(order))
}

// MemoryBytes returns the bitmap footprint (k·2^n)/8 in bytes.
func MemoryBytes(order uint, k int) uint64 {
	return uint64(k) * (uint64(1) << order) / 8
}

// PenetrationFromUtilization is Equation 1: the probability that a random
// incoming tuple penetrates a filter whose current vector has utilization
// u, using m hash functions.
func PenetrationFromUtilization(u float64, m int) float64 {
	return math.Pow(u, float64(m))
}

// Penetration is Equation 2, the paper's low-utilization approximation:
// p ≈ (c·m / 2^n)^m for c active connections inside a time unit T_e.
func Penetration(c float64, m int, order uint) float64 {
	return math.Pow(c*float64(m)/Bits(order), float64(m))
}

// PenetrationExact is the standard Bloom form (1 − e^{−c·m/2^n})^m, which
// Equation 2 approximates when utilization is low.
func PenetrationExact(c float64, m int, order uint) float64 {
	return math.Pow(1-math.Exp(-c*float64(m)/Bits(order)), float64(m))
}

// PenetrationDerivative is Equation 3: ∂p/∂m of the Equation 2 model,
// evaluated at (c, m, n). Its zero gives the optimal m.
func PenetrationDerivative(c float64, m float64, order uint) float64 {
	x := c * m / Bits(order)
	return math.Pow(x, m) * (1 + math.Log(x))
}

// OptimalHashes is Equation 4: the real-valued m* = e⁻¹·2^n/c that
// minimizes Equation 2. An error is returned for non-positive c.
func OptimalHashes(c float64, order uint) (float64, error) {
	if c <= 0 {
		return 0, fmt.Errorf("%w: c=%v", ErrArgs, c)
	}
	return Bits(order) / (math.E * c), nil
}

// OptimalHashesInt rounds Equation 4 to a usable hash count, clamped to at
// least 1.
func OptimalHashesInt(c float64, order uint) (int, error) {
	m, err := OptimalHashes(c, order)
	if err != nil {
		return 0, err
	}
	mi := int(math.Round(m))
	if mi < 1 {
		mi = 1
	}
	return mi, nil
}

// MaxConnections is Equation 5: the largest number of active connections c
// inside a time unit T_e for which the minimal penetration probability
// stays at or below p, i.e. c ≤ 2^n · (−1 / (e·ln p)). An error is returned
// unless 0 < p < 1.
func MaxConnections(p float64, order uint) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("%w: p=%v", ErrArgs, p)
	}
	return Bits(order) * (-1 / (math.E * math.Log(p))), nil
}

// ExpiryTimer returns T_e = k·Δt.
func ExpiryTimer(k int, dt time.Duration) time.Duration {
	return time.Duration(k) * dt
}

// ExpiryBounds returns the guaranteed minimum and maximum lifetime of a
// mark: a tuple marked at time t is admitted for at least (k−1)·Δt and at
// most k·Δt seconds, depending on the phase of the rotation schedule.
func ExpiryBounds(k int, dt time.Duration) (min, max time.Duration) {
	return time.Duration(k-1) * dt, time.Duration(k) * dt
}

// InsiderUtilization is the §5.2 estimate of the bitmap utilization added
// by an insider flooding random outgoing tuples at rate r per second:
// ΔU ≈ m·r·T_e / 2^n, clamped to 1.
func InsiderUtilization(m int, ratePerSec float64, te time.Duration, order uint) float64 {
	u := float64(m) * ratePerSec * te.Seconds() / Bits(order)
	if u > 1 {
		return 1
	}
	if u < 0 {
		return 0
	}
	return u
}

// InsiderUtilizationExact is the collision-aware version of the §5.2
// estimate: U = 1 − e^{−m·r·T_e/2^n}.
func InsiderUtilizationExact(m int, ratePerSec float64, te time.Duration, order uint) float64 {
	return 1 - math.Exp(-float64(m)*ratePerSec*te.Seconds()/Bits(order))
}

// LogisticInfected is the closed-form solution of the random-scanning worm
// epidemic di/dt = s·i·(V−i)/Ω (the SI model of the worm literature the
// paper cites [6, 13, 21]): i(t) = V / (1 + (V/i0 − 1)·e^{−sVt/Ω}).
// It returns 0 if V or i0 is non-positive.
func LogisticInfected(t time.Duration, scanRate, vulnerable, infected0, space float64) float64 {
	if vulnerable <= 0 || infected0 <= 0 || space <= 0 {
		return 0
	}
	if infected0 > vulnerable {
		return vulnerable
	}
	exponent := -scanRate * vulnerable * t.Seconds() / space
	return vulnerable / (1 + (vulnerable/infected0-1)*math.Exp(exponent))
}

// CapacityRow is one row of the §4.1 capacity table.
type CapacityRow struct {
	// P is the target penetration probability.
	P float64
	// MaxConnections is the Equation 5 bound on active connections per
	// T_e.
	MaxConnections float64
}

// CapacityTable evaluates Equation 5 for each target probability, for the
// E4 experiment. Invalid probabilities propagate an error.
func CapacityTable(order uint, ps []float64) ([]CapacityRow, error) {
	rows := make([]CapacityRow, 0, len(ps))
	for _, p := range ps {
		c, err := MaxConnections(p, order)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CapacityRow{P: p, MaxConnections: c})
	}
	return rows, nil
}
