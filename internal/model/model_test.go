package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBitsAndMemory(t *testing.T) {
	if Bits(20) != 1048576 {
		t.Errorf("Bits(20) = %v", Bits(20))
	}
	// §4.1: k=4, n=20 → 512 KiB.
	if got := MemoryBytes(20, 4); got != 512*1024 {
		t.Errorf("MemoryBytes(20,4) = %d", got)
	}
	// Table 1: the 2.56M-connection configuration uses an 8 MB bitmap —
	// k=4, n=24 gives (4·2^24)/8 = 8 MiB.
	if got := MemoryBytes(24, 4); got != 8*1024*1024 {
		t.Errorf("MemoryBytes(24,4) = %d", got)
	}
}

func TestPenetrationFromUtilization(t *testing.T) {
	if got := PenetrationFromUtilization(0.5, 3); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("p = %v", got)
	}
	if got := PenetrationFromUtilization(0, 3); got != 0 {
		t.Errorf("p(0) = %v", got)
	}
	if got := PenetrationFromUtilization(1, 3); got != 1 {
		t.Errorf("p(1) = %v", got)
	}
}

func TestPenetrationApproximatesExactAtLowLoad(t *testing.T) {
	// At low utilization Equation 2 ≈ exact Bloom formula.
	approx := Penetration(1000, 3, 20)
	exact := PenetrationExact(1000, 3, 20)
	if math.Abs(approx-exact)/exact > 0.01 {
		t.Errorf("approx %v vs exact %v", approx, exact)
	}
}

func TestPenetrationMonotonic(t *testing.T) {
	if Penetration(1000, 3, 20) >= Penetration(10000, 3, 20) {
		t.Error("penetration not increasing in c")
	}
	if Penetration(1000, 3, 18) <= Penetration(1000, 3, 22) {
		t.Error("penetration not decreasing in n")
	}
}

// §4.1 worked example: n=20, k=4, Δt=5 s, T_e=20 s. Targets 10%, 5%, 1%
// give bounds of roughly 167K, 125K and 83K active connections, m*=3 for
// the observed 15K connections... m* for c=128K-ish is 3.
func TestCapacityTableMatchesPaper(t *testing.T) {
	rows, err := CapacityTable(20, []float64{0.10, 0.05, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	wants := []float64{167e3, 125e3, 83e3}
	for i, row := range rows {
		// The paper rounds loosely; accept ±5%.
		if math.Abs(row.MaxConnections-wants[i])/wants[i] > 0.05 {
			t.Errorf("p=%v: c = %v, paper says ~%v", row.P, row.MaxConnections, wants[i])
		}
	}
}

func TestCapacityTablePropagatesError(t *testing.T) {
	if _, err := CapacityTable(20, []float64{0.5, 1.5}); !errors.Is(err, ErrArgs) {
		t.Errorf("err = %v", err)
	}
}

func TestOptimalHashesPaperExample(t *testing.T) {
	// With the paper's trace (~15K active connections per T_e=20 s
	// window is the observed load; the sizing uses the p=5% bound of
	// ~125K connections), "the number of used hash functions m in the
	// setup can be 3": m* = e⁻¹·2^20/125000 ≈ 3.09.
	m, err := OptimalHashesInt(125000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 {
		t.Errorf("m* = %d, paper uses 3", m)
	}
}

func TestOptimalHashesValidation(t *testing.T) {
	if _, err := OptimalHashes(0, 20); !errors.Is(err, ErrArgs) {
		t.Errorf("c=0: %v", err)
	}
	if _, err := OptimalHashesInt(-5, 20); !errors.Is(err, ErrArgs) {
		t.Errorf("c<0: %v", err)
	}
	// Enormous c clamps to 1.
	m, err := OptimalHashesInt(1e12, 20)
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Errorf("clamped m = %d", m)
	}
}

func TestOptimalHashesMinimizesEquation2(t *testing.T) {
	// p(m*) must be ≤ p(m*±1) under the Equation 2 model.
	for _, c := range []float64{50e3, 125e3, 300e3} {
		mStar, err := OptimalHashes(c, 20)
		if err != nil {
			t.Fatal(err)
		}
		pAt := func(m float64) float64 {
			return math.Pow(c*m/Bits(20), m)
		}
		if pAt(mStar) > pAt(mStar*0.8) || pAt(mStar) > pAt(mStar*1.2) {
			t.Errorf("c=%v: p(m*)=%v not a minimum (%v, %v)",
				c, pAt(mStar), pAt(mStar*0.8), pAt(mStar*1.2))
		}
	}
}

func TestDerivativeZeroAtOptimum(t *testing.T) {
	f := func(cRaw uint32) bool {
		c := float64(cRaw%1000000 + 1000)
		mStar, err := OptimalHashes(c, 20)
		if err != nil {
			return false
		}
		// At m*, c·m*/2^n = 1/e so 1 + ln(1/e) = 0.
		d := PenetrationDerivative(c, mStar, 20)
		return math.Abs(d) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxConnectionsValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := MaxConnections(p, 20); !errors.Is(err, ErrArgs) {
			t.Errorf("p=%v: err = %v", p, err)
		}
	}
}

func TestMaxConnectionsInverseOfPenetration(t *testing.T) {
	// Plugging c = MaxConnections(p) with m = OptimalHashes(c) back into
	// Equation 2 must recover p.
	for _, p := range []float64{0.1, 0.05, 0.01} {
		c, err := MaxConnections(p, 20)
		if err != nil {
			t.Fatal(err)
		}
		mStar, err := OptimalHashes(c, 20)
		if err != nil {
			t.Fatal(err)
		}
		got := math.Pow(c*mStar/Bits(20), mStar)
		if math.Abs(got-p)/p > 1e-9 {
			t.Errorf("p=%v: round trip gives %v", p, got)
		}
	}
}

func TestExpiryTimerAndBounds(t *testing.T) {
	if got := ExpiryTimer(4, 5*time.Second); got != 20*time.Second {
		t.Errorf("T_e = %v", got)
	}
	lo, hi := ExpiryBounds(4, 5*time.Second)
	if lo != 15*time.Second || hi != 20*time.Second {
		t.Errorf("bounds = %v, %v", lo, hi)
	}
}

func TestInsiderUtilization(t *testing.T) {
	// §5.2: ΔU ≈ m·r·T_e/2^n. m=3, r=10000/s, T_e=20s, n=20:
	// 3·10000·20/1048576 ≈ 0.572.
	got := InsiderUtilization(3, 10000, 20*time.Second, 20)
	if math.Abs(got-0.5722) > 0.001 {
		t.Errorf("ΔU = %v", got)
	}
	// Clamps.
	if InsiderUtilization(3, 1e9, 20*time.Second, 20) != 1 {
		t.Error("no clamp at 1")
	}
	if InsiderUtilization(3, -5, 20*time.Second, 20) != 0 {
		t.Error("no clamp at 0")
	}
}

func TestInsiderUtilizationExactBelowLinear(t *testing.T) {
	// The exact form accounts for collisions so it is always ≤ the
	// linear estimate, converging at low rates.
	for _, r := range []float64{100, 1000, 10000, 100000} {
		lin := InsiderUtilization(3, r, 20*time.Second, 20)
		exact := InsiderUtilizationExact(3, r, 20*time.Second, 20)
		if exact > lin+1e-12 {
			t.Errorf("r=%v: exact %v > linear %v", r, exact, lin)
		}
	}
	lin := InsiderUtilization(3, 50, 20*time.Second, 20)
	exact := InsiderUtilizationExact(3, 50, 20*time.Second, 20)
	if math.Abs(lin-exact)/lin > 0.01 {
		t.Errorf("low rate: linear %v vs exact %v", lin, exact)
	}
}

func TestLogisticInfected(t *testing.T) {
	const (
		scanRate   = 50.0
		vulnerable = 5000.0
		infected0  = 10.0
		space      = 1 << 24
	)
	// At t=0: exactly i0.
	if got := LogisticInfected(0, scanRate, vulnerable, infected0, space); math.Abs(got-infected0) > 1e-9 {
		t.Errorf("i(0) = %v", got)
	}
	// Monotone growth toward V.
	prev := 0.0
	for _, ts := range []time.Duration{0, time.Minute, 5 * time.Minute, time.Hour} {
		got := LogisticInfected(ts, scanRate, vulnerable, infected0, space)
		if got < prev {
			t.Errorf("i(%v) = %v decreased", ts, got)
		}
		if got > vulnerable {
			t.Errorf("i(%v) = %v exceeds V", ts, got)
		}
		prev = got
	}
	// Saturation in the long run.
	if got := LogisticInfected(24*time.Hour, scanRate, vulnerable, infected0, space); got < vulnerable*0.999 {
		t.Errorf("i(24h) = %v, want ~V", got)
	}
	// Degenerate inputs.
	if LogisticInfected(time.Hour, scanRate, 0, infected0, space) != 0 {
		t.Error("V=0 not zero")
	}
	if LogisticInfected(time.Hour, scanRate, vulnerable, 0, space) != 0 {
		t.Error("i0=0 not zero")
	}
	if LogisticInfected(time.Hour, scanRate, 10, 20, space) != 10 {
		t.Error("i0>V not clamped")
	}
}

// Shrinking the vector (smaller n) must raise penetration for the same
// load, the trade-off §3.4 discusses.
func TestSmallerVectorRaisesPenetrationProperty(t *testing.T) {
	f := func(cRaw uint16) bool {
		c := float64(cRaw) + 100
		return Penetration(c, 3, 16) >= Penetration(c, 3, 18)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
