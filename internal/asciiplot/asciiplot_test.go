package asciiplot

import (
	"strings"
	"testing"
)

func TestBarsBasic(t *testing.T) {
	out := Bars([]string{"a", "bb"}, []float64{10, 5}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[0], "10") || !strings.Contains(lines[1], "5") {
		t.Error("values not annotated")
	}
}

func TestBarsNonzeroAlwaysVisible(t *testing.T) {
	out := Bars([]string{"big", "tiny"}, []float64{1e6, 1}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Errorf("tiny nonzero value invisible: %q", lines[1])
	}
}

func TestBarsDegenerate(t *testing.T) {
	if Bars(nil, nil, 10) != "" {
		t.Error("empty input produced output")
	}
	if Bars([]string{"a"}, []float64{1, 2}, 10) != "" {
		t.Error("length mismatch produced output")
	}
	if out := Bars([]string{"z"}, []float64{0}, 10); !strings.Contains(out, "z") {
		t.Error("all-zero bars dropped the label")
	}
	// Default width kicks in for non-positive widths.
	if Bars([]string{"a"}, []float64{1}, -1) == "" {
		t.Error("negative width produced no output")
	}
}

func TestScatterPlacesPoints(t *testing.T) {
	// Two points at the extremes of a common 0..1 scale.
	out := Scatter([]float64{0, 1}, []float64{0, 1}, 20, 10)
	if out == "" {
		t.Fatal("empty output")
	}
	rows := strings.Split(out, "\n")
	// Row 1 is the top of the grid (after the header line): the (1,1)
	// point lands in the top-right; (0,0) in the bottom-left.
	top := rows[1]
	bottom := rows[10]
	if top[len(top)-1] != 'o' {
		t.Errorf("top-right corner = %q", top)
	}
	if bottom[1] != 'o' {
		t.Errorf("bottom-left corner = %q", bottom)
	}
	// Identity line is drawn.
	if !strings.Contains(out, ".") {
		t.Error("no identity line")
	}
	if !strings.Contains(out, "x: 0..1") {
		t.Errorf("axis annotation missing:\n%s", out)
	}
}

func TestScatterDegenerate(t *testing.T) {
	if Scatter(nil, nil, 10, 10) != "" {
		t.Error("empty scatter produced output")
	}
	if Scatter([]float64{1}, []float64{1, 2}, 10, 10) != "" {
		t.Error("mismatched scatter produced output")
	}
	// A single point (zero range) must not divide by zero.
	if out := Scatter([]float64{0.5}, []float64{0.5}, 10, 5); out == "" {
		t.Error("single-point scatter empty")
	}
}

func TestLinesRendersSeries(t *testing.T) {
	normal := []float64{1, 1, 1, 1}
	attack := []float64{0, 0, 10, 10}
	out := Lines([]string{"normal", "attack"}, [][]float64{normal, attack}, 4, 8)
	if out == "" {
		t.Fatal("empty output")
	}
	if !strings.Contains(out, "n=normal") || !strings.Contains(out, "a=attack") {
		t.Error("legend missing")
	}
	rows := strings.Split(out, "\n")
	// The attack series reaches the top row in its second half.
	top := rows[1]
	if !strings.Contains(top, "a") {
		t.Errorf("attack peak not at top: %q", top)
	}
	// The normal series sits near the bottom (1/10 of max).
	found := false
	for _, r := range rows[len(rows)-4:] {
		if strings.Contains(r, "n") {
			found = true
		}
	}
	if !found {
		t.Errorf("normal series not near bottom:\n%s", out)
	}
}

func TestLinesDegenerate(t *testing.T) {
	if Lines(nil, nil, 10, 10) != "" {
		t.Error("empty lines produced output")
	}
	if Lines([]string{"a"}, [][]float64{}, 10, 10) != "" {
		t.Error("mismatch produced output")
	}
	if Lines([]string{"a"}, [][]float64{{}}, 10, 10) != "" {
		t.Error("all-empty series produced output")
	}
	// All-zero series must not divide by zero.
	if out := Lines([]string{"z"}, [][]float64{{0, 0}}, 2, 4); out == "" {
		t.Error("zero series empty output")
	}
}
