// Package asciiplot renders the small terminal charts the cmd/ tools use
// to display reproduced figures: horizontal bar charts (histograms),
// scatter plots (Figure 4) and multi-series line charts (Figure 5-a).
// Output is plain ASCII so it survives logs and CI transcripts.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Bars renders one labeled horizontal bar per value, scaled to maxWidth
// characters. Non-positive widths default to 50. Returns "" for empty
// input.
func Bars(labels []string, values []float64, maxWidth int) string {
	if len(labels) == 0 || len(labels) != len(values) {
		return ""
	}
	if maxWidth <= 0 {
		maxWidth = 50
	}
	maxVal := 0.0
	labelWidth := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxVal > 0 && v > 0 {
			n = int(math.Round(v / maxVal * float64(maxWidth)))
			if n == 0 {
				n = 1 // visible trace for any nonzero value
			}
		}
		fmt.Fprintf(&b, "%-*s |%s %g\n", labelWidth, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// Scatter renders (x, y) points on a width×height grid with axis ranges
// annotated, plus an identity line when the ranges overlap (the Figure 4
// "gray-dashed line has a slope of 1.0"). Returns "" for empty input.
func Scatter(xs, ys []float64, width, height int) string {
	if len(xs) == 0 || len(xs) != len(ys) {
		return ""
	}
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 20
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	// Common scale makes the identity line meaningful.
	lo := math.Min(minX, minY)
	hi := math.Max(maxX, maxY)
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	place := func(x, y float64, ch byte) {
		c := int((x - lo) / (hi - lo) * float64(width-1))
		r := height - 1 - int((y-lo)/(hi-lo)*float64(height-1))
		if c >= 0 && c < width && r >= 0 && r < height {
			grid[r][c] = ch
		}
	}
	// Identity line first so points overwrite it.
	steps := width
	for i := 0; i <= steps; i++ {
		v := lo + (hi-lo)*float64(i)/float64(steps)
		place(v, v, '.')
	}
	for i := range xs {
		place(xs[i], ys[i], 'o')
	}

	var b strings.Builder
	fmt.Fprintf(&b, "y: %.4g..%.4g ('o' points, '.' identity)\n", lo, hi)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "x: %.4g..%.4g\n", lo, hi)
	return b.String()
}

// Lines renders multiple aligned series as a character chart; each series
// gets the marker of its name's first byte. Series may differ in scale —
// everything is normalized to the global maximum. Returns "" for empty
// input.
func Lines(names []string, series [][]float64, width, height int) string {
	if len(series) == 0 || len(names) != len(series) {
		return ""
	}
	n := 0
	maxVal := 0.0
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
		for _, v := range s {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if n == 0 {
		return ""
	}
	if width <= 0 || width > n {
		width = n
	}
	if height <= 0 {
		height = 16
	}
	if maxVal == 0 {
		maxVal = 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := byte('?')
		if len(names[si]) > 0 {
			marker = names[si][0]
		}
		for c := 0; c < width; c++ {
			idx := c * len(s) / width
			if idx >= len(s) {
				continue
			}
			r := height - 1 - int(s[idx]/maxVal*float64(height-1))
			if r >= 0 && r < height {
				grid[r][c] = marker
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "max=%.4g series:", maxVal)
	for _, name := range names {
		fmt.Fprintf(&b, " %c=%s", name[0], name)
	}
	b.WriteByte('\n')
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	return b.String()
}

func minMax(vals []float64) (lo, hi float64) {
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
