package core

import (
	"fmt"
	"time"
)

// The unified builder: one constructor surface for every filter flavor.
//
// The package grew four parallel entry points (New, NewSafe(New(...)),
// NewSharded(shards, opts...), live.New(inner, liveOpts...)) with two
// option types. Build collapses them: flavor selectors (WithShards,
// WithConcurrencySafe, WithLiveClock) are ordinary Options riding in the
// same slice as the parameter options, so one option bundle describes a
// complete deployment and can be stored, serialized alongside
// configuration, or applied per tenant by a TenantSet. Build composes the
// core flavors (Filter, Safe, Sharded); the root package's Build
// additionally wraps the result in the wall-clock adapter when
// WithLiveClock is present (the adapter lives in internal/live, which
// imports this package — the dependency cannot point the other way).
//
// The old constructors remain as thin wrappers; nothing breaks.

// Clock abstracts a wall-time source. It is consumed by the live adapter
// (internal/live aliases it) and carried through WithLiveClock; core
// itself never reads it — everything here stays virtual-time.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// buildConfig is the flavor-selection slice of config, set only by the
// builder options below. New rejects configurations that carry flavor
// requests — flavors are composed by Build, not by the single-filter
// constructor.
type buildConfig struct {
	shards int
	safe   bool
	live   bool
	clock  Clock
}

type shardsOption int

func (o shardsOption) apply(c *config) { c.build.shards = int(o) }

// WithShards requests the sharded flavor with the given shard count
// (rounded up to a power of two, exactly as NewSharded does). Only Build
// honors it; New returns ErrConfig when it is present.
func WithShards(n int) Option { return shardsOption(n) }

type safeOption struct{}

func (safeOption) apply(c *config) { c.build.safe = true }

// WithConcurrencySafe requests a goroutine-safe filter: Build wraps the
// single filter in Safe. It is implied (and ignored) for the sharded
// flavor, whose shards are individually locked already.
func WithConcurrencySafe() Option { return safeOption{} }

type liveClockOption struct{ c Clock }

func (o liveClockOption) apply(c *config) { c.build.live = true; c.build.clock = o.c }

// WithLiveClock requests the wall-clock adapter around the composed
// filter, driven by c (nil selects the real clock). Only the root
// package's Build honors it — the adapter lives above this package;
// core.Build returns ErrConfig when it is present, as does New.
func WithLiveClock(c Clock) Option { return liveClockOption{c: c} }

// clearFlavorOption strips the flavor requests from a config so the
// per-flavor constructors (which Build delegates to, forwarding the full
// option slice) do not trip New's flavor validation.
type clearFlavorOption struct{}

func (clearFlavorOption) apply(c *config) { c.build = buildConfig{} }

// clearLiveOption cancels a WithLiveClock request while leaving the other
// flavor selections intact.
type clearLiveOption struct{}

func (clearLiveOption) apply(c *config) { c.build.live = false; c.build.clock = nil }

// ClearLive returns an option that cancels a WithLiveClock request.
// Layered builders (the root package's Build) use it to compose the core
// flavors here and then wrap the result in the wall-clock adapter
// themselves.
func ClearLive() Option { return clearLiveOption{} }

// BuildPlan is the resolved flavor selection of an option bundle,
// returned by PlanBuild so layered builders (the root package, the
// tenant data plane) can compose the parts core cannot reach.
type BuildPlan struct {
	// Shards is the requested shard count; 0 means unsharded.
	Shards int
	// Safe reports a WithConcurrencySafe request.
	Safe bool
	// Live reports a WithLiveClock request; Clock is its time source
	// (nil selects the real clock).
	Live  bool
	Clock Clock
}

// PlanBuild resolves the flavor selection of an option bundle without
// constructing anything. Parameter validation still happens in Build.
func PlanBuild(opts ...Option) BuildPlan {
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	return BuildPlan{
		Shards: cfg.build.shards,
		Safe:   cfg.build.safe,
		Live:   cfg.build.live,
		Clock:  cfg.build.clock,
	}
}

// Build composes the core filter flavor an option bundle describes:
//
//	WithShards(n)          -> *Sharded (n rounded up to a power of two)
//	WithConcurrencySafe()  -> *Safe
//	neither                -> *Filter
//
// All other options configure the underlying filter(s) exactly as they
// do for New/NewSharded. WithLiveClock is rejected here — wall-clock
// wrapping happens above core; use the root package's Build for that.
func Build(opts ...Option) (Snapshottable, error) {
	plan := PlanBuild(opts...)
	if plan.Live {
		return nil, fmt.Errorf("%w: WithLiveClock requires the root builder (core flavors are virtual-time)", ErrConfig)
	}
	// The forwarded slice keeps the caller's options (the per-flavor
	// constructors re-apply them, e.g. per shard) with the flavor
	// requests stripped so New's validation passes.
	inner := make([]Option, 0, len(opts)+1)
	inner = append(append(inner, opts...), clearFlavorOption{})
	switch {
	case plan.Shards != 0:
		return NewSharded(plan.Shards, inner...)
	case plan.Safe:
		f, err := New(inner...)
		if err != nil {
			return nil, err
		}
		return NewSafe(f), nil
	default:
		return New(inner...)
	}
}
