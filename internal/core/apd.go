package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bitmapfilter/internal/packet"
)

// Adaptive packet dropping (APD, §5.3). When the bitmap filter is deployed
// purely against bandwidth attacks, unmatched incoming packets need not all
// be dropped: an APD-enabled filter drops them with a probability derived
// from an indicator of how stressed the link is. The paper gives two
// indicator designs, both implemented here:
//
//  1. Bandwidth utilization: drop with probability U_b, the monitored
//     utilization of the protected link.
//  2. In/out packet ratio: with thresholds l < h and r = P_in / P_out, drop
//     with probability 0 below l, (r−l)/(h−l) between, and 1 at or above h.

// ErrPolicyConfig is returned for invalid APD policy parameters.
var ErrPolicyConfig = errors.New("core: invalid APD policy configuration")

// DropPolicy computes the probability with which a should-be-dropped
// incoming packet is actually dropped.
type DropPolicy interface {
	// Observe feeds traffic to the policy so it can maintain its
	// indicator. The filter calls it for every outgoing packet and for
	// every ADMITTED incoming packet; incoming packets the filter drops
	// are deliberately not observed. The §5.3 indicators estimate the
	// load on the protected downstream link, and a dropped packet never
	// reaches that link — counting it would inflate U_b (and the in/out
	// ratio) under exactly the floods APD is meant to ride out, driving
	// the drop probability to 1 even though the link itself is idle.
	Observe(pkt packet.Packet)
	// DropProbability returns the current drop probability in [0, 1].
	DropProbability(now time.Duration) float64
	// Name identifies the policy in reports.
	Name() string
}

// PolicyResetter is an optional extension of DropPolicy. Policies that
// accumulate windowed state implement Reset so Filter.Reset can flush
// pre-incident traffic out of the indicator along with the bitmap; both
// built-in policies implement it.
type PolicyResetter interface {
	// Reset discards all accumulated indicator state.
	Reset()
}

// PolicyCloner is an optional extension of DropPolicy. ClonePolicy returns
// an independent policy with the same configuration and fresh (empty)
// indicator state. NewSharded relies on it: every shard receives its own
// clone, so independently locked shards never share mutable sliding-window
// state. A policy that accumulates state (PolicyResetter) but cannot clone
// is rejected by NewSharded with ErrConfig. Both built-in policies
// implement it.
type PolicyCloner interface {
	// ClonePolicy returns a configuration-identical policy with zeroed
	// indicator state.
	ClonePolicy() DropPolicy
}

// PolicyShardScaler is an optional extension of DropPolicy for indicators
// whose magnitude depends on how much of the traffic they observe.
// NewSharded calls ScaleForShards(S) on every per-shard clone: the
// flow-key routing spreads flows ~uniformly, so one shard sees a 1/S
// partition of the load. BandwidthPolicy implements it by dividing the
// link capacity by S, which keeps the per-shard U_b an estimator of the
// global utilization; RatioPolicy needs no scaling because the in/out
// ratio of a uniform partition already estimates the global ratio.
type PolicyShardScaler interface {
	// ScaleForShards rescales the indicator for a filter partitioned
	// into the given number of shards.
	ScaleForShards(shards int)
}

// slidingCounter accumulates values over a sliding time window using a ring
// of sub-buckets, giving O(1) updates and queries on a virtual clock.
type slidingCounter struct {
	buckets []float64
	width   time.Duration // width of one bucket
	head    int           // bucket holding the newest samples
	headEnd time.Duration // exclusive end time of the head bucket
}

func newSlidingCounter(window time.Duration, buckets int) slidingCounter {
	if buckets < 1 {
		// Zero would divide by zero below; negative would panic in make.
		// The policy constructors validate their bucket counts, but the
		// primitive must be safe standing alone.
		buckets = 1
	}
	width := window / time.Duration(buckets)
	if width <= 0 {
		// A sub-bucket window would make advance spin forever on
		// headEnd += 0. The policy constructors reject such windows;
		// clamp here too so the primitive is safe on its own.
		width = 1
	}
	return slidingCounter{
		buckets: make([]float64, buckets),
		width:   width,
		headEnd: width,
	}
}

// maxDuration is the largest representable timestamp. A counter whose head
// bucket has been saturated to this horizon stays frozen there: every later
// timestamp already falls inside it.
const maxDuration = time.Duration(math.MaxInt64)

// advance rolls the ring forward so that now falls inside the head bucket.
// An idle gap spanning the whole window fast-forwards in O(buckets)
// instead of looping once per elapsed bucket width — without this, the
// first packet after a multi-hour quiet period on a 1 s window would pay
// millions of iterations.
func (s *slidingCounter) advance(now time.Duration) {
	if now < s.headEnd || s.headEnd == maxDuration {
		return
	}
	if now-s.headEnd >= s.window() {
		// Every bucket would be zeroed on the way; jump the head in
		// one modular step. steps is computed in bucket widths so the
		// head lands exactly where the loop would leave it, but headEnd
		// is rebased from now rather than stepped forward — for a jump
		// near the int64 horizon, steps*width wraps negative and would
		// poison every later advance.
		steps := (now-s.headEnd)/s.width + 1
		clear(s.buckets)
		s.head = (s.head + int(steps%time.Duration(len(s.buckets)))) % len(s.buckets)
		s.headEnd = gridAbove(now, s.width)
		return
	}
	for s.headEnd <= now {
		s.head = (s.head + 1) % len(s.buckets)
		s.buckets[s.head] = 0
		if s.headEnd > maxDuration-s.width {
			s.headEnd = maxDuration
			return
		}
		s.headEnd += s.width
	}
}

// gridAbove returns the smallest multiple of width strictly greater than
// now — the bucket-grid point the incremental loop would reach — saturating
// at maxDuration instead of overflowing.
func gridAbove(now, width time.Duration) time.Duration {
	base := now - now%width
	if base > maxDuration-width {
		return maxDuration
	}
	return base + width
}

func (s *slidingCounter) add(now time.Duration, v float64) {
	s.advance(now)
	s.buckets[s.head] += v
}

func (s *slidingCounter) sum(now time.Duration) float64 {
	s.advance(now)
	var total float64
	for _, b := range s.buckets {
		total += b
	}
	return total
}

// window returns the total time span covered by the counter.
func (s *slidingCounter) window() time.Duration {
	return s.width * time.Duration(len(s.buckets))
}

// reset discards all samples and restarts the ring at the time origin.
func (s *slidingCounter) reset() {
	clear(s.buckets)
	s.head = 0
	s.headEnd = s.width
}

const apdBuckets = 10

// minPolicyWindow is the smallest accepted indicator window: one
// nanosecond per sub-bucket. Anything shorter would collapse the bucket
// width to zero.
const minPolicyWindow = apdBuckets * time.Nanosecond

// BandwidthPolicy is APD design 1: the edge router monitors the bandwidth
// utilization U_b of the protected link and drops unmatched packets with
// probability U_b.
type BandwidthPolicy struct {
	capacityBits float64 // link capacity in bits/second
	bytes        slidingCounter
}

var (
	_ DropPolicy        = (*BandwidthPolicy)(nil)
	_ PolicyResetter    = (*BandwidthPolicy)(nil)
	_ PolicyCloner      = (*BandwidthPolicy)(nil)
	_ PolicyShardScaler = (*BandwidthPolicy)(nil)
)

// NewBandwidthPolicy returns a bandwidth-utilization policy for a link of
// the given capacity in bits per second, averaged over the given window.
func NewBandwidthPolicy(capacityBitsPerSec float64, window time.Duration) (*BandwidthPolicy, error) {
	if capacityBitsPerSec <= 0 {
		return nil, fmt.Errorf("%w: capacity %v", ErrPolicyConfig, capacityBitsPerSec)
	}
	if window < minPolicyWindow {
		return nil, fmt.Errorf("%w: window %v shorter than %v", ErrPolicyConfig, window, minPolicyWindow)
	}
	return &BandwidthPolicy{
		capacityBits: capacityBitsPerSec,
		bytes:        newSlidingCounter(window, apdBuckets),
	}, nil
}

// Name implements DropPolicy.
func (p *BandwidthPolicy) Name() string { return "apd-bandwidth" }

// Observe implements DropPolicy: incoming bytes count against the link.
// The filter only feeds it admitted incoming packets (see the DropPolicy
// contract), so U_b measures what the downstream link actually carries.
func (p *BandwidthPolicy) Observe(pkt packet.Packet) {
	if pkt.Dir == packet.Incoming {
		p.bytes.add(pkt.Time, float64(pkt.Length))
	}
}

// Reset implements PolicyResetter: it discards the byte window.
func (p *BandwidthPolicy) Reset() { p.bytes.reset() }

// ClonePolicy implements PolicyCloner: the clone measures the same link
// capacity over the same window, starting from an empty byte window.
func (p *BandwidthPolicy) ClonePolicy() DropPolicy {
	return &BandwidthPolicy{
		capacityBits: p.capacityBits,
		bytes:        newSlidingCounter(p.bytes.window(), len(p.bytes.buckets)),
	}
}

// ScaleForShards implements PolicyShardScaler: a shard observes a 1/S
// partition of the flows, so it measures its bytes against 1/S of the link
// capacity. The per-shard U_b then estimates the global utilization, and
// the mean across shards equals exactly the U_b one unsharded policy would
// compute from the combined traffic (before the per-shard clamp at 1).
func (p *BandwidthPolicy) ScaleForShards(shards int) {
	p.capacityBits /= float64(shards)
}

// Capacity returns the link capacity in bits per second the policy
// measures against. Per-shard clones report their 1/S share.
func (p *BandwidthPolicy) Capacity() float64 { return p.capacityBits }

// Utilization returns U_b, the observed fraction of link capacity in use.
func (p *BandwidthPolicy) Utilization(now time.Duration) float64 {
	bits := p.bytes.sum(now) * 8
	u := bits / (p.capacityBits * p.bytes.window().Seconds())
	if u > 1 {
		u = 1
	}
	return u
}

// DropProbability implements DropPolicy: probability U_b.
func (p *BandwidthPolicy) DropProbability(now time.Duration) float64 {
	return p.Utilization(now)
}

// RatioPolicy is APD design 2: the indicator is r = P_in / P_out over a
// window, with drop probability 0 for r < l, (r−l)/(h−l) for l ≤ r < h and
// 1 for r ≥ h.
type RatioPolicy struct {
	low, high float64
	in, out   slidingCounter
}

var (
	_ DropPolicy     = (*RatioPolicy)(nil)
	_ PolicyResetter = (*RatioPolicy)(nil)
	_ PolicyCloner   = (*RatioPolicy)(nil)
)

// NewRatioPolicy returns an in/out-ratio policy with thresholds l < h over
// the given window.
func NewRatioPolicy(low, high float64, window time.Duration) (*RatioPolicy, error) {
	if low < 0 || high <= low {
		return nil, fmt.Errorf("%w: thresholds l=%v h=%v", ErrPolicyConfig, low, high)
	}
	if window < minPolicyWindow {
		return nil, fmt.Errorf("%w: window %v shorter than %v", ErrPolicyConfig, window, minPolicyWindow)
	}
	return &RatioPolicy{
		low:  low,
		high: high,
		in:   newSlidingCounter(window, apdBuckets),
		out:  newSlidingCounter(window, apdBuckets),
	}, nil
}

// Name implements DropPolicy.
func (p *RatioPolicy) Name() string { return "apd-ratio" }

// Observe implements DropPolicy.
func (p *RatioPolicy) Observe(pkt packet.Packet) {
	if pkt.Dir == packet.Incoming {
		p.in.add(pkt.Time, 1)
	} else {
		p.out.add(pkt.Time, 1)
	}
}

// Reset implements PolicyResetter: it discards both packet-count windows.
func (p *RatioPolicy) Reset() {
	p.in.reset()
	p.out.reset()
}

// ClonePolicy implements PolicyCloner: same thresholds and window, empty
// packet-count windows. No PolicyShardScaler is needed: routing keeps a
// flow's in and out packets in the same shard, so a shard's in/out ratio
// over its 1/S flow partition estimates the global ratio unchanged.
func (p *RatioPolicy) ClonePolicy() DropPolicy {
	return &RatioPolicy{
		low:  p.low,
		high: p.high,
		in:   newSlidingCounter(p.in.window(), len(p.in.buckets)),
		out:  newSlidingCounter(p.out.window(), len(p.out.buckets)),
	}
}

// Ratio returns r = P_in / P_out over the window. With no outgoing traffic
// the ratio is treated as +inf (mapped to the high threshold) as soon as
// any incoming traffic exists.
func (p *RatioPolicy) Ratio(now time.Duration) float64 {
	in := p.in.sum(now)
	out := p.out.sum(now)
	if out == 0 {
		if in == 0 {
			return 0
		}
		return p.high
	}
	return in / out
}

// DropProbability implements DropPolicy.
func (p *RatioPolicy) DropProbability(now time.Duration) float64 {
	r := p.Ratio(now)
	switch {
	case r < p.low:
		return 0
	case r >= p.high:
		return 1
	default:
		return (r - p.low) / (p.high - p.low)
	}
}
