package core

import (
	"fmt"
	"sync"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/hashfam"
	"bitmapfilter/internal/packet"
)

// Sharded partitions one logical bitmap filter across S independent
// locked shards so a multi-queue edge router scales across cores without a
// global lock. Table 1 notes hardware acceleration of the bitmap is
// "easy"; sharding is the software equivalent.
//
// Correctness: packets are routed to shards by the same partial-tuple key
// the bitmap hashes, and that key is — by the §3.3 symmetry — identical
// for an outgoing packet and its replies. A flow's marks and lookups
// therefore always meet in the same shard, and the composite behaves
// exactly like a single filter of the same total memory (each shard gets
// the configured order, so total memory is S × the single-filter size —
// size shards accordingly).
type Sharded struct {
	shards []*Safe
	router *hashfam.Family
	mask   uint64
}

var _ filtering.BatchFilter = (*Sharded)(nil)

// NewSharded builds a filter with the given shard count (rounded up to a
// power of two). Options apply to every shard; WithSeed is perturbed per
// shard so the shards' hash families are independent.
//
// WithAPD caveat: a DropPolicy instance carries mutable sliding-window
// state and is copied by reference into every shard, but shard locks are
// independent — concurrent shards would race on it, and shard-grouped
// batches would observe traffic in a different global order than
// per-packet processing. Until per-shard policy cloning exists, attach APD
// to a Safe filter instead of a Sharded one.
func NewSharded(shardCount int, opts ...Option) (*Sharded, error) {
	if shardCount < 1 {
		return nil, fmt.Errorf("%w: shards=%d", ErrConfig, shardCount)
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	s := &Sharded{
		shards: make([]*Safe, n),
		router: hashfam.MustNew(1, 0x5ead5ead),
		mask:   uint64(n - 1),
	}
	for i := range s.shards {
		f, err := New(append(append([]Option(nil), opts...),
			withSeedPerturbation(uint64(i)))...)
		if err != nil {
			return nil, err
		}
		s.shards[i] = NewSafe(f)
	}
	return s, nil
}

// withSeedPerturbation derives a per-shard seed on top of whatever seed
// the caller configured.
type seedPerturbOption uint64

func (o seedPerturbOption) apply(c *config) {
	c.seed ^= uint64(o) * 0x9e3779b97f4a7c15
}

func withSeedPerturbation(i uint64) Option { return seedPerturbOption(i) }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Name implements filtering.PacketFilter.
func (s *Sharded) Name() string {
	return fmt.Sprintf("sharded{%d x %s}", len(s.shards), s.shards[0].Name())
}

// MemoryBytes implements filtering.PacketFilter (sum over shards).
func (s *Sharded) MemoryBytes() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.MemoryBytes()
	}
	return total
}

// Counters implements filtering.PacketFilter (sum over shards).
func (s *Sharded) Counters() filtering.Counters {
	var total filtering.Counters
	for _, sh := range s.shards {
		c := sh.Counters()
		total.OutPackets += c.OutPackets
		total.InPackets += c.InPackets
		total.InPassed += c.InPassed
		total.InDropped += c.InDropped
	}
	return total
}

// AdvanceTo implements filtering.PacketFilter.
func (s *Sharded) AdvanceTo(now time.Duration) {
	for _, sh := range s.shards {
		sh.AdvanceTo(now)
	}
}

// Process implements filtering.PacketFilter: the packet is handled
// entirely by the shard its flow key routes to.
func (s *Sharded) Process(pkt packet.Packet) filtering.Verdict {
	return s.shards[s.shardFor(pkt)].Process(pkt)
}

// shardScratch holds the per-batch grouping buffers. Pooled so a steady
// stream of ProcessBatch calls allocates only the returned verdict slice.
type shardScratch struct {
	shardOf    []uint32
	starts     []int
	next       []int
	grouped    []packet.Packet
	perm       []int32
	groupedOut []filtering.Verdict
}

var shardScratchPool = sync.Pool{New: func() any { return new(shardScratch) }}

// scratchSlice resizes s to n elements, reallocating only on growth. The
// contents are unspecified; callers overwrite every element they read.
func scratchSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ProcessBatch routes every packet in pkts to its shard, runs one locked
// batch per shard, and returns the verdicts in input order. Packets that
// share a shard keep their relative order, so the result is identical to
// calling Process per packet — each shard sees the exact packet sequence
// (and draws the same APD coin flips) it would see sequentially — while a
// batch pays one lock acquisition per touched shard instead of one per
// packet.
func (s *Sharded) ProcessBatch(pkts []packet.Packet) []filtering.Verdict {
	if len(pkts) == 0 {
		return nil
	}
	out := make([]filtering.Verdict, len(pkts))
	s.processBatchInto(pkts, out)
	return out
}

// ProcessBatchInto is ProcessBatch writing into a caller-provided buffer
// (see the filtering.BatchFilter contract). Together with the pooled
// grouping scratch this makes a steady-state batch stream allocation-free.
func (s *Sharded) ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	out = filtering.GrowVerdicts(out, len(pkts))
	s.processBatchInto(pkts, out)
	return out
}

// processBatchInto fills out (same length as pkts) with one locked batch
// per touched shard.
func (s *Sharded) processBatchInto(pkts []packet.Packet, out []filtering.Verdict) {
	if len(s.shards) == 1 {
		s.shards[0].processBatchInto(pkts, out)
		return
	}

	// Counting sort by shard: stable, O(len(pkts) + shards), and the
	// routing hash is computed once per packet.
	sc := shardScratchPool.Get().(*shardScratch)
	sc.shardOf = scratchSlice(sc.shardOf, len(pkts))
	sc.starts = scratchSlice(sc.starts, len(s.shards)+1)
	sc.next = scratchSlice(sc.next, len(s.shards))
	sc.grouped = scratchSlice(sc.grouped, len(pkts))
	sc.perm = scratchSlice(sc.perm, len(pkts))
	sc.groupedOut = scratchSlice(sc.groupedOut, len(pkts))

	clear(sc.starts)
	for i := range pkts {
		sh := uint32(s.shardFor(pkts[i]))
		sc.shardOf[i] = sh
		sc.starts[sh+1]++
	}
	for i := 1; i < len(sc.starts); i++ {
		sc.starts[i] += sc.starts[i-1]
	}
	copy(sc.next, sc.starts[:len(s.shards)])
	for i := range pkts {
		sh := sc.shardOf[i]
		pos := sc.next[sh]
		sc.next[sh]++
		sc.grouped[pos] = pkts[i]
		sc.perm[pos] = int32(i) // grouped position -> original index
	}

	for sh := range s.shards {
		a, b := sc.starts[sh], sc.starts[sh+1]
		if a == b {
			continue
		}
		s.shards[sh].processBatchInto(sc.grouped[a:b], sc.groupedOut[a:b])
	}
	for pos, i := range sc.perm {
		out[i] = sc.groupedOut[pos]
	}
	shardScratchPool.Put(sc)
}

// Reset flushes every shard (bitmap, counters and any attached APD
// windows), mirroring Filter.Reset for the sharded composite.
func (s *Sharded) Reset() {
	for _, sh := range s.shards {
		sh.Reset()
	}
}

// PunchHole opens an inbound hole (§5.1) in the shard the flow key routes
// to.
func (s *Sharded) PunchHole(local packet.Addr, localPort uint16, remote packet.Addr, proto packet.Proto) {
	tup := packet.Tuple{Src: local, SrcPort: localPort, Dst: remote, Proto: proto}
	key := tup.OutgoingKey()
	s.shards[s.router.Index(0, key[:])&s.mask].PunchHole(local, localPort, remote, proto)
}

// WouldAdmit reports whether an incoming packet with the given tuple would
// currently pass, consulting the owning shard.
func (s *Sharded) WouldAdmit(tup packet.Tuple) bool {
	key := tup.IncomingKey()
	return s.shards[s.router.Index(0, key[:])&s.mask].WouldAdmit(tup)
}

// shardFor routes by the direction-symmetric partial-tuple key.
func (s *Sharded) shardFor(pkt packet.Packet) uint64 {
	var key packet.Key
	if pkt.Dir == packet.Outgoing {
		key = pkt.Tuple.OutgoingKey()
	} else {
		key = pkt.Tuple.IncomingKey()
	}
	return s.router.Index(0, key[:]) & s.mask
}
