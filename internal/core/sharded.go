package core

import (
	"fmt"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/hashfam"
	"bitmapfilter/internal/packet"
)

// Sharded partitions one logical bitmap filter across S independent
// locked shards so a multi-queue edge router scales across cores without a
// global lock. Table 1 notes hardware acceleration of the bitmap is
// "easy"; sharding is the software equivalent.
//
// Correctness: packets are routed to shards by the same partial-tuple key
// the bitmap hashes, and that key is — by the §3.3 symmetry — identical
// for an outgoing packet and its replies. A flow's marks and lookups
// therefore always meet in the same shard, and the composite behaves
// exactly like a single filter of the same total memory (each shard gets
// the configured order, so total memory is S × the single-filter size —
// size shards accordingly).
type Sharded struct {
	shards []*Safe
	router *hashfam.Family
	mask   uint64
}

var _ filtering.PacketFilter = (*Sharded)(nil)

// NewSharded builds a filter with the given shard count (rounded up to a
// power of two). Options apply to every shard; WithSeed is perturbed per
// shard so the shards' hash families are independent.
func NewSharded(shardCount int, opts ...Option) (*Sharded, error) {
	if shardCount < 1 {
		return nil, fmt.Errorf("%w: shards=%d", ErrConfig, shardCount)
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	s := &Sharded{
		shards: make([]*Safe, n),
		router: hashfam.MustNew(1, 0x5ead5ead),
		mask:   uint64(n - 1),
	}
	for i := range s.shards {
		f, err := New(append(append([]Option(nil), opts...),
			withSeedPerturbation(uint64(i)))...)
		if err != nil {
			return nil, err
		}
		s.shards[i] = NewSafe(f)
	}
	return s, nil
}

// withSeedPerturbation derives a per-shard seed on top of whatever seed
// the caller configured.
type seedPerturbOption uint64

func (o seedPerturbOption) apply(c *config) {
	c.seed ^= uint64(o) * 0x9e3779b97f4a7c15
}

func withSeedPerturbation(i uint64) Option { return seedPerturbOption(i) }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Name implements filtering.PacketFilter.
func (s *Sharded) Name() string {
	return fmt.Sprintf("sharded{%d x %s}", len(s.shards), s.shards[0].Name())
}

// MemoryBytes implements filtering.PacketFilter (sum over shards).
func (s *Sharded) MemoryBytes() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.MemoryBytes()
	}
	return total
}

// Counters implements filtering.PacketFilter (sum over shards).
func (s *Sharded) Counters() filtering.Counters {
	var total filtering.Counters
	for _, sh := range s.shards {
		c := sh.Counters()
		total.OutPackets += c.OutPackets
		total.InPackets += c.InPackets
		total.InPassed += c.InPassed
		total.InDropped += c.InDropped
	}
	return total
}

// AdvanceTo implements filtering.PacketFilter.
func (s *Sharded) AdvanceTo(now time.Duration) {
	for _, sh := range s.shards {
		sh.AdvanceTo(now)
	}
}

// Process implements filtering.PacketFilter: the packet is handled
// entirely by the shard its flow key routes to.
func (s *Sharded) Process(pkt packet.Packet) filtering.Verdict {
	return s.shards[s.shardFor(pkt)].Process(pkt)
}

// PunchHole opens an inbound hole (§5.1) in the shard the flow key routes
// to.
func (s *Sharded) PunchHole(local packet.Addr, localPort uint16, remote packet.Addr, proto packet.Proto) {
	tup := packet.Tuple{Src: local, SrcPort: localPort, Dst: remote, Proto: proto}
	key := tup.OutgoingKey()
	s.shards[s.router.Index(0, key[:])&s.mask].PunchHole(local, localPort, remote, proto)
}

// WouldAdmit reports whether an incoming packet with the given tuple would
// currently pass, consulting the owning shard.
func (s *Sharded) WouldAdmit(tup packet.Tuple) bool {
	key := tup.IncomingKey()
	return s.shards[s.router.Index(0, key[:])&s.mask].WouldAdmit(tup)
}

// shardFor routes by the direction-symmetric partial-tuple key.
func (s *Sharded) shardFor(pkt packet.Packet) uint64 {
	var key packet.Key
	if pkt.Dir == packet.Outgoing {
		key = pkt.Tuple.OutgoingKey()
	} else {
		key = pkt.Tuple.IncomingKey()
	}
	return s.router.Index(0, key[:]) & s.mask
}
