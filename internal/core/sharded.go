package core

import (
	"fmt"
	"sync"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/hashfam"
	"bitmapfilter/internal/packet"
)

// Sharded partitions one logical bitmap filter across S independent
// locked shards so a multi-queue edge router scales across cores without a
// global lock. Table 1 notes hardware acceleration of the bitmap is
// "easy"; sharding is the software equivalent.
//
// Correctness: packets are routed to shards by the same partial-tuple key
// the bitmap hashes, and that key is — by the §3.3 symmetry — identical
// for an outgoing packet and its replies. A flow's marks and lookups
// therefore always meet in the same shard, and the composite behaves
// exactly like a single filter of the same total memory (each shard gets
// the configured order, so total memory is S × the single-filter size —
// size shards accordingly).
type Sharded struct {
	shards []*Safe
	router *hashfam.Family
	mask   uint64
}

var _ filtering.BatchFilter = (*Sharded)(nil)

// NewSharded builds a filter with the given shard count (rounded up to a
// power of two). Options apply to every shard; WithSeed is perturbed per
// shard so the shards' hash families are independent.
//
// An APD policy (WithAPD) is cloned into every shard via PolicyCloner, so
// the independently locked shards never share mutable indicator state;
// clones implementing PolicyShardScaler (BandwidthPolicy) are rescaled to
// the 1/S traffic partition each shard observes. A policy that accumulates
// state (PolicyResetter) but does not implement PolicyCloner is rejected
// with ErrConfig; a policy implementing neither is assumed stateless and
// shared as-is — its methods must then tolerate concurrent calls.
func NewSharded(shardCount int, opts ...Option) (*Sharded, error) {
	if shardCount < 1 {
		return nil, fmt.Errorf("%w: shards=%d", ErrConfig, shardCount)
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	// Resolve the configured policy once; the per-shard WithAPD appended
	// below overrides the caller's option with that shard's clone.
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	cloner, cloneable := cfg.apd.(PolicyCloner)
	if _, stateful := cfg.apd.(PolicyResetter); stateful && !cloneable {
		return nil, fmt.Errorf("%w: APD policy %q holds mutable state but implements no ClonePolicy; one instance cannot be shared across shard locks",
			ErrConfig, cfg.apd.Name())
	}
	s := &Sharded{
		shards: make([]*Safe, n),
		router: hashfam.MustNew(1, 0x5ead5ead),
		mask:   uint64(n - 1),
	}
	for i := range s.shards {
		shardOpts := append(append([]Option(nil), opts...),
			withSeedPerturbation(uint64(i)))
		if cloneable {
			p := cloner.ClonePolicy()
			if p == nil {
				return nil, fmt.Errorf("%w: APD policy %q cloned to nil", ErrConfig, cfg.apd.Name())
			}
			if sc, ok := p.(PolicyShardScaler); ok {
				sc.ScaleForShards(n)
			}
			shardOpts = append(shardOpts, WithAPD(p))
		}
		f, err := New(shardOpts...)
		if err != nil {
			return nil, err
		}
		s.shards[i] = NewSafe(f)
	}
	return s, nil
}

// withSeedPerturbation derives a per-shard seed on top of whatever seed
// the caller configured.
type seedPerturbOption uint64

func (o seedPerturbOption) apply(c *config) {
	c.seed ^= uint64(o) * 0x9e3779b97f4a7c15
}

func withSeedPerturbation(i uint64) Option { return seedPerturbOption(i) }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Name implements filtering.PacketFilter.
func (s *Sharded) Name() string {
	return fmt.Sprintf("sharded{%d x %s}", len(s.shards), s.shards[0].Name())
}

// MemoryBytes implements filtering.PacketFilter (sum over shards).
func (s *Sharded) MemoryBytes() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.MemoryBytes()
	}
	return total
}

// Counters implements filtering.PacketFilter (sum over shards).
func (s *Sharded) Counters() filtering.Counters {
	var total filtering.Counters
	for _, sh := range s.shards {
		c := sh.Counters()
		total.OutPackets += c.OutPackets
		total.InPackets += c.InPackets
		total.InPassed += c.InPassed
		total.InDropped += c.InDropped
	}
	return total
}

// RotateEvery returns Δt, identical across shards.
func (s *Sharded) RotateEvery() time.Duration { return s.shards[0].RotateEvery() }

// Utilization returns the mean current-vector fill fraction across shards.
// Flow keys spread ~uniformly, so each shard's bitmap holds a 1/S
// partition of the flows and the mean tracks the utilization one filter
// with the same total traffic would report.
func (s *Sharded) Utilization() float64 {
	var sum float64
	for _, sh := range s.shards {
		sum += sh.Utilization()
	}
	return sum / float64(len(s.shards))
}

// APDSpared returns the total number of unmatched incoming packets the
// per-shard APD policies chose to admit (sum over shards).
func (s *Sharded) APDSpared() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.APDSpared()
	}
	return total
}

// ShardStats returns one introspection snapshot per shard, each taken
// under that shard's lock. The composite is not frozen: traffic may land
// between snapshots, so cross-shard sums are approximate under load.
func (s *Sharded) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Stats()
	}
	return out
}

// Stats aggregates a snapshot across shards. Additive fields
// (MemoryBytes, Rotations, Marks, Counters, APDSpared) are summed;
// fractional indicators (Utilization, VectorUtilization,
// PenetrationProbability, APDDropProbability) are averaged — each shard
// sees a 1/S partition of the flows, so the mean estimates the global
// value. Clock fields report the most-advanced shard (Now) and the
// earliest pending rotation (NextRotation); configuration fields,
// CurrentIndex and the APD policy identity come from shard 0.
func (s *Sharded) Stats() Stats {
	per := s.ShardStats()
	agg := per[0]
	agg.VectorUtilization = append([]float64(nil), per[0].VectorUtilization...)
	for _, st := range per[1:] {
		agg.MemoryBytes += st.MemoryBytes
		agg.Rotations += st.Rotations
		agg.Marks += st.Marks
		agg.Counters.OutPackets += st.Counters.OutPackets
		agg.Counters.InPackets += st.Counters.InPackets
		agg.Counters.InPassed += st.Counters.InPassed
		agg.Counters.InDropped += st.Counters.InDropped
		agg.APDSpared += st.APDSpared
		if st.Now > agg.Now {
			agg.Now = st.Now
		}
		if st.NextRotation < agg.NextRotation {
			agg.NextRotation = st.NextRotation
		}
		agg.Utilization += st.Utilization
		agg.PenetrationProbability += st.PenetrationProbability
		agg.APDDropProbability += st.APDDropProbability
		for i := range agg.VectorUtilization {
			agg.VectorUtilization[i] += st.VectorUtilization[i]
		}
	}
	invS := 1 / float64(len(per))
	agg.Utilization *= invS
	agg.PenetrationProbability *= invS
	agg.APDDropProbability *= invS
	for i := range agg.VectorUtilization {
		agg.VectorUtilization[i] *= invS
	}
	return agg
}

// AdvanceTo implements filtering.PacketFilter.
func (s *Sharded) AdvanceTo(now time.Duration) {
	for _, sh := range s.shards {
		sh.AdvanceTo(now)
	}
}

// Process implements filtering.PacketFilter: the packet is handled
// entirely by the shard its flow key routes to.
//
//bf:hotpath
func (s *Sharded) Process(pkt packet.Packet) filtering.Verdict {
	return s.shards[s.shardFor(pkt)].Process(pkt)
}

// shardScratch holds the per-batch grouping buffers. Pooled so a steady
// stream of ProcessBatch calls allocates only the returned verdict slice.
type shardScratch struct {
	shardOf    []uint32
	starts     []int
	next       []int
	grouped    []packet.Packet
	perm       []int32
	groupedOut []filtering.Verdict
}

var shardScratchPool = sync.Pool{New: func() any { return new(shardScratch) }}

// scratchSlice resizes s to n elements, reallocating only on growth. The
// contents are unspecified; callers overwrite every element they read.
func scratchSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ProcessBatch routes every packet in pkts to its shard, runs one locked
// batch per shard, and returns the verdicts in input order. Packets that
// share a shard keep their relative order, so the result is identical to
// calling Process per packet — each shard sees the exact packet sequence
// (and draws the same APD coin flips) it would see sequentially — while a
// batch pays one lock acquisition per touched shard instead of one per
// packet.
func (s *Sharded) ProcessBatch(pkts []packet.Packet) []filtering.Verdict {
	if len(pkts) == 0 {
		return nil
	}
	out := make([]filtering.Verdict, len(pkts))
	s.processBatchInto(pkts, out)
	return out
}

// ProcessBatchInto is ProcessBatch writing into a caller-provided buffer
// (see the filtering.BatchFilter contract). Together with the pooled
// grouping scratch this makes a steady-state batch stream allocation-free.
//
//bf:hotpath
func (s *Sharded) ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	out = filtering.GrowVerdicts(out, len(pkts)) //bf:allow escapecheck amortized grow per the BatchFilter contract; steady state reuses the caller buffer
	s.processBatchInto(pkts, out)
	return out
}

// processBatchInto fills out (same length as pkts) with one locked batch
// per touched shard.
//
//bf:hotpath
func (s *Sharded) processBatchInto(pkts []packet.Packet, out []filtering.Verdict) {
	if len(s.shards) == 1 {
		s.shards[0].processBatchInto(pkts, out)
		return
	}

	// Counting sort by shard: stable, O(len(pkts) + shards), and the
	// routing hash is computed once per packet. The scratch goes back to
	// the pool via defer so a panicking shard cannot leak it.
	sc := shardScratchPool.Get().(*shardScratch)
	defer shardScratchPool.Put(sc)                         //bf:allow hotpath pooled put must run even if a shard panics, or the scratch leaks
	sc.shardOf = scratchSlice(sc.shardOf, len(pkts))       //bf:allow escapecheck pooled scratch grows to the high-water batch size once, then is reused
	sc.starts = scratchSlice(sc.starts, len(s.shards)+1)   //bf:allow escapecheck pooled scratch grows to the high-water batch size once, then is reused
	sc.next = scratchSlice(sc.next, len(s.shards))         //bf:allow escapecheck pooled scratch grows to the high-water batch size once, then is reused
	sc.grouped = scratchSlice(sc.grouped, len(pkts))       //bf:allow escapecheck pooled scratch grows to the high-water batch size once, then is reused
	sc.perm = scratchSlice(sc.perm, len(pkts))             //bf:allow escapecheck pooled scratch grows to the high-water batch size once, then is reused
	sc.groupedOut = scratchSlice(sc.groupedOut, len(pkts)) //bf:allow escapecheck pooled scratch grows to the high-water batch size once, then is reused

	clear(sc.starts)
	for i := range pkts {
		sh := uint32(s.shardFor(pkts[i]))
		sc.shardOf[i] = sh
		sc.starts[sh+1]++
	}
	for i := 1; i < len(sc.starts); i++ {
		sc.starts[i] += sc.starts[i-1]
	}
	copy(sc.next, sc.starts[:len(s.shards)])
	for i := range pkts {
		sh := sc.shardOf[i]
		pos := sc.next[sh]
		sc.next[sh]++
		sc.grouped[pos] = pkts[i]
		sc.perm[pos] = int32(i) // grouped position -> original index
	}

	for sh := range s.shards {
		a, b := sc.starts[sh], sc.starts[sh+1]
		if a == b {
			continue
		}
		s.shards[sh].processBatchInto(sc.grouped[a:b], sc.groupedOut[a:b])
	}
	for pos, i := range sc.perm {
		out[i] = sc.groupedOut[pos]
	}
}

// Reset flushes every shard (bitmap, counters and any attached APD
// windows), mirroring Filter.Reset for the sharded composite.
func (s *Sharded) Reset() {
	for _, sh := range s.shards {
		sh.Reset()
	}
}

// PunchHole opens an inbound hole (§5.1) in the shard the flow key routes
// to.
func (s *Sharded) PunchHole(local packet.Addr, localPort uint16, remote packet.Addr, proto packet.Proto) {
	tup := packet.Tuple{Src: local, SrcPort: localPort, Dst: remote, Proto: proto}
	key := tup.OutgoingKey()
	s.shards[s.router.Index(0, key[:])&s.mask].PunchHole(local, localPort, remote, proto)
}

// WouldAdmit reports whether an incoming packet with the given tuple would
// currently pass, consulting the owning shard.
func (s *Sharded) WouldAdmit(tup packet.Tuple) bool {
	key := tup.IncomingKey()
	return s.shards[s.router.Index(0, key[:])&s.mask].WouldAdmit(tup)
}

// shardFor routes by the direction-symmetric partial-tuple key.
//
//bf:hotpath
func (s *Sharded) shardFor(pkt packet.Packet) uint64 {
	var key packet.Key
	if pkt.Dir == packet.Outgoing {
		key = pkt.Tuple.OutgoingKey()
	} else {
		key = pkt.Tuple.IncomingKey()
	}
	return s.router.Index(0, key[:]) & s.mask
}
