package core

import (
	"fmt"
	"testing"
	"time"

	"bitmapfilter/internal/filtering"
)

// TestKernelDifferential pins the central claim of the kernel rewrite:
// the data-plane kernel mode and the batch sweep are pure performance
// knobs. For the same trace and seed, every (kernel, sweep) combination
// must produce byte-identical verdict streams and statistics — across the
// bare filter, Safe, Sharded, and an APD-enabled filter (whose coin-flip
// stream would expose any reordering of the random draws).
func TestKernelDifferential(t *testing.T) {
	pkts := diffTrace(60_000, 99)

	variants := []struct {
		name string
		opts []Option
	}{
		{name: "scalar", opts: []Option{WithKernels(KernelScalar)}},
		{name: "coalesced", opts: []Option{WithKernels(KernelCoalesced), WithSweep(SweepNever)}},
		{name: "coalesced+sweep", opts: []Option{WithKernels(KernelCoalesced), WithSweep(SweepAlways)}},
	}
	flavors := []struct {
		name string
		mk   func(t *testing.T, opts []Option) intoFilter
	}{
		{name: "filter", mk: func(t *testing.T, opts []Option) intoFilter {
			return MustNew(append([]Option{WithOrder(13), WithSeed(5)}, opts...)...)
		}},
		{name: "safe", mk: func(t *testing.T, opts []Option) intoFilter {
			return NewSafe(MustNew(append([]Option{WithOrder(13), WithSeed(5)}, opts...)...))
		}},
		{name: "sharded", mk: func(t *testing.T, opts []Option) intoFilter {
			s, err := NewSharded(4, append([]Option{WithOrder(12), WithSeed(5)}, opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{name: "filter+apd", mk: func(t *testing.T, opts []Option) intoFilter {
			rp, err := NewRatioPolicy(1, 3, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			return MustNew(append([]Option{WithOrder(13), WithSeed(5), WithAPD(rp)}, opts...)...)
		}},
	}

	for _, fl := range flavors {
		t.Run(fl.name, func(t *testing.T) {
			var ref []filtering.Verdict
			var refStats string
			for _, va := range variants {
				f := fl.mk(t, va.opts)
				var got []filtering.Verdict
				var out []filtering.Verdict
				for off := 0; off < len(pkts); off += 379 { // unaligned chunks
					end := min(off+379, len(pkts))
					out = f.ProcessBatchInto(pkts[off:end], out)
					got = append(got, out...)
				}
				stats := statsString(f)
				if ref == nil {
					ref = got
					refStats = stats
					continue
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s: verdict[%d] = %v, %s said %v (pkt %+v)",
							va.name, i, got[i], variants[0].name, ref[i], pkts[i])
					}
				}
				if stats != refStats {
					t.Errorf("%s: stats diverged:\n%s\nvs %s:\n%s", va.name, stats, variants[0].name, refStats)
				}
			}
		})
	}
}

// statsString renders whichever statistics a flavor exposes into a
// comparable form.
func statsString(f intoFilter) string {
	switch v := f.(type) {
	case *Filter:
		return fmt.Sprintf("%+v", v.Stats())
	case *Safe:
		return fmt.Sprintf("%+v", v.Stats())
	case *Sharded:
		return fmt.Sprintf("%+v", v.Counters())
	}
	panic("unknown flavor")
}
