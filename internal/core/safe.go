package core

import (
	"sync"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// Safe wraps a Filter with a mutex so multiple goroutines (e.g. per-uplink
// packet pumps in a live deployment) can share one bitmap. All methods of
// the wrapped filter that are part of filtering.PacketFilter are exposed.
type Safe struct {
	mu sync.Mutex
	f  *Filter //bf:guardedby mu
}

var _ filtering.BatchFilter = (*Safe)(nil)

// NewSafe wraps f. The wrapped filter must not be used directly afterwards.
func NewSafe(f *Filter) *Safe {
	return &Safe{f: f}
}

// Process implements filtering.PacketFilter.
//
//bf:hotpath
func (s *Safe) Process(pkt packet.Packet) filtering.Verdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Process(pkt)
}

// ProcessBatch runs pkts through the filter under a single lock
// acquisition and returns one verdict per packet. For multi-queue packet
// pumps this replaces one mutex round-trip per packet with one per batch;
// verdicts are identical to calling Process per packet.
func (s *Safe) ProcessBatch(pkts []packet.Packet) []filtering.Verdict {
	if len(pkts) == 0 {
		return nil
	}
	out := make([]filtering.Verdict, len(pkts))
	s.processBatchInto(pkts, out)
	return out
}

// ProcessBatchInto is ProcessBatch writing into a caller-provided buffer
// (see the filtering.BatchFilter contract): one lock acquisition per batch
// and zero allocations once out has capacity for the batch size.
//
//bf:hotpath
func (s *Safe) ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	out = filtering.GrowVerdicts(out, len(pkts)) //bf:allow escapecheck amortized grow per the BatchFilter contract; steady state reuses the caller buffer
	s.processBatchInto(pkts, out)
	return out
}

// processBatchInto fills out (same length as pkts) under one lock; Sharded
// uses it to batch per shard without extra allocations.
//
//bf:hotpath
func (s *Safe) processBatchInto(pkts []packet.Packet, out []filtering.Verdict) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f.processBatch(pkts, out)
}

// AdvanceTo implements filtering.PacketFilter.
func (s *Safe) AdvanceTo(now time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f.AdvanceTo(now)
}

// Name implements filtering.PacketFilter.
func (s *Safe) Name() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Name()
}

// MemoryBytes implements filtering.PacketFilter.
func (s *Safe) MemoryBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.MemoryBytes()
}

// Counters implements filtering.PacketFilter.
func (s *Safe) Counters() filtering.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Counters()
}

// Utilization returns the current-vector utilization.
func (s *Safe) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Utilization()
}

// RotateEvery returns Δt (immutable after construction, but read under
// the lock for consistency with the other forwards).
func (s *Safe) RotateEvery() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.RotateEvery()
}

// APDSpared forwards to Filter.APDSpared under the lock.
func (s *Safe) APDSpared() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.APDSpared()
}

// PunchHole forwards to Filter.PunchHole under the lock.
func (s *Safe) PunchHole(local packet.Addr, localPort uint16, remote packet.Addr, proto packet.Proto) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f.PunchHole(local, localPort, remote, proto)
}

// WouldAdmit forwards to Filter.WouldAdmit under the lock.
func (s *Safe) WouldAdmit(tup packet.Tuple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.WouldAdmit(tup)
}

// Stats forwards to Filter.Stats under the lock.
func (s *Safe) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Stats()
}

// Reset forwards to Filter.Reset under the lock.
func (s *Safe) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f.Reset()
}
