package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Snapshot serialization: an edge router restarting (or failing over to a
// standby) would otherwise come up with an empty bitmap and drop every
// in-flight connection's incoming packets for up to T_e. WriteSnapshot /
// ReadSnapshot persist the full filter state — configuration, rotation
// clock, counters and all k bit vectors — in a small binary format.
//
// APD policies hold live traffic windows and are deliberately not
// serialized; re-attach one via options when reconstructing (the windowed
// indicators refill within one window anyway).

const (
	snapshotMagic   = 0x424d4631 // "BMF1"
	snapshotVersion = 1
)

// Snapshot format errors.
var (
	ErrSnapshotMagic   = errors.New("core: bad snapshot magic")
	ErrSnapshotVersion = errors.New("core: unsupported snapshot version")
	ErrSnapshotCorrupt = errors.New("core: corrupt snapshot")
)

type snapshotHeader struct {
	Magic       uint32
	Version     uint32
	Order       uint32
	Vectors     uint32
	Hashes      uint32
	MarkPolicy  uint32
	TuplePolicy uint32
	Idx         uint32
	RotateNs    int64
	Seed        uint64
	NowNs       int64
	NextRotNs   int64
	Rotations   uint64
	Marks       uint64
	OutPackets  uint64
	InPackets   uint64
	InPassed    uint64
	InDropped   uint64
}

// WriteSnapshot serializes the filter state to w.
func (f *Filter) WriteSnapshot(w io.Writer) error {
	hdr := snapshotHeader{
		Magic:       snapshotMagic,
		Version:     snapshotVersion,
		Order:       uint32(f.cfg.order),
		Vectors:     uint32(f.cfg.vectors),
		Hashes:      uint32(f.cfg.hashes),
		MarkPolicy:  uint32(f.cfg.markPolicy),
		TuplePolicy: uint32(f.cfg.tuplePolicy),
		Idx:         uint32(f.idx),
		RotateNs:    int64(f.cfg.rotateEvery),
		Seed:        f.cfg.seed,
		NowNs:       int64(f.now),
		NextRotNs:   int64(f.nextRotate),
		Rotations:   f.rotations,
		Marks:       f.marks,
		OutPackets:  f.counters.OutPackets,
		InPackets:   f.counters.InPackets,
		InPassed:    f.counters.InPassed,
		InDropped:   f.counters.InDropped,
	}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("core: write snapshot header: %w", err)
	}
	for _, v := range f.vectors {
		if _, err := v.WriteTo(w); err != nil {
			return fmt.Errorf("core: write snapshot vector: %w", err)
		}
	}
	return nil
}

// ReadSnapshot reconstructs a filter from a stream produced by
// WriteSnapshot. Additional options (e.g. WithAPD) are applied on top of
// the serialized configuration.
func ReadSnapshot(r io.Reader, opts ...Option) (*Filter, error) {
	var hdr snapshotHeader
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("core: read snapshot header: %w", err)
	}
	if hdr.Magic != snapshotMagic {
		return nil, fmt.Errorf("%w: %#08x", ErrSnapshotMagic, hdr.Magic)
	}
	if hdr.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: %d", ErrSnapshotVersion, hdr.Version)
	}

	base := []Option{
		WithOrder(uint(hdr.Order)),
		WithVectors(int(hdr.Vectors)),
		WithHashes(int(hdr.Hashes)),
		WithRotateEvery(time.Duration(hdr.RotateNs)),
		WithSeed(hdr.Seed),
		WithMarkPolicy(MarkPolicy(hdr.MarkPolicy)),
		WithTuplePolicy(TuplePolicy(hdr.TuplePolicy)),
	}
	f, err := New(append(base, opts...)...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if int(hdr.Idx) >= f.cfg.vectors {
		return nil, fmt.Errorf("%w: index %d of %d vectors", ErrSnapshotCorrupt, hdr.Idx, f.cfg.vectors)
	}
	f.idx = int(hdr.Idx)
	f.now = time.Duration(hdr.NowNs)
	f.nextRotate = time.Duration(hdr.NextRotNs)
	if f.nextRotate <= f.now {
		return nil, fmt.Errorf("%w: rotation clock %v not after %v",
			ErrSnapshotCorrupt, f.nextRotate, f.now)
	}
	f.rotations = hdr.Rotations
	f.marks = hdr.Marks
	f.counters.OutPackets = hdr.OutPackets
	f.counters.InPackets = hdr.InPackets
	f.counters.InPassed = hdr.InPassed
	f.counters.InDropped = hdr.InDropped
	for _, v := range f.vectors {
		if _, err := v.ReadFrom(r); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
	}
	return f, nil
}
