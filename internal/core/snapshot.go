package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/hashfam"
	"bitmapfilter/internal/packet"
)

// Snapshot serialization: an edge router restarting (or failing over to a
// standby) would otherwise come up with an empty bitmap and drop every
// in-flight connection's incoming packets for up to T_e. WriteSnapshot /
// ReadSnapshot persist the full filter state — configuration, rotation
// clock, counters and all k bit vectors — in a small binary format.
//
// Format v2 (current) is built for crash safety: every region of the
// stream is covered by a CRC32C (Castagnoli) checksum, so a torn write,
// a truncated file or a flipped bit is detected instead of silently
// restoring garbage marks. The layout is
//
//	container header  magic "BMF2" | version | kind | sections | CRC32C
//	section × N       filter header (104 B) | CRC32C
//	                  vector payload (2^n/8 B) | CRC32C   × k
//
// kind selects the flavor: a plain/Safe filter writes one section, a
// Sharded filter writes one section per shard (each shard's perturbed
// seed rides in its own header, so the restored composite routes flows
// identically). Top-level readers additionally reject trailing bytes, so
// a concatenation accident cannot masquerade as a valid snapshot.
//
// Format v1 ("BMF1", a bare header + raw vectors with no checksums)
// remains readable for old snapshot files.
//
// APD policies hold live traffic windows and are deliberately not
// serialized; re-attach one via options when reconstructing (the windowed
// indicators refill within one window anyway).

const (
	snapshotMagicV1 = 0x424d4631 // "BMF1"
	snapshotMagicV2 = 0x424d4632 // "BMF2"
	snapshotVersion = 2

	snapshotKindFilter  = 1
	snapshotKindSharded = 2

	containerHeaderLen = 16  // magic, version, kind, sections (before CRC)
	sectionHeaderLen   = 104 // six uint32 + four int64/uint64 + six uint64

	// maxSnapshotShards bounds the section count a v2 container may
	// declare, so a corrupt count cannot drive a huge allocation before
	// the per-section checksums get a chance to reject the stream.
	maxSnapshotShards = 1 << 16
)

// castagnoli is the CRC32C polynomial table shared by all snapshot
// framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot format errors.
var (
	ErrSnapshotMagic   = errors.New("core: bad snapshot magic")
	ErrSnapshotVersion = errors.New("core: unsupported snapshot version")
	ErrSnapshotCorrupt = errors.New("core: corrupt snapshot")
	// ErrSnapshotKind is returned when a snapshot holds a different
	// filter flavor than the reader expects (e.g. ReadSnapshot on a
	// sharded stream — use ReadShardedSnapshot or ReadAnySnapshot).
	ErrSnapshotKind = errors.New("core: snapshot holds a different filter flavor")
)

// Snapshottable is the surface shared by every filter flavor that can be
// checkpointed: the batched data plane, introspection, and snapshot
// output. *Filter, *Safe and *Sharded all implement it, and it satisfies
// the live adapter's Inner interface, so ReadAnySnapshot can restore
// whichever flavor a stream holds.
type Snapshottable interface {
	filtering.BatchFilter
	WriteSnapshot(w io.Writer) error
	PunchHole(local packet.Addr, localPort uint16, remote packet.Addr, proto packet.Proto)
	Stats() Stats
	Utilization() float64
	RotateEvery() time.Duration
}

var (
	_ Snapshottable = (*Filter)(nil)
	_ Snapshottable = (*Safe)(nil)
	_ Snapshottable = (*Sharded)(nil)
)

// sectionHeader is the per-filter state record inside a v2 container (and,
// prefixed with magic+version, the whole v1 header).
type sectionHeader struct {
	Order       uint32
	Vectors     uint32
	Hashes      uint32
	MarkPolicy  uint32
	TuplePolicy uint32
	Idx         uint32
	RotateNs    int64
	Seed        uint64
	NowNs       int64
	NextRotNs   int64
	Rotations   uint64
	Marks       uint64
	OutPackets  uint64
	InPackets   uint64
	InPassed    uint64
	InDropped   uint64
}

func (h *sectionHeader) encode(buf []byte) {
	le := binary.LittleEndian
	le.PutUint32(buf[0:], h.Order)
	le.PutUint32(buf[4:], h.Vectors)
	le.PutUint32(buf[8:], h.Hashes)
	le.PutUint32(buf[12:], h.MarkPolicy)
	le.PutUint32(buf[16:], h.TuplePolicy)
	le.PutUint32(buf[20:], h.Idx)
	le.PutUint64(buf[24:], uint64(h.RotateNs))
	le.PutUint64(buf[32:], h.Seed)
	le.PutUint64(buf[40:], uint64(h.NowNs))
	le.PutUint64(buf[48:], uint64(h.NextRotNs))
	le.PutUint64(buf[56:], h.Rotations)
	le.PutUint64(buf[64:], h.Marks)
	le.PutUint64(buf[72:], h.OutPackets)
	le.PutUint64(buf[80:], h.InPackets)
	le.PutUint64(buf[88:], h.InPassed)
	le.PutUint64(buf[96:], h.InDropped)
}

func (h *sectionHeader) decode(buf []byte) {
	le := binary.LittleEndian
	h.Order = le.Uint32(buf[0:])
	h.Vectors = le.Uint32(buf[4:])
	h.Hashes = le.Uint32(buf[8:])
	h.MarkPolicy = le.Uint32(buf[12:])
	h.TuplePolicy = le.Uint32(buf[16:])
	h.Idx = le.Uint32(buf[20:])
	h.RotateNs = int64(le.Uint64(buf[24:]))
	h.Seed = le.Uint64(buf[32:])
	h.NowNs = int64(le.Uint64(buf[40:]))
	h.NextRotNs = int64(le.Uint64(buf[48:]))
	h.Rotations = le.Uint64(buf[56:])
	h.Marks = le.Uint64(buf[64:])
	h.OutPackets = le.Uint64(buf[72:])
	h.InPackets = le.Uint64(buf[80:])
	h.InPassed = le.Uint64(buf[88:])
	h.InDropped = le.Uint64(buf[96:])
}

// writeFull is w.Write with the short-write case (n < len(p), nil error,
// an io.Writer contract violation real fault injectors love) surfaced as
// io.ErrShortWrite instead of silently truncating the snapshot.
func writeFull(w io.Writer, p []byte) error {
	n, err := w.Write(p)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return err
}

// writeContainerHeader emits the framed v2 container prologue.
func writeContainerHeader(w io.Writer, kind, sections uint32) error {
	var buf [containerHeaderLen + 4]byte
	le := binary.LittleEndian
	le.PutUint32(buf[0:], snapshotMagicV2)
	le.PutUint32(buf[4:], snapshotVersion)
	le.PutUint32(buf[8:], kind)
	le.PutUint32(buf[12:], sections)
	le.PutUint32(buf[16:], crc32.Checksum(buf[:containerHeaderLen], castagnoli))
	if err := writeFull(w, buf[:]); err != nil {
		return fmt.Errorf("core: write snapshot container: %w", err)
	}
	return nil
}

// writeSection emits one framed filter section: checksummed header
// followed by each bit vector with its own checksum.
func (f *Filter) writeSection(w io.Writer) error {
	hdr := sectionHeader{
		Order:       uint32(f.cfg.order),
		Vectors:     uint32(f.cfg.vectors),
		Hashes:      uint32(f.cfg.hashes),
		MarkPolicy:  uint32(f.cfg.markPolicy),
		TuplePolicy: uint32(f.cfg.tuplePolicy),
		Idx:         uint32(f.idx),
		RotateNs:    int64(f.cfg.rotateEvery),
		Seed:        f.cfg.seed,
		NowNs:       int64(f.now),
		NextRotNs:   int64(f.nextRotate),
		Rotations:   f.rotations,
		Marks:       f.marks,
		OutPackets:  f.counters.OutPackets,
		InPackets:   f.counters.InPackets,
		InPassed:    f.counters.InPassed,
		InDropped:   f.counters.InDropped,
	}
	var buf [sectionHeaderLen + 4]byte
	hdr.encode(buf[:])
	binary.LittleEndian.PutUint32(buf[sectionHeaderLen:],
		crc32.Checksum(buf[:sectionHeaderLen], castagnoli))
	if err := writeFull(w, buf[:]); err != nil {
		return fmt.Errorf("core: write snapshot header: %w", err)
	}
	for _, v := range f.vectors {
		sum := crc32.New(castagnoli)
		if _, err := v.WriteTo(io.MultiWriter(w, sum)); err != nil {
			return fmt.Errorf("core: write snapshot vector: %w", err)
		}
		var crcBuf [4]byte
		binary.LittleEndian.PutUint32(crcBuf[:], sum.Sum32())
		if err := writeFull(w, crcBuf[:]); err != nil {
			return fmt.Errorf("core: write snapshot vector checksum: %w", err)
		}
	}
	return nil
}

// WriteSnapshot serializes the filter state to w in format v2.
func (f *Filter) WriteSnapshot(w io.Writer) error {
	if err := writeContainerHeader(w, snapshotKindFilter, 1); err != nil {
		return err
	}
	return f.writeSection(w)
}

// WriteSnapshot serializes the wrapped filter under the lock, so
// concurrent packet pumps see the snapshot as one quiesced point in time.
func (s *Safe) WriteSnapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.WriteSnapshot(w)
}

// WriteSnapshot serializes every shard as its own framed section. Each
// shard is locked only while its section streams out, so the composite
// keeps serving other shards; a flow's marks all live in one shard, so
// per-shard consistency is exactly flow-level consistency.
func (s *Sharded) WriteSnapshot(w io.Writer) error {
	if err := writeContainerHeader(w, snapshotKindSharded, uint32(len(s.shards))); err != nil {
		return err
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.f.writeSection(w)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// readContainerHeader parses and validates the framed v2 prologue and
// returns (kind, sections). A v1 stream is reported via errV1, letting
// ReadSnapshot fall back to the legacy decoder: only the first 8 bytes
// (magic+version, identical in both layouts) have been consumed then.
var errV1 = errors.New("v1 snapshot")

func readContainerHeader(r io.Reader) (kind, sections uint32, err error) {
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: short container header: %v", ErrSnapshotCorrupt, err)
	}
	le := binary.LittleEndian
	magic, version := le.Uint32(pre[0:]), le.Uint32(pre[4:])
	switch magic {
	case snapshotMagicV2:
	case snapshotMagicV1:
		if version != 1 {
			return 0, 0, fmt.Errorf("%w: %d", ErrSnapshotVersion, version)
		}
		return 0, 0, errV1
	default:
		return 0, 0, fmt.Errorf("%w: %#08x", ErrSnapshotMagic, magic)
	}
	if version != snapshotVersion {
		return 0, 0, fmt.Errorf("%w: %d", ErrSnapshotVersion, version)
	}
	var rest [containerHeaderLen + 4 - 8]byte
	if _, err := io.ReadFull(r, rest[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: short container header: %v", ErrSnapshotCorrupt, err)
	}
	sum := crc32.Checksum(pre[:], castagnoli)
	sum = crc32.Update(sum, castagnoli, rest[:containerHeaderLen-8])
	if sum != le.Uint32(rest[containerHeaderLen-8:]) {
		return 0, 0, fmt.Errorf("%w: container checksum mismatch", ErrSnapshotCorrupt)
	}
	kind = le.Uint32(rest[0:])
	sections = le.Uint32(rest[4:])
	switch kind {
	case snapshotKindFilter:
		if sections != 1 {
			return 0, 0, fmt.Errorf("%w: filter snapshot with %d sections", ErrSnapshotCorrupt, sections)
		}
	case snapshotKindSharded:
		if sections < 1 || sections > maxSnapshotShards || sections&(sections-1) != 0 {
			return 0, 0, fmt.Errorf("%w: shard count %d", ErrSnapshotCorrupt, sections)
		}
	default:
		return 0, 0, fmt.Errorf("%w: kind %d", ErrSnapshotCorrupt, kind)
	}
	return kind, sections, nil
}

// validateSectionHeader applies the semantic integrity checks shared by
// the v1 and v2 decoders.
func validateSectionHeader(hdr *sectionHeader, f *Filter) error {
	if int(hdr.Idx) >= f.cfg.vectors {
		return fmt.Errorf("%w: index %d of %d vectors", ErrSnapshotCorrupt, hdr.Idx, f.cfg.vectors)
	}
	if hdr.NowNs < 0 {
		return fmt.Errorf("%w: negative clock %v", ErrSnapshotCorrupt, time.Duration(hdr.NowNs))
	}
	if hdr.NextRotNs <= hdr.NowNs {
		return fmt.Errorf("%w: rotation clock %v not after %v",
			ErrSnapshotCorrupt, time.Duration(hdr.NextRotNs), time.Duration(hdr.NowNs))
	}
	// The filter invariant is nextRotate ∈ (now, now+Δt]: a crafted
	// snapshot with a farther rotation deadline would silently extend
	// mark lifetime beyond T_e. NowNs ≥ 0 above makes the subtraction
	// overflow-free.
	if hdr.NextRotNs-hdr.NowNs > hdr.RotateNs {
		return fmt.Errorf("%w: next rotation %v more than Δt=%v after %v",
			ErrSnapshotCorrupt, time.Duration(hdr.NextRotNs),
			time.Duration(hdr.RotateNs), time.Duration(hdr.NowNs))
	}
	if hdr.InPassed > hdr.InPackets || hdr.InPassed+hdr.InDropped != hdr.InPackets {
		return fmt.Errorf("%w: incoming counters %d = %d passed + %d dropped don't add up",
			ErrSnapshotCorrupt, hdr.InPackets, hdr.InPassed, hdr.InDropped)
	}
	return nil
}

// buildSectionFilter constructs a filter from a decoded header, applying
// caller options on top of the serialized configuration.
func buildSectionFilter(hdr *sectionHeader, opts []Option) (*Filter, error) {
	base := []Option{
		WithOrder(uint(hdr.Order)),
		WithVectors(int(hdr.Vectors)),
		WithHashes(int(hdr.Hashes)),
		WithRotateEvery(time.Duration(hdr.RotateNs)),
		WithSeed(hdr.Seed),
		WithMarkPolicy(MarkPolicy(hdr.MarkPolicy)),
		WithTuplePolicy(TuplePolicy(hdr.TuplePolicy)),
	}
	f, err := New(append(base, opts...)...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if err := validateSectionHeader(hdr, f); err != nil {
		return nil, err
	}
	f.idx = int(hdr.Idx)
	f.now = time.Duration(hdr.NowNs)
	f.nextRotate = time.Duration(hdr.NextRotNs)
	f.rotations = hdr.Rotations
	f.marks = hdr.Marks
	f.counters.OutPackets = hdr.OutPackets
	f.counters.InPackets = hdr.InPackets
	f.counters.InPassed = hdr.InPassed
	f.counters.InDropped = hdr.InDropped
	return f, nil
}

// readSection decodes one framed v2 filter section.
func readSection(r io.Reader, opts []Option) (*Filter, error) {
	var buf [sectionHeaderLen + 4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, fmt.Errorf("%w: short section header: %v", ErrSnapshotCorrupt, err)
	}
	le := binary.LittleEndian
	if crc32.Checksum(buf[:sectionHeaderLen], castagnoli) != le.Uint32(buf[sectionHeaderLen:]) {
		return nil, fmt.Errorf("%w: section header checksum mismatch", ErrSnapshotCorrupt)
	}
	var hdr sectionHeader
	hdr.decode(buf[:])
	f, err := buildSectionFilter(&hdr, opts)
	if err != nil {
		return nil, err
	}
	for _, v := range f.vectors {
		sum := crc32.New(castagnoli)
		if _, err := v.ReadFrom(io.TeeReader(r, sum)); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: short vector checksum: %v", ErrSnapshotCorrupt, err)
		}
		if sum.Sum32() != le.Uint32(crcBuf[:]) {
			return nil, fmt.Errorf("%w: vector checksum mismatch", ErrSnapshotCorrupt)
		}
	}
	return f, nil
}

// readSnapshotV1 decodes the legacy unchecksummed format; magic and
// version (8 bytes) have already been consumed.
func readSnapshotV1(r io.Reader, opts []Option) (*Filter, error) {
	var buf [sectionHeaderLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, fmt.Errorf("core: read snapshot header: %w", err)
	}
	var hdr sectionHeader
	hdr.decode(buf[:])
	f, err := buildSectionFilter(&hdr, opts)
	if err != nil {
		return nil, err
	}
	for _, v := range f.vectors {
		if _, err := v.ReadFrom(r); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
	}
	return f, nil
}

// expectEOF rejects trailing bytes after a fully decoded snapshot: a
// concatenated or padded stream is not the stream the writer produced.
func expectEOF(r io.Reader) error {
	var one [1]byte
	if n, err := r.Read(one[:]); n > 0 || (err != nil && err != io.EOF) {
		return fmt.Errorf("%w: trailing bytes after snapshot", ErrSnapshotCorrupt)
	}
	return nil
}

// ReadSnapshot reconstructs a single (unsharded) filter from a stream
// produced by Filter.WriteSnapshot or Safe.WriteSnapshot — v2 or legacy
// v1. Additional options (e.g. WithAPD) are applied on top of the
// serialized configuration. The stream must end with the snapshot;
// trailing bytes are rejected as corruption.
func ReadSnapshot(r io.Reader, opts ...Option) (*Filter, error) {
	kind, _, err := readContainerHeader(r)
	if errors.Is(err, errV1) {
		f, err := readSnapshotV1(r, opts)
		if err != nil {
			return nil, err
		}
		if err := expectEOF(r); err != nil {
			return nil, err
		}
		return f, nil
	}
	if err != nil {
		return nil, err
	}
	if kind != snapshotKindFilter {
		return nil, fmt.Errorf("%w: sharded snapshot (use ReadShardedSnapshot)", ErrSnapshotKind)
	}
	f, err := readSection(r, opts)
	if err != nil {
		return nil, err
	}
	if err := expectEOF(r); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadSafeSnapshot is ReadSnapshot returning the filter already wrapped
// for concurrent use.
func ReadSafeSnapshot(r io.Reader, opts ...Option) (*Safe, error) {
	f, err := ReadSnapshot(r, opts...)
	if err != nil {
		return nil, err
	}
	return NewSafe(f), nil
}

// ReadShardedSnapshot reconstructs a sharded filter from a stream
// produced by Sharded.WriteSnapshot. The shard count comes from the
// snapshot (it is structural: flow routing depends on it), every shard's
// configuration must agree, and an APD policy supplied via WithAPD is
// cloned per shard exactly as NewSharded does.
func ReadShardedSnapshot(r io.Reader, opts ...Option) (*Sharded, error) {
	kind, sections, err := readContainerHeader(r)
	if errors.Is(err, errV1) {
		return nil, fmt.Errorf("%w: v1 snapshots hold a single filter", ErrSnapshotKind)
	}
	if err != nil {
		return nil, err
	}
	if kind != snapshotKindSharded {
		return nil, fmt.Errorf("%w: single-filter snapshot (use ReadSnapshot)", ErrSnapshotKind)
	}
	s, err := readShardedSections(r, int(sections), opts)
	if err != nil {
		return nil, err
	}
	if err := expectEOF(r); err != nil {
		return nil, err
	}
	return s, nil
}

// readShardedSections decodes the per-shard sections and reassembles the
// composite.
func readShardedSections(r io.Reader, n int, opts []Option) (*Sharded, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	cloner, cloneable := cfg.apd.(PolicyCloner)
	if _, stateful := cfg.apd.(PolicyResetter); stateful && !cloneable {
		return nil, fmt.Errorf("%w: APD policy %q holds mutable state but implements no ClonePolicy; one instance cannot be shared across shard locks",
			ErrConfig, cfg.apd.Name())
	}
	// readContainerHeader already validated the section count, but n came
	// off the wire: re-check locally so this allocation is bounded even if
	// a future caller skips that validation.
	if n < 1 || n > maxSnapshotShards || n&(n-1) != 0 {
		return nil, fmt.Errorf("%w: shard count %d", ErrSnapshotCorrupt, n)
	}
	s := &Sharded{
		shards: make([]*Safe, n),
		router: hashfam.MustNew(1, 0x5ead5ead),
		mask:   uint64(n - 1),
	}
	var f0 *Filter // shard 0, for cross-shard configuration checks
	for i := range s.shards {
		shardOpts := opts
		if cloneable {
			p := cloner.ClonePolicy()
			if p == nil {
				return nil, fmt.Errorf("%w: APD policy %q cloned to nil", ErrConfig, cfg.apd.Name())
			}
			if sc, ok := p.(PolicyShardScaler); ok {
				sc.ScaleForShards(n)
			}
			shardOpts = append(append([]Option(nil), opts...), WithAPD(p))
		}
		f, err := readSection(r, shardOpts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if i == 0 {
			f0 = f
		} else {
			a, b := f0.cfg, f.cfg
			if a.order != b.order || a.vectors != b.vectors || a.hashes != b.hashes ||
				a.rotateEvery != b.rotateEvery || a.markPolicy != b.markPolicy ||
				a.tuplePolicy != b.tuplePolicy {
				return nil, fmt.Errorf("%w: shard %d configuration differs from shard 0",
					ErrSnapshotCorrupt, i)
			}
		}
		s.shards[i] = NewSafe(f)
	}
	return s, nil
}

// ReadAnySnapshot reconstructs whichever filter flavor the stream holds:
// a *Filter for single-filter (or v1) snapshots, a *Sharded for sharded
// ones. The live adapter and the checkpoint restore path use it so a
// daemon restarts into the same flavor it checkpointed.
func ReadAnySnapshot(r io.Reader, opts ...Option) (Snapshottable, error) {
	kind, sections, err := readContainerHeader(r)
	if errors.Is(err, errV1) {
		f, err := readSnapshotV1(r, opts)
		if err != nil {
			return nil, err
		}
		if err := expectEOF(r); err != nil {
			return nil, err
		}
		return f, nil
	}
	if err != nil {
		return nil, err
	}
	var restored Snapshottable
	switch kind {
	case snapshotKindFilter:
		restored, err = readSection(r, opts)
	default: // snapshotKindSharded, already validated
		restored, err = readShardedSections(r, int(sections), opts)
	}
	if err != nil {
		return nil, err
	}
	if err := expectEOF(r); err != nil {
		return nil, err
	}
	return restored, nil
}
