package core

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadSnapshot drives arbitrary bytes through the snapshot decoder:
// inputs may be rejected but must never panic or build an inconsistent
// filter.
func FuzzReadSnapshot(f *testing.F) {
	valid := MustNew(WithOrder(8), WithVectors(2), WithHashes(2),
		WithRotateEvery(time.Second))
	valid.Process(outPkt(0, client, server, 4000, 80))
	var buf bytes.Buffer
	if err := valid.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:40])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Any accepted snapshot must yield a usable filter.
		if g.MemoryBytes() == 0 {
			t.Fatal("restored filter has no memory")
		}
		if u := g.Utilization(); u < 0 || u > 1 {
			t.Fatalf("utilization %v", u)
		}
		g.Process(outPkt(g.ExpiryTimer(), client, server, 1, 2))
	})
}
