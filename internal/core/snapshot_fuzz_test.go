package core

import (
	"bytes"
	"testing"
	"time"
)

// fuzzSeedStreams returns valid v2 filter bytes, v2 sharded bytes and a
// legacy v1 re-encoding, plus single-bit-flip mutants of the v2 stream,
// so the fuzzers start from the interesting frontier of almost-valid
// inputs rather than random noise.
func fuzzSeedStreams(f *testing.F) (filter, sharded []byte) {
	valid := MustNew(WithOrder(8), WithVectors(2), WithHashes(2),
		WithRotateEvery(time.Second))
	valid.Process(outPkt(0, client, server, 4000, 80))
	var buf bytes.Buffer
	if err := valid.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	sh, err := NewSharded(2, WithOrder(8), WithVectors(2), WithHashes(2),
		WithRotateEvery(time.Second))
	if err != nil {
		f.Fatal(err)
	}
	sh.Process(outPkt(0, client, server, 4000, 80))
	var shBuf bytes.Buffer
	if err := sh.WriteSnapshot(&shBuf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes(), shBuf.Bytes()
}

// FuzzReadSnapshot drives arbitrary bytes through the snapshot decoder:
// inputs may be rejected but must never panic or build an inconsistent
// filter, and an accepted input must re-serialize to an equal stream.
func FuzzReadSnapshot(f *testing.F) {
	filterBytes, shardedBytes := fuzzSeedStreams(f)
	f.Add(filterBytes)
	f.Add(filterBytes[:40])
	f.Add(shardedBytes)
	f.Add([]byte{})
	for _, bit := range []int{0, 37, 8 * 30, 8*len(filterBytes) - 1} {
		flipped := bytes.Clone(filterBytes)
		flipped[bit/8] ^= 1 << (bit % 8)
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Any accepted snapshot must yield a usable filter.
		if g.MemoryBytes() == 0 {
			t.Fatal("restored filter has no memory")
		}
		if u := g.Utilization(); u < 0 || u > 1 {
			t.Fatalf("utilization %v", u)
		}
		// An accepted stream round-trips: writing the restored filter and
		// reading it back reproduces the exact state.
		var buf bytes.Buffer
		if err := g.WriteSnapshot(&buf); err != nil {
			t.Fatalf("re-serialize accepted snapshot: %v", err)
		}
		h, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read accepted snapshot: %v", err)
		}
		var buf2 bytes.Buffer
		if err := h.WriteSnapshot(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("accepted snapshot does not round-trip to a fixed point")
		}
		g.Process(outPkt(g.ExpiryTimer(), client, server, 1, 2))
	})
}

// FuzzReadShardedSnapshot is the same property for the multi-section
// sharded container.
func FuzzReadShardedSnapshot(f *testing.F) {
	filterBytes, shardedBytes := fuzzSeedStreams(f)
	f.Add(shardedBytes)
	f.Add(filterBytes)
	f.Add(shardedBytes[:len(shardedBytes)/2])
	f.Add([]byte{})
	for _, bit := range []int{4, 70, 8 * 130, 8*len(shardedBytes) - 2} {
		flipped := bytes.Clone(shardedBytes)
		flipped[bit/8] ^= 1 << (bit % 8)
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadShardedSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g.Shards() < 1 {
			t.Fatal("restored composite has no shards")
		}
		if u := g.Utilization(); u < 0 || u > 1 {
			t.Fatalf("utilization %v", u)
		}
		var buf bytes.Buffer
		if err := g.WriteSnapshot(&buf); err != nil {
			t.Fatalf("re-serialize accepted snapshot: %v", err)
		}
		if _, err := ReadShardedSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-read accepted snapshot: %v", err)
		}
		g.Process(outPkt(g.Stats().ExpiryTimer, client, server, 1, 2))
	})
}
