package core

import (
	"sync"
	"testing"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

func TestSafeBasicOperation(t *testing.T) {
	s := NewSafe(small())
	if v := s.Process(outPkt(0, client, server, 4000, 80)); v != filtering.Pass {
		t.Fatal("outgoing dropped")
	}
	if v := s.Process(inPkt(time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("reply dropped")
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
	if s.MemoryBytes() == 0 {
		t.Error("zero memory")
	}
	c := s.Counters()
	if c.OutPackets != 1 || c.InPassed != 1 {
		t.Errorf("counters = %+v", c)
	}
	if s.Utilization() == 0 {
		t.Error("zero utilization after mark")
	}
}

func TestSafePunchHole(t *testing.T) {
	s := NewSafe(small())
	s.PunchHole(client, 2000, server, packet.TCP)
	if v := s.Process(inPkt(0, server, client, 20, 2000)); v != filtering.Pass {
		t.Error("punched hole not honored")
	}
}

// TestSafeConcurrentAccess hammers the wrapper from many goroutines; run
// with -race to validate the locking.
func TestSafeConcurrentAccess(t *testing.T) {
	s := NewSafe(small())
	const (
		workers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint16(1000 * (w + 1))
			for i := 0; i < perG; i++ {
				ts := time.Duration(i) * time.Millisecond
				s.Process(outPkt(ts, client, server, base+uint16(i%100), 80))
				s.Process(inPkt(ts, server, client, 80, base+uint16(i%100)))
				if i%100 == 0 {
					s.AdvanceTo(ts)
					_ = s.Utilization()
					_ = s.Counters()
				}
			}
		}(w)
	}
	wg.Wait()
	c := s.Counters()
	if got, want := c.OutPackets, uint64(workers*perG); got != want {
		t.Errorf("OutPackets = %d, want %d", got, want)
	}
	if got, want := c.InPackets, uint64(workers*perG); got != want {
		t.Errorf("InPackets = %d, want %d", got, want)
	}
}
