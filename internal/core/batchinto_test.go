package core

import (
	"testing"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
)

// intoFilter is the slice of the BatchFilter contract these tests exercise.
type intoFilter interface {
	Process(pkt packet.Packet) filtering.Verdict
	ProcessBatch(pkts []packet.Packet) []filtering.Verdict
	ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict
}

// mkIntoFilters builds identically-seeded instances of every flavor, one
// per subtest, so verdict comparisons across call styles are exact. Each
// flavor also appears with the batch sweep forced on (the sorted path is
// size-gated off at test orders otherwise) and the base flavor with the
// scalar reference kernels, so the buffer contract is pinned on every
// data-plane variant.
func mkIntoFilters(t *testing.T) map[string]func() intoFilter {
	t.Helper()
	mkSharded := func(opts ...Option) func() intoFilter {
		return func() intoFilter {
			s, err := NewSharded(4, append([]Option{WithOrder(12), WithSeed(21)}, opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
	}
	return map[string]func() intoFilter{
		"filter":        func() intoFilter { return MustNew(WithOrder(12), WithSeed(21)) },
		"safe":          func() intoFilter { return NewSafe(MustNew(WithOrder(12), WithSeed(21))) },
		"sharded":       mkSharded(),
		"filter/sweep":  func() intoFilter { return MustNew(WithOrder(12), WithSeed(21), WithSweep(SweepAlways)) },
		"safe/sweep":    func() intoFilter { return NewSafe(MustNew(WithOrder(12), WithSeed(21), WithSweep(SweepAlways))) },
		"sharded/sweep": mkSharded(WithSweep(SweepAlways)),
		"filter/scalar": func() intoFilter { return MustNew(WithOrder(12), WithSeed(21), WithKernels(KernelScalar)) },
	}
}

// TestProcessBatchIntoContract pins the caller-buffer contract on every
// flavor: a dirty reused slice is fully overwritten, an aliased subslice of
// a larger array is reused in place, a too-short slice is grown without
// touching the original, and the verdicts are always identical to
// ProcessBatch on a twin filter.
func TestProcessBatchIntoContract(t *testing.T) {
	pkts := diffTrace(500, 77)
	for name, mk := range mkIntoFilters(t) {
		t.Run(name, func(t *testing.T) {
			want := mk().ProcessBatch(pkts)

			t.Run("dirty-reuse", func(t *testing.T) {
				f := mk()
				out := make([]filtering.Verdict, len(pkts))
				for i := range out {
					out[i] = filtering.Verdict(200) // poison
				}
				got := f.ProcessBatchInto(pkts, out)
				if len(got) != len(pkts) {
					t.Fatalf("len = %d, want %d", len(got), len(pkts))
				}
				if &got[0] != &out[0] {
					t.Error("backing array not reused despite sufficient cap")
				}
				for i := range got {
					if got[i] == filtering.Verdict(200) {
						t.Fatalf("verdict[%d] not overwritten", i)
					}
					if got[i] != want[i] {
						t.Fatalf("verdict[%d] = %v, want %v", i, got[i], want[i])
					}
				}
			})

			t.Run("aliased-subslice", func(t *testing.T) {
				f := mk()
				backing := make([]filtering.Verdict, len(pkts)+64)
				for i := range backing {
					backing[i] = filtering.Verdict(123)
				}
				sub := backing[32 : 32 : 32+len(pkts)]
				got := f.ProcessBatchInto(pkts, sub)
				if &got[0] != &backing[32] {
					t.Error("aliased subslice backing array not reused")
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("verdict[%d] = %v, want %v", i, got[i], want[i])
					}
				}
				// The contract writes only [0, len(pkts)) of the
				// subslice; surrounding elements are untouched.
				for i := 0; i < 32; i++ {
					if backing[i] != filtering.Verdict(123) {
						t.Fatalf("backing[%d] clobbered before the subslice", i)
					}
				}
				if backing[32+len(pkts)] != filtering.Verdict(123) {
					t.Error("backing clobbered after the subslice")
				}
			})

			t.Run("too-short", func(t *testing.T) {
				f := mk()
				short := make([]filtering.Verdict, 0, len(pkts)/3)
				full := short[:cap(short)]
				for i := range full {
					full[i] = filtering.Verdict(99)
				}
				got := f.ProcessBatchInto(pkts, short)
				if len(got) != len(pkts) {
					t.Fatalf("len = %d, want %d", len(got), len(pkts))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("verdict[%d] = %v, want %v", i, got[i], want[i])
					}
				}
				// Growth must not scribble on the caller's original
				// array.
				for i, v := range full {
					if v != filtering.Verdict(99) {
						t.Fatalf("original short buffer [%d] mutated", i)
					}
				}
			})

			t.Run("nil-out", func(t *testing.T) {
				f := mk()
				got := f.ProcessBatchInto(pkts, nil)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("verdict[%d] = %v, want %v", i, got[i], want[i])
					}
				}
			})

			t.Run("empty-batch", func(t *testing.T) {
				f := mk()
				buf := make([]filtering.Verdict, 0, 8)
				if got := f.ProcessBatchInto(nil, buf); len(got) != 0 {
					t.Errorf("empty batch returned %d verdicts", len(got))
				}
			})
		})
	}
}

// TestProcessBatchIntoChunkedReuse is the steady-state shape drivers use:
// one verdict buffer recycled across many variable-size chunks, checked
// against a sequential twin.
func TestProcessBatchIntoChunkedReuse(t *testing.T) {
	pkts := diffTrace(3000, 5)
	for name, mk := range mkIntoFilters(t) {
		t.Run(name, func(t *testing.T) {
			into := mk()
			seq := mk()
			var out []filtering.Verdict
			chunks := []int{1, 300, 7, 512, 64, 2, 100}
			off := 0
			for i := 0; off < len(pkts); i++ {
				end := min(off+chunks[i%len(chunks)], len(pkts))
				out = into.ProcessBatchInto(pkts[off:end], out)
				for j := off; j < end; j++ {
					if want := seq.Process(pkts[j]); out[j-off] != want {
						t.Fatalf("verdict[%d] = %v, want %v", j, out[j-off], want)
					}
				}
				off = end
			}
		})
	}
}

// FuzzProcessBatchInto fuzzes the contract: arbitrary chunk splits and
// buffer capacities must reproduce the sequential verdict stream exactly.
func FuzzProcessBatchInto(f *testing.F) {
	f.Add(uint64(1), uint(16), uint(0))
	f.Add(uint64(42), uint(1), uint(3))
	f.Add(uint64(9), uint(255), uint(1000))
	f.Fuzz(func(t *testing.T, seed uint64, chunk uint, capHint uint) {
		pkts := diffTrace(600, seed)
		chunkSize := int(chunk%256) + 1
		seq := MustNew(WithOrder(10), WithSeed(seed))
		bat := MustNew(WithOrder(10), WithSeed(seed))

		want := make([]filtering.Verdict, len(pkts))
		for i := range pkts {
			want[i] = seq.Process(pkts[i])
		}

		out := make([]filtering.Verdict, 0, capHint%1024)
		for off := 0; off < len(pkts); off += chunkSize {
			end := min(off+chunkSize, len(pkts))
			out = bat.ProcessBatchInto(pkts[off:end], out)
			for i := off; i < end; i++ {
				if out[i-off] != want[i] {
					t.Fatalf("seed %d chunk %d: verdict[%d] = %v, want %v",
						seed, chunkSize, i, out[i-off], want[i])
				}
			}
		}
		mustEqualStats(t, seq.Stats(), bat.Stats(), "fuzz")
	})
}
