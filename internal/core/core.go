// Package core implements the bitmap filter, the paper's primary
// contribution (§3): a composite of k Bloom-filter bit vectors of 2^n bits
// ("a {k×n}-bitmap filter") installed at the entry point of a client
// network.
//
// Operation (Algorithms 1 and 2 of the paper):
//
//   - Every outgoing packet hashes its partial address tuple
//     {source-address, source-port, destination-address} with m shared hash
//     functions and marks the resulting bits in ALL k bit vectors. Outgoing
//     packets always pass.
//   - Every incoming packet hashes {destination-address, destination-port,
//     source-address} and is admitted only if all m bits are set in the
//     CURRENT bit vector; otherwise it is dropped.
//   - Every Δt seconds b.rotate advances the current index to the next
//     vector and zeroes the previous one.
//
// Because marks land in all vectors and each vector is zeroed once per k
// rotations, an admitted flow stays admitted for between (k−1)·Δt and
// k·Δt = T_e seconds after its last outgoing packet — the bitmap realizes
// the naive per-tuple expiry timer of §3.3 in O(1) time and fixed
// (k·2^n)/8 bytes.
//
// The filter is driven by virtual time carried on packets; rotations fire
// lazily as timestamps advance, so trace-driven simulation needs no wall
// clock. Use Safe (safe.go) for a goroutine-safe wrapper.
package core

import (
	"errors"
	"fmt"
	"time"

	"bitmapfilter/internal/bitvector"
	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/hashfam"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// Paper defaults (§4.3): a {4×20}-bitmap with 3 hash functions rotated
// every 5 seconds — 512 KiB of state handling out-in latencies up to
// T_e = 20 s.
const (
	DefaultOrder       = 20
	DefaultVectors     = 4
	DefaultHashes      = 3
	DefaultRotateEvery = 5 * time.Second
)

// ErrConfig is returned by New for invalid configurations.
var ErrConfig = errors.New("core: invalid bitmap filter configuration")

// MarkPolicy selects which vectors outgoing packets mark. The paper's
// design marks all vectors; MarkCurrentOnly exists as an ablation that
// demonstrates why (entries would vanish at every rotation).
type MarkPolicy uint8

// Mark policies.
const (
	MarkAllVectors MarkPolicy = iota + 1
	MarkCurrentOnly
)

// TuplePolicy selects which tuple fields are hashed. The paper hashes the
// partial tuple (remote port excluded, §3.3/§5.1); FullTuple is the
// stricter ablation that breaks protocols whose replies come from a
// different remote port.
type TuplePolicy uint8

// Tuple policies.
const (
	PartialTuple TuplePolicy = iota + 1
	FullTuple
)

// KernelMode selects the bit-touch strategy of the data-plane kernels.
type KernelMode uint8

// Kernel modes.
const (
	// KernelCoalesced (the default) groups each packet's m masked hash
	// indexes by 64-bit word and touches every word exactly once: marks
	// split and group the indexes on the stack and apply them to all k
	// vectors with one grouped pass each, lookups probe each distinct
	// word with one masked compare.
	KernelCoalesced KernelMode = iota + 1
	// KernelScalar is the pre-coalescing reference: one load/store per
	// hash index, per vector, per packet. Kept as the pinned baseline
	// for differential tests and scalar-vs-coalesced benchmarks.
	KernelScalar
)

// SweepMode selects when ProcessBatchInto additionally sorts a whole
// batch's (word, mask) pairs and replays them as sequential passes over
// the bitmap (the batch sweep of batchsweep.go). The sweep is exact — the
// differential tests pin verdict-for-verdict equality with per-packet
// processing — but it only pays when the bitmap is too large for the CPU
// caches: sorting costs a few ns per packet, while the random word
// accesses it eliminates are nearly free as long as the vectors are
// cache-resident.
type SweepMode uint8

// Sweep modes.
const (
	// SweepAuto (the default) engages the sorted sweep only for vectors
	// of at least sweepMinWords words, the size regime where per-packet
	// random access starts missing the last-level cache.
	SweepAuto SweepMode = iota + 1
	// SweepAlways sorts every eligible batch regardless of bitmap size.
	// Differential tests use it to pin the sweep's exactness at small
	// orders; on cache-resident bitmaps it is a measured net loss.
	SweepAlways
	// SweepNever always stays on the per-packet path.
	SweepNever
)

// Option configures a Filter.
type Option interface {
	apply(*config)
}

type config struct {
	order       uint
	vectors     int
	hashes      int
	rotateEvery time.Duration
	seed        uint64
	markPolicy  MarkPolicy
	tuplePolicy TuplePolicy
	kernels     KernelMode
	sweep       SweepMode
	apd         DropPolicy
	build       buildConfig
}

func defaultConfig() config {
	return config{
		order:       DefaultOrder,
		vectors:     DefaultVectors,
		hashes:      DefaultHashes,
		rotateEvery: DefaultRotateEvery,
		markPolicy:  MarkAllVectors,
		tuplePolicy: PartialTuple,
		kernels:     KernelCoalesced,
		sweep:       SweepAuto,
	}
}

type orderOption uint

func (o orderOption) apply(c *config) { c.order = uint(o) }

// WithOrder sets n: each bit vector holds 2^n bits.
func WithOrder(n uint) Option { return orderOption(n) }

type vectorsOption int

func (o vectorsOption) apply(c *config) { c.vectors = int(o) }

// WithVectors sets k, the number of bit vectors.
func WithVectors(k int) Option { return vectorsOption(k) }

type hashesOption int

func (o hashesOption) apply(c *config) { c.hashes = int(o) }

// WithHashes sets m, the number of hash functions.
func WithHashes(m int) Option { return hashesOption(m) }

type rotateOption time.Duration

func (o rotateOption) apply(c *config) { c.rotateEvery = time.Duration(o) }

// WithRotateEvery sets Δt, the rotation period.
func WithRotateEvery(dt time.Duration) Option { return rotateOption(dt) }

type seedOption uint64

func (o seedOption) apply(c *config) { c.seed = uint64(o) }

// WithSeed sets the seed of the hash family (and of the APD coin flips).
func WithSeed(seed uint64) Option { return seedOption(seed) }

type markPolicyOption MarkPolicy

func (o markPolicyOption) apply(c *config) { c.markPolicy = MarkPolicy(o) }

// WithMarkPolicy overrides the marking policy (ablation only).
func WithMarkPolicy(p MarkPolicy) Option { return markPolicyOption(p) }

type tuplePolicyOption TuplePolicy

func (o tuplePolicyOption) apply(c *config) { c.tuplePolicy = TuplePolicy(o) }

// WithTuplePolicy overrides which tuple fields are hashed (ablation only).
func WithTuplePolicy(p TuplePolicy) Option { return tuplePolicyOption(p) }

type kernelsOption KernelMode

func (o kernelsOption) apply(c *config) { c.kernels = KernelMode(o) }

// WithKernels overrides the data-plane kernel mode. The default,
// KernelCoalesced, is behaviorally identical to KernelScalar (the
// differential tests pin this) and strictly cheaper per packet; the
// scalar mode exists for A/B benchmarks and differential testing.
func WithKernels(m KernelMode) Option { return kernelsOption(m) }

type sweepOption SweepMode

func (o sweepOption) apply(c *config) { c.sweep = SweepMode(o) }

// WithSweep overrides when batches are word-sorted before touching the
// bitmap; see SweepMode. The default is SweepAuto.
func WithSweep(m SweepMode) Option { return sweepOption(m) }

type apdOption struct{ policy DropPolicy }

func (o apdOption) apply(c *config) { c.apd = o.policy }

// WithAPD enables adaptive packet dropping (§5.3) under the given policy.
// An APD-enabled filter (a) drops unmatched incoming packets only with the
// policy's probability, and (b) stops marking outgoing TCP signal packets
// (SYN+ACK, FIN+ACK, RST±ACK) so scans cannot inflate the bitmap.
func WithAPD(policy DropPolicy) Option { return apdOption{policy: policy} }

// Filter is a {k×n}-bitmap filter. It is not safe for concurrent use; see
// Safe.
type Filter struct {
	cfg     config
	vectors []*bitvector.Vector
	idx     int
	hashes  *hashfam.Family
	scratch []uint64
	sweep   sweepScratch // reused by processSegment for batch coalescing
	rng     *xrand.Rand

	now        time.Duration
	nextRotate time.Duration

	counters  filtering.Counters
	rotations uint64
	marks     uint64
	apdSpared uint64 // unmatched incoming packets admitted by APD
}

var _ filtering.BatchFilter = (*Filter)(nil)

// New constructs a bitmap filter. With no options it is the paper's
// {4×20}-bitmap with m=3 and Δt=5 s.
func New(opts ...Option) (*Filter, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.build != (buildConfig{}) {
		// Flavor selectors (WithShards, WithConcurrencySafe,
		// WithLiveClock) describe compositions above the single filter;
		// only Build honors them. Rejecting them here keeps a misplaced
		// bundle from silently degrading to an unsharded, unlocked
		// filter.
		return nil, fmt.Errorf("%w: flavor options (WithShards/WithConcurrencySafe/WithLiveClock) require Build, not New", ErrConfig)
	}
	if cfg.vectors < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrConfig, cfg.vectors)
	}
	if cfg.rotateEvery <= 0 {
		return nil, fmt.Errorf("%w: Δt=%v", ErrConfig, cfg.rotateEvery)
	}
	switch cfg.markPolicy {
	case MarkAllVectors, MarkCurrentOnly:
	default:
		return nil, fmt.Errorf("%w: mark policy %d", ErrConfig, cfg.markPolicy)
	}
	switch cfg.tuplePolicy {
	case PartialTuple, FullTuple:
	default:
		return nil, fmt.Errorf("%w: tuple policy %d", ErrConfig, cfg.tuplePolicy)
	}
	switch cfg.kernels {
	case KernelCoalesced, KernelScalar:
	default:
		return nil, fmt.Errorf("%w: kernel mode %d", ErrConfig, cfg.kernels)
	}
	switch cfg.sweep {
	case SweepAuto, SweepAlways, SweepNever:
	default:
		return nil, fmt.Errorf("%w: sweep mode %d", ErrConfig, cfg.sweep)
	}
	fam, err := hashfam.New(cfg.hashes, cfg.seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	vectors := make([]*bitvector.Vector, cfg.vectors)
	for i := range vectors {
		v, err := bitvector.New(cfg.order)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		vectors[i] = v
	}
	return &Filter{
		cfg:        cfg,
		vectors:    vectors,
		hashes:     fam,
		scratch:    make([]uint64, 0, cfg.hashes), //bf:allow boundedalloc cfg.hashes was validated by hashfam.New above
		rng:        xrand.New(cfg.seed ^ 0xb17a9f11ce5),
		nextRotate: cfg.rotateEvery,
	}, nil
}

// MustNew is New for statically known options; it panics on error.
func MustNew(opts ...Option) *Filter {
	f, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return f
}

// Name implements filtering.PacketFilter.
func (f *Filter) Name() string {
	return fmt.Sprintf("bitmap{%dx%d,m=%d,dt=%v}",
		f.cfg.vectors, f.cfg.order, f.cfg.hashes, f.cfg.rotateEvery)
}

// Order returns n.
func (f *Filter) Order() uint { return f.cfg.order }

// Vectors returns k.
func (f *Filter) Vectors() int { return f.cfg.vectors }

// Hashes returns m.
func (f *Filter) Hashes() int { return f.cfg.hashes }

// RotateEvery returns Δt.
func (f *Filter) RotateEvery() time.Duration { return f.cfg.rotateEvery }

// ExpiryTimer returns T_e = k·Δt, the maximum lifetime of a mark.
func (f *Filter) ExpiryTimer() time.Duration {
	return time.Duration(f.cfg.vectors) * f.cfg.rotateEvery
}

// MemoryBytes returns the fixed footprint of the bitmap: (k·2^n)/8 bytes.
func (f *Filter) MemoryBytes() uint64 {
	return uint64(f.cfg.vectors) * f.vectors[0].Bytes()
}

// Counters implements filtering.PacketFilter.
func (f *Filter) Counters() filtering.Counters { return f.counters }

// Rotations returns the number of b.rotate invocations so far.
func (f *Filter) Rotations() uint64 { return f.rotations }

// Marks returns the number of outgoing packets that marked the bitmap.
func (f *Filter) Marks() uint64 { return f.marks }

// APDSpared returns the number of unmatched incoming packets that adaptive
// packet dropping chose to admit anyway.
func (f *Filter) APDSpared() uint64 { return f.apdSpared }

// Utilization returns U, the fraction of set bits in the current vector
// (§4.1).
func (f *Filter) Utilization() float64 { return f.vectors[f.idx].Utilization() }

// PenetrationProbability returns the instantaneous probability p = U^m that
// a random incoming tuple penetrates the filter (Equation 1).
func (f *Filter) PenetrationProbability() float64 {
	p := 1.0
	u := f.Utilization()
	for i := 0; i < f.cfg.hashes; i++ {
		p *= u
	}
	return p
}

// AdvanceTo implements filtering.PacketFilter: it fires every rotation due
// strictly before or at time now. Gaps spanning ≥ k rotations short-circuit
// to a full reset.
func (f *Filter) AdvanceTo(now time.Duration) {
	if now <= f.now {
		return
	}
	f.now = now
	if f.now < f.nextRotate {
		return
	}
	pending := uint64((f.now-f.nextRotate)/f.cfg.rotateEvery) + 1
	if pending >= uint64(f.cfg.vectors) {
		// Every vector would be cleared anyway: reset wholesale but
		// keep the rotation accounting exact.
		for _, v := range f.vectors {
			v.Reset()
		}
		f.idx = (f.idx + int(pending%uint64(f.cfg.vectors))) % f.cfg.vectors
		f.rotations += pending
	} else {
		for i := uint64(0); i < pending; i++ {
			f.Rotate()
		}
	}
	f.nextRotate += time.Duration(pending) * f.cfg.rotateEvery
}

// Reset clears every bit vector and all statistics, returning the filter
// to its just-constructed state (the rotation schedule continues from the
// current virtual time). Operators use this to flush state after an
// incident without reallocating. An attached APD policy that implements
// PolicyResetter has its sliding windows flushed too, so post-reset drop
// probabilities do not reflect pre-incident traffic.
func (f *Filter) Reset() {
	for _, v := range f.vectors {
		v.Reset()
	}
	f.idx = 0
	f.counters = filtering.Counters{}
	f.rotations = 0
	f.marks = 0
	f.apdSpared = 0
	if r, ok := f.cfg.apd.(PolicyResetter); ok {
		r.Reset()
	}
}

// Rotate performs one b.rotate step (Algorithm 1): the current index moves
// to the next vector and the previous vector is zeroed.
func (f *Filter) Rotate() {
	last := f.idx
	f.idx = (f.idx + 1) % f.cfg.vectors
	f.vectors[last].Reset()
	f.rotations++
}

// Process implements filtering.PacketFilter (Algorithm 2, b.filter).
//
//bf:hotpath
func (f *Filter) Process(pkt packet.Packet) filtering.Verdict {
	f.AdvanceTo(pkt.Time)
	return f.process(pkt)
}

// ProcessBatch runs pkts through the filter in order and returns one
// verdict per packet. It is behaviorally identical to calling Process on
// each packet in sequence — same verdicts, counters, rotations and APD coin
// flips — but advances the rotation clock only when a packet's timestamp
// actually moves time forward, so a burst sharing one timestamp pays a
// single comparison instead of a full AdvanceTo call each. Safe and Sharded
// build on it to amortize lock acquisitions across whole batches.
func (f *Filter) ProcessBatch(pkts []packet.Packet) []filtering.Verdict {
	if len(pkts) == 0 {
		return nil
	}
	out := make([]filtering.Verdict, len(pkts))
	f.processBatch(pkts, out)
	return out
}

// ProcessBatchInto is ProcessBatch writing into a caller-provided buffer
// per the filtering.BatchFilter contract: out's backing array is reused
// when cap(out) >= len(pkts) — a steady-state batch stream then runs with
// zero allocations — and grown otherwise. Every element of the returned
// slice (length len(pkts)) is overwritten.
//
//bf:hotpath
func (f *Filter) ProcessBatchInto(pkts []packet.Packet, out []filtering.Verdict) []filtering.Verdict {
	out = filtering.GrowVerdicts(out, len(pkts)) //bf:allow escapecheck amortized grow per the BatchFilter contract; steady state reuses the caller buffer
	f.processBatch(pkts, out)
	return out
}

// processBatch is the allocation-free core of ProcessBatch; out must have
// the same length as pkts.
//
// When the sweep engages (see sweepEnabled), batches of at least
// batchSortMin packets are cut into rotation-free segments and each
// segment runs through the sorted word-sweep of processSegment — a few
// sequential passes over the bitmap instead of per-packet random walks.
// Segment boundaries fall exactly where AdvanceTo would fire a rotation,
// so the sweep never spans a vector reset and verdicts stay
// byte-identical to the per-packet path.
//
//bf:hotpath
func (f *Filter) processBatch(pkts []packet.Packet, out []filtering.Verdict) {
	if !f.sweepEnabled() || len(pkts) < batchSortMin {
		for i := range pkts {
			if pkts[i].Time > f.now {
				f.AdvanceTo(pkts[i].Time)
			}
			out[i] = f.process(pkts[i])
		}
		return
	}
	for off := 0; off < len(pkts); {
		if pkts[off].Time > f.now {
			f.AdvanceTo(pkts[off].Time)
		}
		// Extend the segment up to (not including) the first packet
		// whose timestamp would fire a rotation.
		end := off + 1
		for end < len(pkts) && pkts[end].Time < f.nextRotate {
			end++
		}
		f.processSegment(pkts[off:end], out[off:end])
		off = end
	}
}

// process applies Algorithm 2 to one packet, assuming the rotation clock
// has already been advanced to pkt.Time.
//
//bf:hotpath
func (f *Filter) process(pkt packet.Packet) filtering.Verdict {
	if pkt.Dir == packet.Outgoing {
		// Under APD the marking policy skips TCP signal packets so
		// that SYN/FIN-scan responses cannot inflate the bitmap
		// (§5.3).
		if f.cfg.apd == nil || !pkt.IsSignal() {
			f.mark(f.key(pkt))
		}
		if f.cfg.apd != nil {
			f.cfg.apd.Observe(pkt)
		}
		f.counters.Count(pkt, filtering.Pass)
		return filtering.Pass
	}

	v := filtering.Pass
	if !f.lookup(f.key(pkt)) {
		v = filtering.Drop
		if f.cfg.apd != nil {
			// APD drops unmatched packets only probabilistically.
			p := f.cfg.apd.DropProbability(pkt.Time)
			if !f.rng.Bool(p) {
				v = filtering.Pass
				f.apdSpared++
			}
		}
	}
	// Incoming packets feed the APD indicator only when admitted: a
	// dropped packet never reaches the protected downstream link, so
	// counting its bytes would inflate U_b under exactly the floods APD
	// is meant to ride out (see the Observe contract in apd.go).
	if v == filtering.Pass && f.cfg.apd != nil {
		f.cfg.apd.Observe(pkt)
	}
	f.counters.Count(pkt, v)
	return v
}

// PunchHole implements the hole-punching technique of §5.1: it marks the
// bitmap exactly as an outgoing packet with tuple {local, localPort,
// remote, x} would, allowing remote to initiate a connection to
// local:localPort until the marks expire.
func (f *Filter) PunchHole(local packet.Addr, localPort uint16, remote packet.Addr, proto packet.Proto) {
	tup := packet.Tuple{
		Src:     local,
		SrcPort: localPort,
		Dst:     remote,
		Proto:   proto,
	}
	f.mark(f.keyFor(tup, packet.Outgoing))
}

// WouldAdmit reports, without counting or APD, whether an incoming packet
// with the given tuple would currently pass the bitmap lookup. Attack
// verification in the Figure 5 experiment uses this to classify penetrating
// packets.
func (f *Filter) WouldAdmit(tup packet.Tuple) bool {
	return f.lookup(f.keyFor(tup, packet.Incoming))
}

// hkey is a filter key in the fixed-width form hashfam consumes: the key
// bytes packed into two little-endian 64-bit lanes plus the true byte
// length. Building it touches only registers — the hot path never
// materializes a key byte slice.
type hkey struct {
	lo, hi uint64
	n      int
}

//bf:hotpath
func (f *Filter) key(pkt packet.Packet) hkey {
	return f.keyFor(pkt.Tuple, pkt.Dir)
}

// keyFor packs the hashed key of (tup, dir) under the filter's tuple
// policy.
//
//bf:hotpath
func (f *Filter) keyFor(tup packet.Tuple, dir packet.Direction) hkey {
	if f.cfg.tuplePolicy == FullTuple {
		// Ablation: hash the complete 4-tuple, canonicalized to the
		// outgoing orientation.
		if dir == packet.Incoming {
			tup = tup.Reverse()
		}
		lo, hi := tup.FullKeyWords()
		return hkey{lo: lo, hi: hi, n: packet.FullKeySize}
	}
	var lo, hi uint64
	if dir == packet.Outgoing {
		lo, hi = tup.OutgoingKeyWords()
	} else {
		lo, hi = tup.IncomingKeyWords()
	}
	return hkey{lo: lo, hi: hi, n: packet.KeySize}
}

// mark sets the m hash bits of key; the scratch slice keeps the hot path
// allocation-free. Under the coalesced kernels the m indexes are hashed
// once and grouped into word/mask pairs once, then every vector is touched
// exactly once per distinct word — a mark costs one hash evaluation, one
// grouping pass and k grouped word read-modify-writes rather than k·m
// scalar Set calls.
//
//bf:hotpath
func (f *Filter) mark(k hkey) {
	f.scratch = f.hashes.IndexesFixed(f.scratch[:0], k.lo, k.hi, k.n)
	if f.cfg.kernels == KernelScalar {
		if f.cfg.markPolicy == MarkCurrentOnly {
			f.vectors[f.idx].SetAllScalar(f.scratch)
		} else {
			for _, v := range f.vectors {
				v.SetAllScalar(f.scratch)
			}
		}
		f.marks++
		return
	}
	if f.cfg.markPolicy == MarkCurrentOnly {
		f.vectors[f.idx].SetAll(f.scratch)
	} else {
		bitvector.SetAllVectors(f.vectors, f.scratch)
	}
	f.marks++
}

// lookup tests the m hash bits of key in the current vector only.
//
//bf:hotpath
func (f *Filter) lookup(k hkey) bool {
	f.scratch = f.hashes.IndexesFixed(f.scratch[:0], k.lo, k.hi, k.n)
	if f.cfg.kernels == KernelScalar {
		return f.vectors[f.idx].TestAllScalar(f.scratch)
	}
	return f.vectors[f.idx].TestAll(f.scratch)
}
