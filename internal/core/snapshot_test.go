package core

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

func TestSnapshotRoundTrip(t *testing.T) {
	f := small(WithSeed(9))
	r := xrand.New(4)
	now := time.Duration(0)
	for i := 0; i < 2000; i++ {
		now += time.Duration(r.Intn(20)) * time.Millisecond
		f.Process(outPkt(now, client, packet.Addr(r.Uint32()|1), uint16(1024+r.Intn(5000)), 80))
	}
	f.Process(inPkt(now, server, client, 80, 4000)) // some incoming counters

	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	g, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}

	if g.Order() != f.Order() || g.Vectors() != f.Vectors() || g.Hashes() != f.Hashes() {
		t.Error("configuration not restored")
	}
	if g.RotateEvery() != f.RotateEvery() {
		t.Error("rotation period not restored")
	}
	if g.Rotations() != f.Rotations() || g.Marks() != f.Marks() {
		t.Errorf("counters not restored: rot %d/%d marks %d/%d",
			g.Rotations(), f.Rotations(), g.Marks(), f.Marks())
	}
	if g.Counters() != f.Counters() {
		t.Errorf("packet counters not restored: %+v vs %+v", g.Counters(), f.Counters())
	}
	if g.Utilization() != f.Utilization() {
		t.Errorf("utilization %v vs %v", g.Utilization(), f.Utilization())
	}

	// Behavioral equivalence: both filters give identical verdicts on a
	// probe battery.
	for i := 0; i < 5000; i++ {
		tup := packet.Tuple{
			Src:     packet.Addr(r.Uint32() | 1),
			Dst:     client,
			SrcPort: uint16(1 + r.Intn(65535)),
			DstPort: uint16(1024 + r.Intn(5000)),
			Proto:   packet.TCP,
		}
		if f.WouldAdmit(tup) != g.WouldAdmit(tup) {
			t.Fatalf("verdict divergence on %v", tup)
		}
	}

	// Both continue identically through a rotation.
	later := now + 6*time.Second
	f.AdvanceTo(later)
	g.AdvanceTo(later)
	if f.Rotations() != g.Rotations() {
		t.Errorf("post-restore rotations diverge: %d vs %d", f.Rotations(), g.Rotations())
	}
	if f.Utilization() != g.Utilization() {
		t.Error("post-rotation utilization diverges")
	}
}

func TestSnapshotPreservesAdmissions(t *testing.T) {
	f := small()
	f.Process(outPkt(0, client, server, 4000, 80))

	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v := g.Process(inPkt(time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("restored filter dropped a known flow's reply")
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	data := make([]byte, 200)
	if _, err := ReadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrSnapshotMagic) {
		t.Errorf("error = %v, want ErrSnapshotMagic", err)
	}
}

func TestSnapshotBadVersion(t *testing.T) {
	f := small()
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version field
	if _, err := ReadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("error = %v, want ErrSnapshotVersion", err)
	}
}

func TestSnapshotTruncated(t *testing.T) {
	f := small()
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 10, buf.Len() / 2, buf.Len() - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()[:n])); err == nil {
			t.Errorf("truncated snapshot (%d bytes) accepted", n)
		}
	}
}

func TestSnapshotCorruptIndex(t *testing.T) {
	f := small()
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Idx field is the 8th uint32 (offset 28).
	data[28] = 0xff
	if _, err := ReadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("error = %v, want ErrSnapshotCorrupt", err)
	}
}

func TestSnapshotExtraOptionsApply(t *testing.T) {
	f := small()
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-attach an APD policy at restore time.
	g, err := ReadSnapshot(&buf, WithAPD(fixedPolicy{p: 0}))
	if err != nil {
		t.Fatal(err)
	}
	// p=0 APD admits unmatched packets: proves the policy took effect.
	if v := g.Process(inPkt(0, server, client, 80, 9999)); v != filtering.Pass {
		t.Error("APD option not applied on restore")
	}
}

// Property: any sequence of marks snapshots to a behaviourally identical
// filter (checked by replaying probes on both).
func TestSnapshotRoundTripProperty(t *testing.T) {
	fn := func(seed uint64, flowPorts []uint16) bool {
		f := MustNew(WithOrder(10), WithVectors(3), WithHashes(2),
			WithRotateEvery(time.Second), WithSeed(seed))
		now := time.Duration(0)
		for _, port := range flowPorts {
			now += 100 * time.Millisecond
			f.Process(outPkt(now, client, server, port, 80))
		}
		var buf bytes.Buffer
		if err := f.WriteSnapshot(&buf); err != nil {
			return false
		}
		g, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		for _, port := range flowPorts {
			tup := packet.Tuple{Src: server, Dst: client, SrcPort: 80, DstPort: port, Proto: packet.TCP}
			if f.WouldAdmit(tup) != g.WouldAdmit(tup) {
				return false
			}
		}
		return f.Utilization() == g.Utilization() && f.Marks() == g.Marks()
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestResetClearsEverything(t *testing.T) {
	f := small()
	f.Process(outPkt(0, client, server, 4000, 80))
	f.Process(inPkt(time.Second, server, client, 80, 9))
	f.AdvanceTo(6 * time.Second)
	f.Reset()
	if f.Utilization() != 0 || f.Marks() != 0 || f.Rotations() != 0 {
		t.Errorf("state after Reset: U=%v marks=%d rot=%d",
			f.Utilization(), f.Marks(), f.Rotations())
	}
	if f.Counters() != (filtering.Counters{}) {
		t.Errorf("counters after Reset: %+v", f.Counters())
	}
	// The rotation schedule continues: processing still works.
	f.Process(outPkt(7*time.Second, client, server, 4000, 80))
	if v := f.Process(inPkt(8*time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("filter unusable after Reset")
	}
}

func TestSafeParityMethods(t *testing.T) {
	s := NewSafe(small())
	s.PunchHole(client, 2000, server, packet.TCP)
	if !s.WouldAdmit(packet.Tuple{Src: server, Dst: client, SrcPort: 1, DstPort: 2000, Proto: packet.TCP}) {
		t.Error("Safe.WouldAdmit broken")
	}
	if s.Stats().Marks != 1 {
		t.Error("Safe.Stats broken")
	}
	s.Reset()
	if s.Stats().Marks != 0 {
		t.Error("Safe.Reset broken")
	}
}

func TestSnapshotWriteError(t *testing.T) {
	f := small()
	if err := f.WriteSnapshot(failWriter{}); err == nil {
		t.Error("write error not propagated")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
