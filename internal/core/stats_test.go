package core

import (
	"strings"
	"testing"
	"time"
)

func TestStatsSnapshot(t *testing.T) {
	f := small()
	f.Process(outPkt(0, client, server, 4000, 80))
	f.Process(inPkt(time.Second, server, client, 80, 4000))
	f.AdvanceTo(6 * time.Second) // one rotation

	s := f.Stats()
	if s.Order != 12 || s.Vectors != 4 || s.Hashes != 3 {
		t.Errorf("config: %+v", s)
	}
	if s.RotateEvery != 5*time.Second || s.ExpiryTimer != 20*time.Second {
		t.Errorf("timers: %v / %v", s.RotateEvery, s.ExpiryTimer)
	}
	if s.MemoryBytes != f.MemoryBytes() {
		t.Error("memory mismatch")
	}
	if s.Rotations != 1 || s.CurrentIndex != 1 {
		t.Errorf("clock: rotations=%d idx=%d", s.Rotations, s.CurrentIndex)
	}
	if s.Now != 6*time.Second || s.NextRotation != 10*time.Second {
		t.Errorf("now=%v next=%v", s.Now, s.NextRotation)
	}
	if s.Marks != 1 {
		t.Errorf("marks = %d", s.Marks)
	}
	if len(s.VectorUtilization) != 4 {
		t.Fatalf("vector utilizations: %v", s.VectorUtilization)
	}
	// Vector 0 was cleared by the rotation; the others still hold the
	// mark's bits.
	if s.VectorUtilization[0] != 0 {
		t.Errorf("cleared vector utilization = %v", s.VectorUtilization[0])
	}
	if s.VectorUtilization[1] == 0 {
		t.Error("current vector empty despite mark")
	}
	if s.Utilization != s.VectorUtilization[s.CurrentIndex] {
		t.Error("Utilization != current vector's")
	}
	if s.Counters.OutPackets != 1 || s.Counters.InPassed != 1 {
		t.Errorf("counters: %+v", s.Counters)
	}

	str := s.String()
	for _, want := range []string{"bitmap{4x12", "rotations=1", "marks=1", "out=1"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q:\n%s", want, str)
		}
	}
}

func TestStatsAPDSpared(t *testing.T) {
	f := small(WithAPD(fixedPolicy{p: 0}))
	f.Process(inPkt(0, server, client, 80, 1)) // unmatched, spared by APD
	if s := f.Stats(); s.APDSpared != 1 {
		t.Errorf("APDSpared = %d", s.APDSpared)
	}
}

func TestStatsDoesNotAdvanceClock(t *testing.T) {
	f := small()
	f.Process(outPkt(0, client, server, 4000, 80))
	before := f.Rotations()
	_ = f.Stats()
	if f.Rotations() != before {
		t.Error("Stats advanced the rotation clock")
	}
}
