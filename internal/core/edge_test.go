package core

import (
	"testing"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// Extreme-but-legal configurations must behave according to the model.

func TestSingleVectorFilter(t *testing.T) {
	// k=1: T_e = Δt and every rotation wipes the whole filter, so a
	// mark's lifetime is between 0 and Δt.
	f := MustNew(WithOrder(12), WithVectors(1), WithHashes(3), WithRotateEvery(5*time.Second))
	if f.ExpiryTimer() != 5*time.Second {
		t.Errorf("T_e = %v", f.ExpiryTimer())
	}
	f.Process(outPkt(0, client, server, 4000, 80))
	if v := f.Process(inPkt(4*time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("reply dropped within Δt")
	}
	f.AdvanceTo(5 * time.Second)
	tup := packet.Tuple{Src: server, Dst: client, SrcPort: 80, DstPort: 4000, Proto: packet.TCP}
	if f.WouldAdmit(tup) {
		t.Error("mark survived the k=1 rotation")
	}
}

func TestMinimumOrderFilter(t *testing.T) {
	// order=6 (64 bits per vector): tiny, collision-heavy, but must be
	// functionally correct (no false negatives for live flows).
	f := MustNew(WithOrder(6), WithVectors(4), WithHashes(2), WithRotateEvery(time.Second))
	f.Process(outPkt(0, client, server, 4000, 80))
	if v := f.Process(inPkt(100*time.Millisecond, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("reply dropped on minimum-order filter")
	}
	if f.MemoryBytes() != 4*64/8 {
		t.Errorf("MemoryBytes = %d", f.MemoryBytes())
	}
}

func TestMaximumHashesFilter(t *testing.T) {
	// m=64 (the hashfam cap): functional, utilization climbs fast.
	f := MustNew(WithOrder(12), WithVectors(2), WithHashes(64), WithRotateEvery(time.Second))
	f.Process(outPkt(0, client, server, 4000, 80))
	if v := f.Process(inPkt(time.Millisecond, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("reply dropped with m=64")
	}
	// 64 hash positions from one mark (minus collisions).
	if got := f.Utilization(); got < 50.0/4096 {
		t.Errorf("utilization %v too low for m=64", got)
	}
}

func TestSubSecondRotation(t *testing.T) {
	// Δt = 50 ms: the aggressive end of the §5.2 countermeasure.
	f := MustNew(WithOrder(12), WithVectors(4), WithHashes(3), WithRotateEvery(50*time.Millisecond))
	f.Process(outPkt(0, client, server, 4000, 80))
	f.AdvanceTo(300 * time.Millisecond) // > T_e = 200 ms
	tup := packet.Tuple{Src: server, Dst: client, SrcPort: 80, DstPort: 4000, Proto: packet.TCP}
	if f.WouldAdmit(tup) {
		t.Error("mark survived past sub-second T_e")
	}
	if f.Rotations() != 6 {
		t.Errorf("rotations = %d", f.Rotations())
	}
}

// Soak test: long random schedule with interleaved flows, probes, gaps and
// manual rotations; invariants checked throughout.
func TestSoakRandomSchedule(t *testing.T) {
	f := MustNew(WithOrder(14), WithVectors(4), WithHashes(3), WithRotateEvery(2*time.Second))
	r := xrand.New(99)
	now := time.Duration(0)

	type flowRec struct {
		tup      packet.Tuple
		lastMark time.Duration
	}
	flows := make(map[uint16]*flowRec)

	for step := 0; step < 30000; step++ {
		now += time.Duration(r.Intn(200)) * time.Millisecond
		port := uint16(1000 + r.Intn(300))
		switch r.Intn(3) {
		case 0: // outgoing packet on some flow
			remote := packet.AddrFrom4(198, 51, 100, byte(port%30))
			tup := packet.Tuple{Src: client, Dst: remote, SrcPort: port, DstPort: 80, Proto: packet.TCP}
			f.Process(packet.Packet{Time: now, Tuple: tup, Dir: packet.Outgoing, Flags: packet.ACK})
			flows[port] = &flowRec{tup: tup, lastMark: now}
		case 1: // incoming probe on a known flow
			rec, ok := flows[port]
			if !ok {
				continue
			}
			f.AdvanceTo(now)
			admitted := f.WouldAdmit(rec.tup.Reverse())
			age := now - rec.lastMark
			// Invariant (§3.3): marks younger than (k−1)·Δt are
			// guaranteed admitted; marks older than k·Δt are
			// guaranteed expired.
			if age < 6*time.Second && !admitted {
				t.Fatalf("step %d: mark aged %v (< (k-1)Δt) not admitted", step, age)
			}
			if age >= 8*time.Second && admitted {
				t.Fatalf("step %d: mark aged %v (>= T_e) still admitted", step, age)
			}
		case 2: // random stranger must track utilization expectations
			tup := packet.Tuple{
				Src:     packet.Addr(r.Uint32() | 1),
				Dst:     client,
				SrcPort: uint16(1 + r.Intn(65535)),
				DstPort: uint16(1 + r.Intn(65535)),
				Proto:   packet.UDP,
			}
			f.AdvanceTo(now)
			_ = f.WouldAdmit(tup) // must not panic; rate checked in aggregate elsewhere
		}
	}
	// Utilization is a valid fraction and the counters are consistent.
	if u := f.Utilization(); u < 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	c := f.Counters()
	if c.InPassed+c.InDropped != c.InPackets {
		t.Errorf("counter mismatch: %+v", c)
	}
}
