package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/flowtable"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

var (
	client = packet.AddrFrom4(10, 0, 0, 1)
	server = packet.AddrFrom4(198, 51, 100, 7)
)

func outPkt(t time.Duration, src, dst packet.Addr, sp, dp uint16) packet.Packet {
	return packet.Packet{
		Time:  t,
		Tuple: packet.Tuple{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: packet.TCP},
		Dir:   packet.Outgoing,
		Flags: packet.ACK,
	}
}

func inPkt(t time.Duration, src, dst packet.Addr, sp, dp uint16) packet.Packet {
	return packet.Packet{
		Time:  t,
		Tuple: packet.Tuple{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: packet.TCP},
		Dir:   packet.Incoming,
		Flags: packet.ACK,
	}
}

// small returns a filter small and fast enough for tight loops:
// {4×12}-bitmap, m=3, Δt=5s.
func small(opts ...Option) *Filter {
	base := []Option{WithOrder(12), WithVectors(4), WithHashes(3), WithRotateEvery(5 * time.Second)}
	return MustNew(append(base, opts...)...)
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		opts []Option
	}{
		{name: "zero vectors", opts: []Option{WithVectors(0)}},
		{name: "negative vectors", opts: []Option{WithVectors(-1)}},
		{name: "zero rotate", opts: []Option{WithRotateEvery(0)}},
		{name: "negative rotate", opts: []Option{WithRotateEvery(-time.Second)}},
		{name: "bad order", opts: []Option{WithOrder(2)}},
		{name: "zero hashes", opts: []Option{WithHashes(0)}},
		{name: "bad mark policy", opts: []Option{WithMarkPolicy(MarkPolicy(9))}},
		{name: "bad tuple policy", opts: []Option{WithTuplePolicy(TuplePolicy(9))}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.opts...); !errors.Is(err, ErrConfig) {
				t.Errorf("New() error = %v, want ErrConfig", err)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config did not panic")
		}
	}()
	MustNew(WithVectors(0))
}

func TestPaperDefaults(t *testing.T) {
	f := MustNew()
	if f.Order() != 20 || f.Vectors() != 4 || f.Hashes() != 3 {
		t.Errorf("defaults = {%dx%d, m=%d}", f.Vectors(), f.Order(), f.Hashes())
	}
	if f.RotateEvery() != 5*time.Second {
		t.Errorf("Δt = %v", f.RotateEvery())
	}
	// §4.1: "the memory space required by the bitmap filter is only
	// (k·2^n)/8 = 512K bytes".
	if got := f.MemoryBytes(); got != 512*1024 {
		t.Errorf("MemoryBytes = %d, want 524288", got)
	}
	// T_e = k·Δt = 20 s.
	if got := f.ExpiryTimer(); got != 20*time.Second {
		t.Errorf("ExpiryTimer = %v, want 20s", got)
	}
	if f.Name() == "" {
		t.Error("empty Name")
	}
}

func TestOutgoingAlwaysPasses(t *testing.T) {
	f := small()
	for i := 0; i < 100; i++ {
		if v := f.Process(outPkt(time.Duration(i)*time.Second, client, server, uint16(1000+i), 80)); v != filtering.Pass {
			t.Fatal("outgoing packet dropped")
		}
	}
}

func TestReplyAdmitted(t *testing.T) {
	f := small()
	f.Process(outPkt(0, client, server, 4000, 80))
	if v := f.Process(inPkt(time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("reply dropped")
	}
}

func TestReplyFromDifferentRemotePortAdmitted(t *testing.T) {
	// §3.3/§5.1: the remote port is excluded from the hash, so a reply
	// from any remote port is admitted. This is what an exact SPI filter
	// cannot do (flowtable tests assert the opposite there).
	f := small()
	f.Process(outPkt(0, client, server, 4000, 21))
	if v := f.Process(inPkt(time.Second, server, client, 20, 4000)); v != filtering.Pass {
		t.Error("reply from different remote port dropped")
	}
}

func TestUnsolicitedIncomingDropped(t *testing.T) {
	f := small()
	if v := f.Process(inPkt(0, server, client, 80, 4000)); v != filtering.Drop {
		t.Error("unsolicited incoming packet passed")
	}
}

func TestDifferentLocalPortDropped(t *testing.T) {
	f := small()
	f.Process(outPkt(0, client, server, 4000, 80))
	if v := f.Process(inPkt(time.Second, server, client, 80, 4001)); v != filtering.Drop {
		t.Error("packet to different local port passed")
	}
}

func TestDifferentRemoteHostDropped(t *testing.T) {
	f := small()
	f.Process(outPkt(0, client, server, 4000, 80))
	other := packet.AddrFrom4(203, 0, 113, 50)
	if v := f.Process(inPkt(time.Second, other, client, 80, 4000)); v != filtering.Drop {
		t.Error("packet from different remote host passed")
	}
}

func TestExpirySemantics(t *testing.T) {
	// k=4, Δt=5s: a mark made at t=0 survives until just before t=20s
	// (= T_e) and is gone at t=20s.
	f := small()
	f.Process(outPkt(0, client, server, 4000, 80))
	for _, ts := range []time.Duration{
		time.Second, 6 * time.Second, 11 * time.Second, 16 * time.Second,
		19*time.Second + 999*time.Millisecond,
	} {
		// Use WouldAdmit so the probes themselves don't perturb state.
		f.AdvanceTo(ts)
		if !f.WouldAdmit(packet.Tuple{Src: server, Dst: client, SrcPort: 80, DstPort: 4000, Proto: packet.TCP}) {
			t.Fatalf("mark expired early at %v", ts)
		}
	}
	f.AdvanceTo(20 * time.Second)
	if f.WouldAdmit(packet.Tuple{Src: server, Dst: client, SrcPort: 80, DstPort: 4000, Proto: packet.TCP}) {
		t.Error("mark survived past T_e")
	}
}

func TestExpiryLowerBound(t *testing.T) {
	// A mark made just before a rotation lives at least (k−1)·Δt: made at
	// t=4.9s, it must still be admitted at t=19.8s... no — it is cleared
	// when its oldest surviving vector becomes current at t=20s. It must
	// survive through t<20s and die at 20s.
	f := small()
	f.Process(outPkt(4900*time.Millisecond, client, server, 4000, 80))
	f.AdvanceTo(19 * time.Second)
	tup := packet.Tuple{Src: server, Dst: client, SrcPort: 80, DstPort: 4000, Proto: packet.TCP}
	if !f.WouldAdmit(tup) {
		t.Error("mark expired before (k-1)·Δt")
	}
	f.AdvanceTo(20 * time.Second)
	if f.WouldAdmit(tup) {
		t.Error("mark from t=4.9s survived the rotation that clears it")
	}
}

func TestRefreshKeepsFlowAlive(t *testing.T) {
	f := small()
	tup := packet.Tuple{Src: server, Dst: client, SrcPort: 80, DstPort: 4000, Proto: packet.TCP}
	for ts := time.Duration(0); ts <= 120*time.Second; ts += 10 * time.Second {
		f.Process(outPkt(ts, client, server, 4000, 80))
	}
	f.AdvanceTo(125 * time.Second)
	if !f.WouldAdmit(tup) {
		t.Error("refreshed flow expired")
	}
}

func TestLargeGapResets(t *testing.T) {
	f := small()
	f.Process(outPkt(0, client, server, 4000, 80))
	// A gap of 10 minutes spans far more than k rotations: everything
	// must be forgotten, and the rotation accounting must stay exact.
	f.AdvanceTo(10 * time.Minute)
	tup := packet.Tuple{Src: server, Dst: client, SrcPort: 80, DstPort: 4000, Proto: packet.TCP}
	if f.WouldAdmit(tup) {
		t.Error("mark survived a 10-minute gap")
	}
	if got, want := f.Rotations(), uint64(120); got != want {
		t.Errorf("Rotations = %d, want %d", got, want)
	}
	if f.Utilization() != 0 {
		t.Errorf("Utilization after reset = %v", f.Utilization())
	}
}

func TestRotationScheduleExactMultiples(t *testing.T) {
	f := small()
	f.AdvanceTo(5 * time.Second)
	if f.Rotations() != 1 {
		t.Errorf("rotations at t=5s: %d", f.Rotations())
	}
	f.AdvanceTo(14999 * time.Millisecond)
	if f.Rotations() != 2 {
		t.Errorf("rotations at t=14.999s: %d", f.Rotations())
	}
	f.AdvanceTo(15 * time.Second)
	if f.Rotations() != 3 {
		t.Errorf("rotations at t=15s: %d", f.Rotations())
	}
}

func TestTimeNeverGoesBackwards(t *testing.T) {
	f := small()
	f.Process(outPkt(10*time.Second, client, server, 4000, 80))
	r := f.Rotations()
	// An out-of-order timestamp must not rewind the clock or re-rotate.
	f.Process(outPkt(3*time.Second, client, server, 4001, 80))
	if f.Rotations() != r {
		t.Error("stale timestamp changed rotation state")
	}
	if v := f.Process(inPkt(11*time.Second, server, client, 80, 4001)); v != filtering.Pass {
		t.Error("mark made with stale timestamp not usable")
	}
}

func TestMarkCurrentOnlyAblation(t *testing.T) {
	// Marking only the current vector breaks continuity: the flow dies at
	// the first rotation even though T_e = 20s.
	f := small(WithMarkPolicy(MarkCurrentOnly))
	f.Process(outPkt(0, client, server, 4000, 80))
	if v := f.Process(inPkt(time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Fatal("reply dropped before any rotation")
	}
	f.AdvanceTo(6 * time.Second) // one rotation
	tup := packet.Tuple{Src: server, Dst: client, SrcPort: 80, DstPort: 4000, Proto: packet.TCP}
	if f.WouldAdmit(tup) {
		t.Error("MarkCurrentOnly flow survived a rotation; ablation should break it")
	}
}

func TestFullTupleAblation(t *testing.T) {
	f := small(WithTuplePolicy(FullTuple))
	f.Process(outPkt(0, client, server, 4000, 80))
	// Exact reply passes.
	if v := f.Process(inPkt(time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("exact reply dropped under FullTuple")
	}
	// Reply from a different remote port is dropped (unlike PartialTuple).
	if v := f.Process(inPkt(2*time.Second, server, client, 8080, 4000)); v != filtering.Drop {
		t.Error("different remote port admitted under FullTuple")
	}
}

func TestPunchHole(t *testing.T) {
	// §5.1 active-mode FTP: client c tells server s to connect back to
	// port p. Punching {c, p, s, x} admits the server's active
	// connection.
	f := small()
	const dataPort = 20000
	if v := f.Process(inPkt(0, server, client, 20, dataPort)); v != filtering.Drop {
		t.Fatal("active connection passed before hole punch")
	}
	f.PunchHole(client, dataPort, server, packet.TCP)
	if v := f.Process(inPkt(time.Second, server, client, 20, dataPort)); v != filtering.Pass {
		t.Error("active connection dropped after hole punch")
	}
	// The hole closes after T_e.
	f.AdvanceTo(30 * time.Second)
	tup := packet.Tuple{Src: server, Dst: client, SrcPort: 20, DstPort: dataPort, Proto: packet.TCP}
	if f.WouldAdmit(tup) {
		t.Error("hole still open after T_e")
	}
}

func TestWouldAdmitMatchesProcess(t *testing.T) {
	f := small()
	r := xrand.New(5)
	now := time.Duration(0)
	for i := 0; i < 5000; i++ {
		now += time.Duration(r.Intn(50)) * time.Millisecond
		remote := packet.AddrFrom4(198, 51, 100, byte(r.Intn(30)))
		lport := uint16(1024 + r.Intn(100))
		if r.Bool(0.5) {
			f.Process(outPkt(now, client, remote, lport, 80))
			continue
		}
		tup := packet.Tuple{Src: remote, Dst: client, SrcPort: 80, DstPort: lport, Proto: packet.TCP}
		f.AdvanceTo(now)
		want := filtering.Drop
		if f.WouldAdmit(tup) {
			want = filtering.Pass
		}
		if got := f.Process(inPkt(now, remote, client, 80, lport)); got != want {
			t.Fatalf("packet %d: WouldAdmit predicted %v, Process returned %v", i, want, got)
		}
	}
}

func TestCounters(t *testing.T) {
	f := small()
	f.Process(outPkt(0, client, server, 4000, 80))
	f.Process(inPkt(time.Second, server, client, 80, 4000))
	f.Process(inPkt(2*time.Second, server, client, 80, 9))
	c := f.Counters()
	if c.OutPackets != 1 || c.InPackets != 2 || c.InPassed != 1 || c.InDropped != 1 {
		t.Errorf("counters = %+v", c)
	}
	if f.Marks() != 1 {
		t.Errorf("Marks = %d", f.Marks())
	}
}

func TestPenetrationProbabilityIsUtilizationToTheM(t *testing.T) {
	f := small()
	r := xrand.New(9)
	for i := 0; i < 300; i++ {
		f.Process(outPkt(0, client, packet.Addr(r.Uint32()), uint16(r.Intn(60000)+1024), 80))
	}
	u := f.Utilization()
	want := math.Pow(u, 3)
	if got := f.PenetrationProbability(); math.Abs(got-want) > 1e-12 {
		t.Errorf("PenetrationProbability = %v, want %v", got, want)
	}
}

func TestRandomPenetrationMatchesEquation1(t *testing.T) {
	// Fill the filter to a known utilization and verify that random
	// attack tuples penetrate at ≈ U^m (Equation 1).
	f := MustNew(WithOrder(14), WithVectors(4), WithHashes(3), WithRotateEvery(5*time.Second), WithSeed(1))
	r := xrand.New(10)
	for i := 0; i < 2000; i++ {
		f.Process(outPkt(0, client, packet.Addr(r.Uint32()), uint16(r.Intn(60000)+1024), uint16(r.Intn(60000)+1)))
	}
	u := f.Utilization()
	want := math.Pow(u, 3)

	const probes = 300000
	hits := 0
	for i := 0; i < probes; i++ {
		tup := packet.Tuple{
			Src:     packet.Addr(r.Uint32()),
			Dst:     client,
			SrcPort: uint16(r.Intn(65535) + 1),
			DstPort: uint16(r.Intn(65535) + 1),
			Proto:   packet.TCP,
		}
		if f.WouldAdmit(tup) {
			hits++
		}
	}
	got := float64(hits) / probes
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("penetration rate %v, Equation 1 predicts %v (U=%v)", got, want, u)
	}
}

// Differential test against the exact SPI table: on benign bidirectional
// traffic whose out-in delays stay below (k−1)·Δt, the bitmap filter must
// admit (no false positives) every packet the SPI filter admits.
func TestNoFalsePositivesVersusSPI(t *testing.T) {
	f := MustNew(WithOrder(16), WithVectors(4), WithHashes(3), WithRotateEvery(5*time.Second))
	spi := flowtable.NewMapTable(flowtable.WithIdleTimeout(15 * time.Second))
	r := xrand.New(11)
	now := time.Duration(0)

	type flow struct {
		remote packet.Addr
		lport  uint16
	}
	var flows []flow
	for i := 0; i < 20000; i++ {
		now += time.Duration(r.Intn(30)) * time.Millisecond
		if r.Bool(0.3) || len(flows) == 0 {
			fl := flow{
				remote: packet.AddrFrom4(198, 51, 100, byte(r.Intn(200))),
				lport:  uint16(1024 + r.Intn(20000)),
			}
			flows = append(flows, fl)
			p := outPkt(now, client, fl.remote, fl.lport, 80)
			f.Process(p)
			spi.Process(p)
			continue
		}
		fl := flows[r.Intn(len(flows))]
		// Reply within 2s of *some* outgoing packet of the flow; to keep
		// the invariant simple, refresh the flow first.
		pOut := outPkt(now, client, fl.remote, fl.lport, 80)
		f.Process(pOut)
		spi.Process(pOut)
		now += time.Duration(r.Intn(2000)) * time.Millisecond
		pIn := inPkt(now, fl.remote, client, 80, fl.lport)
		vb, vs := f.Process(pIn), spi.Process(pIn)
		if vs == filtering.Pass && vb == filtering.Drop {
			t.Fatalf("false positive at %v: SPI passed, bitmap dropped %v", now, pIn)
		}
	}
}

func TestUtilizationDropsAfterRotations(t *testing.T) {
	f := small()
	r := xrand.New(12)
	for i := 0; i < 1000; i++ {
		f.Process(outPkt(0, client, packet.Addr(r.Uint32()), uint16(i+1024), 80))
	}
	if f.Utilization() == 0 {
		t.Fatal("no utilization after marking")
	}
	// After k rotations with no traffic, everything is clear.
	f.AdvanceTo(21 * time.Second)
	if f.Utilization() != 0 {
		t.Errorf("Utilization = %v after k rotations", f.Utilization())
	}
}

func TestManualRotate(t *testing.T) {
	f := small()
	f.Process(outPkt(0, client, server, 4000, 80))
	for i := 0; i < 4; i++ {
		f.Rotate()
	}
	if f.Rotations() != 4 {
		t.Errorf("Rotations = %d", f.Rotations())
	}
	tup := packet.Tuple{Src: server, Dst: client, SrcPort: 80, DstPort: 4000, Proto: packet.TCP}
	if f.WouldAdmit(tup) {
		t.Error("mark survived k manual rotations")
	}
}

// Property: for any benign request/reply pair within one rotation period,
// the reply is admitted regardless of addresses and ports.
func TestRequestReplyProperty(t *testing.T) {
	fn := func(src, dst uint32, sp, dp uint16, delayMs uint16) bool {
		f := small()
		delay := time.Duration(delayMs%4000) * time.Millisecond
		out := packet.Packet{
			Tuple: packet.Tuple{Src: packet.Addr(src), Dst: packet.Addr(dst), SrcPort: sp, DstPort: dp, Proto: packet.UDP},
			Dir:   packet.Outgoing,
		}
		f.Process(out)
		in := packet.Packet{
			Time:  delay,
			Tuple: out.Tuple.Reverse(),
			Dir:   packet.Incoming,
		}
		return f.Process(in) == filtering.Pass
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkProcessOutgoing(b *testing.B) {
	f := MustNew()
	pkts := make([]packet.Packet, 1<<12)
	r := xrand.New(1)
	for i := range pkts {
		pkts[i] = outPkt(0, client, packet.Addr(r.Uint32()), uint16(r.Intn(60000)+1024), 80)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(pkts[i&(1<<12-1)])
	}
}

func BenchmarkProcessIncoming(b *testing.B) {
	f := MustNew()
	r := xrand.New(1)
	outs := make([]packet.Packet, 1<<12)
	ins := make([]packet.Packet, 1<<12)
	for i := range outs {
		outs[i] = outPkt(0, client, packet.Addr(r.Uint32()), uint16(r.Intn(60000)+1024), 80)
		ins[i] = packet.Packet{Tuple: outs[i].Tuple.Reverse(), Dir: packet.Incoming}
		f.Process(outs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(ins[i&(1<<12-1)])
	}
}

func BenchmarkRotate(b *testing.B) {
	f := MustNew()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Rotate()
	}
}
