package core

import (
	"sync"
	"testing"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// diffTrace builds a mixed trace with non-decreasing timestamps, repeated
// tuples (so lookups hit), occasional large gaps (so rotations and the APD
// fast-forward fire) and runs of identical timestamps (the batched clock
// path).
func diffTrace(n int, seed uint64) []packet.Packet {
	r := xrand.New(seed)
	pkts := make([]packet.Packet, 0, n)
	now := time.Duration(0)
	for len(pkts) < n {
		switch r.Intn(10) {
		case 0:
			now += time.Duration(r.Intn(int(3 * time.Second)))
		case 1:
			now += 25 * time.Second // beyond T_e: wholesale reset path
		}
		burst := 1 + r.Intn(6)
		for b := 0; b < burst && len(pkts) < n; b++ {
			tup := packet.Tuple{
				Src:     packet.AddrFrom4(10, 0, byte(r.Intn(4)), byte(r.Intn(16))),
				Dst:     packet.AddrFrom4(198, 51, 100, byte(r.Intn(8))),
				SrcPort: uint16(4000 + r.Intn(32)),
				DstPort: 80,
				Proto:   packet.TCP,
			}
			p := packet.Packet{Time: now, Tuple: tup, Dir: packet.Outgoing, Flags: packet.ACK, Length: 60 + r.Intn(1400)}
			if r.Bool(0.5) {
				p.Tuple = tup.Reverse()
				p.Dir = packet.Incoming
			}
			if r.Bool(0.1) {
				p.Flags = packet.SYN | packet.ACK
			}
			pkts = append(pkts, p)
		}
	}
	return pkts
}

func mustEqualStats(t *testing.T, a, b Stats, label string) {
	t.Helper()
	if a.Rotations != b.Rotations || a.CurrentIndex != b.CurrentIndex ||
		a.Marks != b.Marks || a.Counters != b.Counters ||
		a.APDSpared != b.APDSpared || a.Utilization != b.Utilization {
		t.Errorf("%s: stats diverged:\nseq:   %+v\nbatch: %+v", label, a, b)
	}
}

// TestProcessBatchMatchesSequential asserts the differential property the
// whole batched path rests on: chunked ProcessBatch produces byte-identical
// verdicts, counters, rotations and APD coin flips to per-packet Process.
func TestProcessBatchMatchesSequential(t *testing.T) {
	pkts := diffTrace(4000, 42)
	mkOpts := func() ([]Option, []Option) {
		// Separate but identically-seeded APD policies per filter.
		rp1, err := NewRatioPolicy(1, 3, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		rp2, err := NewRatioPolicy(1, 3, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		base := []Option{WithOrder(12), WithSeed(9)}
		return append(base, WithAPD(rp1)), append(base, WithAPD(rp2))
	}

	for _, chunk := range []int{1, 7, 64, 1000, len(pkts)} {
		o1, o2 := mkOpts()
		seq := MustNew(o1...)
		bat := MustNew(o2...)
		want := make([]filtering.Verdict, len(pkts))
		for i, p := range pkts {
			want[i] = seq.Process(p)
		}
		var got []filtering.Verdict
		for off := 0; off < len(pkts); off += chunk {
			end := min(off+chunk, len(pkts))
			got = append(got, bat.ProcessBatch(pkts[off:end])...)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: verdict[%d] = %v, sequential %v (pkt %v)",
					chunk, i, got[i], want[i], pkts[i])
			}
		}
		mustEqualStats(t, seq.Stats(), bat.Stats(), "chunked")
	}
}

// TestSafeAndShardedBatchMatchSequential runs the same differential check
// through the concurrency wrappers (single-goroutine here; the stress test
// below covers races).
func TestSafeAndShardedBatchMatchSequential(t *testing.T) {
	pkts := diffTrace(3000, 7)

	seqSafe := NewSafe(MustNew(WithOrder(12), WithSeed(3)))
	batSafe := NewSafe(MustNew(WithOrder(12), WithSeed(3)))
	seqSh, err := NewSharded(4, WithOrder(12), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	batSh, err := NewSharded(4, WithOrder(12), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}

	const chunk = 100
	for off := 0; off < len(pkts); off += chunk {
		end := min(off+chunk, len(pkts))
		gotSafe := batSafe.ProcessBatch(pkts[off:end])
		gotSh := batSh.ProcessBatch(pkts[off:end])
		for i, p := range pkts[off:end] {
			if want := seqSafe.Process(p); gotSafe[i] != want {
				t.Fatalf("safe verdict[%d] = %v, want %v", off+i, gotSafe[i], want)
			}
			if want := seqSh.Process(p); gotSh[i] != want {
				t.Fatalf("sharded verdict[%d] = %v, want %v", off+i, gotSh[i], want)
			}
		}
	}
	mustEqualStats(t, seqSafe.Stats(), batSafe.Stats(), "safe")
	if seqSh.Counters() != batSh.Counters() {
		t.Errorf("sharded counters diverged: %+v vs %+v", seqSh.Counters(), batSh.Counters())
	}
}

// TestBatchDifferentialMillion is the acceptance differential at scale:
// a ≥1M-packet mixed trace (bursts, rotations, wholesale resets, APD coin
// flips) must produce byte-identical verdict streams through the batch and
// per-packet paths on all three flavors, with the batch side recycling one
// verdict buffer the whole way.
func TestBatchDifferentialMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-packet differential skipped in -short mode")
	}
	const n = 1_000_000
	pkts := diffTrace(n, 1234)

	mkAPD := func() Option {
		rp, err := NewRatioPolicy(1, 3, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return WithAPD(rp)
	}
	type flavor struct {
		name string
		mk   func() intoFilter
	}
	flavors := []flavor{
		{name: "filter", mk: func() intoFilter {
			return MustNew(WithOrder(16), WithSeed(77), mkAPD())
		}},
		{name: "safe", mk: func() intoFilter {
			return NewSafe(MustNew(WithOrder(16), WithSeed(77), mkAPD()))
		}},
		{name: "sharded", mk: func() intoFilter {
			s, err := NewSharded(4, WithOrder(14), WithSeed(77))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		// APD rides the sharded flavor too: NewSharded clones the policy
		// per shard, and batch grouping preserves per-shard packet order,
		// so every per-shard APD coin flip matches the sequential run.
		{name: "sharded+apd", mk: func() intoFilter {
			s, err := NewSharded(4, WithOrder(14), WithSeed(77), mkAPD())
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		// The same flavors with the sorted batch sweep forced on (the
		// size gate keeps it off at these orders otherwise): the sweep
		// must reproduce the per-packet verdict stream — including APD
		// coin flips, whose order the sweep's deferred phase 3 preserves
		// — at million-packet scale.
		{name: "filter+sweep", mk: func() intoFilter {
			return MustNew(WithOrder(16), WithSeed(77), mkAPD(), WithSweep(SweepAlways))
		}},
		{name: "safe+sweep", mk: func() intoFilter {
			return NewSafe(MustNew(WithOrder(16), WithSeed(77), mkAPD(), WithSweep(SweepAlways)))
		}},
		{name: "sharded+apd+sweep", mk: func() intoFilter {
			s, err := NewSharded(4, WithOrder(14), WithSeed(77), mkAPD(), WithSweep(SweepAlways))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, fl := range flavors {
		t.Run(fl.name, func(t *testing.T) {
			seq := fl.mk()
			bat := fl.mk()
			want := make([]filtering.Verdict, n)
			for i := range pkts {
				want[i] = seq.Process(pkts[i])
			}
			var out []filtering.Verdict
			mismatches := 0
			for off := 0; off < n; off += 613 { // deliberately unaligned chunk
				end := min(off+613, n)
				out = bat.ProcessBatchInto(pkts[off:end], out)
				for i := off; i < end; i++ {
					if out[i-off] != want[i] {
						mismatches++
						if mismatches <= 3 {
							t.Errorf("verdict[%d] = %v, want %v (pkt %+v)",
								i, out[i-off], want[i], pkts[i])
						}
					}
				}
			}
			if mismatches > 0 {
				t.Fatalf("%d/%d verdicts diverged", mismatches, n)
			}
			if seqC, batC := counters(seq), counters(bat); seqC != batC {
				t.Errorf("counters diverged: %+v vs %+v", seqC, batC)
			}
		})
	}
}

// counters fetches cumulative counters from any flavor.
func counters(f intoFilter) filtering.Counters {
	switch v := f.(type) {
	case *Filter:
		return v.Counters()
	case *Safe:
		return v.Counters()
	case *Sharded:
		return v.Counters()
	}
	panic("unknown flavor")
}

func TestProcessBatchEmpty(t *testing.T) {
	f := small()
	if out := f.ProcessBatch(nil); out != nil {
		t.Errorf("ProcessBatch(nil) = %v", out)
	}
	s := NewSafe(small())
	if out := s.ProcessBatch(nil); out != nil {
		t.Errorf("Safe.ProcessBatch(nil) = %v", out)
	}
	sh, err := NewSharded(2, WithOrder(12))
	if err != nil {
		t.Fatal(err)
	}
	if out := sh.ProcessBatch(nil); out != nil {
		t.Errorf("Sharded.ProcessBatch(nil) = %v", out)
	}
}

// TestConcurrentShardedAPDBatchInto hammers a sharded filter with an APD
// policy attached: concurrent ProcessBatchInto pumps (each recycling its
// own dirty buffer) race against Stats/APDSpared/ShardStats readers. Under
// -race this proves each per-shard policy clone is touched only under its
// shard's lock.
func TestConcurrentShardedAPDBatchInto(t *testing.T) {
	rp, err := NewRatioPolicy(1, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(4, WithOrder(12), WithSeed(5), WithAPD(rp))
	if err != nil {
		t.Fatal(err)
	}
	pkts := diffTrace(512, 21)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]filtering.Verdict, 0, 64)
			for i := 0; i < 80; i++ {
				off := (g*41 + i*64) % (len(pkts) - 64)
				out = sh.ProcessBatchInto(pkts[off:off+64], out)
				if len(out) != 64 {
					t.Errorf("batchInto returned %d verdicts", len(out))
					return
				}
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = sh.Stats()
			_ = sh.APDSpared()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = sh.ShardStats()
			_ = sh.Utilization()
		}
	}()
	wg.Wait()
	// The caller's template policy is never wired into a shard — it must
	// come out of the stampede untouched.
	if got := rp.DropProbability(0); got != 0 {
		t.Errorf("template policy mutated: DropProbability = %v", got)
	}
	if sh.APDSpared() == 0 {
		t.Error("APDSpared = 0: policy clones saw no traffic")
	}
}

// TestConcurrentBatchStress hammers Safe and Sharded with concurrent
// ProcessBatch/Process/Stats/Counters/Reset. Run under -race it proves the
// batched paths take the same locks as the per-packet ones; without -race
// it is a cheap smoke test.
func TestConcurrentBatchStress(t *testing.T) {
	pkts := diffTrace(512, 99)
	sh, err := NewSharded(4, WithOrder(12), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	safe := NewSafe(MustNew(WithOrder(12), WithSeed(5)))
	run := func(t *testing.T, batch func([]packet.Packet) []filtering.Verdict,
		batchInto func([]packet.Packet, []filtering.Verdict) []filtering.Verdict,
		single func(packet.Packet) filtering.Verdict, inspect, reset func()) {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					off := (g*37 + i*64) % (len(pkts) - 64)
					if got := batch(pkts[off : off+64]); len(got) != 64 {
						t.Errorf("batch returned %d verdicts", len(got))
						return
					}
				}
			}(g)
		}
		// Into-path pumps: each goroutine owns one dirty buffer it
		// recycles across calls, the intended steady-state usage.
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				out := make([]filtering.Verdict, 0, 64)
				for i := 0; i < 50; i++ {
					off := (g*53 + i*64) % (len(pkts) - 64)
					out = batchInto(pkts[off:off+64], out)
					if len(out) != 64 {
						t.Errorf("batchInto returned %d verdicts", len(out))
						return
					}
				}
			}(g)
		}
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				single(pkts[i%len(pkts)])
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				inspect()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				reset()
			}
		}()
		wg.Wait()
	}

	t.Run("safe", func(t *testing.T) {
		run(t, safe.ProcessBatch, safe.ProcessBatchInto, safe.Process,
			func() { _ = safe.Stats(); _ = safe.Utilization() }, safe.Reset)
	})
	t.Run("sharded", func(t *testing.T) {
		run(t, sh.ProcessBatch, sh.ProcessBatchInto, sh.Process,
			func() { _ = sh.Counters(); _ = sh.MemoryBytes() }, sh.Reset)
	})
}
