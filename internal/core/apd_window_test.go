package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

// slowAdvance is the pre-fix reference implementation of
// slidingCounter.advance: one iteration per elapsed bucket width.
func slowAdvance(s *slidingCounter, now time.Duration) {
	for s.headEnd <= now {
		s.head = (s.head + 1) % len(s.buckets)
		s.buckets[s.head] = 0
		s.headEnd += s.width
	}
}

// TestSlidingCounterIdleGapFastForward is the regression test for the
// idle-gap pathology: with a 1 s window, a gap of ~146 years used to cost
// ~4.6e18 loop iterations — it could not complete within any test timeout.
// The fast-forward must absorb the gap in O(buckets).
func TestSlidingCounterIdleGapFastForward(t *testing.T) {
	s := newSlidingCounter(time.Second, apdBuckets)
	s.add(0, 5)
	huge := time.Duration(1) << 62
	s.add(huge, 7)
	if got := s.sum(huge); got != 7 {
		t.Errorf("sum after idle gap = %v, want 7 (old samples must age out)", got)
	}
	// The ring must keep working normally after the jump.
	s.add(huge+50*time.Millisecond, 3)
	if got := s.sum(huge + 50*time.Millisecond); got != 10 {
		t.Errorf("sum after post-gap add = %v, want 10", got)
	}
	if got := s.sum(huge + 3*time.Second); got != 0 {
		t.Errorf("sum two windows later = %v, want 0", got)
	}
}

// TestSlidingCounterFastForwardMatchesSlowPath drives two counters through
// the same random schedule of adds — one using advance (with the fast
// path), one using the step-by-step reference — and requires identical
// state throughout. Gaps straddle the fast-path threshold in both
// directions.
func TestSlidingCounterFastForwardMatchesSlowPath(t *testing.T) {
	fast := newSlidingCounter(time.Second, apdBuckets)
	slow := newSlidingCounter(time.Second, apdBuckets)
	r := xrand.New(11)
	now := time.Duration(0)
	for i := 0; i < 500; i++ {
		// Mix sub-bucket steps, partial-window gaps, and multi-window
		// jumps (up to ~13 windows).
		gap := time.Duration(r.Intn(int(13_500 * time.Millisecond)))
		now += gap
		v := float64(r.Intn(100))
		fast.add(now, v)
		slowAdvance(&slow, now)
		slow.buckets[slow.head] += v

		if fast.head != slow.head || fast.headEnd != slow.headEnd {
			t.Fatalf("step %d (now=%v): head/headEnd (%d,%v) != reference (%d,%v)",
				i, now, fast.head, fast.headEnd, slow.head, slow.headEnd)
		}
		for b := range fast.buckets {
			if fast.buckets[b] != slow.buckets[b] {
				t.Fatalf("step %d (now=%v): bucket %d = %v, reference %v",
					i, now, b, fast.buckets[b], slow.buckets[b])
			}
		}
	}
}

// TestSlidingCounterExtremeTimestampOverflow is the regression test for
// the int64-horizon overflow: a jump to the largest representable
// timestamp used to step headEnd past MaxInt64 (headEnd += steps*width
// wrapped negative), after which every later advance mis-rotated the
// ring. The fast-forward now rebases headEnd from now and saturates at
// maxDuration.
func TestSlidingCounterExtremeTimestampOverflow(t *testing.T) {
	s := newSlidingCounter(time.Second, apdBuckets)
	s.add(0, 5)
	s.add(maxDuration, 7)
	if s.headEnd < 0 {
		t.Fatalf("headEnd = %v; wrapped negative on extreme jump", s.headEnd)
	}
	if got := s.sum(maxDuration); got != 7 {
		t.Errorf("sum at horizon = %v, want 7 (pre-jump samples must age out)", got)
	}
	// The head bucket is saturated at the horizon: further samples there
	// must accumulate instead of rotating the ring once per call.
	s.add(maxDuration, 3)
	if got := s.sum(maxDuration); got != 10 {
		t.Errorf("sum after second add at horizon = %v, want 10", got)
	}
}

// TestSlidingCounterIncrementalSaturation covers the other overflow site:
// a sub-window gap whose incremental catch-up would step headEnd past the
// horizon. The loop must saturate at maxDuration, not wrap.
func TestSlidingCounterIncrementalSaturation(t *testing.T) {
	s := newSlidingCounter(time.Second, apdBuckets)
	s.add(maxDuration-350*time.Millisecond, 2)
	s.add(maxDuration, 4) // gap < window: incremental path
	if s.headEnd != maxDuration {
		t.Fatalf("headEnd = %v, want saturation at maxDuration", s.headEnd)
	}
	if got := s.sum(maxDuration); got != 6 {
		t.Errorf("sum = %v, want 6 (both samples inside the window)", got)
	}
}

// TestPolicyExtremeTimestamp drives the horizon case through a real
// policy: observing a packet stamped MaxInt64 must neither hang nor
// poison the utilization estimate.
func TestPolicyExtremeTimestamp(t *testing.T) {
	p, err := NewBandwidthPolicy(1e6, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(packet.Packet{Time: 0, Dir: packet.Incoming, Length: 1000})
	p.Observe(packet.Packet{Time: maxDuration, Dir: packet.Incoming, Length: 500})
	// Only the horizon packet is in the window: 500 B = 4000 bits against
	// 1e6 bit/s over 1 s.
	if got := p.Utilization(maxDuration); math.Abs(got-0.004) > 1e-12 {
		t.Errorf("Utilization at horizon = %v, want 0.004", got)
	}
}

// TestPolicyIdleGap exercises the fast path through a real policy: a
// multi-hour quiet trace followed by one packet must return promptly and
// with a fresh window.
func TestPolicyIdleGap(t *testing.T) {
	p, err := NewBandwidthPolicy(1e6, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(packet.Packet{Time: 0, Dir: packet.Incoming, Length: 50000})
	quiet := 6 * time.Hour
	p.Observe(packet.Packet{Time: quiet, Dir: packet.Incoming, Length: 500})
	if got := p.Utilization(quiet); got >= 0.01 {
		t.Errorf("Utilization after 6h gap = %v; pre-gap burst leaked into the window", got)
	}
}

func TestSubBucketWindowRejected(t *testing.T) {
	if _, err := NewBandwidthPolicy(1e6, 5*time.Nanosecond); !errors.Is(err, ErrPolicyConfig) {
		t.Errorf("bandwidth sub-bucket window: %v, want ErrPolicyConfig", err)
	}
	if _, err := NewRatioPolicy(1, 3, 5*time.Nanosecond); !errors.Is(err, ErrPolicyConfig) {
		t.Errorf("ratio sub-bucket window: %v, want ErrPolicyConfig", err)
	}
	// The boundary window (one nanosecond per bucket) is accepted.
	if _, err := NewBandwidthPolicy(1e6, apdBuckets*time.Nanosecond); err != nil {
		t.Errorf("boundary window rejected: %v", err)
	}
}

// TestSlidingCounterClampsZeroWidth covers the defensive clamp in the
// primitive itself: even if constructed below the policy minimum, advance
// must terminate (pre-fix it spun forever on headEnd += 0).
func TestSlidingCounterClampsZeroWidth(t *testing.T) {
	s := newSlidingCounter(5*time.Nanosecond, apdBuckets) // width would be 0
	if s.width <= 0 {
		t.Fatalf("width = %v, want clamp to >= 1ns", s.width)
	}
	s.add(time.Second, 1) // would hang before the clamp
	if got := s.sum(time.Second); got != 1 {
		t.Errorf("sum = %v, want 1", got)
	}
}

func TestFilterResetFlushesAPDWindows(t *testing.T) {
	rp, err := NewRatioPolicy(1, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	f := small(WithAPD(rp))
	// Incoming-only traffic saturates the ratio indicator at p = 1.
	for i := 0; i < 50; i++ {
		f.Process(inPkt(0, server, client, 80, uint16(i+1)))
	}
	if got := rp.DropProbability(0); got != 1 {
		t.Fatalf("pre-reset DropProbability = %v, want 1", got)
	}
	f.Reset()
	if got := rp.DropProbability(0); got != 0 {
		t.Errorf("post-reset DropProbability = %v, want 0 (windows must be flushed)", got)
	}
	// And the bandwidth policy likewise, through its own filter.
	bp, err := NewBandwidthPolicy(8, time.Second) // 1 admitted byte saturates
	if err != nil {
		t.Fatal(err)
	}
	g := small(WithAPD(bp))
	g.Process(outPkt(0, client, server, 4000, 80))
	rep := inPkt(0, server, client, 80, 4000) // matched, admitted, observed
	rep.Length = 60
	g.Process(rep)
	if got := bp.Utilization(0); got != 1 {
		t.Fatalf("pre-reset Utilization = %v, want 1", got)
	}
	g.Reset()
	if got := bp.Utilization(0); got != 0 {
		t.Errorf("post-reset Utilization = %v, want 0", got)
	}
}

// TestBandwidthObservesAdmittedIncomingOnly pins the §5.3 fidelity fix:
// bytes of incoming packets the filter drops must not count toward U_b.
func TestBandwidthObservesAdmittedIncomingOnly(t *testing.T) {
	// An 8 bit/s link over a 1 s window: a single admitted byte saturates
	// U_b at 1, making every subsequent unmatched drop deterministic.
	p, err := NewBandwidthPolicy(8, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	f := small(WithAPD(p))
	f.Process(outPkt(0, client, server, 4000, 80))
	reply := inPkt(0, server, client, 80, 4000)
	reply.Length = 100
	if v := f.Process(reply); v != filtering.Pass {
		t.Fatal("matched reply dropped")
	}
	if got := p.bytes.sum(0); got != 100 {
		t.Fatalf("admitted bytes = %v, want 100", got)
	}
	// Unmatched packet: U_b = 1 → dropped with certainty → not observed.
	junk := inPkt(0, server, client, 9, 9999)
	junk.Length = 5000
	if v := f.Process(junk); v != filtering.Drop {
		t.Fatal("unmatched packet admitted at U_b = 1")
	}
	if got := p.bytes.sum(0); got != 100 {
		t.Errorf("window counts %v bytes; dropped packet's 5000 leaked into U_b", got)
	}
	// A matched reply is still observed even at U_b = 1 (it passes).
	reply2 := inPkt(0, server, client, 80, 4000)
	reply2.Length = 40
	if v := f.Process(reply2); v != filtering.Pass {
		t.Fatal("matched reply dropped")
	}
	if got := p.bytes.sum(0); got != 140 {
		t.Errorf("window counts %v bytes, want 140", got)
	}
}
