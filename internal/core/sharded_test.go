package core

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"bitmapfilter/internal/filtering"
	"bitmapfilter/internal/packet"
	"bitmapfilter/internal/xrand"
)

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(0); !errors.Is(err, ErrConfig) {
		t.Errorf("0 shards: %v", err)
	}
	if _, err := NewSharded(4, WithVectors(0)); !errors.Is(err, ErrConfig) {
		t.Errorf("bad shard options: %v", err)
	}
	s, err := NewSharded(3, WithOrder(10))
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 {
		t.Errorf("shards = %d, want rounded to 4", s.Shards())
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestShardedBasicSemantics(t *testing.T) {
	s, err := NewSharded(4, WithOrder(12), WithRotateEvery(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	s.Process(outPkt(0, client, server, 4000, 80))
	if v := s.Process(inPkt(time.Second, server, client, 80, 4000)); v != filtering.Pass {
		t.Error("reply dropped")
	}
	// Reply from another remote port still matches (same shard by key
	// symmetry).
	if v := s.Process(inPkt(time.Second, server, client, 9999, 4000)); v != filtering.Pass {
		t.Error("alternate-port reply dropped: flow split across shards?")
	}
	if v := s.Process(inPkt(2*time.Second, server, client, 80, 4001)); v != filtering.Drop {
		t.Error("unsolicited packet passed")
	}
	// Expiry still works through AdvanceTo.
	s.AdvanceTo(30 * time.Second)
	if v := s.Process(inPkt(30*time.Second, server, client, 80, 4000)); v != filtering.Drop {
		t.Error("mark survived T_e across shards")
	}
	c := s.Counters()
	if c.OutPackets != 1 || c.InPackets != 4 || c.InPassed != 2 || c.InDropped != 2 {
		t.Errorf("counters = %+v", c)
	}
}

func TestShardedMemoryIsSumOfShards(t *testing.T) {
	s, err := NewSharded(4, WithOrder(12))
	if err != nil {
		t.Fatal(err)
	}
	single := MustNew(WithOrder(12))
	if got, want := s.MemoryBytes(), 4*single.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

// Differential: a sharded filter must agree with a single filter on every
// verdict for benign request/reply traffic (the partial-tuple key routes
// each flow wholly into one shard).
func TestShardedMatchesSingleOnFlows(t *testing.T) {
	single := MustNew(WithOrder(16), WithRotateEvery(5*time.Second), WithSeed(1))
	sharded, err := NewSharded(8, WithOrder(16), WithRotateEvery(5*time.Second), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	now := time.Duration(0)
	// Ground truth: last mark time per partial-tuple key. Packets whose
	// mark is younger than (k−1)·Δt MUST pass in both filters; packets
	// with no mark within k·Δt SHOULD drop in both, but hash-collision
	// admits are legal and differ between the two (the single filter is
	// fuller, and the shards use perturbed hash families), so those rare
	// disagreements are only counted.
	marks := make(map[packet.Key]time.Duration)
	collisions := 0
	for i := 0; i < 20000; i++ {
		now += time.Duration(r.Intn(20)) * time.Millisecond
		remote := packet.AddrFrom4(198, 51, 100, byte(r.Intn(100)))
		lport := uint16(1024 + r.Intn(500))
		var pkt packet.Packet
		if r.Bool(0.5) {
			pkt = outPkt(now, client, remote, lport, 80)
			marks[pkt.Tuple.OutgoingKey()] = now
		} else {
			pkt = inPkt(now, remote, client, 80, lport)
		}
		v1 := single.Process(pkt)
		v2 := sharded.Process(pkt)
		if v1 == v2 {
			continue
		}
		last, marked := marks[pkt.Tuple.IncomingKey()]
		age := now - last
		switch {
		case marked && age < 15*time.Second:
			t.Fatalf("packet %d (%v): fresh mark (age %v) but single=%v sharded=%v",
				i, pkt, age, v1, v2)
		case !marked || age >= 20*time.Second:
			collisions++ // a collision admit in one of the two: legal
		default:
			// Between (k−1)·Δt and k·Δt admission depends on rotation
			// phase, which is identical in both filters — they must
			// agree.
			t.Fatalf("packet %d (%v): phase-window divergence single=%v sharded=%v",
				i, pkt, v1, v2)
		}
	}
	if collisions > 10 {
		t.Errorf("%d collision disagreements; expected a handful at most", collisions)
	}
}

func TestShardedPunchHoleAndWouldAdmit(t *testing.T) {
	s, err := NewSharded(4, WithOrder(12), WithRotateEvery(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	hole := packet.Tuple{Src: server, Dst: client, SrcPort: 20, DstPort: 2000, Proto: packet.TCP}
	if s.WouldAdmit(hole) {
		t.Fatal("hole open before punch")
	}
	s.PunchHole(client, 2000, server, packet.TCP)
	if !s.WouldAdmit(hole) {
		t.Error("punched hole not visible via WouldAdmit")
	}
	if v := s.Process(packet.Packet{Tuple: hole, Dir: packet.Incoming, Flags: packet.SYN}); v != filtering.Pass {
		t.Error("punched connection dropped")
	}
}

// statefulNoClonePolicy accumulates state (it implements PolicyResetter)
// but cannot clone — NewSharded must refuse to share one instance across
// shard locks.
type statefulNoClonePolicy struct{ n int }

func (p *statefulNoClonePolicy) Observe(packet.Packet)                 { p.n++ }
func (p *statefulNoClonePolicy) DropProbability(time.Duration) float64 { return 0 }
func (p *statefulNoClonePolicy) Name() string                          { return "stateful-no-clone" }
func (p *statefulNoClonePolicy) Reset()                                { p.n = 0 }

// statelessPolicy implements neither PolicyResetter nor PolicyCloner: it
// holds no mutable state, so NewSharded shares it across shards as-is.
type statelessPolicy struct{ p float64 }

func (s statelessPolicy) Observe(packet.Packet)                 {}
func (s statelessPolicy) DropProbability(time.Duration) float64 { return s.p }
func (s statelessPolicy) Name() string                          { return "stateless" }

func TestNewShardedAPDPolicyHandling(t *testing.T) {
	if _, err := NewSharded(4, WithOrder(10), WithAPD(&statefulNoClonePolicy{})); !errors.Is(err, ErrConfig) {
		t.Errorf("stateful no-clone policy: err = %v, want ErrConfig", err)
	}
	s, err := NewSharded(4, WithOrder(10), WithAPD(statelessPolicy{p: 1}))
	if err != nil {
		t.Fatalf("stateless policy rejected: %v", err)
	}
	if got := s.Stats().APDPolicy; got != "stateless" {
		t.Errorf("APDPolicy = %q, want stateless", got)
	}
	// p = 1 everywhere: unmatched incoming packets still drop.
	if v := s.Process(inPkt(0, server, client, 80, 4000)); v != filtering.Drop {
		t.Error("unmatched packet admitted despite p=1 policy")
	}
}

// TestShardedClonesAPDPolicyPerShard pins the cloning contract: the
// caller's policy instance is a template only — shards accumulate
// indicator state in their own clones and the template stays pristine.
func TestShardedClonesAPDPolicyPerShard(t *testing.T) {
	rp, err := NewRatioPolicy(1, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSharded(4, WithOrder(12), WithAPD(rp))
	if err != nil {
		t.Fatal(err)
	}
	// Incoming-only probes across many flows: each shard's first admitted
	// probe is an APD spare (ratio still 0), after which the shard's in/out
	// ratio sits at the high threshold and every later probe drops.
	var passed uint64
	for i := 0; i < 256; i++ {
		pkt := inPkt(0, packet.AddrFrom4(198, 51, 100, byte(i)), client, 80, uint16(5000+i))
		if s.Process(pkt) == filtering.Pass {
			passed++
		}
	}
	if got := rp.DropProbability(0); got != 0 {
		t.Errorf("template policy DropProbability = %v, want 0 (shards must use clones)", got)
	}
	if s.APDSpared() == 0 {
		t.Fatal("APDSpared = 0: APD not active on the shards")
	}
	// No marks exist, so every admitted probe was an APD spare.
	if got := s.APDSpared(); got != passed {
		t.Errorf("APDSpared = %d, want %d (the admitted probes)", got, passed)
	}
	st := s.Stats()
	if !st.APDEnabled || st.APDPolicy != "apd-ratio" {
		t.Errorf("aggregate stats: enabled=%v policy=%q", st.APDEnabled, st.APDPolicy)
	}
	if st.APDDropProbability == 0 {
		t.Error("aggregate APDDropProbability = 0 after an incoming-only flood")
	}
	per := s.ShardStats()
	var sumSpared uint64
	for _, ps := range per {
		sumSpared += ps.APDSpared
	}
	if sumSpared != s.APDSpared() {
		t.Errorf("per-shard spared sum = %d, APDSpared = %d", sumSpared, s.APDSpared())
	}
}

// TestBandwidthPolicyShardScaling checks both halves of the 1/S capacity
// rule: ClonePolicy+ScaleForShards divide the configured capacity, and
// end-to-end the aggregate drop probability equals the U_b one unsharded
// policy would compute from the combined traffic.
func TestBandwidthPolicyShardScaling(t *testing.T) {
	p, err := NewBandwidthPolicy(1e6, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clone := p.ClonePolicy().(*BandwidthPolicy)
	clone.ScaleForShards(4)
	if got := clone.Capacity(); got != 250000 {
		t.Errorf("scaled clone capacity = %v, want 250000", got)
	}
	if got := p.Capacity(); got != 1e6 {
		t.Errorf("template capacity = %v, want 1e6 (scaling must not leak back)", got)
	}

	bw, err := NewBandwidthPolicy(1e6, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSharded(4, WithOrder(14), WithAPD(bw))
	if err != nil {
		t.Fatal(err)
	}
	// 64 matched flows, each reply carrying 500 admitted bytes:
	// 64·500·8 = 256000 bits over a 1 s window on a 1e6 bit/s link, so the
	// global U_b is 0.256. Per shard, U_b_i = 8·B_i/(C/S · win), and the
	// mean over shards telescopes back to 8·ΣB_i/(C · win) exactly.
	for i := 0; i < 64; i++ {
		remote := packet.AddrFrom4(198, 51, 100, byte(i))
		lport := uint16(4000 + i)
		s.Process(outPkt(0, client, remote, lport, 80))
		reply := inPkt(0, remote, client, 80, lport)
		reply.Length = 500
		if s.Process(reply) != filtering.Pass {
			t.Fatalf("matched reply %d dropped", i)
		}
	}
	if got := s.Stats().APDDropProbability; math.Abs(got-0.256) > 1e-9 {
		t.Errorf("aggregate U_b = %v, want 0.256 (per-shard capacity must scale by 1/S)", got)
	}
}

// TestShardedStatsAggregation pins the Stats contract: additive fields are
// sums over ShardStats, fractional indicators are means, clocks take the
// most-advanced shard and the earliest pending rotation.
func TestShardedStatsAggregation(t *testing.T) {
	rp, err := NewRatioPolicy(1, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSharded(4, WithOrder(12), WithRotateEvery(5*time.Second), WithAPD(rp))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ts := time.Duration(i) * time.Millisecond
		remote := packet.AddrFrom4(198, 51, 100, byte(i))
		lport := uint16(4000 + i)
		s.Process(outPkt(ts, client, remote, lport, 80))
		s.Process(inPkt(ts, remote, client, 80, lport))
	}
	s.AdvanceTo(6 * time.Second) // fire at least one rotation everywhere

	per := s.ShardStats()
	agg := s.Stats()
	if len(per) != 4 {
		t.Fatalf("ShardStats returned %d snapshots, want 4", len(per))
	}
	var want Stats
	want.NextRotation = per[0].NextRotation
	for _, st := range per {
		want.MemoryBytes += st.MemoryBytes
		want.Rotations += st.Rotations
		want.Marks += st.Marks
		want.APDSpared += st.APDSpared
		want.Counters.OutPackets += st.Counters.OutPackets
		want.Counters.InPackets += st.Counters.InPackets
		want.Counters.InPassed += st.Counters.InPassed
		want.Counters.InDropped += st.Counters.InDropped
		want.Utilization += st.Utilization
		if st.Now > want.Now {
			want.Now = st.Now
		}
		if st.NextRotation < want.NextRotation {
			want.NextRotation = st.NextRotation
		}
	}
	if agg.MemoryBytes != want.MemoryBytes || agg.Rotations != want.Rotations ||
		agg.Marks != want.Marks || agg.APDSpared != want.APDSpared ||
		agg.Counters != want.Counters {
		t.Errorf("additive fields:\nagg:  %+v\nwant: %+v", agg, want)
	}
	if math.Abs(agg.Utilization-want.Utilization/4) > 1e-12 {
		t.Errorf("Utilization = %v, want mean %v", agg.Utilization, want.Utilization/4)
	}
	if agg.Now != want.Now || agg.NextRotation != want.NextRotation {
		t.Errorf("clocks: now=%v next=%v, want now=%v next=%v",
			agg.Now, agg.NextRotation, want.Now, want.NextRotation)
	}
	if len(agg.VectorUtilization) != len(per[0].VectorUtilization) {
		t.Errorf("VectorUtilization length = %d, want %d",
			len(agg.VectorUtilization), len(per[0].VectorUtilization))
	}
}

func TestShardedConcurrent(t *testing.T) {
	s, err := NewSharded(8, WithOrder(14), WithRotateEvery(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint16(1000 * (w + 1))
			for i := 0; i < 2000; i++ {
				ts := time.Duration(i) * time.Millisecond
				s.Process(outPkt(ts, client, server, base+uint16(i%50), 80))
				if v := s.Process(inPkt(ts, server, client, 80, base+uint16(i%50))); v != filtering.Pass {
					t.Errorf("worker %d: reply dropped", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c := s.Counters()
	if c.OutPackets != 16000 || c.InPackets != 16000 || c.InDropped != 0 {
		t.Errorf("counters = %+v", c)
	}
}
